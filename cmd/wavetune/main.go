// Command wavetune deploys the trained autotuner on an application: it
// predicts tuned parameters for the requested instance, compares the
// predicted configuration against the simple baselines, and can execute
// the run functionally on the simulated platform.
//
// Usage:
//
//	wavetune [-system i7-2600K] [-app nash] [-dim 1900] [-rounds 2] [-run]
//	wavetune -app seqcompare -dim 2700
//	wavetune -app synthetic -tsize 4000 -dsize 5 -dim 1100
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavetune: ")
	sysName := flag.String("system", "i7-2600K", "target system")
	app := flag.String("app", "nash", "application: nash, seqcompare, synthetic, knapsack")
	dim := flag.Int("dim", 1900, "problem dimension")
	rounds := flag.Int("rounds", 1, "nash: best-response rounds (tsize = 750*rounds)")
	tsize := flag.Float64("tsize", 1000, "synthetic: task granularity")
	dsize := flag.Int("dsize", 1, "synthetic: data granularity")
	full := flag.Bool("full", false, "train on the full Table 3 space")
	tunerPath := flag.String("tuner", "", "load a pre-trained tuner JSON (skips training)")
	run := flag.Bool("run", false, "execute the tuned configuration functionally (small dims only)")
	flag.Parse()

	sys, ok := hw.ByName(*sysName)
	if !ok {
		log.Fatalf("unknown system %q", *sysName)
	}
	var k kernels.Kernel
	switch *app {
	case "nash":
		k = kernels.NewNash(*rounds)
	case "seqcompare":
		k = kernels.NewSeqCompare()
	case "synthetic":
		k = kernels.NewSynthetic(int(*tsize), *dsize)
	case "knapsack":
		k = kernels.NewKnapsack(*dim)
	default:
		log.Fatalf("unknown app %q", *app)
	}
	inst := plan.Instance{Dim: *dim, TSize: k.TSize(), DSize: k.DSize()}

	var tuner *core.Tuner
	if *tunerPath != "" {
		var err error
		tuner, err = core.LoadTuner(*tunerPath)
		if err != nil {
			log.Fatal(err)
		}
		if tuner.Sys.Name != sys.Name {
			log.Fatalf("tuner was trained for %s, not %s", tuner.Sys.Name, sys.Name)
		}
	} else {
		cfg := experiments.Quick()
		if *full {
			cfg = experiments.Full()
		}
		cfg.Systems = []hw.System{sys}
		ctx := experiments.NewContext(cfg)
		var err error
		tuner, err = ctx.Tuner(sys)
		if err != nil {
			log.Fatal(err)
		}
	}

	pred := tuner.Predict(inst)
	fmt.Printf("application: %s (%v) on %s\n", k.Name(), inst, sys.Name)
	fmt.Printf("prediction: %v\n\n", pred)

	serial := engine.SerialNs(sys, inst)
	auto, err := tuner.RTimeFor(inst, pred)
	if err != nil {
		log.Fatal(err)
	}
	cpuRes, err := engine.Estimate(sys, inst, engine.CPUOnlyParams(8), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gpuRes, err := engine.Estimate(sys, inst, engine.GPUOnlyParams(inst.Dim), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled runtimes:\n")
	fmt.Printf("  serial       %10.3fs  (1.0x)\n", serial/1e9)
	fmt.Printf("  parallel CPU %10.3fs  (%.1fx)\n", cpuRes.RTimeSec(), serial/cpuRes.RTimeNs)
	fmt.Printf("  GPU only     %10.3fs  (%.1fx)\n", gpuRes.RTimeSec(), serial/gpuRes.RTimeNs)
	fmt.Printf("  autotuned    %10.3fs  (%.1fx)\n", auto/1e9, serial/auto)

	if *run {
		if pred.Serial {
			fmt.Println("\ntuner chose serial execution; nothing to simulate")
			return
		}
		if *dim > 400 {
			log.Fatalf("-run executes every cell functionally; use -dim <= 400")
		}
		res, g, err := engine.Simulate(sys, *dim, k, pred.Par)
		if err != nil {
			log.Fatal(err)
		}
		want := engine.Reference(*dim, k)
		fmt.Printf("\nfunctional run: virtual time %.3fs, %d kernels, %d swaps, results correct: %v\n",
			res.RTimeSec(), res.Kernels, res.Swaps, g.Equal(want))
	}
}

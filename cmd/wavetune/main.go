// Command wavetune deploys the trained autotuner on an application: it
// predicts tuned parameters for the requested instance, compares the
// predicted configuration against the simple baselines, and can execute
// the run functionally on the simulated platform. Applications resolve
// through the registry (internal/apps) — `-list` prints the catalog, and
// app parameters are passed as repeated `-param name=value` flags.
//
// With -batch, wavetune turns into a client of a running waved daemon:
// it reads one shape per line from the file ("1900" or "600x1400", #
// comments allowed), submits them through POST /v1/tune/batch — one
// round trip when they fit -batch-chunk, split into chunk-sized
// requests otherwise (the daemon deduplicates repeated shapes within a
// request and fans distinct ones out across its plan-cache shards) —
// and prints the per-shape results; per-item errors are reported
// inline without failing the rest of the batch.
//
// Usage:
//
//	wavetune -list
//	wavetune [-system i7-2600K] [-app nash] [-dim 1900] [-param rounds=2] [-run]
//	wavetune -app swaffine -dim 2700 -param gap_open=12
//	wavetune -app synthetic -tsize 4000 -dsize 5 -dim 1100
//	wavetune -batch shapes.txt -addr http://localhost:8080 -app nash
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/wavefront"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavetune: ")
	sysName := flag.String("system", "i7-2600K", "target system")
	appName := flag.String("app", "nash", "application from the catalog (see -list)")
	list := flag.Bool("list", false, "print the application catalog and exit")
	dim := flag.Int("dim", 1900, "problem dimension")
	rounds := flag.Int("rounds", 1, "nash: best-response rounds (same as -param rounds=N)")
	tsize := flag.Float64("tsize", 1000, "synthetic: task granularity (same as -param tsize=X)")
	dsize := flag.Int("dsize", 1, "synthetic: data granularity (same as -param dsize=N)")
	values := apps.Values{}
	flag.Func("param", "application parameter name=value (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		values[name] = x
		return nil
	})
	full := flag.Bool("full", false, "train on the full Table 3 space")
	model := flag.String("model", core.KindTree,
		"prediction backend when training locally: tree or bilinear")
	tunerPath := flag.String("tuner", "", "load a pre-trained tuner JSON of any kind (skips training)")
	run := flag.Bool("run", false, "execute the tuned configuration functionally (small dims only)")
	batchPath := flag.String("batch", "", "file of shapes (one per line: 1900 or 600x1400) to tune in one daemon call")
	addr := flag.String("addr", "http://localhost:8080", "waved base URL for -batch mode")
	batchChunk := flag.Int("batch-chunk", wavefront.DefaultBatchLimit,
		"max shapes per /v1/tune/batch request; larger files are split (match the daemon's -batch-limit)")
	flag.Parse()

	if *list {
		fmt.Print(apps.RenderCatalog())
		return
	}
	switch *model {
	case core.KindTree, core.KindBilinear:
	default:
		log.Fatalf("unknown model kind %q (want tree or bilinear)", *model)
	}
	explicitFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicitFlags[f.Name] = true })
	if *batchPath != "" {
		runBatch(*batchPath, *addr, *sysName, *appName, values, explicitFlags,
			*rounds, *tsize, *dsize, *batchChunk)
		return
	}
	sys, ok := hw.ByName(*sysName)
	if !ok {
		log.Fatalf("unknown system %q", *sysName)
	}
	a, ok := apps.Lookup(*appName)
	if !ok {
		log.Fatal(apps.UnknownAppError(*appName))
	}
	// The classic flags map onto declared parameters of the same name;
	// -param spellings win. A flag the user did not set only fills a
	// Required parameter (so `-app synthetic` alone keeps working as it
	// always has) — it must not clobber a registered app's own schema
	// default for a parameter that happens to share a flag name.
	explicit := explicitFlags
	mergeFlag := func(name string, x float64) {
		if spec, declared := a.Param(name); declared && (explicit[name] || spec.Required) {
			a.MergeDeclared(values, name, x)
		}
	}
	mergeFlag("rounds", float64(*rounds))
	mergeFlag("tsize", *tsize)
	mergeFlag("dsize", float64(*dsize))
	inst, _, err := a.InstanceFor(*dim, *dim, values)
	if err != nil {
		log.Fatal(err)
	}
	// For apps that do not declare tsize/dsize, an explicitly set flag
	// overrides the app-derived granularity last — the same rule the
	// daemon applies to top-level tsize/dsize in tune requests.
	if explicit["tsize"] {
		if _, declared := a.Param("tsize"); !declared {
			inst.TSize = *tsize
		}
	}
	if explicit["dsize"] {
		if _, declared := a.Param("dsize"); !declared {
			inst.DSize = *dsize
		}
	}

	var tuner core.Predictor
	if *tunerPath != "" {
		tuner, err = core.LoadPredictor(*tunerPath)
		if err != nil {
			log.Fatal(err)
		}
		if tuner.System().Name != sys.Name {
			log.Fatalf("tuner was trained for %s, not %s", tuner.System().Name, sys.Name)
		}
	} else {
		cfg := experiments.Quick()
		if *full {
			cfg = experiments.Full()
		}
		cfg.Systems = []hw.System{sys}
		ctx := experiments.NewContext(cfg)
		if *model == core.KindTree {
			tuner, err = ctx.Tuner(sys)
		} else {
			var sr *core.SearchResult
			if sr, err = ctx.Search(sys); err == nil {
				tuner, err = core.TrainPredictor(*model, sr, cfg.TrainOpts)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	pred := tuner.Predict(inst)
	fmt.Printf("application: %s (%v) on %s [%s model]\n", a.Name, inst, sys.Name, tuner.Kind())
	fmt.Printf("prediction: %v\n\n", pred)

	serial := engine.SerialNs(sys, inst)
	auto, err := tuner.RTimeFor(inst, pred)
	if err != nil {
		log.Fatal(err)
	}
	cpuRes, err := engine.Estimate(sys, inst, engine.CPUOnlyParams(8), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gpuRes, err := engine.Estimate(sys, inst, engine.GPUOnlyParamsFor(inst), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled runtimes:\n")
	fmt.Printf("  serial       %10.3fs  (1.0x)\n", serial/1e9)
	fmt.Printf("  parallel CPU %10.3fs  (%.1fx)\n", cpuRes.RTimeSec(), serial/cpuRes.RTimeNs)
	fmt.Printf("  GPU only     %10.3fs  (%.1fx)\n", gpuRes.RTimeSec(), serial/gpuRes.RTimeNs)
	fmt.Printf("  autotuned    %10.3fs  (%.1fx)\n", auto/1e9, serial/auto)

	if *run {
		if pred.Serial {
			fmt.Println("\ntuner chose serial execution; nothing to simulate")
			return
		}
		if *dim > 400 {
			log.Fatalf("-run executes every cell functionally; use -dim <= 400")
		}
		// The kernel is only needed for functional execution; prediction
		// runs never pay for its construction (e.g. knapsack's O(dim)
		// weight table).
		k, err := a.NewKernel(*dim, *dim, values)
		if err != nil {
			log.Fatal(err)
		}
		res, g, err := engine.SimulateInst(sys, plan.Instance{Dim: *dim}, k, pred.Par, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		want := engine.Reference(*dim, k)
		fmt.Printf("\nfunctional run: virtual time %.3fs, %d kernels, %d swaps, results correct: %v\n",
			res.RTimeSec(), res.Kernels, res.Swaps, g.Equal(want))
	}
}

// runBatch is the -batch client mode: read the shapes file, submit the
// shapes through POST /v1/tune/batch — one call when they fit the
// chunk size, split into chunk-sized requests otherwise, so a shapes
// file larger than the daemon's batch limit still tunes — and print
// per-shape results.
func runBatch(path, addr, system, app string, values apps.Values, explicit map[string]bool,
	rounds int, tsize float64, dsize, chunk int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// A classic flag is forwarded when the user set it — or, exactly like
	// non-batch mode, when it fills a locally known app's Required
	// parameter from its flag default (so `-batch shapes.txt -app
	// synthetic` keeps working without spelling out -tsize/-dsize). A
	// value already supplied via -param wins, mirroring MergeDeclared.
	forward := map[string]bool{}
	for _, name := range []string{"rounds", "tsize", "dsize"} {
		if _, dup := values[name]; dup {
			continue
		}
		forward[name] = explicit[name]
	}
	if a, ok := apps.Lookup(app); ok {
		for name := range forward {
			if spec, declared := a.Param(name); declared && spec.Required {
				forward[name] = true
			}
		}
	}

	req := wavefront.BatchTuneRequest{System: system}
	var shapes []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The shape grammar is owned by core (the search-CSV dim column);
		// "1900" is square, "600x1400" rectangular.
		rows, cols, err := core.ParseShape(line)
		if err != nil {
			log.Fatal(err)
		}
		item := wavefront.TuneRequest{App: app, Params: values}
		if rows == cols {
			item.Dim = rows
		} else {
			item.Rows, item.Cols = rows, cols
		}
		// Classic flags ride as the legacy top-level spellings; the daemon
		// merges them against the app's declared parameters exactly like a
		// hand-written /v1/tune request.
		if forward["rounds"] {
			item.Rounds = rounds
		}
		if forward["tsize"] {
			v := tsize
			item.TSize = &v
		}
		if forward["dsize"] {
			v := dsize
			item.DSize = &v
		}
		req.Items = append(req.Items, item)
		shapes = append(shapes, line)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(req.Items) == 0 {
		log.Fatalf("no shapes in %s", path)
	}
	if chunk < 1 {
		chunk = 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	calls, errors := 0, 0
	var results []wavefront.BatchTuneResult
	for lo := 0; lo < len(req.Items); lo += chunk {
		hi := lo + chunk
		if hi > len(req.Items) {
			hi = len(req.Items)
		}
		part := wavefront.BatchTuneRequest{System: req.System, Items: req.Items[lo:hi]}
		resp, err := wavefront.TuneBatch(ctx, nil, addr, part)
		if err != nil {
			log.Fatal(err)
		}
		calls++
		errors += resp.Errors
		results = append(results, resp.Results...)
	}
	if len(results) > len(shapes) {
		// Never index past the shapes we actually submitted, whatever the
		// daemon answered.
		results = results[:len(shapes)]
	}
	fmt.Printf("batch of %d shapes on %s via %s (%d calls, %d errors)\n\n",
		len(results), system, addr, calls, errors)
	for i, res := range results {
		shape := shapes[i]
		if res.Error != "" {
			fmt.Printf("%-12s ERROR %s\n", shape, res.Error)
			continue
		}
		mode := "parallel"
		if res.Serial {
			mode = "serial"
		}
		fmt.Printf("%-12s %-8s cpu_tile=%-3d band=%-5d gpus=%d gpu_tile=%-3d halo=%-3d rtime=%.3gs speedup=%.1fx (%s)\n",
			shape, mode, res.Params.CPUTile, res.Params.Band, res.Params.GPUCount,
			res.Params.GPUTile, res.Params.Halo, res.RTimeSec, res.Speedup, res.Cache)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// Command wavetune deploys the trained autotuner on an application: it
// predicts tuned parameters for the requested instance, compares the
// predicted configuration against the simple baselines, and can execute
// the run functionally on the simulated platform. Applications resolve
// through the registry (internal/apps) — `-list` prints the catalog, and
// app parameters are passed as repeated `-param name=value` flags.
//
// Usage:
//
//	wavetune -list
//	wavetune [-system i7-2600K] [-app nash] [-dim 1900] [-param rounds=2] [-run]
//	wavetune -app swaffine -dim 2700 -param gap_open=12
//	wavetune -app synthetic -tsize 4000 -dsize 5 -dim 1100
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/plan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavetune: ")
	sysName := flag.String("system", "i7-2600K", "target system")
	appName := flag.String("app", "nash", "application from the catalog (see -list)")
	list := flag.Bool("list", false, "print the application catalog and exit")
	dim := flag.Int("dim", 1900, "problem dimension")
	rounds := flag.Int("rounds", 1, "nash: best-response rounds (same as -param rounds=N)")
	tsize := flag.Float64("tsize", 1000, "synthetic: task granularity (same as -param tsize=X)")
	dsize := flag.Int("dsize", 1, "synthetic: data granularity (same as -param dsize=N)")
	values := apps.Values{}
	flag.Func("param", "application parameter name=value (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("parameter %s: %v", name, err)
		}
		values[name] = x
		return nil
	})
	full := flag.Bool("full", false, "train on the full Table 3 space")
	tunerPath := flag.String("tuner", "", "load a pre-trained tuner JSON (skips training)")
	run := flag.Bool("run", false, "execute the tuned configuration functionally (small dims only)")
	flag.Parse()

	if *list {
		fmt.Print(apps.RenderCatalog())
		return
	}
	sys, ok := hw.ByName(*sysName)
	if !ok {
		log.Fatalf("unknown system %q", *sysName)
	}
	a, ok := apps.Lookup(*appName)
	if !ok {
		log.Fatal(apps.UnknownAppError(*appName))
	}
	// The classic flags map onto declared parameters of the same name;
	// -param spellings win. A flag the user did not set only fills a
	// Required parameter (so `-app synthetic` alone keeps working as it
	// always has) — it must not clobber a registered app's own schema
	// default for a parameter that happens to share a flag name.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	mergeFlag := func(name string, x float64) {
		if spec, declared := a.Param(name); declared && (explicit[name] || spec.Required) {
			a.MergeDeclared(values, name, x)
		}
	}
	mergeFlag("rounds", float64(*rounds))
	mergeFlag("tsize", *tsize)
	mergeFlag("dsize", float64(*dsize))
	inst, _, err := a.InstanceFor(*dim, *dim, values)
	if err != nil {
		log.Fatal(err)
	}
	// For apps that do not declare tsize/dsize, an explicitly set flag
	// overrides the app-derived granularity last — the same rule the
	// daemon applies to top-level tsize/dsize in tune requests.
	if explicit["tsize"] {
		if _, declared := a.Param("tsize"); !declared {
			inst.TSize = *tsize
		}
	}
	if explicit["dsize"] {
		if _, declared := a.Param("dsize"); !declared {
			inst.DSize = *dsize
		}
	}

	var tuner *core.Tuner
	if *tunerPath != "" {
		tuner, err = core.LoadTuner(*tunerPath)
		if err != nil {
			log.Fatal(err)
		}
		if tuner.Sys.Name != sys.Name {
			log.Fatalf("tuner was trained for %s, not %s", tuner.Sys.Name, sys.Name)
		}
	} else {
		cfg := experiments.Quick()
		if *full {
			cfg = experiments.Full()
		}
		cfg.Systems = []hw.System{sys}
		ctx := experiments.NewContext(cfg)
		tuner, err = ctx.Tuner(sys)
		if err != nil {
			log.Fatal(err)
		}
	}

	pred := tuner.Predict(inst)
	fmt.Printf("application: %s (%v) on %s\n", a.Name, inst, sys.Name)
	fmt.Printf("prediction: %v\n\n", pred)

	serial := engine.SerialNs(sys, inst)
	auto, err := tuner.RTimeFor(inst, pred)
	if err != nil {
		log.Fatal(err)
	}
	cpuRes, err := engine.Estimate(sys, inst, engine.CPUOnlyParams(8), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	gpuRes, err := engine.Estimate(sys, inst, engine.GPUOnlyParamsFor(inst), engine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled runtimes:\n")
	fmt.Printf("  serial       %10.3fs  (1.0x)\n", serial/1e9)
	fmt.Printf("  parallel CPU %10.3fs  (%.1fx)\n", cpuRes.RTimeSec(), serial/cpuRes.RTimeNs)
	fmt.Printf("  GPU only     %10.3fs  (%.1fx)\n", gpuRes.RTimeSec(), serial/gpuRes.RTimeNs)
	fmt.Printf("  autotuned    %10.3fs  (%.1fx)\n", auto/1e9, serial/auto)

	if *run {
		if pred.Serial {
			fmt.Println("\ntuner chose serial execution; nothing to simulate")
			return
		}
		if *dim > 400 {
			log.Fatalf("-run executes every cell functionally; use -dim <= 400")
		}
		// The kernel is only needed for functional execution; prediction
		// runs never pay for its construction (e.g. knapsack's O(dim)
		// weight table).
		k, err := a.NewKernel(*dim, *dim, values)
		if err != nil {
			log.Fatal(err)
		}
		res, g, err := engine.SimulateInst(sys, plan.Instance{Dim: *dim}, k, pred.Par, engine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		want := engine.Reference(*dim, k)
		fmt.Printf("\nfunctional run: virtual time %.3fs, %d kernels, %d swaps, results correct: %v\n",
			res.RTimeSec(), res.Kernels, res.Swaps, g.Equal(want))
	}
}

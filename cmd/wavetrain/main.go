// Command wavetrain trains the machine-learned autotuner for a modeled
// system from an exhaustive search of the synthetic application
// (Section 3.1), reports cross-validated model quality, and prints the
// learned halo model tree (Figure 9).
//
// Usage:
//
//	wavetrain [-system i7-2600K] [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavetrain: ")
	sysName := flag.String("system", "i7-2600K", "system to train for")
	full := flag.Bool("full", false, "use the full Table 3 space")
	save := flag.String("save", "", "write the trained tuner to this JSON file")
	from := flag.String("from", "", "train from a wavesweep CSV instead of searching")
	flag.Parse()

	sys, ok := hw.ByName(*sysName)
	if !ok {
		log.Fatalf("unknown system %q", *sysName)
	}
	var tuner *core.Tuner
	var ctx *experiments.Context
	if *from != "" {
		f, err := os.Open(*from)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := core.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if sr.Sys.Name != sys.Name {
			log.Fatalf("CSV was swept on %s, not %s", sr.Sys.Name, sys.Name)
		}
		tuner, err = core.Train(sr, core.DefaultTrainOptions())
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := experiments.Quick()
		if *full {
			cfg = experiments.Full()
		}
		cfg.Systems = []hw.System{sys}
		ctx = experiments.NewContext(cfg)
		var err error
		tuner, err = ctx.Tuner(sys)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained tuner for %s (explored %d model configurations)\n",
		sys.Name, tuner.Report.Configs)
	fmt.Printf("cross-validated accuracy: parallel=%.2f cpu-tile=%.2f gpu-tile=%.2f band=%.2f halo=%.2f (gate: 0.90)\n\n",
		tuner.Report.ParallelAcc, tuner.Report.CPUTileAcc, tuner.Report.GPUTileAcc,
		tuner.Report.BandAcc, tuner.Report.HaloAcc)

	if ctx != nil {
		fig9, err := ctx.Fig9(sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fig9)
	} else {
		fmt.Println(tuner.Halo.Render("halo"))
	}

	if *save != "" {
		if err := tuner.Save(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved tuner to %s\n", *save)
	}
}

// Command wavetrain trains the machine-learned autotuner for a modeled
// system from an exhaustive search of the synthetic application
// (Section 3.1), reports cross-validated model quality, and prints the
// learned halo model (the Figure 9 model tree for the tree backend, the
// fitted bilinear formula otherwise).
//
// Usage:
//
//	wavetrain [-system i7-2600K] [-full] [-model tree|bilinear]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavetrain: ")
	sysName := flag.String("system", "i7-2600K", "system to train for")
	full := flag.Bool("full", false, "use the full Table 3 space")
	save := flag.String("save", "", "write the trained tuner to this JSON file")
	from := flag.String("from", "", "train from a wavesweep CSV instead of searching")
	model := flag.String("model", core.KindTree,
		"prediction backend: tree (the paper's SVM+M5/REP ensemble) or bilinear (WaveTune-style ridge regressions)")
	flag.Parse()

	switch *model {
	case core.KindTree, core.KindBilinear:
	default:
		log.Fatalf("unknown model kind %q (want tree or bilinear)", *model)
	}
	sys, ok := hw.ByName(*sysName)
	if !ok {
		log.Fatalf("unknown system %q", *sysName)
	}
	var tuner core.Predictor
	var ctx *experiments.Context
	if *from != "" {
		f, err := os.Open(*from)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := core.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if sr.Sys.Name != sys.Name {
			log.Fatalf("CSV was swept on %s, not %s", sr.Sys.Name, sys.Name)
		}
		tuner, err = core.TrainPredictor(*model, sr, core.DefaultTrainOptions())
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := experiments.Quick()
		if *full {
			cfg = experiments.Full()
		}
		cfg.Systems = []hw.System{sys}
		ctx = experiments.NewContext(cfg)
		var err error
		if *model == core.KindTree {
			tuner, err = ctx.Tuner(sys)
		} else {
			var sr *core.SearchResult
			if sr, err = ctx.Search(sys); err == nil {
				tuner, err = core.TrainPredictor(*model, sr, cfg.TrainOpts)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	report := tuner.Quality()
	fmt.Printf("trained %s tuner for %s (explored %d model configurations)\n",
		tuner.Kind(), sys.Name, report.Configs)
	fmt.Printf("cross-validated accuracy: parallel=%.2f cpu-tile=%.2f gpu-tile=%.2f band=%.2f halo=%.2f (gate: 0.90)\n\n",
		report.ParallelAcc, report.CPUTileAcc, report.GPUTileAcc,
		report.BandAcc, report.HaloAcc)

	switch t := tuner.(type) {
	case *core.Tuner:
		if ctx != nil {
			fig9, err := ctx.Fig9(sys)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(fig9)
		} else {
			fmt.Println(t.Halo.Render("halo"))
		}
	case *core.BilinearTuner:
		fmt.Printf("halo = %s\n", t.Halo)
	}

	if *save != "" {
		if err := core.SavePredictor(*save, tuner); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %s tuner to %s\n", tuner.Kind(), *save)
	}
}

// Command benchtraj records the repository's performance trajectory:
// it runs the key serving and substrate benchmarks, writes the medians
// to BENCH_<date>.json at the repository root, and gates the result
// against the most recent previous snapshot. A benchmark whose ns/op
// grew by more than -tol (default 5%) fails the run — the budget the
// frontier refactor promised the dense path — unless -warn-only
// downgrades regressions to warnings (what CI uses, since shared
// runners are noisy).
//
// Usage:
//
//	benchtraj [-bench regex] [-count 3] [-benchtime 20x] [-dir .]
//	          [-tol 0.05] [-warn-only] [-dry-run]
//
// The snapshot records one ns/op number per benchmark (the median
// across -count runs) plus the host fingerprint, so consecutive files
// in the repository form a reviewable perf history. Comparisons across
// different machines are advisory only; the gate is meant for
// before/after runs on one host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the trajectory set: the serving hot paths
// (plan-cache hits, batch tuning, job and pipeline throughput) and the
// frontier substrate including its dense-parity pairs.
const defaultBench = "Frontier|PlanCacheHit|TuneBatch|JobThroughput|PipelineThroughput"

// Snapshot is the schema of one BENCH_<date>.json file.
type Snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Bench      string `json:"bench"`
	Count      int    `json:"count"`
	Benchtime  string `json:"benchtime"`
	// Results maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op across the runs.
	Results map[string]float64 `json:"results_ns_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtraj: ")
	bench := flag.String("bench", defaultBench, "benchmark regex passed to go test -bench")
	count := flag.Int("count", 3, "runs per benchmark; the median is recorded")
	benchtime := flag.String("benchtime", "20x", "go test -benchtime per run")
	dir := flag.String("dir", ".", "directory holding BENCH_<date>.json snapshots (the repo root)")
	tol := flag.Float64("tol", 0.05, "allowed fractional ns/op growth vs the previous snapshot")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit 0 (noisy shared runners)")
	dryRun := flag.Bool("dry-run", false, "run and compare but do not write the snapshot file")
	flag.Parse()

	out, err := runBench(*dir, *bench, *count, *benchtime)
	if err != nil {
		log.Fatal(err)
	}
	results, err := parseBench(out)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatalf("no benchmarks matched %q", *bench)
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *bench,
		Count:      *count,
		Benchtime:  *benchtime,
		Results:    results,
	}
	outFile := filepath.Join(*dir, "BENCH_"+snap.Date+".json")

	prevFile, prev, err := latestSnapshot(*dir)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	for _, n := range names {
		cur := results[n]
		switch {
		case prev == nil:
			fmt.Printf("  %-60s %12.0f ns/op  (baseline)\n", n, cur)
		default:
			old, ok := prev.Results[n]
			if !ok || old <= 0 {
				fmt.Printf("  %-60s %12.0f ns/op  (new)\n", n, cur)
				continue
			}
			delta := cur/old - 1
			mark := "ok"
			if delta > *tol {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-60s %12.0f ns/op  %+6.1f%%  %s\n", n, cur, 100*delta, mark)
		}
	}

	if !*dryRun {
		if err := writeSnapshot(outFile, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", outFile)
	}
	switch {
	case prev == nil:
		fmt.Println("no previous snapshot; trajectory baseline established (gate not applied)")
	case regressions == 0:
		fmt.Printf("trajectory vs %s: within %.0f%% tolerance\n", filepath.Base(prevFile), 100**tol)
	case *warnOnly:
		fmt.Printf("WARNING: %d benchmark(s) regressed >%.0f%% vs %s (warn-only)\n",
			regressions, 100**tol, filepath.Base(prevFile))
	default:
		log.Fatalf("%d benchmark(s) regressed >%.0f%% vs %s",
			regressions, 100**tol, filepath.Base(prevFile))
	}
}

// runBench invokes the repository's benchmarks and returns the raw
// `go test` output.
func runBench(dir, bench string, count int, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-count", strconv.Itoa(count), "-benchtime", benchtime, ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	return string(out), nil
}

// benchLine matches one result line of go test -bench output, e.g.
//
//	BenchmarkFrontierDense/serial/diag-8   10   48284734 ns/op   12 items/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// parseBench extracts per-benchmark ns/op medians from raw output. The
// -N GOMAXPROCS suffix is stripped so snapshots from hosts with
// different core counts key identically.
func parseBench(out string) (map[string]float64, error) {
	samples := map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %v", line, err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	results := make(map[string]float64, len(samples))
	for name, vs := range samples {
		sort.Float64s(vs)
		results[name] = vs[len(vs)/2]
	}
	return results, nil
}

// latestSnapshot finds the newest BENCH_<date>.json in dir. Date order
// is lexical order by construction of the names. Comparison runs
// before the new snapshot is written, so a same-day rerun gates
// against the committed file and then overwrites it.
func latestSnapshot(dir string) (string, *Snapshot, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", nil, err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		data, err := os.ReadFile(matches[i])
		if err != nil {
			return "", nil, err
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return "", nil, fmt.Errorf("%s: %v", matches[i], err)
		}
		return matches[i], &s, nil
	}
	return "", nil, nil
}

func writeSnapshot(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

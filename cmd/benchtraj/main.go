// Command benchtraj records the repository's performance trajectory:
// it runs the key serving and substrate benchmarks, writes the medians
// to BENCH_<date>.json at the repository root, and gates the result
// against the most recent previous snapshot. A benchmark whose ns/op
// grew by more than -tol (default 5%) fails the run — the budget the
// frontier refactor promised the dense path — unless -warn-only
// downgrades regressions to warnings (what CI uses, since shared
// runners are noisy).
//
// Usage:
//
//	benchtraj [-bench regex] [-count 5] [-benchtime 20x] [-dir .]
//	          [-tol 0.05] [-warn-only] [-dry-run]
//
// Without -bench the trajectory runs in two groups, each with a
// benchtime sized to its benchmarks: the substrate group (millisecond-
// scale frontier sweeps) uses a fixed 20 iterations, while the serving
// group (microsecond-scale cache hits, request handling, job and
// pipeline throughput) gets a 0.3s time budget per run — a fixed
// handful of microsecond iterations measures only a few hundred
// microseconds of work, which scheduler and hypervisor stalls swamp.
// Passing -bench runs that regex as a single group under -benchtime.
//
// The snapshot records one ns/op number per benchmark (the median
// across -count runs) plus the host fingerprint and the run settings,
// so consecutive files in the repository form a reviewable perf
// history. The gate only applies like-for-like: when the bench set,
// count or benchtime differ from the previous snapshot the numbers are
// not comparable (different operating points), so the run re-baselines
// instead of gating. Comparisons across different machines are
// likewise advisory only; the gate is meant for before/after runs on
// one host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// A benchGroup is one go test -bench invocation with a benchtime
// sized to its benchmarks' per-op scale.
type benchGroup struct {
	bench     string
	benchtime string
}

// defaultGroups selects the trajectory set: the frontier substrate
// including its dense-parity pairs (ms-scale ops, so a fixed 20
// iterations is already ~1s of measurement), and the serving hot paths
// — plan-cache hits, batch tuning across both prediction backends, the
// per-backend predict microbenchmark, job and pipeline throughput, the
// metrics-overhead probe pricing the telemetry layer — whose µs-scale
// ops need a time budget to average out scheduler stalls.
var defaultGroups = []benchGroup{
	{bench: "Frontier", benchtime: "20x"},
	{bench: "PlanCacheHit|TuneDuringPromotion|TuneBatch|JobThroughput|PipelineThroughput|MetricsOverhead|PredictBackend",
		benchtime: "0.3s"},
}

// Snapshot is the schema of one BENCH_<date>.json file.
type Snapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Bench      string `json:"bench"`
	Count      int    `json:"count"`
	Benchtime  string `json:"benchtime"`
	// Results maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op across the runs.
	Results map[string]float64 `json:"results_ns_per_op"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtraj: ")
	bench := flag.String("bench", "", "benchmark regex run as a single group (default: the built-in groups)")
	count := flag.Int("count", 5, "runs per benchmark; the median is recorded")
	benchtime := flag.String("benchtime", "", "go test -benchtime per run (overrides the per-group defaults)")
	dir := flag.String("dir", ".", "directory holding BENCH_<date>.json snapshots (the repo root)")
	tol := flag.Float64("tol", 0.05, "allowed fractional ns/op growth vs the previous snapshot")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit 0 (noisy shared runners)")
	dryRun := flag.Bool("dry-run", false, "run and compare but do not write the snapshot file")
	flag.Parse()

	groups := defaultGroups
	if *bench != "" {
		bt := *benchtime
		if bt == "" {
			bt = "20x"
		}
		groups = []benchGroup{{bench: *bench, benchtime: bt}}
	} else if *benchtime != "" {
		groups = make([]benchGroup, len(defaultGroups))
		for i, g := range defaultGroups {
			groups[i] = benchGroup{bench: g.bench, benchtime: *benchtime}
		}
	}

	results := map[string]float64{}
	benches := make([]string, 0, len(groups))
	benchtimes := make([]string, 0, len(groups))
	for _, g := range groups {
		out, err := runBench(*dir, g.bench, *count, g.benchtime)
		if err != nil {
			log.Fatal(err)
		}
		got, err := parseBench(out)
		if err != nil {
			log.Fatal(err)
		}
		if len(got) == 0 {
			log.Fatalf("no benchmarks matched %q", g.bench)
		}
		for n, v := range got {
			results[n] = v
		}
		benches = append(benches, g.bench)
		benchtimes = append(benchtimes, g.benchtime)
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      strings.Join(benches, ";"),
		Count:      *count,
		Benchtime:  strings.Join(benchtimes, ";"),
		Results:    results,
	}
	outFile := filepath.Join(*dir, "BENCH_"+snap.Date+".json")

	prevFile, prev, err := latestSnapshot(*dir)
	if err != nil {
		log.Fatal(err)
	}
	// The gate only compares like-for-like: a snapshot taken with a
	// different bench set, count or benchtime measured a different
	// operating point (burst vs sustained load), so its numbers say
	// nothing about a regression.
	rebaseline := ""
	if prev != nil && (prev.Bench != snap.Bench || prev.Count != snap.Count || prev.Benchtime != snap.Benchtime) {
		rebaseline = fmt.Sprintf("settings changed vs %s (bench %q count %d benchtime %q -> bench %q count %d benchtime %q)",
			filepath.Base(prevFile), prev.Bench, prev.Count, prev.Benchtime, snap.Bench, snap.Count, snap.Benchtime)
		prev = nil
	}

	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	for _, n := range names {
		cur := results[n]
		switch {
		case prev == nil:
			fmt.Printf("  %-60s %12.0f ns/op  (baseline)\n", n, cur)
		default:
			old, ok := prev.Results[n]
			if !ok || old <= 0 {
				fmt.Printf("  %-60s %12.0f ns/op  (new)\n", n, cur)
				continue
			}
			delta := cur/old - 1
			mark := "ok"
			if delta > *tol {
				mark = "REGRESSION"
				regressions++
			}
			fmt.Printf("  %-60s %12.0f ns/op  %+6.1f%%  %s\n", n, cur, 100*delta, mark)
		}
	}

	// A failing gate must not replace the baseline it failed against:
	// write the snapshot only when this run is a valid new trajectory
	// point (clean, warn-only, or a [re-]baseline).
	write := func() {
		if *dryRun {
			return
		}
		if err := writeSnapshot(outFile, snap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", outFile)
	}
	switch {
	case rebaseline != "":
		write()
		fmt.Printf("%s; trajectory baseline re-established (gate not applied)\n", rebaseline)
	case prev == nil:
		write()
		fmt.Println("no previous snapshot; trajectory baseline established (gate not applied)")
	case regressions == 0:
		write()
		fmt.Printf("trajectory vs %s: within %.0f%% tolerance\n", filepath.Base(prevFile), 100**tol)
	case *warnOnly:
		write()
		fmt.Printf("WARNING: %d benchmark(s) regressed >%.0f%% vs %s (warn-only)\n",
			regressions, 100**tol, filepath.Base(prevFile))
	default:
		log.Fatalf("%d benchmark(s) regressed >%.0f%% vs %s (snapshot not written)",
			regressions, 100**tol, filepath.Base(prevFile))
	}
}

// runBench invokes the repository's benchmarks and returns the raw
// `go test` output.
func runBench(dir, bench string, count int, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-count", strconv.Itoa(count), "-benchtime", benchtime, ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	return string(out), nil
}

// benchLine matches one result line of go test -bench output, e.g.
//
//	BenchmarkFrontierDense/serial/diag-8   10   48284734 ns/op   12 items/s
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?[0-9]+)?) ns/op`)

// parseBench extracts per-benchmark ns/op medians from raw output. The
// -N GOMAXPROCS suffix is stripped so snapshots from hosts with
// different core counts key identically.
func parseBench(out string) (map[string]float64, error) {
	samples := map[string][]float64{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %v", line, err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	results := make(map[string]float64, len(samples))
	for name, vs := range samples {
		sort.Float64s(vs)
		results[name] = vs[len(vs)/2]
	}
	return results, nil
}

// latestSnapshot finds the newest BENCH_<date>.json in dir. Date order
// is lexical order by construction of the names. Comparison runs
// before the new snapshot is written, so a same-day rerun gates
// against the committed file and then overwrites it.
func latestSnapshot(dir string) (string, *Snapshot, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", nil, err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		data, err := os.ReadFile(matches[i])
		if err != nil {
			return "", nil, err
		}
		var s Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return "", nil, fmt.Errorf("%s: %v", matches[i], err)
		}
		return matches[i], &s, nil
	}
	return "", nil, nil
}

func writeSnapshot(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Command waved is the tuning daemon: it serves tuned wavefront
// configurations over HTTP ("tuning as a service"). Predictions are
// cached per (system, instance) with concurrent misses deduplicated, so
// heavy traffic asking for the same workloads costs one tuner evaluation
// per distinct instance. Tuners are resolved lazily per system: loaded
// from -tuners dir when given (files written by wavetrain -save),
// otherwise trained on first use.
//
// Usage:
//
//	waved [-addr :8080] [-systems i7-2600K,i3-540] [-tuners dir]
//	      [-cache 512] [-cache-file plans.json] [-full]
//
// Endpoints:
//
//	POST /v1/tune     {"system":"i7-2600K","dim":1900,"app":"nash","rounds":2}
//	GET  /v1/systems  served systems and tuner states
//	GET  /v1/stats    cache and request counters
//	GET  /healthz     liveness probe
//
// SIGINT/SIGTERM shut the server down gracefully; with -cache-file the
// plan cache is persisted on shutdown and warmed on the next start.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/wavefront"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waved: ")
	addr := flag.String("addr", ":8080", "listen address")
	systems := flag.String("systems", "", "comma-separated systems to serve (default: all Table 4 systems)")
	tunersDir := flag.String("tuners", "", "directory of <system>.json tuner files (default: train lazily)")
	cacheSize := flag.Int("cache", 0, "plan-cache capacity (0 = default)")
	cacheFile := flag.String("cache-file", "", "persist the plan cache to this file across restarts")
	full := flag.Bool("full", false, "train lazily on the full Table 3 space instead of the quick one")
	flag.Parse()

	cfg := wavefront.TuningConfig{
		CacheSize: *cacheSize,
		CachePath: *cacheFile,
		Logf:      log.Printf,
	}
	if *systems != "" {
		for _, name := range strings.Split(*systems, ",") {
			name = strings.TrimSpace(name)
			sys, ok := wavefront.SystemByName(name)
			if !ok {
				log.Fatalf("unknown system %q", name)
			}
			cfg.Systems = append(cfg.Systems, sys)
		}
	}
	switch {
	case *tunersDir != "" && *full:
		log.Fatal("-full trains tuners lazily and conflicts with -tuners; pass one or the other")
	case *tunersDir != "":
		cfg.Tuners = wavefront.NewDirTunerSource(*tunersDir)
	case *full:
		cfg.Tuners = wavefront.NewTrainingTunerSource(wavefront.TrainingSourceOptions{
			Space: wavefront.DefaultSpace(),
		})
	}

	srv, err := wavefront.NewTuningServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatal(err)
		}
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
}

// Command waved is the tuning daemon: it serves tuned wavefront
// configurations over HTTP ("tuning as a service") and runs whole tuned
// wavefront jobs asynchronously. Predictions are cached per (system,
// instance) with concurrent misses deduplicated, so heavy traffic
// asking for the same workloads costs one tuner evaluation per distinct
// instance. Tuners are resolved lazily per system: loaded from -tuners
// dir when given (files written by wavetrain -save), otherwise trained
// on first use. Jobs run on a bounded worker pool behind a bounded
// priority queue; jobs that opt into refinement hill-climb around the
// cached prediction and append the measured outcome to the -train-log
// directory (per-system search-CSV files for wavetrain -from).
//
// With -train-log set, a background retrainer closes the feedback loop:
// it watches the observation logs, shadow-trains a challenger tuner
// once enough rows accumulate (-retrain-min-obs, or an age threshold),
// scores champion against challenger on a held-out split
// (-retrain-holdout), and atomically promotes the winner — invalidating
// only that system's cached plans. Promotions are logged with
// generation IDs and surface in GET /v1/stats (retrain block) and
// /metrics (waved_model_generation, waved_retrain_*). -retrain-off
// disables the loop.
//
// Jobs can be chained into wave-DAG pipelines (POST /v1/pipelines):
// ordered waves of jobs where a wave's jobs run in parallel and wave
// N+1 starts only after wave N resolves, with per-wave failure policy
// (abort / continue / retry-budget).
//
// Usage:
//
//	waved [-addr :8080] [-systems i7-2600K,i3-540] [-tuners dir]
//	      [-cache 512] [-cache-shards 0] [-cache-file plans.json] [-full]
//	      [-model tree|bilinear]
//	      [-batch-limit 64] [-workers 4] [-queue-depth 64]
//	      [-refine-budget 12] [-train-log dir] [-max-pipelines 16]
//	      [-retrain-off] [-retrain-interval 5m] [-retrain-min-obs 32]
//	      [-retrain-holdout 0.25]
//	      [-log-format text|json] [-slow-request 0] [-slow-job 0]
//	      [-pprof-addr localhost:6060]
//
// Endpoints:
//
//	POST   /v1/tune            {"system":"i7-2600K","dim":1900,"app":"nash","params":{"rounds":2}}
//	POST   /v1/tune/batch      {"system":"i7-2600K","items":[{"dim":1900,"app":"nash"},...]}
//	POST   /v1/jobs            {"system":"i7-2600K","dim":1900,"app":"nash","refine":true}
//	GET    /v1/jobs            job records (filter: ?state=queued&system=i7-2600K)
//	GET    /v1/jobs/{id}       poll one job
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	POST   /v1/pipelines       {"system":"i7-2600K","waves":[{"jobs":[...]},{"after":["wave-0"],"jobs":[...]}]}
//	GET    /v1/pipelines       pipeline records (filter: ?state=wave-running)
//	GET    /v1/pipelines/{id}  poll one pipeline (per-wave states, job IDs)
//	DELETE /v1/pipelines/{id}  cancel a pipeline; DELETE /v1/pipelines prunes finished records
//	GET    /v1/apps            application catalog (names, tsize/dsize, parameter schemas)
//	GET    /v1/systems         served systems and tuner states
//	GET    /v1/stats           cache, job, pipeline and request counters, latency quantiles
//	GET    /metrics            the same counters in Prometheus text format
//	GET    /healthz            liveness probe
//
// Observability: every request is logged as one structured line
// (-log-format selects key=value text or JSON) stamped with an
// X-Request-ID that is echoed in the response header, error bodies and
// job records; requests or jobs slower than -slow-request / -slow-job
// log their full trace-span tree; -pprof-addr serves net/http/pprof on
// a side listener kept off the public API address.
//
// Named applications come from the registry (internal/apps, public
// wavefront.RegisterApp); GET /v1/apps lists everything this daemon
// accepts, including any workloads registered by embedding code.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests and
// jobs drain, and with -cache-file the plan cache is persisted on
// shutdown and warmed on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/wavefront"
)

// onlyContextErrs reports whether err (possibly an errors.Join tree)
// consists solely of context cancellation/deadline errors.
func onlyContextErrs(err error) bool {
	if err == nil {
		return true
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range u.Unwrap() {
			if !onlyContextErrs(e) {
				return false
			}
		}
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("waved: ")
	addr := flag.String("addr", ":8080", "listen address")
	systems := flag.String("systems", "", "comma-separated systems to serve (default: all Table 4 systems)")
	tunersDir := flag.String("tuners", "", "directory of <system>.json tuner files (default: train lazily)")
	cacheSize := flag.Int("cache", 0, "plan-cache capacity (0 = default)")
	cacheShards := flag.Int("cache-shards", 0, "plan-cache shard count (0 = GOMAXPROCS; clamped for small caches)")
	cacheFile := flag.String("cache-file", "", "persist the plan cache to this file across restarts")
	batchLimit := flag.Int("batch-limit", 0, "max items per /v1/tune/batch request (0 = default)")
	full := flag.Bool("full", false, "train lazily on the full Table 3 space instead of the quick one")
	model := flag.String("model", "", "prediction backend for lazily trained tuners and retrain challengers: tree or bilinear (default tree; with -tuners the file's kind wins and -model only steers retraining)")
	workers := flag.Int("workers", 0, "job worker pool size (0 = default)")
	queueDepth := flag.Int("queue-depth", 0, "job queue bound; overflow answers 429 (0 = default)")
	refineBudget := flag.Int("refine-budget", 0, "probe budget per refine job (0 = default)")
	trainLog := flag.String("train-log", "", "directory for refined jobs' measured observations (per-system CSVs for wavetrain -from)")
	retrainOff := flag.Bool("retrain-off", false, "disable background retraining even when -train-log is set")
	retrainInterval := flag.Duration("retrain-interval", 0, "background retrainer polling period (0 = default; observations wake it early)")
	retrainMinObs := flag.Int("retrain-min-obs", 0, "observations that trigger a retrain (0 = default)")
	retrainHoldout := flag.Float64("retrain-holdout", 0, "observation fraction held out for the champion/challenger comparison (0 = default)")
	maxPipelines := flag.Int("max-pipelines", 0, "max concurrently active pipelines; overflow answers 429 (0 = default)")
	logFormat := flag.String("log-format", "text", "log line encoding: text (key=value) or json")
	slowRequest := flag.Duration("slow-request", 0, "log the trace-span tree of requests at least this slow (0 = off)")
	slowJob := flag.Duration("slow-job", 0, "log the trace-span tree of jobs and pipelines at least this slow (0 = off)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
	flag.Parse()

	format, err := wavefront.ParseLogFormat(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	switch *model {
	case "", wavefront.ModelKindTree, wavefront.ModelKindBilinear:
	default:
		log.Fatalf("unknown model kind %q (want tree or bilinear)", *model)
	}

	cfg := wavefront.TuningConfig{
		CacheSize:   *cacheSize,
		CacheShards: *cacheShards,
		BatchLimit:  *batchLimit,
		CachePath:   *cacheFile,
		Jobs: wavefront.JobOptions{
			Workers:        *workers,
			QueueDepth:     *queueDepth,
			RefineBudget:   *refineBudget,
			TrainingLogDir: *trainLog,
			MaxPipelines:   *maxPipelines,
			SlowJob:        *slowJob,
		},
		Retrain: wavefront.RetrainOptions{
			Off:             *retrainOff,
			Interval:        *retrainInterval,
			MinObservations: *retrainMinObs,
			Holdout:         *retrainHoldout,
			Kind:            *model,
		},
		Logger:      wavefront.NewStructuredLogger(os.Stderr, format),
		SlowRequest: *slowRequest,
	}
	if *systems != "" {
		for _, name := range strings.Split(*systems, ",") {
			name = strings.TrimSpace(name)
			sys, ok := wavefront.SystemByName(name)
			if !ok {
				log.Fatalf("unknown system %q", name)
			}
			cfg.Systems = append(cfg.Systems, sys)
		}
	}
	switch {
	case *tunersDir != "" && *full:
		log.Fatal("-full trains tuners lazily and conflicts with -tuners; pass one or the other")
	case *tunersDir != "":
		cfg.Tuners = wavefront.NewDirTunerSource(*tunersDir)
	case *full:
		cfg.Tuners = wavefront.NewTrainingTunerSource(wavefront.TrainingSourceOptions{
			Space: wavefront.DefaultSpace(),
			Kind:  *model,
		})
	case *model != "":
		cfg.Tuners = wavefront.NewTrainingTunerSource(wavefront.TrainingSourceOptions{
			Kind: *model,
		})
	}

	srv, err := wavefront.NewTuningServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAddr != "" {
		// pprof rides a side listener, never the public API address: the
		// default ServeMux (which net/http/pprof registers on) is not
		// used by the daemon, so a dedicated mux keeps this explicit.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if perr := http.ListenAndServe(*pprofAddr, pm); perr != nil {
				log.Printf("pprof server: %v", perr)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			// A drain cut short by the deadline is a documented outcome
			// of stopping under load, not a failed shutdown: exit
			// cleanly so supervisors don't flag the stop. Anything else
			// in the joined error — a failed plan-cache persist above
			// all — is a real failure and must surface in the exit code.
			if !onlyContextErrs(err) {
				log.Fatalf("shutdown failed: %v", err)
			}
			log.Printf("shutdown incomplete: %v", err)
		}
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
}

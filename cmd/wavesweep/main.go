// Command wavesweep runs the exhaustive tuning-space exploration of the
// synthetic wavefront application on a modeled system (Section 4.1) and
// prints the Figure 5 heatmaps, optionally dumping every evaluated point
// as CSV (the app column of the dump names the synthetic trainer; see
// -apps for the full application catalog the trained tuner deploys on).
//
// Usage:
//
//	wavesweep [-system i7-2600K] [-full] [-csv points.csv]
//	wavesweep -apps
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wavesweep: ")
	sysName := flag.String("system", "i7-2600K", "system to sweep (i3-540, i7-2600K, i7-3820)")
	full := flag.Bool("full", false, "use the full Table 3 space instead of the quick one")
	csvPath := flag.String("csv", "", "write every evaluated point to this CSV file")
	listApps := flag.Bool("apps", false, "print the application catalog and exit")
	flag.Parse()

	if *listApps {
		fmt.Print(apps.RenderCatalog())
		return
	}

	sys, ok := hw.ByName(*sysName)
	if !ok {
		log.Fatalf("unknown system %q", *sysName)
	}
	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Systems = []hw.System{sys}
	ctx := experiments.NewContext(cfg)

	sr, err := ctx.Search(sys)
	if err != nil {
		// A failure deep into a long sweep no longer discards the finished
		// instances: persist whatever completed before exiting, so the
		// partial CSV can seed a retry or a bug report. It goes to a
		// distinct .partial path — the error path must never truncate a
		// complete CSV from an earlier successful run.
		if *csvPath != "" && sr != nil && sr.Evaluations() > 0 {
			partial := *csvPath + ".partial"
			if werr := writeCSV(sr, partial); werr != nil {
				log.Printf("could not save partial results: %v", werr)
			} else {
				log.Printf("saved %d completed evaluations (%d instances) to %s",
					sr.Evaluations(), len(sr.Instances), partial)
			}
		}
		log.Fatal(err)
	}
	fmt.Printf("exhaustive search on %s: %d instances, %d evaluations\n\n",
		sys.Name, len(sr.Instances), sr.Evaluations())

	for _, dsize := range []int{1, 5} {
		data, err := ctx.Fig5(sys, dsize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(data.Render())
	}

	if *csvPath != "" {
		if err := writeCSV(sr, *csvPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d points; reload with wavetrain -from)\n", *csvPath, sr.Evaluations())
	}
}

// writeCSV dumps every evaluated point of sr (complete or partial) to
// path in the search-CSV format wavetrain -from reads.
func writeCSV(sr *core.SearchResult, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sr.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command waverepro regenerates every table and figure of the paper's
// evaluation section and prints them in order — preceded by the
// registered application catalog (apps.txt) — optionally writing each
// artifact to a directory. With -full it uses the paper-scale search
// space (several minutes); by default it runs the quick configuration.
//
// Usage:
//
//	waverepro [-full] [-out results/]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("waverepro: ")
	full := flag.Bool("full", false, "use the paper-scale search space")
	out := flag.String("out", "", "directory to write per-figure artifacts")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	ctx := experiments.NewContext(cfg)

	var sink func(name, content string)
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		sink = func(name, content string) {
			path := filepath.Join(*out, name)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		sink = func(string, string) {}
	}
	emit := func(name, content string) {
		fmt.Println(content)
		fmt.Println(strings.Repeat("=", 72))
		sink(name, content)
	}

	emit("apps.txt", apps.RenderCatalog())
	emit("fig1.txt", experiments.Fig1(8))
	fig2, err := experiments.Fig2()
	check(err)
	emit("fig2.txt", fig2)
	fig3, err := experiments.Fig3()
	check(err)
	emit("fig3.txt", fig3)
	emit("table3.txt", experiments.Table3(cfg.Space))
	emit("table4.txt", experiments.Table4(hw.Systems()))

	var fig5All strings.Builder
	for _, sys := range cfg.Systems {
		for _, dsize := range []int{1, 5} {
			d, err := ctx.Fig5(sys, dsize)
			check(err)
			fig5All.WriteString(d.Render())
			fig5All.WriteString("\n")
		}
	}
	emit("fig5.txt", fig5All.String())

	fig6, err := ctx.Fig6()
	check(err)
	emit("fig6.txt", experiments.RenderFig6(fig6))

	var fig7All strings.Builder
	for _, sys := range cfg.Systems {
		for _, dsize := range []int{1, 5} {
			rows, err := ctx.Fig7(sys, dsize)
			check(err)
			fig7All.WriteString(experiments.RenderFig7(sys, dsize, rows))
			fig7All.WriteString("\n")
		}
	}
	emit("fig7.txt", fig7All.String())

	i7 := hw.I7_2600K()
	dims := []int{cfg.Space.Dims[0], cfg.Space.Dims[len(cfg.Space.Dims)-1]}
	if *full {
		dims = []int{700, 2700}
	}
	vs, err := ctx.Fig8(i7, dims, []int{1, 5}, cfg.Space.TSizes)
	check(err)
	emit("fig8.txt", experiments.RenderFig8(i7, vs))

	fig9, err := ctx.Fig9(i7)
	check(err)
	emit("fig9.txt", fig9)

	fig10, err := ctx.Fig10()
	check(err)
	emit("fig10.txt", experiments.RenderFig10(fig10))
	emit("fig11.txt", experiments.RenderFig11(fig10))

	seq, err := ctx.SeqCompare()
	check(err)
	var sb strings.Builder
	sb.WriteString("Sequence comparison deployment (Section 4.2):\n")
	for _, s := range seq {
		fmt.Fprintf(&sb, "  %-10s all-CPU: %v\n", s.Sys.Name, s.AllCPU)
	}
	emit("seqcompare.txt", sb.String())

	scaling, err := experiments.ExtGPUScaling(4)
	check(err)
	emit("ext_scaling.txt", experiments.RenderScaling(scaling))

	online, err := ctx.ExtOnline(hw.I7_2600K())
	check(err)
	emit("ext_online.txt", experiments.RenderOnline(hw.I7_2600K(), online))

	h, err := ctx.ComputeHeadline()
	check(err)
	emit("headline.txt", h.Render())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package wavefront_test

import (
	"fmt"

	"repro/wavefront"
)

// Example computes a small Smith-Waterman alignment with the wavefront
// pattern library: define a kernel, allocate the grid, run it on the
// host CPU, and read the score out of the final cell.
func Example() {
	query := []byte("GATTACA")
	ref := []byte("GCATGCGATTACA")
	k := wavefront.NewSeqCompareWith(query, ref)
	g := wavefront.NewRectGrid(len(query), len(ref), 0)
	wavefront.RunSerial(k, g)
	fmt.Printf("aligned %dx%d cells, score %d\n",
		g.Rows(), g.Cols(), g.B(g.Rows()-1, g.Cols()-1))
	// Output:
	// aligned 7x13 cells, score 14
}

// ExampleNewRectGrid shows the rectangular grid shape: a rows x cols
// array has rows+cols-1 anti-diagonals whose parallelism profile is
// trapezoidal rather than the square's triangular one.
func ExampleNewRectGrid() {
	g := wavefront.NewRectGrid(600, 1400, 1)
	k := wavefront.NewSynthetic(10, 1)
	inst := wavefront.RectInstanceOf(g.Rows(), g.Cols(), k)
	fmt.Printf("shape %dx%d, square=%v\n", g.Rows(), g.Cols(), g.Square())
	fmt.Printf("anti-diagonals: %d (widest %d cells)\n", g.NumDiags(), inst.MinSide())
	// Output:
	// shape 600x1400, square=false
	// anti-diagonals: 1999 (widest 600 cells)
}

// ExampleTuner_Predict is the paper's deployment path: train an
// autotuner for a modeled system on the synthetic application, then
// predict tuned parameters for an unseen application instance (here the
// Nash kernel at dim 1900).
func ExampleTuner_Predict() {
	sys, _ := wavefront.SystemByName("i7-2600K")
	sr, err := wavefront.Exhaustive(sys, wavefront.QuickSpace())
	if err != nil {
		panic(err)
	}
	tuner, err := wavefront.Train(sr, wavefront.DefaultTrainOptions())
	if err != nil {
		panic(err)
	}

	k := wavefront.NewNash(2)
	inst := wavefront.InstanceOf(1900, k)
	pred := tuner.Predict(inst)
	fmt.Printf("serial: %v\n", pred.Serial)
	fmt.Printf("offloads to GPU: %v\n", pred.Par.GPUCount() > 0)
	fmt.Printf("valid cpu-tile: %v\n", pred.Par.CPUTile >= 1 && pred.Par.CPUTile <= 1900)
	// Output:
	// serial: false
	// offloads to GPU: true
	// valid cpu-tile: true
}

// ExampleNewPlanCache shows the serving layer's cache: misses run the
// predict function once per distinct (system, instance) key, repeats
// are hits, and the counters expose the ratio.
func ExampleNewPlanCache() {
	cache := wavefront.NewPlanCache(128, func(system string, inst wavefront.Instance) (wavefront.CachedPlan, error) {
		// A stand-in for Tuner.PredictTimed; the real daemon plugs the
		// trained tuner in here.
		return wavefront.CachedPlan{Par: wavefront.CPUOnly(8), RTimeNs: 1e9, SerialNs: 4e9}, nil
	})

	inst := wavefront.Instance{Dim: 1900, TSize: 750, DSize: 4}
	for i := 0; i < 3; i++ {
		plan, outcome, _ := cache.Get("i7-2600K", inst)
		fmt.Printf("%s: speedup %.1fx\n", outcome, plan.SerialNs/plan.RTimeNs)
	}
	st := cache.Stats()
	fmt.Printf("hits=%d misses=%d size=%d\n", st.Hits, st.Misses, st.Size)
	// Output:
	// miss: speedup 4.0x
	// hit: speedup 4.0x
	// hit: speedup 4.0x
	// hits=2 misses=1 size=1
}

package wavefront

// The serving surface: the paper's "train once, predict per instance"
// deployment exposed as a long-running component. PlanCache memoizes
// tuned decisions per (system, instance); TuningServer wraps it in the
// HTTP protocol served by cmd/waved. As with the rest of this package,
// the types are aliases of the internal implementation so downstream
// code never imports repro/internal/... directly.

import (
	"repro/internal/service"
	"repro/internal/tunecache"
)

// PlanCache is a concurrency-safe LRU cache of tuned plans with
// singleflight deduplication of concurrent misses and JSON persistence.
type PlanCache = tunecache.Cache

// CachedPlan is a cached tuning decision with its modeled runtimes.
type CachedPlan = tunecache.Plan

// CacheStats is a snapshot of a PlanCache's counters.
type CacheStats = tunecache.Stats

// PredictFunc fills PlanCache misses; it runs exactly once per missing
// key regardless of how many callers wait on it.
type PredictFunc = tunecache.PredictFunc

// TuningServer is the HTTP tuning daemon: POST /v1/tune, GET /v1/systems,
// GET /v1/stats, GET /healthz.
type TuningServer = service.Server

// TuningConfig configures NewTuningServer.
type TuningConfig = service.Config

// TunerSource lazily resolves the tuner for a system (trained on demand,
// loaded from disk, or served from memory).
type TunerSource = service.TunerSource

// ReadyReporter is the optional TunerSource extension consulted by
// GET /v1/systems for the "lazy"/"ready" tuner state.
type ReadyReporter = service.ReadyReporter

// TrainingSourceOptions configure NewTrainingTunerSource.
type TrainingSourceOptions = service.TrainingSourceOptions

// NewPlanCache creates a plan cache bounded to capacity entries
// (capacity <= 0 selects the default) filling misses through predict.
func NewPlanCache(capacity int, predict PredictFunc) *PlanCache {
	return tunecache.New(capacity, predict)
}

// NewTuningServer builds the tuning daemon from cfg. The zero config
// serves every Table 4 system with lazily trained quick-space tuners.
func NewTuningServer(cfg TuningConfig) (*TuningServer, error) {
	return service.New(cfg)
}

// NewTrainingTunerSource returns a TunerSource that trains a tuner per
// system on first use (the wavetrain "factory" path, run lazily).
func NewTrainingTunerSource(opts TrainingSourceOptions) TunerSource {
	return service.NewTrainingSource(opts)
}

// NewDirTunerSource returns a TunerSource that loads
// "<dir>/<system>.json" tuner files written by Tuner.Save
// (wavetrain -save).
func NewDirTunerSource(dir string) TunerSource {
	return service.NewDirSource(dir)
}

// NewStaticTunerSource serves the given pre-built tuners, indexed by
// system name.
func NewStaticTunerSource(tuners ...*Tuner) TunerSource {
	return service.NewStaticSource(tuners...)
}

package wavefront

// The serving surface: the paper's "train once, predict per instance"
// deployment exposed as a long-running component. PlanCache memoizes
// tuned decisions per (system, instance); TuningServer wraps it in the
// HTTP protocol served by cmd/waved; JobManager runs whole tuned
// wavefront jobs asynchronously (queue, worker pool, cancellation,
// online-refinement feedback into an ObservationLog). As with the rest
// of this package, the types are aliases of the internal implementation
// so downstream code never imports repro/internal/... directly.

import (
	"context"
	"net/http"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/retrain"
	"repro/internal/service"
	"repro/internal/tunecache"
)

// PlanCache is a concurrency-safe sharded LRU cache of tuned plans with
// singleflight deduplication of concurrent misses and JSON persistence.
// Keys hash onto independently locked shards, so concurrent lookups on
// different keys never contend on one mutex.
type PlanCache = tunecache.Cache

// CachedPlan is a cached tuning decision with its modeled runtimes.
type CachedPlan = tunecache.Plan

// CacheStats is a snapshot of a PlanCache's counters.
type CacheStats = tunecache.Stats

// PredictFunc fills PlanCache misses; it runs exactly once per missing
// key regardless of how many callers wait on it.
type PredictFunc = tunecache.PredictFunc

// PredictCtxFunc is the context-aware PredictFunc: the leading caller's
// context (and so its trace span) reaches the fill, for caches built
// with NewPlanCacheCtx and queried through PlanCache.GetCtx.
type PredictCtxFunc = tunecache.PredictCtxFunc

// CacheOutcome classifies how a PlanCache lookup was served.
type CacheOutcome = tunecache.Outcome

// The three lookup outcomes: resident (CacheHit), computed by this
// caller (CacheMiss), or shared from a concurrent caller's in-flight
// computation (CacheCoalesced).
const (
	CacheHit       = tunecache.Hit
	CacheMiss      = tunecache.Miss
	CacheCoalesced = tunecache.Coalesced
)

// TuningServer is the HTTP tuning daemon: POST /v1/tune, the
// POST/GET/DELETE /v1/jobs job routes, GET /v1/systems, GET /v1/stats,
// GET /healthz. Its job manager is reachable via Jobs().
type TuningServer = service.Server

// TuningConfig configures NewTuningServer.
type TuningConfig = service.Config

// TunerSource lazily resolves the tuner for a system (trained on demand,
// loaded from disk, or served from memory).
type TunerSource = service.TunerSource

// ReadyReporter is the optional TunerSource extension consulted by
// GET /v1/systems for the "lazy"/"ready" tuner state.
type ReadyReporter = service.ReadyReporter

// TrainingSourceOptions configure NewTrainingTunerSource.
type TrainingSourceOptions = service.TrainingSourceOptions

// NewPlanCache creates a plan cache bounded to capacity entries
// (capacity <= 0 selects the default) filling misses through predict,
// sharded the default way (GOMAXPROCS shards, clamped for small caches).
func NewPlanCache(capacity int, predict PredictFunc) *PlanCache {
	return tunecache.New(capacity, predict)
}

// CacheOptions configure NewPlanCacheOpts beyond the capacity bound.
type CacheOptions struct {
	// Capacity bounds the resident plans (<= 0 selects the default).
	Capacity int
	// Shards is the number of independently locked shards (<= 0 selects
	// GOMAXPROCS; the count is clamped so every shard keeps a useful
	// LRU slice, meaning small caches stay unsharded with exact LRU
	// semantics).
	Shards int
}

// NewPlanCacheOpts creates a plan cache with explicit sharding control;
// NewPlanCache is the common-default shorthand.
func NewPlanCacheOpts(opts CacheOptions, predict PredictFunc) *PlanCache {
	return tunecache.NewSharded(opts.Capacity, opts.Shards, predict)
}

// NewPlanCacheCtx is NewPlanCacheOpts with a context-aware predict, so
// trace spans thread through the miss path (see PredictCtxFunc).
func NewPlanCacheCtx(opts CacheOptions, predict PredictCtxFunc) *PlanCache {
	return tunecache.NewShardedCtx(opts.Capacity, opts.Shards, predict)
}

// NewTuningServer builds the tuning daemon from cfg. The zero config
// serves every Table 4 system with lazily trained quick-space tuners.
func NewTuningServer(cfg TuningConfig) (*TuningServer, error) {
	return service.New(cfg)
}

// TuneRequest is one tune query in the daemon's wire format: the
// instance shape plus either explicit granularity or a named catalog
// application (the per-item element of BatchTuneRequest).
type TuneRequest = service.TuneRequest

// BatchTuneRequest is the body of POST /v1/tune/batch: up to the
// daemon's batch limit of tune queries answered in one round trip, with
// repeated shapes deduplicated server-side.
type BatchTuneRequest = service.BatchTuneRequest

// DefaultBatchLimit is the daemon's default cap on items per batch
// request (waved -batch-limit overrides it); clients submitting more
// shapes than this should chunk.
const DefaultBatchLimit = service.DefaultBatchLimit

// BatchTuneResponse is the reply of POST /v1/tune/batch; Results aligns
// index-for-index with the request's items.
type BatchTuneResponse = service.BatchTuneResponse

// BatchTuneResult is one batch item's outcome: a tune response, or an
// error scoped to that item alone.
type BatchTuneResult = service.BatchTuneResult

// TuneBatch submits a batch of tune queries to the daemon at baseURL
// (e.g. "http://localhost:8080") in one POST /v1/tune/batch round trip.
// client == nil selects http.DefaultClient. Per-item failures are
// reported in the result slice; only a rejected batch (too many items,
// malformed request, unreachable daemon) returns an error.
func TuneBatch(ctx context.Context, client *http.Client, baseURL string, req BatchTuneRequest) (*BatchTuneResponse, error) {
	return service.BatchTune(ctx, client, baseURL, req)
}

// NewTrainingTunerSource returns a TunerSource that trains a tuner per
// system on first use (the wavetrain "factory" path, run lazily).
func NewTrainingTunerSource(opts TrainingSourceOptions) TunerSource {
	return service.NewTrainingSource(opts)
}

// NewDirTunerSource returns a TunerSource that loads
// "<dir>/<system>.json" tuner files written by Tuner.Save
// (wavetrain -save).
func NewDirTunerSource(dir string) TunerSource {
	return service.NewDirSource(dir)
}

// NewStaticTunerSource serves the given pre-built predictors of any
// backend kind, indexed by system name.
func NewStaticTunerSource(tuners ...Predictor) TunerSource {
	return service.NewStaticSource(tuners...)
}

// JobManager is the asynchronous job execution subsystem: a bounded
// priority queue and worker pool running tuned wavefront jobs against
// the modeled systems, with per-job lifecycle records, cooperative
// cancellation, graceful drain and optional online-refinement feedback.
// It also runs wave-DAG pipelines (SubmitPipeline): jobs grouped into
// ordered waves with sequential barriers and per-wave failure policies.
type JobManager = jobs.Manager

// JobConfig configures NewJobManager.
type JobConfig = jobs.Config

// JobSpec describes a submitted job (system, instance, priority,
// refinement opt-in).
type JobSpec = jobs.Spec

// Job is an immutable snapshot of one job record.
type Job = jobs.Job

// JobResult is what a succeeded job executed and measured.
type JobResult = jobs.Result

// JobState is a job's lifecycle state; JobPriority its admission class.
type JobState = jobs.State

// JobPriority is a job's admission class.
type JobPriority = jobs.Priority

// JobFilter selects jobs in JobManager.List.
type JobFilter = jobs.Filter

// JobStats is a snapshot of a JobManager's counters.
type JobStats = jobs.Stats

// JobPlanFunc resolves the tuned plan for a job (JobConfig.Plans); pass
// a PlanCache's Get method, or any custom resolver with this signature.
type JobPlanFunc = jobs.PlanFunc

// JobTunerFunc resolves the base tuner refine jobs climb around
// (JobConfig.Tuners).
type JobTunerFunc = jobs.TunerFunc

// JobOptions is the service-level job configuration consumed by
// TuningConfig.Jobs (worker/queue bounds, refine budget, training log).
type JobOptions = service.JobOptions

// Job lifecycle states and admission classes, re-exported for callers
// outside the module.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobSucceeded = jobs.StateSucceeded
	JobFailed    = jobs.StateFailed
	JobCanceled  = jobs.StateCanceled

	JobPriorityLow    = jobs.PriorityLow
	JobPriorityNormal = jobs.PriorityNormal
	JobPriorityHigh   = jobs.PriorityHigh
)

// NewJobManager starts an asynchronous job manager from cfg (library
// use without the HTTP daemon; the daemon's manager is reachable via
// TuningServer.Jobs).
func NewJobManager(cfg JobConfig) (*JobManager, error) {
	return jobs.New(cfg)
}

// PipelineSpec describes a wave-DAG pipeline submission: ordered waves
// of job specs, where jobs within a wave run in parallel through the
// manager's worker pool and wave N+1 is admitted only after wave N
// resolves at a sequential barrier.
type PipelineSpec = jobs.PipelineSpec

// WaveSpec is one wave of a PipelineSpec: parallel jobs between two
// sequential barriers, with a failure policy.
type WaveSpec = jobs.WaveSpec

// PipelineJob is one named job of a wave.
type PipelineJob = jobs.PipelineJob

// WaveFailurePolicy decides how a wave resolves when jobs fail: abort
// (default), continue, or retry within a budget.
type WaveFailurePolicy = jobs.FailurePolicy

// The three wave failure policies.
const (
	WavePolicyAbort    = jobs.PolicyAbort
	WavePolicyContinue = jobs.PolicyContinue
	WavePolicyRetry    = jobs.PolicyRetry
)

// Pipeline is an immutable snapshot of one pipeline record; Wave
// snapshots one of its waves.
type Pipeline = jobs.Pipeline

// PipelineWave is the immutable snapshot of one wave's record.
type PipelineWave = jobs.PipelineWave

// PipelineState is a pipeline's lifecycle state; PipelineEvent drives
// the state machine.
type PipelineState = jobs.PipelineState

// PipelineEvent is one input of the pipeline state machine.
type PipelineEvent = jobs.PipelineEvent

// Pipeline lifecycle states, re-exported for callers outside the
// module.
const (
	PipelineQueued      = jobs.PipeQueued
	PipelineWaveRunning = jobs.PipeWaveRunning
	PipelineWaveBarrier = jobs.PipeWaveBarrier
	PipelineSucceeded   = jobs.PipeSucceeded
	PipelineFailed      = jobs.PipeFailed
	PipelineCanceled    = jobs.PipeCanceled
)

// PipelineFilter selects pipelines in JobManager.ListPipelines.
type PipelineFilter = jobs.PipelineFilter

// PipelineStats is a snapshot of a JobManager's pipeline counters.
type PipelineStats = jobs.PipelineStats

// PipelineTransition is the pipeline lifecycle state machine as a pure
// function: the state after applying e in s, and whether the transition
// is legal.
func PipelineTransition(s PipelineState, e PipelineEvent) (PipelineState, bool) {
	return jobs.PipelineTransition(s, e)
}

// ObservationLog persists measured (instance, params, runtime)
// observations as per-system search-CSV files that wavetrain -from can
// fold into retraining.
type ObservationLog = core.ObservationLog

// Observation is one measured configuration for the ObservationLog.
type Observation = core.Observation

// NewObservationLog creates (if needed) dir and returns a log writing
// per-system CSV files into it.
func NewObservationLog(dir string) (*ObservationLog, error) {
	return core.NewObservationLog(dir)
}

// RetrainOptions configure the daemon's background champion/challenger
// retrainer (TuningConfig.Retrain): loop thresholds, holdout fraction
// and the promotion guardrail. The retrainer runs whenever a training
// log directory is configured and Off is false.
type RetrainOptions = service.RetrainOptions

// Retrainer is the background champion/challenger loop behind the
// daemon (TuningServer.Retrainer): it watches the observation logs,
// shadow-trains challengers on accumulated rows, scores them against
// the serving champion on a held-out split, and atomically promotes
// winners.
type Retrainer = retrain.Retrainer

// RetrainGuardrail parameterizes the promotion gate: minimum paired
// samples, minimum mean-error improvement, and the sign-test win-rate
// floor that keeps a lucky noisy challenger from being promoted.
type RetrainGuardrail = retrain.GuardrailOptions

// RetrainVerdict is the outcome of one champion/challenger comparison.
type RetrainVerdict = retrain.Verdict

// RetrainStats is the retrainer's snapshot surfaced through /v1/stats
// (model generations, promotion counters, last verdicts per system).
type RetrainStats = retrain.Stats

// RetrainSystemStatus is one system's entry in RetrainStats.
type RetrainSystemStatus = retrain.SystemStatus

// DecidePromotion is the retrainer's pure guardrail: paired prediction
// errors of champion and challenger on the same held-out observations
// in, promotion verdict out. Exposed for offline what-if analysis of
// recorded error sets.
func DecidePromotion(champion, challenger []float64, opts RetrainGuardrail) RetrainVerdict {
	return retrain.Decide(champion, challenger, opts)
}

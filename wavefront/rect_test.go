package wavefront

import "testing"

// TestRectangularEndToEnd is the acceptance path for rectangular grids: a
// rows != cols instance runs through RunSerial, the parallel Executor
// (RunParallel), Estimate, SimulateRect and Exhaustive, with the serial
// and tiled-parallel native results bit-identical.
func TestRectangularEndToEnd(t *testing.T) {
	query := []byte("ACGTGGTCAAGGTACGTTACG")
	ref := []byte("TTGACGTGGACAAGGTACGTTCCGATCGATAACGGATCAGG")
	k := NewSeqCompareWith(query, ref)
	rows, cols := len(query), len(ref)

	// Native: serial vs tiled-parallel, bit-identical.
	want := NewRectGrid(rows, cols, 0)
	RunSerial(k, want)
	for _, ct := range []int{1, 3, 8, 21} {
		g := NewRectGrid(rows, cols, 0)
		if _, err := RunParallel(k, g, ct, 3); err != nil {
			t.Fatalf("ct=%d: %v", ct, err)
		}
		if !g.Equal(want) {
			t.Fatalf("ct=%d: parallel rect result differs from serial", ct)
		}
	}

	// Modeled: estimator and functional simulator.
	sys, _ := SystemByName("i7-2600K")
	inst := RectInstanceOf(600, 1400, NewSeqCompare())
	if rI, cI := inst.Shape(); rI != 600 || cI != 1400 {
		t.Fatalf("RectInstanceOf shape wrong: %v", inst)
	}
	for _, par := range []Params{CPUOnly(8), GPUOnlyFor(inst)} {
		res, err := Estimate(sys, inst, par)
		if err != nil {
			t.Fatalf("%v: %v", par, err)
		}
		if res.RTimeNs <= 0 {
			t.Fatalf("%v: non-positive modeled time", par)
		}
	}
	res, sg, err := SimulateRect(sys, rows, cols, k, Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.Equal(want) {
		t.Error("simulated rect grid differs from native serial")
	}
	if res.RTimeNs <= 0 {
		t.Error("implausible simulated time")
	}

	// Search: an exhaustive sweep over a space containing the rect shape.
	space := Space{
		Rects:     [][2]int{{600, 1400}},
		TSizes:    []float64{0.5},
		DSizes:    []int{0},
		CPUTiles:  []int{1, 8},
		BandFracs: []float64{-1, 0.5, 1.0},
		HaloFracs: []float64{-1, 0.15},
		GPUTiles:  []int{1, 8},
	}
	sr, err := Exhaustive(sys, space)
	if err != nil {
		t.Fatal(err)
	}
	ir, ok := sr.For(inst)
	if !ok {
		t.Fatal("rect instance missing from public search result")
	}
	if _, ok := ir.Best(); !ok {
		t.Fatal("no best configuration found for rect instance")
	}
}

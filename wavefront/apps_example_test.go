package wavefront_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/wavefront"
)

// ExampleRegisterApp plugs a custom workload into the application
// catalog: once registered, the daemon serves it by name on
// POST /v1/tune and POST /v1/jobs, lists it on GET /v1/apps, and the
// CLIs print it — no fork, no service change.
func ExampleRegisterApp() {
	err := wavefront.RegisterApp(wavefront.App{
		Name:        "heatflow",
		Description: "toy heat propagation sweep",
		Recurrence:  "u = mix(west, north, northwest)",
		Ref:         "custom",
		Params: []wavefront.AppParam{
			{Name: "steps", Description: "smoothing steps per cell", Default: 4, Integer: true, Min: 1, Max: 64},
		},
		Granularity: func(v wavefront.AppValues) (float64, int, error) {
			return 2 * v["steps"], 1, nil
		},
		Kernel: func(rows, cols int, v wavefront.AppValues) (wavefront.Kernel, error) {
			// A stand-in recurrence; a real app would implement Kernel.
			return wavefront.NewSynthetic(int(2*v["steps"]), 1), nil
		},
	})
	fmt.Println("registered:", err == nil)

	a, _ := wavefront.AppByName("heatflow")
	tsize, dsize, _ := a.DefaultGranularity()
	fmt.Printf("%s: tsize=%g dsize=%d\n", a.Name, tsize, dsize)

	k, _ := wavefront.NewAppKernel("heatflow", 64, 64, wavefront.AppValues{"steps": 8})
	fmt.Println("kernel tsize:", k.TSize())
	// Output:
	// registered: true
	// heatflow: tsize=8 dsize=1
	// kernel tsize: 16
}

// ExampleTuningServer_apps shows workload discovery: GET /v1/apps lists
// the registered catalog, so clients can build tune and job requests
// without out-of-band knowledge of the served applications.
func ExampleTuningServer_apps() {
	srv, err := wavefront.NewTuningServer(wavefront.TuningConfig{})
	if err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/apps")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var body struct {
		Apps []struct {
			Name       string   `json:"name"`
			TSize      *float64 `json:"tsize"`
			SquareOnly bool     `json:"square_only"`
		} `json:"apps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		panic(err)
	}
	listed := map[string]bool{}
	for _, a := range body.Apps {
		listed[a.Name] = true
		if a.Name == "nash" {
			fmt.Printf("nash tsize: %g\n", *a.TSize)
		}
		if a.Name == "nussinov" {
			fmt.Println("nussinov square-only:", a.SquareOnly)
		}
	}
	catalog := []string{"synthetic", "nash", "seqcompare", "knapsack",
		"swaffine", "lcs", "dtw", "nussinov"}
	complete := true
	for _, name := range catalog {
		complete = complete && listed[name]
	}
	fmt.Printf("catalog complete (%d apps): %v\n", len(catalog), complete)
	// Unordered output:
	// nash tsize: 750
	// nussinov square-only: true
	// catalog complete (8 apps): true
}

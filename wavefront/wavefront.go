// Package wavefront is the public API of the reproduction of "Autotuning
// Wavefront Applications for Multicore Multi-GPU Hybrid Architectures"
// (Mohanty and Cole, PMAM '14, co-located with PPoPP 2014,
// DOI 10.1145/2560683.2560689).
//
// It exposes six capabilities:
//
//   - the wavefront pattern library: define a Kernel and run it natively
//     on the host CPU, serially or tile-parallel (RunSerial, RunParallel);
//   - the modeled heterogeneous platforms of the paper's Table 4 and the
//     three-phase hybrid execution strategy on them (Estimate, Simulate);
//   - the exhaustive tuning-space exploration of Table 3 (Exhaustive);
//   - the machine-learned autotuner: train on the synthetic application,
//     deploy on unseen applications (Train, Tuner.Predict);
//   - the application registry: a catalog of named workloads — the
//     paper's four plus affine-gap alignment, LCS, DTW and Nussinov
//     folding — that the daemon and CLIs resolve by name, extensible
//     with custom kernels (RegisterApp, Apps, NewAppKernel);
//   - the serving layer: a concurrency-safe plan cache and the HTTP
//     tuning daemon behind cmd/waved (NewPlanCache, NewTuningServer).
//
// Grids may be square (the paper's dim x dim experiments; NewGrid,
// InstanceOf) or rectangular (rows x cols; NewRectGrid, RectInstanceOf,
// SimulateRect) — the natural shape for aligning two sequences of unequal
// length, where the anti-diagonal parallelism profile is trapezoidal
// rather than triangular. Every execution path (serial, tiled-parallel,
// estimator, simulator, exhaustive search) accepts both shapes.
//
// The types are aliases of the internal implementation packages, so the
// public surface stays small while examples and downstream code never
// import repro/internal/... directly.
package wavefront

import (
	"time"

	"repro/internal/core"
	"repro/internal/cpuexec"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

// Grid is a rectangular wavefront array (two int64 variables plus DSize
// float64 values per cell).
type Grid = grid.Grid

// Kernel is a wavefront point computation; see NewSynthetic, NewNash,
// NewSeqCompare and NewKnapsack for the paper's applications, the
// constructors in apps.go (NewSWAffine, NewLCS, NewDTW, NewNussinov)
// for the extended catalog, or implement the interface for your own —
// and register it with RegisterApp to serve it by name.
type Kernel = kernels.Kernel

// Instance describes a problem instance by the paper's input parameters
// (Table 1): Dim (or Rows/Cols for rectangular shapes), TSize, DSize.
type Instance = plan.Instance

// Params is a setting of the paper's tunable parameters (Table 2):
// CPUTile, Band, GPUTile, Halo (gpu-count is encoded in Band/Halo).
type Params = plan.Params

// System is a modeled platform (Table 4).
type System = hw.System

// Result is the outcome of a modeled run, including the phase breakdown.
type Result = engine.Result

// Space is an exhaustive search space (Table 3).
type Space = core.Space

// SearchResult holds an exhaustive exploration.
type SearchResult = core.SearchResult

// Tuner is a trained autotuner for one system (the paper's tree
// ensemble, ModelKindTree).
type Tuner = core.Tuner

// BilinearTuner is the WaveTune-style analytic backend
// (ModelKindBilinear): per-target ridge regressions over bilinear
// interaction features, so prediction is a handful of dot products.
type BilinearTuner = core.BilinearTuner

// Predictor is a deployed tuning model of any backend kind; Tuner and
// BilinearTuner both implement it, and every serving layer (tuner
// sources, refine jobs, champion/challenger retraining) programs
// against it.
type Predictor = core.Predictor

// Model kinds accepted wherever a prediction backend is selected (the
// CLIs' -model flag, training sources, tuner files).
const (
	ModelKindTree     = core.KindTree
	ModelKindBilinear = core.KindBilinear
)

// Prediction is a deployed tuning decision.
type Prediction = core.Prediction

// TrainOptions configure tuner training.
type TrainOptions = core.TrainOptions

// NewGrid allocates a square dim x dim grid with dsize floats per cell.
func NewGrid(dim, dsize int) *Grid { return grid.New(dim, dsize) }

// NewRectGrid allocates a rectangular rows x cols grid with dsize floats
// per cell.
func NewRectGrid(rows, cols, dsize int) *Grid { return grid.NewRect(rows, cols, dsize) }

// NewSynthetic returns the paper's synthetic training kernel with the
// given granularity (iterations) and data size (floats per cell).
func NewSynthetic(iters, dsize int) Kernel { return kernels.NewSynthetic(iters, dsize) }

// NewNash returns the Nash-equilibrium kernel (coarse-grained; one round
// maps to tsize 750 at dsize 4).
func NewNash(rounds int) Kernel { return kernels.NewNash(rounds) }

// NewSeqCompare returns the biological sequence comparison
// (Smith-Waterman) kernel (fine-grained; tsize 0.5, dsize 0).
func NewSeqCompare() Kernel { return kernels.NewSeqCompare() }

// NewSeqCompareWith aligns two explicit sequences.
func NewSeqCompareWith(a, b []byte) Kernel { return kernels.NewSeqCompareWith(a, b) }

// NewKnapsack returns the 0/1 knapsack kernel (the paper's future-work
// dynamic program) over a deterministic dim-item instance.
func NewKnapsack(dim int) Kernel { return kernels.NewKnapsack(dim) }

// Systems returns the paper's three modeled platforms.
func Systems() []System { return hw.Systems() }

// SystemByName looks up one of the Table 4 systems ("i3-540", "i7-2600K",
// "i7-3820").
func SystemByName(name string) (System, bool) { return hw.ByName(name) }

// InstanceOf derives the paper-scale instance parameters for running
// kernel k at the given (square) dimension.
func InstanceOf(dim int, k Kernel) Instance {
	return Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()}
}

// RectInstanceOf derives the instance parameters for running kernel k on
// a rectangular rows x cols grid.
func RectInstanceOf(rows, cols int, k Kernel) Instance {
	return Instance{Rows: rows, Cols: cols, TSize: k.TSize(), DSize: k.DSize()}
}

// RunSerial computes the grid with k on one host core and returns the
// wall-clock time.
func RunSerial(k Kernel, g *Grid) time.Duration {
	start := time.Now()
	cpuexec.RunSerial(k, g)
	return time.Since(start)
}

// RunParallel computes the grid with k on the host CPU using the tiled
// wavefront executor (cpuTile-sided tiles, workers goroutines; workers
// <= 0 selects GOMAXPROCS) and returns the wall-clock time.
func RunParallel(k Kernel, g *Grid, cpuTile, workers int) (time.Duration, error) {
	start := time.Now()
	err := cpuexec.New(workers).Run(k, g, cpuTile)
	return time.Since(start), err
}

// CPUOnly returns the all-CPU configuration with the given tile.
func CPUOnly(cpuTile int) Params { return engine.CPUOnlyParams(cpuTile) }

// GPUOnly returns the full single-GPU offload configuration for a square
// dim-sized instance.
func GPUOnly(dim int) Params { return engine.GPUOnlyParams(dim) }

// GPUOnlyFor returns the full single-GPU offload configuration for an
// instance of any shape.
func GPUOnlyFor(inst Instance) Params { return engine.GPUOnlyParamsFor(inst) }

// Estimate models a run of inst with parameters par on sys and returns
// virtual time and breakdown without computing data.
func Estimate(sys System, inst Instance, par Params) (Result, error) {
	return engine.Estimate(sys, inst, par, engine.Options{})
}

// Simulate executes kernel k functionally on the modeled system: the
// returned grid holds real results (bit-identical to RunSerial) and the
// result carries the virtual time of the three-phase hybrid execution.
func Simulate(sys System, dim int, k Kernel, par Params) (Result, *Grid, error) {
	return engine.Simulate(sys, dim, k, par)
}

// SimulateRect is Simulate over a rectangular rows x cols grid.
func SimulateRect(sys System, rows, cols int, k Kernel, par Params) (Result, *Grid, error) {
	return engine.SimulateRect(sys, rows, cols, k, par)
}

// SerialSeconds returns the modeled optimized sequential baseline in
// seconds.
func SerialSeconds(sys System, inst Instance) float64 {
	return engine.SerialNs(sys, inst) / 1e9
}

// DefaultSpace returns the paper's Table 3 search space.
func DefaultSpace() Space { return core.DefaultSpace() }

// QuickSpace returns a reduced space for experimentation.
func QuickSpace() Space { return core.QuickSpace() }

// Exhaustive explores the space on sys with the paper's 90-second
// threshold.
func Exhaustive(sys System, space Space) (*SearchResult, error) {
	return core.Exhaustive(sys, space, core.SearchOptions{})
}

// Train fits the paper's model pipeline (SVM gate, REP tree, M5 model
// trees) on an exhaustive search result.
func Train(sr *SearchResult, opts TrainOptions) (*Tuner, error) {
	return core.Train(sr, opts)
}

// TrainBilinear fits the WaveTune-style bilinear backend on an
// exhaustive search result.
func TrainBilinear(sr *SearchResult, opts TrainOptions) (*BilinearTuner, error) {
	return core.TrainBilinear(sr, opts)
}

// TrainPredictor fits a predictor of the given model kind; an empty
// kind selects the tree ensemble.
func TrainPredictor(kind string, sr *SearchResult, opts TrainOptions) (Predictor, error) {
	return core.TrainPredictor(kind, sr, opts)
}

// LoadPredictor reads a saved tuner file of any kind, dispatching on
// its version-2 kind discriminator (v1 files load as trees).
func LoadPredictor(path string) (Predictor, error) { return core.LoadPredictor(path) }

// SavePredictor writes any predictor to path as JSON.
func SavePredictor(path string, p Predictor) error { return core.SavePredictor(path, p) }

// DefaultTrainOptions returns the standard training configuration.
func DefaultTrainOptions() TrainOptions { return core.DefaultTrainOptions() }

// SimulateTraced is Simulate with command-timeline collection enabled;
// inspect the timeline via Result.Trace.Render.
func SimulateTraced(sys System, dim int, k Kernel, par Params) (Result, *Grid, error) {
	return engine.SimulateOpts(sys, dim, k, par, engine.Options{CollectTrace: true})
}

// EstimateWithGPUs models a dual-GPU configuration widened to n devices on
// a system extended via WithGPUs — the paper's future-work extension.
func EstimateWithGPUs(sys System, inst Instance, par Params, n int) (Result, error) {
	return engine.Estimate(sys, inst, par, engine.Options{GPUs: n})
}

// WithGPUs returns a copy of sys carrying n replicas of its first GPU.
func WithGPUs(sys System, n int) System { return hw.WithGPUCount(sys, n) }

package wavefront

// The observability surface: embedding code gets the daemon's metrics
// registry, trace spans and structured logging without importing
// repro/internal/... directly. A TuningServer owns one registry
// (TuningServer.Telemetry) rendered by GET /metrics in Prometheus text
// format and by the telemetry block of GET /v1/stats; library users can
// also build standalone registries for their own components.

import (
	"context"
	"io"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// MetricsRegistry holds named metric families — counters, gauges,
// fixed-bucket histograms, scrape-time collectors — and renders them in
// Prometheus text format (WritePrometheus, or the http.Handler from
// Handler). Handles are updated lock-free and are safe for concurrent
// use.
type MetricsRegistry = telemetry.Registry

// Counter is a monotonically increasing metric handle.
type Counter = telemetry.Counter

// Gauge is a settable instantaneous-value metric handle.
type Gauge = telemetry.Gauge

// Histogram is a fixed-bucket latency/size distribution with cheap
// quantile estimates (P50/P95/P99 via Snapshot).
type Histogram = telemetry.Histogram

// HistogramSnapshot is a point-in-time histogram summary.
type HistogramSnapshot = telemetry.HistogramSnapshot

// CounterVec and HistogramVec are label-partitioned metric families.
type CounterVec = telemetry.CounterVec

// HistogramVec is the label-partitioned histogram family.
type HistogramVec = telemetry.HistogramVec

// MetricType tags a family as counter, gauge or histogram.
type MetricType = telemetry.MetricType

// The metric family types.
const (
	MetricCounter   = telemetry.TypeCounter
	MetricGauge     = telemetry.TypeGauge
	MetricHistogram = telemetry.TypeHistogram
)

// DefaultLatencyBuckets is the default histogram bucket layout in
// seconds (1µs to 60s).
var DefaultLatencyBuckets = telemetry.DefBuckets

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry {
	return telemetry.NewRegistry()
}

// ValidateMetricsExposition strictly checks Prometheus text-format
// output (HELP/TYPE pairing, monotonic histogram buckets, duplicate
// series) — the same validator the daemon's own tests and CI scrape
// run against GET /metrics.
func ValidateMetricsExposition(r io.Reader) error {
	return telemetry.ValidateExposition(r)
}

// TraceSpan is one timed region of a request's trace tree; slow
// requests and jobs log the rendered tree. Safe for concurrent use and
// on a nil receiver (the no-op span untraced paths get).
type TraceSpan = telemetry.Span

// StartRootTraceSpan opens a span unconditionally — the root of a new
// trace — and returns a context carrying it. Open a root where a trace
// is wanted (the daemon's HTTP middleware always does; its job manager
// only when -slow-job is set); StartTraceSpan then grows the tree
// below it.
func StartRootTraceSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return telemetry.StartRootSpan(ctx, name)
}

// StartTraceSpan opens a span as a child of the span in ctx. Without a
// root span in ctx it returns ctx unchanged and a nil no-op span, so
// instrumented hot paths cost nothing when nobody is tracing. Names
// are dot-scoped, subsystem first: "http.request", "cache.lookup",
// "tuner.predict", "job.execute", "engine.measure", "pipeline.wave".
func StartTraceSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return telemetry.StartSpan(ctx, name)
}

// TraceSpanFrom returns the span carried by ctx, or nil.
func TraceSpanFrom(ctx context.Context) *TraceSpan {
	return telemetry.SpanFrom(ctx)
}

// NewRequestID returns a fresh opaque request identifier ("req-" plus
// 8 random hex-encoded bytes), the format the daemon stamps into
// X-Request-ID headers, error bodies and job records.
func NewRequestID() string { return telemetry.NewRequestID() }

// WithRequestID returns a context carrying the request ID;
// RequestIDFrom reads it back (or "").
func WithRequestID(ctx context.Context, id string) context.Context {
	return telemetry.WithRequestID(ctx, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	return telemetry.RequestIDFrom(ctx)
}

// StructuredLogger writes structured log lines — timestamp, level,
// message, then key=value fields — as logfmt text or JSON objects
// (waved -log-format). TuningConfig.Logger accepts one.
type StructuredLogger = telemetry.Logger

// LogFormat selects a StructuredLogger's line encoding.
type LogFormat = telemetry.LogFormat

// The supported log line encodings.
const (
	LogText = telemetry.FormatText
	LogJSON = telemetry.FormatJSON
)

// NewStructuredLogger returns a logger writing to w in the given
// format.
func NewStructuredLogger(w io.Writer, format LogFormat) *StructuredLogger {
	return telemetry.NewLogger(w, format)
}

// ParseLogFormat maps a -log-format flag value ("text", "kv", "json")
// to a LogFormat.
func ParseLogFormat(s string) (LogFormat, error) {
	return telemetry.ParseLogFormat(s)
}

// JobMetrics is the job manager's telemetry hook block
// (JobConfig.Metrics): registry-owned histograms fed at event time
// (queue wait, execution, pipeline waves, engine measurements). Any
// field may be nil.
type JobMetrics = jobs.Metrics

package wavefront

// The frontier surface: the generalization of the execution substrate
// from dense anti-diagonal sweeps to arbitrary ready-set propagation.
// Dense wavefronts remain the closed-form special case (DiagFrontier);
// masked and irregular workloads — Nussinov's triangle, morphological
// reconstruction over a mask — run through IrregularFrontier's per-cell
// in-degree scheduling. Kernels opt in by implementing KernelStencil
// and KernelMask; undeclared kernels default to the dense W/N/NW cone
// over the full rectangle.

import (
	"context"
	"time"

	"repro/internal/cpuexec"
	"repro/internal/grid"
	"repro/internal/kernels"
)

// Frontier iterates over the ready cell sets of a wavefront
// computation; see grid.Frontier for the contract.
type Frontier = grid.Frontier

// Cell identifies one grid cell by row and column.
type Cell = grid.Cell

// Stencil is the dependency shape of a kernel: the relative offsets a
// cell reads.
type Stencil = grid.Stencil

// StencilOffset is one relative dependency of a Stencil.
type StencilOffset = grid.Offset

// DiagFrontier is the dense frontier over closed-form anti-diagonals.
type DiagFrontier = grid.DiagFrontier

// IrregularFrontier schedules an arbitrary live region by per-cell
// in-degree counting.
type IrregularFrontier = grid.IrregularFrontier

// KernelStencil is implemented by kernels that declare a dependency
// stencil other than the dense W/N/NW cone.
type KernelStencil = kernels.Stenciled

// KernelMask is implemented by kernels whose live region is a strict
// subset of the rectangle; dead cells are skipped by the frontier
// executors and must be no-ops (or write only zero initial values) in
// Compute.
type KernelMask = kernels.Masked

// ErrFrontierStuck is returned when a frontier dead-ends before
// covering its region (a cyclic or self-referential stencil).
var ErrFrontierStuck = cpuexec.ErrFrontierStuck

// DenseStencil returns the classic west/north/northwest dependency
// cone.
func DenseStencil() Stencil { return grid.DenseStencil() }

// NewDiagFrontier returns the dense frontier covering a rows x cols
// grid in anti-diagonal order.
func NewDiagFrontier(rows, cols int) *DiagFrontier {
	return grid.NewDiagFrontier(rows, cols)
}

// NewIrregularFrontier builds the frontier over the cells for which
// live returns true (nil = the whole rectangle) under the given stencil
// (empty = dense).
func NewIrregularFrontier(rows, cols int, st Stencil, live func(r, c int) bool) *IrregularFrontier {
	return grid.NewIrregularFrontier(rows, cols, st, live)
}

// KernelFrontier builds the irregular frontier for the stencil and live
// region kernel k declares — the frontier RunIrregular schedules.
func KernelFrontier(k Kernel, rows, cols int) *IrregularFrontier {
	return grid.NewIrregularFrontier(rows, cols, kernels.StencilOf(k), kernels.LiveOf(k, rows, cols))
}

// CountFrontier drains f and returns its true step and cell counts —
// the step total progress reporting must use for irregular regions,
// where NumDiags overstates the denominator. The frontier is consumed.
func CountFrontier(f Frontier) (steps, cells int) { return grid.CountFrontier(f) }

// RunFrontier computes the cells of f with k on the host CPU (workers
// goroutines; <= 0 selects GOMAXPROCS), one ready set at a time with a
// barrier between steps, and returns the wall-clock time. ctx is
// checked between steps for cooperative cancellation. It fails with
// ErrFrontierStuck when f dead-ends before covering its region.
func RunFrontier(ctx context.Context, k Kernel, g *Grid, f Frontier, workers int) (time.Duration, error) {
	start := time.Now()
	ex := cpuexec.New(workers)
	defer ex.Close()
	err := ex.RunFrontier(ctx, k, g, f)
	return time.Since(start), err
}

// RunIrregular computes the live region kernel k declares (dense over
// the full rectangle when it declares none) by frontier propagation on
// the host CPU, and returns the wall-clock time. cpuTile > 1 schedules
// tiles of that side through per-tile in-degree counting, the irregular
// generalization of the tile-diagonal wavefront; cpuTile <= 1 schedules
// individual cells.
func RunIrregular(ctx context.Context, k Kernel, g *Grid, cpuTile, workers int) (time.Duration, error) {
	start := time.Now()
	ex := cpuexec.New(workers)
	defer ex.Close()
	err := ex.RunIrregular(ctx, k, g, cpuTile)
	return time.Since(start), err
}

package wavefront

// The application-registry surface: the central catalog mapping workload
// names to kernels, paper-scale granularity, parameter schemas and shape
// constraints. The daemon resolves named tune/job requests through it
// and lists it on GET /v1/apps; RegisterApp lets downstream code plug a
// custom wavefront workload into all of that without forking. As with
// the rest of this package, the types are aliases of the internal
// implementation so downstream code never imports repro/internal/...
// directly.

import (
	"repro/internal/apps"
	"repro/internal/kernels"
)

// App describes one registered wavefront application: its name, catalog
// description, parameter schema, granularity derivation and kernel
// constructor.
type App = apps.App

// AppParam describes one accepted parameter of an App (name, default,
// required/integer/range constraints).
type AppParam = apps.ParamSpec

// AppValues holds named application parameter values (e.g.
// AppValues{"rounds": 2}).
type AppValues = apps.Values

// AppRegistry is an isolated named-application catalog; the package
// functions (RegisterApp, Apps, AppByName) operate on the process-wide
// default registry that the daemon and the CLIs consult.
type AppRegistry = apps.Registry

// RegisterApp adds a to the process-wide application catalog, making it
// resolvable by name in POST /v1/tune and POST /v1/jobs, listed in
// GET /v1/apps and the CLI catalogs, and constructible via
// NewAppKernel. Registrations are validated (name, description, kernel
// constructor, granularity, parameter schema); duplicate names are
// rejected.
func RegisterApp(a App) error { return apps.Register(a) }

// Apps returns the registered application catalog sorted by name.
func Apps() []App { return apps.All() }

// AppNames returns the sorted registered application names.
func AppNames() []string { return apps.Names() }

// AppByName looks up a registered application.
func AppByName(name string) (App, bool) { return apps.Lookup(name) }

// AppCatalog renders the catalog as an aligned text table (what
// wavetune -list prints).
func AppCatalog() string { return apps.RenderCatalog() }

// NewAppRegistry returns an empty isolated registry (embedders that
// want a catalog independent of the process-wide one).
func NewAppRegistry() *AppRegistry { return apps.NewRegistry() }

// NewAppKernel resolves values against the named registered
// application's schema and constructs its kernel for the given shape.
func NewAppKernel(name string, rows, cols int, v AppValues) (Kernel, error) {
	a, ok := apps.Lookup(name)
	if !ok {
		return nil, apps.UnknownAppError(name)
	}
	return a.NewKernel(rows, cols, v)
}

// CalibrateTSize measures a kernel's task granularity empirically
// against the synthetic unit on the host CPU — the paper's Section
// 3.2.1 tsize mapping done by measurement, for placing a custom kernel
// on the scale before registering it. The result is a wall-clock
// estimate; round it sensibly.
func CalibrateTSize(k Kernel) float64 { return apps.CalibrateTSize(k) }

// The four extended catalog kernels, constructible directly (the
// registry spelling NewAppKernel("swaffine", ...) is equivalent).

// NewSWAffine returns the affine-gap Smith-Waterman kernel (Gotoh;
// tsize 1.5, dsize 2).
func NewSWAffine() *kernels.SWAffine { return kernels.NewSWAffine() }

// NewSWAffineWith aligns two explicit sequences with affine gaps.
func NewSWAffineWith(a, b []byte) *kernels.SWAffine { return kernels.NewSWAffineWith(a, b) }

// NewLCS returns the longest-common-subsequence kernel (tsize 0.4).
func NewLCS() *kernels.LCS { return kernels.NewLCS() }

// NewLCSWith compares two explicit sequences.
func NewLCSWith(a, b []byte) *kernels.LCS { return kernels.NewLCSWith(a, b) }

// NewDTW returns the dynamic-time-warping kernel (tsize 0.8, dsize 1).
func NewDTW() *kernels.DTW { return kernels.NewDTW() }

// NewDTWWith warps two explicit series.
func NewDTWWith(a, b []float64) *kernels.DTW { return kernels.NewDTWWith(a, b) }

// NewNussinov returns the Nussinov-style RNA folding kernel over a
// synthetic sequence (square grids only; minLoop < 0 selects the
// conventional hairpin minimum of 3).
func NewNussinov(minLoop int) *kernels.Nussinov { return kernels.NewNussinov(minLoop) }

// NewNussinovWith folds an explicit RNA sequence.
func NewNussinovWith(seq []byte, minLoop int) *kernels.Nussinov {
	return kernels.NewNussinovWith(seq, minLoop)
}

// NewMorphRecon returns the grayscale morphological-reconstruction
// kernel over a synthetic mask: the catalog's genuinely irregular
// workload, whose live region is the mask's open pixels (threshold in
// [0,255]; negative selects the default of 128, about half open). It
// declares its mask and stencil to the frontier substrate, so
// RunIrregular schedules only the open pixels.
func NewMorphRecon(threshold int, seed int64) *kernels.MorphRecon {
	return kernels.NewMorphRecon(threshold, seed)
}

package wavefront

import (
	"testing"
)

func TestNativeSerialVsParallel(t *testing.T) {
	k := NewSynthetic(3, 1)
	a := NewGrid(40, 1)
	RunSerial(k, a)
	b := NewGrid(40, 1)
	if _, err := RunParallel(k, b, 4, 2); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("parallel result differs from serial through the public API")
	}
}

func TestSimulateThroughPublicAPI(t *testing.T) {
	sys, ok := SystemByName("i7-2600K")
	if !ok {
		t.Fatal("missing system")
	}
	k := NewSeqCompare()
	dim := 50
	res, g, err := Simulate(sys, dim, k, Params{CPUTile: 4, Band: 20, GPUTile: 1, Halo: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := NewGrid(dim, 0)
	RunSerial(k, want)
	if !g.Equal(want) {
		t.Error("simulated grid differs from native serial")
	}
	if res.RTimeNs <= 0 || res.Kernels == 0 {
		t.Error("implausible result")
	}
}

func TestEstimateAndBaselines(t *testing.T) {
	sys := Systems()[0]
	inst := Instance{Dim: 500, TSize: 1000, DSize: 1}
	cpu, err := Estimate(sys, inst, CPUOnly(8))
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := Estimate(sys, inst, GPUOnly(inst.Dim))
	if err != nil {
		t.Fatal(err)
	}
	serial := SerialSeconds(sys, inst)
	if serial <= 0 || cpu.RTimeSec() <= 0 || gpu.RTimeSec() <= 0 {
		t.Error("non-positive times")
	}
	if cpu.RTimeSec() >= serial {
		t.Error("parallel CPU must beat serial on a coarse instance")
	}
}

func TestInstanceOf(t *testing.T) {
	k := NewNash(2)
	inst := InstanceOf(700, k)
	if inst.Dim != 700 || inst.TSize != 1500 || inst.DSize != 4 {
		t.Errorf("InstanceOf wrong: %v", inst)
	}
}

func TestSearchAndTrainPublicPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("tuner pipeline covered by internal tests; skip in -short")
	}
	sys, _ := SystemByName("i3-540")
	space := Space{
		Dims:      []int{500, 1500},
		TSizes:    []float64{10, 1000, 8000},
		DSizes:    []int{1},
		CPUTiles:  []int{1, 8},
		BandFracs: []float64{-1, 0.5, 1.0},
		HaloFracs: []float64{-1},
		GPUTiles:  []int{1},
	}
	sr, err := Exhaustive(sys, space)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	pred := tuner.Predict(Instance{Dim: 1000, TSize: 5000, DSize: 1})
	if !pred.Serial && pred.Par.CPUTile < 1 {
		t.Errorf("invalid prediction %v", pred)
	}
}

func TestKnapsackKernelThroughAPI(t *testing.T) {
	k := NewKnapsack(30)
	g := NewGrid(30, 0)
	RunSerial(k, g)
	if g.A(29, 29) <= 0 {
		t.Error("knapsack value must be positive at full capacity")
	}
}

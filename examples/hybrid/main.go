// Command hybrid demonstrates a full three-phase run on a modeled
// dual-GPU system, showing the phase structure, halo swaps and cost
// breakdown of Section 2's implementation strategy — and that the
// functional simulation computes exactly the serial result.
package main

import (
	"fmt"
	"log"

	"repro/wavefront"
)

func main() {
	sys, _ := wavefront.SystemByName("i7-2600K")
	k := wavefront.NewSynthetic(3000, 1)
	dim := 350

	// Offload a band of 240 diagonals around the main diagonal to both
	// GPUs, swapping 12-element halos.
	par := wavefront.Params{CPUTile: 8, Band: 240, GPUTile: 1, Halo: 12}
	res, g, err := wavefront.SimulateTraced(sys, dim, k, par)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid run of %s (dim=%d) on %s with %v\n\n", k.Name(), dim, sys.Name, par)
	fmt.Printf("phase 1 (CPU lead-in):  %8.2fms\n", res.Phase1Ns/1e6)
	fmt.Printf("phase 2 (2 GPUs):       %8.2fms\n", res.GPUNs/1e6)
	fmt.Printf("phase 3 (CPU tail):     %8.2fms\n", res.Phase3Ns/1e6)
	fmt.Printf("total virtual time:     %8.2fms\n\n", res.RTimeNs/1e6)

	fmt.Printf("GPU kernels:     %d\n", res.Kernels)
	fmt.Printf("halo swaps:      %d (%.2fms)\n", res.Swaps, res.SwapNs/1e6)
	fmt.Printf("transfers:       %.2fms\n", res.XferNs/1e6)
	fmt.Printf("device startup:  %.2fms\n", res.StartupNs/1e6)
	fmt.Printf("redundant cells: %d (the halo trade-off)\n\n", res.RedundantPoints)

	// Verify against the native serial sweep.
	ref := wavefront.NewGrid(dim, k.DSize())
	wavefront.RunSerial(k, ref)
	fmt.Println("functional result identical to serial:", g.Equal(ref))

	// Compare against the simple schemes.
	inst := wavefront.InstanceOf(dim, k)
	serial := wavefront.SerialSeconds(sys, inst)
	cpu, err := wavefront.Estimate(sys, inst, wavefront.CPUOnly(8))
	if err != nil {
		log.Fatal(err)
	}
	one, err := wavefront.Estimate(sys, inst, wavefront.Params{CPUTile: 8, Band: 240, GPUTile: 1, Halo: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserial %0.2fs | parallel CPU %0.2fs | 1 GPU %0.2fs | 2 GPUs %0.2fs\n",
		serial, cpu.RTimeSec(), one.RTimeSec(), res.RTimeSec())

	fmt.Println("\nexecution timeline:")
	fmt.Print(res.Trace.Render(64))
}

// Command seqalign runs the paper's fine-grained biological sequence comparison
// application (Smith–Waterman local alignment). Real alignments compare
// sequences of unequal length, so the score matrix is rectangular: a
// query of m bases against a reference of n bases is an m x n wavefront
// whose anti-diagonal parallelism profile is trapezoidal rather than
// triangular. Very large instances with a tiny kernel make this a pure
// CPU workload — the tuner's job is to keep it off the GPU and pick the
// right cpu-tile (Section 4.2: "band prediction 100% accurate, i.e. do
// everything on the CPU").
package main

import (
	"fmt"
	"log"

	"repro/wavefront"
)

func main() {
	// Align a short query against a longer reference, natively on the
	// host: the grid is rows x cols with rows = len(query) and
	// cols = len(reference).
	query := []byte("ACGTGGTCAAGGTACGTTACGATCGATTACGGATCAGGTACCAGT")
	ref := []byte("TTGACGTGGACAAGGTACGTTCCGATCGATAACGGATCAGGTACCAGTAGGATCCTTAGGCA")
	k := wavefront.NewSeqCompareWith(query, ref)
	rows, cols := len(query), len(ref)
	g := wavefront.NewRectGrid(rows, cols, 0)
	if _, err := wavefront.RunParallel(k, g, 8, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d x %d (query vs reference): local alignment score %d\n\n",
		rows, cols, g.B(rows-1, cols-1))

	// The serial sweep and the tiled executor agree bit for bit on the
	// rectangular grid, so any tile size is safe to tune over.
	ser := wavefront.NewRectGrid(rows, cols, 0)
	wavefront.RunSerial(k, ser)
	fmt.Printf("serial reference agrees with tiled executor: %v\n\n", ser.Equal(g))

	// Tile-size sweep on a large rectangular alignment: for fine-grained
	// kernels the memory system dominates, so cpu-tile matters. A 1500 x
	// 4860 instance has the same cell count as the paper's square 2700.
	sys, _ := wavefront.SystemByName("i7-3820")
	inst := wavefront.RectInstanceOf(1500, 4860, wavefront.NewSeqCompare())
	fmt.Printf("modeled %s, %v (%d diagonals):\n", sys.Name, inst, inst.NumDiags())
	serial := wavefront.SerialSeconds(sys, inst)
	fmt.Printf("  serial: %8.4fs\n", serial)
	for _, ct := range []int{1, 2, 4, 8, 10} {
		res, err := wavefront.Estimate(sys, inst, wavefront.CPUOnly(ct))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cpu-tile=%-2d : %8.4fs (%.2fx)\n", ct, res.RTimeSec(), serial/res.RTimeSec())
	}

	// And the GPU is a losing proposition at tsize=0.5.
	gpu, err := wavefront.Estimate(sys, inst, wavefront.GPUOnlyFor(inst))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GPU only    : %8.4fs (%.2fx) <- why the tuner says band=-1\n\n",
		gpu.RTimeSec(), serial/gpu.RTimeSec())

	// The same alignment through the functional simulator: the modeled
	// three-phase run computes the identical rectangular score matrix.
	small := wavefront.RectInstanceOf(40, 70, k)
	res, sg, err := wavefront.SimulateRect(sys, 40, 70, k, wavefront.CPUOnly(4))
	if err != nil {
		log.Fatal(err)
	}
	want := wavefront.NewRectGrid(40, 70, 0)
	wavefront.RunSerial(k, want)
	fmt.Printf("simulated %v in %.4fs virtual: matches native serial = %v\n",
		small, res.RTimeSec(), sg.Equal(want))
}

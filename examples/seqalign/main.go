// Seqalign: the paper's fine-grained biological sequence comparison
// application (Smith–Waterman local alignment). Very large instances with
// a tiny kernel make this a pure CPU workload — the tuner's job is to
// keep it off the GPU and pick the right cpu-tile (Section 4.2: "band
// prediction 100% accurate, i.e. do everything on the CPU").
package main

import (
	"fmt"
	"log"

	"repro/wavefront"
)

func main() {
	// Align two synthetic DNA sequences natively on the host.
	a := []byte("ACGTGGTCAAGGTACGTTACGATCGATTACGGATCAGGTACCAGT")
	b := []byte("ACGTGGACAAGGTACGTTCCGATCGATAACGGATCAGGTACCAGT")
	k := wavefront.NewSeqCompareWith(a, b)
	dim := len(a)
	g := wavefront.NewGrid(dim, 0)
	if _, err := wavefront.RunParallel(k, g, 8, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aligned %d x %d: local alignment score %d\n\n", dim, dim, g.B(dim-1, dim-1))

	// Tile-size sweep on a large synthetic alignment: for fine-grained
	// kernels the memory system dominates, so cpu-tile matters.
	sys, _ := wavefront.SystemByName("i7-3820")
	inst := wavefront.InstanceOf(2700, wavefront.NewSeqCompare())
	fmt.Printf("modeled %s, %v:\n", sys.Name, inst)
	serial := wavefront.SerialSeconds(sys, inst)
	fmt.Printf("  serial: %8.4fs\n", serial)
	for _, ct := range []int{1, 2, 4, 8, 10} {
		res, err := wavefront.Estimate(sys, inst, wavefront.CPUOnly(ct))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cpu-tile=%-2d : %8.4fs (%.2fx)\n", ct, res.RTimeSec(), serial/res.RTimeSec())
	}

	// And the GPU is a losing proposition at tsize=0.5.
	gpu, err := wavefront.Estimate(sys, inst, wavefront.GPUOnly(inst.Dim))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GPU only    : %8.4fs (%.2fx) <- why the tuner says band=-1\n",
		gpu.RTimeSec(), serial/gpu.RTimeSec())
}

// Command quickstart defines a wavefront computation and runs it on the
// host CPU, serially and tile-parallel, through the public API.
package main

import (
	"fmt"
	"log"

	"repro/wavefront"
)

func main() {
	// The synthetic kernel with granularity 200 and one float per cell —
	// the application the paper trains its tuner on.
	k := wavefront.NewSynthetic(200, 1)
	dim := 600

	serialGrid := wavefront.NewGrid(dim, k.DSize())
	serialTime := wavefront.RunSerial(k, serialGrid)
	fmt.Printf("serial sweep:          %8.1fms\n", serialTime.Seconds()*1e3)

	// The tiled parallel executor: 8x8 CPU tiles, all host cores.
	parGrid := wavefront.NewGrid(dim, k.DSize())
	parTime, err := wavefront.RunParallel(k, parGrid, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiled parallel sweep:  %8.1fms  (%.2fx)\n",
		parTime.Seconds()*1e3, serialTime.Seconds()/parTime.Seconds())

	if !serialGrid.Equal(parGrid) {
		log.Fatal("parallel result differs from serial!")
	}
	fmt.Println("results identical: true")

	// The same computation on a modeled heterogeneous system: a hybrid
	// three-phase run with one simulated GPU.
	sys, _ := wavefront.SystemByName("i3-540")
	res, hybridGrid, err := wavefront.Simulate(sys, dim, k,
		wavefront.Params{CPUTile: 8, Band: 400, GPUTile: 1, Halo: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid on modeled %s: virtual %.3fs (%d GPU kernels)\n",
		sys.Name, res.RTimeSec(), res.Kernels)
	fmt.Println("hybrid results identical:", hybridGrid.Equal(serialGrid))
}

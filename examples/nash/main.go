// Command nash autotunes the paper's coarse-grained game-theoretic application.
// An exhaustive search of the synthetic application trains the tuner
// "in the factory"; deployment then predicts tuned parameters for unseen
// Nash instances and compares them against the simple schemes
// (Section 4.2, Figure 10).
package main

import (
	"fmt"
	"log"

	"repro/wavefront"
)

func main() {
	sys, _ := wavefront.SystemByName("i7-2600K")

	fmt.Printf("training autotuner for %s on the synthetic application...\n", sys.Name)
	search, err := wavefront.Exhaustive(sys, wavefront.QuickSpace())
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := wavefront.Train(search, wavefront.DefaultTrainOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained (%d evaluations; min CV accuracy %.2f)\n\n",
		search.Evaluations(), tuner.Report.MinAccuracy())

	fmt.Println("deploying on Nash equilibrium instances:")
	for _, dim := range []int{700, 1400, 2100} {
		for _, rounds := range []int{1, 8} {
			k := wavefront.NewNash(rounds)
			inst := wavefront.InstanceOf(dim, k)
			pred := tuner.Predict(inst)

			serial := wavefront.SerialSeconds(sys, inst)
			auto, err := tuner.RTimeFor(inst, pred)
			if err != nil {
				log.Fatal(err)
			}
			cpu, err := wavefront.Estimate(sys, inst, wavefront.CPUOnly(8))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  dim=%-5d rounds=%-2d -> %-55v serial %7.2fs  cpu %6.2fs  tuned %6.2fs (%.1fx)\n",
				dim, rounds, pred, serial, cpu.RTimeSec(), auto/1e9, serial/(auto/1e9))
		}
	}
}

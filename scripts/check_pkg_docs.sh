#!/bin/sh
# check_pkg_docs.sh fails if any package in the module lacks a package
# comment (a "// Package foo ..." or, for main packages, "// Command foo
# ..." doc comment immediately above the package clause in at least one
# non-test file). Run from the repository root; CI's docs job runs it
# after the godoc examples.
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    found=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        # A doc comment is a comment line directly followed (possibly via
        # further comment lines) by the package clause.
        if awk '
            /^\/\// { incomment = 1; doc = doc $0 "\n"; next }
            /^package / { if (incomment && (doc ~ /^\/\/ (Package|Command) /)) ok = 1; exit }
            { incomment = 0; doc = "" }
            END { exit !ok }
        ' "$f"; then
            found=1
            break
        fi
    done
    if [ "$found" -eq 0 ]; then
        echo "missing package comment: $dir" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "every package needs a '// Package <name> ...' (or '// Command <name> ...') doc comment" >&2
    exit 1
fi
echo "package comments: OK"

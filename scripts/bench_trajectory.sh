#!/bin/sh
# bench_trajectory.sh runs the benchmark-trajectory harness: the key
# serving and frontier-substrate benchmarks, recorded to
# BENCH_<date>.json at the repository root and gated against the most
# recent previous snapshot (>5% ns/op growth fails unless -warn-only).
# Run from the repository root; arguments pass through to benchtraj
# (see cmd/benchtraj). CI runs it with -warn-only because shared
# runners are noisy; release benchmarking runs it bare on a quiet host.
set -eu

exec go run ./cmd/benchtraj "$@"

#!/bin/sh
# check_app_docs.sh fails when the application registry and the README's
# "Application catalog" table disagree: a registered app missing from the
# table (or lacking its catalog documentation fields), a table row naming
# an unregistered app, or granularity/shape columns that drifted from the
# registration. The comparison itself lives in internal/apps
# (TestCatalogDocs), so it always checks against the real registry. Run
# from the repository root; CI's docs job runs it after the
# package-comment check.
set -eu

if ! out=$(go test ./internal/apps -run 'TestCatalogDocs' -count=1 2>&1); then
    # Surface the per-app drift details from t.Errorf, or the test
    # failure to build/run, so a red CI says which row is wrong.
    echo "$out" >&2
    echo "application catalog drifted from README.md (see above)" >&2
    exit 1
fi
echo "application catalog docs: OK"

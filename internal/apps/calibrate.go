package apps

import (
	"time"

	"repro/internal/cpuexec"
	"repro/internal/grid"
	"repro/internal/kernels"
)

// CalibrateTSize measures a kernel's task granularity empirically
// against the synthetic unit: both the kernel and a one-iteration
// synthetic kernel are swept serially on the host CPU, and the ratio of
// their per-cell costs is the measured tsize (the paper's Section 3.2.1
// mapping, done by measurement instead of analysis). Use it to place a
// custom kernel on the tsize scale before registering it:
//
//	app.Granularity = func(Values) (float64, int, error) {
//	    return measuredTSize, k.DSize(), nil
//	}
//
// The measurement sweeps a small square grid several times and keeps
// the fastest sweep, so one-off scheduling noise is discarded; it is
// still a wall-clock measurement and should be treated as an estimate
// (run it on an idle machine, or round to the nearest half unit).
func CalibrateTSize(k kernels.Kernel) float64 {
	const dim = 96
	unit := perCellNs(kernels.NewSynthetic(1, 0), dim)
	if unit <= 0 {
		return 0
	}
	return perCellNs(k, dim) / unit
}

// perCellNs returns the fastest observed per-cell cost of a serial
// sweep over a dim x dim grid.
func perCellNs(k kernels.Kernel, dim int) float64 {
	const sweeps = 5
	g := grid.New(dim, k.DSize())
	best := 0.0
	for i := 0; i < sweeps; i++ {
		start := time.Now()
		cpuexec.RunSerial(k, g)
		ns := float64(time.Since(start).Nanoseconds())
		if i == 0 || ns < best {
			best = ns
		}
	}
	return best / float64(dim*dim)
}

package apps

// The built-in catalog: the paper's training application and its two
// evaluation deployments, the knapsack recurrence the paper names as
// future work, and the four extended workloads (affine-gap alignment,
// LCS, DTW, Nussinov folding). Each entry is one registration — adding
// a workload to the whole system (daemon, CLIs, docs check) means
// adding one entry here or calling Register from downstream code.
//
// The catalog table in README.md ("Application catalog") is checked
// against these registrations by scripts/check_app_docs.sh in CI.

import (
	"fmt"
	"math"

	"repro/internal/kernels"
)

func init() {
	mustRegister(App{
		Name:        "synthetic",
		Description: "the paper's parameterizable training application (free tsize/dsize)",
		Recurrence:  "tsize rounds of integer/float mixing per cell",
		Ref:         "Section 3.1.1",
		Params: []ParamSpec{
			{Name: "tsize", Description: "task granularity in synthetic iterations", Required: true, Min: 1e-9, Max: 1e12},
			{Name: "dsize", Description: "floats carried per cell", Required: true, Integer: true, Min: 0, Max: 1 << 20},
		},
		Granularity: func(v Values) (float64, int, error) {
			return v["tsize"], int(v["dsize"]), nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			// The model works with the exact float tsize; the functional
			// kernel quantizes it to whole iterations (minimum one), so a
			// fractional tsize simulates at the nearest integer grain.
			return kernels.NewSynthetic(int(math.Round(v["tsize"])), int(v["dsize"])), nil
		},
	})

	mustRegister(App{
		Name:        "nash",
		Description: "Nash-equilibrium refinement by iterated best response (coarse-grained)",
		Recurrence:  "rounds x strategies best-response scan per cell",
		Ref:         "Sections 3.2.1, 4.2",
		Params: []ParamSpec{
			{Name: "rounds", Description: "best-response rounds (tsize = 750 per round)", Default: 1, Integer: true, Min: 1, Max: 1 << 20},
		},
		Granularity: func(v Values) (float64, int, error) {
			return float64(kernels.NashTSizePerRound) * v["rounds"], kernels.NashDSize, nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			return kernels.NewNash(int(v["rounds"])), nil
		},
	})

	mustRegister(App{
		Name:        "seqcompare",
		Description: "Smith-Waterman local alignment with linear gaps (fine-grained)",
		Recurrence:  "H = max(0, diag+sub, up+gap, left+gap)",
		Ref:         "Sections 3.2.1, 4.2",
		Params: []ParamSpec{
			{Name: "match", Description: "substitution score for equal bases", Default: 2, Integer: true, Min: -1 << 20, Max: 1 << 20},
			{Name: "mismatch", Description: "substitution score for unequal bases", Default: -1, Integer: true, Min: -1 << 20, Max: 1 << 20},
			{Name: "gap", Description: "linear gap score", Default: -1, Integer: true, Min: -1 << 20, Max: 1 << 20},
		},
		Granularity: func(v Values) (float64, int, error) {
			return kernels.SeqCompareTSize, 0, nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			k := kernels.NewSeqCompare()
			k.Match, k.Mismatch, k.Gap = int64(v["match"]), int64(v["mismatch"]), int64(v["gap"])
			return k, nil
		},
	})

	mustRegister(App{
		Name:        "knapsack",
		Description: "0/1 knapsack dynamic program (rows = items, cols = capacity)",
		Recurrence:  "V = max(up, up-shifted-by-weight + value)",
		Ref:         "Section 5 (future work)",
		Granularity: func(v Values) (float64, int, error) {
			// Shape-independent: a unit-sized probe kernel carries the
			// granularity, so no O(rows) weight table is built per request.
			k := kernels.NewKnapsack(1)
			return k.TSize(), k.DSize(), nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			return kernels.NewKnapsack(rows), nil
		},
	})

	mustRegister(App{
		Name:        "swaffine",
		Description: "Smith-Waterman local alignment with affine gaps (Gotoh, three matrices)",
		Recurrence:  "E/F gap matrices + H = max(0, diag+sub, E, F)",
		Ref:         "Gotoh 1982; extends seqcompare",
		Params: []ParamSpec{
			{Name: "match", Description: "substitution score for equal bases", Default: 5, Integer: true, Min: -1 << 20, Max: 1 << 20},
			{Name: "mismatch", Description: "substitution score for unequal bases", Default: -4, Integer: true, Min: -1 << 20, Max: 1 << 20},
			{Name: "gap_open", Description: "affine gap opening penalty (positive)", Default: 10, Integer: true, Min: 0, Max: 1 << 20},
			{Name: "gap_extend", Description: "affine gap extension penalty (positive)", Default: 1, Integer: true, Min: 0, Max: 1 << 20},
		},
		Granularity: func(v Values) (float64, int, error) {
			return kernels.SWAffineTSize, kernels.SWAffineDSize, nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			k := kernels.NewSWAffine()
			k.Match, k.Mismatch = int64(v["match"]), int64(v["mismatch"])
			k.GapOpen, k.GapExtend = int64(v["gap_open"]), int64(v["gap_extend"])
			return k, nil
		},
	})

	mustRegister(App{
		Name:        "lcs",
		Description: "longest common subsequence (the finest-grained catalog kernel)",
		Recurrence:  "L = diag+1 on match, else max(up, left)",
		Ref:         "textbook wavefront DP",
		Granularity: func(v Values) (float64, int, error) {
			return kernels.LCSTSize, 0, nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			return kernels.NewLCS(), nil
		},
	})

	mustRegister(App{
		Name:        "dtw",
		Description: "dynamic time warping distance between two series (min-plus recurrence)",
		Recurrence:  "D = |x-y| + min(diag, up, left)",
		Ref:         "Sakoe-Chiba 1978",
		Granularity: func(v Values) (float64, int, error) {
			return kernels.DTWTSize, kernels.DTWDSize, nil
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			return kernels.NewDTW(), nil
		},
	})

	mustRegister(App{
		Name:        "nussinov",
		Description: "Nussinov-style RNA folding (triangular live region, square only)",
		Recurrence:  "N = max(up, left, diag + pair(i,j))",
		Ref:         "Nussinov-Jacobson 1980; cf. Teodoro et al. (irregular wavefronts)",
		SquareOnly:  true,
		Params: []ParamSpec{
			{Name: "min_loop", Description: "minimum hairpin loop length", Default: kernels.NussinovMinLoop, Integer: true, Min: 0, Max: 1 << 20},
		},
		Granularity: func(v Values) (float64, int, error) {
			return kernels.NussinovTSize, 0, nil
		},
		LiveCells: func(rows, cols int, v Values) int {
			// The triangle at or past the main anti-diagonal: cells with
			// r+c >= n-1, which is n(n+1)/2 of the n x n grid.
			return rows * (rows + 1) / 2
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			if rows != cols {
				return nil, fmt.Errorf("nussinov folds an n-base sequence on an n x n grid, got %dx%d", rows, cols)
			}
			return kernels.NewNussinov(int(v["min_loop"])), nil
		},
	})

	mustRegister(App{
		Name:        "morphrecon",
		Description: "grayscale morphological reconstruction over a synthetic mask (irregular live region)",
		Recurrence:  "A = min(cap, max(marker, W-decay, N-decay, NW-decay))",
		Ref:         "Teodoro et al. (irregular wavefront propagation); Vincent 1993",
		Params: []ParamSpec{
			{Name: "threshold", Description: "mask openness threshold in [0,255]; live fraction is (256-threshold)/256", Default: kernels.MorphReconThreshold, Integer: true, Min: 0, Max: 255},
			{Name: "decay", Description: "per-step attenuation of a propagating marker value", Default: 1, Integer: true, Min: 0, Max: 1 << 20},
			{Name: "seed", Description: "seed for the derived mask and marker fields", Default: 1, Integer: true, Min: 0, Max: 1 << 30},
		},
		Granularity: func(v Values) (float64, int, error) {
			return kernels.MorphReconTSize, 0, nil
		},
		LiveCells: func(rows, cols int, v Values) int {
			// The expected open-pixel count of the hash-derived mask; the
			// exact count needs the kernel, which the daemon path must not
			// build. The cost model only needs the density, and the cache
			// key gains determinism: equal parameters give equal keys.
			return int(math.Round(kernels.MorphReconLiveFraction(int(v["threshold"])) * float64(rows*cols)))
		},
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			k := kernels.NewMorphRecon(int(v["threshold"]), int64(v["seed"]))
			k.Decay = int64(v["decay"])
			return k, nil
		},
	})
}

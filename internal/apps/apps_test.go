package apps

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cpuexec"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
)

func testApp() App {
	return App{
		Name:        "blur",
		Description: "test app",
		Params: []ParamSpec{
			{Name: "passes", Description: "smoothing passes", Default: 2, Integer: true, Min: 1, Max: 16},
			{Name: "weight", Description: "blend weight", Default: 0.5, Min: 0, Max: 1},
		},
		Granularity: func(v Values) (float64, int, error) { return 3 * v["passes"], 1, nil },
		Kernel: func(rows, cols int, v Values) (kernels.Kernel, error) {
			return kernels.NewSynthetic(int(3*v["passes"]), 1), nil
		},
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(testApp()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("blur"); !ok {
		t.Fatal("registered app not found")
	}
	if err := r.Register(testApp()); err == nil {
		t.Error("duplicate registration must be rejected")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "blur" {
		t.Errorf("Names = %v", got)
	}
	if err := r.UnknownAppError("nope"); !strings.Contains(err.Error(), "blur") {
		t.Errorf("unknown-app error %q does not enumerate the catalog", err)
	}
}

func TestRegistryValidation(t *testing.T) {
	base := testApp()
	cases := []struct {
		name   string
		mutate func(*App)
	}{
		{"empty name", func(a *App) { a.Name = "" }},
		{"uppercase name", func(a *App) { a.Name = "Blur" }},
		{"no description", func(a *App) { a.Description = "" }},
		{"no granularity", func(a *App) { a.Granularity = nil }},
		{"no kernel", func(a *App) { a.Kernel = nil }},
		{"dup param", func(a *App) { a.Params = append(a.Params, a.Params[0]) }},
		{"bad param name", func(a *App) { a.Params[0].Name = "Bad Name" }},
		{"default outside range", func(a *App) { a.Params[0].Default = 99 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			a := base
			a.Params = append([]ParamSpec(nil), base.Params...)
			tc.mutate(&a)
			if err := r.Register(a); err == nil {
				t.Error("invalid registration accepted")
			}
		})
	}
}

func TestResolve(t *testing.T) {
	a := testApp()
	v, err := a.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v["passes"] != 2 || v["weight"] != 0.5 {
		t.Errorf("defaults = %v", v)
	}
	if _, err := a.Resolve(Values{"bogus": 1}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := a.Resolve(Values{"passes": 2.5}); err == nil {
		t.Error("non-integral integer parameter accepted")
	}
	if _, err := a.Resolve(Values{"passes": 99}); err == nil {
		t.Error("out-of-range parameter accepted")
	}
	// The input map must not be mutated by default filling.
	in := Values{"passes": 4}
	if _, err := a.Resolve(in); err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 {
		t.Errorf("Resolve mutated its input: %v", in)
	}

	// Required parameters: the synthetic trainer.
	syn, ok := Lookup("synthetic")
	if !ok {
		t.Fatal("synthetic not registered")
	}
	if _, err := syn.Resolve(nil); err == nil || !strings.Contains(err.Error(), "required") {
		t.Errorf("missing required parameter error = %v", err)
	}
	if _, _, err := syn.InstanceFor(100, 100, Values{"tsize": 10, "dsize": 1}); err != nil {
		t.Errorf("synthetic with explicit granularity: %v", err)
	}
}

func TestShapeConstraints(t *testing.T) {
	nus, ok := Lookup("nussinov")
	if !ok {
		t.Fatal("nussinov not registered")
	}
	if _, _, err := nus.InstanceFor(600, 1400, nil); err == nil {
		t.Error("square-only app accepted a rectangle")
	}
	if _, _, err := nus.InstanceFor(0, 0, nil); err == nil {
		t.Error("empty shape accepted")
	}
	if _, _, err := nus.InstanceFor(200, 200, nil); err != nil {
		t.Errorf("square instance rejected: %v", err)
	}
	sw, _ := Lookup("swaffine")
	if _, _, err := sw.InstanceFor(600, 1400, nil); err != nil {
		t.Errorf("rectangular swaffine rejected: %v", err)
	}
}

// TestBuiltinCatalogComplete pins the acceptance floor: the four paper
// apps plus the extended workloads (including the irregular
// morphological-reconstruction app), every one resolvable to a valid
// instance and kernel.
func TestBuiltinCatalogComplete(t *testing.T) {
	want := []string{"dtw", "knapsack", "lcs", "morphrecon", "nash", "nussinov", "seqcompare", "swaffine", "synthetic"}
	got := Names()
	if len(got) < 9 {
		t.Fatalf("catalog has %d apps, want >= 9: %v", len(got), got)
	}
	set := map[string]bool{}
	for _, n := range got {
		set[n] = true
	}
	for _, n := range want {
		if !set[n] {
			t.Errorf("catalog missing %q", n)
		}
	}
	for _, a := range All() {
		v := requiredValues(a)
		inst, _, err := a.InstanceFor(64, 64, v)
		if err != nil {
			t.Errorf("%s: InstanceFor: %v", a.Name, err)
			continue
		}
		if err := inst.Validate(); err != nil {
			t.Errorf("%s: invalid instance: %v", a.Name, err)
		}
		k, err := a.NewKernel(64, 64, v)
		if err != nil {
			t.Errorf("%s: NewKernel: %v", a.Name, err)
			continue
		}
		if k.DSize() != inst.DSize {
			t.Errorf("%s: kernel dsize %d != catalog dsize %d", a.Name, k.DSize(), inst.DSize)
		}
	}
}

// requiredValues fills just the required parameters of an app with
// small test values.
func requiredValues(a App) Values {
	v := Values{}
	for _, p := range a.Params {
		if p.Required {
			x := 4.0
			if p.Min < p.Max && x < p.Min {
				x = p.Min
			}
			v[p.Name] = x
		}
	}
	return v
}

// TestEveryAppOrderInvariant is the dependency-order invariance check
// for the whole catalog: computing a kernel's grid in row-major serial
// order, strict anti-diagonal order, tiled-parallel wavefront order,
// irregular-frontier order (cell-level and tiled in-degree scheduling
// over the kernel's declared live region) and through the engine's
// three-phase functional simulation must yield bit-identical grids.
// This is the property the executors and the multi-GPU band
// partitioning rely on.
func TestEveryAppOrderInvariant(t *testing.T) {
	sys := hw.I7_2600K()
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			rows, cols := 23, 37
			if a.SquareOnly {
				rows, cols = 29, 29
			}
			v := requiredValues(a)
			k, err := a.NewKernel(rows, cols, v)
			if err != nil {
				t.Fatal(err)
			}
			ref := grid.NewRect(rows, cols, k.DSize())
			cpuexec.RunSerial(k, ref)

			diag := grid.NewRect(rows, cols, k.DSize())
			cpuexec.RunSerialDiagRange(k, diag, 0, diag.NumDiags()-1)
			if !ref.Equal(diag) {
				t.Error("anti-diagonal order diverges from row-major")
			}

			ex := cpuexec.New(4)
			defer ex.Close()
			for _, ct := range []int{1, 3, 8} {
				tiled := grid.NewRect(rows, cols, k.DSize())
				if err := ex.Run(k, tiled, ct); err != nil {
					t.Fatal(err)
				}
				if !ref.Equal(tiled) {
					t.Errorf("tiled execution (ct=%d) diverges from row-major", ct)
				}
			}

			// Irregular-frontier execution over the kernel's declared
			// live region: serial drain, then pooled cell-level and
			// tiled in-degree scheduling.
			irr := grid.NewRect(rows, cols, k.DSize())
			f := grid.NewIrregularFrontier(rows, cols, kernels.StencilOf(k), kernels.LiveOf(k, rows, cols))
			if err := cpuexec.RunSerialFrontier(k, irr, f); err != nil {
				t.Fatal(err)
			}
			if !ref.Equal(irr) {
				t.Error("serial frontier execution diverges from row-major")
			}
			for _, ct := range []int{1, 5} {
				fg := grid.NewRect(rows, cols, k.DSize())
				if err := ex.RunIrregular(context.Background(), k, fg, ct); err != nil {
					t.Fatal(err)
				}
				if !ref.Equal(fg) {
					t.Errorf("irregular execution (ct=%d) diverges from row-major", ct)
				}
			}

			// Three-phase hybrid simulation with a dual-GPU band.
			inst := plan.Instance{Rows: rows, Cols: cols}
			par := plan.Params{CPUTile: 4, Band: 6, GPUTile: 2, Halo: 2}
			_, sg, err := engine.SimulateInst(sys, inst, k, par, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Equal(sg) {
				t.Error("hybrid simulation diverges from row-major")
			}
		})
	}
}

func TestRenderCatalog(t *testing.T) {
	out := RenderCatalog()
	for _, n := range Names() {
		if !strings.Contains(out, n) {
			t.Errorf("catalog rendering missing %q", n)
		}
	}
	if !strings.Contains(out, "param") {
		t.Error("synthetic's parameterized granularity not marked")
	}
}

func TestCalibrateTSize(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	coarse := CalibrateTSize(kernels.NewSynthetic(200, 0))
	fine := CalibrateTSize(kernels.NewSynthetic(1, 0))
	if coarse <= 0 || fine <= 0 {
		t.Fatalf("calibration not positive: coarse=%g fine=%g", coarse, fine)
	}
	// A 200-iteration kernel must measure meaningfully coarser than the
	// unit kernel. The exact ratio is timing-dependent and shrinks when
	// instrumentation (e.g. -race) inflates the fixed per-cell overhead,
	// so only the ordering is asserted, with a comfortable margin.
	if coarse < 2*fine {
		t.Errorf("calibration ordering implausible: 200-iter=%g unit=%g", coarse, fine)
	}
}

// TestMaskedAppsDeclareLiveCells: the daemon path (InstanceFor, no
// kernel construction) must stamp the live-cell count for masked
// workloads, fork their cache key from the dense spelling, and leave
// dense apps untouched.
func TestMaskedAppsDeclareLiveCells(t *testing.T) {
	nus, _ := Lookup("nussinov")
	inst, _, err := nus.InstanceFor(64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 64 * 65 / 2; inst.LiveCells != want {
		t.Errorf("nussinov LiveCells = %d, want %d", inst.LiveCells, want)
	}
	if !strings.Contains(inst.CacheKey(), "|live=") {
		t.Errorf("nussinov cache key %q lacks the live-region component", inst.CacheKey())
	}

	mr, ok := Lookup("morphrecon")
	if !ok {
		t.Fatal("morphrecon not registered")
	}
	inst, rv, err := mr.InstanceFor(100, 80, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rv["threshold"] != kernels.MorphReconThreshold {
		t.Errorf("resolved threshold = %v", rv["threshold"])
	}
	if inst.LiveCells != 4000 { // (256-128)/256 of 8000 cells
		t.Errorf("morphrecon LiveCells = %d, want 4000", inst.LiveCells)
	}
	// Fully open mask: dense, no live component in the key.
	inst, _, err = mr.InstanceFor(100, 80, Values{"threshold": 0})
	if err != nil {
		t.Fatal(err)
	}
	if inst.LiveCells != 0 {
		t.Errorf("threshold 0 LiveCells = %d, want 0 (dense)", inst.LiveCells)
	}

	lcs, _ := Lookup("lcs")
	inst, _, err = lcs.InstanceFor(64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.LiveCells != 0 {
		t.Errorf("dense app LiveCells = %d, want 0", inst.LiveCells)
	}
}

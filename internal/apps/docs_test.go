package apps

// TestCatalogDocs keeps README.md's "Application catalog" table and the
// registry from drifting apart: every registered app must have a table
// row whose name and granularity columns match the registration, every
// table row must name a registered app, and every registration must
// carry the catalog documentation fields. CI runs this via
// scripts/check_app_docs.sh in the docs job.

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// readmeCatalogRows parses the "Application catalog" table out of
// README.md: a map from app name (the backticked first column) to the
// remaining columns [recurrence, tsize, dsize, shape, reference].
func readmeCatalogRows(t *testing.T) map[string][]string {
	t.Helper()
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	lines := strings.Split(string(data), "\n")
	rows := map[string][]string{}
	inSection := false
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "## Application catalog"):
			inSection = true
			continue
		case inSection && strings.HasPrefix(line, "## "):
			return rows
		case !inSection || !strings.HasPrefix(line, "|"):
			continue
		}
		// Escaped pipes (\|) inside cells must not split; restore them
		// after splitting.
		const pipeEsc = "\x00"
		escaped := strings.ReplaceAll(line, `\|`, pipeEsc)
		cells := strings.Split(strings.Trim(escaped, "|"), "|")
		for i := range cells {
			cells[i] = strings.TrimSpace(strings.ReplaceAll(cells[i], pipeEsc, "|"))
		}
		if len(cells) < 2 || cells[0] == "App" || strings.HasPrefix(cells[0], "---") {
			continue
		}
		name := strings.Trim(cells[0], "`")
		rows[name] = cells[1:]
	}
	if !inSection {
		t.Fatal(`README.md lacks an "## Application catalog" section`)
	}
	return rows
}

func TestCatalogDocs(t *testing.T) {
	rows := readmeCatalogRows(t)
	registered := All()

	for _, a := range registered {
		// Every registration must carry its catalog documentation.
		if a.Description == "" || a.Recurrence == "" || a.Ref == "" {
			t.Errorf("app %q lacks catalog documentation (description/recurrence/ref)", a.Name)
		}
		row, ok := rows[a.Name]
		if !ok {
			t.Errorf("registered app %q missing from the README application-catalog table", a.Name)
			continue
		}
		if len(row) < 5 {
			t.Errorf("README row for %q has %d columns, want recurrence|tsize|dsize|shape|reference", a.Name, len(row))
			continue
		}
		wantT, wantD := "param", "param"
		if ts, ds, ok := a.DefaultGranularity(); ok {
			wantT, wantD = fmt.Sprintf("%g", ts), fmt.Sprintf("%d", ds)
		}
		// A granularity cell is either the registry value verbatim or a
		// formula annotated with it in parentheses ("750·rounds (750)");
		// substring matches are not accepted, so "11" cannot pass for 1.
		cellMatches := func(cell, want string) bool {
			return cell == want || strings.Contains(cell, "("+want+")")
		}
		if !cellMatches(row[1], wantT) {
			t.Errorf("README tsize for %q = %q does not match registry %q", a.Name, row[1], wantT)
		}
		if !cellMatches(row[2], wantD) {
			t.Errorf("README dsize for %q = %q does not match registry %q", a.Name, row[2], wantD)
		}
		wantShape := "any"
		if a.SquareOnly {
			wantShape = "square"
		}
		if row[3] != wantShape {
			t.Errorf("README shape for %q = %q, want %q", a.Name, row[3], wantShape)
		}
		if row[0] == "" || row[4] == "" {
			t.Errorf("README row for %q has empty recurrence or reference cells", a.Name)
		}
	}

	names := map[string]bool{}
	for _, a := range registered {
		names[a.Name] = true
	}
	for name := range rows {
		if !names[name] {
			t.Errorf("README catalog lists %q, which is not registered", name)
		}
	}
}

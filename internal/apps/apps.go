// Package apps is the application registry: a central catalog mapping a
// workload name to everything the rest of the system needs to serve it —
// the kernel constructor, the paper-scale granularity (tsize/dsize) or a
// routine deriving it from parameters, the accepted parameter schema
// (e.g. Nash rounds or affine gap penalties), and shape constraints.
//
// The registry is what turns "add a wavefront workload" from a
// cross-cutting edit (daemon switch, every CLI, the docs) into a
// one-file registration: the HTTP daemon resolves named applications
// through Lookup and lists the catalog on GET /v1/apps, the CLIs print
// it with RenderCatalog, and downstream users plug in their own kernels
// through wavefront.RegisterApp without forking. Built-in applications
// (the paper's four plus the extended catalog) register themselves in
// builtin.go.
//
// Registries are safe for concurrent use. The package-level functions
// operate on the Default registry; NewRegistry builds isolated instances
// for tests and embedders.
package apps

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/kernels"
	"repro/internal/plan"
	"repro/internal/report"
)

// Values holds named application parameter values, e.g.
// {"rounds": 2} for Nash or {"gap_open": 10} for affine alignment.
// Integer-typed parameters are carried as float64 and validated by
// App.Resolve.
type Values map[string]float64

// ParamSpec describes one accepted parameter of an application.
type ParamSpec struct {
	// Name is the parameter key, a lowercase identifier.
	Name string
	// Description says what the parameter controls.
	Description string
	// Default is the value used when the parameter is omitted; it is
	// ignored when Required is set.
	Default float64
	// Required marks a parameter without a usable default (e.g. the
	// synthetic trainer's tsize); omitting it is an error.
	Required bool
	// Integer requires the supplied value to be integral.
	Integer bool
	// Min and Max bound the accepted values when Min < Max.
	Min, Max float64
}

// check validates a supplied value against the spec.
func (p ParamSpec) check(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("parameter %q must be finite, got %v", p.Name, v)
	}
	if p.Integer && v != math.Trunc(v) {
		return fmt.Errorf("parameter %q must be an integer, got %v", p.Name, v)
	}
	if p.Min < p.Max && (v < p.Min || v > p.Max) {
		return fmt.Errorf("parameter %q = %v outside [%g, %g]", p.Name, v, p.Min, p.Max)
	}
	return nil
}

// App describes one registered wavefront application.
type App struct {
	// Name is the catalog key, a lowercase identifier.
	Name string
	// Description is the one-line catalog entry (required; the docs CI
	// check enforces that every registered app has one).
	Description string
	// Recurrence is a short rendering of the per-cell recurrence for the
	// catalog table.
	Recurrence string
	// Ref anchors the app in the paper (e.g. "Section 3.2.1") or cites
	// the origin of the recurrence.
	Ref string
	// Params is the accepted parameter schema; requests may only supply
	// these keys.
	Params []ParamSpec
	// SquareOnly constrains the app to square rows == cols instances
	// (e.g. Nussinov folds one sequence of length n on an n x n grid).
	SquareOnly bool
	// Granularity derives the paper-scale tsize/dsize from resolved
	// parameter values. It must be cheap and shape-independent: the
	// daemon calls it per request without building a kernel.
	Granularity func(v Values) (tsize float64, dsize int, err error)
	// Kernel constructs the kernel for a shape and resolved parameter
	// values (functional simulation, wavetune -run, CalibrateTSize).
	Kernel func(rows, cols int, v Values) (kernels.Kernel, error)
	// LiveCells, when set, returns the number of cells of the live
	// region for a masked workload (Nussinov's triangle, a mask's open
	// pixels), in closed form. Like Granularity it must be cheap and
	// must not construct a kernel: the daemon calls it per request to
	// stamp plan.Instance.LiveCells, which scales the cost model. Nil
	// means dense — every cell carries work.
	LiveCells func(rows, cols int, v Values) int
}

// Param returns the spec of the named parameter.
func (a App) Param(name string) (ParamSpec, bool) {
	for _, p := range a.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// Defaults returns the default parameter values (required parameters,
// having none, are absent).
func (a App) Defaults() Values {
	v := Values{}
	for _, p := range a.Params {
		if !p.Required {
			v[p.Name] = p.Default
		}
	}
	return v
}

// Resolve validates the supplied values against the schema and fills in
// defaults: unknown keys are rejected, required parameters must be
// present, and integer/range constraints are enforced. The input map is
// not modified.
func (a App) Resolve(v Values) (Values, error) {
	for name := range v {
		if _, ok := a.Param(name); !ok {
			return nil, fmt.Errorf("app %q: unknown parameter %q (want %s)",
				a.Name, name, a.paramNames())
		}
	}
	out := Values{}
	for _, p := range a.Params {
		x, ok := v[p.Name]
		if !ok {
			if p.Required {
				return nil, fmt.Errorf("app %q: parameter %q is required", a.Name, p.Name)
			}
			x = p.Default
		}
		if err := p.check(x); err != nil {
			return nil, fmt.Errorf("app %q: %w", a.Name, err)
		}
		out[p.Name] = x
	}
	return out, nil
}

func (a App) paramNames() string {
	if len(a.Params) == 0 {
		return "none"
	}
	names := make([]string, len(a.Params))
	for i, p := range a.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// MergeDeclared sets v[name] = x when the app declares a parameter of
// that name and v does not already carry it. It is the one definition
// of how legacy parameter spellings (top-level JSON fields like rounds,
// CLI flags like -tsize) map onto the schema: undeclared names are
// ignored, and an explicit params entry always wins.
func (a App) MergeDeclared(v Values, name string, x float64) {
	if _, declared := a.Param(name); !declared {
		return
	}
	if _, dup := v[name]; dup {
		return
	}
	v[name] = x
}

// DefaultGranularity returns the app's tsize/dsize at default
// parameters. ok is false when the app has no default granularity —
// a required parameter (e.g. the synthetic trainer's tsize) means the
// caller must supply values first.
func (a App) DefaultGranularity() (tsize float64, dsize int, ok bool) {
	v, err := a.Resolve(nil)
	if err != nil {
		return 0, 0, false
	}
	tsize, dsize, err = a.Granularity(v)
	if err != nil {
		return 0, 0, false
	}
	return tsize, dsize, true
}

// CheckShape validates an instance shape against the app's constraints.
func (a App) CheckShape(rows, cols int) error {
	if rows < 1 || cols < 1 {
		return fmt.Errorf("app %q: shape %dx%d invalid", a.Name, rows, cols)
	}
	if a.SquareOnly && rows != cols {
		return fmt.Errorf("app %q requires a square instance, got %dx%d", a.Name, rows, cols)
	}
	return nil
}

// InstanceFor resolves v and builds the plan.Instance for running the
// app at the given shape: the validated parameters drive Granularity,
// and the shape constraint is enforced. The resolved values (supplied
// parameters plus schema defaults) are returned alongside the instance
// so callers can record exactly what the derivation used. This is the
// daemon's per-request path, so it never constructs a kernel.
func (a App) InstanceFor(rows, cols int, v Values) (plan.Instance, Values, error) {
	if err := a.CheckShape(rows, cols); err != nil {
		return plan.Instance{}, nil, err
	}
	rv, err := a.Resolve(v)
	if err != nil {
		return plan.Instance{}, nil, err
	}
	tsize, dsize, err := a.Granularity(rv)
	if err != nil {
		return plan.Instance{}, nil, fmt.Errorf("app %q: %w", a.Name, err)
	}
	inst := plan.Instance{Rows: rows, Cols: cols, TSize: tsize, DSize: dsize}
	if a.LiveCells != nil {
		live := a.LiveCells(rows, cols, rv)
		if live < 0 || live > rows*cols {
			return plan.Instance{}, nil, fmt.Errorf("app %q: live cells %d outside [0,%d]",
				a.Name, live, rows*cols)
		}
		// A full-rectangle count stays dense (LiveCells == 0): the cache
		// key and cost model are unchanged when nothing is masked off.
		if live < rows*cols {
			inst.LiveCells = live
		}
	}
	return inst.Normalize(), rv, nil
}

// NewKernel resolves v and constructs the app's kernel for the shape.
func (a App) NewKernel(rows, cols int, v Values) (kernels.Kernel, error) {
	if err := a.CheckShape(rows, cols); err != nil {
		return nil, err
	}
	rv, err := a.Resolve(v)
	if err != nil {
		return nil, err
	}
	return a.Kernel(rows, cols, rv)
}

// validate checks a registration.
func (a App) validate() error {
	if a.Name == "" {
		return fmt.Errorf("apps: registration with empty name")
	}
	if !validIdent(a.Name) {
		return fmt.Errorf("apps: name %q must be a lowercase identifier ([a-z0-9_-])", a.Name)
	}
	if a.Description == "" {
		return fmt.Errorf("apps: app %q lacks a description (the catalog docs require one)", a.Name)
	}
	if a.Granularity == nil {
		return fmt.Errorf("apps: app %q lacks a Granularity function", a.Name)
	}
	if a.Kernel == nil {
		return fmt.Errorf("apps: app %q lacks a Kernel constructor", a.Name)
	}
	seen := map[string]bool{}
	for _, p := range a.Params {
		if p.Name == "" || !validIdent(p.Name) {
			return fmt.Errorf("apps: app %q: parameter name %q must be a lowercase identifier", a.Name, p.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("apps: app %q: duplicate parameter %q", a.Name, p.Name)
		}
		seen[p.Name] = true
		if !p.Required {
			if err := p.check(p.Default); err != nil {
				return fmt.Errorf("apps: app %q: default %w", a.Name, err)
			}
		}
	}
	return nil
}

func validIdent(s string) bool {
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-') {
			return false
		}
	}
	return s != ""
}

// Registry is a concurrency-safe named-application catalog.
type Registry struct {
	mu sync.RWMutex
	m  map[string]App
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]App{}} }

// Register validates a and adds it to the catalog. Duplicate names are
// rejected: the catalog is an API surface, and silently replacing an
// entry would change served granularities behind clients' backs.
func (r *Registry) Register(a App) error {
	if err := a.validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[a.Name]; dup {
		return fmt.Errorf("apps: app %q already registered", a.Name)
	}
	r.m[a.Name] = a
	return nil
}

// Lookup returns the named app.
func (r *Registry) Lookup(name string) (App, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.m[name]
	return a, ok
}

// All returns every registered app sorted by name.
func (r *Registry) All() []App {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]App, 0, len(r.m))
	for _, a := range r.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted registered names.
func (r *Registry) Names() []string {
	all := r.All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// UnknownAppError builds the error for an unrecognized name, always
// enumerating the current catalog so the message cannot drift from it.
func (r *Registry) UnknownAppError(name string) error {
	return fmt.Errorf("unknown app %q (want %s)", name, strings.Join(r.Names(), ", "))
}

// RenderCatalog renders the catalog as an aligned text table (the
// wavetune -list / wavesweep -apps / waverepro output).
func (r *Registry) RenderCatalog() string {
	t := report.NewTable("app", "tsize", "dsize", "params", "shape", "description")
	for _, a := range r.All() {
		tsize, dsize := "param", "param"
		if ts, ds, ok := a.DefaultGranularity(); ok {
			tsize, dsize = fmt.Sprintf("%g", ts), fmt.Sprintf("%d", ds)
		}
		shape := "any"
		if a.SquareOnly {
			shape = "square"
		}
		t.Add(a.Name, tsize, dsize, a.paramNames(), shape, a.Description)
	}
	return "Application catalog:\n" + t.String()
}

// Default is the process-wide registry behind the package-level
// functions, the daemon, the CLIs and wavefront.RegisterApp.
var Default = NewRegistry()

// Register adds a to the Default registry.
func Register(a App) error { return Default.Register(a) }

// mustRegister is the builtin-registration helper; a failure is a
// programming error in this package.
func mustRegister(a App) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

// Lookup returns the named app from the Default registry.
func Lookup(name string) (App, bool) { return Default.Lookup(name) }

// All returns the Default registry's catalog sorted by name.
func All() []App { return Default.All() }

// Names returns the Default registry's sorted names.
func Names() []string { return Default.Names() }

// UnknownAppError builds the unknown-name error against the Default
// registry.
func UnknownAppError(name string) error { return Default.UnknownAppError(name) }

// RenderCatalog renders the Default registry's catalog.
func RenderCatalog() string { return Default.RenderCatalog() }

// Package plan turns an application instance and a setting of the paper's
// five tunable parameters (Table 2) into a validated three-phase execution
// plan: a leading CPU-tiled triangle, an offloaded band of diagonals on one
// or two GPUs, and a trailing CPU-tiled triangle (Section 2, Figure 2).
package plan

import (
	"fmt"
	"strconv"

	"repro/internal/grid"
)

// Instance is one wavefront problem instance, described by the paper's
// input parameters (Table 1), generalized to rectangular arrays.
type Instance struct {
	// Dim is the side length of a square array — the paper's spelling and
	// the shorthand for rows = cols = Dim. Leave it zero when Rows/Cols
	// are set.
	Dim int
	// Rows and Cols describe a rectangular array (e.g. aligning two
	// sequences of unequal length). When both are zero the instance is the
	// square Dim x Dim array.
	Rows, Cols int
	// TSize is the task granularity in synthetic-kernel iterations.
	TSize float64
	// DSize is the per-element float count (element bytes = 8 + 8*dsize).
	DSize int
	// LiveCells is the number of cells that carry real work when the
	// workload's live region is a strict subset of the rectangle
	// (Nussinov's triangle, a reconstruction mask). Zero means dense:
	// every cell is live. The cost model scales per-cell work by the
	// live fraction, so masked workloads are not charged for their dead
	// cells.
	LiveCells int
}

// Shape is the compatibility accessor between the square and rectangular
// spellings: it returns Rows/Cols when set and falls back to Dim/Dim, so
// call sites written against square instances keep working unchanged.
func (in Instance) Shape() (rows, cols int) {
	if in.Rows > 0 || in.Cols > 0 {
		return in.Rows, in.Cols
	}
	return in.Dim, in.Dim
}

// Square reports whether the instance has equal side lengths.
func (in Instance) Square() bool {
	rows, cols := in.Shape()
	return rows == cols
}

// Cells returns the total number of cells, rows*cols.
func (in Instance) Cells() int {
	rows, cols := in.Shape()
	return rows * cols
}

// WorkCells returns the number of cells that carry real work: LiveCells
// when the instance declares a masked region, and the full rectangle
// otherwise.
func (in Instance) WorkCells() int {
	if in.LiveCells > 0 {
		return in.LiveCells
	}
	return in.Cells()
}

// LiveFrac returns the fraction of the rectangle that carries real work,
// in (0, 1]; dense instances return 1.
func (in Instance) LiveFrac() float64 {
	cells := in.Cells()
	if in.LiveCells <= 0 || cells == 0 {
		return 1
	}
	return float64(in.LiveCells) / float64(cells)
}

// NumDiags returns the number of anti-diagonals, rows+cols-1.
func (in Instance) NumDiags() int {
	rows, cols := in.Shape()
	return grid.NumDiagsRect(rows, cols)
}

// MinSide and MaxSide return the smaller and larger side length.
func (in Instance) MinSide() int {
	rows, cols := in.Shape()
	if rows < cols {
		return rows
	}
	return cols
}

// MaxSide returns the larger side length.
func (in Instance) MaxSide() int {
	rows, cols := in.Shape()
	if rows > cols {
		return rows
	}
	return cols
}

// MidDiag returns the central anti-diagonal index, around which the GPU
// band is centred. For a square instance it is the main diagonal dim-1.
func (in Instance) MidDiag() int { return (in.NumDiags() - 1) / 2 }

// MaxUsefulBand returns the smallest band that makes the offloaded region
// cover every diagonal (dim-1 for a square instance); larger bands are
// legal but equivalent.
func (in Instance) MaxUsefulBand() int {
	mid := in.MidDiag()
	if rest := in.NumDiags() - 1 - mid; rest > mid {
		return rest
	}
	return mid
}

// Normalize fills in both shape spellings: a square Rows/Cols instance
// gains its Dim shorthand and a Dim instance gains Rows/Cols, so
// equivalent instances compare equal.
func (in Instance) Normalize() Instance {
	rows, cols := in.Shape()
	in.Rows, in.Cols = rows, cols
	if rows == cols {
		in.Dim = rows
	} else {
		in.Dim = 0
	}
	return in
}

// ElemBytes returns the modeled element size of the instance.
func (in Instance) ElemBytes() int { return grid.ElemBytes(in.DSize) }

// ShapeString renders the shape in the search-CSV spelling: a bare
// integer for square instances ("1900") and "rowsxcols" for rectangular
// ones ("600x1400").
func (in Instance) ShapeString() string {
	rows, cols := in.Shape()
	if rows != cols {
		return fmt.Sprintf("%dx%d", rows, cols)
	}
	return fmt.Sprintf("%d", rows)
}

// CacheKey returns a stable canonical encoding of the instance for use as
// a plan-cache key. Equivalent spellings collide: Dim=n and Rows=Cols=n
// produce the same key, and the shape field matches ShapeString (and thus
// the search-CSV dim column). TSize uses the shortest exact float
// rendering, so keys are reproducible across processes.
func (in Instance) CacheKey() string {
	n := in.Normalize()
	key := fmt.Sprintf("%s|t=%s|d=%d",
		n.ShapeString(), strconv.FormatFloat(n.TSize, 'g', -1, 64), n.DSize)
	if n.LiveCells > 0 {
		// Masked instances tune differently from dense ones of the same
		// shape, so the live-cell count participates in the key. Dense
		// instances keep the historical key unchanged.
		key += fmt.Sprintf("|live=%d", n.LiveCells)
	}
	return key
}

// Validate reports whether the instance is well-formed.
func (in Instance) Validate() error {
	rows, cols := in.Shape()
	if rows < 1 || cols < 1 {
		return fmt.Errorf("plan: shape %dx%d invalid (dim %d)", rows, cols, in.Dim)
	}
	if in.Dim > 0 && (in.Rows > 0 || in.Cols > 0) && (in.Rows != in.Dim || in.Cols != in.Dim) {
		return fmt.Errorf("plan: dim %d inconsistent with shape %dx%d", in.Dim, in.Rows, in.Cols)
	}
	if !(in.TSize > 0) {
		return fmt.Errorf("plan: tsize %v must be positive", in.TSize)
	}
	if in.DSize < 0 {
		return fmt.Errorf("plan: dsize %d < 0", in.DSize)
	}
	if in.LiveCells < 0 || in.LiveCells > rows*cols {
		return fmt.Errorf("plan: live cells %d outside [0,%d]", in.LiveCells, rows*cols)
	}
	return nil
}

// String implements fmt.Stringer.
func (in Instance) String() string {
	s := ""
	if rows, cols := in.Shape(); rows != cols {
		s = fmt.Sprintf("rows=%d cols=%d tsize=%g dsize=%d", rows, cols, in.TSize, in.DSize)
	} else if in.Dim == 0 {
		s = fmt.Sprintf("dim=%d tsize=%g dsize=%d", rows, in.TSize, in.DSize)
	} else {
		s = fmt.Sprintf("dim=%d tsize=%g dsize=%d", in.Dim, in.TSize, in.DSize)
	}
	if in.LiveCells > 0 {
		s += fmt.Sprintf(" live=%d", in.LiveCells)
	}
	return s
}

// Params is a setting of the paper's tunable parameters (Table 2). As in
// the paper, gpu-count is overloaded onto Band and Halo: Band = -1 means
// the GPU is not used at all; Halo = -1 means a single GPU; Halo >= 0
// means two GPUs exchanging halos of that size.
type Params struct {
	// CPUTile is the side length of the square CPU tiles.
	CPUTile int
	// Band is the number of diagonals on each side of the main diagonal
	// offloaded to the GPU(s); 2*Band+1 diagonals in total. -1 disables
	// the GPU phase entirely.
	Band int
	// GPUTile is the GPU work-group tiling factor (1 = untiled).
	GPUTile int
	// Halo is the overlap between the two GPUs' partitions; -1 selects a
	// single GPU.
	Halo int
}

// GPUCount decodes the overloaded gpu-count: 0, 1 or 2.
func (p Params) GPUCount() int {
	switch {
	case p.Band < 0:
		return 0
	case p.Halo < 0:
		return 1
	default:
		return 2
	}
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("cpu-tile=%d band=%d gpu-count=%d gpu-tile=%d halo=%d",
		p.CPUTile, p.Band, p.GPUCount(), p.GPUTile, p.Halo)
}

// Normalize returns p with the GPU-phase parameters canonicalized: when
// the GPU is unused, gpu-tile and halo are forced to their neutral values
// so that equivalent configurations compare equal and the search space
// contains no duplicate all-CPU points.
func (p Params) Normalize() Params {
	if p.Band < 0 {
		p.Band = -1
		p.GPUTile = 1
		p.Halo = -1
	}
	if p.GPUTile < 1 {
		p.GPUTile = 1
	}
	return p
}

// Plan is a validated three-phase decomposition. Diagonal ranges are
// inclusive; a range with Lo > Hi is empty.
type Plan struct {
	Inst Instance
	Par  Params

	// P1Lo..P1Hi are phase 1's diagonals (leading CPU triangle).
	P1Lo, P1Hi int
	// GLo..GHi are phase 2's offloaded diagonals.
	GLo, GHi int
	// P3Lo..P3Hi are phase 3's diagonals (trailing CPU triangle).
	P3Lo, P3Hi int
}

// Build validates inst and par and constructs the three-phase plan.
func Build(inst Instance, par Params) (*Plan, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if par.CPUTile < 1 {
		return nil, fmt.Errorf("plan: cpu-tile %d < 1", par.CPUTile)
	}
	if par.CPUTile > inst.MaxSide() {
		return nil, fmt.Errorf("plan: cpu-tile %d exceeds max side %d", par.CPUTile, inst.MaxSide())
	}
	maxBand := inst.NumDiags()
	if par.Band < -1 || par.Band > maxBand {
		return nil, fmt.Errorf("plan: band %d outside [-1,%d]", par.Band, maxBand)
	}
	if par.GPUTile < 1 || par.GPUTile > 64 {
		return nil, fmt.Errorf("plan: gpu-tile %d outside [1,64]", par.GPUTile)
	}
	par = par.Normalize()

	d := inst.NumDiags()
	pl := &Plan{Inst: inst, Par: par}
	if par.Band < 0 {
		// All-CPU: one CPU phase covering everything; GPU and phase 3 empty.
		pl.P1Lo, pl.P1Hi = 0, d-1
		pl.GLo, pl.GHi = 1, 0
		pl.P3Lo, pl.P3Hi = 1, 0
		return pl, nil
	}

	mid := inst.MidDiag()
	lo, hi := mid-par.Band, mid+par.Band
	if lo < 0 {
		lo = 0
	}
	if hi > d-1 {
		hi = d - 1
	}
	pl.GLo, pl.GHi = lo, hi
	pl.P1Lo, pl.P1Hi = 0, lo-1
	pl.P3Lo, pl.P3Hi = hi+1, d-1

	if par.Halo >= 0 {
		if max := pl.MaxHalo(); par.Halo > max {
			return nil, fmt.Errorf("plan: halo %d exceeds max %d (half of first offloaded diagonal)",
				par.Halo, max)
		}
	} else if par.Halo < -1 {
		return nil, fmt.Errorf("plan: halo %d < -1", par.Halo)
	}
	return pl, nil
}

// MaxHalo returns the largest permitted halo for this plan: half the
// length of the first offloaded diagonal (Table 3), or -1 when the GPU is
// unused.
func (p *Plan) MaxHalo() int {
	if p.Par.Band < 0 {
		return -1
	}
	rows, cols := p.Inst.Shape()
	return grid.DiagLenRect(rows, cols, p.GLo) / 2
}

// MaxHaloFor computes the halo cap for an instance and band without
// building a plan; it returns -1 when band < 0.
func MaxHaloFor(inst Instance, band int) int {
	if band < 0 {
		return -1
	}
	mid := inst.MidDiag()
	lo := mid - band
	if lo < 0 {
		lo = 0
	}
	rows, cols := inst.Shape()
	return grid.DiagLenRect(rows, cols, lo) / 2
}

// GPUDiags returns the number of offloaded diagonals (0 when the GPU is
// unused).
func (p *Plan) GPUDiags() int {
	if p.GHi < p.GLo {
		return 0
	}
	return p.GHi - p.GLo + 1
}

// GPUCells returns the number of cells in the offloaded band.
func (p *Plan) GPUCells() int {
	rows, cols := p.Inst.Shape()
	return grid.CellsInDiagRangeRect(rows, cols, p.GLo, p.GHi)
}

// CPUCells returns the number of cells in the two CPU phases.
func (p *Plan) CPUCells() int {
	return p.Inst.Cells() - p.GPUCells()
}

// SwapPeriod returns the number of diagonals between halo exchanges when
// two GPUs are used: the halo size, with a minimum of one (a halo of zero
// still requires boundary data after every diagonal).
func (p *Plan) SwapPeriod() int {
	if p.Par.Halo < 1 {
		return 1
	}
	return p.Par.Halo
}

// NumSwaps returns the number of halo exchanges of the plan: one after
// every full period, except that no swap follows the final diagonal group.
func (p *Plan) NumSwaps() int {
	if p.Par.GPUCount() != 2 || p.GPUDiags() == 0 {
		return 0
	}
	periods := (p.GPUDiags() + p.SwapPeriod() - 1) / p.SwapPeriod()
	return periods - 1
}

// RedundantPoints returns the modeled number of extra cell computations
// caused by the overlap between the two GPUs: after each swap the overlap
// starts at halo and shrinks by one per diagonal, so each period
// recomputes about halo*(halo+1)/2 cells on each device (Section 2.1's
// communication/recomputation trade-off).
func (p *Plan) RedundantPoints() int {
	if p.Par.GPUCount() != 2 || p.Par.Halo <= 0 {
		return 0
	}
	h := p.Par.Halo
	periods := (p.GPUDiags() + p.SwapPeriod() - 1) / p.SwapPeriod()
	return periods * h * (h + 1) / 2 * 2
}

// AllGPU reports whether the plan offloads every diagonal (null CPU
// phases, Section 2's "computation carried out entirely within the GPU").
func (p *Plan) AllGPU() bool {
	return p.Par.Band >= 0 && p.GLo == 0 && p.GHi == p.Inst.NumDiags()-1
}

// Partition describes one device's share of an offloaded diagonal.
type Partition struct {
	// Start and End delimit the half-open cell index range [Start, End)
	// within the diagonal, including any redundantly computed overlap.
	Start, End int
}

// Len returns the number of cells in the partition.
func (pt Partition) Len() int {
	if pt.End <= pt.Start {
		return 0
	}
	return pt.End - pt.Start
}

// PartitionDiag splits a diagonal of length l between nGPU devices with
// the given current overlap (the halo remaining before the next swap).
// Device 0 takes the low indices. The union of the partitions always
// covers [0, l).
func PartitionDiag(l, nGPU, overlap int) []Partition {
	if nGPU <= 1 {
		return []Partition{{0, l}}
	}
	half := l / 2
	p0 := Partition{0, min(l, half+overlap)}
	p1 := Partition{max(0, half-overlap), l}
	return []Partition{p0, p1}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TileDiag describes one tile-diagonal of a CPU phase: NTiles tiles that
// can run in parallel, jointly covering Cells cells of the phase region.
type TileDiag struct {
	NTiles int
	Cells  int
}

// CPUTileDiags enumerates the tile-diagonals of the CPU phase of a square
// dim-sized grid; see CPUTileDiagsRect.
func CPUTileDiags(dim, ct, lo, hi int) []TileDiag {
	return CPUTileDiagsRect(dim, dim, ct, lo, hi)
}

// CPUTileDiagsRect enumerates the tile-diagonals of the CPU phase covering
// cell-diagonals [lo, hi] of a rows x cols grid with square tiles of side
// ct. Tile-diagonal t groups the cells whose diagonal index lies in
// [t*ct, (t+1)*ct-1] — these spans partition the diagonal space, so the
// Cells fields sum exactly to the region size. NTiles is the width of the
// tile wavefront at t, which bounds the parallelism available to the
// executor.
func CPUTileDiagsRect(rows, cols, ct, lo, hi int) []TileDiag {
	if hi < lo {
		return nil
	}
	nTr := (rows + ct - 1) / ct
	nTc := (cols + ct - 1) / ct
	tLo, tHi := lo/ct, hi/ct
	out := make([]TileDiag, 0, tHi-tLo+1)
	for t := tLo; t <= tHi; t++ {
		cLo, cHi := t*ct, (t+1)*ct-1
		if cLo < lo {
			cLo = lo
		}
		if cHi > hi {
			cHi = hi
		}
		cells := grid.CellsInDiagRangeRect(rows, cols, cLo, cHi)
		if cells == 0 {
			continue
		}
		n := min(min(t+1, nTr+nTc-1-t), min(nTr, nTc))
		if n < 1 {
			n = 1
		}
		out = append(out, TileDiag{NTiles: n, Cells: cells})
	}
	return out
}

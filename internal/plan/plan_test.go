package plan

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func mustBuild(t *testing.T, inst Instance, par Params) *Plan {
	t.Helper()
	p, err := Build(inst, par)
	if err != nil {
		t.Fatalf("Build(%v, %v): %v", inst, par, err)
	}
	return p
}

func TestGPUCountEncoding(t *testing.T) {
	// The paper overloads band and halo to encode gpu-count.
	for _, tc := range []struct {
		band, halo, want int
	}{
		{-1, -1, 0}, {5, -1, 1}, {5, 0, 2}, {5, 3, 2},
	} {
		p := Params{CPUTile: 4, Band: tc.band, GPUTile: 1, Halo: tc.halo}
		if got := p.GPUCount(); got != tc.want {
			t.Errorf("band=%d halo=%d: gpu-count=%d, want %d", tc.band, tc.halo, got, tc.want)
		}
	}
}

func TestNormalizeCollapsesAllCPUConfigs(t *testing.T) {
	a := Params{CPUTile: 4, Band: -1, GPUTile: 8, Halo: 7}.Normalize()
	b := Params{CPUTile: 4, Band: -1, GPUTile: 1, Halo: -1}.Normalize()
	if a != b {
		t.Errorf("all-CPU configs must normalize identically: %v vs %v", a, b)
	}
}

func TestThreePhasePartition(t *testing.T) {
	// Figure 2's 20x20 grid: CPU tiles of 4, a GPU band in the middle.
	inst := Instance{Dim: 20, TSize: 10, DSize: 1}
	p := mustBuild(t, inst, Params{CPUTile: 4, Band: 5, GPUTile: 1, Halo: -1})
	if p.GLo != 14 || p.GHi != 24 {
		t.Errorf("band [%d,%d], want [14,24]", p.GLo, p.GHi)
	}
	if p.P1Hi != 13 || p.P3Lo != 25 {
		t.Errorf("CPU phases wrong: p1 ends %d, p3 starts %d", p.P1Hi, p.P3Lo)
	}
	if p.GPUDiags() != 11 {
		t.Errorf("GPUDiags = %d, want 2*5+1 = 11", p.GPUDiags())
	}
}

func TestPhasesPartitionAllCells(t *testing.T) {
	// Property: for any valid configuration, the three phases cover every
	// cell exactly once.
	f := func(rawDim, rawBand, rawTile uint8) bool {
		dim := int(rawDim)%200 + 2
		band := int(rawBand)%(2*dim+1) - 1
		ct := int(rawTile)%dim + 1
		inst := Instance{Dim: dim, TSize: 5, DSize: 1}
		p, err := Build(inst, Params{CPUTile: ct, Band: band, GPUTile: 1, Halo: -1})
		if err != nil {
			return false
		}
		cpu1 := grid.CellsInDiagRange(dim, p.P1Lo, p.P1Hi)
		gpu := p.GPUCells()
		cpu3 := grid.CellsInDiagRange(dim, p.P3Lo, p.P3Hi)
		return cpu1+gpu+cpu3 == dim*dim && p.CPUCells() == cpu1+cpu3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandMinusOneIsAllCPU(t *testing.T) {
	inst := Instance{Dim: 50, TSize: 10, DSize: 1}
	p := mustBuild(t, inst, Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1})
	if p.GPUDiags() != 0 || p.GPUCells() != 0 {
		t.Error("band=-1 must offload nothing")
	}
	if p.CPUCells() != 2500 {
		t.Errorf("CPU cells = %d, want 2500", p.CPUCells())
	}
	if p.AllGPU() {
		t.Error("all-CPU plan reported as all-GPU")
	}
}

func TestFullBandIsAllGPU(t *testing.T) {
	inst := Instance{Dim: 50, TSize: 10, DSize: 1}
	// Band >= dim-1 covers every diagonal (the paper's null phase 1/3).
	p := mustBuild(t, inst, Params{CPUTile: 1, Band: 49, GPUTile: 1, Halo: -1})
	if !p.AllGPU() {
		t.Error("band=dim-1 must offload everything")
	}
	if p.GPUCells() != 2500 || p.CPUCells() != 0 {
		t.Errorf("gpu=%d cpu=%d, want 2500/0", p.GPUCells(), p.CPUCells())
	}
	// Band beyond dim-1 (allowed up to 2*dim-1 in Table 3) clamps.
	p2 := mustBuild(t, inst, Params{CPUTile: 1, Band: 99, GPUTile: 1, Halo: -1})
	if !p2.AllGPU() {
		t.Error("oversized band must clamp to all-GPU")
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	inst := Instance{Dim: 100, TSize: 10, DSize: 1}
	for _, par := range []Params{
		{CPUTile: 0, Band: -1, GPUTile: 1, Halo: -1},
		{CPUTile: 101, Band: -1, GPUTile: 1, Halo: -1},
		{CPUTile: 4, Band: 200, GPUTile: 1, Halo: -1},
		{CPUTile: 4, Band: -2, GPUTile: 1, Halo: -1},
		{CPUTile: 4, Band: 5, GPUTile: 0, Halo: -1},
		{CPUTile: 4, Band: 5, GPUTile: 1, Halo: 1000},
		{CPUTile: 4, Band: 5, GPUTile: 1, Halo: -3},
	} {
		if _, err := Build(inst, par); err == nil {
			t.Errorf("Build accepted invalid %v", par)
		}
	}
	if _, err := Build(Instance{Dim: 0, TSize: 1}, Params{CPUTile: 1, Band: -1, Halo: -1}); err == nil {
		t.Error("Build accepted dim=0")
	}
	if _, err := Build(Instance{Dim: 5, TSize: 0}, Params{CPUTile: 1, Band: -1, Halo: -1}); err == nil {
		t.Error("Build accepted tsize=0")
	}
}

func TestMaxHalo(t *testing.T) {
	inst := Instance{Dim: 100, TSize: 10, DSize: 1}
	// Band 10: first offloaded diagonal is 89, length 90 -> max halo 45.
	p := mustBuild(t, inst, Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: -1})
	if got := p.MaxHalo(); got != 45 {
		t.Errorf("MaxHalo = %d, want 45", got)
	}
	if got := MaxHaloFor(inst, 10); got != 45 {
		t.Errorf("MaxHaloFor = %d, want 45", got)
	}
	if got := MaxHaloFor(inst, -1); got != -1 {
		t.Errorf("MaxHaloFor(band=-1) = %d, want -1", got)
	}
	// A valid halo at the cap must build.
	mustBuild(t, inst, Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: 45})
}

func TestSwapSchedule(t *testing.T) {
	inst := Instance{Dim: 100, TSize: 10, DSize: 1}
	// 21 offloaded diagonals, halo 5 -> ceil(21/5)=5 periods, 4 swaps.
	p := mustBuild(t, inst, Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: 5})
	if p.SwapPeriod() != 5 {
		t.Errorf("SwapPeriod = %d, want 5", p.SwapPeriod())
	}
	if p.NumSwaps() != 4 {
		t.Errorf("NumSwaps = %d, want 4", p.NumSwaps())
	}
	// Halo 0 still swaps every diagonal.
	p0 := mustBuild(t, inst, Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: 0})
	if p0.SwapPeriod() != 1 || p0.NumSwaps() != 20 {
		t.Errorf("halo=0: period=%d swaps=%d, want 1/20", p0.SwapPeriod(), p0.NumSwaps())
	}
	// Single GPU never swaps.
	p1 := mustBuild(t, inst, Params{CPUTile: 4, Band: 10, GPUTile: 1, Halo: -1})
	if p1.NumSwaps() != 0 {
		t.Error("single GPU must not swap")
	}
}

func TestRedundantPointsTradeoff(t *testing.T) {
	inst := Instance{Dim: 200, TSize: 10, DSize: 1}
	// Larger halos mean fewer swaps but more redundant computation.
	small := mustBuild(t, inst, Params{CPUTile: 4, Band: 50, GPUTile: 1, Halo: 2})
	big := mustBuild(t, inst, Params{CPUTile: 4, Band: 50, GPUTile: 1, Halo: 20})
	if small.NumSwaps() <= big.NumSwaps() {
		t.Error("smaller halo must swap more often")
	}
	if small.RedundantPoints() >= big.RedundantPoints() {
		t.Error("larger halo must recompute more")
	}
	if mustBuild(t, inst, Params{CPUTile: 4, Band: 50, GPUTile: 1, Halo: -1}).RedundantPoints() != 0 {
		t.Error("single GPU has no redundant computation")
	}
}

func TestPartitionDiagCoversAll(t *testing.T) {
	f := func(rawL, rawOv uint8) bool {
		l := int(rawL)%300 + 1
		ov := int(rawOv) % (l/2 + 1)
		parts := PartitionDiag(l, 2, ov)
		if len(parts) != 2 {
			return false
		}
		// Union must cover [0, l): p0 starts at 0, p1 ends at l, and they
		// meet or overlap.
		return parts[0].Start == 0 && parts[1].End == l && parts[0].End >= parts[1].Start
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionDiagSingle(t *testing.T) {
	parts := PartitionDiag(100, 1, 0)
	if len(parts) != 1 || parts[0].Len() != 100 {
		t.Errorf("single-device partition wrong: %v", parts)
	}
}

func TestPartitionOverlapSize(t *testing.T) {
	parts := PartitionDiag(100, 2, 7)
	// Overlap region is [50-7, 50+7) = 14 cells.
	overlap := parts[0].End - parts[1].Start
	if overlap != 14 {
		t.Errorf("overlap = %d, want 14", overlap)
	}
}

func TestCPUTileDiagsConserveCells(t *testing.T) {
	// Property: tile-diagonal cell counts sum exactly to the region size.
	f := func(rawDim, rawCt, rawLo, rawHi uint8) bool {
		dim := int(rawDim)%150 + 1
		ct := int(rawCt)%dim + 1
		nd := grid.NumDiags(dim)
		lo := int(rawLo) % nd
		hi := int(rawHi) % nd
		if hi < lo {
			lo, hi = hi, lo
		}
		sum := 0
		for _, td := range CPUTileDiags(dim, ct, lo, hi) {
			if td.NTiles < 1 {
				return false
			}
			sum += td.Cells
		}
		return sum == grid.CellsInDiagRange(dim, lo, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPUTileDiagsEmptyRegion(t *testing.T) {
	if got := CPUTileDiags(100, 4, 5, 4); got != nil {
		t.Errorf("empty region must yield nil, got %v", got)
	}
}

func TestCPUTileDiagsUntiled(t *testing.T) {
	// ct=1: one tile-diagonal per cell-diagonal, NTiles = diagonal length.
	dim := 10
	tds := CPUTileDiags(dim, 1, 0, grid.NumDiags(dim)-1)
	if len(tds) != grid.NumDiags(dim) {
		t.Fatalf("got %d tile-diagonals, want %d", len(tds), grid.NumDiags(dim))
	}
	for i, td := range tds {
		if td.NTiles != grid.DiagLen(dim, i) || td.Cells != grid.DiagLen(dim, i) {
			t.Fatalf("tile-diag %d = %+v, want NTiles=Cells=%d", i, td, grid.DiagLen(dim, i))
		}
	}
}

func TestInstanceString(t *testing.T) {
	s := Instance{Dim: 500, TSize: 0.5, DSize: 0}.String()
	if s != "dim=500 tsize=0.5 dsize=0" {
		t.Errorf("String = %q", s)
	}
	ps := Params{CPUTile: 4, Band: 9, GPUTile: 2, Halo: 3}.String()
	if ps != "cpu-tile=4 band=9 gpu-count=2 gpu-tile=2 halo=3" {
		t.Errorf("Params.String = %q", ps)
	}
}

func TestShapeStringAndCacheKey(t *testing.T) {
	cases := []struct {
		in    Instance
		shape string
		key   string
	}{
		{Instance{Dim: 1900, TSize: 750, DSize: 4}, "1900", "1900|t=750|d=4"},
		{Instance{Rows: 1900, Cols: 1900, TSize: 750, DSize: 4}, "1900", "1900|t=750|d=4"},
		{Instance{Rows: 600, Cols: 1400, TSize: 0.5, DSize: 0}, "600x1400", "600x1400|t=0.5|d=0"},
		{Instance{Dim: 500, TSize: 12000, DSize: 1}, "500", "500|t=12000|d=1"},
	}
	for _, tc := range cases {
		if got := tc.in.ShapeString(); got != tc.shape {
			t.Errorf("%v.ShapeString() = %q, want %q", tc.in, got, tc.shape)
		}
		if got := tc.in.CacheKey(); got != tc.key {
			t.Errorf("%v.CacheKey() = %q, want %q", tc.in, got, tc.key)
		}
	}
	// The two spellings of a square must collide, and distinct instances
	// must not.
	sq := Instance{Dim: 700, TSize: 10, DSize: 1}
	rc := Instance{Rows: 700, Cols: 700, TSize: 10, DSize: 1}
	if sq.CacheKey() != rc.CacheKey() {
		t.Errorf("square spellings differ: %q vs %q", sq.CacheKey(), rc.CacheKey())
	}
	other := Instance{Dim: 700, TSize: 10, DSize: 2}
	if sq.CacheKey() == other.CacheKey() {
		t.Errorf("distinct instances collide on %q", sq.CacheKey())
	}
}

func TestInstanceLiveCells(t *testing.T) {
	dense := Instance{Dim: 10, TSize: 1}
	if dense.WorkCells() != 100 || dense.LiveFrac() != 1 {
		t.Errorf("dense: WorkCells=%d LiveFrac=%g", dense.WorkCells(), dense.LiveFrac())
	}
	masked := Instance{Dim: 10, TSize: 1, LiveCells: 55}
	if masked.WorkCells() != 55 || masked.LiveFrac() != 0.55 {
		t.Errorf("masked: WorkCells=%d LiveFrac=%g", masked.WorkCells(), masked.LiveFrac())
	}
	if err := masked.Validate(); err != nil {
		t.Errorf("masked instance invalid: %v", err)
	}
	if err := (Instance{Dim: 10, TSize: 1, LiveCells: 101}).Validate(); err == nil {
		t.Error("live cells above the rectangle must be rejected")
	}
	if err := (Instance{Dim: 10, TSize: 1, LiveCells: -1}).Validate(); err == nil {
		t.Error("negative live cells must be rejected")
	}

	// Dense instances keep the historical cache key; masked ones fork it.
	if k := dense.CacheKey(); k != masked.CacheKey()[:len(k)] || masked.CacheKey() == k {
		t.Errorf("cache keys: dense %q masked %q", k, masked.CacheKey())
	}
	if want := "10|t=1|d=0|live=55"; masked.CacheKey() != want {
		t.Errorf("masked CacheKey = %q, want %q", masked.CacheKey(), want)
	}
}

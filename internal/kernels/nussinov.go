package kernels

import "repro/internal/grid"

// Nussinov is a Nussinov-style RNA secondary-structure kernel: it
// maximizes the number of nested complementary base pairs of a single
// sequence of n bases on an n x n grid. The classic DP fills a
// triangular matrix N(i,j) over intervals i <= j by increasing interval
// length, with
//
//	N(i,j) = max(N(i+1,j), N(i,j-1), N(i+1,j-1) + pair(i,j))
//
// where pair(i,j) is 1 when bases i and j are complementary and at
// least MinLoop unpaired bases separate them. Flipping the row axis
// (cell (r,c) holds interval [n-1-r, c]) turns those dependencies into
// exactly the wavefront's north, west and northwest neighbours, so the
// kernel runs unchanged on every executor — but only the cells with
// r + c >= n-1 carry real intervals; the leading triangle of the grid
// (the first half of the wavefront) is trivially zero, and the answer
// for the whole sequence lands in the final cell (n-1, n-1). That
// triangular live region makes Nussinov the first catalog workload
// whose work is not uniform over the rectangle; it is declared to the
// substrate through the Masked interface, so frontier executors skip
// the dead half instead of special-casing it here.
//
// The full Nussinov recurrence adds a bifurcation term
// max_k N(i,k)+N(k+1,j) that reads O(n) non-neighbour cells per point;
// it is deliberately omitted so the kernel keeps the three-neighbour
// dependency cone every execution path (tiled CPU, multi-GPU bands with
// halo overlap) is proven against. What remains is the maximal chain of
// nested pairs — the hairpin backbone of the structure.
type Nussinov struct {
	// Seq, when non-nil, is the RNA sequence (bases A, C, G, U);
	// otherwise synthetic bases are derived from indices.
	Seq []byte
	// MinLoop is the minimum hairpin loop length: bases i and j may only
	// pair when j - i > MinLoop (the biophysical default is 3).
	MinLoop int
}

// NussinovTSize is the folding kernel's granularity on the synthetic
// tsize scale, per cell of the triangular live region. The dead half of
// the rectangle is declared through the Masked interface rather than
// averaged into the granularity, so the frontier substrate can skip it
// and the cost model can scale by the live fraction explicitly.
const NussinovTSize = 1.2

// NussinovMinLoop is the conventional minimum hairpin loop length.
const NussinovMinLoop = 3

// NewNussinov returns a folding kernel over a synthetic sequence with
// the given minimum loop length (negative selects NussinovMinLoop).
func NewNussinov(minLoop int) *Nussinov {
	if minLoop < 0 {
		minLoop = NussinovMinLoop
	}
	return &Nussinov{MinLoop: minLoop}
}

// NewNussinovWith returns a folding kernel over the given sequence.
func NewNussinovWith(seq []byte, minLoop int) *Nussinov {
	k := NewNussinov(minLoop)
	k.Seq = seq
	return k
}

// Name implements Kernel.
func (n *Nussinov) Name() string { return "nussinov" }

// TSize implements Kernel.
func (n *Nussinov) TSize() float64 { return NussinovTSize }

// DSize implements Kernel.
func (n *Nussinov) DSize() int { return 0 }

// Stencil implements Stenciled: the folding recurrence reads exactly the
// three wavefront neighbours.
func (n *Nussinov) Stencil() grid.Stencil { return grid.DenseStencil() }

// Live implements Masked: cell (r, c) carries interval [rows-1-r, c],
// which is real only when rows-1-r <= c — the triangular half of the
// grid at or past the main anti-diagonal. Frontier executors schedule
// only this region; the guard in Compute keeps dense executors (which
// still visit the dead half) writing the same zeros the frontier path
// leaves untouched.
func (n *Nussinov) Live(rows, cols, r, c int) bool { return r+c >= rows-1 }

var rnaBases = [4]byte{'A', 'C', 'G', 'U'}

func (n *Nussinov) base(i int) byte {
	if n.Seq != nil && i < len(n.Seq) {
		return n.Seq[i]
	}
	return rnaBases[(i*2654435761)>>9&3]
}

// canPair reports Watson-Crick or G-U wobble complementarity.
func canPair(a, b byte) bool {
	switch {
	case a == 'A' && b == 'U', a == 'U' && b == 'A',
		a == 'C' && b == 'G', a == 'G' && b == 'C',
		a == 'G' && b == 'U', a == 'U' && b == 'G':
		return true
	}
	return false
}

// Compute implements Kernel. Cell (r, c) of the n x n grid holds the
// interval [n-1-r, c]; cells below the anti-diagonal (empty intervals)
// are zero. Integer variable B records whether the cell's maximum was
// achieved by pairing its interval ends.
func (n *Nussinov) Compute(g *grid.Grid, r, c int) {
	size := g.Rows()
	i, j := size-1-r, c
	if i > j {
		g.SetA(r, c, 0)
		g.SetB(r, c, 0)
		return
	}
	var best int64
	if r > 0 {
		best = g.A(r-1, c) // N(i+1, j): leave base i unpaired
	}
	if c > 0 {
		if v := g.A(r, c-1); v > best { // N(i, j-1): leave base j unpaired
			best = v
		}
	}
	var paired int64
	if j-i > n.MinLoop && canPair(n.base(i), n.base(j)) {
		var inner int64
		if r > 0 && c > 0 {
			inner = g.A(r-1, c-1) // N(i+1, j-1)
		}
		if inner+1 > best {
			best, paired = inner+1, 1
		}
	}
	g.SetA(r, c, best)
	g.SetB(r, c, paired)
}

// Pairs returns the maximum nested pair count for the whole sequence
// after a sweep: the value of interval [0, n-1], which the row flip
// places at the final wavefront cell (n-1, n-1).
func (n *Nussinov) Pairs(g *grid.Grid) int64 {
	return g.A(g.Rows()-1, g.Cols()-1)
}

package kernels

// Golden tests for the extended catalog kernels: each kernel's grid is
// verified cell-for-cell against an independent, straightforwardly
// written reference implementation of the same dynamic program (bordered
// matrices, no wavefront machinery), so a kernel bug cannot hide behind
// a matching-but-wrong executor.

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// refSWAffine is a bordered-matrix Gotoh implementation: H/E/F are
// (m+1) x (n+1) with index 0 meaning "before the sequence".
func refSWAffine(a, b []byte, match, mismatch, open, extend int64) (h, e, f [][]int64) {
	const neg = int64(-1) << 40
	m, n := len(a), len(b)
	alloc := func() [][]int64 {
		x := make([][]int64, m+1)
		for i := range x {
			x[i] = make([]int64, n+1)
		}
		return x
	}
	h, e, f = alloc(), alloc(), alloc()
	for i := 0; i <= m; i++ {
		e[i][0] = neg
		f[i][0] = neg
	}
	for j := 0; j <= n; j++ {
		e[0][j] = neg
		f[0][j] = neg
	}
	max := func(xs ...int64) int64 {
		best := xs[0]
		for _, x := range xs[1:] {
			if x > best {
				best = x
			}
		}
		return best
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			e[i][j] = max(h[i][j-1]-open-extend, e[i][j-1]-extend)
			f[i][j] = max(h[i-1][j]-open-extend, f[i-1][j]-extend)
			sub := mismatch
			if a[i-1] == b[j-1] {
				sub = match
			}
			h[i][j] = max(0, h[i-1][j-1]+sub, e[i][j], f[i][j])
		}
	}
	return h, e, f
}

func TestSWAffineGolden(t *testing.T) {
	a := []byte("GATTACACAGGT")
	b := []byte("GCATGCGATTACTT")
	k := NewSWAffineWith(a, b)
	g := grid.NewRect(len(a), len(b), k.DSize())
	RunAll(k, g)

	h, e, f := refSWAffine(a, b, k.Match, k.Mismatch, k.GapOpen, k.GapExtend)
	var best int64
	for r := 0; r < len(a); r++ {
		for c := 0; c < len(b); c++ {
			if got, want := g.A(r, c), h[r+1][c+1]; got != want {
				t.Fatalf("H(%d,%d) = %d, want %d", r, c, got, want)
			}
			if got, want := int64(g.Float(r, c, 0)), e[r+1][c+1]; got != want {
				t.Fatalf("E(%d,%d) = %d, want %d", r, c, got, want)
			}
			if got, want := int64(g.Float(r, c, 1)), f[r+1][c+1]; got != want {
				t.Fatalf("F(%d,%d) = %d, want %d", r, c, got, want)
			}
			if h[r+1][c+1] > best {
				best = h[r+1][c+1]
			}
		}
	}
	if got := k.Score(g); got != best {
		t.Errorf("Score = %d, want matrix max %d", got, best)
	}
	// Sanity on a case with a known answer: identical sequences score
	// len * match with no gaps.
	same := []byte("ACGTACGT")
	k2 := NewSWAffineWith(same, same)
	g2 := grid.NewRect(len(same), len(same), k2.DSize())
	RunAll(k2, g2)
	if got, want := k2.Score(g2), int64(len(same))*k2.Match; got != want {
		t.Errorf("self-alignment score = %d, want %d", got, want)
	}
}

// refLCS is the textbook bordered LCS table.
func refLCS(a, b []byte) [][]int64 {
	m, n := len(a), len(b)
	l := make([][]int64, m+1)
	for i := range l {
		l[i] = make([]int64, n+1)
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			switch {
			case a[i-1] == b[j-1]:
				l[i][j] = l[i-1][j-1] + 1
			case l[i-1][j] >= l[i][j-1]:
				l[i][j] = l[i-1][j]
			default:
				l[i][j] = l[i][j-1]
			}
		}
	}
	return l
}

func TestLCSGolden(t *testing.T) {
	a := []byte("AGGTAB")
	b := []byte("GXTXAYB")
	k := NewLCSWith(a, b)
	g := grid.NewRect(len(a), len(b), 0)
	RunAll(k, g)
	want := refLCS(a, b)
	for r := 0; r < len(a); r++ {
		for c := 0; c < len(b); c++ {
			if got := g.A(r, c); got != want[r+1][c+1] {
				t.Fatalf("L(%d,%d) = %d, want %d", r, c, got, want[r+1][c+1])
			}
		}
	}
	// The classic example: LCS(AGGTAB, GXTXAYB) = GTAB, length 4.
	if got := k.Length(g); got != 4 {
		t.Errorf("Length = %d, want 4", got)
	}
}

// refDTW is the standard bordered DTW table with +inf borders.
func refDTW(x, y []float64) [][]float64 {
	m, n := len(x), len(y)
	d := make([][]float64, m+1)
	for i := range d {
		d[i] = make([]float64, n+1)
		for j := range d[i] {
			d[i][j] = math.Inf(1)
		}
	}
	d[0][0] = 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			cost := math.Abs(x[i-1] - y[j-1])
			best := d[i-1][j-1]
			if d[i-1][j] < best {
				best = d[i-1][j]
			}
			if d[i][j-1] < best {
				best = d[i][j-1]
			}
			d[i][j] = cost + best
		}
	}
	return d
}

func TestDTWGolden(t *testing.T) {
	x := []float64{0, 1, 2, 3, 2, 1, 0, -1, 0, 2}
	y := []float64{0, 0, 1, 3, 3, 2, 0, -1, -1, 0, 1}
	k := NewDTWWith(x, y)
	g := grid.NewRect(len(x), len(y), k.DSize())
	RunAll(k, g)
	want := refDTW(x, y)
	for r := 0; r < len(x); r++ {
		for c := 0; c < len(y); c++ {
			if got := g.Float(r, c, 0); math.Abs(got-want[r+1][c+1]) > 1e-9 {
				t.Fatalf("D(%d,%d) = %g, want %g", r, c, got, want[r+1][c+1])
			}
		}
	}
	// Identical series warp with zero cost along the diagonal.
	k2 := NewDTWWith(x, x)
	g2 := grid.NewRect(len(x), len(x), k2.DSize())
	RunAll(k2, g2)
	if got := k2.Dist(g2); got != 0 {
		t.Errorf("self-DTW distance = %g, want 0", got)
	}
}

// refNussinov fills the interval table N[i][j] (maximum nested pairs,
// no bifurcation) directly in (i, j) space by increasing interval
// length.
func refNussinov(seq []byte, minLoop int) [][]int64 {
	n := len(seq)
	N := make([][]int64, n)
	for i := range N {
		N[i] = make([]int64, n)
	}
	for span := 1; span < n; span++ {
		for i := 0; i+span < n; i++ {
			j := i + span
			best := N[i+1][j] // i+1 <= j always holds here
			if v := N[i][j-1]; v > best {
				best = v
			}
			if j-i > minLoop && canPair(seq[i], seq[j]) {
				var inner int64
				if i+1 <= j-1 {
					inner = N[i+1][j-1]
				}
				if inner+1 > best {
					best = inner + 1
				}
			}
			N[i][j] = best
		}
	}
	return N
}

func TestNussinovGolden(t *testing.T) {
	seq := []byte("GGGAAAUCCAGCUUCGGCUGAAUU")
	k := NewNussinovWith(seq, NussinovMinLoop)
	n := len(seq)
	g := grid.New(n, 0)
	RunAll(k, g)
	want := refNussinov(seq, k.MinLoop)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			i, j := n-1-r, c
			var w int64
			if i <= j {
				w = want[i][j]
			}
			if got := g.A(r, c); got != w {
				t.Fatalf("cell (%d,%d) = interval [%d,%d] = %d, want %d", r, c, i, j, got, w)
			}
		}
	}
	if got, want := k.Pairs(g), want[0][n-1]; got != want {
		t.Errorf("Pairs = %d, want %d", got, want)
	}
	// A perfect hairpin: GGGG AAAA CCCC pairs all four G-C stems when
	// the loop is long enough.
	hp := []byte("GGGGAAAACCCC")
	k2 := NewNussinovWith(hp, 3)
	g2 := grid.New(len(hp), 0)
	RunAll(k2, g2)
	if got := k2.Pairs(g2); got != 4 {
		t.Errorf("hairpin pairs = %d, want 4", got)
	}
}

func TestNussinovMinLoopGate(t *testing.T) {
	// With minLoop >= n no pairing is ever allowed.
	k := NewNussinovWith([]byte("GCGCGC"), 6)
	g := grid.New(6, 0)
	RunAll(k, g)
	if got := k.Pairs(g); got != 0 {
		t.Errorf("pairs with prohibitive min_loop = %d, want 0", got)
	}
}

// RunAll sweeps the grid row-major (the serial reference order).
func RunAll(k Kernel, g *grid.Grid) {
	for r := 0; r < g.Rows(); r++ {
		for c := 0; c < g.Cols(); c++ {
			k.Compute(g, r, c)
		}
	}
}

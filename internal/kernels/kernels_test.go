package kernels

import (
	"testing"

	"repro/internal/grid"
)

// sweep runs a kernel over the whole grid in row-major order (which
// respects the up/left dependency cone).
func sweep(k Kernel, dim int) *grid.Grid {
	g := grid.New(dim, k.DSize())
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			k.Compute(g, r, c)
		}
	}
	return g
}

// sweepDiag runs a kernel in anti-diagonal order.
func sweepDiag(k Kernel, dim int) *grid.Grid {
	g := grid.New(dim, k.DSize())
	for d := 0; d < grid.NumDiags(dim); d++ {
		for i := 0; i < grid.DiagLen(dim, d); i++ {
			r, c := grid.DiagCell(dim, d, i)
			k.Compute(g, r, c)
		}
	}
	return g
}

func TestOrderIndependence(t *testing.T) {
	// Row-major and diagonal-major sweeps must produce identical grids for
	// every kernel: the fundamental property the hybrid executor needs.
	for _, k := range []Kernel{
		NewSynthetic(3, 2),
		NewNash(2),
		NewSeqCompare(),
		NewKnapsack(20),
	} {
		a := sweep(k, 20)
		b := sweepDiag(k, 20)
		if !a.Equal(b) {
			t.Errorf("%s: row-major and diagonal sweeps differ", k.Name())
		}
	}
}

func TestSyntheticGranularityScales(t *testing.T) {
	s := NewSynthetic(100, 1)
	if s.TSize() != 100 {
		t.Errorf("TSize = %v, want 100", s.TSize())
	}
	if NewSynthetic(0, 0).Iters != 1 {
		t.Error("iters must clamp to >= 1")
	}
}

func TestSyntheticDependsOnNeighbours(t *testing.T) {
	// Changing an upstream cell must change downstream cells: guards
	// against a kernel that ignores its inputs (which would make ordering
	// bugs invisible).
	k := NewSynthetic(2, 1)
	g1 := sweep(k, 8)
	g2 := grid.New(8, 1)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if r == 0 && c == 0 {
				g2.SetA(0, 0, 999) // corrupt the seed cell
				continue
			}
			k.Compute(g2, r, c)
		}
	}
	if g1.A(7, 7) == g2.A(7, 7) {
		t.Error("corner cell insensitive to upstream change")
	}
}

func TestNashPaperMapping(t *testing.T) {
	n := NewNash(1)
	if n.TSize() != 750 {
		t.Errorf("one Nash round must map to tsize 750, got %v", n.TSize())
	}
	if n.DSize() != 4 {
		t.Errorf("Nash dsize must be 4, got %d", n.DSize())
	}
	if NewNash(3).TSize() != 2250 {
		t.Error("TSize must scale with rounds")
	}
}

func TestNashPayoffsBounded(t *testing.T) {
	// The damped best-response update must not diverge.
	g := sweep(NewNash(4), 16)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			p := g.Float(r, c, 0)
			if p != p || p > 1e6 || p < -1e6 {
				t.Fatalf("payoff diverged at (%d,%d): %v", r, c, p)
			}
		}
	}
}

func TestSeqComparePaperMapping(t *testing.T) {
	s := NewSeqCompare()
	if s.TSize() != 0.5 {
		t.Errorf("seqcompare tsize must be 0.5, got %v", s.TSize())
	}
	if s.DSize() != 0 {
		t.Errorf("seqcompare dsize must be 0, got %d", s.DSize())
	}
}

func TestSeqCompareKnownAlignment(t *testing.T) {
	// Align "ACGT" with itself: the best local alignment is the full
	// match, scoring 4 * Match = 8.
	s := NewSeqCompareWith([]byte("ACGT"), []byte("ACGT"))
	g := grid.New(4, 0)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s.Compute(g, r, c)
		}
	}
	if got := s.Score(g); got != 8 {
		t.Errorf("self-alignment score = %d, want 8", got)
	}
}

func TestSeqCompareScoresNonNegative(t *testing.T) {
	g := sweep(NewSeqCompare(), 40)
	for i, h := range g.IntA {
		if h < 0 {
			t.Fatalf("negative Smith–Waterman score at index %d", i)
		}
	}
}

func TestSeqCompareRunningMaxMonotone(t *testing.T) {
	g := sweep(NewSeqCompare(), 24)
	// B must dominate A everywhere and be monotone along rows and columns.
	for r := 0; r < 24; r++ {
		for c := 0; c < 24; c++ {
			if g.B(r, c) < g.A(r, c) {
				t.Fatalf("running max below score at (%d,%d)", r, c)
			}
			if c > 0 && g.B(r, c) < g.B(r, c-1) {
				t.Fatalf("running max decreased along row at (%d,%d)", r, c)
			}
		}
	}
}

func TestKnapsackOptimal(t *testing.T) {
	// Small instance with a known optimum: items (w,v) = (1,1),(2,4),(3,5)
	// capacity 5 -> best is items 2+3 = 9.
	k := &Knapsack{Weights: []int64{1, 2, 3}, Values: []int64{1, 4, 5}}
	dim := 6 // capacities 0..5 in columns, 3 item rows used
	g := grid.New(dim, 0)
	for r := 0; r < 3; r++ {
		for c := 0; c < dim; c++ {
			k.Compute(g, r, c)
		}
	}
	if got := g.A(2, 5); got != 9 {
		t.Errorf("knapsack optimum = %d, want 9", got)
	}
}

func TestKnapsackMonotoneInCapacity(t *testing.T) {
	g := sweep(NewKnapsack(30), 30)
	for r := 0; r < 30; r++ {
		for c := 1; c < 30; c++ {
			if g.A(r, c) < g.A(r, c-1) {
				t.Fatalf("value decreased with capacity at (%d,%d)", r, c)
			}
		}
	}
}

func TestKernelNames(t *testing.T) {
	for _, tc := range []struct {
		k    Kernel
		want string
	}{
		{NewSeqCompare(), "seqcompare"},
		{NewKnapsack(4), "knapsack"},
	} {
		if tc.k.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.k.Name(), tc.want)
		}
	}
}

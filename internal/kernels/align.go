package kernels

// Alignment-family kernels beyond the paper's plain Smith-Waterman
// (SeqCompare): affine-gap local alignment (Gotoh's algorithm) and
// longest common subsequence. Both follow SeqCompare's conventions:
// sequences are derived deterministically from the row and column
// indices unless explicit sequences are supplied, out-of-bounds
// neighbours are the boundary condition, and the running best value is
// threaded through integer variable B so the final answer is readable
// from the last cell.

import "repro/internal/grid"

// gapNegInf is the effectively minus-infinite score stored for the gap
// matrices at boundaries where a gap state cannot exist. It is far below
// any reachable score yet safe against int64 underflow when extended.
const gapNegInf = int64(-1) << 40

// SWAffine is Smith-Waterman local alignment with affine gap penalties
// (Gotoh): a gap of length L costs GapOpen + L*GapExtend, so long indels
// are penalized sub-linearly — the scoring biologists actually use. Each
// cell carries three values: the alignment score H in integer variable
// A, and the two gap-state scores E (gap in the query) and F (gap in the
// reference) in the cell's two floats; the dependency structure is still
// exactly west/north/northwest.
type SWAffine struct {
	// Match and Mismatch are the substitution scores.
	Match, Mismatch int64
	// GapOpen and GapExtend are the (positive) affine gap penalties.
	GapOpen, GapExtend int64
	// SeqA and SeqB, when non-nil, are the sequences to align; otherwise
	// synthetic bases are derived from indices.
	SeqA, SeqB []byte
}

// SWAffineTSize is the affine-gap kernel's granularity on the synthetic
// tsize scale: three coupled recurrences per cell, roughly three times
// the paper's plain sequence comparison (tsize 0.5).
const SWAffineTSize = 1.5

// SWAffineDSize is the per-cell float count: the E and F gap matrices.
const SWAffineDSize = 2

// NewSWAffine returns an affine-gap Smith-Waterman kernel with the
// classic BLAST-style scoring (+5 match, -4 mismatch, gap open 10,
// gap extend 1).
func NewSWAffine() *SWAffine {
	return &SWAffine{Match: 5, Mismatch: -4, GapOpen: 10, GapExtend: 1}
}

// NewSWAffineWith returns an affine-gap kernel aligning the two given
// sequences; cells outside the sequence lengths reuse the synthetic
// bases.
func NewSWAffineWith(a, b []byte) *SWAffine {
	k := NewSWAffine()
	k.SeqA, k.SeqB = a, b
	return k
}

// Name implements Kernel.
func (s *SWAffine) Name() string { return "swaffine" }

// TSize implements Kernel.
func (s *SWAffine) TSize() float64 { return SWAffineTSize }

// DSize implements Kernel.
func (s *SWAffine) DSize() int { return SWAffineDSize }

func (s *SWAffine) baseA(r int) byte {
	if s.SeqA != nil && r < len(s.SeqA) {
		return s.SeqA[r]
	}
	return synthBaseA(r)
}

func (s *SWAffine) baseB(c int) byte {
	if s.SeqB != nil && c < len(s.SeqB) {
		return s.SeqB[c]
	}
	return synthBaseB(c)
}

// Compute implements Kernel: Gotoh's three-matrix recurrence
//
//	E(r,c) = max(H(r,c-1) - open - extend, E(r,c-1) - extend)
//	F(r,c) = max(H(r-1,c) - open - extend, F(r-1,c) - extend)
//	H(r,c) = max(0, H(r-1,c-1) + score, E(r,c), F(r,c))
//
// with H for out-of-bounds neighbours 0 (local alignment) and E/F
// effectively minus infinity (a gap cannot start before the matrix).
// The running maximum of H is kept in integer variable B.
func (s *SWAffine) Compute(g *grid.Grid, r, c int) {
	var diag, up, left int64
	eLeft, fUp := gapNegInf, gapNegInf
	if r > 0 && c > 0 {
		diag = g.A(r-1, c-1)
	}
	if r > 0 {
		up = g.A(r-1, c)
		fUp = int64(g.Float(r-1, c, 1))
	}
	if c > 0 {
		left = g.A(r, c-1)
		eLeft = int64(g.Float(r, c-1, 0))
	}
	e := left - s.GapOpen - s.GapExtend
	if v := eLeft - s.GapExtend; v > e {
		e = v
	}
	f := up - s.GapOpen - s.GapExtend
	if v := fUp - s.GapExtend; v > f {
		f = v
	}
	sub := s.Mismatch
	if s.baseA(r) == s.baseB(c) {
		sub = s.Match
	}
	h := diag + sub
	if e > h {
		h = e
	}
	if f > h {
		h = f
	}
	if h < 0 {
		h = 0
	}
	g.SetA(r, c, h)
	g.SetFloat(r, c, 0, float64(e))
	g.SetFloat(r, c, 1, float64(f))
	best := h
	if c > 0 {
		if b := g.B(r, c-1); b > best {
			best = b
		}
	}
	if r > 0 {
		if b := g.B(r-1, c); b > best {
			best = b
		}
	}
	g.SetB(r, c, best)
}

// Score returns the best local alignment score recorded in the grid
// after a full sweep.
func (s *SWAffine) Score(g *grid.Grid) int64 {
	return g.B(g.Rows()-1, g.Cols()-1)
}

// LCS is the longest-common-subsequence dynamic program, the textbook
// wavefront recurrence: cell (r, c) holds the LCS length of the prefixes
// a[0..r] and b[0..c]. It is the finest-grained kernel in the catalog —
// one comparison and a max per cell.
type LCS struct {
	// SeqA and SeqB, when non-nil, are the sequences to compare;
	// otherwise synthetic bases are derived from indices.
	SeqA, SeqB []byte
}

// LCSTSize is the LCS granularity on the synthetic tsize scale.
const LCSTSize = 0.4

// NewLCS returns an LCS kernel over synthetic sequences.
func NewLCS() *LCS { return &LCS{} }

// NewLCSWith returns an LCS kernel comparing the two given sequences;
// cells outside the sequence lengths reuse the synthetic bases.
func NewLCSWith(a, b []byte) *LCS { return &LCS{SeqA: a, SeqB: b} }

// Name implements Kernel.
func (l *LCS) Name() string { return "lcs" }

// TSize implements Kernel.
func (l *LCS) TSize() float64 { return LCSTSize }

// DSize implements Kernel.
func (l *LCS) DSize() int { return 0 }

func (l *LCS) baseA(r int) byte {
	if l.SeqA != nil && r < len(l.SeqA) {
		return l.SeqA[r]
	}
	return synthBaseA(r)
}

func (l *LCS) baseB(c int) byte {
	if l.SeqB != nil && c < len(l.SeqB) {
		return l.SeqB[c]
	}
	return synthBaseB(c)
}

// Compute implements Kernel: the classic recurrence
//
//	L(r,c) = L(r-1,c-1) + 1                 if a[r] == b[c]
//	L(r,c) = max(L(r-1,c), L(r,c-1))        otherwise
//
// with out-of-bounds neighbours 0. Integer variable B records whether
// the cell was a match (1) or not (0).
func (l *LCS) Compute(g *grid.Grid, r, c int) {
	var diag, up, left int64
	if r > 0 && c > 0 {
		diag = g.A(r-1, c-1)
	}
	if r > 0 {
		up = g.A(r-1, c)
	}
	if c > 0 {
		left = g.A(r, c-1)
	}
	var v, matched int64
	if l.baseA(r) == l.baseB(c) {
		v, matched = diag+1, 1
	} else {
		v = up
		if left > v {
			v = left
		}
	}
	g.SetA(r, c, v)
	g.SetB(r, c, matched)
}

// Length returns the LCS length of the full sequences after a sweep.
func (l *LCS) Length(g *grid.Grid) int64 {
	return g.A(g.Rows()-1, g.Cols()-1)
}

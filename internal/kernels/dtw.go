package kernels

import (
	"math"

	"repro/internal/grid"
)

// DTW is the dynamic-time-warping distance between two real-valued time
// series: cell (r, c) holds the minimum cumulative cost of warping the
// prefixes x[0..r] and y[0..c] onto each other. The recurrence is the
// min-plus mirror of the alignment kernels,
//
//	D(r,c) = |x[r] - y[c]| + min(D(r-1,c-1), D(r-1,c), D(r,c-1))
//
// with the usual DTW boundary (a cell with no predecessors contributes
// only its own cost). The cumulative distance lives in the cell's single
// float; integer variable A records which predecessor was chosen
// (0 diagonal, 1 up, 2 left, 3 none, ties broken in that order) and B
// the resulting warping-path length, so the path is recoverable and
// fully deterministic.
type DTW struct {
	// SeriesA and SeriesB, when non-nil, are the series to warp;
	// otherwise deterministic synthetic series are derived from indices.
	SeriesA, SeriesB []float64
}

// DTWTSize is the DTW granularity on the synthetic tsize scale: an
// absolute difference, a three-way min and an add per cell.
const DTWTSize = 0.8

// DTWDSize is the per-cell float count (the cumulative distance).
const DTWDSize = 1

// NewDTW returns a DTW kernel over synthetic series.
func NewDTW() *DTW { return &DTW{} }

// NewDTWWith returns a DTW kernel warping the two given series; cells
// outside the series lengths reuse the synthetic samples.
func NewDTWWith(a, b []float64) *DTW { return &DTW{SeriesA: a, SeriesB: b} }

// Name implements Kernel.
func (d *DTW) Name() string { return "dtw" }

// TSize implements Kernel.
func (d *DTW) TSize() float64 { return DTWTSize }

// DSize implements Kernel.
func (d *DTW) DSize() int { return DTWDSize }

func (d *DTW) sampleA(r int) float64 {
	if d.SeriesA != nil && r < len(d.SeriesA) {
		return d.SeriesA[r]
	}
	t := float64(r)
	return math.Sin(0.37*t) + 0.5*math.Sin(0.11*t)
}

func (d *DTW) sampleB(c int) float64 {
	if d.SeriesB != nil && c < len(d.SeriesB) {
		return d.SeriesB[c]
	}
	t := float64(c)
	return math.Sin(0.29*t) + 0.5*math.Sin(0.07*t+1)
}

// Compute implements Kernel.
func (d *DTW) Compute(g *grid.Grid, r, c int) {
	cost := math.Abs(d.sampleA(r) - d.sampleB(c))
	best, arg := 0.0, int64(3)
	var steps int64
	pick := func(v float64, which int64, n int64) {
		if arg == 3 || v < best {
			best, arg, steps = v, which, n
		}
	}
	if r > 0 && c > 0 {
		pick(g.Float(r-1, c-1, 0), 0, g.B(r-1, c-1))
	}
	if r > 0 {
		pick(g.Float(r-1, c, 0), 1, g.B(r-1, c))
	}
	if c > 0 {
		pick(g.Float(r, c-1, 0), 2, g.B(r, c-1))
	}
	g.SetFloat(r, c, 0, cost+best)
	g.SetA(r, c, arg)
	g.SetB(r, c, steps+1)
}

// Dist returns the DTW distance of the full series after a sweep.
func (d *DTW) Dist(g *grid.Grid) float64 {
	return g.Float(g.Rows()-1, g.Cols()-1, 0)
}

package kernels

import (
	"testing"

	"repro/internal/grid"
)

// morphReconReference computes the reconstruction independently with a
// plain row-major scan (a dependency-respecting order for the causal
// W/N/NW cone), without going through the Kernel interface.
func morphReconReference(m *MorphRecon, rows, cols int) []int64 {
	out := make([]int64, rows*cols)
	at := func(r, c int) int64 {
		if r < 0 || c < 0 {
			return 0
		}
		return out[r*cols+c]
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !m.Open(r, c) {
				continue
			}
			best := int64(0)
			for _, p := range [][2]int{{r, c - 1}, {r - 1, c}, {r - 1, c - 1}} {
				if v := at(p[0], p[1]) - m.Decay; v > best {
					best = v
				}
			}
			if m.Marker(r, c) {
				if cap := m.Cap(r, c); cap > best {
					best = cap
				}
			}
			if cap := m.Cap(r, c); best > cap {
				best = cap
			}
			out[r*cols+c] = best
		}
	}
	return out
}

// TestMorphReconGolden checks the kernel against the independent
// reference on several shapes, seeds and thresholds, and pins a few
// structural properties of the reconstruction.
func TestMorphReconGolden(t *testing.T) {
	cases := []struct {
		rows, cols, threshold int
		seed                  int64
	}{
		{1, 1, 128, 1},
		{13, 17, 128, 1},
		{17, 13, 64, 2},
		{24, 24, 200, 3},
		{9, 31, 0, 4}, // threshold 0: fully open, dense propagation
	}
	for _, tc := range cases {
		m := NewMorphRecon(tc.threshold, tc.seed)
		g := grid.NewRect(tc.rows, tc.cols, 0)
		for r := 0; r < tc.rows; r++ {
			for c := 0; c < tc.cols; c++ {
				m.Compute(g, r, c)
			}
		}
		want := morphReconReference(m, tc.rows, tc.cols)
		markers, reached := 0, 0
		for r := 0; r < tc.rows; r++ {
			for c := 0; c < tc.cols; c++ {
				got := g.A(r, c)
				if got != want[r*tc.cols+c] {
					t.Fatalf("%dx%d thr=%d seed=%d: A(%d,%d) = %d, want %d",
						tc.rows, tc.cols, tc.threshold, tc.seed, r, c, got, want[r*tc.cols+c])
				}
				if !m.Open(r, c) {
					if got != 0 {
						t.Fatalf("closed cell (%d,%d) has value %d", r, c, got)
					}
					continue
				}
				if got < 0 || got > m.Cap(r, c) {
					t.Fatalf("open cell (%d,%d) value %d outside [0, cap=%d]", r, c, got, m.Cap(r, c))
				}
				if m.Marker(r, c) {
					markers++
					if got < m.Cap(r, c) {
						t.Fatalf("marker (%d,%d) reconstructed below its cap: %d < %d", r, c, got, m.Cap(r, c))
					}
				}
				if got > 0 {
					reached++
				}
			}
		}
		if tc.rows*tc.cols > 100 && markers == 0 {
			t.Errorf("%dx%d thr=%d seed=%d: no markers in instance", tc.rows, tc.cols, tc.threshold, tc.seed)
		}
		if reached < markers {
			t.Errorf("reached %d < markers %d", reached, markers)
		}
	}
}

// TestMorphReconPropagates checks that reconstruction actually spreads
// beyond the marker set: bright values decay into non-marker neighbours.
func TestMorphReconPropagates(t *testing.T) {
	m := NewMorphRecon(64, 7)
	rows, cols := 40, 40
	g := grid.NewRect(rows, cols, 0)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Compute(g, r, c)
		}
	}
	lit := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if m.Open(r, c) && !m.Marker(r, c) && g.A(r, c) > 0 {
				lit++
			}
		}
	}
	if lit == 0 {
		t.Fatal("no non-marker cell received propagated brightness")
	}
	if m.Mass(g) <= 0 {
		t.Fatalf("Mass = %d, want > 0", m.Mass(g))
	}
}

// TestMorphReconInterfaces pins the kernel's substrate declarations and
// the live-fraction closed form.
func TestMorphReconInterfaces(t *testing.T) {
	m := NewMorphRecon(-1, 1)
	if m.Threshold != MorphReconThreshold || m.Decay != 1 {
		t.Fatalf("defaults: threshold=%d decay=%d", m.Threshold, m.Decay)
	}
	if got := StencilOf(m); !got.Causal() {
		t.Errorf("stencil %v not causal", got)
	}
	live := LiveOf(m, 16, 16)
	if live == nil {
		t.Fatal("LiveOf returned nil for a Masked kernel")
	}
	n := grid.LiveCellsRect(16, 16, live)
	if n <= 0 || n >= 256 {
		t.Errorf("live cells = %d, want a strict subset of 256", n)
	}
	if f := MorphReconLiveFraction(0); f != 1 {
		t.Errorf("LiveFraction(0) = %g", f)
	}
	if f := MorphReconLiveFraction(256); f != 0 {
		t.Errorf("LiveFraction(256) = %g", f)
	}
	if f := MorphReconLiveFraction(128); f != 0.5 {
		t.Errorf("LiveFraction(128) = %g", f)
	}
	// The hash-derived density should track the closed form loosely.
	frac := float64(n) / 256
	want := MorphReconLiveFraction(MorphReconThreshold)
	if frac < want-0.2 || frac > want+0.2 {
		t.Errorf("observed live fraction %g far from expected %g", frac, want)
	}
}

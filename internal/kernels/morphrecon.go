package kernels

import "repro/internal/grid"

// MorphRecon is a causal grayscale morphological reconstruction kernel,
// the first genuinely irregular catalog workload, after the irregular
// wavefront propagation patterns of Teodoro et al.: a marker image is
// propagated through the connected "open" region of a mask image, each
// reconstructed pixel taking the brightest value reachable from a marker
// along an open path, attenuated by a per-step decay and clipped at the
// mask's own capacity.
//
// The instance is self-generating, like the sequence kernels: the mask
// (which pixels are open, and their capacity) and the marker set are
// derived deterministically from pixel coordinates and a seed, so
// instances of any shape exist without input files. Cell (r, c) computes
//
//	A(r,c) = 0                                          if closed
//	A(r,c) = min(cap, max(marker, W-decay, N-decay, NW-decay, 0))
//
// where W/N/NW are the reconstructed values of the west, north and
// northwest neighbours (closed or out-of-bounds neighbours contribute
// nothing — their value is zero, and zero minus a positive decay never
// wins). This is the forward (causal) half-scan of the classic two-pass
// raster reconstruction algorithm: dependencies point only at earlier
// cells, so the value of a cell is a pure function of its predecessors
// and every dependency-respecting execution order yields the same
// matrix.
//
// What makes the workload irregular is the live region: only the open
// pixels of the mask carry work, and which pixels are open is decided by
// a hash, not a closed form over diagonals. MorphRecon declares the
// region through Masked and its three-neighbour cone through Stenciled,
// so the frontier executors schedule it as a work queue seeded from the
// open cells without open predecessors — dense executors still sweep
// the whole rectangle and write zeros in the closed cells, which is
// exactly what the frontier path leaves behind.
type MorphRecon struct {
	// Threshold in [0, 255] decides openness: pixel (r, c) is open when
	// its mask hash byte is >= Threshold, so the expected live fraction
	// is (256-Threshold)/256.
	Threshold int
	// Decay is the per-step attenuation of a propagating marker value.
	Decay int64
	// Seed varies the derived mask and marker fields.
	Seed int64
}

// MorphReconTSize is the reconstruction kernel's granularity on the
// synthetic tsize scale, per live cell: three neighbour loads, a few
// hashes and comparisons — slightly coarser than sequence comparison.
const MorphReconTSize = 0.7

// MorphReconThreshold is the default openness threshold: about half the
// pixels are open.
const MorphReconThreshold = 128

// NewMorphRecon returns a reconstruction kernel with the given openness
// threshold (negative selects MorphReconThreshold), unit decay and the
// given seed.
func NewMorphRecon(threshold int, seed int64) *MorphRecon {
	if threshold < 0 {
		threshold = MorphReconThreshold
	}
	return &MorphRecon{Threshold: threshold, Decay: 1, Seed: seed}
}

// Name implements Kernel.
func (m *MorphRecon) Name() string { return "morphrecon" }

// TSize implements Kernel.
func (m *MorphRecon) TSize() float64 { return MorphReconTSize }

// DSize implements Kernel.
func (m *MorphRecon) DSize() int { return 0 }

// Stencil implements Stenciled: the causal propagation cone.
func (m *MorphRecon) Stencil() grid.Stencil { return grid.DenseStencil() }

// hash is a small integer mix deriving the synthetic image fields.
func (m *MorphRecon) hash(r, c int) uint64 {
	x := uint64(r)*0x9E3779B97F4A7C15 ^ uint64(c)*0xC2B2AE3D27D4EB4F ^ uint64(m.Seed)*0x165667B19E3779F9
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

// Open reports whether pixel (r, c) belongs to the mask's open region.
func (m *MorphRecon) Open(r, c int) bool {
	return int(m.hash(r, c)&0xff) >= m.Threshold
}

// Live implements Masked: only open pixels carry work.
func (m *MorphRecon) Live(rows, cols, r, c int) bool { return m.Open(r, c) }

// Cap returns the mask capacity of an open pixel, in [1, 128].
func (m *MorphRecon) Cap(r, c int) int64 {
	return 1 + int64(m.hash(r, c)>>8&0x7f)
}

// Marker reports whether pixel (r, c) is a marker seed (about 1 in 32
// open pixels).
func (m *MorphRecon) Marker(r, c int) bool {
	return m.Open(r, c) && m.hash(r, c)>>16&0x1f == 0
}

// Compute implements Kernel. Integer variable A holds the reconstructed
// value; B records how the cell was reached (0 closed, 1 propagated-only
// or dark, 2 marker).
func (m *MorphRecon) Compute(g *grid.Grid, r, c int) {
	if !m.Open(r, c) {
		g.SetA(r, c, 0)
		g.SetB(r, c, 0)
		return
	}
	var best int64
	if c > 0 {
		if v := g.A(r, c-1) - m.Decay; v > best {
			best = v
		}
	}
	if r > 0 {
		if v := g.A(r-1, c) - m.Decay; v > best {
			best = v
		}
	}
	if r > 0 && c > 0 {
		if v := g.A(r-1, c-1) - m.Decay; v > best {
			best = v
		}
	}
	how := int64(1)
	if m.Marker(r, c) {
		if cap := m.Cap(r, c); cap > best {
			best = cap
		}
		how = 2
	}
	if cap := m.Cap(r, c); best > cap {
		best = cap
	}
	g.SetA(r, c, best)
	g.SetB(r, c, how)
}

// Mass returns the total reconstructed brightness of the grid after a
// sweep — the scalar summary of a reconstruction run.
func (m *MorphRecon) Mass(g *grid.Grid) int64 {
	var sum int64
	for _, v := range g.IntA {
		sum += v
	}
	return sum
}

// LiveFraction returns the expected share of open pixels for a
// threshold, the closed-form density behind the cost model's live-cell
// scaling.
func MorphReconLiveFraction(threshold int) float64 {
	if threshold <= 0 {
		return 1
	}
	if threshold > 255 {
		return 0
	}
	return float64(256-threshold) / 256
}

// Package kernels implements the wavefront point computations used in the
// paper — the parameterizable synthetic application used for training, the
// two real evaluation applications (Nash equilibrium and biological
// sequence comparison), and the 0/1 knapsack recurrence the paper names as
// future work — plus four further dynamic-programming workloads that
// broaden the catalog beyond the paper: Smith-Waterman with affine gaps
// (SWAffine), longest common subsequence (LCS), dynamic time warping
// (DTW), and Nussinov-style RNA folding (Nussinov, the first workload
// whose meaningful domain is triangular rather than the full rectangle).
// The application registry in internal/apps catalogs all of them by name.
//
// A Kernel computes one cell of a wavefront grid from its west, north and
// northwest neighbours. Kernels are pure with respect to the grid: calling
// Compute for cells in any dependency-respecting order yields identical
// results, which is the property the executors and the simulator rely on
// (and which the engine tests verify).
package kernels

import (
	"fmt"

	"repro/internal/grid"
)

// Kernel is a wavefront point computation.
//
// Kernels may additionally implement Stenciled to declare their
// dependency stencil and Masked to declare a live region; the frontier
// executors consult both through StencilOf and LiveOf. Kernels that
// declare neither are scheduled with the dense west/north/northwest cone
// over the full rectangle, which is always safe for kernels whose
// dependencies lie on earlier anti-diagonals (the barrier between
// frontier steps then covers even long-range reads like knapsack's
// weight-shifted column).
type Kernel interface {
	// Name identifies the application.
	Name() string
	// TSize is the task granularity of one point computation, measured in
	// units of one synthetic-kernel iteration on a single CPU core
	// (the paper's tsize scale; Section 3.2.1 maps Nash to 750 and
	// sequence comparison to 0.5).
	TSize() float64
	// DSize is the number of floats carried per cell on the paper's
	// element-size scale (element bytes = 8 + 8*dsize).
	DSize() int
	// Compute evaluates cell (r, c) of g. Out-of-bounds neighbours must be
	// treated as the application's boundary condition.
	Compute(g *grid.Grid, r, c int)
}

// Stenciled is implemented by kernels that declare the exact dependency
// stencil of their recurrence. The irregular frontier path uses it for
// in-degree scheduling; kernels without it get grid.DenseStencil.
type Stenciled interface {
	// Stencil returns the relative offsets a cell reads.
	Stencil() grid.Stencil
}

// Masked is implemented by kernels whose meaningful domain is a strict
// subset of the rectangle (Nussinov's triangle, reconstruction on a
// mask). Cells outside the live region must be no-ops in Compute (or
// write only the grid's zero initial values), so dense executors that
// still visit them produce matrices identical to frontier executors
// that skip them.
type Masked interface {
	// Live reports whether cell (r, c) of a rows x cols grid belongs to
	// the kernel's live region.
	Live(rows, cols, r, c int) bool
}

// StencilOf returns k's declared dependency stencil, or the dense
// west/north/northwest cone when k does not declare one.
func StencilOf(k Kernel) grid.Stencil {
	if s, ok := k.(Stenciled); ok {
		return s.Stencil()
	}
	return grid.DenseStencil()
}

// LiveOf returns k's live-region predicate for a rows x cols grid, or
// nil when the whole rectangle is live.
func LiveOf(k Kernel, rows, cols int) func(r, c int) bool {
	m, ok := k.(Masked)
	if !ok {
		return nil
	}
	return func(r, c int) bool { return m.Live(rows, cols, r, c) }
}

// Synthetic is the paper's training application: a regular kernel whose
// granularity (Iters) and data size (DS) are free parameters. Each point
// mixes the two integer variables and the float payload of its
// neighbours through Iters rounds of cheap integer/float arithmetic, so
// one iteration is the unit of the tsize scale.
type Synthetic struct {
	// Iters is the number of inner iterations (the tsize knob).
	Iters int
	// DS is the float payload length (the dsize knob).
	DS int
}

// NewSynthetic returns a synthetic kernel of the given granularity and
// data size.
func NewSynthetic(iters, dsize int) *Synthetic {
	if iters < 1 {
		iters = 1
	}
	return &Synthetic{Iters: iters, DS: dsize}
}

// Name implements Kernel.
func (s *Synthetic) Name() string { return fmt.Sprintf("synthetic(t=%d,d=%d)", s.Iters, s.DS) }

// TSize implements Kernel.
func (s *Synthetic) TSize() float64 { return float64(s.Iters) }

// DSize implements Kernel.
func (s *Synthetic) DSize() int { return s.DS }

// Compute implements Kernel. The recurrence folds the neighbour values
// through a small linear congruential mix so that every cell depends on
// the full dependency cone and reorderings are detectable.
func (s *Synthetic) Compute(g *grid.Grid, r, c int) {
	var west, north, nw int64
	if c > 0 {
		west = g.A(r, c-1)
	}
	if r > 0 {
		north = g.A(r-1, c)
	}
	if r > 0 && c > 0 {
		nw = g.A(r-1, c-1)
	}
	a := west ^ (north << 1) ^ (nw << 2) ^ int64(r*31+c*17+1)
	b := west + north - nw
	for i := 0; i < s.Iters; i++ {
		a = a*6364136223846793005 + 1442695040888963407
		b ^= a >> 17
	}
	g.SetA(r, c, a)
	g.SetB(r, c, b)
	for k := 0; k < s.DS && k < g.DSize(); k++ {
		var fw, fn float64
		if c > 0 {
			fw = g.Float(r, c-1, k)
		}
		if r > 0 {
			fn = g.Float(r-1, c, k)
		}
		g.SetFloat(r, c, k, 0.5*(fw+fn)+float64(a%1000)*1e-6)
	}
}

// Nash models the paper's game-theoretic evaluation application: small
// instances with a very computationally demanding kernel whose internal
// granularity parameter controls the iteration count of a nested loop
// (Section 3.2.1: one iteration corresponds to tsize=750 with dsize=4).
type Nash struct {
	// Rounds is the application's internal granularity parameter: the
	// iteration count of the nested best-response loop.
	Rounds int
	// Strategies is the size of the inner strategy scan per round.
	Strategies int
}

// NashTSizePerRound is the paper's mapping of one Nash round to the
// synthetic tsize scale.
const NashTSizePerRound = 750

// NashDSize is the paper's data granularity for Nash.
const NashDSize = 4

// NewNash returns a Nash kernel with the given number of best-response
// rounds. Strategies defaults to 8 payoff candidates per round.
func NewNash(rounds int) *Nash {
	if rounds < 1 {
		rounds = 1
	}
	return &Nash{Rounds: rounds, Strategies: 8}
}

// Name implements Kernel.
func (n *Nash) Name() string { return fmt.Sprintf("nash(rounds=%d)", n.Rounds) }

// TSize implements Kernel.
func (n *Nash) TSize() float64 { return float64(n.Rounds) * NashTSizePerRound }

// DSize implements Kernel.
func (n *Nash) DSize() int { return NashDSize }

// Compute implements Kernel. Each cell refines a two-player payoff pair by
// iterated best response over a small strategy set seeded from the
// neighbouring cells; convergence of the pair is the cell's equilibrium
// estimate.
func (n *Nash) Compute(g *grid.Grid, r, c int) {
	var pw, pn float64
	if c > 0 {
		pw = g.Float(r, c-1, 0)
	}
	if r > 0 {
		pn = g.Float(r-1, c, 1)
	}
	p1, p2 := pw+float64(r%7)*0.125, pn+float64(c%5)*0.25
	var count int64
	for round := 0; round < n.Rounds; round++ {
		best1, best2 := p1, p2
		for s := 0; s < n.Strategies; s++ {
			cand := 0.5*p1 + 0.25*p2 + float64(s)*0.0625
			if u := cand - cand*cand*0.01; u > best1 {
				best1 = u
			}
			cand = 0.5*p2 + 0.25*p1 - float64(s)*0.03125
			if u := cand - cand*cand*0.02; u > best2 {
				best2 = u
			}
			count++
		}
		p1, p2 = 0.9*p1+0.1*best1, 0.9*p2+0.1*best2
	}
	g.SetA(r, c, count)
	g.SetB(r, c, int64(n.Rounds))
	if g.DSize() >= 1 {
		g.SetFloat(r, c, 0, p1)
	}
	if g.DSize() >= 2 {
		g.SetFloat(r, c, 1, p2)
	}
	if g.DSize() >= 3 {
		g.SetFloat(r, c, 2, p1-p2)
	}
	if g.DSize() >= 4 {
		g.SetFloat(r, c, 3, p1+p2)
	}
}

// SeqCompare is the biological sequence comparison application: a
// Smith–Waterman local-alignment score matrix with very large instances
// and a very fine-grained kernel (the paper maps it to tsize=0.5, dsize=0).
// The two sequences are derived deterministically from the row and column
// indices so instances of any dim can be generated without input files.
type SeqCompare struct {
	// Match, Mismatch and Gap are the scoring constants.
	Match, Mismatch, Gap int64
	// SeqA and SeqB, when non-nil, are the sequences to align; otherwise
	// synthetic sequences are derived from indices.
	SeqA, SeqB []byte
}

// SeqCompareTSize is the paper's granularity mapping for sequence
// comparison on the synthetic tsize scale.
const SeqCompareTSize = 0.5

// NewSeqCompare returns a Smith–Waterman kernel with classic scoring
// (+2 match, -1 mismatch, -1 gap).
func NewSeqCompare() *SeqCompare {
	return &SeqCompare{Match: 2, Mismatch: -1, Gap: -1}
}

// NewSeqCompareWith returns a Smith–Waterman kernel aligning the two given
// sequences; cells outside the sequence lengths reuse the synthetic bases.
func NewSeqCompareWith(a, b []byte) *SeqCompare {
	k := NewSeqCompare()
	k.SeqA, k.SeqB = a, b
	return k
}

// Name implements Kernel.
func (s *SeqCompare) Name() string { return "seqcompare" }

// TSize implements Kernel.
func (s *SeqCompare) TSize() float64 { return SeqCompareTSize }

// DSize implements Kernel.
func (s *SeqCompare) DSize() int { return 0 }

var bases = [4]byte{'A', 'C', 'G', 'T'}

// synthBaseA and synthBaseB derive deterministic DNA bases from row and
// column indices, so sequence kernels can generate instances of any dim
// without input files. They are shared by every alignment-style kernel
// (SeqCompare, SWAffine, LCS).
func synthBaseA(r int) byte { return bases[(r*2654435761)>>8&3] }

func synthBaseB(c int) byte { return bases[(c*40503)>>4&3] }

func (s *SeqCompare) baseA(r int) byte {
	if s.SeqA != nil && r < len(s.SeqA) {
		return s.SeqA[r]
	}
	return synthBaseA(r)
}

func (s *SeqCompare) baseB(c int) byte {
	if s.SeqB != nil && c < len(s.SeqB) {
		return s.SeqB[c]
	}
	return synthBaseB(c)
}

// Compute implements Kernel: the Smith–Waterman recurrence
// H(r,c) = max(0, H(r-1,c-1)+score, H(r-1,c)+gap, H(r,c-1)+gap),
// with the score kept in integer variable A and the running row maximum
// in B (so the final alignment score is recoverable from the grid).
func (s *SeqCompare) Compute(g *grid.Grid, r, c int) {
	var diag, up, left int64
	if r > 0 && c > 0 {
		diag = g.A(r-1, c-1)
	}
	if r > 0 {
		up = g.A(r-1, c)
	}
	if c > 0 {
		left = g.A(r, c-1)
	}
	sub := s.Mismatch
	if s.baseA(r) == s.baseB(c) {
		sub = s.Match
	}
	h := diag + sub
	if v := up + s.Gap; v > h {
		h = v
	}
	if v := left + s.Gap; v > h {
		h = v
	}
	if h < 0 {
		h = 0
	}
	g.SetA(r, c, h)
	best := h
	if c > 0 {
		if b := g.B(r, c-1); b > best {
			best = b
		}
	}
	if r > 0 {
		if b := g.B(r-1, c); b > best {
			best = b
		}
	}
	g.SetB(r, c, best)
}

// Score returns the best local alignment score recorded in the grid after
// a full sweep (the running maximum at the last cell).
func (s *SeqCompare) Score(g *grid.Grid) int64 {
	return g.B(g.Rows()-1, g.Cols()-1)
}

// Knapsack is the 0/1 knapsack dynamic program, the paper's named
// future-work extension beyond simple wavefronts: row r is item r, column
// c is capacity c, and each cell depends on the cell above and the cell
// above-left by the item's weight. It is expressible in the wavefront
// pattern because its dependencies never point right or down.
type Knapsack struct {
	// Weights and Values describe the items; index by row.
	Weights, Values []int64
}

// NewKnapsack derives a deterministic instance with dim items.
func NewKnapsack(dim int) *Knapsack {
	k := &Knapsack{Weights: make([]int64, dim), Values: make([]int64, dim)}
	for i := 0; i < dim; i++ {
		k.Weights[i] = int64(i%13 + 1)
		k.Values[i] = int64((i*7)%29 + 1)
	}
	return k
}

// Name implements Kernel.
func (k *Knapsack) Name() string { return "knapsack" }

// TSize implements Kernel: the recurrence is two loads and a max, finer
// even than sequence comparison.
func (k *Knapsack) TSize() float64 { return 0.5 }

// DSize implements Kernel.
func (k *Knapsack) DSize() int { return 0 }

// Compute implements Kernel. Row 0 is the base case.
func (k *Knapsack) Compute(g *grid.Grid, r, c int) {
	w, v := int64(1), int64(1)
	if r < len(k.Weights) {
		w, v = k.Weights[r], k.Values[r]
	}
	var without int64
	if r > 0 {
		without = g.A(r-1, c)
	}
	best := without
	if int64(c) >= w {
		var prev int64
		if r > 0 {
			prev = g.A(r-1, c-int(w))
		}
		if take := prev + v; take > best {
			best = take
		}
	}
	g.SetA(r, c, best)
	g.SetB(r, c, w)
}

package core

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/plan"
)

// OnlineTuner implements the paper's future-work item of upgrading the
// offline auto-tuner to tune at runtime: deployment starts from the
// offline model's prediction and spends a small budget of measured probe
// runs hill-climbing through neighbouring configurations. Probes are
// "measured" on the modeled system (the stand-in for timing a real run).
type OnlineTuner struct {
	Base Predictor
	// Budget caps the number of probe measurements (default 12).
	Budget int
}

// RefineStats reports what the online phase did.
type RefineStats struct {
	Probes  int
	StartNs float64
	FinalNs float64
	Moves   int
}

// Improvement returns the speedup of the refined configuration over the
// starting one.
func (s RefineStats) Improvement() float64 {
	if s.FinalNs <= 0 {
		return 0
	}
	return s.StartNs / s.FinalNs
}

// NewOnlineTuner wraps an offline predictor of any backend kind.
func NewOnlineTuner(base Predictor) *OnlineTuner {
	return &OnlineTuner{Base: base, Budget: 12}
}

// Refine predicts offline and then refines at runtime.
func (o *OnlineTuner) Refine(inst plan.Instance) (Prediction, RefineStats, error) {
	return o.RefineContext(context.Background(), inst)
}

// RefineContext is Refine with cooperative cancellation: between probes
// the refinement observes ctx and, once it is done, returns the
// incumbent configuration together with ctx's error. The job subsystem
// cancels in-flight refinements through this path.
func (o *OnlineTuner) RefineContext(ctx context.Context, inst plan.Instance) (Prediction, RefineStats, error) {
	return o.RefineDecisionContext(ctx, inst, o.Base.Predict(inst), 0)
}

// RefineDecisionContext refines an explicit starting decision — e.g. a
// plan-cache entry — without re-running the offline predict: a serial
// decision probes the parallel alternative once against the baseline
// (the gate may have been wrong); a parallel decision hill-climbs from
// its params and falls back to the baseline if even the refined
// configuration loses to it. serialNs is the known sequential baseline
// in nanoseconds (<= 0 recomputes it from the model).
func (o *OnlineTuner) RefineDecisionContext(ctx context.Context, inst plan.Instance, dec Prediction, serialNs float64) (Prediction, RefineStats, error) {
	if serialNs <= 0 {
		serialNs = engine.SerialNs(o.Base.System(), inst)
	}
	if dec.Serial {
		if err := ctx.Err(); err != nil {
			return dec, RefineStats{}, err
		}
		alt := engine.CPUOnlyParams(clampTile(engine.SerialTile, inst.MaxSide()))
		res, err := engine.Estimate(o.Base.System(), inst, alt, engine.Options{})
		if err != nil {
			return dec, RefineStats{}, err
		}
		st := RefineStats{Probes: 1, StartNs: serialNs, FinalNs: serialNs}
		if res.RTimeNs < serialNs {
			st.FinalNs = res.RTimeNs
			st.Moves = 1
			return Prediction{Par: alt}, st, nil
		}
		return dec, st, nil
	}
	refined, st, err := o.RefineFromContext(ctx, inst, dec.Par)
	if err != nil {
		return dec, st, err
	}
	// A runtime tuner can always fall back to the sequential baseline; if
	// even the refined parallel configuration loses to it, run serial.
	if serialNs < st.FinalNs {
		st.FinalNs = serialNs
		return Prediction{Serial: true, Par: engine.CPUOnlyParams(clampTile(engine.SerialTile, inst.MaxSide()))}, st, nil
	}
	return refined, st, nil
}

// RefineFrom hill-climbs from an explicit starting configuration: each
// round measures the neighbours of the incumbent and moves to the best
// strict improvement, until the probe budget is exhausted or a local
// optimum is reached.
func (o *OnlineTuner) RefineFrom(inst plan.Instance, start plan.Params) (Prediction, RefineStats, error) {
	return o.RefineFromContext(context.Background(), inst, start)
}

// RefineFromContext is RefineFrom with cooperative cancellation: ctx is
// checked before every probe measurement, and once it is done the
// incumbent (best so far) is returned with the stats accumulated up to
// that point and ctx's error.
func (o *OnlineTuner) RefineFromContext(ctx context.Context, inst plan.Instance, start plan.Params) (Prediction, RefineStats, error) {
	budget := o.Budget
	if budget <= 0 {
		budget = 12
	}
	sys := o.Base.System()
	measure := func(p plan.Params) (float64, bool) {
		if _, err := plan.Build(inst, p); err != nil {
			return 0, false
		}
		if p.GPUCount() > sys.MaxGPUs() {
			return 0, false
		}
		res, err := engine.Estimate(sys, inst, p, engine.Options{})
		if err != nil {
			return 0, false
		}
		return res.RTimeNs, true
	}

	if err := ctx.Err(); err != nil {
		return Prediction{Par: start.Normalize()}, RefineStats{}, err
	}
	cur := start.Normalize()
	curNs, ok := measure(cur)
	if !ok {
		return Prediction{}, RefineStats{}, fmt.Errorf("core: unmeasurable start %v for %v", start, inst)
	}
	st := RefineStats{Probes: 1, StartNs: curNs, FinalNs: curNs}

	for st.Probes < budget {
		improved := false
		for _, cand := range neighbours(inst, cur) {
			if st.Probes >= budget {
				break
			}
			if err := ctx.Err(); err != nil {
				st.FinalNs = curNs
				return Prediction{Par: cur}, st, err
			}
			ns, ok := measure(cand)
			if !ok {
				continue
			}
			st.Probes++
			if ns < curNs {
				cur, curNs = cand, ns
				improved = true
				st.Moves++
			}
		}
		if !improved {
			break
		}
	}
	st.FinalNs = curNs
	return Prediction{Par: cur}, st, nil
}

// neighbours generates the local moves of the hill climber: scaling the
// band, shifting the halo, swapping cpu-tile to adjacent grid values, and
// toggling the GPU on or off entirely.
func neighbours(inst plan.Instance, p plan.Params) []plan.Params {
	var out []plan.Params
	add := func(q plan.Params) { out = append(out, q.Normalize()) }

	// cpu-tile moves along the Table 3 grid.
	tiles := []int{1, 2, 4, 8, 10, 16}
	for i, t := range tiles {
		if t == p.CPUTile || (p.CPUTile < t && (i == 0 || tiles[i-1] < p.CPUTile)) {
			for _, n := range []int{i - 1, i + 1} {
				if n >= 0 && n < len(tiles) && tiles[n] != p.CPUTile && tiles[n] <= inst.MaxSide() {
					q := p
					q.CPUTile = tiles[n]
					add(q)
				}
			}
			break
		}
	}

	if p.Band < 0 {
		// Try switching the GPU on with a mid-sized band.
		q := p
		q.Band = inst.MaxUsefulBand() / 2
		q.Halo = -1
		add(q)
		return out
	}

	// Band scaling.
	for _, f := range []float64{0.75, 1.25} {
		nb := int(float64(p.Band) * f)
		if nb == p.Band {
			nb = p.Band + 1
		}
		if nb > inst.NumDiags() {
			nb = inst.NumDiags()
		}
		if nb >= 0 {
			q := p
			q.Band = nb
			if q.Halo > plan.MaxHaloFor(inst, nb) {
				q.Halo = plan.MaxHaloFor(inst, nb)
			}
			add(q)
		}
	}
	// GPU off.
	add(plan.Params{CPUTile: p.CPUTile, Band: -1, GPUTile: 1, Halo: -1})

	// Halo moves (dual GPU only).
	if p.Halo >= 0 {
		max := plan.MaxHaloFor(inst, p.Band)
		for _, dh := range []int{-4, -1, 1, 4} {
			nh := p.Halo + dh
			if nh >= -1 && nh <= max {
				q := p
				q.Halo = nh
				add(q)
			}
		}
	} else {
		// Try the second GPU.
		if max := plan.MaxHaloFor(inst, p.Band); max >= 0 {
			q := p
			q.Halo = max / 2
			add(q)
		}
	}
	return out
}

package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/plan"
)

// OnlineTuner implements the paper's future-work item of upgrading the
// offline auto-tuner to tune at runtime: deployment starts from the
// offline model's prediction and spends a small budget of measured probe
// runs hill-climbing through neighbouring configurations. Probes are
// "measured" on the modeled system (the stand-in for timing a real run).
type OnlineTuner struct {
	Base *Tuner
	// Budget caps the number of probe measurements (default 12).
	Budget int
}

// RefineStats reports what the online phase did.
type RefineStats struct {
	Probes  int
	StartNs float64
	FinalNs float64
	Moves   int
}

// Improvement returns the speedup of the refined configuration over the
// starting one.
func (s RefineStats) Improvement() float64 {
	if s.FinalNs <= 0 {
		return 0
	}
	return s.StartNs / s.FinalNs
}

// NewOnlineTuner wraps an offline tuner.
func NewOnlineTuner(base *Tuner) *OnlineTuner {
	return &OnlineTuner{Base: base, Budget: 12}
}

// Refine predicts offline and then refines at runtime.
func (o *OnlineTuner) Refine(inst plan.Instance) (Prediction, RefineStats, error) {
	pred := o.Base.Predict(inst)
	if pred.Serial {
		// The gate said serial; runtime refinement still probes the
		// parallel alternative once in case the gate was wrong.
		serialNs := engine.SerialNs(o.Base.Sys, inst)
		alt := engine.CPUOnlyParams(engine.SerialTile)
		res, err := engine.Estimate(o.Base.Sys, inst, alt, engine.Options{})
		if err != nil {
			return pred, RefineStats{}, err
		}
		st := RefineStats{Probes: 1, StartNs: serialNs, FinalNs: serialNs}
		if res.RTimeNs < serialNs {
			st.FinalNs = res.RTimeNs
			st.Moves = 1
			return Prediction{Par: alt}, st, nil
		}
		return pred, st, nil
	}
	refined, st, err := o.RefineFrom(inst, pred.Par)
	if err != nil {
		return pred, st, err
	}
	// A runtime tuner can always fall back to the sequential baseline; if
	// even the refined parallel configuration loses to it, run serial.
	if serialNs := engine.SerialNs(o.Base.Sys, inst); serialNs < st.FinalNs {
		st.FinalNs = serialNs
		return Prediction{Serial: true, Par: engine.CPUOnlyParams(engine.SerialTile)}, st, nil
	}
	return refined, st, nil
}

// RefineFrom hill-climbs from an explicit starting configuration: each
// round measures the neighbours of the incumbent and moves to the best
// strict improvement, until the probe budget is exhausted or a local
// optimum is reached.
func (o *OnlineTuner) RefineFrom(inst plan.Instance, start plan.Params) (Prediction, RefineStats, error) {
	budget := o.Budget
	if budget <= 0 {
		budget = 12
	}
	sys := o.Base.Sys
	measure := func(p plan.Params) (float64, bool) {
		if _, err := plan.Build(inst, p); err != nil {
			return 0, false
		}
		if p.GPUCount() > sys.MaxGPUs() {
			return 0, false
		}
		res, err := engine.Estimate(sys, inst, p, engine.Options{})
		if err != nil {
			return 0, false
		}
		return res.RTimeNs, true
	}

	cur := start.Normalize()
	curNs, ok := measure(cur)
	if !ok {
		return Prediction{}, RefineStats{}, fmt.Errorf("core: unmeasurable start %v for %v", start, inst)
	}
	st := RefineStats{Probes: 1, StartNs: curNs, FinalNs: curNs}

	for st.Probes < budget {
		improved := false
		for _, cand := range neighbours(inst, cur) {
			if st.Probes >= budget {
				break
			}
			ns, ok := measure(cand)
			if !ok {
				continue
			}
			st.Probes++
			if ns < curNs {
				cur, curNs = cand, ns
				improved = true
				st.Moves++
			}
		}
		if !improved {
			break
		}
	}
	st.FinalNs = curNs
	return Prediction{Par: cur}, st, nil
}

// neighbours generates the local moves of the hill climber: scaling the
// band, shifting the halo, swapping cpu-tile to adjacent grid values, and
// toggling the GPU on or off entirely.
func neighbours(inst plan.Instance, p plan.Params) []plan.Params {
	var out []plan.Params
	add := func(q plan.Params) { out = append(out, q.Normalize()) }

	// cpu-tile moves along the Table 3 grid.
	tiles := []int{1, 2, 4, 8, 10, 16}
	for i, t := range tiles {
		if t == p.CPUTile || (p.CPUTile < t && (i == 0 || tiles[i-1] < p.CPUTile)) {
			for _, n := range []int{i - 1, i + 1} {
				if n >= 0 && n < len(tiles) && tiles[n] != p.CPUTile && tiles[n] <= inst.MaxSide() {
					q := p
					q.CPUTile = tiles[n]
					add(q)
				}
			}
			break
		}
	}

	if p.Band < 0 {
		// Try switching the GPU on with a mid-sized band.
		q := p
		q.Band = inst.MaxUsefulBand() / 2
		q.Halo = -1
		add(q)
		return out
	}

	// Band scaling.
	for _, f := range []float64{0.75, 1.25} {
		nb := int(float64(p.Band) * f)
		if nb == p.Band {
			nb = p.Band + 1
		}
		if nb > inst.NumDiags() {
			nb = inst.NumDiags()
		}
		if nb >= 0 {
			q := p
			q.Band = nb
			if q.Halo > plan.MaxHaloFor(inst, nb) {
				q.Halo = plan.MaxHaloFor(inst, nb)
			}
			add(q)
		}
	}
	// GPU off.
	add(plan.Params{CPUTile: p.CPUTile, Band: -1, GPUTile: 1, Halo: -1})

	// Halo moves (dual GPU only).
	if p.Halo >= 0 {
		max := plan.MaxHaloFor(inst, p.Band)
		for _, dh := range []int{-4, -1, 1, 4} {
			nh := p.Halo + dh
			if nh >= -1 && nh <= max {
				q := p
				q.Halo = nh
				add(q)
			}
		}
	} else {
		// Try the second GPU.
		if max := plan.MaxHaloFor(inst, p.Band); max >= 0 {
			q := p
			q.Halo = max / 2
			add(q)
		}
	}
	return out
}

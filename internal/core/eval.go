package core

import (
	"repro/internal/engine"
	"repro/internal/plan"
)

// EvalPoint compares the tuner against the exhaustive optimum on one
// instance, the measurement behind Figures 10 and 11.
type EvalPoint struct {
	Inst     plan.Instance
	SerialNs float64
	// BestNs is the best exhaustive runtime ("ber"); AllCensored is set
	// when the threshold censored every configuration.
	BestNs      float64
	BestPar     plan.Params
	AllCensored bool
	// AutoNs is the runtime of the tuner's prediction.
	AutoNs float64
	Pred   Prediction
}

// BestSpeedup returns serial/ber.
func (e EvalPoint) BestSpeedup() float64 {
	if e.BestNs <= 0 {
		return 0
	}
	return e.SerialNs / e.BestNs
}

// AutoSpeedup returns serial/auto.
func (e EvalPoint) AutoSpeedup() float64 {
	if e.AutoNs <= 0 {
		return 0
	}
	return e.SerialNs / e.AutoNs
}

// Efficiency returns the fraction of the exhaustive speedup the tuner
// achieved; values above 1 are the paper's "super-optimal" predictions
// outside the searched grid.
func (e EvalPoint) Efficiency() float64 {
	if e.BestSpeedup() == 0 {
		return 0
	}
	return e.AutoSpeedup() / e.BestSpeedup()
}

// EvaluateInstance runs the exhaustive search for one instance (using the
// space's tunable grids) and compares the tuner's prediction against the
// optimum.
func EvaluateInstance(t Predictor, space Space, inst plan.Instance) (EvalPoint, error) {
	sys := t.System()
	e := EvalPoint{Inst: inst, SerialNs: engine.SerialNs(sys, inst)}
	bestFound := false
	for _, par := range space.Configs(inst, sys) {
		res, err := engine.Estimate(sys, inst, par, engine.Options{ThresholdNs: engine.DefaultThresholdNs})
		if err != nil {
			return e, err
		}
		if res.Censored {
			continue
		}
		if !bestFound || res.RTimeNs < e.BestNs {
			e.BestNs = res.RTimeNs
			e.BestPar = par
			bestFound = true
		}
	}
	e.AllCensored = !bestFound

	e.Pred = t.Predict(inst)
	auto, err := t.RTimeFor(inst, e.Pred)
	if err != nil {
		return e, err
	}
	e.AutoNs = auto
	return e, nil
}

// Evaluate runs EvaluateInstance over a list of instances.
func Evaluate(t Predictor, space Space, insts []plan.Instance) ([]EvalPoint, error) {
	out := make([]EvalPoint, 0, len(insts))
	for _, inst := range insts {
		e, err := EvaluateInstance(t, space, inst)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// MeanEfficiency averages Efficiency over points with a defined optimum —
// the paper's "98% of exhaustive performance" headline.
func MeanEfficiency(points []EvalPoint) float64 {
	var s float64
	n := 0
	for _, e := range points {
		if e.AllCensored {
			continue
		}
		s += e.Efficiency()
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

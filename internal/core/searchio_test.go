package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestSearchCSVRoundTrip(t *testing.T) {
	sys := hw.I7_2600K()
	orig, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sys.Name != sys.Name {
		t.Errorf("system = %q", back.Sys.Name)
	}
	if back.Evaluations() != orig.Evaluations() {
		t.Fatalf("evaluations %d != %d", back.Evaluations(), orig.Evaluations())
	}
	if len(back.Instances) != len(orig.Instances) {
		t.Fatalf("instances %d != %d", len(back.Instances), len(orig.Instances))
	}
	for i := range orig.Instances {
		a, b := &orig.Instances[i], &back.Instances[i]
		if a.Inst != b.Inst {
			t.Fatalf("instance order changed: %v vs %v", a.Inst, b.Inst)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("point %d/%d changed across round trip", i, j)
			}
		}
	}
	// Space grid recovered for training.
	if len(back.Space.Dims) != len(tinySpace().Dims) {
		t.Errorf("space dims not recovered: %v", back.Space.Dims)
	}
}

func TestTrainFromLoadedCSV(t *testing.T) {
	// The factory workflow: sweep -> CSV -> load -> train.
	sys := hw.I3_540()
	orig, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Train(orig, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(back, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Identical data must train identical predictions.
	for _, inst := range tinySpace().Instances()[:6] {
		if a.Predict(inst) != b.Predict(inst) {
			t.Errorf("%v: prediction differs after CSV round trip", inst)
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"wrong,header\n",
		"system,dim,tsize,dsize,cpu_tile,band,gpu_tile,halo,rtime_ns,censored\n", // no rows
		"system,dim,tsize,dsize,cpu_tile,band,gpu_tile,halo,rtime_ns,censored\nnope,1,2,3\n",
		"system,dim,tsize,dsize,cpu_tile,band,gpu_tile,halo,rtime_ns,censored\nunknown-sys,500,10,1,4,-1,1,-1,100,false\n",
	} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed CSV: %q", bad)
		}
	}
}

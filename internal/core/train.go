package core

import (
	"fmt"

	"repro/internal/ml"
)

// TrainOptions configure training-set construction and model fitting.
type TrainOptions struct {
	// Stride regularly samples every Stride-th dim and tsize value for
	// the training subset (default 2); held-out instances serve
	// cross-validation, as in Section 3.1.2.
	Stride int
	// TopK takes the best K uncensored points per sampled instance
	// (default 5, the paper's "best five performance points").
	TopK int
	// QualityWindow drops top-K points slower than the optimum by more
	// than this factor (default 1.5), so sparse configuration classes
	// cannot inject bad decisions into the training set.
	QualityWindow float64
	// SpeedupGate labels an instance "exploit parallelism" for the SVM
	// when the best point beats serial by at least this factor
	// (default 1.05).
	SpeedupGate float64
	// CVFolds is the cross-validation fold count (default 5).
	CVFolds int
	// AccuracyTarget is the paper's model acceptance gate (default 0.9).
	AccuracyTarget float64
	// Seed drives every stochastic component (default 1).
	Seed int64
}

// DefaultTrainOptions returns the standard configuration.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Stride: 2, TopK: 5, QualityWindow: 1.5, SpeedupGate: 1.05,
		CVFolds: 5, AccuracyTarget: 0.9, Seed: 1}
}

func (o TrainOptions) withDefaults() TrainOptions {
	d := DefaultTrainOptions()
	if o.Stride <= 0 {
		o.Stride = d.Stride
	}
	if o.TopK <= 0 {
		o.TopK = d.TopK
	}
	if o.QualityWindow <= 1 {
		o.QualityWindow = d.QualityWindow
	}
	if o.SpeedupGate <= 0 {
		o.SpeedupGate = d.SpeedupGate
	}
	if o.CVFolds <= 1 {
		o.CVFolds = d.CVFolds
	}
	if o.AccuracyTarget <= 0 {
		o.AccuracyTarget = d.AccuracyTarget
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Training holds the per-target datasets distilled from an exhaustive
// search, following the paper's feature choices: cpu-tile from input
// parameters only; band additionally from gpu-tile; halo additionally from
// cpu-tile and band (Figure 9); gpu-tile as a binary target; and the
// SVM's parallelism label per instance.
type Training struct {
	Parallel *ml.Dataset // features (dim, tsize, dsize), label in {-1, +1}
	CPUTile  *ml.Dataset // (dim, tsize, dsize) -> cpu-tile
	GPUTile  *ml.Dataset // (dim, tsize, dsize) -> 0 (GPU unused) or tile >= 1
	Band     *ml.Dataset // (dim, tsize, dsize, gputile) -> band
	Halo     *ml.Dataset // (dim, tsize, dsize, cputile, band) -> halo
	// SampledInstances records which instances contributed, for holdout
	// bookkeeping.
	SampledInstances map[int]bool
}

// BuildTraining distills training sets from a search result by regular
// sampling of instances and selection of the top-K points of each.
func BuildTraining(sr *SearchResult, opts TrainOptions) (*Training, error) {
	opts = opts.withDefaults()
	tr := &Training{
		Parallel:         ml.NewDataset("dim", "tsize", "dsize"),
		CPUTile:          ml.NewDataset("dim", "tsize", "dsize"),
		GPUTile:          ml.NewDataset("dim", "tsize", "dsize"),
		Band:             ml.NewDataset("dim", "tsize", "dsize", "gputile"),
		Halo:             ml.NewDataset("dim", "tsize", "dsize", "cputile", "band"),
		SampledInstances: map[int]bool{},
	}
	dimPos := indexOfInts(sr.Space.Dims)
	tsPos := indexOfFloats(sr.Space.TSizes)

	for i := range sr.Instances {
		ir := &sr.Instances[i]
		if !ir.Inst.Square() {
			// Training follows the paper's square synthetic grid; a sweep
			// may additionally contain rectangular evaluation instances,
			// which the regular dim x tsize sampling cannot place.
			continue
		}
		di, ok1 := dimPos[ir.Inst.Dim]
		ti, ok2 := tsPos[ir.Inst.TSize]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: instance %v not on the space grid", ir.Inst)
		}
		if di%opts.Stride != 0 || ti%opts.Stride != 0 {
			continue
		}
		tr.SampledInstances[i] = true
		x := []float64{float64(ir.Inst.Dim), ir.Inst.TSize, float64(ir.Inst.DSize)}

		best, found := ir.Best()
		label := -1.0
		if found && ir.SerialNs/best.RTimeNs >= opts.SpeedupGate {
			label = 1
		}
		tr.Parallel.Add(x, label)
		if !found || label < 0 {
			// No useful parallel points: nothing to teach the parameter
			// models for this instance.
			continue
		}
		for _, p := range ir.TopK(opts.TopK) {
			// Only genuinely good points teach the models: a "top-5" point
			// far behind the optimum (possible when few configurations of
			// its kind exist) would inject bad decisions.
			if p.RTimeNs > best.RTimeNs*opts.QualityWindow {
				continue
			}
			tr.CPUTile.Add(x, float64(p.Par.CPUTile))
			// The paper's gpu-tile target is overloaded: 0 means the GPU
			// is not employed at all; >= 1 is the work-group tile of a
			// GPU-using configuration (Section 4.1.5).
			gt := 0.0
			if p.Par.Band >= 0 {
				gt = float64(p.Par.GPUTile)
			}
			tr.GPUTile.Add(x, gt)
			tr.Band.Add(append(append([]float64{}, x...), gt), float64(p.Par.Band))
			tr.Halo.Add(append(append([]float64{}, x...),
				float64(p.Par.CPUTile), float64(p.Par.Band)), float64(p.Par.Halo))
		}
	}
	if tr.Parallel.Len() == 0 {
		return nil, fmt.Errorf("core: sampling produced no training instances")
	}
	return tr, nil
}

func indexOfInts(xs []int) map[int]int {
	m := make(map[int]int, len(xs))
	for i, x := range xs {
		m[x] = i
	}
	return m
}

func indexOfFloats(xs []float64) map[float64]int {
	m := make(map[float64]int, len(xs))
	for i, x := range xs {
		m[x] = i
	}
	return m
}

package core

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/plan"
)

// Tuner is a trained autotuner for one system ("trained in the factory",
// Section 3.1.2): a binary SVM decides whether to exploit parallelism, a
// REP tree decides GPU tiling, and M5 model trees predict cpu-tile, band
// and halo.
type Tuner struct {
	Sys      hw.System
	Parallel *ml.SVM
	CPUTile  *ml.M5Tree
	GPUTile  *ml.REPTree
	Band     *ml.M5Tree
	Halo     *ml.M5Tree
	Report   TrainReport
}

// TrainReport records cross-validated model quality: the paper requires
// at least 90% before deployment.
type TrainReport struct {
	ParallelAcc float64
	CPUTileAcc  float64
	GPUTileAcc  float64
	BandAcc     float64
	HaloAcc     float64
	// Configs counts the model configurations explored to reach the
	// accuracy target ("we explored different configurations of the
	// learning model").
	Configs int
}

// MinAccuracy returns the worst per-target accuracy.
func (r TrainReport) MinAccuracy() float64 {
	m := r.ParallelAcc
	for _, v := range []float64{r.CPUTileAcc, r.GPUTileAcc, r.BandAcc, r.HaloAcc} {
		if v < m {
			m = v
		}
	}
	return m
}

// m5Configs are the model configurations tried, in order, until the
// cross-validated accuracy target is met.
func m5Configs() []ml.M5Options {
	base := ml.DefaultM5Options()
	noSmooth := base
	noSmooth.Smooth = false
	bigLeaf := base
	bigLeaf.MinLeaf = 8
	smallLeaf := noSmooth
	smallLeaf.MinLeaf = 2
	return []ml.M5Options{base, noSmooth, bigLeaf, smallLeaf}
}

// Train fits a tuner from an exhaustive search result.
func Train(sr *SearchResult, opts TrainOptions) (*Tuner, error) {
	opts = opts.withDefaults()
	tr, err := BuildTraining(sr, opts)
	if err != nil {
		return nil, err
	}
	t := &Tuner{Sys: sr.Sys}

	// Parallelism gate: binary SVM.
	svm, err := ml.FitSVM(tr.Parallel, ml.SVMOptions{Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: training parallelism SVM: %w", err)
	}
	t.Parallel = svm
	t.Report.ParallelAcc = svm.Accuracy(tr.Parallel)

	// Regression targets: explore M5 configurations until the CV accuracy
	// gate passes, keeping the best.
	fitM5 := func(d *ml.Dataset, absTol, relTol float64) (*ml.M5Tree, float64, error) {
		if d.Len() < opts.CVFolds {
			// Too small to cross-validate: fit directly.
			return ml.FitM5(d, ml.DefaultM5Options()), 1, nil
		}
		var best *ml.M5Tree
		bestAcc := -1.0
		for _, cfg := range m5Configs() {
			t.Report.Configs++
			acc, err := ml.CrossValidateAccuracy(d, opts.CVFolds, opts.Seed, absTol, relTol,
				func(train *ml.Dataset) ml.Model { return ml.FitM5(train, cfg) })
			if err != nil {
				return nil, 0, err
			}
			if acc > bestAcc {
				bestAcc = acc
				best = ml.FitM5(d, cfg)
			}
			if acc >= opts.AccuracyTarget {
				return ml.FitM5(d, cfg), acc, nil
			}
		}
		return best, bestAcc, nil
	}

	if t.CPUTile, t.Report.CPUTileAcc, err = fitM5(tr.CPUTile, 2.5, 0.5); err != nil {
		return nil, fmt.Errorf("core: training cpu-tile model: %w", err)
	}
	// Band tolerance scales with problem size; a 10% relative window plus
	// a small absolute slack mirrors "useful prediction" for offload
	// extents.
	if t.Band, t.Report.BandAcc, err = fitM5(tr.Band, 60, 0.25); err != nil {
		return nil, fmt.Errorf("core: training band model: %w", err)
	}
	if t.Halo, t.Report.HaloAcc, err = fitM5(tr.Halo, 8, 0.4); err != nil {
		return nil, fmt.Errorf("core: training halo model: %w", err)
	}

	// GPU tiling: REP tree on the overloaded target (0 = GPU unused,
	// otherwise the work-group tile). The paper found this "a binary
	// decision that was accurately predicted using REP Tree".
	t.GPUTile = ml.FitREP(tr.GPUTile, ml.REPOptions{Seed: opts.Seed})
	if tr.GPUTile.Len() > 0 {
		hits := 0
		for i, x := range tr.GPUTile.X {
			if t.GPUTile.Classify(x) == (tr.GPUTile.Y[i] >= 0.5) {
				hits++
			}
		}
		t.Report.GPUTileAcc = float64(hits) / float64(tr.GPUTile.Len())
	}
	return t, nil
}

// Prediction is a deployed tuning decision.
type Prediction struct {
	// Serial is set when the SVM gate predicts parallelism will not pay;
	// the application should run the optimized sequential baseline.
	Serial bool
	Par    plan.Params
}

// String implements fmt.Stringer.
func (p Prediction) String() string {
	if p.Serial {
		return "serial"
	}
	return p.Par.String()
}

// Kind implements Predictor.
func (t *Tuner) Kind() string { return KindTree }

// System implements Predictor.
func (t *Tuner) System() hw.System { return t.Sys }

// Quality implements Predictor.
func (t *Tuner) Quality() TrainReport { return t.Report }

// Predict maps an application's input parameters to tuned settings. The
// regression models may propose values outside the searched grid, which is
// how the paper's tuner achieved super-optimal points on the i3-540; the
// predictions are only clamped to validity, never snapped to the grid.
//
// The feature vector lives in a fixed stack buffer: the first three
// slots are the instance features shared by every model, and the band
// and halo models see them extended in place with the upstream
// decisions. Predict is on the batch/refine/retrain hot path, so it
// must not allocate.
func (t *Tuner) Predict(inst plan.Instance) Prediction {
	var buf [5]float64
	buf[0], buf[1], buf[2] = float64(inst.MaxSide()), inst.TSize, float64(inst.DSize)
	x := buf[:3]
	if !t.Parallel.Classify(x) {
		return Prediction{Serial: true, Par: engine.CPUOnlyParams(clampTile(engine.SerialTile, inst.MaxSide()))}
	}

	ct := clampTile(int(math.Round(t.CPUTile.Predict(x))), inst.MaxSide())

	// The REP tree's overloaded gpu-tile: below 0.5 the GPU is not
	// employed at all (the paper's "0"); otherwise round to a work-group
	// tile of at least 1.
	gtRaw := t.GPUTile.Predict(x)
	if gtRaw < 0.5 {
		return Prediction{Par: engine.CPUOnlyParams(ct)}
	}
	gt := clampGPUTile(int(math.Round(gtRaw)))

	buf[3] = float64(gt)
	band := clampBand(int(math.Round(t.Band.Predict(buf[:4]))), inst)
	par := plan.Params{CPUTile: ct, Band: band, GPUTile: gt, Halo: -1}
	if band >= 0 && t.Sys.MaxGPUs() >= 2 {
		buf[3], buf[4] = float64(ct), float64(band)
		par.Halo = clampHalo(int(math.Round(t.Halo.Predict(buf[:5]))), inst, band)
	}
	return Prediction{Par: par.Normalize()}
}

func clampTile(ct, dim int) int {
	if ct < 1 {
		ct = 1
	}
	if ct > dim {
		ct = dim
	}
	if ct > 64 {
		ct = 64
	}
	return ct
}

// PredictTimed predicts tuned settings for inst and returns them together
// with the modeled runtime of the decision and the serial baseline, both
// in nanoseconds. It is the single-call deployment hook used by the plan
// cache and the tuning service: one invocation per cache miss yields
// everything a caller needs to act on (and report) the decision.
func (t *Tuner) PredictTimed(inst plan.Instance) (Prediction, float64, float64, error) {
	pred := t.Predict(inst)
	rtime, err := t.RTimeFor(inst, pred)
	if err != nil {
		return Prediction{}, 0, 0, err
	}
	return pred, rtime, engine.SerialNs(t.Sys, inst), nil
}

// RTimeFor returns the modeled runtime of a prediction on the tuner's
// system: the serial baseline when the gate said serial, otherwise the
// estimated hybrid runtime.
func (t *Tuner) RTimeFor(inst plan.Instance, pred Prediction) (float64, error) {
	return modeledRTime(t.Sys, inst, pred)
}

package core

import (
	"bytes"
	"testing"

	"repro/internal/hw"
	"repro/internal/plan"
)

// rectSpace is tinySpace plus rectangular shapes, exercising the search
// over rows != cols instances.
func rectSpace() Space {
	s := tinySpace()
	s.Dims = []int{300}
	s.Rects = [][2]int{{200, 800}, {900, 300}}
	s.TSizes = []float64{10, 3000}
	return s
}

func TestSpaceEnumeratesRectInstances(t *testing.T) {
	s := rectSpace()
	insts := s.Instances()
	want := (1 + 2) * 2 * 2 // (1 dim + 2 rects) x 2 tsizes x 2 dsizes
	if len(insts) != want {
		t.Fatalf("instances = %d, want %d", len(insts), want)
	}
	rects := 0
	for _, in := range insts {
		if err := in.Validate(); err != nil {
			t.Fatalf("invalid instance %v: %v", in, err)
		}
		if !in.Square() {
			rects++
		}
	}
	if rects != 2*2*2 {
		t.Errorf("rect instances = %d, want 8", rects)
	}
}

func TestSpaceDedupesSquareRects(t *testing.T) {
	// A square {n, n} entry in Rects is the same instance as n in Dims;
	// it must not be enumerated (and later merged by CSV persistence)
	// twice.
	s := tinySpace()
	s.Dims = []int{300}
	s.Rects = [][2]int{{300, 300}, {200, 800}}
	s.TSizes = []float64{10}
	s.DSizes = []int{1}
	insts := s.Instances()
	if len(insts) != 2 {
		t.Fatalf("instances = %v, want [dim=300, 200x800]", insts)
	}
	seen := map[plan.Instance]bool{}
	for _, in := range insts {
		if key := in.Normalize(); seen[key] {
			t.Fatalf("duplicate instance %v", in)
		} else {
			seen[key] = true
		}
	}
}

func TestExhaustiveOverRectSpace(t *testing.T) {
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, rectSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Evaluations() != rectSpace().Size(sys) {
		t.Fatalf("evaluations = %d, want %d", sr.Evaluations(), rectSpace().Size(sys))
	}
	inst := plan.Instance{Rows: 200, Cols: 800, TSize: 3000, DSize: 1}
	ir, ok := sr.For(inst)
	if !ok {
		t.Fatal("rect instance missing from search result")
	}
	if len(ir.Points) == 0 {
		t.Fatal("rect instance has no evaluated configurations")
	}
	best, ok := ir.Best()
	if !ok {
		t.Fatal("rect instance has no uncensored best point")
	}
	if best.RTimeNs <= 0 {
		t.Errorf("best rtime %v not positive", best.RTimeNs)
	}
	// Every point's plan must cover the full rectangle.
	for _, p := range ir.Points[:min(20, len(ir.Points))] {
		pl, err := plan.Build(inst, p.Par)
		if err != nil {
			t.Fatalf("recorded config invalid: %v", err)
		}
		if pl.GPUCells()+pl.CPUCells() != inst.Cells() {
			t.Fatalf("%v: phases cover %d of %d cells", p.Par,
				pl.GPUCells()+pl.CPUCells(), inst.Cells())
		}
	}
}

func TestSearchCSVRoundTripPreservesRectShapes(t *testing.T) {
	sys := hw.I3_540()
	orig, err := Exhaustive(sys, rectSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Evaluations() != orig.Evaluations() {
		t.Fatalf("evaluations %d != %d", back.Evaluations(), orig.Evaluations())
	}
	for i := range orig.Instances {
		a, b := &orig.Instances[i], &back.Instances[i]
		ar, ac := a.Inst.Shape()
		br, bc := b.Inst.Shape()
		if ar != br || ac != bc || a.Inst.TSize != b.Inst.TSize || a.Inst.DSize != b.Inst.DSize {
			t.Fatalf("instance changed across round trip: %v vs %v", a.Inst, b.Inst)
		}
	}
	if len(back.Space.Rects) != 2 {
		t.Errorf("rect shapes not recovered: %v", back.Space.Rects)
	}
	// Training still works on the mixed square/rect sweep (rect instances
	// are evaluation-only and skipped by the square sampling grid).
	if _, err := Train(back, DefaultTrainOptions()); err != nil {
		t.Errorf("training on a sweep containing rect instances: %v", err)
	}
}

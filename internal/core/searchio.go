package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

// Search-result persistence: an exhaustive sweep is the expensive artifact
// of the workflow ("trained in the factory"), so it can be written as CSV
// by wavesweep and reloaded later for training without re-running the
// search.

// searchCSVHeader is the current column layout; the trailing app column
// names the application the row was measured under ("synthetic" for
// exhaustive sweeps, the submitted app for observation-log rows, empty
// when unknown). legacySearchCSVHeader is the pre-app-column layout,
// still accepted by ReadCSV so old sweeps keep loading.
const (
	searchCSVHeader       = "system,dim,tsize,dsize,cpu_tile,band,gpu_tile,halo,rtime_ns,censored,app"
	legacySearchCSVHeader = "system,dim,tsize,dsize,cpu_tile,band,gpu_tile,halo,rtime_ns,censored"
)

// shapeField renders the dim column: a bare integer for square instances
// (the original format) and "rowsxcols" for rectangular ones. The
// spelling is shared with plan-cache keys via Instance.ShapeString.
func shapeField(inst plan.Instance) string { return inst.ShapeString() }

// writeSearchRow writes one data row of the search-CSV format. It is the
// single definition of the column layout, shared by SearchResult.WriteCSV
// and ObservationLog.Append so the two writers cannot drift apart.
func writeSearchRow(w io.Writer, system string, inst plan.Instance, par plan.Params, rtimeNs float64, censored bool, app string) {
	fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%d,%s,%t,%s\n",
		system, shapeField(inst),
		strconv.FormatFloat(inst.TSize, 'g', -1, 64), inst.DSize,
		par.CPUTile, par.Band, par.GPUTile, par.Halo,
		strconv.FormatFloat(rtimeNs, 'g', -1, 64), censored, app)
}

// ParseShape parses the shared shape spelling — a bare integer for
// square instances or "rowsxcols" for rectangular ones, the same
// grammar as the search-CSV dim column and Instance.ShapeString — into
// rows and cols. CLI surfaces (wavetune -batch) reuse it so the shape
// spelling cannot drift between the CSV reader and the clients.
func ParseShape(s string) (rows, cols int, err error) {
	inst, err := parseShapeField(strings.TrimSpace(s))
	if err != nil {
		return 0, 0, fmt.Errorf("core: bad shape %q (want 1900 or 600x1400)", s)
	}
	rows, cols = inst.Shape()
	return rows, cols, nil
}

// parseShapeField inverts shapeField into an instance shape.
func parseShapeField(s string) (plan.Instance, error) {
	if r, c, ok := strings.Cut(s, "x"); ok {
		rows, err1 := strconv.Atoi(r)
		cols, err2 := strconv.Atoi(c)
		if err1 != nil || err2 != nil {
			return plan.Instance{}, fmt.Errorf("bad shape %q", s)
		}
		return plan.Instance{Rows: rows, Cols: cols}, nil
	}
	dim, err := strconv.Atoi(s)
	if err != nil {
		return plan.Instance{}, err
	}
	return plan.Instance{Dim: dim}, nil
}

// SearchRow is one parsed data row of the search-CSV format: the
// per-measurement record shared by sweep files and observation logs.
// Parsing is purely syntactic — semantic checks (known system, valid
// plan, positive runtime) belong to the reader that knows the context.
type SearchRow struct {
	System   string
	Inst     plan.Instance
	Par      plan.Params
	RTimeNs  float64
	Censored bool
	App      string
}

// ParseSearchRow parses one data row (not the header) of the search-CSV
// format, accepting both the legacy 10-field and current 11-field
// layouts. It inverts writeSearchRow: a row that parses re-renders to a
// row that parses to the same values.
func ParseSearchRow(text string) (SearchRow, error) {
	row, err := parseSearchRow(strings.TrimSpace(text))
	if err != nil {
		return SearchRow{}, fmt.Errorf("core: search-CSV row: %v", err)
	}
	return row, nil
}

// parseSearchRow is ParseSearchRow without the error prefix, so ReadCSV
// can wrap errors with line numbers instead.
func parseSearchRow(text string) (SearchRow, error) {
	f := strings.Split(text, ",")
	if len(f) != 10 && len(f) != 11 {
		return SearchRow{}, fmt.Errorf("%d fields, want 10 or 11", len(f))
	}
	shape, err := parseShapeField(f[1])
	if err != nil {
		return SearchRow{}, fmt.Errorf("field 1: %v", err)
	}
	ints := make([]int, 0, 5)
	for _, idx := range []int{3, 4, 5, 6, 7} {
		v, err := strconv.Atoi(f[idx])
		if err != nil {
			return SearchRow{}, fmt.Errorf("field %d: %v", idx, err)
		}
		ints = append(ints, v)
	}
	tsize, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return SearchRow{}, err
	}
	rtime, err := strconv.ParseFloat(f[8], 64)
	if err != nil {
		return SearchRow{}, err
	}
	censored, err := strconv.ParseBool(f[9])
	if err != nil {
		return SearchRow{}, err
	}
	row := SearchRow{System: f[0], RTimeNs: rtime, Censored: censored}
	row.Inst = shape
	row.Inst.TSize, row.Inst.DSize = tsize, ints[0]
	row.Par = plan.Params{CPUTile: ints[1], Band: ints[2], GPUTile: ints[3], Halo: ints[4]}
	if len(f) == 11 {
		row.App = f[10]
	}
	return row, nil
}

// WriteCSV streams every evaluated point of the search result.
func (sr *SearchResult) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, searchCSVHeader)
	for i := range sr.Instances {
		ir := &sr.Instances[i]
		for _, p := range ir.Points {
			// Exhaustive sweeps evaluate the paper's synthetic trainer.
			writeSearchRow(bw, sr.Sys.Name, p.Inst, p.Par, p.RTimeNs, p.Censored, "synthetic")
		}
	}
	return bw.Flush()
}

// ReadCSV reconstructs a search result written by WriteCSV. The space is
// rebuilt from the observed instance grid (band/halo fractions are not
// recoverable and are left empty; training does not need them).
func ReadCSV(r io.Reader) (*SearchResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("core: empty search CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != searchCSVHeader && got != legacySearchCSVHeader {
		return nil, fmt.Errorf("core: unexpected CSV header %q", got)
	}
	var sr *SearchResult
	byInst := map[plan.Instance]*InstanceResult{}
	var order []plan.Instance
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		// Rows may be legacy 10-field or current 11-field (the trailing
		// app name); both can appear in one file when an observation log
		// appended to a pre-app-column file. The app field is metadata
		// for humans and tooling; training ignores it.
		row, err := parseSearchRow(text)
		if err != nil {
			return nil, fmt.Errorf("core: line %d: %v", line, err)
		}
		if sr == nil {
			sys, ok := hw.ByName(row.System)
			if !ok {
				return nil, fmt.Errorf("core: line %d: unknown system %q", line, row.System)
			}
			sr = &SearchResult{Sys: sys}
		} else if sr.Sys.Name != row.System {
			return nil, fmt.Errorf("core: line %d: mixed systems %q and %q", line, sr.Sys.Name, row.System)
		}
		inst := row.Inst
		ir, ok := byInst[inst]
		if !ok {
			ir = &InstanceResult{Inst: inst, SerialNs: engine.SerialNs(sr.Sys, inst)}
			byInst[inst] = ir
			order = append(order, inst)
		}
		ir.Points = append(ir.Points, Point{Inst: inst, Par: row.Par, RTimeNs: row.RTimeNs, Censored: row.Censored})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sr == nil {
		return nil, fmt.Errorf("core: search CSV has no data rows")
	}
	for _, inst := range order {
		sr.Instances = append(sr.Instances, *byInst[inst])
	}
	sr.Space = spaceFromInstances(order)
	return sr, nil
}

// ReadObservationLog reads a per-system observation log leniently: rows
// that fail to parse, name a different system, or carry values no valid
// plan could produce (a corrupt or torn append) are skipped and counted
// rather than failing the load, because a single bad row must not stall
// retraining on an otherwise healthy log. The strictness difference from
// ReadCSV is deliberate — sweep files are write-once artifacts where
// corruption should be loud, observation logs are long-lived append
// targets where it should be survivable. Returns the number of rows
// skipped alongside the result; errors only when the header is wrong or
// no usable row remains.
func ReadObservationLog(r io.Reader, system string) (*SearchResult, int, error) {
	sys, ok := hw.ByName(system)
	if !ok {
		return nil, 0, fmt.Errorf("core: unknown system %q", system)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("core: empty observation log")
	}
	if got := strings.TrimSpace(sc.Text()); got != searchCSVHeader && got != legacySearchCSVHeader {
		return nil, 0, fmt.Errorf("core: unexpected observation-log header %q", got)
	}
	sr := &SearchResult{Sys: sys}
	byInst := map[plan.Instance]*InstanceResult{}
	var order []plan.Instance
	bad := 0
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == searchCSVHeader || text == legacySearchCSVHeader {
			continue
		}
		row, err := parseSearchRow(text)
		if err != nil || row.System != system || row.RTimeNs <= 0 {
			bad++
			continue
		}
		if _, err := plan.Build(row.Inst, row.Par); err != nil {
			bad++
			continue
		}
		ir, ok := byInst[row.Inst]
		if !ok {
			ir = &InstanceResult{Inst: row.Inst, SerialNs: engine.SerialNs(sys, row.Inst)}
			byInst[row.Inst] = ir
			order = append(order, row.Inst)
		}
		ir.Points = append(ir.Points, Point{Inst: row.Inst, Par: row.Par, RTimeNs: row.RTimeNs, Censored: row.Censored})
	}
	if err := sc.Err(); err != nil {
		return nil, bad, err
	}
	if len(order) == 0 {
		return nil, bad, fmt.Errorf("core: observation log for %s has no usable rows", system)
	}
	for _, inst := range order {
		sr.Instances = append(sr.Instances, *byInst[inst])
	}
	sr.Space = spaceFromInstances(order)
	return sr, bad, nil
}

// spaceFromInstances rebuilds the instance grid (dims, rect shapes,
// tsizes, dsizes) of a loaded search so training's regular sampling works.
func spaceFromInstances(insts []plan.Instance) Space {
	dimSet := map[int]bool{}
	rectSet := map[[2]int]bool{}
	tsSet := map[float64]bool{}
	dsSet := map[int]bool{}
	for _, in := range insts {
		if rows, cols := in.Shape(); rows != cols {
			rectSet[[2]int{rows, cols}] = true
		} else {
			dimSet[rows] = true
		}
		tsSet[in.TSize] = true
		dsSet[in.DSize] = true
	}
	var s Space
	for d := range dimSet {
		s.Dims = append(s.Dims, d)
	}
	for rc := range rectSet {
		s.Rects = append(s.Rects, rc)
	}
	sort.Slice(s.Rects, func(i, j int) bool {
		if s.Rects[i][0] != s.Rects[j][0] {
			return s.Rects[i][0] < s.Rects[j][0]
		}
		return s.Rects[i][1] < s.Rects[j][1]
	})
	for t := range tsSet {
		s.TSizes = append(s.TSizes, t)
	}
	for d := range dsSet {
		s.DSizes = append(s.DSizes, d)
	}
	sort.Ints(s.Dims)
	sort.Float64s(s.TSizes)
	sort.Ints(s.DSizes)
	return s
}

package core

import (
	"math/rand"

	"repro/internal/plan"
)

// SplitHoldout deterministically partitions a search result's points
// into a training result and a held-out evaluation set, for shadow
// evaluation of a retrained tuner: the challenger trains on the first
// part and both champion and challenger are scored on the second, so
// the comparison never rewards memorizing the training rows. Each point
// lands in the holdout with probability frac (clamped to [0, 0.5]),
// driven by the seed alone, with two repairs so the split is always
// usable: an instance whose points were all held out gets its first
// point back (training needs every instance populated), and if nothing
// was held out, either some instance's last extra point is held out or
// — when every instance has a single point, the common shape of a young
// observation log — a whole instance is moved to the holdout, leaving
// the rest to train. The returned training result
// shares the receiver's system and rebuilds its space from the
// surviving instances; the held-out points are returned flat.
func SplitHoldout(sr *SearchResult, frac float64, seed int64) (*SearchResult, []Point) {
	if sr == nil {
		return nil, nil
	}
	if frac > 0.5 {
		frac = 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	train := &SearchResult{Sys: sr.Sys}
	var held []Point
	for i := range sr.Instances {
		src := &sr.Instances[i]
		ir := InstanceResult{Inst: src.Inst, SerialNs: src.SerialNs}
		var mine []Point
		for _, p := range src.Points {
			if frac > 0 && rng.Float64() < frac {
				mine = append(mine, p)
			} else {
				ir.Points = append(ir.Points, p)
			}
		}
		if len(ir.Points) == 0 && len(mine) > 0 {
			// Every point of this instance was held out; give the first
			// back so the instance still trains.
			ir.Points = append(ir.Points, mine[0])
			mine = mine[1:]
		}
		held = append(held, mine...)
		train.Instances = append(train.Instances, ir)
	}
	if len(held) == 0 {
		for i := len(train.Instances) - 1; i >= 0; i-- {
			ir := &train.Instances[i]
			if len(ir.Points) < 2 {
				continue
			}
			held = append(held, ir.Points[len(ir.Points)-1])
			ir.Points = ir.Points[:len(ir.Points)-1]
			break
		}
	}
	if len(held) == 0 && len(train.Instances) >= 2 {
		// Single-point instances only: sacrifice whole instances (about a
		// frac share, at least one) to the holdout so the comparison still
		// has something to score — an instance absent from training is
		// exactly what a holdout is for.
		take := int(frac * float64(len(train.Instances)))
		if take < 1 {
			take = 1
		}
		if max := len(train.Instances) - 1; take > max {
			take = max
		}
		cut := len(train.Instances) - take
		for _, ir := range train.Instances[cut:] {
			held = append(held, ir.Points...)
		}
		train.Instances = train.Instances[:cut]
	}
	insts := make([]plan.Instance, 0, len(train.Instances))
	for i := range train.Instances {
		insts = append(insts, train.Instances[i].Inst)
	}
	train.Space = spaceFromInstances(insts)
	return train, held
}

package core

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/plan"
)

// BilinearTuner is the WaveTune-style analytic backend: one ridge
// regression per target over bilinear interaction features — the base
// instance variables plus every pairwise product (dim, tsize, dsize,
// dim·tsize, dim·dsize, ...). It deploys through exactly the same
// gate/clamp/Normalize pipeline as the tree ensemble, but each model
// evaluation is a single dot product, which is what the batch endpoint
// and cluster routing want on the hot path.
type BilinearTuner struct {
	Sys hw.System
	// Parallel is a linear separator over the bilinear features of
	// (dim, tsize, dsize), fit against ±1 labels; >= 0 means exploit
	// parallelism.
	Parallel *ml.Linear
	CPUTile  *ml.Linear
	// GPUTile regresses the overloaded target (0 = GPU unused,
	// otherwise the work-group tile); below 0.5 the GPU is dropped,
	// mirroring the tree backend's REP-tree gate.
	GPUTile *ml.Linear
	Band    *ml.Linear
	Halo    *ml.Linear
	Report  TrainReport
}

// bilinearRidgeLambda is the ridge strength used for every target. The
// fits run on standardized features (see fitBilinear), so a unit-scale
// penalty is meaningful regardless of the raw feature magnitudes
// (dim·tsize reaches ~1e7).
const bilinearRidgeLambda = 1.0

// maxBilinearFeatures is the expansion of the widest target (halo: 5
// base variables -> 5 + 10 pairwise products).
const maxBilinearFeatures = 15

// bilinearExpand writes the bilinear expansion of base into dst — the
// base variables followed by every pairwise product x_i*x_j, i<j — and
// returns the number of features written. dst must have capacity for
// k + k*(k-1)/2 values; callers on the hot path pass a fixed-size stack
// buffer.
func bilinearExpand(dst, base []float64) int {
	n := copy(dst, base)
	for i := 0; i < len(base); i++ {
		for j := i + 1; j < len(base); j++ {
			dst[n] = base[i] * base[j]
			n++
		}
	}
	return n
}

// bilinearNames labels the expanded columns, e.g. "dim*tsize".
func bilinearNames(base []string) []string {
	out := make([]string, 0, len(base)+len(base)*(len(base)-1)/2)
	out = append(out, base...)
	for i := 0; i < len(base); i++ {
		for j := i + 1; j < len(base); j++ {
			out = append(out, base[i]+"*"+base[j])
		}
	}
	return out
}

// bilinearDataset expands every row of d into bilinear feature space.
func bilinearDataset(d *ml.Dataset) *ml.Dataset {
	out := ml.NewDataset(bilinearNames(d.Names)...)
	var buf [maxBilinearFeatures]float64
	for i, x := range d.X {
		n := bilinearExpand(buf[:], x)
		out.Add(buf[:n], d.Y[i])
	}
	return out
}

// fitBilinear ridge-fits d on standardized features and folds the
// standardization back into raw-feature weights, so deployment is a
// plain dot product over the bilinear expansion. Standardizing first
// matters: raw interaction features span ~8 orders of magnitude, which
// would make the normal equations hopelessly ill-conditioned and the
// ridge penalty meaningless.
func fitBilinear(d *ml.Dataset, lambda float64) *ml.Linear {
	p := d.Features()
	n := d.Len()
	if n == 0 || p == 0 {
		return ml.FitLinear(d, lambda)
	}
	mean := make([]float64, p)
	scale := make([]float64, p)
	for _, x := range d.X {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, x := range d.X {
		for j, v := range x {
			dv := v - mean[j]
			scale[j] += dv * dv
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / float64(n))
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	std := ml.NewDataset(d.Names...)
	z := make([]float64, p)
	for i, x := range d.X {
		for j, v := range x {
			z[j] = (v - mean[j]) / scale[j]
		}
		std.Add(z, d.Y[i])
	}
	m := ml.FitLinear(std, lambda)
	// y = w·((x-mean)/scale) + b  ==  (w/scale)·x + (b - w·mean/scale).
	w := make([]float64, p)
	b := m.B
	for j := range w {
		w[j] = m.W[j] / scale[j]
		b -= m.W[j] * mean[j] / scale[j]
	}
	return &ml.Linear{Names: append([]string(nil), d.Names...), W: w, B: b}
}

// TrainBilinear fits the bilinear backend from an exhaustive search
// result: the same BuildTraining datasets as the tree ensemble, each
// expanded into bilinear feature space and ridge-fit per target. The
// quality report uses the tree backend's per-target tolerances so the
// two kinds are comparable.
func TrainBilinear(sr *SearchResult, opts TrainOptions) (*BilinearTuner, error) {
	opts = opts.withDefaults()
	tr, err := BuildTraining(sr, opts)
	if err != nil {
		return nil, err
	}
	t := &BilinearTuner{Sys: sr.Sys}

	// Parallelism gate: linear separator on ±1 labels.
	gate := bilinearDataset(tr.Parallel)
	t.Parallel = fitBilinear(gate, bilinearRidgeLambda)
	t.Report.Configs++
	t.Report.ParallelAcc = classifyAccuracy(t.Parallel, gate, 0)

	fit := func(d *ml.Dataset, absTol, relTol float64) (*ml.Linear, float64, error) {
		t.Report.Configs++
		m := fitBilinear(d, bilinearRidgeLambda)
		if d.Len() < opts.CVFolds {
			return m, 1, nil
		}
		acc, err := ml.CrossValidateAccuracy(d, opts.CVFolds, opts.Seed, absTol, relTol,
			func(train *ml.Dataset) ml.Model { return fitBilinear(train, bilinearRidgeLambda) })
		if err != nil {
			return nil, 0, err
		}
		return m, acc, nil
	}

	if t.CPUTile, t.Report.CPUTileAcc, err = fit(bilinearDataset(tr.CPUTile), 2.5, 0.5); err != nil {
		return nil, fmt.Errorf("core: training bilinear cpu-tile model: %w", err)
	}
	if t.Band, t.Report.BandAcc, err = fit(bilinearDataset(tr.Band), 60, 0.25); err != nil {
		return nil, fmt.Errorf("core: training bilinear band model: %w", err)
	}
	if t.Halo, t.Report.HaloAcc, err = fit(bilinearDataset(tr.Halo), 8, 0.4); err != nil {
		return nil, fmt.Errorf("core: training bilinear halo model: %w", err)
	}

	// GPU employment: regression on the overloaded target, scored as the
	// binary decision it deploys as.
	gpu := bilinearDataset(tr.GPUTile)
	t.GPUTile = fitBilinear(gpu, bilinearRidgeLambda)
	t.Report.Configs++
	t.Report.GPUTileAcc = classifyAccuracy(t.GPUTile, gpu, 0.5)
	return t, nil
}

// classifyAccuracy scores m as a binary classifier on d with the given
// decision threshold.
func classifyAccuracy(m *ml.Linear, d *ml.Dataset, threshold float64) float64 {
	if d.Len() == 0 {
		return 0
	}
	hits := 0
	for i, x := range d.X {
		if (m.Predict(x) >= threshold) == (d.Y[i] >= threshold) {
			hits++
		}
	}
	return float64(hits) / float64(d.Len())
}

// Kind implements Predictor.
func (t *BilinearTuner) Kind() string { return KindBilinear }

// System implements Predictor.
func (t *BilinearTuner) System() hw.System { return t.Sys }

// Quality implements Predictor.
func (t *BilinearTuner) Quality() TrainReport { return t.Report }

// evalBilinear3 evaluates m over the bilinear expansion of (a, b, c)
// without materializing the feature vector; the term order matches
// bilinearExpand. Fully unrolled: the hot path is pure straight-line
// arithmetic.
func evalBilinear3(m *ml.Linear, a, b, c float64) float64 {
	w := m.W
	_ = w[5]
	return m.B + w[0]*a + w[1]*b + w[2]*c +
		w[3]*(a*b) + w[4]*(a*c) + w[5]*(b*c)
}

// evalBilinear4 is evalBilinear3 for four base variables (10 terms).
func evalBilinear4(m *ml.Linear, a, b, c, d float64) float64 {
	w := m.W
	_ = w[9]
	return m.B + w[0]*a + w[1]*b + w[2]*c + w[3]*d +
		w[4]*(a*b) + w[5]*(a*c) + w[6]*(a*d) +
		w[7]*(b*c) + w[8]*(b*d) + w[9]*(c*d)
}

// evalBilinear5 is evalBilinear3 for five base variables (15 terms).
func evalBilinear5(m *ml.Linear, a, b, c, d, e float64) float64 {
	w := m.W
	_ = w[14]
	return m.B + w[0]*a + w[1]*b + w[2]*c + w[3]*d + w[4]*e +
		w[5]*(a*b) + w[6]*(a*c) + w[7]*(a*d) + w[8]*(a*e) +
		w[9]*(b*c) + w[10]*(b*d) + w[11]*(b*e) +
		w[12]*(c*d) + w[13]*(c*e) + w[14]*(d*e)
}

// Predict implements Predictor with the same gate/clamp/Normalize
// deployment pipeline as the tree backend; only the per-target model
// evaluations differ (unrolled bilinear polynomials — straight-line
// arithmetic, no allocation, no feature buffer).
func (t *BilinearTuner) Predict(inst plan.Instance) Prediction {
	maxSide := inst.MaxSide()
	dim, tsz, dsz := float64(maxSide), inst.TSize, float64(inst.DSize)
	if evalBilinear3(t.Parallel, dim, tsz, dsz) < 0 {
		return Prediction{Serial: true, Par: engine.CPUOnlyParams(clampTile(engine.SerialTile, maxSide))}
	}

	ct := clampTile(int(math.Round(evalBilinear3(t.CPUTile, dim, tsz, dsz))), maxSide)

	gtRaw := evalBilinear3(t.GPUTile, dim, tsz, dsz)
	if gtRaw < 0.5 {
		return Prediction{Par: engine.CPUOnlyParams(ct)}
	}
	gt := clampGPUTile(int(math.Round(gtRaw)))

	band := clampBand(int(math.Round(evalBilinear4(t.Band, dim, tsz, dsz, float64(gt)))), inst)
	par := plan.Params{CPUTile: ct, Band: band, GPUTile: gt, Halo: -1}
	if band >= 0 && t.Sys.MaxGPUs() >= 2 {
		par.Halo = clampHalo(int(math.Round(evalBilinear5(t.Halo, dim, tsz, dsz, float64(ct), float64(band)))), inst, band)
	}
	return Prediction{Par: par.Normalize()}
}

// PredictTimed implements Predictor.
func (t *BilinearTuner) PredictTimed(inst plan.Instance) (Prediction, float64, float64, error) {
	pred := t.Predict(inst)
	rtime, err := t.RTimeFor(inst, pred)
	if err != nil {
		return Prediction{}, 0, 0, err
	}
	return pred, rtime, engine.SerialNs(t.Sys, inst), nil
}

// RTimeFor implements Predictor.
func (t *BilinearTuner) RTimeFor(inst plan.Instance, pred Prediction) (float64, error) {
	return modeledRTime(t.Sys, inst, pred)
}

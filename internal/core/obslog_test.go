package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/plan"
)

func TestObservationLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := NewObservationLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	square := plan.Instance{Dim: 700, TSize: 10, DSize: 1}
	rect := plan.Instance{Rows: 600, Cols: 1400, TSize: 2.5, DSize: 5}
	obs := []Observation{
		{Inst: square, Par: plan.Params{CPUTile: 8, Band: 300, GPUTile: 4, Halo: -1}, RTimeNs: 1.5e6},
		{Inst: rect, Par: plan.Params{CPUTile: 4, Band: -1, GPUTile: 1, Halo: -1}, RTimeNs: 2e7},
	}
	// Two separate appends: the header must be written exactly once.
	if err := l.Append("i7-2600K", obs[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("i7-2600K", obs[1]); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(l.Path("i7-2600K"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sr, err := ReadCSV(f)
	if err != nil {
		t.Fatalf("wavetrain's reader rejected the log: %v", err)
	}
	if sr.Sys.Name != "i7-2600K" {
		t.Errorf("system = %s", sr.Sys.Name)
	}
	if len(sr.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(sr.Instances))
	}
	for i, want := range obs {
		ir := sr.Instances[i]
		if ir.Inst.CacheKey() != want.Inst.CacheKey() {
			t.Errorf("instance %d = %+v, want %+v", i, ir.Inst, want.Inst)
		}
		if len(ir.Points) != 1 || ir.Points[0].Par != want.Par || ir.Points[0].RTimeNs != want.RTimeNs {
			t.Errorf("points %d = %+v, want par %v rtime %v", i, ir.Points, want.Par, want.RTimeNs)
		}
	}
}

func TestObservationLogValidates(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.Instance{Dim: 100, TSize: 10, DSize: 1}
	good := plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}
	cases := []struct {
		name   string
		system string
		obs    Observation
	}{
		{"empty system", "", Observation{Inst: inst, Par: good, RTimeNs: 1}},
		{"path escape", "../evil", Observation{Inst: inst, Par: good, RTimeNs: 1}},
		{"comma breaks CSV", "my,sys", Observation{Inst: inst, Par: good, RTimeNs: 1}},
		{"newline breaks CSV", "my\nsys", Observation{Inst: inst, Par: good, RTimeNs: 1}},
		{"bad params", "i7-2600K", Observation{Inst: inst, Par: plan.Params{CPUTile: 0}, RTimeNs: 1}},
		{"bad instance", "i7-2600K", Observation{Par: good, RTimeNs: 1}},
		{"non-positive runtime", "i7-2600K", Observation{Inst: inst, Par: good, RTimeNs: 0}},
	}
	for _, tc := range cases {
		if err := l.Append(tc.system, tc.obs); err == nil {
			t.Errorf("%s: Append accepted invalid observation", tc.name)
		}
	}
	// Nothing may have been written.
	if _, err := os.Stat(l.Path("i7-2600K")); !os.IsNotExist(err) {
		t.Error("rejected observations still created a log file")
	}
}

func TestObservationLogConcurrentAppends(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.Instance{Dim: 500, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Append("i3-540", Observation{Inst: inst, Par: par, RTimeNs: float64(i + 1)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	f, err := os.Open(filepath.Join(l.Dir(), "i3-540.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sr, err := ReadCSV(f)
	if err != nil {
		t.Fatalf("concurrent appends corrupted the log: %v", err)
	}
	if got := len(sr.Instances[0].Points); got != n {
		t.Errorf("rows = %d, want %d", got, n)
	}
}

// TestObservationLogReusesAppender: the per-system file handle stays
// open across appends (no open/stat/close per call) and every append is
// flushed — the file is complete and readable while the log stays open.
func TestObservationLogReusesAppender(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	inst := plan.Instance{Dim: 400, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}
	for i := 0; i < 5; i++ {
		if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Write-through: read the rows back before Close.
	f, err := os.Open(l.Path("i7-2600K"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sr, err := ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sr.Instances[0].Points); got != 5 {
		t.Errorf("rows before Close = %d, want 5 (appends must flush)", got)
	}
}

// TestObservationLogClose: Close flushes everything and is idempotent;
// a late append (a straggler worker outliving a cut-short shutdown
// drain) still persists through the one-shot fallback instead of
// being dropped.
func TestObservationLogClose(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.Instance{Dim: 400, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}
	if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("i3-540", Observation{Inst: inst, Par: par, RTimeNs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v, want nil (idempotent)", err)
	}
	if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: 3}); err != nil {
		t.Errorf("append after Close = %v, want write-through fallback success", err)
	}
	wantRows := map[string]int{"i7-2600K": 2, "i3-540": 1}
	for _, sys := range []string{"i7-2600K", "i3-540"} {
		f, err := os.Open(l.Path(sys))
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s log unreadable after Close: %v", sys, err)
		}
		rows := 0
		for _, ir := range sr.Instances {
			rows += len(ir.Points)
		}
		if rows != wantRows[sys] {
			t.Errorf("%s rows = %d, want %d (late append must persist)", sys, rows, wantRows[sys])
		}
	}
}

// TestObservationLogPerSystemConcurrency: appends to different systems
// from many goroutines (the contended serving pattern) must interleave
// safely, each file ending complete. Run under -race in CI.
func TestObservationLogPerSystemConcurrency(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.Instance{Dim: 500, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}
	systems := []string{"i3-540", "i7-2600K", "i7-3820"}
	const perSys = 25
	var wg sync.WaitGroup
	for _, sys := range systems {
		for i := 0; i < perSys; i++ {
			wg.Add(1)
			go func(sys string, i int) {
				defer wg.Done()
				if err := l.Append(sys, Observation{Inst: inst, Par: par, RTimeNs: float64(i + 1)}); err != nil {
					t.Error(err)
				}
			}(sys, i)
		}
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for _, sys := range systems {
		f, err := os.Open(l.Path(sys))
		if err != nil {
			t.Fatal(err)
		}
		sr, err := ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: concurrent appends corrupted the log: %v", sys, err)
		}
		if got := len(sr.Instances[0].Points); got != perSys {
			t.Errorf("%s rows = %d, want %d", sys, got, perSys)
		}
	}
}

// TestObservationLogSurvivesRotation: moving a log file aside while the
// log holds its handle open (the retraining fold pattern) must not
// divert later appends to the unlinked inode — the next append
// recreates the file at the path, header included.
func TestObservationLogSurvivesRotation(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	inst := plan.Instance{Dim: 400, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1}
	if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: 1}); err != nil {
		t.Fatal(err)
	}
	rotated := l.Path("i7-2600K") + ".old"
	if err := os.Rename(l.Path("i7-2600K"), rotated); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: 2}); err != nil {
		t.Fatal(err)
	}
	for path, wantRTime := range map[string]float64{l.Path("i7-2600K"): 2, rotated: 1} {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s missing after rotation: %v", path, err)
		}
		sr, err := ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s unreadable: %v", path, err)
		}
		pts := sr.Instances[0].Points
		if len(pts) != 1 || pts[0].RTimeNs != wantRTime {
			t.Errorf("%s points = %+v, want one row with rtime %v", path, pts, wantRTime)
		}
	}
}

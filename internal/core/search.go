package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

// Point is one evaluated configuration.
type Point struct {
	Inst     plan.Instance
	Par      plan.Params
	RTimeNs  float64
	Censored bool
}

// InstanceResult groups the evaluations of one instance.
type InstanceResult struct {
	Inst     plan.Instance
	SerialNs float64
	Points   []Point
}

// Best returns the fastest uncensored point. ok is false when every
// configuration was censored (which the 90 s threshold makes possible for
// the largest instances).
func (ir *InstanceResult) Best() (Point, bool) {
	var best Point
	found := false
	for _, p := range ir.Points {
		if p.Censored {
			continue
		}
		if !found || p.RTimeNs < best.RTimeNs {
			best = p
			found = true
		}
	}
	return best, found
}

// TopK returns the k fastest uncensored points, best first.
func (ir *InstanceResult) TopK(k int) []Point {
	var ok []Point
	for _, p := range ir.Points {
		if !p.Censored {
			ok = append(ok, p)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].RTimeNs < ok[j].RTimeNs })
	if len(ok) > k {
		ok = ok[:k]
	}
	return ok
}

// Uncensored returns the uncensored runtimes (the population behind the
// paper's violin plots and average-case comparisons).
func (ir *InstanceResult) Uncensored() []float64 {
	var xs []float64
	for _, p := range ir.Points {
		if !p.Censored {
			xs = append(xs, p.RTimeNs)
		}
	}
	return xs
}

// SearchResult is a full exhaustive exploration of a space on one system.
type SearchResult struct {
	Sys       hw.System
	Space     Space
	Instances []InstanceResult
}

// SearchOptions configure the exhaustive search.
type SearchOptions struct {
	// ThresholdNs is the runtime threshold (default: the paper's 90 s).
	ThresholdNs float64
	// Workers bounds host parallelism (default GOMAXPROCS).
	Workers int

	// estimate is a test seam for the point evaluator; nil selects
	// engine.Estimate.
	estimate func(hw.System, plan.Instance, plan.Params, engine.Options) (engine.Result, error)
}

// Exhaustive evaluates every configuration of the space for every
// instance on sys through the analytic estimator, in parallel across host
// cores, with deterministic output order. The first estimation error
// cancels the remaining work promptly: in-flight workers stop at their
// next configuration and queued instances are never started.
//
// On error the result is not discarded: the returned SearchResult holds
// every instance whose full configuration sweep had already completed
// (in the usual deterministic order), so a failure deep into a long
// search leaves the caller with the finished work to persist (WriteCSV)
// or inspect. Callers that only care about complete searches keep their
// `if err != nil` handling unchanged.
func Exhaustive(sys hw.System, space Space, opts SearchOptions) (*SearchResult, error) {
	if opts.ThresholdNs == 0 {
		opts.ThresholdNs = engine.DefaultThresholdNs
	}
	estimate := opts.estimate
	if estimate == nil {
		estimate = engine.Estimate
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	insts := space.Instances()
	out := &SearchResult{Sys: sys, Space: space, Instances: make([]InstanceResult, len(insts))}
	// completed marks instances whose full configuration sweep finished;
	// each index is written by exactly one goroutine (like
	// out.Instances) and read only after wg.Wait.
	completed := make([]bool, len(insts))

	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	var stop atomic.Bool
	sem := make(chan struct{}, workers)
	for i, inst := range insts {
		if stop.Load() {
			break
		}
		i, inst := i, inst
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ir := InstanceResult{Inst: inst, SerialNs: engine.SerialNs(sys, inst)}
			for _, par := range space.Configs(inst, sys) {
				if stop.Load() {
					return
				}
				res, err := estimate(sys, inst, par, engine.Options{ThresholdNs: opts.ThresholdNs})
				if err != nil {
					stop.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: estimating %v %v: %w", inst, par, err)
					}
					mu.Unlock()
					return
				}
				ir.Points = append(ir.Points, Point{
					Inst: inst, Par: par, RTimeNs: res.RTimeNs, Censored: res.Censored,
				})
			}
			out.Instances[i] = ir
			completed[i] = true
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// Keep the finished instances (deterministic order preserved) so
		// the completed work survives the failure.
		kept := out.Instances[:0]
		for i := range insts {
			if completed[i] {
				kept = append(kept, out.Instances[i])
			}
		}
		out.Instances = kept
		return out, firstErr
	}
	return out, nil
}

// For returns the result for an exact instance, or false. The square and
// rectangular spellings of the same shape (Dim=n vs Rows=Cols=n) match.
func (sr *SearchResult) For(inst plan.Instance) (*InstanceResult, bool) {
	want := inst.Normalize()
	for i := range sr.Instances {
		if sr.Instances[i].Inst.Normalize() == want {
			return &sr.Instances[i], true
		}
	}
	return nil, false
}

// Evaluations returns the total number of evaluated points.
func (sr *SearchResult) Evaluations() int {
	n := 0
	for i := range sr.Instances {
		n += len(sr.Instances[i].Points)
	}
	return n
}

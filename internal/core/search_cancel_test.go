package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

func TestExhaustiveStopsPromptlyOnEstimateError(t *testing.T) {
	// Regression: an Estimate error used to record firstErr but let every
	// other in-flight goroutine evaluate its entire configuration space.
	// With cancellation, the first failure must stop the search after at
	// most one in-flight call per worker.
	sys := hw.I7_2600K()
	space := tinySpace()
	boom := errors.New("boom")
	var calls atomic.Int64
	const workers = 4
	opts := SearchOptions{
		Workers: workers,
		estimate: func(hw.System, plan.Instance, plan.Params, engine.Options) (engine.Result, error) {
			calls.Add(1)
			return engine.Result{}, boom
		},
	}
	_, err := Exhaustive(sys, space, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "core: estimating") {
		t.Errorf("error not annotated: %v", err)
	}
	// Every goroutine checks the stop flag before each call, so once the
	// first call fails, at most one straggler call per worker can slip in.
	if got := calls.Load(); got > workers {
		t.Errorf("estimate called %d times after instant failure, want <= %d", got, workers)
	}
	if total := space.Size(sys); int(calls.Load()) >= total {
		t.Errorf("search did not short-circuit: %d calls of %d total", calls.Load(), total)
	}
}

func TestExhaustiveStopsMidSearch(t *testing.T) {
	// Failing partway through must still cancel the remaining bulk of the
	// space rather than draining it.
	sys := hw.I7_2600K()
	space := tinySpace()
	total := space.Size(sys)
	boom := errors.New("deferred boom")
	const failAt = 40
	var calls atomic.Int64
	opts := SearchOptions{
		Workers: 2,
		estimate: func(s hw.System, inst plan.Instance, par plan.Params, o engine.Options) (engine.Result, error) {
			if calls.Add(1) >= failAt {
				return engine.Result{}, boom
			}
			return engine.Estimate(s, inst, par, o)
		},
	}
	_, err := Exhaustive(sys, space, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := int(calls.Load()); got >= total/2 {
		t.Errorf("search drained %d of %d evaluations after an early error", got, total)
	}
}

func TestExhaustiveSucceedsWithoutHook(t *testing.T) {
	// The default path (engine.Estimate) is untouched by the seam.
	sys := hw.I3_540()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Evaluations() != tinySpace().Size(sys) {
		t.Errorf("evaluations = %d, want %d", sr.Evaluations(), tinySpace().Size(sys))
	}
}

package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

func TestExhaustiveStopsPromptlyOnEstimateError(t *testing.T) {
	// Regression: an Estimate error used to record firstErr but let every
	// other in-flight goroutine evaluate its entire configuration space.
	// With cancellation, the first failure must stop the search after at
	// most one in-flight call per worker.
	sys := hw.I7_2600K()
	space := tinySpace()
	boom := errors.New("boom")
	var calls atomic.Int64
	const workers = 4
	opts := SearchOptions{
		Workers: workers,
		estimate: func(hw.System, plan.Instance, plan.Params, engine.Options) (engine.Result, error) {
			calls.Add(1)
			return engine.Result{}, boom
		},
	}
	_, err := Exhaustive(sys, space, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "core: estimating") {
		t.Errorf("error not annotated: %v", err)
	}
	// Every goroutine checks the stop flag before each call, so once the
	// first call fails, at most one straggler call per worker can slip in.
	if got := calls.Load(); got > workers {
		t.Errorf("estimate called %d times after instant failure, want <= %d", got, workers)
	}
	if total := space.Size(sys); int(calls.Load()) >= total {
		t.Errorf("search did not short-circuit: %d calls of %d total", calls.Load(), total)
	}
}

func TestExhaustiveStopsMidSearch(t *testing.T) {
	// Failing partway through must still cancel the remaining bulk of the
	// space rather than draining it.
	sys := hw.I7_2600K()
	space := tinySpace()
	total := space.Size(sys)
	boom := errors.New("deferred boom")
	const failAt = 40
	var calls atomic.Int64
	opts := SearchOptions{
		Workers: 2,
		estimate: func(s hw.System, inst plan.Instance, par plan.Params, o engine.Options) (engine.Result, error) {
			if calls.Add(1) >= failAt {
				return engine.Result{}, boom
			}
			return engine.Estimate(s, inst, par, o)
		},
	}
	_, err := Exhaustive(sys, space, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := int(calls.Load()); got >= total/2 {
		t.Errorf("search drained %d of %d evaluations after an early error", got, total)
	}
}

// TestExhaustivePartialResultsOnError: a failure deep into a sweep must
// not discard the instances that already completed — they come back
// alongside the error, in order, ready to persist.
func TestExhaustivePartialResultsOnError(t *testing.T) {
	sys := hw.I7_2600K()
	space := tinySpace()
	insts := space.Instances()
	const failIdx = 2 // fail on the third instance's first configuration
	boom := errors.New("boom")
	opts := SearchOptions{
		// One worker serializes the instances in order, so exactly the
		// instances before failIdx complete.
		Workers: 1,
		estimate: func(s hw.System, inst plan.Instance, par plan.Params, o engine.Options) (engine.Result, error) {
			if inst == insts[failIdx] {
				return engine.Result{}, boom
			}
			return engine.Estimate(s, inst, par, o)
		},
	}
	sr, err := Exhaustive(sys, space, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if sr == nil {
		t.Fatal("partial result discarded on error")
	}
	if len(sr.Instances) != failIdx {
		t.Fatalf("partial instances = %d, want the %d completed before the failure",
			len(sr.Instances), failIdx)
	}
	for i, ir := range sr.Instances {
		if ir.Inst != insts[i] {
			t.Errorf("instance %d = %v, want %v (order must survive compaction)", i, ir.Inst, insts[i])
		}
		if want := len(space.Configs(ir.Inst, sys)); len(ir.Points) != want {
			t.Errorf("instance %d has %d points, want the full sweep of %d", i, len(ir.Points), want)
		}
	}
	// The partial result must be persistable: the CSV round trip is what
	// wavesweep leans on to save completed work.
	var buf strings.Builder
	if err := sr.WriteCSV(&buf); err != nil {
		t.Fatalf("partial WriteCSV: %v", err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("partial CSV unreadable: %v", err)
	}
	if back.Evaluations() != sr.Evaluations() {
		t.Errorf("round trip kept %d evaluations, want %d", back.Evaluations(), sr.Evaluations())
	}
}

func TestExhaustiveSucceedsWithoutHook(t *testing.T) {
	// The default path (engine.Estimate) is untouched by the seam.
	sys := hw.I3_540()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Evaluations() != tinySpace().Size(sys) {
		t.Errorf("evaluations = %d, want %d", sr.Evaluations(), tinySpace().Size(sys))
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/hw"
	"repro/internal/plan"
)

// trainedBackends trains both prediction backends on the same exhaustive
// search result, so cross-backend tests compare like with like.
func trainedBackends(t *testing.T) (*Tuner, *BilinearTuner) {
	t.Helper()
	sr, err := Exhaustive(hw.I7_2600K(), tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	bilinear, err := TrainBilinear(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tree, bilinear
}

// registryInstances builds one mid-sized instance per registered
// application, supplying the synthetic trainer's required granularity
// parameters explicitly.
func registryInstances(t *testing.T, dim int) map[string]plan.Instance {
	t.Helper()
	out := make(map[string]plan.Instance)
	for _, a := range apps.All() {
		v := a.Defaults()
		for _, p := range a.Params {
			if !p.Required {
				continue
			}
			switch p.Name {
			case "tsize":
				v[p.Name] = 200
			case "dsize":
				v[p.Name] = 5
			default:
				v[p.Name] = 1
			}
		}
		inst, _, err := a.InstanceFor(dim, dim, v)
		if err != nil {
			t.Fatalf("%s: InstanceFor: %v", a.Name, err)
		}
		out[a.Name] = inst
	}
	return out
}

// TestBackendParityAcrossRegistryApps is the cross-backend parity suite:
// both backends, trained on the same search result, must produce valid,
// clamped, Normalize-stable predictions for every registered
// application.
func TestBackendParityAcrossRegistryApps(t *testing.T) {
	tree, bilinear := trainedBackends(t)
	for _, dim := range []int{700, 1500} {
		for name, inst := range registryInstances(t, dim) {
			for _, p := range []Predictor{tree, bilinear} {
				pred := p.Predict(inst)
				checkPrediction(t, p.Kind()+"/"+name, inst, pred)
				if _, rtime, _, err := p.PredictTimed(inst); err != nil {
					t.Errorf("%s/%s %v: PredictTimed: %v", p.Kind(), name, inst, err)
				} else if rtime <= 0 {
					t.Errorf("%s/%s %v: rtime = %v, want > 0", p.Kind(), name, inst, rtime)
				}
			}
		}
	}
}

// checkPrediction asserts the deployment invariants shared by every
// backend: clamped parameters, Normalize stability, buildability.
func checkPrediction(t *testing.T, label string, inst plan.Instance, pred Prediction) {
	t.Helper()
	par := pred.Par
	maxTile := inst.MaxSide()
	if maxTile > 64 {
		maxTile = 64
	}
	if par.CPUTile < 1 || par.CPUTile > maxTile {
		t.Errorf("%s %v: cpu tile %d outside [1, %d]", label, inst, par.CPUTile, maxTile)
	}
	if par.GPUTile < 1 || par.GPUTile > 25 {
		t.Errorf("%s %v: gpu tile %d outside [1, 25]", label, inst, par.GPUTile)
	}
	if par.Band < -1 || par.Band > inst.MaxUsefulBand() {
		t.Errorf("%s %v: band %d outside [-1, %d]", label, inst, par.Band, inst.MaxUsefulBand())
	}
	if par.Band < 0 {
		if par.Halo != -1 {
			t.Errorf("%s %v: halo %d without a band", label, inst, par.Halo)
		}
	} else if par.Halo < -1 || par.Halo > plan.MaxHaloFor(inst, par.Band) {
		t.Errorf("%s %v: halo %d outside [-1, %d]", label, inst, par.Halo, plan.MaxHaloFor(inst, par.Band))
	}
	if par.Normalize() != par {
		t.Errorf("%s %v: prediction not Normalize-stable: %v", label, inst, par)
	}
	if _, err := plan.Build(inst, par); err != nil {
		t.Errorf("%s %v: unbuildable prediction %v: %v", label, inst, par, err)
	}
}

// predictSink keeps the compiler from eliding Predict calls in the
// allocation test and benchmarks.
var predictSink Prediction

// TestPredictZeroAlloc pins the hot-path guarantee both backends
// advertise: a Predict call performs no heap allocation.
func TestPredictZeroAlloc(t *testing.T) {
	tree, bilinear := trainedBackends(t)
	insts := []plan.Instance{
		{Dim: 700, TSize: 200, DSize: 1}, // parallel, GPU candidates
		{Dim: 1500, TSize: 3000, DSize: 5},
		{Dim: 300, TSize: 10, DSize: 1}, // small/serial-leaning
	}
	for _, p := range []Predictor{tree, bilinear} {
		for _, inst := range insts {
			if n := testing.AllocsPerRun(100, func() { predictSink = p.Predict(inst) }); n != 0 {
				t.Errorf("%s backend: Predict(%v) allocates %.0f times per run, want 0", p.Kind(), inst, n)
			}
		}
	}
}

func TestTrainPredictorUnknownKind(t *testing.T) {
	sr, err := Exhaustive(hw.I7_2600K(), tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainPredictor("quadratic", sr, DefaultTrainOptions()); err == nil {
		t.Fatal("unknown kind must error")
	} else if !strings.Contains(err.Error(), "quadratic") {
		t.Errorf("error %q does not name the unknown kind", err)
	}
	for kind, want := range map[string]string{"": KindTree, KindTree: KindTree, KindBilinear: KindBilinear} {
		p, err := TrainPredictor(kind, sr, DefaultTrainOptions())
		if err != nil {
			t.Fatalf("TrainPredictor(%q): %v", kind, err)
		}
		if p.Kind() != want {
			t.Errorf("TrainPredictor(%q).Kind() = %q, want %q", kind, p.Kind(), want)
		}
	}
}

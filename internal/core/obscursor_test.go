package core

import (
	"os"
	"strings"
	"testing"

	"repro/internal/plan"
)

func obsFor(dim int, rt float64) Observation {
	return Observation{
		Inst:    plan.Instance{Dim: dim, TSize: 200, DSize: 1},
		Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
		RTimeNs: rt,
		App:     "test",
	}
}

func newCursorLog(t *testing.T) (*ObservationLog, *LogCursor, string) {
	t.Helper()
	dir := t.TempDir()
	log, err := NewObservationLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	path := log.Path("i7-2600K")
	return log, NewLogCursor(path, CheckpointPath(path)), path
}

func TestLogCursorCountsOnlyNewRows(t *testing.T) {
	log, cur, _ := newCursorLog(t)

	s, err := cur.Scan()
	if err != nil || s.NewRows != 0 || s.Rotated {
		t.Fatalf("empty scan = %+v, %v", s, err)
	}

	if err := log.Append("i7-2600K", obsFor(500, 1e6), obsFor(600, 2e6)); err != nil {
		t.Fatal(err)
	}
	s, err = cur.Scan()
	if err != nil || s.NewRows != 2 {
		t.Fatalf("scan after 2 appends = %+v, %v", s, err)
	}
	// Scan is read-only: without a commit the rows count again.
	s2, err := cur.Scan()
	if err != nil || s2.NewRows != 2 {
		t.Fatalf("rescan without commit = %+v, %v", s2, err)
	}
	if err := cur.Commit(s); err != nil {
		t.Fatal(err)
	}
	s, err = cur.Scan()
	if err != nil || s.NewRows != 0 {
		t.Fatalf("scan after commit = %+v, %v", s, err)
	}

	if err := log.Append("i7-2600K", obsFor(700, 3e6)); err != nil {
		t.Fatal(err)
	}
	s, err = cur.Scan()
	if err != nil || s.NewRows != 1 || s.Rotated {
		t.Fatalf("scan after 1 more append = %+v, %v", s, err)
	}
}

func TestLogCursorCrashRecovery(t *testing.T) {
	log, cur, path := newCursorLog(t)
	if err := log.Append("i7-2600K", obsFor(500, 1e6), obsFor(600, 2e6), obsFor(700, 3e6)); err != nil {
		t.Fatal(err)
	}
	s, err := cur.Scan()
	if err != nil || s.NewRows != 3 {
		t.Fatalf("scan = %+v, %v", s, err)
	}
	if err := cur.Commit(s); err != nil {
		t.Fatal(err)
	}

	// A fresh cursor (new process) must pick up the persisted position:
	// the consumed rows are not new, a later append is.
	cur2 := NewLogCursor(path, CheckpointPath(path))
	s, err = cur2.Scan()
	if err != nil || s.NewRows != 0 || s.Rotated {
		t.Fatalf("restart scan = %+v, %v", s, err)
	}
	if err := log.Append("i7-2600K", obsFor(800, 4e6)); err != nil {
		t.Fatal(err)
	}
	s, err = cur2.Scan()
	if err != nil || s.NewRows != 1 {
		t.Fatalf("restart scan after append = %+v, %v", s, err)
	}

	// A corrupt checkpoint (torn write) degrades to re-counting from the
	// top — rows are re-counted, never lost.
	if err := os.WriteFile(CheckpointPath(path), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cur3 := NewLogCursor(path, CheckpointPath(path))
	s, err = cur3.Scan()
	if err != nil || s.NewRows != 4 {
		t.Fatalf("corrupt-checkpoint scan = %+v, %v", s, err)
	}
}

func TestLogCursorRotation(t *testing.T) {
	log, cur, path := newCursorLog(t)
	if err := log.Append("i7-2600K", obsFor(500, 1e6), obsFor(600, 2e6)); err != nil {
		t.Fatal(err)
	}
	s, err := cur.Scan()
	if err != nil || s.NewRows != 2 {
		t.Fatalf("scan = %+v, %v", s, err)
	}
	if err := cur.Commit(s); err != nil {
		t.Fatal(err)
	}

	// Rotate the log aside (the wavetrain -from fold) and append fresh
	// rows; the appender recreates the file with a new header.
	if err := os.Rename(path, path+".old"); err != nil {
		t.Fatal(err)
	}
	if err := log.Append("i7-2600K", obsFor(900, 5e6)); err != nil {
		t.Fatal(err)
	}
	s, err = cur.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Rotated || s.NewRows != 1 {
		t.Fatalf("post-rotation scan = %+v, want Rotated with exactly the 1 fresh row", s)
	}
	if err := cur.Commit(s); err != nil {
		t.Fatal(err)
	}
	s, err = cur.Scan()
	if err != nil || s.NewRows != 0 || s.Rotated {
		t.Fatalf("settled post-rotation scan = %+v, %v", s, err)
	}

	// Rotate away entirely with nothing recreated: scans see zero rows.
	if err := os.Rename(path, path+".old2"); err != nil {
		t.Fatal(err)
	}
	s, err = cur.Scan()
	if err != nil || s.NewRows != 0 || !s.Rotated {
		t.Fatalf("missing-file scan = %+v, %v", s, err)
	}
}

func TestLogCursorTornTailRow(t *testing.T) {
	log, cur, path := newCursorLog(t)
	if err := log.Append("i7-2600K", obsFor(500, 1e6)); err != nil {
		t.Fatal(err)
	}
	// Simulate a row mid-append: a fragment with no trailing newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("i7-2600K,600,200,1,8,"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := cur.Scan()
	if err != nil || s.NewRows != 1 || s.BadRows != 0 {
		t.Fatalf("torn-tail scan = %+v, %v (fragment must stay unconsumed)", s, err)
	}
	if err := cur.Commit(s); err != nil {
		t.Fatal(err)
	}

	// Complete the torn row; only then does it count, and exactly once.
	f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("-1,1,-1,2e6,false,test\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err = cur.Scan()
	if err != nil || s.NewRows != 1 || s.BadRows != 0 || s.Rotated {
		t.Fatalf("completed-tail scan = %+v, %v", s, err)
	}
}

func TestLogCursorCountsBadRows(t *testing.T) {
	log, cur, path := newCursorLog(t)
	if err := log.Append("i7-2600K", obsFor(500, 1e6)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage row that is not a csv\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := cur.Scan()
	if err != nil || s.NewRows != 1 || s.BadRows != 1 {
		t.Fatalf("scan = %+v, %v", s, err)
	}
}

func TestReadObservationLogLenient(t *testing.T) {
	csv := strings.Join([]string{
		searchCSVHeader,
		"i7-2600K,500,200,1,8,-1,1,-1,1e+06,false,test",
		"garbage row",
		"i3-540,500,200,1,8,-1,1,-1,1e+06,false,test", // wrong system
		"i7-2600K,600,200,1,8,-1,1,-1,-5,false,test",  // non-positive runtime
		"i7-2600K,600,200,1,8,-1,1,-1,2e+06,false,test",
		"i7-2600K,600,200,1,-8,-1,1,-1,2e+06,false,test", // no valid plan
	}, "\n")
	sr, bad, err := ReadObservationLog(strings.NewReader(csv), "i7-2600K")
	if err != nil {
		t.Fatal(err)
	}
	if bad != 4 {
		t.Fatalf("bad = %d, want 4", bad)
	}
	if len(sr.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(sr.Instances))
	}
	total := 0
	for _, ir := range sr.Instances {
		total += len(ir.Points)
	}
	if total != 2 {
		t.Fatalf("points = %d, want 2", total)
	}

	if _, _, err := ReadObservationLog(strings.NewReader("garbage header\n"), "i7-2600K"); err == nil {
		t.Fatal("wrong header must error")
	}
	if _, _, err := ReadObservationLog(strings.NewReader(searchCSVHeader+"\n"), "i7-2600K"); err == nil {
		t.Fatal("no usable rows must error")
	}
	if _, _, err := ReadObservationLog(strings.NewReader(csv), "no-such-system"); err == nil {
		t.Fatal("unknown system must error")
	}
}

func TestSplitHoldout(t *testing.T) {
	sr := &SearchResult{}
	mk := func(dim int, n int) InstanceResult {
		ir := InstanceResult{Inst: plan.Instance{Dim: dim, TSize: 200, DSize: 1}, SerialNs: 1e9}
		for i := 0; i < n; i++ {
			ir.Points = append(ir.Points, Point{Inst: ir.Inst, RTimeNs: float64(i + 1)})
		}
		return ir
	}
	sr.Instances = []InstanceResult{mk(500, 4), mk(600, 4), mk(700, 1)}

	train, held := SplitHoldout(sr, 0.5, 42)
	if len(held) == 0 {
		t.Fatal("holdout empty")
	}
	trainPts := 0
	for _, ir := range train.Instances {
		if len(ir.Points) == 0 {
			t.Fatalf("instance %v lost all training points", ir.Inst)
		}
		trainPts += len(ir.Points)
	}
	if trainPts+len(held) != 9 {
		t.Fatalf("points leaked: %d train + %d held != 9", trainPts, len(held))
	}
	if len(train.Space.Dims) != 3 || len(train.Space.TSizes) != 1 {
		t.Fatalf("space not rebuilt: %+v", train.Space)
	}

	// Deterministic under the same seed.
	train2, held2 := SplitHoldout(sr, 0.5, 42)
	if len(held2) != len(held) || len(train2.Instances) != len(train.Instances) {
		t.Fatal("split not deterministic")
	}
	for i := range held {
		if held[i] != held2[i] {
			t.Fatal("split not deterministic")
		}
	}

	// frac 0 still repairs to a non-empty holdout when points allow.
	_, heldZero := SplitHoldout(sr, 0, 1)
	if len(heldZero) != 1 {
		t.Fatalf("frac-0 holdout = %d points, want the 1 repaired point", len(heldZero))
	}

	// A young observation log: one point per instance. Whole instances
	// move to the holdout so the comparison still has samples.
	solo := &SearchResult{Instances: []InstanceResult{mk(500, 1), mk(600, 1), mk(700, 1), mk(800, 1)}}
	trainSolo, heldSolo := SplitHoldout(solo, 0.5, 7)
	if len(heldSolo) != 2 || len(trainSolo.Instances) != 2 {
		t.Fatalf("single-point split: %d held, %d train instances, want 2 and 2",
			len(heldSolo), len(trainSolo.Instances))
	}
}

package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

// tinySpace keeps unit-test searches fast.
func tinySpace() Space {
	return Space{
		Dims:      []int{300, 700, 1500},
		TSizes:    []float64{10, 200, 3000},
		DSizes:    []int{1, 5},
		CPUTiles:  []int{1, 8},
		BandFracs: []float64{-1, 0.5, 1.0},
		HaloFracs: []float64{-1, 0, 1.0},
		GPUTiles:  []int{1, 8},
	}
}

func TestSpaceInstances(t *testing.T) {
	s := tinySpace()
	insts := s.Instances()
	if len(insts) != 3*3*2 {
		t.Fatalf("instances = %d, want 18", len(insts))
	}
	if insts[0].Dim != 300 || insts[0].TSize != 10 || insts[0].DSize != 1 {
		t.Errorf("first instance wrong: %v", insts[0])
	}
}

func TestConfigsValidAndDeduped(t *testing.T) {
	s := tinySpace()
	sys := hw.I7_2600K()
	inst := plan.Instance{Dim: 700, TSize: 200, DSize: 1}
	cfgs := s.Configs(inst, sys)
	seen := map[plan.Params]bool{}
	for _, p := range cfgs {
		if seen[p] {
			t.Fatalf("duplicate config %v", p)
		}
		seen[p] = true
		if _, err := plan.Build(inst, p); err != nil {
			t.Fatalf("invalid config emitted: %v (%v)", p, err)
		}
	}
	// All-CPU appears exactly once per cpu-tile.
	allCPU := 0
	for _, p := range cfgs {
		if p.Band == -1 {
			allCPU++
		}
	}
	if allCPU != len(s.CPUTiles) {
		t.Errorf("all-CPU configs = %d, want %d", allCPU, len(s.CPUTiles))
	}
}

func TestConfigsRespectSingleGPUSystem(t *testing.T) {
	s := tinySpace()
	inst := plan.Instance{Dim: 700, TSize: 200, DSize: 1}
	for _, p := range s.Configs(inst, hw.I3_540()) {
		if p.GPUCount() > 1 {
			t.Fatalf("dual-GPU config %v emitted for single-GPU system", p)
		}
	}
	// The dual-GPU system must get strictly more configurations.
	if len(s.Configs(inst, hw.I3_540())) >= len(s.Configs(inst, hw.I7_2600K())) {
		t.Error("dual-GPU system must have a larger space")
	}
}

func TestDefaultSpaceMatchesTable3(t *testing.T) {
	s := DefaultSpace()
	if s.Dims[0] != 500 || s.Dims[len(s.Dims)-1] != 3100 {
		t.Error("dim range must span 500..3100")
	}
	if s.TSizes[0] != 10 || s.TSizes[len(s.TSizes)-1] != 12000 {
		t.Error("tsize range must span 10..12000")
	}
	if len(s.DSizes) != 3 {
		t.Error("dsize must be {1,3,5}")
	}
	want := []int{1, 4, 8, 11, 16, 21, 25}
	if len(s.GPUTiles) != len(want) {
		t.Fatalf("gpu-tiles = %v, want %v", s.GPUTiles, want)
	}
	for i, g := range want {
		if s.GPUTiles[i] != g {
			t.Fatalf("gpu-tiles = %v, want %v", s.GPUTiles, want)
		}
	}
}

func TestExhaustiveSearch(t *testing.T) {
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Instances) != 18 {
		t.Fatalf("instance results = %d, want 18", len(sr.Instances))
	}
	if sr.Evaluations() == 0 {
		t.Fatal("no evaluations recorded")
	}
	for i := range sr.Instances {
		ir := &sr.Instances[i]
		if ir.SerialNs <= 0 {
			t.Fatalf("missing serial baseline for %v", ir.Inst)
		}
		best, ok := ir.Best()
		if !ok {
			continue
		}
		for _, p := range ir.Points {
			if !p.Censored && p.RTimeNs < best.RTimeNs {
				t.Fatalf("Best() missed a faster point for %v", ir.Inst)
			}
		}
	}
}

func TestExhaustiveDeterministic(t *testing.T) {
	sys := hw.I3_540()
	s := tinySpace()
	a, err := Exhaustive(sys, s, SearchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exhaustive(sys, s, SearchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluations() != b.Evaluations() {
		t.Fatal("evaluation counts differ across worker counts")
	}
	for i := range a.Instances {
		pa, pb := a.Instances[i].Points, b.Instances[i].Points
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("point %d/%d differs across parallel runs", i, j)
			}
		}
	}
}

func TestTopKSortedAndCensorExcluded(t *testing.T) {
	ir := InstanceResult{Inst: plan.Instance{Dim: 10, TSize: 1, DSize: 0}}
	ir.Points = []Point{
		{RTimeNs: 5}, {RTimeNs: 3, Censored: true}, {RTimeNs: 9}, {RTimeNs: 1}, {RTimeNs: 7},
	}
	top := ir.TopK(3)
	if len(top) != 3 || top[0].RTimeNs != 1 || top[1].RTimeNs != 5 || top[2].RTimeNs != 7 {
		t.Fatalf("TopK wrong: %v", top)
	}
	if len(ir.Uncensored()) != 4 {
		t.Error("Uncensored must exclude censored points")
	}
}

func TestBuildTrainingShapes(t *testing.T) {
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BuildTraining(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parallel.Len() == 0 {
		t.Fatal("no SVM rows")
	}
	if tr.Band.Features() != 4 || tr.Halo.Features() != 5 {
		t.Error("band/halo feature sets must follow the paper")
	}
	// Every parallel-beneficial sampled instance contributes between one
	// and TopK rows (the quality window may drop laggards).
	if tr.CPUTile.Len() == 0 {
		t.Error("no cpu-tile rows")
	}
	if tr.CPUTile.Len() != tr.GPUTile.Len() || tr.Band.Len() != tr.Halo.Len() ||
		tr.CPUTile.Len() != tr.Band.Len() {
		t.Error("per-target training sets must stay row-aligned")
	}
}

func TestTrainAndPredictPipeline(t *testing.T) {
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tuner.Report.MinAccuracy() < 0 {
		t.Fatal("missing accuracy report")
	}
	// Predictions must be valid for arbitrary unseen instances.
	for _, inst := range []plan.Instance{
		{Dim: 523, TSize: 17, DSize: 2},
		{Dim: 1234, TSize: 900, DSize: 1},
		{Dim: 2048, TSize: 11000, DSize: 5},
		{Dim: 700, TSize: 0.5, DSize: 0}, // sequence-comparison-like
	} {
		pred := tuner.Predict(inst)
		if pred.Serial {
			continue
		}
		if _, err := plan.Build(inst, pred.Par); err != nil {
			t.Errorf("invalid prediction for %v: %v (%v)", inst, pred.Par, err)
		}
		if pred.Par.GPUCount() > sys.MaxGPUs() {
			t.Errorf("prediction for %v wants too many GPUs", inst)
		}
		if _, err := tuner.RTimeFor(inst, pred); err != nil {
			t.Errorf("RTimeFor failed: %v", err)
		}
	}
}

func TestPredictCoarseLargeUsesGPU(t *testing.T) {
	// After training on a space where coarse large instances favour the
	// GPU, the tuner must offload them and keep tiny fine instances on
	// the CPU.
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, QuickSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	coarse := tuner.Predict(plan.Instance{Dim: 2700, TSize: 8000, DSize: 1})
	if coarse.Serial || coarse.Par.Band < 0 {
		t.Errorf("coarse large instance not offloaded: %v", coarse)
	}
	fine := tuner.Predict(plan.Instance{Dim: 700, TSize: 10, DSize: 1})
	if !fine.Serial && fine.Par.Band >= 0 {
		t.Errorf("tiny fine instance offloaded: %v", fine)
	}
}

func TestEvaluateEfficiency(t *testing.T) {
	sys := hw.I3_540()
	sr, err := Exhaustive(sys, QuickSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Nash-like instances (the paper's Figure 10 protocol).
	insts := []plan.Instance{
		{Dim: 700, TSize: 750, DSize: 4},
		{Dim: 1900, TSize: 1500, DSize: 4},
	}
	points, err := Evaluate(tuner, QuickSpace(), insts)
	if err != nil {
		t.Fatal(err)
	}
	eff := MeanEfficiency(points)
	if eff < 0.5 {
		t.Errorf("tuner efficiency %v unreasonably low", eff)
	}
	for _, e := range points {
		if e.BestSpeedup() <= 0 && !e.AllCensored {
			t.Error("missing exhaustive optimum")
		}
	}
}

func TestRTimeForSerial(t *testing.T) {
	sys := hw.I3_540()
	tu := &Tuner{Sys: sys}
	inst := plan.Instance{Dim: 500, TSize: 10, DSize: 1}
	got, err := tu.RTimeFor(inst, Prediction{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != engine.SerialNs(sys, inst) {
		t.Error("serial prediction must use the serial baseline")
	}
}

func TestPredictionString(t *testing.T) {
	if (Prediction{Serial: true}).String() != "serial" {
		t.Error("serial prediction string wrong")
	}
	p := Prediction{Par: plan.Params{CPUTile: 4, Band: -1, GPUTile: 1, Halo: -1}}
	if p.String() == "" {
		t.Error("empty params string")
	}
}

// Package core implements the paper's contribution: the autotuning
// framework for hybrid wavefront execution. It provides the Table 3 search
// space, the exhaustive search with the 90-second threshold, training-set
// generation from the synthetic application, the machine-learned tuner
// (SVM parallelism gate, REP tree for gpu-tile, M5 pruned model trees for
// cpu-tile, band and halo), and the deployment path that maps an unseen
// application's features to tuned parameters.
package core

import (
	"repro/internal/hw"
	"repro/internal/plan"
)

// Space enumerates the exhaustive search space. Dimension-dependent
// parameters (band, halo) are expressed as fractions so one space serves
// every instance, mirroring Table 3's ranges with the paper's
// "irregularly spaced" values.
type Space struct {
	Dims []int
	// Rects lists additional rectangular {rows, cols} shapes to explore
	// alongside the square Dims — e.g. sequence alignments of unequal
	// lengths. Each shape is crossed with every TSize and DSize, exactly
	// like a square dim.
	Rects  [][2]int
	TSizes []float64
	DSizes []int

	CPUTiles []int
	// BandFracs scale dim-1; -1 stands for the all-CPU configuration and
	// 1.0 for full offload.
	BandFracs []float64
	// HaloFracs scale the band-dependent maximum halo; -1 stands for a
	// single GPU. 0 is always included for dual-GPU systems.
	HaloFracs []float64
	GPUTiles  []int
}

// DefaultSpace returns the reproduction's standard search space, matching
// Table 3's ranges: dim 500..3100, tsize 10..12000, dsize {1,3,5},
// cpu-tile {1,2,4,8,10}, band -1..2dim-1, halo -1..max, gpu-tile
// {1,4,8,11,16,21,25}.
func DefaultSpace() Space {
	return Space{
		Dims:      []int{500, 700, 1100, 1900, 2700, 3100},
		TSizes:    []float64{10, 50, 100, 500, 1000, 2000, 4000, 6000, 8000, 10000, 12000},
		DSizes:    []int{1, 3, 5},
		CPUTiles:  []int{1, 2, 4, 8, 10},
		BandFracs: []float64{-1, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0},
		HaloFracs: []float64{-1, 0, 0.05, 0.15, 0.4, 1.0},
		GPUTiles:  []int{1, 4, 8, 11, 16, 21, 25},
	}
}

// QuickSpace returns a reduced space for tests and benchmarks: the same
// structure at a fraction of the volume.
func QuickSpace() Space {
	return Space{
		Dims:      []int{500, 1100, 1900, 2700},
		TSizes:    []float64{10, 100, 1000, 4000, 12000},
		DSizes:    []int{1, 5},
		CPUTiles:  []int{1, 4, 8},
		BandFracs: []float64{-1, 0.3, 0.7, 0.9, 1.0},
		HaloFracs: []float64{-1, 0, 0.15, 1.0},
		GPUTiles:  []int{1, 8},
	}
}

// Instances enumerates the problem instances of the space in
// deterministic order.
func (s Space) Instances() []plan.Instance {
	var out []plan.Instance
	// Deduplicate by normalized shape so a square entry in Rects cannot
	// shadow (or double-count against) the same side length in Dims.
	seen := make(map[plan.Instance]bool)
	add := func(in plan.Instance) {
		key := in.Normalize()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, in)
	}
	for _, dim := range s.Dims {
		for _, ts := range s.TSizes {
			for _, ds := range s.DSizes {
				add(plan.Instance{Dim: dim, TSize: ts, DSize: ds})
			}
		}
	}
	for _, rc := range s.Rects {
		for _, ts := range s.TSizes {
			for _, ds := range s.DSizes {
				add(plan.Instance{Rows: rc[0], Cols: rc[1], TSize: ts, DSize: ds})
			}
		}
	}
	return out
}

// Configs enumerates the valid tunable configurations of the space for
// one instance on one system, deduplicating normalized equivalents (all
// all-CPU variants collapse onto one point per cpu-tile, as in the
// paper's observation that an all-CPU instance has only tens rather than
// thousands of configurations).
func (s Space) Configs(inst plan.Instance, sys hw.System) []plan.Params {
	seen := make(map[plan.Params]bool)
	var out []plan.Params
	add := func(p plan.Params) {
		p = p.Normalize()
		if seen[p] {
			return
		}
		if _, err := plan.Build(inst, p); err != nil {
			return
		}
		if p.GPUCount() > sys.MaxGPUs() {
			return
		}
		seen[p] = true
		out = append(out, p)
	}
	for _, ct := range s.CPUTiles {
		if ct > inst.MaxSide() {
			continue
		}
		for _, bf := range s.BandFracs {
			if bf < 0 {
				add(plan.Params{CPUTile: ct, Band: -1, GPUTile: 1, Halo: -1})
				continue
			}
			band := int(bf * float64(inst.MaxUsefulBand()))
			if band < 0 {
				band = 0
			}
			maxHalo := plan.MaxHaloFor(inst, band)
			for _, gt := range s.GPUTiles {
				for _, hf := range s.HaloFracs {
					if hf < 0 {
						add(plan.Params{CPUTile: ct, Band: band, GPUTile: gt, Halo: -1})
						continue
					}
					if sys.MaxGPUs() < 2 {
						continue
					}
					halo := int(hf * float64(maxHalo))
					add(plan.Params{CPUTile: ct, Band: band, GPUTile: gt, Halo: halo})
				}
			}
		}
	}
	return out
}

// Size returns the total number of (instance, config) evaluations the
// space induces on a system.
func (s Space) Size(sys hw.System) int {
	n := 0
	for _, inst := range s.Instances() {
		n += len(s.Configs(inst, sys))
	}
	return n
}

package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

// Model kinds understood by the prediction stack. The kind is the
// discriminator in version-2 tuner files and the value of the
// model_kind telemetry label.
const (
	// KindTree is the paper's backend: an SVM parallelism gate, M5
	// model trees for cpu-tile/band/halo and a REP tree for gpu-tile.
	KindTree = "tree"
	// KindBilinear is the WaveTune-style backend: one ridge regression
	// per target over bilinear interaction features, so deployment is a
	// handful of dot products.
	KindBilinear = "bilinear"
)

// Predictor is a deployed tuning model for one system. The tree
// ensemble (Tuner) and the bilinear cost model (BilinearTuner) both
// implement it; everything above core — the plan cache, the service,
// refine jobs, champion/challenger retraining — programs against this
// interface so backends can be swapped, compared and serialized by
// kind rather than by concrete struct.
type Predictor interface {
	// Kind identifies the backend (KindTree or KindBilinear).
	Kind() string
	// System is the hardware model the predictor was trained for.
	System() hw.System
	// Quality reports cross-validated per-target training accuracy.
	Quality() TrainReport
	// Predict maps an instance to tuned settings, clamped to validity
	// and normalized (Params.Normalize).
	Predict(inst plan.Instance) Prediction
	// PredictTimed is the single-call deployment hook: the prediction
	// plus its modeled runtime and the serial baseline, in nanoseconds.
	PredictTimed(inst plan.Instance) (Prediction, float64, float64, error)
	// RTimeFor returns the modeled runtime of an arbitrary prediction
	// for inst on the predictor's system.
	RTimeFor(inst plan.Instance, pred Prediction) (float64, error)
}

// TrainPredictor fits a predictor of the given kind from an exhaustive
// search result. An empty kind selects the tree ensemble, the historical
// default.
func TrainPredictor(kind string, sr *SearchResult, opts TrainOptions) (Predictor, error) {
	switch kind {
	case "", KindTree:
		return Train(sr, opts)
	case KindBilinear:
		return TrainBilinear(sr, opts)
	default:
		return nil, fmt.Errorf("core: unknown predictor kind %q", kind)
	}
}

// The deployment clamps shared by every backend: regression outputs may
// land outside the searched grid (that is how the paper's tuner found
// super-optimal points on the i3-540), so predictions are clamped to
// validity, never snapped to the grid.

// clampGPUTile bounds a work-group tile to the searched [1, 25] range.
func clampGPUTile(gt int) int {
	if gt < 1 {
		gt = 1
	}
	if gt > 25 {
		gt = 25
	}
	return gt
}

// clampBand bounds an offload band to [-1, MaxUsefulBand]: bands beyond
// the full-offload point are legal (Table 3) but equivalent, so they
// collapse to the canonical value.
func clampBand(band int, inst plan.Instance) int {
	if band < 0 {
		return -1
	}
	if m := inst.MaxUsefulBand(); band > m {
		band = m
	}
	return band
}

// clampHalo bounds a halo to [-1, MaxHaloFor(inst, band)].
func clampHalo(halo int, inst plan.Instance, band int) int {
	if halo < 0 {
		return -1
	}
	if m := plan.MaxHaloFor(inst, band); halo > m {
		halo = m
	}
	return halo
}

// modeledRTime is the shared RTimeFor implementation: the serial
// baseline when the gate said serial, otherwise the estimated hybrid
// runtime.
func modeledRTime(sys hw.System, inst plan.Instance, pred Prediction) (float64, error) {
	if pred.Serial {
		return engine.SerialNs(sys, inst), nil
	}
	res, err := engine.Estimate(sys, inst, pred.Par, engine.Options{})
	if err != nil {
		return 0, err
	}
	return res.RTimeNs, nil
}

package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hw"
	"repro/internal/plan"
)

func TestTunerSaveLoadRoundTrip(t *testing.T) {
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuner.json")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTuner(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sys.Name != sys.Name {
		t.Errorf("system = %q, want %q", back.Sys.Name, sys.Name)
	}
	if back.Report != orig.Report {
		t.Error("training report changed across round trip")
	}
	// Predictions must be identical for a spread of instances.
	for _, inst := range []plan.Instance{
		{Dim: 500, TSize: 10, DSize: 1},
		{Dim: 900, TSize: 777, DSize: 3},
		{Dim: 2500, TSize: 11000, DSize: 5},
		{Dim: 1500, TSize: 0.5, DSize: 0},
	} {
		a, b := orig.Predict(inst), back.Predict(inst)
		if a != b {
			t.Errorf("%v: prediction changed: %v vs %v", inst, a, b)
		}
	}
}

func TestLoadTunerErrors(t *testing.T) {
	if _, err := LoadTuner(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	writeFile(t, bad, `{"system":"nonexistent","version":1}`)
	if _, err := LoadTuner(bad); err == nil {
		t.Error("unknown system must error")
	}
	verMismatch := filepath.Join(t.TempDir(), "ver.json")
	writeFile(t, verMismatch, `{"system":"i3-540","version":99}`)
	if _, err := LoadTuner(verMismatch); err == nil {
		t.Error("version mismatch must error")
	}
	missingModels := filepath.Join(t.TempDir(), "empty.json")
	writeFile(t, missingModels, `{"system":"i3-540","version":1}`)
	if _, err := LoadTuner(missingModels); err == nil {
		t.Error("missing models must error")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/plan"
)

func TestTunerSaveLoadRoundTrip(t *testing.T) {
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tuner.json")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTuner(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sys.Name != sys.Name {
		t.Errorf("system = %q, want %q", back.Sys.Name, sys.Name)
	}
	if back.Report != orig.Report {
		t.Error("training report changed across round trip")
	}
	// Predictions must be identical for a spread of instances.
	for _, inst := range []plan.Instance{
		{Dim: 500, TSize: 10, DSize: 1},
		{Dim: 900, TSize: 777, DSize: 3},
		{Dim: 2500, TSize: 11000, DSize: 5},
		{Dim: 1500, TSize: 0.5, DSize: 0},
	} {
		a, b := orig.Predict(inst), back.Predict(inst)
		if a != b {
			t.Errorf("%v: prediction changed: %v vs %v", inst, a, b)
		}
	}
}

func TestLoadTunerErrors(t *testing.T) {
	if _, err := LoadTuner(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	writeFile(t, bad, `{"system":"nonexistent","version":1}`)
	if _, err := LoadTuner(bad); err == nil {
		t.Error("unknown system must error")
	}
	verMismatch := filepath.Join(t.TempDir(), "ver.json")
	writeFile(t, verMismatch, `{"system":"i3-540","version":99}`)
	if _, err := LoadTuner(verMismatch); err == nil {
		t.Error("version mismatch must error")
	}
	missingModels := filepath.Join(t.TempDir(), "empty.json")
	writeFile(t, missingModels, `{"system":"i3-540","version":1}`)
	if _, err := LoadTuner(missingModels); err == nil {
		t.Error("missing models must error")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV1TunerLoadsAsTree pins backward compatibility: a v1 file (no
// "kind" discriminator) must load through UnmarshalPredictor as a tree
// tuner predicting identically to its v2 form.
func TestV1TunerLoadsAsTree(t *testing.T) {
	tree, _ := trainedBackends(t)
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["version"] = json.RawMessage("1")
	delete(m, "kind")
	v1, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := UnmarshalPredictor(v1)
	if err != nil {
		t.Fatalf("v1 file must load: %v", err)
	}
	if p.Kind() != KindTree {
		t.Fatalf("v1 file decoded as %q, want %q", p.Kind(), KindTree)
	}
	inst := plan.Instance{Dim: 900, TSize: 777, DSize: 3}
	if got, want := p.Predict(inst), tree.Predict(inst); got != want {
		t.Errorf("v1 prediction %v, want %v", got, want)
	}
}

// TestUnmarshalPredictorKindErrors covers the kind-discriminator error
// paths: unknown kinds are rejected by name, and a bilinear model cannot
// masquerade as a v1 file (the format that predates it).
func TestUnmarshalPredictorKindErrors(t *testing.T) {
	if _, err := UnmarshalPredictor([]byte(`{"system":"i3-540","version":2,"kind":"quadratic"}`)); err == nil {
		t.Error("unknown kind must error")
	} else if !strings.Contains(err.Error(), "quadratic") {
		t.Errorf("error %q does not name the unknown kind", err)
	}
	if _, err := UnmarshalPredictor([]byte(`{"system":"i3-540","version":1,"kind":"bilinear"}`)); err == nil {
		t.Error("bilinear kind in a v1 envelope must error")
	}
	// Loading a bilinear file through the tree-only loader must fail
	// with the kind mismatch, not a decode crash.
	_, bilinear := trainedBackends(t)
	path := filepath.Join(t.TempDir(), "bilinear.json")
	if err := SavePredictor(path, bilinear); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTuner(path); err == nil {
		t.Error("LoadTuner must reject a bilinear file")
	}
}

// TestBilinearSaveLoadRoundTrip mirrors the tree round-trip test for the
// bilinear backend through the kind-dispatching loader.
func TestBilinearSaveLoadRoundTrip(t *testing.T) {
	_, orig := trainedBackends(t)
	path := filepath.Join(t.TempDir(), "bilinear.json")
	if err := SavePredictor(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind() != KindBilinear {
		t.Fatalf("kind = %q, want %q", back.Kind(), KindBilinear)
	}
	if back.System().Name != orig.Sys.Name {
		t.Errorf("system = %q, want %q", back.System().Name, orig.Sys.Name)
	}
	if back.Quality() != orig.Report {
		t.Error("training report changed across round trip")
	}
	for _, inst := range []plan.Instance{
		{Dim: 500, TSize: 10, DSize: 1},
		{Dim: 900, TSize: 777, DSize: 3},
		{Dim: 2500, TSize: 11000, DSize: 5},
		{Dim: 1500, TSize: 0.5, DSize: 0},
	} {
		a, b := orig.Predict(inst), back.Predict(inst)
		if a != b {
			t.Errorf("%v: prediction changed: %v vs %v", inst, a, b)
		}
	}
}

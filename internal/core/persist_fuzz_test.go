package core

import (
	"encoding/json"
	"testing"

	"repro/internal/hw"
)

// FuzzTunerLoad fuzzes the versioned tuner-file decoder across both
// backend kinds. Properties: UnmarshalPredictor never panics on
// arbitrary input; a successful decode yields a predictor with a known
// kind and a resolvable system; and re-marshaling a decoded predictor
// produces a file that decodes again to the same kind and system.
func FuzzTunerLoad(f *testing.F) {
	sr, err := Exhaustive(hw.I7_2600K(), tinySpace(), SearchOptions{})
	if err != nil {
		f.Fatal(err)
	}
	tree, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		f.Fatal(err)
	}
	bilinear, err := TrainBilinear(sr, DefaultTrainOptions())
	if err != nil {
		f.Fatal(err)
	}
	treeJSON, err := json.Marshal(tree)
	if err != nil {
		f.Fatal(err)
	}
	bilinearJSON, err := json.Marshal(bilinear)
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		string(treeJSON),
		string(bilinearJSON),
		// Error paths the decoder must reject without panicking.
		`{"system":"nonexistent","version":1}`,
		`{"system":"i3-540","version":99}`,
		`{"system":"i3-540","version":1}`,
		`{"system":"i3-540","version":2,"kind":"quadratic"}`,
		`{"system":"i3-540","version":1,"kind":"bilinear"}`,
		`{"version":2,"kind":"bilinear"}`,
		`{}`,
		``,
		`not json`,
		`[1,2,3]`,
		`{"system":"i7-2600K","version":2,"kind":"tree","parallel":{}}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		p, err := UnmarshalPredictor([]byte(data))
		if err != nil {
			return
		}
		if p.Kind() != KindTree && p.Kind() != KindBilinear {
			t.Fatalf("decoded predictor has unknown kind %q", p.Kind())
		}
		if _, ok := hw.ByName(p.System().Name); !ok {
			t.Fatalf("decoded predictor bound to unknown system %q", p.System().Name)
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := UnmarshalPredictor(out)
		if err != nil {
			t.Fatalf("re-marshaled file does not decode: %v", err)
		}
		if back.Kind() != p.Kind() || back.System().Name != p.System().Name {
			t.Fatalf("round trip changed identity: %s/%s vs %s/%s",
				p.Kind(), p.System().Name, back.Kind(), back.System().Name)
		}
	})
}

package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/hw"
	"repro/internal/ml"
)

// Tuner files are versioned JSON with a kind discriminator:
//
//	v1 — tree ensemble only, no "kind" field.
//	v2 — adds "kind" ("tree" or "bilinear") selecting the backend.
//
// v1 files still load (as trees); files newer than v2 are rejected.
const (
	tunerFormatVersion    = 2
	tunerFormatVersionV1  = 1
	tunerFormatVersionMin = tunerFormatVersionV1
)

// tunerDTO is the on-disk form of a trained tree tuner. The system is
// stored by name and re-resolved on load, so model files stay small and
// the hardware model always comes from the library version in use.
type tunerDTO struct {
	System   string      `json:"system"`
	Kind     string      `json:"kind,omitempty"`
	Parallel *ml.SVM     `json:"parallel"`
	CPUTile  *ml.M5Tree  `json:"cpu_tile"`
	GPUTile  *ml.REPTree `json:"gpu_tile"`
	Band     *ml.M5Tree  `json:"band"`
	Halo     *ml.M5Tree  `json:"halo"`
	Report   TrainReport `json:"report"`
	Version  int         `json:"version"`
}

// bilinearDTO is the on-disk form of a bilinear tuner (v2 only).
type bilinearDTO struct {
	System   string      `json:"system"`
	Kind     string      `json:"kind"`
	Parallel *ml.Linear  `json:"parallel"`
	CPUTile  *ml.Linear  `json:"cpu_tile"`
	GPUTile  *ml.Linear  `json:"gpu_tile"`
	Band     *ml.Linear  `json:"band"`
	Halo     *ml.Linear  `json:"halo"`
	Report   TrainReport `json:"report"`
	Version  int         `json:"version"`
}

// checkTunerVersion validates the version/kind envelope of a tuner file
// against the kind a decoder expects ("" accepts any known kind).
func checkTunerVersion(version int, kind string) error {
	if version < tunerFormatVersionMin || version > tunerFormatVersion {
		return fmt.Errorf("core: tuner format version %d, want %d..%d",
			version, tunerFormatVersionMin, tunerFormatVersion)
	}
	switch kind {
	case "", KindTree, KindBilinear:
	default:
		return fmt.Errorf("core: unknown predictor kind %q", kind)
	}
	if kind == KindBilinear && version < tunerFormatVersion {
		return fmt.Errorf("core: bilinear tuner requires format version %d, got %d",
			tunerFormatVersion, version)
	}
	return nil
}

// MarshalJSON implements json.Marshaler.
func (t *Tuner) MarshalJSON() ([]byte, error) {
	return json.Marshal(tunerDTO{
		System: t.Sys.Name, Kind: KindTree, Parallel: t.Parallel, CPUTile: t.CPUTile,
		GPUTile: t.GPUTile, Band: t.Band, Halo: t.Halo, Report: t.Report,
		Version: tunerFormatVersion,
	})
}

// UnmarshalJSON implements json.Unmarshaler. A v1 file (no kind) is
// accepted as a tree tuner.
func (t *Tuner) UnmarshalJSON(data []byte) error {
	var d tunerDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("core: decoding tuner: %w", err)
	}
	if err := checkTunerVersion(d.Version, d.Kind); err != nil {
		return err
	}
	if d.Kind != "" && d.Kind != KindTree {
		return fmt.Errorf("core: tuner file holds a %q model, not %q", d.Kind, KindTree)
	}
	sys, ok := hw.ByName(d.System)
	if !ok {
		return fmt.Errorf("core: tuner trained for unknown system %q", d.System)
	}
	if d.Parallel == nil || d.CPUTile == nil || d.GPUTile == nil || d.Band == nil || d.Halo == nil {
		return fmt.Errorf("core: tuner file missing models")
	}
	t.Sys = sys
	t.Parallel = d.Parallel
	t.CPUTile = d.CPUTile
	t.GPUTile = d.GPUTile
	t.Band = d.Band
	t.Halo = d.Halo
	t.Report = d.Report
	return nil
}

// MarshalJSON implements json.Marshaler.
func (t *BilinearTuner) MarshalJSON() ([]byte, error) {
	return json.Marshal(bilinearDTO{
		System: t.Sys.Name, Kind: KindBilinear, Parallel: t.Parallel, CPUTile: t.CPUTile,
		GPUTile: t.GPUTile, Band: t.Band, Halo: t.Halo, Report: t.Report,
		Version: tunerFormatVersion,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *BilinearTuner) UnmarshalJSON(data []byte) error {
	var d bilinearDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("core: decoding bilinear tuner: %w", err)
	}
	if err := checkTunerVersion(d.Version, d.Kind); err != nil {
		return err
	}
	if d.Kind != KindBilinear {
		return fmt.Errorf("core: tuner file holds a %q model, not %q", d.Kind, KindBilinear)
	}
	sys, ok := hw.ByName(d.System)
	if !ok {
		return fmt.Errorf("core: tuner trained for unknown system %q", d.System)
	}
	if d.Parallel == nil || d.CPUTile == nil || d.GPUTile == nil || d.Band == nil || d.Halo == nil {
		return fmt.Errorf("core: tuner file missing models")
	}
	t.Sys = sys
	t.Parallel = d.Parallel
	t.CPUTile = d.CPUTile
	t.GPUTile = d.GPUTile
	t.Band = d.Band
	t.Halo = d.Halo
	t.Report = d.Report
	return nil
}

// Save writes the tuner to path as JSON.
func (t *Tuner) Save(path string) error { return savePredictorFile(path, t) }

// Save writes the tuner to path as JSON.
func (t *BilinearTuner) Save(path string) error { return savePredictorFile(path, t) }

// SavePredictor writes any predictor to path as JSON.
func SavePredictor(path string, p Predictor) error { return savePredictorFile(path, p) }

func savePredictorFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding tuner: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing tuner: %w", err)
	}
	return nil
}

// LoadTuner reads a tree tuner saved by Save. Use LoadPredictor when the
// backend kind is not known in advance.
func LoadTuner(path string) (*Tuner, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading tuner: %w", err)
	}
	t := &Tuner{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, err
	}
	return t, nil
}

// tunerEnvelope peeks the version/kind discriminator of a tuner file.
type tunerEnvelope struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
}

// UnmarshalPredictor decodes a tuner file of any kind: the version/kind
// envelope selects the backend, with v1 files (no kind) decoding as
// trees.
func UnmarshalPredictor(data []byte) (Predictor, error) {
	var env tunerEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: decoding tuner: %w", err)
	}
	if err := checkTunerVersion(env.Version, env.Kind); err != nil {
		return nil, err
	}
	switch env.Kind {
	case "", KindTree:
		t := &Tuner{}
		if err := json.Unmarshal(data, t); err != nil {
			return nil, err
		}
		return t, nil
	default: // KindBilinear; checkTunerVersion rejected everything else.
		t := &BilinearTuner{}
		if err := json.Unmarshal(data, t); err != nil {
			return nil, err
		}
		return t, nil
	}
}

// LoadPredictor reads a tuner of any kind saved by Save/SavePredictor.
func LoadPredictor(path string) (Predictor, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading tuner: %w", err)
	}
	return UnmarshalPredictor(data)
}

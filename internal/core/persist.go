package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/hw"
	"repro/internal/ml"
)

// tunerDTO is the on-disk form of a trained tuner. The system is stored
// by name and re-resolved on load, so model files stay small and the
// hardware model always comes from the library version in use.
type tunerDTO struct {
	System   string      `json:"system"`
	Parallel *ml.SVM     `json:"parallel"`
	CPUTile  *ml.M5Tree  `json:"cpu_tile"`
	GPUTile  *ml.REPTree `json:"gpu_tile"`
	Band     *ml.M5Tree  `json:"band"`
	Halo     *ml.M5Tree  `json:"halo"`
	Report   TrainReport `json:"report"`
	Version  int         `json:"version"`
}

const tunerFormatVersion = 1

// MarshalJSON implements json.Marshaler.
func (t *Tuner) MarshalJSON() ([]byte, error) {
	return json.Marshal(tunerDTO{
		System: t.Sys.Name, Parallel: t.Parallel, CPUTile: t.CPUTile,
		GPUTile: t.GPUTile, Band: t.Band, Halo: t.Halo, Report: t.Report,
		Version: tunerFormatVersion,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Tuner) UnmarshalJSON(data []byte) error {
	var d tunerDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("core: decoding tuner: %w", err)
	}
	if d.Version != tunerFormatVersion {
		return fmt.Errorf("core: tuner format version %d, want %d", d.Version, tunerFormatVersion)
	}
	sys, ok := hw.ByName(d.System)
	if !ok {
		return fmt.Errorf("core: tuner trained for unknown system %q", d.System)
	}
	if d.Parallel == nil || d.CPUTile == nil || d.GPUTile == nil || d.Band == nil || d.Halo == nil {
		return fmt.Errorf("core: tuner file missing models")
	}
	t.Sys = sys
	t.Parallel = d.Parallel
	t.CPUTile = d.CPUTile
	t.GPUTile = d.GPUTile
	t.Band = d.Band
	t.Halo = d.Halo
	t.Report = d.Report
	return nil
}

// Save writes the tuner to path as JSON.
func (t *Tuner) Save(path string) error {
	data, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding tuner: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing tuner: %w", err)
	}
	return nil
}

// LoadTuner reads a tuner saved by Save.
func LoadTuner(path string) (*Tuner, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading tuner: %w", err)
	}
	t := &Tuner{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, err
	}
	return t, nil
}

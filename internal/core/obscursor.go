package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
	"sync"
)

// LogCursor tracks how far an observation-log CSV has been consumed, so
// a retrainer polling the log can tell "new rows since last time" from
// rows it already trained on — the consumed prefix must never be counted
// again, across process restarts included. The position is persisted as
// a small JSON checkpoint file next to the log.
//
// Rotation safety: a byte offset alone cannot distinguish "the file
// grew" from "the file was rotated and regrew past the old offset", and
// retraining on the wrong interpretation either re-consumes old rows or
// silently skips new ones. The checkpoint therefore also records a
// probe — the FNV-1a hash of the file's first min(consumed, 4KiB) bytes,
// which are immutable under append-only growth. On the next scan the
// probe is recomputed: a match means the same file, so counting resumes
// at the saved offset; a mismatch (or a file shorter than the offset)
// means the path was rotated or truncated, and counting restarts from
// the top of the new file, whose rows are all genuinely new.
//
// A scan only consumes complete lines (ending in '\n'): a torn row still
// being appended stays unconsumed and is picked up whole by a later
// scan. Scans are read-only; Commit persists the position a scan
// reached, and the caller decides when — typically after acting on the
// scanned rows — so a crash between scan and commit degrades to
// re-counting, never to losing rows.
type LogCursor struct {
	path string // the observation-log CSV
	ckpt string // the checkpoint JSON next to it

	mu     sync.Mutex
	loaded bool
	cur    logCheckpoint
}

// logCheckpoint is the persisted read position.
type logCheckpoint struct {
	Offset   int64  `json:"offset"`
	ProbeLen int64  `json:"probe_len"`
	ProbeSum uint64 `json:"probe_sum"`
}

// logProbeCap bounds the prefix hashed into the checkpoint probe.
const logProbeCap = 4096

// LogScan reports what one Scan saw.
type LogScan struct {
	// NewRows counts complete, parseable data rows past the checkpoint.
	NewRows int
	// BadRows counts complete lines past the checkpoint that are neither
	// a header, blank, nor a parseable data row.
	BadRows int
	// Rotated reports that the checkpoint did not match the file (the
	// log was rotated or truncated) and counting restarted at the top.
	Rotated bool

	next logCheckpoint
}

// NewLogCursor returns a cursor over the log file at path, persisting
// its position to checkpointPath. Neither file needs to exist yet.
func NewLogCursor(path, checkpointPath string) *LogCursor {
	return &LogCursor{path: path, ckpt: checkpointPath}
}

// CheckpointPath returns the conventional checkpoint path for an
// observation-log CSV: the log path with ".ckpt" appended, keeping the
// two files adjacent in the log directory.
func CheckpointPath(logPath string) string { return logPath + ".ckpt" }

// Scan reads the log from the last committed position and reports how
// many new complete rows have appeared. A missing log file scans as
// zero rows. Scan does not move the committed position — call Commit
// with the returned LogScan once the rows have been acted on.
func (c *LogCursor) Scan() (LogScan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.loaded {
		c.loadLocked()
	}
	f, err := os.Open(c.path)
	if err != nil {
		if os.IsNotExist(err) {
			// No file: nothing to consume. A nonzero checkpoint means the
			// log was rotated away entirely.
			return LogScan{Rotated: c.cur.Offset > 0}, nil
		}
		return LogScan{}, fmt.Errorf("core: log cursor: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return LogScan{}, fmt.Errorf("core: log cursor: %w", err)
	}

	start := int64(0)
	rotated := false
	if c.cur.Offset > 0 {
		ok := fi.Size() >= c.cur.Offset && c.cur.ProbeLen <= fi.Size()
		if ok && c.cur.ProbeLen > 0 {
			sum, err := hashPrefix(f, c.cur.ProbeLen)
			if err != nil {
				return LogScan{}, fmt.Errorf("core: log cursor: %w", err)
			}
			ok = sum == c.cur.ProbeSum
		}
		if ok {
			start = c.cur.Offset
		} else {
			rotated = true
		}
	}

	if _, err := f.Seek(start, io.SeekStart); err != nil {
		return LogScan{}, fmt.Errorf("core: log cursor: %w", err)
	}
	scan := LogScan{Rotated: rotated}
	consumed := start
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			// A trailing fragment without its newline is a row mid-append:
			// leave it unconsumed for a later scan to read whole.
			break
		}
		if err != nil {
			return LogScan{}, fmt.Errorf("core: log cursor: %w", err)
		}
		consumed += int64(len(line))
		t := strings.TrimSpace(line)
		if t == "" || t == searchCSVHeader || t == legacySearchCSVHeader {
			continue
		}
		if _, perr := parseSearchRow(t); perr != nil {
			scan.BadRows++
		} else {
			scan.NewRows++
		}
	}

	scan.next = logCheckpoint{Offset: consumed}
	if scan.next.ProbeLen = consumed; scan.next.ProbeLen > logProbeCap {
		scan.next.ProbeLen = logProbeCap
	}
	if scan.next.ProbeLen > 0 {
		sum, err := hashPrefix(f, scan.next.ProbeLen)
		if err != nil {
			return LogScan{}, fmt.Errorf("core: log cursor: %w", err)
		}
		scan.next.ProbeSum = sum
	}
	return scan, nil
}

// Commit persists the position a Scan reached; subsequent scans count
// only rows appended after it.
func (c *LogCursor) Commit(s LogScan) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := json.Marshal(s.next)
	if err != nil {
		return fmt.Errorf("core: log cursor: %w", err)
	}
	// Write-temp-then-rename keeps the checkpoint atomic: a crash
	// mid-commit leaves the previous checkpoint intact (worst case the
	// same rows are re-counted), never a torn JSON file.
	tmp := c.ckpt + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: log cursor: %w", err)
	}
	if err := os.Rename(tmp, c.ckpt); err != nil {
		return fmt.Errorf("core: log cursor: %w", err)
	}
	c.cur = s.next
	c.loaded = true
	return nil
}

// loadLocked reads the persisted checkpoint; a missing or unreadable
// file (including a corrupt one from a torn write on a filesystem
// without atomic rename) degrades to the zero checkpoint, which
// re-counts from the top — safe, because scans are read-only.
func (c *LogCursor) loadLocked() {
	c.loaded = true
	data, err := os.ReadFile(c.ckpt)
	if err != nil {
		return
	}
	var ck logCheckpoint
	if json.Unmarshal(data, &ck) != nil || ck.Offset < 0 || ck.ProbeLen < 0 {
		return
	}
	c.cur = ck
}

// hashPrefix returns the FNV-1a hash of the file's first n bytes.
func hashPrefix(f *os.File, n int64) (uint64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	if _, err := io.CopyN(h, f, n); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzObservationLogRead fuzzes the search-CSV row grammar and both
// readers built on it. Properties: parsing never panics; a row that
// parses re-renders through writeSearchRow to a canonical line that (a)
// parses back to the same semantic values and (b) is a fixed point of
// render-parse-render; and the strict and lenient file readers survive
// arbitrary input without panicking.
func FuzzObservationLogRead(f *testing.F) {
	seeds := []string{
		// Current 11-field row with app column, square shape.
		"i7-2600K,1900,200,1,8,96,64,2,5.5e+08,false,synthetic",
		// Legacy 10-field row without app column.
		"i7-2600K,1900,200,1,8,96,64,2,5.5e+08,false",
		// Rectangular shape, censored, named app.
		"i3-540,600x1400,3000,5,16,0,0,0,1.25e+09,true,lu",
		searchCSVHeader,
		legacySearchCSVHeader,
		"",
		"not,a,row",
		"i7-2600K,19f00,200,1,8,96,64,2,5.5e+08,false,app",
		"i7-2600K,1900,200,1,8,96,64,2,NaN,false,x",
		"i7-2600K,0x7,-200,1,8,96,64,2,1,1,",
		searchCSVHeader + "\ni7-2600K,1900,200,1,8,96,64,2,5.5e+08,false,refine\ngarbage row",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	floatEq := func(a, b float64) bool {
		return a == b || (math.IsNaN(a) && math.IsNaN(b))
	}
	f.Fuzz(func(t *testing.T, data string) {
		row, err := ParseSearchRow(data)
		if err == nil {
			var buf bytes.Buffer
			writeSearchRow(&buf, row.System, row.Inst, row.Par, row.RTimeNs, row.Censored, row.App)
			canon := buf.String()
			row2, err2 := ParseSearchRow(canon)
			if err2 != nil {
				t.Fatalf("accepted row does not round-trip: %q -> %q: %v", data, canon, err2)
			}
			if row2.System != row.System || row2.App != row.App ||
				row2.Par != row.Par || row2.Censored != row.Censored ||
				!floatEq(row2.RTimeNs, row.RTimeNs) {
				t.Fatalf("round-trip changed values: %+v -> %+v (via %q)", row, row2, canon)
			}
			n1, n2 := row.Inst.Normalize(), row2.Inst.Normalize()
			if n1.ShapeString() != n2.ShapeString() || n1.DSize != n2.DSize || !floatEq(n1.TSize, n2.TSize) {
				t.Fatalf("round-trip changed instance: %+v -> %+v (via %q)", row.Inst, row2.Inst, canon)
			}
			buf.Reset()
			writeSearchRow(&buf, row2.System, row2.Inst, row2.Par, row2.RTimeNs, row2.Censored, row2.App)
			if buf.String() != canon {
				t.Fatalf("canonical render not a fixed point: %q != %q", buf.String(), canon)
			}
		}
		// The file readers must never panic, whatever the bytes.
		_, _ = ReadCSV(strings.NewReader(data))
		_, _, _ = ReadObservationLog(strings.NewReader(data), "i7-2600K")
	})
}

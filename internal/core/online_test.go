package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
)

var tunerCache = map[string]*Tuner{}

func trainedTuner(t *testing.T, sys hw.System) *Tuner {
	t.Helper()
	if tu, ok := tunerCache[sys.Name]; ok {
		return tu
	}
	sr, err := Exhaustive(sys, QuickSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	tunerCache[sys.Name] = tu
	return tu
}

func TestOnlineNeverWorseThanOffline(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	for _, inst := range []plan.Instance{
		{Dim: 900, TSize: 3000, DSize: 1},
		{Dim: 2100, TSize: 500, DSize: 5},
		{Dim: 600, TSize: 40, DSize: 3},
	} {
		offline := tu.Predict(inst)
		offNs, err := tu.RTimeFor(inst, offline)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := online.Refine(inst)
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalNs > offNs*1.0000001 {
			t.Errorf("%v: online %v worse than offline %v", inst, st.FinalNs, offNs)
		}
	}
}

func TestOnlineRespectsBudget(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	online.Budget = 5
	_, st, err := online.Refine(plan.Instance{Dim: 1500, TSize: 4000, DSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes > 5 {
		t.Errorf("probes = %d, budget 5", st.Probes)
	}
}

func TestOnlineRecoversFromBadStart(t *testing.T) {
	// Start deliberately badly: a coarse large instance forced onto the
	// CPU. The climber must switch the GPU on and improve substantially.
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	online.Budget = 30
	inst := plan.Instance{Dim: 2700, TSize: 12000, DSize: 1}
	bad := plan.Params{CPUTile: 1, Band: -1, GPUTile: 1, Halo: -1}
	pred, st, err := online.RefineFrom(inst, bad)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Par.Band < 0 {
		t.Error("climber failed to switch the GPU on")
	}
	if st.Improvement() < 2 {
		t.Errorf("improvement %.2fx too small from a terrible start", st.Improvement())
	}
	if st.Moves == 0 {
		t.Error("no moves recorded")
	}
}

func TestOnlineLocalOptimumStops(t *testing.T) {
	// From the exhaustive optimum, refinement must stop without moving
	// (neighbours cannot strictly improve... unless off-grid values do,
	// which is acceptable — then FinalNs must still be <= the optimum).
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, QuickSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tu := trainedTuner(t, sys)
	inst := plan.Instance{Dim: 1900, TSize: 4000, DSize: 1}
	ir, ok := sr.For(inst)
	if !ok {
		t.Fatal("instance not searched")
	}
	best, ok := ir.Best()
	if !ok {
		t.Fatal("no optimum")
	}
	online := NewOnlineTuner(tu)
	_, st, err := online.RefineFrom(inst, best.Par)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalNs > best.RTimeNs {
		t.Errorf("refinement regressed below the exhaustive optimum: %v > %v",
			st.FinalNs, best.RTimeNs)
	}
}

func TestOnlineSerialGate(t *testing.T) {
	// When the gate says serial, the online tuner probes the parallel
	// alternative and keeps whichever is faster.
	tu := trainedTuner(t, hw.I3_540())
	online := NewOnlineTuner(tu)
	inst := plan.Instance{Dim: 20, TSize: 1, DSize: 0}
	pred, st, err := online.Refine(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes < 1 {
		t.Error("serial gate must still probe once")
	}
	auto, err := tu.RTimeFor(inst, pred)
	if err != nil {
		t.Fatal(err)
	}
	if auto > engine.SerialNs(tu.Sys, inst)*1.0000001 && !pred.Serial {
		t.Error("online result worse than serial")
	}
}

func TestNeighboursValid(t *testing.T) {
	inst := plan.Instance{Dim: 800, TSize: 100, DSize: 1}
	for _, p := range []plan.Params{
		{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
		{CPUTile: 4, Band: 300, GPUTile: 1, Halo: -1},
		{CPUTile: 1, Band: 500, GPUTile: 1, Halo: 20},
	} {
		for _, n := range neighbours(inst, p) {
			if _, err := plan.Build(inst, n); err != nil {
				t.Errorf("invalid neighbour %v of %v: %v", n, p, err)
			}
		}
	}
}

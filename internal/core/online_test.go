package core

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/plan"
)

var tunerCache = map[string]*Tuner{}

func trainedTuner(t *testing.T, sys hw.System) *Tuner {
	t.Helper()
	if tu, ok := tunerCache[sys.Name]; ok {
		return tu
	}
	sr, err := Exhaustive(sys, QuickSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tu, err := Train(sr, DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	tunerCache[sys.Name] = tu
	return tu
}

func TestOnlineNeverWorseThanOffline(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	for _, inst := range []plan.Instance{
		{Dim: 900, TSize: 3000, DSize: 1},
		{Dim: 2100, TSize: 500, DSize: 5},
		{Dim: 600, TSize: 40, DSize: 3},
	} {
		offline := tu.Predict(inst)
		offNs, err := tu.RTimeFor(inst, offline)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := online.Refine(inst)
		if err != nil {
			t.Fatal(err)
		}
		if st.FinalNs > offNs*1.0000001 {
			t.Errorf("%v: online %v worse than offline %v", inst, st.FinalNs, offNs)
		}
	}
}

func TestOnlineRespectsBudget(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	online.Budget = 5
	_, st, err := online.Refine(plan.Instance{Dim: 1500, TSize: 4000, DSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes > 5 {
		t.Errorf("probes = %d, budget 5", st.Probes)
	}
}

func TestOnlineRecoversFromBadStart(t *testing.T) {
	// Start deliberately badly: a coarse large instance forced onto the
	// CPU. The climber must switch the GPU on and improve substantially.
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	online.Budget = 30
	inst := plan.Instance{Dim: 2700, TSize: 12000, DSize: 1}
	bad := plan.Params{CPUTile: 1, Band: -1, GPUTile: 1, Halo: -1}
	pred, st, err := online.RefineFrom(inst, bad)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Par.Band < 0 {
		t.Error("climber failed to switch the GPU on")
	}
	if st.Improvement() < 2 {
		t.Errorf("improvement %.2fx too small from a terrible start", st.Improvement())
	}
	if st.Moves == 0 {
		t.Error("no moves recorded")
	}
}

func TestOnlineLocalOptimumStops(t *testing.T) {
	// From the exhaustive optimum, refinement must stop without moving
	// (neighbours cannot strictly improve... unless off-grid values do,
	// which is acceptable — then FinalNs must still be <= the optimum).
	sys := hw.I7_2600K()
	sr, err := Exhaustive(sys, QuickSpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tu := trainedTuner(t, sys)
	inst := plan.Instance{Dim: 1900, TSize: 4000, DSize: 1}
	ir, ok := sr.For(inst)
	if !ok {
		t.Fatal("instance not searched")
	}
	best, ok := ir.Best()
	if !ok {
		t.Fatal("no optimum")
	}
	online := NewOnlineTuner(tu)
	_, st, err := online.RefineFrom(inst, best.Par)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalNs > best.RTimeNs {
		t.Errorf("refinement regressed below the exhaustive optimum: %v > %v",
			st.FinalNs, best.RTimeNs)
	}
}

func TestOnlineSerialGate(t *testing.T) {
	// When the gate says serial, the online tuner probes the parallel
	// alternative and keeps whichever is faster.
	tu := trainedTuner(t, hw.I3_540())
	online := NewOnlineTuner(tu)
	inst := plan.Instance{Dim: 20, TSize: 1, DSize: 0}
	pred, st, err := online.Refine(inst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes < 1 {
		t.Error("serial gate must still probe once")
	}
	auto, err := tu.RTimeFor(inst, pred)
	if err != nil {
		t.Fatal(err)
	}
	if auto > engine.SerialNs(tu.Sys, inst)*1.0000001 && !pred.Serial {
		t.Error("online result worse than serial")
	}
}

// TestRefineFromBudgetMidNeighbourhood: a probe budget smaller than one
// neighbourhood must stop the climb mid-neighbourhood, never exceeding
// the budget.
func TestRefineFromBudgetMidNeighbourhood(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	online.Budget = 2
	inst := plan.Instance{Dim: 1500, TSize: 2000, DSize: 1}
	start := plan.Params{CPUTile: 8, Band: 700, GPUTile: 4, Halo: 20}
	if n := len(neighbours(inst, start.Normalize())); n < 2 {
		t.Fatalf("start has only %d neighbours; the test needs a full neighbourhood", n)
	}
	_, st, err := online.RefineFrom(inst, start)
	if err != nil {
		t.Fatal(err)
	}
	// One probe measures the start, leaving exactly one for the
	// neighbourhood.
	if st.Probes != 2 {
		t.Errorf("probes = %d, want exactly 2 (budget exhausted mid-neighbourhood)", st.Probes)
	}
}

// TestNeighboursOffGridCPUTile: M5 predictions can start the climb from
// cpu-tile values outside the Table 3 grid; neighbours must still move
// to the adjacent grid values (and produce only valid configurations).
func TestNeighboursOffGridCPUTile(t *testing.T) {
	inst := plan.Instance{Dim: 800, TSize: 100, DSize: 1}
	cases := []struct {
		cpuTile int
		want    []int // expected cpu-tile moves among the neighbours
	}{
		// An off-grid start anchors at the smallest grid tile above it
		// and moves to that anchor's index neighbours.
		{3, []int{2, 8}},
		{7, []int{4, 10}},
		{11, []int{10}},
		{20, nil}, // beyond the grid: no cpu-tile moves at all
	}
	for _, tc := range cases {
		p := plan.Params{CPUTile: tc.cpuTile, Band: 300, GPUTile: 1, Halo: -1}
		ns := neighbours(inst, p)
		moves := map[int]bool{}
		for _, n := range ns {
			if _, err := plan.Build(inst, n); err != nil {
				t.Errorf("cpu-tile %d: invalid neighbour %v: %v", tc.cpuTile, n, err)
			}
			if n.CPUTile != tc.cpuTile {
				moves[n.CPUTile] = true
			}
		}
		if len(moves) != len(tc.want) {
			t.Errorf("cpu-tile %d: moves = %v, want %v", tc.cpuTile, moves, tc.want)
		}
		for _, w := range tc.want {
			if !moves[w] {
				t.Errorf("cpu-tile %d: missing move to %d (got %v)", tc.cpuTile, w, moves)
			}
		}
	}
}

// gateOpenTuner builds a tuner whose parallelism gate always says
// parallel and whose models pick a plain CPU-only configuration, by
// fitting the underlying models on constant targets. It lets tests
// steer Predict deterministically without a full training run.
func gateOpenTuner(sys hw.System) *Tuner {
	gate := ml.NewDataset("dim", "tsize", "dsize")
	cpu := ml.NewDataset("dim", "tsize", "dsize")
	gpu := ml.NewDataset("dim", "tsize", "dsize")
	for _, x := range [][]float64{
		{5, 0.5, 0}, {50, 5, 1}, {500, 100, 1}, {2000, 3000, 5}, {3000, 10000, 9},
	} {
		gate.Add(x, 1) // every training point says "parallelize"
		cpu.Add(x, 8)  // constant cpu-tile
		gpu.Add(x, 0)  // never employ the GPU
	}
	svm, err := ml.FitSVM(gate, ml.SVMOptions{})
	if err != nil {
		panic(err)
	}
	return &Tuner{
		Sys:      sys,
		Parallel: svm,
		CPUTile:  ml.FitM5(cpu, ml.DefaultM5Options()),
		GPUTile:  ml.FitREP(gpu, ml.REPOptions{}),
	}
}

// TestRefineSerialFallback drives the serial-fallback branch of Refine:
// the gate (wrongly) says parallel on a tiny instance, the climb cannot
// beat the sequential baseline, so the refined decision must fall back
// to serial with FinalNs equal to the baseline.
func TestRefineSerialFallback(t *testing.T) {
	sys := hw.I7_2600K()
	tu := gateOpenTuner(sys)
	inst := plan.Instance{Dim: 10, TSize: 1, DSize: 0}
	if tu.Predict(inst).Serial {
		t.Fatal("constructed gate still predicts serial; the test needs a parallel prediction")
	}
	online := NewOnlineTuner(tu)
	pred, st, err := online.Refine(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Serial {
		t.Fatalf("refined prediction = %v, want the serial fallback", pred)
	}
	serialNs := engine.SerialNs(sys, inst)
	if st.FinalNs != serialNs {
		t.Errorf("FinalNs = %v, want the serial baseline %v", st.FinalNs, serialNs)
	}
	if st.StartNs <= serialNs {
		t.Errorf("start %v should have been worse than serial %v", st.StartNs, serialNs)
	}
}

// TestRefineDecisionFromCachedSerial: refining a cached serial decision
// probes the parallel alternative against the supplied baseline without
// re-running the offline predict, and keeps whichever wins.
func TestRefineDecisionFromCachedSerial(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	inst := plan.Instance{Dim: 20, TSize: 1, DSize: 0}
	dec := Prediction{Serial: true, Par: engine.CPUOnlyParams(8)}
	serialNs := engine.SerialNs(tu.Sys, inst)
	pred, st, err := online.RefineDecisionContext(context.Background(), inst, dec, serialNs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Probes != 1 {
		t.Errorf("probes = %d, want exactly 1 (the parallel alternative)", st.Probes)
	}
	if st.StartNs != serialNs {
		t.Errorf("StartNs = %v, want the supplied baseline %v", st.StartNs, serialNs)
	}
	if pred.Serial && st.FinalNs != serialNs {
		t.Errorf("kept serial but FinalNs = %v != baseline %v", st.FinalNs, serialNs)
	}
	if !pred.Serial && st.FinalNs >= serialNs {
		t.Errorf("switched to parallel without beating the baseline: %v >= %v", st.FinalNs, serialNs)
	}
}

// TestRefineFromUnmeasurableStart: an invalid starting configuration is
// an error, not a silent no-op.
func TestRefineFromUnmeasurableStart(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	inst := plan.Instance{Dim: 500, TSize: 100, DSize: 1}
	if _, _, err := online.RefineFrom(inst, plan.Params{CPUTile: 0, Band: -1, GPUTile: 1, Halo: -1}); err == nil {
		t.Error("unbuildable start must fail")
	}
}

// TestRefineFromContextCanceled: a canceled context stops the climb at
// the next probe and surfaces the incumbent with ctx's error.
func TestRefineFromContextCanceled(t *testing.T) {
	tu := trainedTuner(t, hw.I7_2600K())
	online := NewOnlineTuner(tu)
	inst := plan.Instance{Dim: 1500, TSize: 2000, DSize: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := online.RefineFromContext(ctx, inst, plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Probes > 1 {
		t.Errorf("canceled refinement still probed %d times", st.Probes)
	}
}

func TestNeighboursValid(t *testing.T) {
	inst := plan.Instance{Dim: 800, TSize: 100, DSize: 1}
	for _, p := range []plan.Params{
		{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
		{CPUTile: 4, Band: 300, GPUTile: 1, Halo: -1},
		{CPUTile: 1, Band: 500, GPUTile: 1, Halo: 20},
	} {
		for _, n := range neighbours(inst, p) {
			if _, err := plan.Build(inst, n); err != nil {
				t.Errorf("invalid neighbour %v of %v: %v", n, p, err)
			}
		}
	}
}

package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/plan"
)

// ObservationLog persists measured (instance, params, runtime)
// observations gathered at serving time — the feedback half of the
// paper's future-work runtime tuning: when an online-refined job
// measures a configuration, the observation is appended here so the
// offline models can later be retrained on deployment traffic. Rows are
// written in the exact search-CSV format of WriteCSV, one file per
// system ("<dir>/<system>.csv"), so `wavetrain -from` folds a log file
// into retraining with no conversion step.
//
// Appends are write-through (open, append, close) and serialized by an
// internal mutex, so a crash never loses more than the row being
// written and concurrent workers cannot interleave partial rows.
type ObservationLog struct {
	dir string
	mu  sync.Mutex
}

// Observation is one measured configuration: the instance it ran on,
// the parameter setting, and the measured runtime in nanoseconds. App,
// when set, names the catalog application the measurement came from and
// is persisted in the CSV's app column (empty is allowed — the
// granularity already lives in Inst).
type Observation struct {
	Inst    plan.Instance
	Par     plan.Params
	RTimeNs float64
	App     string
}

// NewObservationLog creates (if needed) dir and returns a log writing
// per-system CSV files into it.
func NewObservationLog(dir string) (*ObservationLog, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty observation-log directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: observation log: %w", err)
	}
	return &ObservationLog{dir: dir}, nil
}

// Dir returns the directory the log writes into.
func (l *ObservationLog) Dir() string { return l.dir }

// Path returns the CSV file observations for the named system append to.
func (l *ObservationLog) Path(system string) string {
	return filepath.Join(l.dir, system+".csv")
}

// validLogSystem rejects system names that would escape the log
// directory, produce unreadable file names, or break the CSV row format
// (the name is written raw as the first column).
func validLogSystem(system string) error {
	if system == "" {
		return fmt.Errorf("core: empty system name")
	}
	if strings.ContainsAny(system, "/\\,\n\r") || system == "." || system == ".." {
		return fmt.Errorf("core: system name %q not usable in a CSV observation log", system)
	}
	return nil
}

// Append validates and appends observations to the named system's file,
// writing the search-CSV header first when the file is new or empty.
// Every observation is validated (the instance, and the params via
// plan.Build) before any row is written, so a log file never contains
// settings that ReadCSV would reject.
func (l *ObservationLog) Append(system string, obs ...Observation) error {
	if err := validLogSystem(system); err != nil {
		return err
	}
	for i, o := range obs {
		if _, err := plan.Build(o.Inst, o.Par); err != nil {
			return fmt.Errorf("core: observation %d: %w", i, err)
		}
		if !(o.RTimeNs > 0) {
			return fmt.Errorf("core: observation %d: runtime %v not positive", i, o.RTimeNs)
		}
		if strings.ContainsAny(o.App, ",\n\r") {
			return fmt.Errorf("core: observation %d: app %q not usable in a CSV row", i, o.App)
		}
	}
	if len(obs) == 0 {
		return nil
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.OpenFile(l.Path(system), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("core: observation log: %w", err)
	}
	w := bufio.NewWriter(f)
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		fmt.Fprintln(w, searchCSVHeader)
	}
	for _, o := range obs {
		writeSearchRow(w, system, o.Inst.Normalize(), o.Par, o.RTimeNs, false, o.App)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: observation log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: observation log: %w", err)
	}
	return nil
}

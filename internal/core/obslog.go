package core

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/plan"
)

// ObservationLog persists measured (instance, params, runtime)
// observations gathered at serving time — the feedback half of the
// paper's future-work runtime tuning: when an online-refined job
// measures a configuration, the observation is appended here so the
// offline models can later be retrained on deployment traffic. Rows are
// written in the exact search-CSV format of WriteCSV, one file per
// system ("<dir>/<system>.csv"), so `wavetrain -from` folds a log file
// into retraining with no conversion step.
//
// Appends are serialized per system, not globally: each system owns an
// appender with its own lock and a file handle that stays open across
// calls, so concurrent workers feeding different systems never contend
// on one mutex and no call pays an open/close round trip. Rotation
// stays safe: each append re-stats the path and reopens if the file was
// moved aside or deleted (e.g. `mv <system>.csv old.csv` before a
// wavetrain -from fold), recreating it with a fresh header. Every
// Append flushes before returning (write-through durability: a crash
// never loses more than the rows of the append in progress), and Close
// flushes and releases every appender — call it when the daemon shuts
// down.
type ObservationLog struct {
	dir string

	// mu guards the appender map and the closed flag only; row writing
	// locks the individual appender.
	mu        sync.Mutex
	appenders map[string]*obsAppender
	closed    bool
}

// obsAppender is one system's open CSV file. The file is opened lazily
// on the first append and reused until Close (or a write error, which
// drops the handle so the next append reopens cleanly).
type obsAppender struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// fi identifies the open file, so an append can detect that the path
	// was rotated or deleted underneath the handle and reopen.
	fi os.FileInfo
	// closed is set by ObservationLog.Close under mu; later appends
	// must not reuse or reopen the persistent handle — they take the
	// one-shot path instead.
	closed bool
}

// Observation is one measured configuration: the instance it ran on,
// the parameter setting, and the measured runtime in nanoseconds. App,
// when set, names the catalog application the measurement came from and
// is persisted in the CSV's app column (empty is allowed — the
// granularity already lives in Inst).
type Observation struct {
	Inst    plan.Instance
	Par     plan.Params
	RTimeNs float64
	App     string
}

// NewObservationLog creates (if needed) dir and returns a log writing
// per-system CSV files into it.
func NewObservationLog(dir string) (*ObservationLog, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: empty observation-log directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: observation log: %w", err)
	}
	return &ObservationLog{dir: dir, appenders: make(map[string]*obsAppender)}, nil
}

// Dir returns the directory the log writes into.
func (l *ObservationLog) Dir() string { return l.dir }

// Path returns the CSV file observations for the named system append to.
func (l *ObservationLog) Path(system string) string {
	return filepath.Join(l.dir, system+".csv")
}

// validLogSystem rejects system names that would escape the log
// directory, produce unreadable file names, or break the CSV row format
// (the name is written raw as the first column).
func validLogSystem(system string) error {
	if system == "" {
		return fmt.Errorf("core: empty system name")
	}
	if strings.ContainsAny(system, "/\\,\n\r") || system == "." || system == ".." {
		return fmt.Errorf("core: system name %q not usable in a CSV observation log", system)
	}
	return nil
}

// appender returns (creating if needed) the named system's appender.
// Appenders outlive Close — a straggler append after Close still
// serializes on the same per-system mutex, it just takes the one-shot
// write path instead of the persistent handle.
func (l *ObservationLog) appender(system string) *obsAppender {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.appenders[system]
	if !ok {
		a = &obsAppender{path: l.Path(system), closed: l.closed}
		l.appenders[system] = a
	}
	return a
}

// open readies the appender's file handle, writing the search-CSV
// header when the file is new or empty. Caller holds a.mu and has
// checked a.closed.
func (a *obsAppender) open() error {
	if a.f != nil {
		// Reused handle: detect rotation. If the path no longer names the
		// open file (moved aside for retraining, or deleted), drop the
		// stale handle and fall through to a fresh open — new rows then
		// recreate the file with its header instead of feeding the
		// unlinked inode. One stat per append is the price of staying
		// rotation-friendly; the open/close round trip is still gone.
		if a.fi == nil {
			return nil // no recorded identity to compare against
		}
		if fi, err := os.Stat(a.path); err == nil && os.SameFile(a.fi, fi) {
			return nil
		}
		a.drop()
	}
	f, err := os.OpenFile(a.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("core: observation log: %w", err)
	}
	a.f = f
	a.w = bufio.NewWriter(f)
	if fi, err := f.Stat(); err == nil {
		a.fi = fi
		if fi.Size() == 0 {
			fmt.Fprintln(a.w, searchCSVHeader)
		}
	}
	return nil
}

// drop closes and discards the appender's handle (after a write error
// or a detected rotation), so the next append starts from a clean open.
// Caller holds a.mu.
func (a *obsAppender) drop() {
	if a.f != nil {
		a.f.Close()
	}
	a.f, a.w, a.fi = nil, nil, nil
}

// Append validates and appends observations to the named system's file,
// writing the search-CSV header first when the file is new or empty.
// Every observation is validated (the instance, and the params via
// plan.Build) before any row is written, so a log file never contains
// settings that ReadCSV would reject. The rows are flushed to the file
// before Append returns; the file handle stays open for the next call.
// An Append that arrives after Close (a straggler worker outliving a
// cut-short shutdown drain) still persists: it takes a one-shot
// open/write/close path instead of the reused appender.
func (l *ObservationLog) Append(system string, obs ...Observation) error {
	if err := validLogSystem(system); err != nil {
		return err
	}
	for i, o := range obs {
		if _, err := plan.Build(o.Inst, o.Par); err != nil {
			return fmt.Errorf("core: observation %d: %w", i, err)
		}
		if !(o.RTimeNs > 0) {
			return fmt.Errorf("core: observation %d: runtime %v not positive", i, o.RTimeNs)
		}
		if strings.ContainsAny(o.App, ",\n\r") {
			return fmt.Errorf("core: observation %d: app %q not usable in a CSV row", i, o.App)
		}
	}
	if len(obs) == 0 {
		return nil
	}

	a := l.appender(system)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		// Close already ran: one-shot open/write/close under the same
		// per-system mutex, so straggler appends stay serialized (no
		// interleaved rows, no duplicated header) and leave no handle
		// open behind the finished Close.
		return a.appendOnceLocked(system, obs)
	}
	if err := a.open(); err != nil {
		return err
	}
	for _, o := range obs {
		writeSearchRow(a.w, system, o.Inst.Normalize(), o.Par, o.RTimeNs, false, o.App)
	}
	if err := a.w.Flush(); err != nil {
		a.drop()
		return fmt.Errorf("core: observation log: %w", err)
	}
	return nil
}

// appendOnceLocked is the write-through fallback used after Close:
// open, write, flush, close — nothing left open for anyone to clean
// up. Caller holds a.mu.
func (a *obsAppender) appendOnceLocked(system string, obs []Observation) error {
	f, err := os.OpenFile(a.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("core: observation log: %w", err)
	}
	w := bufio.NewWriter(f)
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		fmt.Fprintln(w, searchCSVHeader)
	}
	for _, o := range obs {
		writeSearchRow(w, system, o.Inst.Normalize(), o.Par, o.RTimeNs, false, o.App)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: observation log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: observation log: %w", err)
	}
	return nil
}

// Close flushes and closes every per-system appender. It is safe to
// call more than once. Appends arriving after Close do not lose data —
// they fall back to the one-shot write-through path (see Append).
func (l *ObservationLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	// Deterministic close order keeps any error report stable.
	names := make([]string, 0, len(l.appenders))
	for name := range l.appenders {
		names = append(names, name)
	}
	sort.Strings(names)
	appenders := make([]*obsAppender, len(names))
	for i, name := range names {
		appenders[i] = l.appenders[name]
	}
	l.mu.Unlock()

	var err error
	for _, a := range appenders {
		a.mu.Lock()
		a.closed = true
		if a.f != nil {
			if ferr := a.w.Flush(); ferr != nil {
				err = errors.Join(err, fmt.Errorf("core: observation log: %w", ferr))
			}
			if cerr := a.f.Close(); cerr != nil {
				err = errors.Join(err, fmt.Errorf("core: observation log: %w", cerr))
			}
			a.f, a.w = nil, nil
		}
		a.mu.Unlock()
	}
	return err
}

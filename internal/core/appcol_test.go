package core

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/plan"
)

// TestSearchCSVAppColumn: sweeps stamp the synthetic trainer into the
// trailing app column.
func TestSearchCSVAppColumn(t *testing.T) {
	sr, err := Exhaustive(hw.I7_2600K(), tinySpace(), SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != searchCSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasSuffix(searchCSVHeader, ",app") {
		t.Fatalf("header %q lacks the app column", searchCSVHeader)
	}
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, ",synthetic") {
			t.Fatalf("sweep row %q not stamped with the synthetic app", line)
		}
	}
}

// TestReadCSVLegacyFormat: pre-app-column files (old header, 10-field
// rows) must keep loading, and so must files where an observation log
// appended 11-field rows below a legacy header.
func TestReadCSVLegacyFormat(t *testing.T) {
	legacy := strings.Join([]string{
		legacySearchCSVHeader,
		"i7-2600K,700,10,1,8,-1,1,-1,2.5e8,false",
		"i7-2600K,700,10,1,8,300,4,-1,1.5e8,false",
	}, "\n")
	sr, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy CSV rejected: %v", err)
	}
	if sr.Evaluations() != 2 {
		t.Fatalf("evaluations = %d, want 2", sr.Evaluations())
	}

	mixed := legacy + "\n" + "i7-2600K,700,10,1,4,-1,1,-1,3e8,false,nash"
	sr, err = ReadCSV(strings.NewReader(mixed))
	if err != nil {
		t.Fatalf("mixed legacy/current rows rejected: %v", err)
	}
	if sr.Evaluations() != 3 {
		t.Fatalf("evaluations = %d, want 3", sr.Evaluations())
	}

	if _, err := ReadCSV(strings.NewReader(legacySearchCSVHeader + "\n" + "too,few,fields")); err == nil {
		t.Error("malformed row accepted")
	}
}

// TestObservationLogAppColumn: observations carry their app name into
// the CSV, and the file round-trips through wavetrain's reader.
func TestObservationLogAppColumn(t *testing.T) {
	l, err := NewObservationLog(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.Instance{Dim: 700, TSize: 1500, DSize: 4}
	par := plan.Params{CPUTile: 8, Band: 300, GPUTile: 4, Halo: -1}
	if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: 1e8, App: "nash"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(l.Path("i7-2600K"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",nash\n") {
		t.Errorf("log row lacks the app column:\n%s", data)
	}
	f, err := os.Open(l.Path("i7-2600K"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ReadCSV(f); err != nil {
		t.Errorf("app-stamped log rejected by the reader: %v", err)
	}

	// An app name that would break the row format is rejected up front.
	if err := l.Append("i7-2600K", Observation{Inst: inst, Par: par, RTimeNs: 1e8, App: "bad,app"}); err == nil {
		t.Error("comma-carrying app name accepted")
	}
}

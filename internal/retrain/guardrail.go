// Package retrain closes the paper's feedback loop inside the daemon:
// observation logs written by online-refined jobs accumulate measured
// (instance, params, runtime) rows, and a background retrainer
// periodically shadow-trains a challenger tuner on them, compares it
// against the serving champion on a held-out split, and — only when a
// statistical guardrail says the challenger is genuinely better —
// atomically promotes it into the serving path and invalidates the
// affected system's cached plans. The champion keeps serving throughout:
// training, evaluation and even a failed promotion never touch the
// request path.
package retrain

import (
	"fmt"
	"math"
)

// Guardrail defaults: at least DefaultMinSamples held-out pairs, mean
// error at least DefaultMinImprovement better, and the challenger ahead
// on at least DefaultMinWinRate of the decided pairs.
const (
	DefaultMinSamples     = 8
	DefaultMinImprovement = 0.05
	DefaultMinWinRate     = 0.6
)

// GuardrailOptions parameterize the promotion gate. Zero values select
// the defaults.
type GuardrailOptions struct {
	// MinSamples is the minimum number of held-out pairs; below it the
	// comparison is refused outright (verdict "undersampled").
	MinSamples int
	// MinImprovement is the minimum relative improvement of the
	// challenger's mean error over the champion's:
	// (champ - chall) / champ >= MinImprovement.
	MinImprovement float64
	// MinWinRate is the minimum fraction of decided (non-tied) pairs the
	// challenger must win. This is the sign-test half of the gate: a
	// challenger whose mean is dragged down by a few lucky outliers
	// still loses most pairs and is refused (verdict "noisy").
	MinWinRate float64
}

func (o GuardrailOptions) withDefaults() GuardrailOptions {
	if o.MinSamples <= 0 {
		o.MinSamples = DefaultMinSamples
	}
	if o.MinImprovement <= 0 {
		o.MinImprovement = DefaultMinImprovement
	}
	if o.MinWinRate <= 0 {
		o.MinWinRate = DefaultMinWinRate
	}
	return o
}

// Verdict is the outcome of one champion/challenger comparison.
type Verdict struct {
	// Promote is true when every gate passed.
	Promote bool `json:"promote"`
	// Reason names the deciding gate: "promote", "undersampled",
	// "unpaired", "invalid", "champion-perfect",
	// "insufficient-improvement", or "noisy".
	Reason string `json:"reason"`
	// Samples is the number of held-out pairs compared.
	Samples int `json:"samples"`
	// ChampionErr and ChallengerErr are the mean absolute relative
	// prediction errors of the two models on the held-out pairs.
	ChampionErr   float64 `json:"champion_err"`
	ChallengerErr float64 `json:"challenger_err"`
	// Improvement is the relative improvement of the challenger's mean
	// error: (champion - challenger) / champion.
	Improvement float64 `json:"improvement"`
	// WinRate is the fraction of decided (non-tied) pairs the
	// challenger won; 0.5 when every pair tied.
	WinRate float64 `json:"win_rate"`
}

// String renders the verdict for structured logs.
func (v Verdict) String() string {
	return fmt.Sprintf("%s promote=%t samples=%d champion_err=%.4f challenger_err=%.4f improvement=%.4f win_rate=%.2f",
		v.Reason, v.Promote, v.Samples, v.ChampionErr, v.ChallengerErr, v.Improvement, v.WinRate)
}

// Decide is the promotion gate: given the champion's and challenger's
// per-observation prediction errors on the same held-out split (paired
// by index), it decides whether the challenger may replace the
// champion. The function is pure — no clocks, no randomness, no
// goroutines — so the promotion policy is exhaustively table-testable.
//
// The gate is deliberately asymmetric: promotion requires evidence, a
// tie keeps the champion. Three checks, in order: enough pairs to mean
// anything (MinSamples); the challenger's mean error at least
// MinImprovement relatively better; and the challenger ahead on at
// least MinWinRate of the pairs that differ — the sign test that stops
// a noisy challenger whose mean is carried by a few lucky outliers.
// With n >= 8 pairs and a 0.6 win rate the chance a coin-flip
// challenger passes both mean and sign gates is already small, and it
// shrinks geometrically with n.
func Decide(champion, challenger []float64, opts GuardrailOptions) Verdict {
	o := opts.withDefaults()
	v := Verdict{Reason: "unpaired", Samples: len(challenger)}
	if len(champion) != len(challenger) {
		return v
	}
	n := len(champion)
	v.Samples = n
	if n < o.MinSamples {
		v.Reason = "undersampled"
		return v
	}
	var sumC, sumL float64
	wins, losses := 0, 0
	for i := 0; i < n; i++ {
		c, l := champion[i], challenger[i]
		if math.IsNaN(c) || math.IsInf(c, 0) || math.IsNaN(l) || math.IsInf(l, 0) || c < 0 || l < 0 {
			v.Reason = "invalid"
			return v
		}
		sumC += c
		sumL += l
		switch {
		case l < c:
			wins++
		case l > c:
			losses++
		}
	}
	v.ChampionErr = sumC / float64(n)
	v.ChallengerErr = sumL / float64(n)
	if decided := wins + losses; decided > 0 {
		v.WinRate = float64(wins) / float64(decided)
	} else {
		v.WinRate = 0.5
	}
	if v.ChampionErr <= 0 {
		// A champion with zero held-out error cannot be improved upon.
		v.Reason = "champion-perfect"
		return v
	}
	v.Improvement = (v.ChampionErr - v.ChallengerErr) / v.ChampionErr
	switch {
	case v.Improvement < o.MinImprovement:
		v.Reason = "insufficient-improvement"
	case v.WinRate < o.MinWinRate:
		v.Reason = "noisy"
	default:
		v.Promote = true
		v.Reason = "promote"
	}
	return v
}

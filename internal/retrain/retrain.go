package retrain

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/telemetry"
)

// Defaults for Config thresholds.
const (
	DefaultInterval        = 5 * time.Minute
	DefaultMinObservations = 32
	DefaultMaxAge          = 30 * time.Minute
	DefaultHoldout         = 0.25
)

// Config parameterizes a Retrainer. Champion and Promote are required;
// everything else has defaults.
type Config struct {
	// Systems are the platforms whose observation logs are watched.
	Systems []hw.System
	// LogDir is the observation-log directory (core.ObservationLog's
	// dir): one "<system>.csv" per system, with the retrainer's
	// "<system>.csv.ckpt" read-position checkpoints alongside.
	LogDir string

	// Interval is the polling period of the loop; Notify short-circuits
	// it when observations land.
	Interval time.Duration
	// MinObservations is the size threshold: a retrain starts once this
	// many unconsumed rows have accumulated.
	MinObservations int
	// MaxAge is the age threshold: once the oldest unconsumed row has
	// waited this long, a retrain starts even below MinObservations, so
	// a trickle of observations is not ignored forever.
	MaxAge time.Duration
	// Holdout is the fraction of accumulated observations held out for
	// the champion/challenger comparison (see core.SplitHoldout).
	Holdout float64
	// Seed drives the deterministic holdout split.
	Seed int64
	// Guardrail parameterizes the promotion gate (see Decide).
	Guardrail GuardrailOptions
	// TrainOpts are the challenger's training options. The zero value
	// selects core.DefaultTrainOptions with Stride 1: observation logs
	// are sparse, irregular grids — unlike factory sweeps there is
	// nothing to decimate.
	TrainOpts core.TrainOptions
	// ChallengerKind selects the backend the challenger is trained with
	// (core.KindTree or core.KindBilinear). Empty matches the champion's
	// kind, so a bilinear deployment retrains bilinear — and setting it
	// explicitly lets the guardrail compare across backend kinds.
	ChallengerKind string

	// Champion resolves the currently serving predictor (typically
	// Source.Tuner).
	Champion func(sys hw.System) (core.Predictor, error)
	// Promote atomically installs a winning challenger and returns the
	// new model generation (typically Source.Promote).
	Promote func(system string, t core.Predictor) uint64
	// Generation, when set, reports a system's current generation for
	// Stats (typically Source.Generation).
	Generation func(system string) uint64
	// Kind, when set, reports a system's serving backend kind for Stats
	// (typically Source.Kind).
	Kind func(system string) string
	// Invalidate, when set, drops the system's cached plans after a
	// promotion and returns how many went (typically
	// tunecache.Cache.InvalidateSystem).
	Invalidate func(system string) int

	// Logf, when set, receives structured one-line decision logs.
	Logf func(format string, args ...any)
	// Metrics, when set, receives counters and histograms.
	Metrics *Metrics
}

// Metrics are the retrainer's optional telemetry hooks, wired by the
// service into its registry. All fields are nil-safe.
type Metrics struct {
	// Cycles counts RunOnce passes over the system list.
	Cycles *telemetry.Counter
	// Events counts per-system outcomes, labeled (system, event,
	// model_kind) with event one of "trained", "promoted", "rejected",
	// "error" and model_kind the challenger's backend kind ("unknown"
	// when the attempt failed before a challenger existed).
	Events *telemetry.CounterVec
	// TrainSec observes the duration of one retrain attempt (log read,
	// challenger training, shadow evaluation).
	TrainSec *telemetry.Histogram
	// BadRows counts malformed observation rows consumed by retrains.
	BadRows *telemetry.Counter
}

func (m *Metrics) event(system, event, kind string) {
	if m != nil && m.Events != nil {
		if kind == "" {
			kind = "unknown"
		}
		m.Events.With(system, event, kind).Inc()
	}
}

// SystemStatus is one system's retraining state, as surfaced through
// /v1/stats.
type SystemStatus struct {
	// Generation is the serving model generation (1 = the factory
	// champion, +1 per promotion).
	Generation uint64 `json:"generation"`
	// ModelKind is the serving champion's backend kind ("tree" or
	// "bilinear"); empty until the system first resolves a model.
	ModelKind string `json:"model_kind,omitempty"`
	// LastChallengerKind is the backend kind of the last trained
	// challenger, which may differ from the champion's when
	// ChallengerKind crosses backends.
	LastChallengerKind string `json:"last_challenger_kind,omitempty"`
	// LastVerdict is the outcome of the last retrain attempt: a verdict
	// reason, or "error: ..." when the attempt failed outright.
	LastVerdict string `json:"last_verdict,omitempty"`
	// Verdict is the full guardrail verdict of the last completed
	// comparison.
	Verdict *Verdict `json:"verdict,omitempty"`
	// LastGenerationID is the request-ID-style identifier of the last
	// retrain attempt, correlating stats with decision log lines.
	LastGenerationID string `json:"last_generation_id,omitempty"`
	// LastPromotionUnix is when the last promotion landed (Unix
	// seconds); 0 when never.
	LastPromotionUnix int64 `json:"last_promotion_unix,omitempty"`
	// PendingRows counts unconsumed observation rows seen by the most
	// recent scan (rows accumulate toward MinObservations).
	PendingRows int `json:"pending_rows"`
	// Retrains, Promotions, Rejections, Errors count retrain attempts
	// and their outcomes.
	Retrains   uint64 `json:"retrains"`
	Promotions uint64 `json:"promotions"`
	Rejections uint64 `json:"rejections"`
	Errors     uint64 `json:"errors"`
	// BadRows counts malformed rows consumed by retrain attempts.
	BadRows uint64 `json:"bad_rows"`
	// InvalidatedPlans counts cache entries dropped by promotions.
	InvalidatedPlans uint64 `json:"invalidated_plans"`
}

// Stats is a snapshot of the retrainer.
type Stats struct {
	// Cycles counts completed RunOnce passes.
	Cycles uint64 `json:"cycles"`
	// Systems maps system name to its retraining status.
	Systems map[string]SystemStatus `json:"systems"`
}

// sysState is one system's loop-internal state.
type sysState struct {
	cursor       *core.LogCursor
	firstPending time.Time
	status       SystemStatus
}

// Retrainer is the background champion/challenger loop. Construct with
// New, call Start to run it, Stop to drain it; Notify wakes it early
// when an observation lands. RunOnce is the deterministic single pass
// used by the loop and by tests.
type Retrainer struct {
	cfg Config

	// runMu serializes passes: the timer loop, Notify wake-ups and
	// direct RunOnce calls never train concurrently.
	runMu  sync.Mutex
	cycles atomic.Uint64

	// mu guards the state map and the statuses inside.
	mu sync.Mutex
	st map[string]*sysState

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	startOnce sync.Once
	stopOnce  sync.Once
}

// New validates cfg, fills defaults, and returns an unstarted
// Retrainer.
func New(cfg Config) (*Retrainer, error) {
	if len(cfg.Systems) == 0 {
		return nil, fmt.Errorf("retrain: no systems")
	}
	if cfg.LogDir == "" {
		return nil, fmt.Errorf("retrain: empty log directory")
	}
	if cfg.Champion == nil || cfg.Promote == nil {
		return nil, fmt.Errorf("retrain: Champion and Promote are required")
	}
	switch cfg.ChallengerKind {
	case "", core.KindTree, core.KindBilinear:
	default:
		return nil, fmt.Errorf("retrain: unknown challenger kind %q", cfg.ChallengerKind)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = DefaultMinObservations
	}
	if cfg.MaxAge <= 0 {
		cfg.MaxAge = DefaultMaxAge
	}
	if cfg.Holdout <= 0 {
		cfg.Holdout = DefaultHoldout
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.TrainOpts == (core.TrainOptions{}) {
		cfg.TrainOpts = core.DefaultTrainOptions()
		cfg.TrainOpts.Stride = 1
	}
	r := &Retrainer{
		cfg:  cfg,
		st:   make(map[string]*sysState),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, sys := range cfg.Systems {
		path := obsLogPath(cfg.LogDir, sys.Name)
		r.st[sys.Name] = &sysState{
			cursor: core.NewLogCursor(path, core.CheckpointPath(path)),
			status: SystemStatus{Generation: 1},
		}
	}
	return r, nil
}

// obsLogPath mirrors core.ObservationLog.Path without needing the log
// instance: "<dir>/<system>.csv".
func obsLogPath(dir, system string) string {
	return dir + string(os.PathSeparator) + system + ".csv"
}

// Start launches the background loop. Safe to call once; use Stop to
// end it.
func (r *Retrainer) Start() {
	r.startOnce.Do(func() { go r.loop() })
}

// Stop ends the loop and waits for any in-progress pass to finish. Safe
// to call more than once, and before Start (in which case it only marks
// the retrainer stopped).
func (r *Retrainer) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.startOnce.Do(func() { close(r.done) }) // never started: nothing to wait for
	<-r.done
}

// Notify wakes the loop early — called when an observation lands, so a
// burst of traffic reaches the size threshold without waiting out the
// polling interval. Never blocks.
func (r *Retrainer) Notify(system string) {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// loop is the background goroutine: a pass per interval tick or Notify
// wake-up, whichever comes first.
func (r *Retrainer) loop() {
	defer close(r.done)
	t := time.NewTimer(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		case <-r.wake:
		}
		r.RunOnce(context.Background())
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		t.Reset(r.cfg.Interval)
	}
}

// RunOnce performs one full pass: scan every system's observation log,
// and for each system over its size or age threshold, run a retrain
// attempt (train challenger, shadow-evaluate, maybe promote). Passes
// are serialized; ctx cancels between systems.
func (r *Retrainer) RunOnce(ctx context.Context) {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	for _, sys := range r.cfg.Systems {
		select {
		case <-ctx.Done():
			return
		default:
		}
		r.runSystem(sys)
	}
	r.cycles.Add(1)
	if r.cfg.Metrics != nil && r.cfg.Metrics.Cycles != nil {
		r.cfg.Metrics.Cycles.Inc()
	}
}

// runSystem scans one system's log and retrains when a threshold trips.
// The scan is only committed after a retrain attempt ran (successful or
// not): its rows are consumed by the attempt, which is what keeps
// rotation or restart from ever re-training on the same rows, while
// below-threshold scans stay read-only so pending rows keep counting.
func (r *Retrainer) runSystem(sys hw.System) {
	r.mu.Lock()
	st := r.st[sys.Name]
	r.mu.Unlock()

	scan, err := st.cursor.Scan()
	now := time.Now()
	if err != nil {
		r.finishAttempt(sys.Name, st, scan, 0, fmt.Errorf("scan: %w", err), Verdict{}, "", "", 0)
		return
	}
	r.mu.Lock()
	if scan.NewRows == 0 && scan.BadRows == 0 {
		st.firstPending = time.Time{}
		st.status.PendingRows = 0
		r.mu.Unlock()
		return
	}
	if st.firstPending.IsZero() {
		st.firstPending = now
	}
	st.status.PendingRows = scan.NewRows
	trigger := scan.NewRows >= r.cfg.MinObservations ||
		(scan.NewRows > 0 && now.Sub(st.firstPending) >= r.cfg.MaxAge)
	r.mu.Unlock()
	if !trigger {
		return
	}

	genID := telemetry.NewRequestID()
	start := time.Now()
	verdict, challenger, kind, err := r.evaluate(sys)
	if r.cfg.Metrics != nil && r.cfg.Metrics.TrainSec != nil {
		r.cfg.Metrics.TrainSec.Observe(time.Since(start).Seconds())
	}
	r.metricsEvent(sys.Name, "trained", kind)

	promotedGen := uint64(0)
	dropped := 0
	if err == nil && verdict.Promote {
		promotedGen = r.cfg.Promote(sys.Name, challenger)
		if r.cfg.Invalidate != nil {
			dropped = r.cfg.Invalidate(sys.Name)
		}
	}
	r.logDecision(sys.Name, genID, verdict, err, promotedGen, dropped)
	r.finishAttempt(sys.Name, st, scan, promotedGen, err, verdict, genID, kind, dropped)
}

// evaluate reads the accumulated log, trains the challenger on the
// training split, and scores champion vs challenger on the held-out
// split. Returns the guardrail verdict, the challenger and its backend
// kind. The comparison is kind-agnostic — a bilinear challenger can
// unseat a tree champion (or vice versa) purely on held-out error.
func (r *Retrainer) evaluate(sys hw.System) (Verdict, core.Predictor, string, error) {
	f, err := os.Open(obsLogPath(r.cfg.LogDir, sys.Name))
	if err != nil {
		return Verdict{}, nil, "", fmt.Errorf("open log: %w", err)
	}
	sr, _, err := core.ReadObservationLog(f, sys.Name)
	f.Close()
	if err != nil {
		return Verdict{}, nil, "", fmt.Errorf("read log: %w", err)
	}
	champion, err := r.cfg.Champion(sys)
	if err != nil {
		return Verdict{}, nil, "", fmt.Errorf("champion: %w", err)
	}
	kind := r.cfg.ChallengerKind
	if kind == "" {
		kind = champion.Kind()
	}
	trainSet, held := core.SplitHoldout(sr, r.cfg.Holdout, r.cfg.Seed)
	// Only measured, uncensored rows can score a prediction.
	kept := held[:0]
	for _, p := range held {
		if p.RTimeNs > 0 && !p.Censored {
			kept = append(kept, p)
		}
	}
	held = kept
	challenger, err := core.TrainPredictor(kind, trainSet, r.cfg.TrainOpts)
	if err != nil {
		return Verdict{}, nil, kind, fmt.Errorf("train: %w", err)
	}
	champErrs, err := predictionErrors(champion, held)
	if err != nil {
		return Verdict{}, nil, kind, fmt.Errorf("champion predict: %w", err)
	}
	challErrs, err := predictionErrors(challenger, held)
	if err != nil {
		return Verdict{}, nil, kind, fmt.Errorf("challenger predict: %w", err)
	}
	return Decide(champErrs, challErrs, r.cfg.Guardrail), challenger, kind, nil
}

// predictionErrors scores a predictor on held-out observations: for
// each, the absolute relative error between the modeled runtime of the
// predictor's own decision and the measured runtime. Per-instance
// predictions are memoized — a holdout usually repeats few instances.
func predictionErrors(t core.Predictor, held []core.Point) ([]float64, error) {
	memo := make(map[string]float64, len(held))
	out := make([]float64, 0, len(held))
	for _, p := range held {
		key := p.Inst.CacheKey()
		rt, ok := memo[key]
		if !ok {
			_, predicted, _, err := t.PredictTimed(p.Inst)
			if err != nil {
				return nil, err
			}
			rt = predicted
			memo[key] = rt
		}
		diff := rt - p.RTimeNs
		if diff < 0 {
			diff = -diff
		}
		out = append(out, diff/p.RTimeNs)
	}
	return out, nil
}

// finishAttempt updates a system's status after a retrain attempt (or a
// scan failure) and commits the consumed scan.
func (r *Retrainer) finishAttempt(system string, st *sysState, scan core.LogScan, promotedGen uint64, err error, v Verdict, genID, kind string, dropped int) {
	if err == nil || genID != "" {
		// The attempt consumed the scanned rows (even a failed attempt:
		// retrying the same poisoned rows forever would wedge the loop) —
		// commit the cursor so they are never re-trained on.
		if cerr := st.cursor.Commit(scan); cerr != nil && r.cfg.Logf != nil {
			r.cfg.Logf("retrain checkpoint system=%s err=%v", system, cerr)
		}
	}
	if scan.BadRows > 0 && r.cfg.Metrics != nil && r.cfg.Metrics.BadRows != nil {
		r.cfg.Metrics.BadRows.Add(uint64(scan.BadRows))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &st.status
	st.firstPending = time.Time{}
	s.PendingRows = 0
	s.BadRows += uint64(scan.BadRows)
	if genID != "" {
		s.LastGenerationID = genID
		s.Retrains++
		s.LastChallengerKind = kind
	}
	switch {
	case err != nil:
		s.Errors++
		s.LastVerdict = "error: " + err.Error()
		r.metricsEvent(system, "error", kind)
	case promotedGen > 0:
		s.Promotions++
		s.Generation = promotedGen
		s.ModelKind = kind
		s.LastVerdict = v.Reason
		s.Verdict = &v
		s.LastPromotionUnix = time.Now().Unix()
		s.InvalidatedPlans += uint64(dropped)
		r.metricsEvent(system, "promoted", kind)
	default:
		s.Rejections++
		s.LastVerdict = v.Reason
		s.Verdict = &v
		r.metricsEvent(system, "rejected", kind)
	}
}

// logDecision emits the structured one-line decision log.
func (r *Retrainer) logDecision(system, genID string, v Verdict, err error, gen uint64, dropped int) {
	if r.cfg.Logf == nil {
		return
	}
	switch {
	case err != nil:
		r.cfg.Logf("retrain error system=%s gen_id=%s err=%v", system, genID, err)
	case gen > 0:
		r.cfg.Logf("retrain promote system=%s gen_id=%s generation=%d invalidated=%d verdict: %s",
			system, genID, gen, dropped, v)
	default:
		r.cfg.Logf("retrain reject system=%s gen_id=%s verdict: %s", system, genID, v)
	}
}

func (r *Retrainer) metricsEvent(system, event, kind string) {
	r.cfg.Metrics.event(system, event, kind)
}

// Stats returns a snapshot of the retrainer's state.
func (r *Retrainer) Stats() Stats {
	out := Stats{Cycles: r.cycles.Load(), Systems: make(map[string]SystemStatus, len(r.cfg.Systems))}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, st := range r.st {
		s := st.status
		if r.cfg.Generation != nil {
			s.Generation = r.cfg.Generation(name)
		} else if s.Generation == 0 {
			s.Generation = 1
		}
		if r.cfg.Kind != nil {
			if k := r.cfg.Kind(name); k != "" {
				s.ModelKind = k
			}
		}
		if s.Verdict != nil {
			v := *s.Verdict
			s.Verdict = &v
		}
		out.Systems[name] = s
	}
	return out
}

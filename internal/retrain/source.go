package retrain

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
)

// TunerSource resolves per-system tuners; it is structurally identical
// to the service layer's TunerSource so a retrain Source can wrap
// whatever the daemon was configured with (trained, directory-loaded,
// or static) without this package importing the service.
type TunerSource interface {
	Tuner(sys hw.System) (core.Predictor, error)
}

// Source wraps a base TunerSource with atomic champion/challenger
// promotion: until a system's first promotion it resolves through the
// base (that tuner is generation 1, the factory champion); after
// Promote it serves the promoted tuner. Promotion is a pointer swap
// under a mutex — requests racing a promotion get either the old or the
// new champion, never a torn state, and resolution is lock-cheap
// (RLock) on the serving path.
type Source struct {
	base TunerSource

	mu       sync.RWMutex
	promoted map[string]core.Predictor
	// kind remembers the backend kind last seen serving each system —
	// the promoted model's, or the base champion's observed on resolve —
	// so stats and the waved_model_generation metric can report the
	// backend mix without forcing a lazy source to train at scrape time.
	kind    map[string]string
	gen     map[string]uint64
	promoAt map[string]time.Time
}

// NewSource wraps base with promotion support.
func NewSource(base TunerSource) *Source {
	return &Source{
		base:     base,
		promoted: make(map[string]core.Predictor),
		kind:     make(map[string]string),
		gen:      make(map[string]uint64),
		promoAt:  make(map[string]time.Time),
	}
}

// Tuner returns the serving champion for sys: the promoted tuner when
// one exists, the base source's otherwise.
func (s *Source) Tuner(sys hw.System) (core.Predictor, error) {
	s.mu.RLock()
	t := s.promoted[sys.Name]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	t, err := s.base.Tuner(sys)
	if err == nil && t != nil {
		s.noteKind(sys.Name, t.Kind())
	}
	return t, err
}

// noteKind records the serving backend kind for a system, cheaply: the
// write lock is only taken when the recorded kind actually changes, so
// the serving path stays RLock-cheap.
func (s *Source) noteKind(system, kind string) {
	s.mu.RLock()
	known := s.kind[system] == kind
	s.mu.RUnlock()
	if known {
		return
	}
	s.mu.Lock()
	if s.promoted[system] == nil {
		s.kind[system] = kind
	}
	s.mu.Unlock()
}

// Kind returns the backend kind last seen serving the named system
// ("tree" or "bilinear"), or "" when the system has not resolved yet.
// It never triggers a resolve, so it is safe at metrics-scrape time.
func (s *Source) Kind(system string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.kind[system]
}

// Ready reports whether the named system can serve without training or
// loading on the spot: true once promoted, otherwise deferred to the
// base source (sources without readiness tracking report true, matching
// the service layer's convention).
func (s *Source) Ready(system string) bool {
	s.mu.RLock()
	t := s.promoted[system]
	s.mu.RUnlock()
	if t != nil {
		return true
	}
	if r, ok := s.base.(interface{ Ready(string) bool }); ok {
		return r.Ready(system)
	}
	return true
}

// Promote atomically installs t as the named system's serving champion
// and returns the new model generation (the base champion is generation
// 1, so the first promotion returns 2).
func (s *Source) Promote(system string, t core.Predictor) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoted[system] = t
	s.kind[system] = t.Kind()
	g := s.gen[system]
	if g == 0 {
		g = 1
	}
	g++
	s.gen[system] = g
	s.promoAt[system] = time.Now()
	return g
}

// Generation returns the named system's current model generation;
// a system never promoted is generation 1.
func (s *Source) Generation(system string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if g := s.gen[system]; g > 0 {
		return g
	}
	return 1
}

// LastPromotion returns when the named system was last promoted; the
// zero time when it never was.
func (s *Source) LastPromotion(system string) time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.promoAt[system]
}

package retrain

import (
	"context"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/tunecache"
)

// The test battery shares one tiny exhaustive sweep and two tuners
// trained from it: a good one (trained on the sweep as measured) and a
// deliberately bad champion (trained on the sweep with runtimes
// inverted per instance, so it learned to prefer the worst
// configurations — its modeled runtimes diverge wildly from honest
// measurements).
var (
	fixtureOnce sync.Once
	fixtureErr  error
	tinySR      *core.SearchResult
	goodTun     *core.Tuner
	badTun      *core.Tuner
)

func fixtures(t *testing.T) (*core.SearchResult, *core.Tuner, *core.Tuner) {
	t.Helper()
	fixtureOnce.Do(func() {
		space := core.Space{
			Dims:      []int{300, 700, 1500},
			TSizes:    []float64{200, 3000},
			DSizes:    []int{1, 5},
			CPUTiles:  []int{1, 8},
			BandFracs: []float64{-1, 0.5, 1.0},
			HaloFracs: []float64{-1, 0, 1.0},
			GPUTiles:  []int{1, 8},
		}
		tinySR, fixtureErr = core.Exhaustive(hw.I7_2600K(), space, core.SearchOptions{})
		if fixtureErr != nil {
			return
		}
		goodTun, fixtureErr = core.Train(tinySR, core.DefaultTrainOptions())
		if fixtureErr != nil {
			return
		}
		badTun, fixtureErr = core.Train(invertSearch(tinySR), core.DefaultTrainOptions())
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return tinySR, goodTun, badTun
}

// invertSearch flips each instance's runtimes around their midpoint, so
// the historically worst configuration becomes the best. A tuner
// trained on it predicts terrible parameter settings with the same
// confidence a real one predicts good ones.
func invertSearch(sr *core.SearchResult) *core.SearchResult {
	out := &core.SearchResult{Sys: sr.Sys, Space: sr.Space}
	for _, ir := range sr.Instances {
		nir := core.InstanceResult{Inst: ir.Inst, SerialNs: ir.SerialNs}
		lo, hi, any := 0.0, 0.0, false
		for _, p := range ir.Points {
			if p.Censored {
				continue
			}
			if !any || p.RTimeNs < lo {
				lo = p.RTimeNs
			}
			if !any || p.RTimeNs > hi {
				hi = p.RTimeNs
			}
			any = true
		}
		for _, p := range ir.Points {
			np := p
			if !p.Censored {
				np.RTimeNs = lo + hi - p.RTimeNs
			}
			nir.Points = append(nir.Points, np)
		}
		out.Instances = append(out.Instances, nir)
	}
	return out
}

type staticTunerSource struct{ t *core.Tuner }

func (s staticTunerSource) Tuner(hw.System) (core.Predictor, error) { return s.t, nil }

// seedLog appends n honest observations (each instance's best measured
// configuration, lightly jittered) to the i7-2600K log in dir.
func seedLog(t *testing.T, dir string, n int) {
	t.Helper()
	sr, _, _ := fixtures(t)
	log, err := core.NewObservationLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	written := 0
	for i := 0; written < n; i++ {
		ir := sr.Instances[i%len(sr.Instances)]
		best, ok := ir.Best()
		if !ok {
			continue
		}
		obs := core.Observation{
			Inst:    ir.Inst,
			Par:     best.Par,
			RTimeNs: best.RTimeNs * (1 + 0.01*float64(i%3)),
			App:     "test",
		}
		if err := log.Append("i7-2600K", obs); err != nil {
			t.Fatal(err)
		}
		written++
	}
}

func testConfig(t *testing.T, dir string, src *Source) Config {
	return Config{
		Systems:         []hw.System{hw.I7_2600K()},
		LogDir:          dir,
		MinObservations: 10,
		Holdout:         0.5,
		Guardrail:       GuardrailOptions{MinSamples: 4},
		Champion:        src.Tuner,
		Promote:         src.Promote,
		Generation:      src.Generation,
		Logf:            t.Logf,
	}
}

// TestRetrainClearWinPromotesExactlyOnce is the tentpole's happy path:
// a bad champion, honest observations, one RunOnce — exactly one
// promotion lands, the generation reaches 2, and the invalidation hook
// fires for exactly the affected system.
func TestRetrainClearWinPromotesExactlyOnce(t *testing.T) {
	_, _, bad := fixtures(t)
	dir := t.TempDir()
	seedLog(t, dir, 24)

	src := NewSource(staticTunerSource{bad})
	var promotions atomic.Int64
	var invalidated []string
	cfg := testConfig(t, dir, src)
	cfg.Promote = func(system string, tun core.Predictor) uint64 {
		promotions.Add(1)
		return src.Promote(system, tun)
	}
	cfg.Invalidate = func(system string) int {
		invalidated = append(invalidated, system)
		return 7
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.RunOnce(context.Background())

	st := r.Stats().Systems["i7-2600K"]
	if promotions.Load() != 1 {
		t.Fatalf("promotions = %d, want exactly 1 (status %+v)", promotions.Load(), st)
	}
	if st.Generation != 2 || st.Promotions != 1 || st.Retrains != 1 || st.LastVerdict != "promote" {
		t.Fatalf("status = %+v", st)
	}
	if st.LastGenerationID == "" || st.LastPromotionUnix == 0 || st.InvalidatedPlans != 7 {
		t.Fatalf("promotion bookkeeping missing: %+v", st)
	}
	if len(invalidated) != 1 || invalidated[0] != "i7-2600K" {
		t.Fatalf("invalidated = %v, want exactly [i7-2600K]", invalidated)
	}
	if tun, err := src.Tuner(hw.I7_2600K()); err != nil || tun == bad {
		t.Fatalf("champion not replaced: tuner=%p err=%v", tun, err)
	}

	// The rows are consumed: a second pass must not retrain, let alone
	// promote again.
	r.RunOnce(context.Background())
	st = r.Stats().Systems["i7-2600K"]
	if st.Retrains != 1 || promotions.Load() != 1 || st.Generation != 2 {
		t.Fatalf("second pass re-ran: %+v, promotions %d", st, promotions.Load())
	}
	if got := r.Stats().Cycles; got != 2 {
		t.Fatalf("cycles = %d, want 2", got)
	}
}

// TestRetrainTrainingErrorKeepsChampion injects a training failure (an
// all-rectangular log — sampling yields no training instances) and
// proves the champion keeps serving, the failure is counted, and the
// poisoned rows are consumed rather than retried forever.
func TestRetrainTrainingErrorKeepsChampion(t *testing.T) {
	_, good, _ := fixtures(t)
	dir := t.TempDir()
	log, err := core.NewObservationLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	rect := plan.Instance{Rows: 300, Cols: 500, TSize: 200, DSize: 1}
	for i := 0; i < 12; i++ {
		obs := core.Observation{
			Inst:    rect,
			Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
			RTimeNs: 1e6 + float64(i),
			App:     "test",
		}
		if err := log.Append("i7-2600K", obs); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	src := NewSource(staticTunerSource{good})
	var promotions atomic.Int64
	cfg := testConfig(t, dir, src)
	cfg.Promote = func(system string, tun core.Predictor) uint64 {
		promotions.Add(1)
		return src.Promote(system, tun)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.RunOnce(context.Background())

	st := r.Stats().Systems["i7-2600K"]
	if st.Errors != 1 || st.Retrains != 1 || promotions.Load() != 0 {
		t.Fatalf("status = %+v, promotions %d", st, promotions.Load())
	}
	if !strings.HasPrefix(st.LastVerdict, "error:") {
		t.Fatalf("LastVerdict = %q, want an error verdict", st.LastVerdict)
	}
	if st.Generation != 1 {
		t.Fatalf("generation = %d, want the champion's 1", st.Generation)
	}
	if tun, err := src.Tuner(hw.I7_2600K()); err != nil || tun != good {
		t.Fatalf("champion must keep serving: tuner=%p err=%v", tun, err)
	}
	// Poisoned rows were consumed; the loop does not spin on them.
	r.RunOnce(context.Background())
	if st := r.Stats().Systems["i7-2600K"]; st.Retrains != 1 {
		t.Fatalf("poisoned rows retried: %+v", st)
	}
}

// TestRetrainCorruptRowTolerated injects a garbage line and a torn
// (truncated) row into an otherwise healthy log: the bad rows are
// counted in telemetry and training proceeds on the good rows.
func TestRetrainCorruptRowTolerated(t *testing.T) {
	_, _, bad := fixtures(t)
	dir := t.TempDir()
	seedLog(t, dir, 12)
	path := dir + string(os.PathSeparator) + "i7-2600K.csv"
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// One complete garbage line, then a torn row without its newline.
	if _, err := f.WriteString("corrupt,row,that,goes,nowhere\ni7-2600K,700,200,1,8,"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src := NewSource(staticTunerSource{bad})
	r, err := New(testConfig(t, dir, src))
	if err != nil {
		t.Fatal(err)
	}
	r.RunOnce(context.Background())

	st := r.Stats().Systems["i7-2600K"]
	if st.BadRows != 1 {
		t.Fatalf("bad rows = %d, want the 1 complete garbage line", st.BadRows)
	}
	if st.Promotions != 1 || st.LastVerdict != "promote" {
		t.Fatalf("corrupt row stalled the retrain: %+v", st)
	}
}

// TestRetrainRotationMidRead rotates the log between passes: consumed
// rows must never count again (no re-training on them), and rows in the
// replacement file count from scratch.
func TestRetrainRotationMidRead(t *testing.T) {
	_, good, _ := fixtures(t)
	dir := t.TempDir()
	seedLog(t, dir, 12)

	src := NewSource(staticTunerSource{good})
	r, err := New(testConfig(t, dir, src))
	if err != nil {
		t.Fatal(err)
	}
	r.RunOnce(context.Background())
	if st := r.Stats().Systems["i7-2600K"]; st.Retrains != 1 {
		t.Fatalf("first pass did not train: %+v", st)
	}

	// Rotate the consumed log aside (wavetrain -from's fold) and write a
	// below-threshold trickle into the fresh file.
	path := dir + string(os.PathSeparator) + "i7-2600K.csv"
	if err := os.Rename(path, path+".old"); err != nil {
		t.Fatal(err)
	}
	seedLog(t, dir, 4)
	r.RunOnce(context.Background())
	st := r.Stats().Systems["i7-2600K"]
	if st.Retrains != 1 {
		t.Fatalf("rotation re-triggered training on consumed rows: %+v", st)
	}
	if st.PendingRows != 4 {
		t.Fatalf("pending = %d, want only the 4 fresh rows", st.PendingRows)
	}

	// Crossing the threshold in the new file trains again — on the new
	// file's rows alone.
	seedLog(t, dir, 8)
	r.RunOnce(context.Background())
	if st := r.Stats().Systems["i7-2600K"]; st.Retrains != 2 {
		t.Fatalf("fresh rows did not train: %+v", st)
	}
}

// TestPromotionRacesTuneBurst hammers the serving path (source resolve
// + cache fill) from several goroutines while promotions and targeted
// invalidations land concurrently. Run under -race this is the
// promotion-atomicity proof: every lookup gets a complete plan from
// either the old or the new champion.
func TestPromotionRacesTuneBurst(t *testing.T) {
	sr, good, bad := fixtures(t)
	src := NewSource(staticTunerSource{bad})
	sys := hw.I7_2600K()
	cache := tunecache.NewSharded(256, 4, func(system string, inst plan.Instance) (tunecache.Plan, error) {
		tun, err := src.Tuner(sys)
		if err != nil {
			return tunecache.Plan{}, err
		}
		pred := tun.Predict(inst)
		rt, err := tun.RTimeFor(inst, pred)
		if err != nil {
			return tunecache.Plan{}, err
		}
		return tunecache.Plan{Serial: pred.Serial, Par: pred.Par, RTimeNs: rt}, nil
	})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				inst := sr.Instances[(i+g)%len(sr.Instances)].Inst
				if _, _, err := cache.Get(sys.Name, inst); err != nil {
					t.Errorf("Get during promotion: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			src.Promote(sys.Name, good)
		} else {
			src.Promote(sys.Name, bad)
		}
		cache.InvalidateSystem(sys.Name)
	}
	close(stop)
	wg.Wait()

	if got := src.Generation(sys.Name); got != 51 {
		t.Fatalf("generation = %d, want 51 after 50 promotions", got)
	}
	if _, _, err := cache.Get(sys.Name, sr.Instances[0].Inst); err != nil {
		t.Fatalf("post-burst lookup: %v", err)
	}
}

// TestRetrainerStartStopNotify exercises the loop lifecycle: Notify
// wakes it without waiting out the interval, Stop drains it, and a
// never-started retrainer stops cleanly.
func TestRetrainerStartStopNotify(t *testing.T) {
	_, good, _ := fixtures(t)
	src := NewSource(staticTunerSource{good})
	cfg := testConfig(t, t.TempDir(), src)
	cfg.Interval = time.Hour // only Notify can wake it in test time
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Notify("i7-2600K")
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Cycles == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Notify did not wake the loop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent

	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2.Stop() // never started: must not hang
}

// TestRetrainCrossKindChallenger promotes across backend kinds: a tree
// champion is beaten by a bilinear challenger when the config pins
// ChallengerKind, and the promoted predictor's kind is visible in the
// status and through the source's kind tracker.
func TestRetrainCrossKindChallenger(t *testing.T) {
	_, _, bad := fixtures(t)
	dir := t.TempDir()
	seedLog(t, dir, 24)

	src := NewSource(staticTunerSource{bad})
	cfg := testConfig(t, dir, src)
	cfg.ChallengerKind = core.KindBilinear
	cfg.Kind = src.Kind
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.RunOnce(context.Background())

	st := r.Stats().Systems["i7-2600K"]
	if st.LastVerdict != "promote" {
		t.Fatalf("verdict = %q, want promote (%+v)", st.LastVerdict, st)
	}
	if st.ModelKind != core.KindBilinear || st.LastChallengerKind != core.KindBilinear {
		t.Fatalf("kinds not tracked: %+v", st)
	}
	tun, err := src.Tuner(hw.I7_2600K())
	if err != nil {
		t.Fatal(err)
	}
	if tun.Kind() != core.KindBilinear {
		t.Fatalf("promoted champion kind = %q, want %q", tun.Kind(), core.KindBilinear)
	}
	if got := src.Kind("i7-2600K"); got != core.KindBilinear {
		t.Fatalf("source kind = %q, want %q", got, core.KindBilinear)
	}
}

// TestRetrainUnknownChallengerKindRejected pins the config validation.
func TestRetrainUnknownChallengerKindRejected(t *testing.T) {
	_, good, _ := fixtures(t)
	src := NewSource(staticTunerSource{good})
	cfg := testConfig(t, t.TempDir(), src)
	cfg.ChallengerKind = "quadratic"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "quadratic") {
		t.Fatalf("New must reject unknown challenger kind, got %v", err)
	}
}

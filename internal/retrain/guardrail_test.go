package retrain

import (
	"math"
	"strings"
	"testing"
)

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestDecideTable is the deterministic guardrail battery: every gate of
// the promotion decision exercised on synthetic error sets, no clocks,
// no goroutines. Promotion fires exactly when every gate passes.
func TestDecideTable(t *testing.T) {
	cases := []struct {
		name       string
		champion   []float64
		challenger []float64
		opts       GuardrailOptions
		promote    bool
		reason     string
	}{
		{
			name:       "clear win",
			champion:   repeat(1.0, 10),
			challenger: repeat(0.2, 10),
			promote:    true,
			reason:     "promote",
		},
		{
			name:       "clear loss",
			champion:   repeat(0.2, 10),
			challenger: repeat(1.0, 10),
			promote:    false,
			reason:     "insufficient-improvement",
		},
		{
			name:       "tie keeps champion",
			champion:   repeat(0.5, 10),
			challenger: repeat(0.5, 10),
			promote:    false,
			reason:     "insufficient-improvement",
		},
		{
			name:       "under-sampled refuses even a landslide",
			champion:   repeat(1.0, 3),
			challenger: repeat(0.01, 3),
			promote:    false,
			reason:     "undersampled",
		},
		{
			// The adversarial-noise case: the challenger loses 9 of 10
			// pairs but one lucky outlier drags its mean past the
			// improvement gate. The sign test must refuse it.
			name:       "adversarial noise blocked by sign test",
			champion:   repeat(1.0, 10),
			challenger: append(repeat(1.05, 9), 0.0),
			promote:    false,
			reason:     "noisy",
		},
		{
			name:       "marginal improvement below gate",
			champion:   repeat(1.0, 10),
			challenger: repeat(0.97, 10),
			promote:    false,
			reason:     "insufficient-improvement",
		},
		{
			name:       "unpaired inputs refused",
			champion:   repeat(1.0, 10),
			challenger: repeat(0.2, 9),
			promote:    false,
			reason:     "unpaired",
		},
		{
			name:       "NaN error refused",
			champion:   append(repeat(1.0, 9), math.NaN()),
			challenger: repeat(0.2, 10),
			promote:    false,
			reason:     "invalid",
		},
		{
			name:       "infinite error refused",
			champion:   repeat(1.0, 10),
			challenger: append(repeat(0.2, 9), math.Inf(1)),
			promote:    false,
			reason:     "invalid",
		},
		{
			name:       "negative error refused",
			champion:   repeat(1.0, 10),
			challenger: append(repeat(0.2, 9), -0.1),
			promote:    false,
			reason:     "invalid",
		},
		{
			name:       "perfect champion cannot be beaten",
			champion:   repeat(0.0, 10),
			challenger: repeat(0.0, 10),
			promote:    false,
			reason:     "champion-perfect",
		},
		{
			name:       "empty inputs undersampled",
			champion:   nil,
			challenger: nil,
			promote:    false,
			reason:     "undersampled",
		},
		{
			name:       "custom min-samples admits small sets",
			champion:   repeat(1.0, 3),
			challenger: repeat(0.2, 3),
			opts:       GuardrailOptions{MinSamples: 2},
			promote:    true,
			reason:     "promote",
		},
		{
			name:       "custom improvement gate",
			champion:   repeat(1.0, 10),
			challenger: repeat(0.8, 10),
			opts:       GuardrailOptions{MinImprovement: 0.3},
			promote:    false,
			reason:     "insufficient-improvement",
		},
		{
			name:       "stricter win rate blocks a split decision",
			champion:   []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
			challenger: []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 1.5, 1.5, 1.5},
			opts:       GuardrailOptions{MinWinRate: 0.9},
			promote:    false,
			reason:     "noisy",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := Decide(tc.champion, tc.challenger, tc.opts)
			if v.Promote != tc.promote || v.Reason != tc.reason {
				t.Fatalf("Decide = %+v, want promote=%t reason=%q", v, tc.promote, tc.reason)
			}
			if v.Promote && v.Reason != "promote" {
				t.Fatalf("promoting verdict must carry the promote reason: %+v", v)
			}
		})
	}
}

// TestDecideIsPure re-runs the same comparison and demands identical
// verdicts — the decision function must have no hidden state.
func TestDecideIsPure(t *testing.T) {
	champ := []float64{1.0, 0.9, 1.1, 0.8, 1.2, 1.0, 0.95, 1.05}
	chall := []float64{0.5, 0.4, 0.6, 0.3, 0.7, 0.5, 0.45, 0.55}
	v1 := Decide(champ, chall, GuardrailOptions{})
	v2 := Decide(champ, chall, GuardrailOptions{})
	if v1 != v2 {
		t.Fatalf("Decide not deterministic: %+v vs %+v", v1, v2)
	}
	if !v1.Promote {
		t.Fatalf("uniform halving of error must promote: %+v", v1)
	}
	if v1.WinRate != 1.0 {
		t.Fatalf("win rate = %v, want 1.0", v1.WinRate)
	}
	if v1.Improvement < 0.45 || v1.Improvement > 0.55 {
		t.Fatalf("improvement = %v, want about 0.5", v1.Improvement)
	}
	if !strings.Contains(v1.String(), "promote=true") {
		t.Fatalf("String() = %q", v1.String())
	}
}

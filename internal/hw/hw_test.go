package hw

import (
	"testing"
	"testing/quick"
)

func TestMissRateShape(t *testing.T) {
	// The tiling curve must fall from untiled to ~8-10 and rise again for
	// oversized tiles.
	if MissRate(1) != 1.0 {
		t.Error("untiled miss rate must be 1")
	}
	prev := MissRate(1)
	for _, ct := range []int{2, 4, 8, 10} {
		m := MissRate(ct)
		if m > prev {
			t.Errorf("miss rate must be non-increasing up to ct=10, rose at %d", ct)
		}
		prev = m
	}
	if MissRate(32) <= MissRate(10) {
		t.Error("oversized tiles must pay more than the sweet spot")
	}
}

func TestPointNsMonotoneInTsize(t *testing.T) {
	c := I7_2600K().CPU
	f := func(a, b uint16) bool {
		t1, t2 := float64(a%12000)+1, float64(b%12000)+1
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return c.PointNs(t1, 8, 16) <= c.PointNs(t2, 8, 16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemPenaltyGrowsWithElemSize(t *testing.T) {
	c := I3_540().CPU
	if c.MemPenaltyNs(4, 48) <= c.MemPenaltyNs(4, 16) {
		t.Error("larger elements must cost more memory time")
	}
}

func TestGPUWidth(t *testing.T) {
	if w := I3_540().GPUs[0].Width(); w != 480 {
		t.Errorf("GTX 480 width = %d, want 480 (15 CUs x 32)", w)
	}
	if w := I7_2600K().GPUs[0].Width(); w != 512 {
		t.Errorf("GTX 590 width = %d, want 512", w)
	}
	if w := I7_3820().GPUs[0].Width(); w != 448 {
		t.Errorf("Tesla width = %d, want 448", w)
	}
}

func TestPaddedPoints(t *testing.T) {
	g := I3_540().GPUs[0] // width 480
	for _, tc := range []struct{ in, want int }{
		{1, 480}, {480, 480}, {481, 960}, {960, 960}, {1000, 1440},
	} {
		if got := g.PaddedPoints(tc.in); got != tc.want {
			t.Errorf("PaddedPoints(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestEffFactorShrinksWithDsize(t *testing.T) {
	for _, s := range Systems() {
		for _, g := range s.GPUs {
			if g.EffFactor(5) >= g.EffFactor(1) {
				t.Errorf("%s/%s: dsize=5 must erode throughput", s.Name, g.Name)
			}
			if g.EffFactor(0) != g.BaseFactor {
				t.Errorf("%s/%s: dsize=0 must give the base factor", s.Name, g.Name)
			}
		}
	}
}

func TestKernelNsScaling(t *testing.T) {
	g := I7_2600K().GPUs[0]
	pi := I7_2600K().CPU.PerIterNs
	// Doubling tsize doubles kernel time; padding makes short diagonals
	// cost a full pass.
	a := g.KernelNs(512, 100, pi, 1)
	b := g.KernelNs(512, 200, pi, 1)
	if b != 2*a {
		t.Errorf("kernel time must scale linearly with tsize: %v vs %v", a, b)
	}
	if g.KernelNs(1, 100, pi, 1) != a {
		t.Error("a 1-point kernel must cost a full SIMT pass")
	}
}

func TestXferNs(t *testing.T) {
	l := LinkModel{LatencyNs: 1000, BytesPerNs: 2}
	if got := l.XferNs(4000); got != 3000 {
		t.Errorf("XferNs = %v, want 3000", got)
	}
	if got := l.XferNs(0); got != 1000 {
		t.Errorf("zero-byte transfer must still pay latency, got %v", got)
	}
}

func TestSystemsTable4(t *testing.T) {
	sys := Systems()
	if len(sys) != 3 {
		t.Fatalf("want 3 systems, got %d", len(sys))
	}
	// Table 4 row checks.
	if sys[0].Name != "i3-540" || len(sys[0].GPUs) != 1 {
		t.Error("i3-540 must be the single-GPU system")
	}
	if sys[1].Name != "i7-2600K" || sys[1].MaxGPUs() != 2 {
		t.Error("i7-2600K must expose two usable GPUs")
	}
	if sys[2].Name != "i7-3820" || sys[2].GPUs[0].CUs != 14 {
		t.Error("i7-3820 must carry 14-CU Teslas")
	}
	for _, s := range sys {
		if s.CPU.EffParallel <= 1 || s.CPU.EffParallel > float64(s.CPU.Cores) {
			t.Errorf("%s: effective parallelism %v out of range", s.Name, s.CPU.EffParallel)
		}
	}
}

func TestCPURelativeSpeeds(t *testing.T) {
	// The i3's cores must be the slowest and the i7-3820's the fastest —
	// this ordering drives the paper's per-system threshold differences.
	i3, i7a, i7b := I3_540().CPU, I7_2600K().CPU, I7_3820().CPU
	if !(i3.PerIterNs > i7a.PerIterNs && i7a.PerIterNs > i7b.PerIterNs) {
		t.Errorf("core speed ordering violated: %v, %v, %v",
			i3.PerIterNs, i7a.PerIterNs, i7b.PerIterNs)
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("i7-2600K"); !ok || s.Name != "i7-2600K" {
		t.Error("ByName failed for existing system")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must fail for unknown system")
	}
}

func TestMaxGPUsCap(t *testing.T) {
	s := I7_2600K()
	s.GPUs = append(s.GPUs, s.GPUs[0], s.GPUs[0])
	if s.MaxGPUs() != 2 {
		t.Error("gpu-count must cap at 2 like the paper")
	}
}

func TestStringer(t *testing.T) {
	if got := I3_540().String(); got == "" {
		t.Error("String must be non-empty")
	}
}

func TestWithGPUCount(t *testing.T) {
	wide := WithGPUCount(I7_2600K(), 4)
	if len(wide.GPUs) != 4 {
		t.Fatalf("want 4 GPUs, got %d", len(wide.GPUs))
	}
	if wide.MaxGPUs() != 2 {
		t.Error("tuning-space cap must stay at 2")
	}
	if got := WithGPUCount(I3_540(), 0); len(got.GPUs) != 1 {
		t.Error("n<1 must be a no-op")
	}
}

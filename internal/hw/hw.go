// Package hw defines the performance models of the heterogeneous systems
// the paper evaluates (Table 4). Real GPUs are unavailable in this
// reproduction, so each machine is described by a small set of calibrated
// constants from which the simulator derives virtual execution times.
//
// Calibration targets the paper's qualitative shapes rather than absolute
// numbers: the i3's slow cores make GPU offload profitable at lower dim and
// tsize thresholds than on the i7s; growing dsize raises those thresholds
// on every system; maximum speedup over the tuned serial baseline lands
// near 20x with single-digit averages; and GPU-only execution loses to
// CPU-only execution on average on the fast-CPU i7 systems. The
// calibration tests in this package and in internal/experiments pin these
// shapes.
package hw

import "fmt"

// CPUModel describes a multicore CPU.
type CPUModel struct {
	// Name is the marketing name, e.g. "i7-2600K".
	Name string
	// FreqMHz and MemGB mirror the paper's Table 4 and are reporting-only.
	FreqMHz int
	MemGB   float64
	// Cores is the hyper-threaded (logical) core count as listed in
	// Table 4.
	Cores int
	// PerIterNs is the execution time of one synthetic-kernel iteration on
	// a single core: the unit of the paper's tsize scale on this machine.
	PerIterNs float64
	// EffParallel is the effective parallel speedup over one core when all
	// logical cores are busy (hyper-threads contribute fractionally).
	EffParallel float64
	// MemLatencyNs scales the per-point memory penalty that cpu-tile
	// mitigates: small tiles thrash the cache, large tiles reuse it.
	MemLatencyNs float64
	// TileBarrierNs is the synchronization cost per tile-diagonal of the
	// parallel tiled executor.
	TileBarrierNs float64
}

// MissRate returns the modeled cache-miss fraction for square tiles of
// side ct. It falls steeply from untiled (ct=1) execution to good reuse
// around ct=8..10 and creeps back up for tiles too large for the cache,
// reproducing the classical tiling curve the paper cites ([10], [13]).
func MissRate(ct int) float64 {
	switch {
	case ct <= 1:
		return 1.0
	case ct == 2:
		return 0.55
	case ct == 3:
		return 0.42
	case ct == 4:
		return 0.33
	case ct <= 6:
		return 0.27
	case ct <= 8:
		return 0.22
	case ct <= 12:
		return 0.20
	case ct <= 24:
		return 0.24
	default:
		return 0.32
	}
}

// MemPenaltyNs returns the per-point memory cost for tile side ct and the
// given element size in bytes.
func (c CPUModel) MemPenaltyNs(ct, elemBytes int) float64 {
	return MissRate(ct) * (c.MemLatencyNs + 0.15*float64(elemBytes))
}

// PointNs returns the single-core time to compute one point of
// granularity tsize with elements of elemBytes bytes under tile side ct.
func (c CPUModel) PointNs(tsize float64, ct, elemBytes int) float64 {
	return tsize*c.PerIterNs + c.MemPenaltyNs(ct, elemBytes)
}

// GPUModel describes one GPU device.
type GPUModel struct {
	// Name is the device name, e.g. "GTX 480".
	Name string
	// FreqMHz and MemGB mirror Table 4 and are reporting-only.
	FreqMHz int
	MemGB   float64
	// CUs is the compute-unit count from Table 4; Lanes the SIMT width
	// per unit. Width = CUs*Lanes work-items run concurrently.
	CUs, Lanes int
	// BaseFactor is the device's fully-occupied throughput relative to a
	// single CPU core of the host system at dsize=0; effective throughput
	// shrinks with dsize (uncoalesced diagonal-major accesses).
	BaseFactor float64
	// DSizePenalty controls how quickly growing element sizes erode
	// effective throughput: F(dsize) = BaseFactor / (1+DSizePenalty*dsize).
	DSizePenalty float64
	// LaunchNs is the host-side cost of one kernel invocation.
	LaunchNs float64
	// StartupNs is the one-time context creation + JIT cost, paid once per
	// device that is actually used ("the cost of starting a GPU").
	StartupNs float64
	// BarrierNs is the cost of one intra-work-group synchronization step,
	// incurred by GPU tiling.
	BarrierNs float64
}

// Width returns the number of concurrently executing work-items.
func (g GPUModel) Width() int { return g.CUs * g.Lanes }

// EffFactor returns the effective throughput factor (vs one host CPU
// core) for elements of the given dsize.
func (g GPUModel) EffFactor(dsize int) float64 {
	return g.BaseFactor / (1 + g.DSizePenalty*float64(dsize))
}

// PaddedPoints returns points rounded up to a whole number of SIMT passes:
// a diagonal shorter than the device width still occupies a full pass.
func (g GPUModel) PaddedPoints(points int) int {
	w := g.Width()
	passes := (points + w - 1) / w
	return passes * w
}

// KernelNs returns the on-device execution time of a kernel covering the
// given number of points at granularity tsize, excluding launch overhead.
// cpuPerIterNs is the host CPU's per-iteration time, the tsize unit.
func (g GPUModel) KernelNs(points int, tsize, cpuPerIterNs float64, dsize int) float64 {
	return float64(g.PaddedPoints(points)) * tsize * cpuPerIterNs / g.EffFactor(dsize)
}

// LinkModel describes the PCIe interconnect shared by all devices.
type LinkModel struct {
	// LatencyNs is the fixed per-transfer cost.
	LatencyNs float64
	// BytesPerNs is the sustained bandwidth (1 byte/ns = 1 GB/s).
	BytesPerNs float64
}

// XferNs returns the time to move the given number of bytes.
func (l LinkModel) XferNs(bytes int) float64 {
	return l.LatencyNs + float64(bytes)/l.BytesPerNs
}

// System is one experimental platform: a CPU, its GPUs and their link.
type System struct {
	Name string
	CPU  CPUModel
	GPUs []GPUModel
	Link LinkModel
}

// MaxGPUs returns the number of GPUs the tuner may use; like the paper we
// cap multi-GPU execution at two devices.
func (s System) MaxGPUs() int {
	if len(s.GPUs) > 2 {
		return 2
	}
	return len(s.GPUs)
}

// String implements fmt.Stringer.
func (s System) String() string {
	return fmt.Sprintf("%s (%d cores, %d GPU(s))", s.Name, s.CPU.Cores, len(s.GPUs))
}

// I3_540 models the paper's slow-CPU, single fast GPU system:
// an Intel i3-540 (4 HT cores at the listed 1200 MHz) with one
// GeForce GTX 480 (15 CUs). Its slow cores make offload profitable at the
// paper's lower thresholds (tsize >= ~100 from dim >= ~1100 at 16-byte
// elements).
func I3_540() System {
	return System{
		Name: "i3-540",
		CPU: CPUModel{
			Name: "i3-540", FreqMHz: 1200, MemGB: 4, Cores: 4,
			PerIterNs: 5.0, EffParallel: 2.6,
			MemLatencyNs: 4.0, TileBarrierNs: 2500,
		},
		GPUs: []GPUModel{{
			Name: "GTX 480", FreqMHz: 1401, MemGB: 1.6, CUs: 15, Lanes: 32,
			BaseFactor: 26, DSizePenalty: 0.45,
			LaunchNs: 10e3, StartupNs: 120e6, BarrierNs: 1200,
		}},
		Link: LinkModel{LatencyNs: 10e3, BytesPerNs: 3.0},
	}
}

// I7_2600K models the fast-CPU, dual-GPU system: an i7-2600K (8 HT cores)
// with GTX 590 dies. The paper lists 4x GTX 590 but explores gpu-count in
// {0,1,2}; we expose two dies.
func I7_2600K() System {
	gpu := GPUModel{
		Name: "GTX 590", FreqMHz: 1215, MemGB: 1.6, CUs: 16, Lanes: 32,
		BaseFactor: 13.5, DSizePenalty: 0.2,
		LaunchNs: 10e3, StartupNs: 120e6, BarrierNs: 1000,
	}
	return System{
		Name: "i7-2600K",
		CPU: CPUModel{
			Name: "i7-2600K", FreqMHz: 1600, MemGB: 8, Cores: 8,
			PerIterNs: 2.0, EffParallel: 5.2,
			MemLatencyNs: 3.5, TileBarrierNs: 2000,
		},
		GPUs: []GPUModel{gpu, gpu},
		Link: LinkModel{LatencyNs: 8e3, BytesPerNs: 4.0},
	}
}

// I7_3820 models the fastest-CPU system: an i7-3820 (8 HT cores at
// 3601 MHz) with Tesla C2070 and C2075 accelerators (14 CUs each). Fast
// cores plus moderate GPUs give this system the paper's highest offload
// thresholds.
func I7_3820() System {
	mk := func(name string) GPUModel {
		return GPUModel{
			Name: name, FreqMHz: 1147, MemGB: 6.4, CUs: 14, Lanes: 32,
			BaseFactor: 11, DSizePenalty: 0.2,
			LaunchNs: 8e3, StartupNs: 100e6, BarrierNs: 1000,
		}
	}
	return System{
		Name: "i7-3820",
		CPU: CPUModel{
			Name: "i7-3820", FreqMHz: 3601, MemGB: 16, Cores: 8,
			PerIterNs: 1.6, EffParallel: 5.4,
			MemLatencyNs: 3.0, TileBarrierNs: 1800,
		},
		GPUs: []GPUModel{mk("Tesla C2070"), mk("Tesla C2075")},
		Link: LinkModel{LatencyNs: 8e3, BytesPerNs: 5.0},
	}
}

// Systems returns the paper's three experimental platforms in Table 4
// order.
func Systems() []System {
	return []System{I3_540(), I7_2600K(), I7_3820()}
}

// ByName returns the system with the given name, or false.
func ByName(name string) (System, bool) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, true
		}
	}
	return System{}, false
}

// WithGPUCount returns a copy of sys equipped with n replicas of its
// first GPU — the platform for the paper's future-work extension of
// "incorporating more than two GPUs". The copy's MaxGPUs cap still
// reports at most 2 (the tuning-space encoding is unchanged); wider runs
// request extra devices explicitly through the engine options.
func WithGPUCount(sys System, n int) System {
	if n < 1 || len(sys.GPUs) == 0 {
		return sys
	}
	gpus := make([]GPUModel, n)
	for i := range gpus {
		gpus[i] = sys.GPUs[0]
	}
	sys.GPUs = gpus
	return sys
}

package hw

// LaunchDurationNs returns the full modeled duration of one kernel launch:
// host launch overhead, SIMT compute (optionally inflated by GPU-tile
// serialization) and intra-work-group barrier steps. It is the single
// source of truth shared by the simulated OpenCL runtime and the analytic
// estimator, so the two can never diverge.
func (g GPUModel) LaunchDurationNs(cpu CPUModel, points int, tsize float64, dsize, syncSteps int, inflate float64) float64 {
	if inflate <= 0 {
		inflate = 1
	}
	return g.LaunchNs + g.KernelNs(points, tsize, cpu.PerIterNs, dsize)*inflate +
		float64(syncSteps)*g.BarrierNs
}

package experiments

// Extensions beyond the paper's evaluation, implementing its stated
// future work: scaling past two GPUs and tuning at runtime.

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/report"
)

// ScalingRow is the modeled speedup of one device count.
type ScalingRow struct {
	GPUs    int
	RTimeNs float64
	Speedup float64 // over the serial baseline
}

// ExtGPUScaling runs the multi-GPU scaling study: a coarse-grained large
// instance on the i7-2600K widened to maxGPUs devices, swept from CPU-only
// through every device count.
func ExtGPUScaling(maxGPUs int) ([]ScalingRow, error) {
	if maxGPUs < 2 {
		maxGPUs = 4
	}
	sys := hw.WithGPUCount(hw.I7_2600K(), maxGPUs)
	inst := plan.Instance{Dim: 2700, TSize: 12000, DSize: 1}
	serial := engine.SerialNs(sys, inst)
	band := inst.Dim - 100
	halo := 24

	var rows []ScalingRow
	cpu, err := engine.Estimate(sys, inst, engine.CPUOnlyParams(8), engine.Options{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ScalingRow{GPUs: 0, RTimeNs: cpu.RTimeNs, Speedup: serial / cpu.RTimeNs})

	one, err := engine.Estimate(sys, inst,
		plan.Params{CPUTile: 8, Band: band, GPUTile: 1, Halo: -1}, engine.Options{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ScalingRow{GPUs: 1, RTimeNs: one.RTimeNs, Speedup: serial / one.RTimeNs})

	par := plan.Params{CPUTile: 8, Band: band, GPUTile: 1, Halo: halo}
	for n := 2; n <= maxGPUs; n++ {
		res, err := engine.Estimate(sys, inst, par, engine.Options{GPUs: n})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{GPUs: n, RTimeNs: res.RTimeNs, Speedup: serial / res.RTimeNs})
	}
	return rows, nil
}

// RenderScaling prints the scaling study.
func RenderScaling(rows []ScalingRow) string {
	var b strings.Builder
	b.WriteString("Extension: multi-GPU scaling (dim=2700 tsize=12000 dsize=1, i7-2600K widened)\n")
	t := report.NewTable("gpus", "rtime(s)", "speedup over serial")
	for _, r := range rows {
		t.Add(r.GPUs, r.RTimeNs/1e9, r.Speedup)
	}
	b.WriteString(t.String())
	return b.String()
}

// OnlineRow compares offline and runtime-refined tuning on one instance.
type OnlineRow struct {
	Inst      plan.Instance
	OfflineNs float64
	OnlineNs  float64
	Probes    int
	BestNs    float64 // exhaustive optimum, for efficiency accounting
}

// ExtOnline evaluates the runtime tuner against the offline tuner on the
// Nash instance grid of the context.
func (c *Context) ExtOnline(sys hw.System) ([]OnlineRow, error) {
	t, err := c.Tuner(sys)
	if err != nil {
		return nil, err
	}
	online := core.NewOnlineTuner(t)
	var rows []OnlineRow
	for _, inst := range c.NashInstances() {
		offPred := t.Predict(inst)
		offNs, err := t.RTimeFor(inst, offPred)
		if err != nil {
			return nil, err
		}
		_, st, err := online.Refine(inst)
		if err != nil {
			return nil, err
		}
		e, err := core.EvaluateInstance(t, c.Cfg.Space, inst)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OnlineRow{
			Inst: inst, OfflineNs: offNs, OnlineNs: st.FinalNs,
			Probes: st.Probes, BestNs: e.BestNs,
		})
	}
	return rows, nil
}

// RenderOnline prints the comparison.
func RenderOnline(sys hw.System, rows []OnlineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: runtime tuning on %s (Nash)\n", sys.Name)
	t := report.NewTable("dim", "tsize", "offline(s)", "online(s)", "probes", "exhaustive(s)")
	for _, r := range rows {
		t.Add(r.Inst.Dim, r.Inst.TSize, r.OfflineNs/1e9, r.OnlineNs/1e9, r.Probes, r.BestNs/1e9)
	}
	b.WriteString(t.String())
	return b.String()
}

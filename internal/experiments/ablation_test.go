package experiments

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestAblateGPUTileConfirmsPaperFinding(t *testing.T) {
	// Section 4.1.1: "GPU tiling was not beneficial in our search space".
	// Restricting gpu-tile to 1 must cost (almost) nothing at the optima.
	c := ctx(t)
	rows, err := c.AblateGPUTile(hw.I7_2600K())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no ablation rows")
	}
	if p := MeanPenalty(rows); p > 1.01 {
		t.Errorf("forcing gpu-tile=1 costs %.3fx on average; the paper found tiling useless", p)
	}
}

func TestAblateHaloShowsTuningValue(t *testing.T) {
	// Halo tuning must matter somewhere: restricting to halo<=0 should
	// hurt at least one instance measurably (the communication/
	// recomputation trade-off is real).
	c := ctx(t)
	rows, err := c.AblateHalo(hw.I7_2600K())
	if err != nil {
		t.Fatal(err)
	}
	if MaxPenalty(rows) < 1.02 {
		t.Errorf("halo ablation max penalty %.3fx; the tunable appears worthless",
			MaxPenalty(rows))
	}
	if s := RenderAblation("halo<=0", hw.I7_2600K(), rows); !strings.Contains(s, "penalty") {
		t.Error("render incomplete")
	}
}

func TestAblateSmoothing(t *testing.T) {
	c := ctx(t)
	res, err := c.AblateSmoothing(hw.I7_2600K())
	if err != nil {
		t.Fatal(err)
	}
	if res.WithSmoothing <= 0 || res.WithoutSmoothing <= 0 {
		t.Fatalf("degenerate accuracies: %+v", res)
	}
	// No direction asserted (smoothing can help or hurt slightly); both
	// configurations must remain usable.
	if res.WithSmoothing < 0.5 || res.WithoutSmoothing < 0.5 {
		t.Errorf("halo CV accuracy collapsed: %+v", res)
	}
}

func TestAblateQualityWindow(t *testing.T) {
	c := ctx(t)
	res, err := c.AblateQualityWindow(hw.I7_2600K())
	if err != nil {
		t.Fatal(err)
	}
	// The window exists because unfiltered top-K rows inject bad
	// decisions; with it, efficiency must not be (meaningfully) worse.
	if res.WithWindow < res.WithoutWindow-0.05 {
		t.Errorf("quality window hurt efficiency: with %.3f vs without %.3f",
			res.WithWindow, res.WithoutWindow)
	}
}

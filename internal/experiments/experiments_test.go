package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/plan"
)

// sharedCtx caches the Quick-config searches across all tests in this
// package (they are the expensive part).
var (
	sharedOnce sync.Once
	sharedCtx  *Context
)

func ctx(t *testing.T) *Context {
	t.Helper()
	sharedOnce.Do(func() {
		cfg := Quick()
		sharedCtx = NewContext(cfg)
	})
	return sharedCtx
}

func TestFig1Profile(t *testing.T) {
	s := Fig1(4)
	if !strings.Contains(s, "****") {
		t.Error("profile must peak at dim stars")
	}
	if strings.Count(s, "\n") != 8 { // title + 7 diagonals
		t.Errorf("expected 7 iterations for dim=4:\n%s", s)
	}
}

func TestFig2ThreePhase(t *testing.T) {
	s, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase 1", "phase 2", "phase 3", "G"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 2 missing %q", want)
		}
	}
	// The grid must contain exactly 400 phase markers.
	marks := strings.Count(s, "1") + strings.Count(s, "G") + strings.Count(s, "3")
	if marks < 400 {
		t.Errorf("grid markers = %d, want >= 400", marks)
	}
}

func TestFig3HaloPartition(t *testing.T) {
	s, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "X") {
		t.Error("Figure 3 must show a redundant overlap region")
	}
	if !strings.Contains(s, "0") || !strings.Contains(s, "1") {
		t.Error("Figure 3 must show both devices")
	}
}

func TestTables(t *testing.T) {
	if s := Table3(Quick().Space); !strings.Contains(s, "cpu-tile") {
		t.Error("Table 3 incomplete")
	}
	s := Table4(hw.Systems())
	for _, name := range []string{"i3-540", "i7-2600K", "i7-3820", "GTX 480", "Tesla"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 4 missing %s", name)
		}
	}
}

func TestFig5HeatmapShapes(t *testing.T) {
	c := ctx(t)
	// Calibration: coarse-grained large instances offload, fine small
	// ones do not, on every system.
	for _, sys := range c.Cfg.Systems {
		d1, err := c.Fig5(sys, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !d1.BandMap.Complete() {
			t.Errorf("%s: incomplete band map", sys.Name)
		}
		band, _ := d1.BandMap.Get(2700, 12000)
		if band < 0 {
			t.Errorf("%s: dim=2700 tsize=12000 dsize=1 must use the GPU", sys.Name)
		}
		bandSmall, _ := d1.BandMap.Get(500, 10)
		if bandSmall >= 0 {
			t.Errorf("%s: dim=500 tsize=10 must stay on the CPU", sys.Name)
		}
		if r := d1.Render(); !strings.Contains(r, "best band") {
			t.Error("render missing band map")
		}
	}
}

func TestFig5ThresholdOrdering(t *testing.T) {
	c := ctx(t)
	// The slow-CPU i3 must offload at a tsize threshold no higher than
	// the fast-CPU i7 systems (paper Section 4.1.1).
	i3, err := c.Fig5(hw.I3_540(), 1)
	if err != nil {
		t.Fatal(err)
	}
	i7, err := c.Fig5(hw.I7_2600K(), 1)
	if err != nil {
		t.Fatal(err)
	}
	thI3 := i3.GPUThreshold()
	thI7 := i7.GPUThreshold()
	for _, dim := range []int{1900, 2700} {
		a, b := thI3[dim], thI7[dim]
		if a < 0 || b < 0 {
			t.Fatalf("dim=%d: no GPU threshold found (i3=%v i7=%v)", dim, a, b)
		}
		if a > b {
			t.Errorf("dim=%d: i3 threshold %v must be <= i7 threshold %v", dim, a, b)
		}
	}
}

func TestFig5DsizeRaisesThreshold(t *testing.T) {
	c := ctx(t)
	for _, sys := range c.Cfg.Systems {
		d1, err := c.Fig5(sys, 1)
		if err != nil {
			t.Fatal(err)
		}
		d5, err := c.Fig5(sys, 5)
		if err != nil {
			t.Fatal(err)
		}
		t1, t5 := d1.GPUThreshold(), d5.GPUThreshold()
		// At dim=1900, 48-byte elements must not lower the offload
		// threshold.
		a, b := t1[1900], t5[1900]
		if a >= 0 && b >= 0 && b < a {
			t.Errorf("%s: dsize=5 threshold %v below dsize=1 threshold %v", sys.Name, b, a)
		}
	}
}

func TestFig6BaselineShapes(t *testing.T) {
	c := ctx(t)
	rows, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 systems, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Best < r.CPUOnly || r.Best < r.GPUOnly {
			t.Errorf("%s: exhaustive best must dominate both baselines (%+v)", r.Sys.Name, r)
		}
		if r.Best <= 1 {
			t.Errorf("%s: best speedup %v must exceed serial", r.Sys.Name, r.Best)
		}
	}
	// Paper: on the i7 systems, GPU-only averages worse than CPU-only.
	for _, r := range rows {
		if strings.HasPrefix(r.Sys.Name, "i7") && r.GPUOnly >= r.CPUOnly {
			t.Errorf("%s: GPU-only (%v) must average below CPU-only (%v)",
				r.Sys.Name, r.GPUOnly, r.CPUOnly)
		}
	}
	if s := RenderFig6(rows); !strings.Contains(s, "GPU only") {
		t.Error("render incomplete")
	}
}

func TestFig7AverageGap(t *testing.T) {
	c := ctx(t)
	rows, err := c.Fig7(hw.I7_2600K(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// The best point must beat the average configuration substantially
	// (paper: 1.5-2x for dsize=1).
	var ratioSum float64
	n := 0
	for _, r := range rows {
		if r.BerSec <= 0 || r.AvgSec <= 0 {
			continue
		}
		ratioSum += r.AvgSec / r.BerSec
		n++
	}
	avgRatio := ratioSum / float64(n)
	if avgRatio < 1.2 {
		t.Errorf("avg/ber = %.2f; tuning must matter (paper: 1.5-2x)", avgRatio)
	}
	if s := RenderFig7(hw.I7_2600K(), 1, rows); !strings.Contains(s, "ber(s)") {
		t.Error("render incomplete")
	}
}

func TestFig8ViolinShapes(t *testing.T) {
	c := ctx(t)
	vs, err := c.Fig8(hw.I7_2600K(), []int{1100, 2700}, []int{1}, []float64{100, 12000})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("want 4 violins, got %d", len(vs))
	}
	byKey := map[[2]int]Fig8Violin{}
	for _, v := range vs {
		byKey[[2]int{v.Inst.Dim, int(v.Inst.TSize)}] = v
	}
	// Large coarse instances have many near-optimal configurations (flat
	// base); small fine ones have a sharp optimum.
	flat := byKey[[2]int{2700, 12000}].FlatBase
	sharp := byKey[[2]int{1100, 100}].FlatBase
	if flat <= sharp {
		t.Errorf("flat-base ordering violated: coarse %.2f vs fine %.2f", flat, sharp)
	}
	if s := RenderFig8(hw.I7_2600K(), vs); !strings.Contains(s, "med=") {
		t.Error("render incomplete")
	}
}

func TestFig9ModelTree(t *testing.T) {
	c := ctx(t)
	s, err := c.Fig9(hw.I7_2600K())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "LM1") {
		t.Error("Figure 9 must contain at least one linear model")
	}
	if !strings.Contains(s, "halo =") {
		t.Error("Figure 9 must render halo equations")
	}
	if !strings.Contains(s, "cross-validated accuracies") {
		t.Error("Figure 9 must report model accuracies")
	}
}

func TestFig10AutotuneQuality(t *testing.T) {
	c := ctx(t)
	rows, err := c.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 systems, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Efficiency < 0.7 {
			t.Errorf("%s: tuner efficiency %.2f too low (paper ~0.98)", r.Sys.Name, r.Efficiency)
		}
		if r.ExhaustiveSpeedup <= 1 {
			t.Errorf("%s: exhaustive speedup must exceed serial", r.Sys.Name)
		}
	}
	if s := RenderFig10(rows); !strings.Contains(s, "efficiency") {
		t.Error("render incomplete")
	}
	if s := RenderFig11(rows); !strings.Contains(s, "auto/ber") {
		t.Error("Figure 11 render incomplete")
	}
}

func TestSeqCompareStaysOnCPU(t *testing.T) {
	c := ctx(t)
	res, err := c.SeqCompare()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.AllCPU {
			t.Errorf("%s: fine-grained sequence comparison must stay on the CPU "+
				"(paper: band=-1 for all tsize<100); got %v", r.Sys.Name, r.Preds)
		}
	}
}

func TestHeadlineNumbers(t *testing.T) {
	c := ctx(t)
	h, err := c.ComputeHeadline()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: max 20x, average 7.8x, 98% efficiency. The
	// shape gates below allow the simulated substitution latitude while
	// pinning the order of magnitude.
	if h.MaxSpeedup < 10 || h.MaxSpeedup > 40 {
		t.Errorf("max speedup %.1f outside [10,40] (paper ~20x)", h.MaxSpeedup)
	}
	if h.AvgSpeedup < 3 || h.AvgSpeedup > 15 {
		t.Errorf("avg speedup %.1f outside [3,15] (paper 7.8x)", h.AvgSpeedup)
	}
	if h.TunerEfficiency < 0.8 {
		t.Errorf("tuner efficiency %.2f below 0.8 (paper 0.98)", h.TunerEfficiency)
	}
	if !h.SeqAllCPU {
		t.Error("sequence comparison must stay on the CPU")
	}
	if s := h.Render(); !strings.Contains(s, "paper") {
		t.Error("headline render incomplete")
	}
}

func TestBaselineGPUOnlyHelper(t *testing.T) {
	ns, err := baselineGPUOnly(hw.I3_540(), plan.Instance{Dim: 500, TSize: 100, DSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ns <= 0 {
		t.Error("GPU-only baseline must be positive")
	}
}

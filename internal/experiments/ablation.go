package experiments

// Ablation studies for the design choices the paper (and this
// reproduction) make: whether GPU tiling ever pays, how much halo tuning
// is worth over the naive swap-every-diagonal scheme, whether M5
// smoothing helps the tuner's targets, and whether the training-set
// quality window matters.

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/plan"
	"repro/internal/report"
)

// AblationRow compares a restricted search against the full one.
type AblationRow struct {
	Inst plan.Instance
	// FullNs is the optimum of the unrestricted space; RestrictedNs of
	// the ablated space.
	FullNs       float64
	RestrictedNs float64
}

// Penalty returns how much slower the ablated optimum is.
func (r AblationRow) Penalty() float64 {
	if r.FullNs <= 0 {
		return 0
	}
	return r.RestrictedNs / r.FullNs
}

// AblateGPUTile measures the cost of forcing gpu-tile=1 everywhere. The
// paper found tiling "was not beneficial in our search space", so the
// penalty should be ~1.0 — this ablation verifies that the reproduction
// agrees rather than assuming it.
func (c *Context) AblateGPUTile(sys hw.System) ([]AblationRow, error) {
	return c.ablate(sys, func(p plan.Params) bool { return p.GPUTile == 1 })
}

// AblateHalo measures the cost of forcing halo<=0 (single GPU or
// swap-every-diagonal): how much performance the halo tunable buys.
func (c *Context) AblateHalo(sys hw.System) ([]AblationRow, error) {
	return c.ablate(sys, func(p plan.Params) bool { return p.Halo <= 0 })
}

// ablate recomputes per-instance optima under a configuration filter.
func (c *Context) ablate(sys hw.System, keep func(plan.Params) bool) ([]AblationRow, error) {
	sr, err := c.Search(sys)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for i := range sr.Instances {
		ir := &sr.Instances[i]
		full, ok := ir.Best()
		if !ok {
			continue
		}
		var restricted float64
		found := false
		for _, p := range ir.Points {
			if p.Censored || !keep(p.Par) {
				continue
			}
			if !found || p.RTimeNs < restricted {
				restricted = p.RTimeNs
				found = true
			}
		}
		if !found {
			continue
		}
		rows = append(rows, AblationRow{Inst: ir.Inst, FullNs: full.RTimeNs, RestrictedNs: restricted})
	}
	return rows, nil
}

// MeanPenalty averages the ablation penalties.
func MeanPenalty(rows []AblationRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range rows {
		s += r.Penalty()
	}
	return s / float64(len(rows))
}

// MaxPenalty returns the worst-case ablation penalty.
func MaxPenalty(rows []AblationRow) float64 {
	worst := 0.0
	for _, r := range rows {
		if p := r.Penalty(); p > worst {
			worst = p
		}
	}
	return worst
}

// RenderAblation prints an ablation summary.
func RenderAblation(name string, sys hw.System, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation %s on %s: mean penalty %.3fx, max %.3fx over %d instances\n",
		name, sys.Name, MeanPenalty(rows), MaxPenalty(rows), len(rows))
	t := report.NewTable("dim", "tsize", "dsize", "full(s)", "restricted(s)", "penalty")
	for _, r := range rows {
		if r.Penalty() < 1.02 {
			continue // only print instances where the ablation bites
		}
		t.Add(r.Inst.Dim, r.Inst.TSize, r.Inst.DSize, r.FullNs/1e9, r.RestrictedNs/1e9, r.Penalty())
	}
	b.WriteString(t.String())
	return b.String()
}

// SmoothingAblation reports the tuner's cross-validated halo accuracy
// with and without M5 smoothing.
type SmoothingAblation struct {
	WithSmoothing    float64
	WithoutSmoothing float64
}

// AblateSmoothing cross-validates the halo target under both M5
// configurations on the system's training set.
func (c *Context) AblateSmoothing(sys hw.System) (SmoothingAblation, error) {
	sr, err := c.Search(sys)
	if err != nil {
		return SmoothingAblation{}, err
	}
	tr, err := core.BuildTraining(sr, c.Cfg.TrainOpts)
	if err != nil {
		return SmoothingAblation{}, err
	}
	var out SmoothingAblation
	if tr.Halo.Len() < 10 {
		return out, fmt.Errorf("experiments: halo training set too small (%d rows)", tr.Halo.Len())
	}
	smooth := ml.DefaultM5Options()
	rough := smooth
	rough.Smooth = false
	out.WithSmoothing, err = ml.CrossValidateAccuracy(tr.Halo, 5, 1, 8, 0.4,
		func(train *ml.Dataset) ml.Model { return ml.FitM5(train, smooth) })
	if err != nil {
		return out, err
	}
	out.WithoutSmoothing, err = ml.CrossValidateAccuracy(tr.Halo, 5, 1, 8, 0.4,
		func(train *ml.Dataset) ml.Model { return ml.FitM5(train, rough) })
	return out, err
}

// QualityWindowAblation compares tuner efficiency with and without the
// training-set quality window.
type QualityWindowAblation struct {
	WithWindow    float64
	WithoutWindow float64
}

// AblateQualityWindow trains two tuners on the system — one with the
// default 1.5x quality window, one accepting all top-K points — and
// compares their Nash efficiency.
func (c *Context) AblateQualityWindow(sys hw.System) (QualityWindowAblation, error) {
	sr, err := c.Search(sys)
	if err != nil {
		return QualityWindowAblation{}, err
	}
	insts := c.NashInstances()
	eff := func(opts core.TrainOptions) (float64, error) {
		t, err := core.Train(sr, opts)
		if err != nil {
			return 0, err
		}
		points, err := core.Evaluate(t, c.Cfg.Space, insts)
		if err != nil {
			return 0, err
		}
		return core.MeanEfficiency(points), nil
	}
	var out QualityWindowAblation
	withOpts := c.Cfg.TrainOpts
	if out.WithWindow, err = eff(withOpts); err != nil {
		return out, err
	}
	withoutOpts := withOpts
	withoutOpts.QualityWindow = 1e9 // effectively unfiltered
	out.WithoutWindow, err = eff(withoutOpts)
	return out, err
}

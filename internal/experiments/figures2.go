package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/plan"
	"repro/internal/report"
	"repro/internal/stats"
)

// ---- Figure 7: best exhaustive runtime vs average configuration ----

// Fig7Row is one dim-tsize group of the average-case comparison.
type Fig7Row struct {
	Dim    int
	TSize  float64
	DSize  int
	BerSec float64 // best exhaustive runtime
	AvgSec float64 // mean over all uncensored configurations
	SDSec  float64
	// Excluded counts configurations censored by the 90s threshold
	// (the paper's "points excluded from the average").
	Excluded int
}

// Fig7 computes the average-case comparison for one system and dsize.
func (c *Context) Fig7(sys hw.System, dsize int) ([]Fig7Row, error) {
	sr, err := c.Search(sys)
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for i := range sr.Instances {
		ir := &sr.Instances[i]
		if ir.Inst.DSize != dsize {
			continue
		}
		xs := ir.Uncensored()
		row := Fig7Row{Dim: ir.Inst.Dim, TSize: ir.Inst.TSize, DSize: dsize,
			Excluded: len(ir.Points) - len(xs)}
		if best, ok := ir.Best(); ok {
			row.BerSec = best.RTimeNs / 1e9
		}
		if len(xs) > 0 {
			row.AvgSec = stats.Mean(xs) / 1e9
			row.SDSec = stats.StdDev(xs) / 1e9
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig7 prints the group table.
func RenderFig7(sys hw.System, dsize int, rows []Fig7Row) string {
	t := report.NewTable("dim", "tsize", "ber(s)", "avg(s)", "sd(s)", "avg/ber", "excluded")
	for _, r := range rows {
		ratio := 0.0
		if r.BerSec > 0 {
			ratio = r.AvgSec / r.BerSec
		}
		t.Add(r.Dim, r.TSize, r.BerSec, r.AvgSec, r.SDSec, ratio, r.Excluded)
	}
	return fmt.Sprintf("Figure 7 [%s, dsize=%d]: best vs average configuration\n%s",
		sys.Name, dsize, t.String())
}

// ---- Figure 8: sensitivity violins ----

// Fig8Violin is the configuration-runtime distribution of one instance.
type Fig8Violin struct {
	Inst plan.Instance
	V    stats.Violin
	// FlatBase is the share of configurations within 10% of the optimum —
	// large for GPU-friendly instances ("the flat base of each violin").
	FlatBase float64
}

// Fig8 computes violins for the paper's sample instances (dim 700 and
// 2700, dsize 1 and 5) on the given system (the paper uses i7-2600K).
func (c *Context) Fig8(sys hw.System, dims []int, dsizes []int, tsizes []float64) ([]Fig8Violin, error) {
	sr, err := c.Search(sys)
	if err != nil {
		return nil, err
	}
	var out []Fig8Violin
	for _, dim := range dims {
		for _, ds := range dsizes {
			for _, ts := range tsizes {
				ir, ok := sr.For(plan.Instance{Dim: dim, TSize: ts, DSize: ds})
				if !ok {
					continue
				}
				xs := ir.Uncensored()
				if len(xs) == 0 {
					continue
				}
				sec := make([]float64, len(xs))
				for i, x := range xs {
					sec[i] = x / 1e9
				}
				out = append(out, Fig8Violin{
					Inst:     ir.Inst,
					V:        stats.NewViolin(sec, 24),
					FlatBase: stats.FlatBaseShare(sec, 0.10),
				})
			}
		}
	}
	return out, nil
}

// RenderFig8 prints the violins.
func RenderFig8(sys hw.System, vs []Fig8Violin) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 [%s]: dispersion of all configurations\n", sys.Name)
	for _, v := range vs {
		b.WriteString(report.RenderViolin(v.V,
			fmt.Sprintf("\n%v  flat-base=%.0f%%", v.Inst, v.FlatBase*100), 40))
	}
	return b.String()
}

// ---- Figure 9: the learned model ----

// Fig9 trains the tuner for sys and renders the halo model tree with its
// leaf linear models, as in the paper's pruned M5 tree figure.
func (c *Context) Fig9(sys hw.System) (string, error) {
	t, err := c.Tuner(sys)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 [%s]: M5 pruned model tree predicting halo\n\n", sys.Name)
	b.WriteString(t.Halo.Render("halo"))
	fmt.Fprintf(&b, "\ncross-validated accuracies: parallel=%.2f cpu-tile=%.2f gpu-tile=%.2f band=%.2f halo=%.2f\n",
		t.Report.ParallelAcc, t.Report.CPUTileAcc, t.Report.GPUTileAcc,
		t.Report.BandAcc, t.Report.HaloAcc)
	return b.String(), nil
}

// ---- Figures 10 and 11: autotuning the real applications ----

// NashInstances derives the Figure 10/11 instance grid from the
// configured dims and granularity parameters, using the paper's mapping
// of one Nash round to tsize=750 and dsize=4.
func (c *Context) NashInstances() []plan.Instance {
	var out []plan.Instance
	for _, dim := range c.Cfg.NashDims {
		for _, rounds := range c.Cfg.NashRounds {
			k := kernels.NewNash(rounds)
			out = append(out, plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()})
		}
	}
	return out
}

// SeqInstances derives the sequence-comparison instances (tsize=0.5,
// dsize=0).
func (c *Context) SeqInstances() []plan.Instance {
	var out []plan.Instance
	for _, dim := range c.Cfg.SeqDims {
		k := kernels.NewSeqCompare()
		out = append(out, plan.Instance{Dim: dim, TSize: k.TSize(), DSize: k.DSize()})
	}
	return out
}

// Fig10Row summarizes autotuning quality for one system.
type Fig10Row struct {
	Sys hw.System
	// ExhaustiveSpeedup and AutoSpeedup are mean speedups over serial for
	// the Nash application.
	ExhaustiveSpeedup float64
	AutoSpeedup       float64
	// Efficiency is AutoSpeedup/ExhaustiveSpeedup; the paper reports 98%
	// on average, with super-optimal (>1) results on the i3-540.
	Efficiency float64
	Points     []core.EvalPoint
}

// Fig10 evaluates the trained tuners on the Nash application.
func (c *Context) Fig10() ([]Fig10Row, error) {
	insts := c.NashInstances()
	var rows []Fig10Row
	for _, sys := range c.Cfg.Systems {
		t, err := c.Tuner(sys)
		if err != nil {
			return nil, err
		}
		points, err := core.Evaluate(t, c.Cfg.Space, insts)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{Sys: sys, Points: points}
		n := 0
		for _, e := range points {
			if e.AllCensored {
				continue
			}
			row.ExhaustiveSpeedup += e.BestSpeedup()
			row.AutoSpeedup += e.AutoSpeedup()
			n++
		}
		if n > 0 {
			row.ExhaustiveSpeedup /= float64(n)
			row.AutoSpeedup /= float64(n)
		}
		if row.ExhaustiveSpeedup > 0 {
			row.Efficiency = row.AutoSpeedup / row.ExhaustiveSpeedup
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig10 prints the speedup comparison.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10 [Nash]: autotuned speedup vs exhaustive search\n")
	t := report.NewTable("system", "exhaustive(x)", "autotuned(x)", "efficiency")
	for _, r := range rows {
		t.Add(r.Sys.Name, r.ExhaustiveSpeedup, r.AutoSpeedup,
			fmt.Sprintf("%.1f%%", r.Efficiency*100))
	}
	b.WriteString(t.String())
	return b.String()
}

// RenderFig11 prints the per-group runtime detail: exhaustive-best bars
// against the autotuned line.
func RenderFig11(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 11 [Nash]: runtime of exhaustive best (bar) vs autotuned (line)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s\n", r.Sys.Name)
		t := report.NewTable("dim", "tsize", "ber(s)", "auto(s)", "auto/ber")
		for _, e := range r.Points {
			if e.AllCensored {
				t.Add(e.Inst.Dim, e.Inst.TSize, "censored", e.AutoNs/1e9, "-")
				continue
			}
			t.Add(e.Inst.Dim, e.Inst.TSize, e.BestNs/1e9, e.AutoNs/1e9, e.AutoNs/e.BestNs)
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// ---- Smith-Waterman deployment check ----

// SeqResult records the tuner's decision on sequence comparison.
type SeqResult struct {
	Sys hw.System
	// AllCPU reports whether every instance was kept off the GPU, the
	// paper's "band prediction 100% accurate, i.e. do everything on the
	// CPU".
	AllCPU bool
	Preds  []core.Prediction
}

// SeqCompare evaluates the tuner's deployment on the fine-grained
// sequence-comparison application.
func (c *Context) SeqCompare() ([]SeqResult, error) {
	insts := c.SeqInstances()
	var out []SeqResult
	for _, sys := range c.Cfg.Systems {
		t, err := c.Tuner(sys)
		if err != nil {
			return nil, err
		}
		res := SeqResult{Sys: sys, AllCPU: true}
		for _, inst := range insts {
			pred := t.Predict(inst)
			res.Preds = append(res.Preds, pred)
			if !pred.Serial && pred.Par.Band >= 0 {
				res.AllCPU = false
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// ---- Headline numbers ----

// Headline aggregates the paper's summary claims.
type Headline struct {
	// MaxSpeedup and AvgSpeedup are over the serial baseline at the
	// exhaustive optima (paper: max 20x, average 7.8x).
	MaxSpeedup float64
	AvgSpeedup float64
	// TunerEfficiency is the mean autotuned fraction of exhaustive
	// performance on Nash (paper: 98%).
	TunerEfficiency float64
	// SeqAllCPU reports whether sequence comparison was kept on the CPU
	// everywhere.
	SeqAllCPU bool
}

// ComputeHeadline runs Figures 6 and 10 plus the sequence-comparison
// deployment and aggregates the headline numbers.
func (c *Context) ComputeHeadline() (Headline, error) {
	var h Headline
	fig6, err := c.Fig6()
	if err != nil {
		return h, err
	}
	var sum float64
	for _, r := range fig6 {
		sum += r.Best
		if r.MaxBest > h.MaxSpeedup {
			h.MaxSpeedup = r.MaxBest
		}
	}
	if len(fig6) > 0 {
		h.AvgSpeedup = sum / float64(len(fig6))
	}
	fig10, err := c.Fig10()
	if err != nil {
		return h, err
	}
	var eff float64
	for _, r := range fig10 {
		eff += math.Min(r.Efficiency, 1) // cap super-optimal at 1 for the average
	}
	if len(fig10) > 0 {
		h.TunerEfficiency = eff / float64(len(fig10))
	}
	seq, err := c.SeqCompare()
	if err != nil {
		return h, err
	}
	h.SeqAllCPU = true
	for _, s := range seq {
		if !s.AllCPU {
			h.SeqAllCPU = false
		}
	}
	return h, nil
}

// Render prints the headline summary.
func (h Headline) Render() string {
	return fmt.Sprintf(
		"Headline: max speedup %.1fx (paper ~20x), average %.1fx (paper 7.8x), "+
			"tuner efficiency %.0f%% (paper 98%%), seq-compare all-CPU: %v (paper: yes)\n",
		h.MaxSpeedup, h.AvgSpeedup, h.TunerEfficiency*100, h.SeqAllCPU)
}

// baselineGPUOnly is a convenience wrapper used in tests.
func baselineGPUOnly(sys hw.System, inst plan.Instance) (float64, error) {
	res, err := engine.Estimate(sys, inst, engine.GPUOnlyParams(inst.Dim), engine.Options{})
	if err != nil {
		return 0, err
	}
	return res.RTimeNs, nil
}

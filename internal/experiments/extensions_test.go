package experiments

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestExtGPUScalingShape(t *testing.T) {
	rows, err := ExtGPUScaling(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // CPU, 1, 2, 3, 4 GPUs
		t.Fatalf("want 5 rows, got %d", len(rows))
	}
	// Speedup must grow with device count for this coarse instance.
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Errorf("speedup not monotone at %d GPUs: %.2f <= %.2f",
				rows[i].GPUs, rows[i].Speedup, rows[i-1].Speedup)
		}
	}
	// But sub-linearly: 4 GPUs less than 4x the single-GPU speedup.
	if rows[4].Speedup >= 4*rows[1].Speedup {
		t.Error("scaling must be sub-linear (swap and transfer overheads)")
	}
	if s := RenderScaling(rows); !strings.Contains(s, "gpus") {
		t.Error("render incomplete")
	}
}

func TestExtOnlineAtLeastOffline(t *testing.T) {
	c := ctx(t)
	sys := hw.I7_2600K()
	rows, err := c.ExtOnline(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.OnlineNs > r.OfflineNs*1.0000001 {
			t.Errorf("%v: online %v worse than offline %v", r.Inst, r.OnlineNs, r.OfflineNs)
		}
		if r.Probes < 1 {
			t.Errorf("%v: no probes recorded", r.Inst)
		}
	}
	if s := RenderOnline(sys, rows); !strings.Contains(s, "probes") {
		t.Error("render incomplete")
	}
}

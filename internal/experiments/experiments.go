// Package experiments regenerates every table and figure of the paper's
// evaluation: the exhaustive-search heatmaps (Figure 5), baseline
// comparisons (Figure 6), average-case analysis (Figure 7), sensitivity
// violins (Figure 8), the learned model tree (Figure 9), the autotuning
// results (Figures 10 and 11) and the headline numbers, plus the
// illustrative Figures 1-3 and Tables 3-4.
//
// A Context caches the expensive artifacts (exhaustive searches, trained
// tuners) per system so the experiment runners compose cheaply.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/report"
	"repro/internal/stats"
)

// Config selects the scale of the reproduction.
type Config struct {
	Space     core.Space
	Systems   []hw.System
	TrainOpts core.TrainOptions
	// NashDims and NashRounds define the Figure 10/11 evaluation grid.
	NashDims   []int
	NashRounds []int
	// SeqDims define the sequence-comparison evaluation instances.
	SeqDims []int
}

// Full returns the paper-scale configuration.
func Full() Config {
	return Config{
		Space:      core.DefaultSpace(),
		Systems:    hw.Systems(),
		TrainOpts:  core.DefaultTrainOptions(),
		NashDims:   []int{500, 700, 1100, 1900, 2700},
		NashRounds: []int{1, 2, 4, 8, 16},
		SeqDims:    []int{500, 1100, 1900, 2700, 3100},
	}
}

// Quick returns a reduced configuration for tests and benchmarks.
func Quick() Config {
	return Config{
		Space:      core.QuickSpace(),
		Systems:    hw.Systems(),
		TrainOpts:  core.DefaultTrainOptions(),
		NashDims:   []int{700, 1900},
		NashRounds: []int{1, 8},
		SeqDims:    []int{700, 1900},
	}
}

// Context caches searches and tuners per system.
type Context struct {
	Cfg Config

	mu       sync.Mutex
	searches map[string]*core.SearchResult
	tuners   map[string]*core.Tuner
}

// NewContext creates a context for the given configuration.
func NewContext(cfg Config) *Context {
	return &Context{
		Cfg:      cfg,
		searches: map[string]*core.SearchResult{},
		tuners:   map[string]*core.Tuner{},
	}
}

// Search returns the cached exhaustive search for sys, running it on
// first use. On error the partial result (the instances that completed
// before the failure) is returned alongside it, but never cached — the
// next call retries the full search.
func (c *Context) Search(sys hw.System) (*core.SearchResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sr, ok := c.searches[sys.Name]; ok {
		return sr, nil
	}
	sr, err := core.Exhaustive(sys, c.Cfg.Space, core.SearchOptions{})
	if err != nil {
		return sr, err
	}
	c.searches[sys.Name] = sr
	return sr, nil
}

// Tuner returns the cached trained tuner for sys.
func (c *Context) Tuner(sys hw.System) (*core.Tuner, error) {
	c.mu.Lock()
	if t, ok := c.tuners[sys.Name]; ok {
		c.mu.Unlock()
		return t, nil
	}
	c.mu.Unlock()
	sr, err := c.Search(sys)
	if err != nil {
		return nil, err
	}
	t, err := core.Train(sr, c.Cfg.TrainOpts)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.tuners[sys.Name] = t
	c.mu.Unlock()
	return t, nil
}

// ---- Figure 1: wavefront parallelism profile ----

// Fig1 renders the diagonal parallelism profile of a dim-sized wavefront:
// the number of concurrently computable elements per iteration.
func Fig1(dim int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: wavefront parallelism profile, dim=%d\n", dim)
	for d := 0; d < grid.NumDiags(dim); d++ {
		fmt.Fprintf(&b, "iter %2d: %s (%d)\n", d,
			strings.Repeat("*", grid.DiagLen(dim, d)), grid.DiagLen(dim, d))
	}
	return b.String()
}

// ---- Figure 2: three-phase decomposition ----

// Fig2 renders the paper's Figure 2: the 20x20 grid with 4x4 CPU tiles in
// phases 1 and 3 and a GPU band in phase 2.
func Fig2() (string, error) {
	inst := plan.Instance{Dim: 20, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 4, Band: 5, GPUTile: 1, Halo: -1}
	pl, err := plan.Build(inst, par)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: three-phase strategy, %v, %v\n", inst, par)
	fmt.Fprintf(&b, "phase 1: diagonals [%d,%d] on CPU (tiled %dx%d)\n",
		pl.P1Lo, pl.P1Hi, par.CPUTile, par.CPUTile)
	fmt.Fprintf(&b, "phase 2: diagonals [%d,%d] on GPU (%d kernel calls)\n",
		pl.GLo, pl.GHi, pl.GPUDiags())
	fmt.Fprintf(&b, "phase 3: diagonals [%d,%d] on CPU (tiled)\n", pl.P3Lo, pl.P3Hi)
	for r := 0; r < inst.Dim; r++ {
		for c := 0; c < inst.Dim; c++ {
			d := r + c
			switch {
			case d < pl.GLo:
				b.WriteByte('1')
			case d <= pl.GHi:
				b.WriteByte('G')
			default:
				b.WriteByte('3')
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// ---- Figure 3: dual-GPU partitioning with halos ----

// Fig3 renders the partitioning of a few diagonals between two GPUs with
// a halo, marking each device's share and the redundantly computed
// overlap.
func Fig3() (string, error) {
	inst := plan.Instance{Dim: 16, TSize: 10, DSize: 1}
	par := plan.Params{CPUTile: 4, Band: 3, GPUTile: 1, Halo: 3}
	pl, err := plan.Build(inst, par)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: partitioning of %d diagonals among two GPUs, halo=%d\n",
		pl.GPUDiags(), par.Halo)
	a0 := grid.DiagStartRow(inst.Dim, pl.GLo)
	bRow := a0 + grid.DiagLen(inst.Dim, pl.GLo)/2
	for i, d := 0, pl.GLo; d <= pl.GHi; i, d = i+1, d+1 {
		l := grid.DiagLen(inst.Dim, d)
		ov := pl.SwapPeriod() - 1 - i%pl.SwapPeriod()
		start := grid.DiagStartRow(inst.Dim, d)
		fmt.Fprintf(&b, "diag %3d: ", d)
		for r := start; r < start+l; r++ {
			inDev0 := r < bRow
			inDev1 := r >= bRow-ov
			switch {
			case inDev0 && inDev1:
				b.WriteByte('X') // redundant overlap
			case inDev0:
				b.WriteByte('0')
			default:
				b.WriteByte('1')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("0 = GPU0, 1 = GPU1, X = overlap (redundantly computed halo)\n")
	return b.String(), nil
}

// ---- Tables 3 and 4 ----

// Table3 renders the search-space ranges.
func Table3(space core.Space) string {
	t := report.NewTable("parameter", "range")
	t.Add("dim", fmt.Sprintf("%v", space.Dims))
	t.Add("tsize", fmt.Sprintf("%v", space.TSizes))
	t.Add("dsize", fmt.Sprintf("%v", space.DSizes))
	t.Add("cpu-tile", fmt.Sprintf("%v", space.CPUTiles))
	t.Add("band", "-1 to 2*dim-1 (fractions of dim)")
	t.Add("halo", "-1 to 0.5*(first offloaded diagonal)")
	t.Add("gpu-tile", fmt.Sprintf("%v", space.GPUTiles))
	return "Table 3: parameter ranges\n" + t.String()
}

// Table4 renders the experimental systems.
func Table4(systems []hw.System) string {
	t := report.NewTable("system", "freq(MHz)", "cores(HT)", "mem(GB)", "gpu", "gpu freq", "CU", "gpu mem")
	for _, s := range systems {
		names := make([]string, len(s.GPUs))
		for i, g := range s.GPUs {
			names[i] = g.Name
		}
		g := s.GPUs[0]
		t.Add(s.Name, s.CPU.FreqMHz, s.CPU.Cores, s.CPU.MemGB,
			strings.Join(names, ", "), g.FreqMHz, g.CUs, g.MemGB)
	}
	return "Table 4: experimental systems\n" + t.String()
}

// ---- Figure 5: heatmaps of optimal band and halo ----

// Fig5Cell is the optimum at one (dim, tsize) point.
type Fig5Cell struct {
	Dim   int
	TSize float64
	Band  int
	Halo  int
	GPUs  int
}

// Fig5Data holds the per-system, per-dsize optimal-parameter maps.
type Fig5Data struct {
	Sys   hw.System
	DSize int
	Cells []Fig5Cell
	// BandMap and HaloMap are the rendered heatmaps (halo only for
	// multi-GPU systems, as in the paper).
	BandMap *stats.Heatmap
	HaloMap *stats.Heatmap
}

// Fig5 computes the best-point heatmaps for one system and dsize.
func (c *Context) Fig5(sys hw.System, dsize int) (*Fig5Data, error) {
	sr, err := c.Search(sys)
	if err != nil {
		return nil, err
	}
	rows := append([]int(nil), c.Cfg.Space.Dims...)
	cols := make([]int, len(c.Cfg.Space.TSizes))
	for i, t := range c.Cfg.Space.TSizes {
		cols[i] = int(t)
	}
	d := &Fig5Data{Sys: sys, DSize: dsize,
		BandMap: stats.NewHeatmap(rows, cols), HaloMap: stats.NewHeatmap(rows, cols)}
	for i := range sr.Instances {
		ir := &sr.Instances[i]
		if ir.Inst.DSize != dsize {
			continue
		}
		best, ok := ir.Best()
		if !ok {
			continue
		}
		cell := Fig5Cell{Dim: ir.Inst.Dim, TSize: ir.Inst.TSize,
			Band: best.Par.Band, Halo: best.Par.Halo, GPUs: best.Par.GPUCount()}
		d.Cells = append(d.Cells, cell)
		if err := d.BandMap.Set(cell.Dim, int(cell.TSize), float64(cell.Band)); err != nil {
			return nil, err
		}
		if err := d.HaloMap.Set(cell.Dim, int(cell.TSize), float64(cell.Halo)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Render prints the band (and for multi-GPU systems, halo) heatmaps.
func (d *Fig5Data) Render() string {
	var b strings.Builder
	elem := grid.ElemBytes(d.DSize)
	fmt.Fprintf(&b, "Figure 5 [%s, dsize=%d (%d bytes)]\n", d.Sys.Name, d.DSize, elem)
	b.WriteString(report.RenderHeatmap(d.BandMap,
		fmt.Sprintf("best band (y=dim, x=tsize), %s", d.Sys.Name)))
	if d.Sys.MaxGPUs() >= 2 {
		b.WriteString(report.RenderHeatmap(d.HaloMap,
			fmt.Sprintf("best halo (y=dim, x=tsize), %s", d.Sys.Name)))
	}
	return b.String()
}

// GPUThreshold returns, for each dim, the smallest tsize whose optimum
// uses the GPU (band >= 0), or -1 when none does: the paper's offload
// threshold observation.
func (d *Fig5Data) GPUThreshold() map[int]float64 {
	out := map[int]float64{}
	byDim := map[int][]Fig5Cell{}
	for _, cell := range d.Cells {
		byDim[cell.Dim] = append(byDim[cell.Dim], cell)
	}
	for dim, cells := range byDim {
		sort.Slice(cells, func(i, j int) bool { return cells[i].TSize < cells[j].TSize })
		out[dim] = -1
		for _, cell := range cells {
			if cell.Band >= 0 {
				out[dim] = cell.TSize
				break
			}
		}
	}
	return out
}

// ---- Figure 6: best points vs simple schemes ----

// Fig6Row is one system's average speedups over the serial baseline.
type Fig6Row struct {
	Sys hw.System
	// Best, CPUOnly and GPUOnly are mean speedups of, respectively, the
	// exhaustive optimum, the best all-CPU configuration and the full
	// single-GPU offload.
	Best, CPUOnly, GPUOnly float64
	// MaxBest is the largest per-instance optimum speedup (the paper's
	// "maximum of 20x").
	MaxBest float64
}

// Fig6 computes the baseline comparison for every configured system.
func (c *Context) Fig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, sys := range c.Cfg.Systems {
		sr, err := c.Search(sys)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{Sys: sys}
		var n int
		for i := range sr.Instances {
			ir := &sr.Instances[i]
			best, ok := ir.Best()
			if !ok {
				continue
			}
			cpuBest := 0.0
			for _, p := range ir.Points {
				if p.Censored || p.Par.Band != -1 {
					continue
				}
				if sp := ir.SerialNs / p.RTimeNs; sp > cpuBest {
					cpuBest = sp
				}
			}
			gpuRes, err := engine.Estimate(sys, ir.Inst, engine.GPUOnlyParams(ir.Inst.Dim), engine.Options{})
			if err != nil {
				return nil, err
			}
			bestSp := ir.SerialNs / best.RTimeNs
			row.Best += bestSp
			row.CPUOnly += cpuBest
			row.GPUOnly += ir.SerialNs / gpuRes.RTimeNs
			if bestSp > row.MaxBest {
				row.MaxBest = bestSp
			}
			n++
		}
		if n > 0 {
			row.Best /= float64(n)
			row.CPUOnly /= float64(n)
			row.GPUOnly /= float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig6 prints the comparison bars.
func RenderFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: average speedup of exhaustive best over baselines\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s (max best %.1fx)\n", r.Sys.Name, r.MaxBest)
		b.WriteString(report.Bar(
			[]string{"serial", "parallel CPU", "GPU only", "best (exhaustive)"},
			[]float64{1, r.CPUOnly, r.GPUOnly, r.Best}, "x", 40))
	}
	return b.String()
}

// Package stats provides the descriptive statistics behind the paper's
// figures: means and deviations (Figure 7), quantiles and Gaussian kernel
// densities for violin plots (Figure 8), and dense heatmap grids
// (Figure 5).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(n))
}

// Min returns the smallest value; it panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; it panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation of
// the sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Violin summarizes a distribution the way the paper's Figure 8 violin
// plots do: quartiles, extremes, and a kernel density profile.
type Violin struct {
	N                int
	Min, Q1, Med, Q3 float64
	MaxV             float64
	Mean, SD         float64
	// Grid and Density sample the Gaussian KDE at evenly spaced points
	// from Min to MaxV.
	Grid    []float64
	Density []float64
}

// NewViolin computes a violin summary with the given number of density
// sample points (>= 2).
func NewViolin(xs []float64, points int) Violin {
	if len(xs) == 0 {
		return Violin{}
	}
	if points < 2 {
		points = 2
	}
	v := Violin{
		N:    len(xs),
		Min:  Min(xs),
		Q1:   Quantile(xs, 0.25),
		Med:  Median(xs),
		Q3:   Quantile(xs, 0.75),
		MaxV: Max(xs),
		Mean: Mean(xs),
		SD:   StdDev(xs),
	}
	h := silverman(xs)
	v.Grid = make([]float64, points)
	v.Density = make([]float64, points)
	span := v.MaxV - v.Min
	for i := 0; i < points; i++ {
		x := v.Min + span*float64(i)/float64(points-1)
		v.Grid[i] = x
		v.Density[i] = kde(xs, x, h)
	}
	return v
}

// silverman returns Silverman's rule-of-thumb KDE bandwidth.
func silverman(xs []float64) float64 {
	sd := StdDev(xs)
	iqr := Quantile(xs, 0.75) - Quantile(xs, 0.25)
	a := sd
	if iqr > 0 && iqr/1.34 < a {
		a = iqr / 1.34
	}
	if a == 0 {
		a = 1
	}
	return 0.9 * a * math.Pow(float64(len(xs)), -0.2)
}

// kde evaluates the Gaussian kernel density estimate at x.
func kde(xs []float64, x, h float64) float64 {
	s := 0.0
	for _, xi := range xs {
		u := (x - xi) / h
		s += math.Exp(-0.5 * u * u)
	}
	return s / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
}

// FlatBaseShare reports the fraction of samples within tol (relative) of
// the minimum — the paper's "flat base of each violin" observation, which
// distinguishes instances with many near-optimal configurations from
// instances with a single sharp optimum.
func FlatBaseShare(xs []float64, tol float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo := Min(xs)
	hits := 0
	for _, x := range xs {
		if x <= lo*(1+tol) {
			hits++
		}
	}
	return float64(hits) / float64(len(xs))
}

// Heatmap is a dense value grid addressed by row and column labels, as in
// the paper's Figure 5 (rows = dim, columns = tsize).
type Heatmap struct {
	RowLabels []int
	ColLabels []int
	rows      map[int]int
	cols      map[int]int
	Values    [][]float64
	set       [][]bool
}

// NewHeatmap allocates a heatmap over the given sorted label sets.
func NewHeatmap(rowLabels, colLabels []int) *Heatmap {
	h := &Heatmap{
		RowLabels: append([]int(nil), rowLabels...),
		ColLabels: append([]int(nil), colLabels...),
		rows:      map[int]int{},
		cols:      map[int]int{},
	}
	for i, r := range h.RowLabels {
		h.rows[r] = i
	}
	for j, c := range h.ColLabels {
		h.cols[c] = j
	}
	h.Values = make([][]float64, len(rowLabels))
	h.set = make([][]bool, len(rowLabels))
	for i := range h.Values {
		h.Values[i] = make([]float64, len(colLabels))
		h.set[i] = make([]bool, len(colLabels))
	}
	return h
}

// Set stores a cell value; unknown labels are an error.
func (h *Heatmap) Set(row, col int, v float64) error {
	i, ok := h.rows[row]
	if !ok {
		return fmt.Errorf("stats: unknown heatmap row %d", row)
	}
	j, ok := h.cols[col]
	if !ok {
		return fmt.Errorf("stats: unknown heatmap col %d", col)
	}
	h.Values[i][j] = v
	h.set[i][j] = true
	return nil
}

// Get returns the cell value and whether it was set.
func (h *Heatmap) Get(row, col int) (float64, bool) {
	i, ok := h.rows[row]
	if !ok {
		return 0, false
	}
	j, ok := h.cols[col]
	if !ok {
		return 0, false
	}
	return h.Values[i][j], h.set[i][j]
}

// Complete reports whether every cell was set.
func (h *Heatmap) Complete() bool {
	for i := range h.set {
		for _, ok := range h.set[i] {
			if !ok {
				return false
			}
		}
	}
	return true
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %v, want 5", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/sd must be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("Min/Max wrong")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Median(xs) != 3 {
		t.Errorf("Median = %v, want 3", Median(xs))
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("Q1 = %v, want 2", got)
	}
	// Interpolation on even-sized samples.
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, rng.Intn(50)+1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestViolinSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	v := NewViolin(xs, 32)
	if v.N != 500 {
		t.Fatal("N wrong")
	}
	if !(v.Min <= v.Q1 && v.Q1 <= v.Med && v.Med <= v.Q3 && v.Q3 <= v.MaxV) {
		t.Error("quantile ordering violated")
	}
	if len(v.Grid) != 32 || len(v.Density) != 32 {
		t.Error("density grid size wrong")
	}
	for _, d := range v.Density {
		if d < 0 || math.IsNaN(d) {
			t.Fatal("invalid density value")
		}
	}
	// Density should peak near the mean for a normal sample.
	peakAt := v.Grid[argmax(v.Density)]
	if math.Abs(peakAt-10) > 1.5 {
		t.Errorf("density peak at %v, want near 10", peakAt)
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func TestViolinEmptyAndTiny(t *testing.T) {
	if v := NewViolin(nil, 10); v.N != 0 {
		t.Error("empty violin must be zero")
	}
	v := NewViolin([]float64{5}, 10)
	if v.Med != 5 || v.Min != 5 || v.MaxV != 5 {
		t.Error("singleton violin wrong")
	}
}

func TestFlatBaseShare(t *testing.T) {
	// 6 of 10 values within 10% of the minimum -> 0.6: the paper's "flat
	// base" signal for GPU-friendly instances.
	xs := []float64{100, 101, 105, 108, 109, 110, 200, 300, 400, 500}
	if got := FlatBaseShare(xs, 0.10); got != 0.6 {
		t.Errorf("FlatBaseShare = %v, want 0.6", got)
	}
	if FlatBaseShare(nil, 0.1) != 0 {
		t.Error("empty share must be 0")
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap([]int{500, 700}, []int{10, 100, 1000})
	if h.Complete() {
		t.Error("fresh heatmap must be incomplete")
	}
	if err := h.Set(500, 10, 1.5); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(500, 10); !ok || v != 1.5 {
		t.Error("Get after Set failed")
	}
	if _, ok := h.Get(999, 10); ok {
		t.Error("unknown row must miss")
	}
	if err := h.Set(999, 10, 1); err == nil {
		t.Error("unknown row must error")
	}
	if err := h.Set(500, 11, 1); err == nil {
		t.Error("unknown col must error")
	}
	for _, r := range []int{500, 700} {
		for _, c := range []int{10, 100, 1000} {
			_ = h.Set(r, c, 0)
		}
	}
	if !h.Complete() {
		t.Error("fully set heatmap must be complete")
	}
}

package simcl

import (
	"fmt"
	"sort"
	"strings"
)

// SpanKind classifies a traced command.
type SpanKind string

// Span kinds recorded by the runtime.
const (
	SpanStartup SpanKind = "startup"
	SpanKernel  SpanKind = "kernel"
	SpanXfer    SpanKind = "xfer"
	SpanHost    SpanKind = "host"
)

// Span is one traced command occupation: [Start, End) in virtual
// nanoseconds on a device lane (or the host lane, Dev == -1).
type Span struct {
	Dev   int // device index; -1 for host compute
	Kind  SpanKind
	Start float64
	End   float64
	// Detail carries points for kernels or bytes for transfers.
	Detail int
}

// Trace collects command spans of a simulation for timeline inspection.
// Attach one to Platform.Trace before enqueuing work.
type Trace struct {
	Spans []Span
}

func (t *Trace) add(s Span) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, s)
}

// ByDevice returns the spans of one lane in start order.
func (t *Trace) ByDevice(dev int) []Span {
	var out []Span
	for _, s := range t.Spans {
		if s.Dev == dev {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Span returns the overall [start, end) of the trace.
func (t *Trace) Span() (start, end float64) {
	if len(t.Spans) == 0 {
		return 0, 0
	}
	start, end = t.Spans[0].Start, t.Spans[0].End
	for _, s := range t.Spans[1:] {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// Busy returns the total occupied nanoseconds of one lane.
func (t *Trace) Busy(dev int) float64 {
	var sum float64
	for _, s := range t.Spans {
		if s.Dev == dev {
			sum += s.End - s.Start
		}
	}
	return sum
}

var kindGlyph = map[SpanKind]byte{
	SpanStartup: 'S',
	SpanKernel:  '#',
	SpanXfer:    'x',
	SpanHost:    'H',
}

// Render draws the trace as an ASCII Gantt chart: one row per lane
// (host first, then each device), width columns spanning the trace.
func (t *Trace) Render(width int) string {
	if width < 20 {
		width = 20
	}
	start, end := t.Span()
	if end <= start {
		return "(empty trace)\n"
	}
	lanes := map[int]bool{}
	for _, s := range t.Spans {
		lanes[s.Dev] = true
	}
	var order []int
	for d := range lanes {
		order = append(order, d)
	}
	sort.Ints(order)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %.3fms .. %.3fms (S=startup #=kernel x=xfer H=host)\n",
		start/1e6, end/1e6)
	scale := float64(width) / (end - start)
	for _, dev := range order {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.ByDevice(dev) {
			lo := int((s.Start - start) * scale)
			hi := int((s.End - start) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = kindGlyph[s.Kind]
			}
		}
		name := "host"
		if dev >= 0 {
			name = fmt.Sprintf("gpu%d", dev)
		}
		fmt.Fprintf(&b, "%-5s |%s|  busy %.1f%%\n", name, row,
			100*t.Busy(dev)/(end-start))
	}
	return b.String()
}

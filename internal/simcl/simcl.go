// Package simcl is a simulated OpenCL-style runtime: devices with in-order
// command queues, buffers, kernel launches and host transfers, executing in
// the virtual time of a discrete-event engine against the cost models of
// package hw.
//
// It replaces the paper's "own OpenCL harness" (Section 2). Commands incur
// modeled costs (startup, launch, SIMT passes, PCIe latency and bandwidth,
// intra-work-group barriers), and transfers contend on the single shared
// link, so two GPUs swapping halos genuinely serialize on the bus as they
// do in the paper's systems. In functional mode a kernel command carries a
// Go closure that is executed when the command completes, so simulations
// produce real numerical results as well as timings.
package simcl

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/hw"
)

// Platform owns the virtual-time engine, the shared host link and the
// devices of one modeled system.
type Platform struct {
	Eng  *des.Engine
	Sys  hw.System
	Link *des.Resource
	Devs []*Device
	// Functional enables execution of kernel bodies. When false only
	// timing is simulated, which is what the exhaustive search uses.
	Functional bool
	// Trace, when non-nil, records every command span for timeline
	// inspection (see Trace.Render).
	Trace *Trace
}

// NewPlatform builds a platform for the given system.
func NewPlatform(sys hw.System) *Platform {
	p := &Platform{Eng: des.NewEngine(), Sys: sys}
	p.Link = des.NewResource(p.Eng, "pcie", 1)
	for i, g := range sys.GPUs {
		p.Devs = append(p.Devs, newDevice(p, g, i))
	}
	return p
}

// Device is one simulated GPU with an in-order command queue.
type Device struct {
	Plat    *Platform
	Model   hw.GPUModel
	Index   int
	queue   *des.Resource
	started bool
	alloc   int // allocated device memory in bytes
	Stats   DeviceStats
}

// DeviceStats accumulates per-device activity for breakdown reporting.
type DeviceStats struct {
	Kernels     int
	KernelNs    float64 // on-device compute including barriers
	LaunchNs    float64
	StartupNs   float64
	Transfers   int
	XferBytes   int
	XferNs      float64
	SyncSteps   int
	PointsRun   int
	PaddedSlots int
}

func newDevice(p *Platform, m hw.GPUModel, idx int) *Device {
	return &Device{
		Plat:  p,
		Model: m,
		Index: idx,
		queue: des.NewResource(p.Eng, fmt.Sprintf("gpu%d-queue", idx), 1),
	}
}

// Buffer is a device memory allocation.
type Buffer struct {
	Dev   *Device
	Bytes int
	freed bool
}

// CreateBuffer allocates device memory, failing when the modeled device
// capacity (Table 4's GPU Mem column) would be exceeded.
func (d *Device) CreateBuffer(bytes int) (*Buffer, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("simcl: negative buffer size %d", bytes)
	}
	capBytes := int(d.Model.MemGB * 1e9)
	if d.alloc+bytes > capBytes {
		return nil, fmt.Errorf("simcl: device %s out of memory: %d + %d > %d",
			d.Model.Name, d.alloc, bytes, capBytes)
	}
	d.alloc += bytes
	return &Buffer{Dev: d, Bytes: bytes}, nil
}

// Release frees the buffer's device memory. Releasing twice is an error.
func (b *Buffer) Release() error {
	if b.freed {
		return fmt.Errorf("simcl: double release of buffer on %s", b.Dev.Model.Name)
	}
	b.freed = true
	b.Dev.alloc -= b.Bytes
	return nil
}

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int { return d.alloc }

// Start pays the one-time device startup cost (context creation and
// program build). Subsequent calls complete immediately. done may be nil.
func (d *Device) Start(done func()) {
	if d.started {
		if done != nil {
			d.Plat.Eng.Schedule(0, done)
		}
		return
	}
	d.started = true
	d.Stats.StartupNs += d.Model.StartupNs
	t0 := d.Plat.Eng.Now()
	d.queue.Use(d.Model.StartupNs, func() {
		d.Plat.Trace.add(Span{Dev: d.Index, Kind: SpanStartup,
			Start: t0, End: d.Plat.Eng.Now()})
		if done != nil {
			done()
		}
	})
}

// KernelReq describes one kernel launch.
type KernelReq struct {
	// Points is the global work size (cells computed by this launch).
	Points int
	// TSize and DSize give the workload granularity for the cost model.
	TSize float64
	DSize int
	// SyncSteps is the number of intra-work-group barrier steps (0 when
	// gpu-tile is 1; 2g-1 per tile wavefront when tiled).
	SyncSteps int
	// Inflate multiplies on-device compute time; GPU tiling serializes the
	// in-tile wavefront, inflating compute by (2g-1)/g.
	Inflate float64
	// Body, when non-nil and the platform is functional, runs at command
	// completion to produce the kernel's numerical effect.
	Body func()
}

// Duration returns the modeled on-device time of the request, excluding
// queue waiting: launch overhead + SIMT compute + barrier steps. It
// delegates to the hw model shared with the analytic estimator.
func (d *Device) Duration(req KernelReq) float64 {
	return d.Model.LaunchDurationNs(d.Plat.Sys.CPU, req.Points, req.TSize,
		req.DSize, req.SyncSteps, req.Inflate)
}

// EnqueueKernel appends a kernel launch to the device's in-order queue.
// done (may be nil) runs after the command completes.
func (d *Device) EnqueueKernel(req KernelReq, done func()) {
	if !d.started {
		panic("simcl: kernel enqueued before device start")
	}
	if req.Points < 0 {
		panic(fmt.Sprintf("simcl: negative work size %d", req.Points))
	}
	dur := d.Duration(req)
	d.Stats.Kernels++
	d.Stats.LaunchNs += d.Model.LaunchNs
	d.Stats.KernelNs += dur - d.Model.LaunchNs
	d.Stats.SyncSteps += req.SyncSteps
	d.Stats.PointsRun += req.Points
	d.Stats.PaddedSlots += d.Model.PaddedPoints(req.Points)
	body := req.Body
	functional := d.Plat.Functional
	points := req.Points
	d.queue.Use(dur, func() {
		end := d.Plat.Eng.Now()
		d.Plat.Trace.add(Span{Dev: d.Index, Kind: SpanKernel,
			Start: end - dur, End: end, Detail: points})
		if functional && body != nil {
			body()
		}
		if done != nil {
			done()
		}
	})
}

// EnqueueXfer moves bytes between host and device (either direction: the
// model is symmetric). The command occupies both the device queue slot and
// the shared link, so concurrent transfers from two devices serialize.
func (d *Device) EnqueueXfer(bytes int, done func()) {
	if !d.started {
		panic("simcl: transfer enqueued before device start")
	}
	if bytes < 0 {
		panic(fmt.Sprintf("simcl: negative transfer size %d", bytes))
	}
	dur := d.Plat.Sys.Link.XferNs(bytes)
	d.Stats.Transfers++
	d.Stats.XferBytes += bytes
	d.Stats.XferNs += dur
	d.queue.Acquire(func() {
		d.Plat.Link.Use(dur, func() {
			end := d.Plat.Eng.Now()
			d.Plat.Trace.add(Span{Dev: d.Index, Kind: SpanXfer,
				Start: end - dur, End: end, Detail: bytes})
			d.queue.Release()
			if done != nil {
				done()
			}
		})
	})
}

// HostCompute occupies virtual time on the host CPU without any device:
// used for the CPU phases of the hybrid strategy. done may be nil.
func (p *Platform) HostCompute(durNs float64, done func()) {
	if durNs < 0 {
		panic(fmt.Sprintf("simcl: negative host compute %v", durNs))
	}
	t0 := p.Eng.Now()
	p.Eng.Schedule(durNs, func() {
		p.Trace.add(Span{Dev: -1, Kind: SpanHost, Start: t0, End: p.Eng.Now()})
		if done != nil {
			done()
		}
	})
}

package simcl

import (
	"strings"
	"testing"

	"repro/internal/hw"
)

func tracedPlatform() (*Platform, *Trace) {
	p := NewPlatform(hw.I7_2600K())
	tr := &Trace{}
	p.Trace = tr
	return p, tr
}

func TestTraceRecordsAllKinds(t *testing.T) {
	p, tr := tracedPlatform()
	d := p.Devs[0]
	d.Start(nil)
	d.EnqueueKernel(KernelReq{Points: 100, TSize: 10, DSize: 1}, nil)
	d.EnqueueXfer(1000, nil)
	p.HostCompute(500, nil)
	p.Eng.Run()
	kinds := map[SpanKind]int{}
	for _, s := range tr.Spans {
		kinds[s.Kind]++
	}
	for _, k := range []SpanKind{SpanStartup, SpanKernel, SpanXfer, SpanHost} {
		if kinds[k] != 1 {
			t.Errorf("kind %s recorded %d times, want 1", k, kinds[k])
		}
	}
}

func TestTraceSpansDoNotOverlapPerLane(t *testing.T) {
	p, tr := tracedPlatform()
	d := p.Devs[0]
	d.Start(nil)
	for i := 0; i < 5; i++ {
		d.EnqueueKernel(KernelReq{Points: 1000, TSize: 100, DSize: 1}, nil)
	}
	d.EnqueueXfer(4000, nil)
	p.Eng.Run()
	spans := tr.ByDevice(0)
	if len(spans) != 7 { // startup + 5 kernels + 1 xfer
		t.Fatalf("got %d spans, want 7", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End-1e-6 {
			t.Fatalf("spans overlap on the in-order queue: %+v then %+v",
				spans[i-1], spans[i])
		}
	}
}

func TestTraceSpanAndBusy(t *testing.T) {
	p, tr := tracedPlatform()
	p.HostCompute(100, nil)
	p.Eng.Run()
	start, end := tr.Span()
	if start != 0 || end != 100 {
		t.Errorf("span = [%v,%v], want [0,100]", start, end)
	}
	if tr.Busy(-1) != 100 {
		t.Errorf("host busy = %v, want 100", tr.Busy(-1))
	}
	if tr.Busy(0) != 0 {
		t.Error("idle device must have zero busy time")
	}
}

func TestTraceRender(t *testing.T) {
	p, tr := tracedPlatform()
	a, b := p.Devs[0], p.Devs[1]
	a.Start(nil)
	b.Start(nil)
	a.EnqueueKernel(KernelReq{Points: 100000, TSize: 500, DSize: 1}, nil)
	b.EnqueueXfer(1_000_000, nil)
	p.HostCompute(1e6, nil)
	p.Eng.Run()
	out := tr.Render(60)
	for _, want := range []string{"host", "gpu0", "gpu1", "busy", "S"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if (&Trace{}).Render(40) != "(empty trace)\n" {
		t.Error("empty trace render wrong")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	// Platforms without a trace must not record or crash.
	p := NewPlatform(hw.I3_540())
	d := p.Devs[0]
	d.Start(nil)
	d.EnqueueKernel(KernelReq{Points: 10, TSize: 1, DSize: 0}, nil)
	p.HostCompute(10, nil)
	p.Eng.Run()
}

package simcl

import (
	"math"
	"testing"

	"repro/internal/hw"
)

func newTestPlatform() *Platform {
	return NewPlatform(hw.I7_2600K())
}

func TestStartPaysOnce(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	var t1, t2 float64
	d.Start(func() { t1 = p.Eng.Now() })
	d.Start(func() { t2 = p.Eng.Now() })
	p.Eng.Run()
	if t1 != d.Model.StartupNs {
		t.Errorf("first start finished at %v, want %v", t1, d.Model.StartupNs)
	}
	if t2 != 0 {
		// The second Start was enqueued at time 0 and completes instantly.
		t.Errorf("second start must be free, finished at %v", t2)
	}
	if d.Stats.StartupNs != d.Model.StartupNs {
		t.Errorf("startup accounted %v, want %v", d.Stats.StartupNs, d.Model.StartupNs)
	}
}

func TestKernelQueueInOrder(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	d.Start(nil)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.EnqueueKernel(KernelReq{Points: 100, TSize: 10, DSize: 1}, func() {
			order = append(order, i)
		})
	}
	p.Eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("kernels completed out of order: %v", order)
		}
	}
	if d.Stats.Kernels != 5 {
		t.Errorf("kernel count = %d, want 5", d.Stats.Kernels)
	}
}

func TestKernelDurationModel(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	req := KernelReq{Points: 512, TSize: 100, DSize: 1}
	want := d.Model.LaunchNs + d.Model.KernelNs(512, 100, p.Sys.CPU.PerIterNs, 1)
	if got := d.Duration(req); got != want {
		t.Errorf("Duration = %v, want %v", got, want)
	}
	// Barriers and inflation must add time.
	req2 := req
	req2.SyncSteps = 7
	req2.Inflate = 2
	if d.Duration(req2) <= d.Duration(req) {
		t.Error("sync steps + inflation must increase duration")
	}
}

func TestEnqueueBeforeStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := newTestPlatform()
	p.Devs[0].EnqueueKernel(KernelReq{Points: 1, TSize: 1}, nil)
}

func TestFunctionalBodyRuns(t *testing.T) {
	p := newTestPlatform()
	p.Functional = true
	d := p.Devs[0]
	d.Start(nil)
	ran := false
	d.EnqueueKernel(KernelReq{Points: 1, TSize: 1, Body: func() { ran = true }}, nil)
	p.Eng.Run()
	if !ran {
		t.Error("functional body must run")
	}
}

func TestNonFunctionalSkipsBody(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	d.Start(nil)
	ran := false
	d.EnqueueKernel(KernelReq{Points: 1, TSize: 1, Body: func() { ran = true }}, nil)
	p.Eng.Run()
	if ran {
		t.Error("timing-only mode must not execute bodies")
	}
}

func TestTransfersContendOnLink(t *testing.T) {
	// Two devices transferring simultaneously must serialize on the link:
	// total time ~= 2 transfers, not 1.
	p := newTestPlatform()
	a, b := p.Devs[0], p.Devs[1]
	a.Start(nil)
	b.Start(nil)
	bytes := 4_000_000
	one := p.Sys.Link.XferNs(bytes)
	var endA, endB float64
	p.Eng.Schedule(a.Model.StartupNs, func() {
		a.EnqueueXfer(bytes, func() { endA = p.Eng.Now() })
		b.EnqueueXfer(bytes, func() { endB = p.Eng.Now() })
	})
	p.Eng.Run()
	start := a.Model.StartupNs
	if endA-start != one {
		t.Errorf("first transfer took %v, want %v", endA-start, one)
	}
	if endB-start != 2*one {
		t.Errorf("second transfer must wait for the link: %v, want %v", endB-start, 2*one)
	}
}

func TestKernelsOnDifferentDevicesOverlap(t *testing.T) {
	// Unlike transfers, kernels on distinct devices run concurrently.
	p := newTestPlatform()
	a, b := p.Devs[0], p.Devs[1]
	a.Start(nil)
	b.Start(nil)
	req := KernelReq{Points: 100000, TSize: 1000, DSize: 1}
	dur := a.Duration(req)
	var endA, endB float64
	p.Eng.Schedule(a.Model.StartupNs, func() {
		a.EnqueueKernel(req, func() { endA = p.Eng.Now() })
		b.EnqueueKernel(req, func() { endB = p.Eng.Now() })
	})
	p.Eng.Run()
	if endA != endB {
		t.Errorf("independent devices must overlap: %v vs %v", endA, endB)
	}
	if got := endA - a.Model.StartupNs; math.Abs(got-dur) > 1e-6*dur {
		t.Errorf("kernel took %v, want %v", got, dur)
	}
}

func TestBufferAccounting(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	buf, err := d.CreateBuffer(1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 1000 {
		t.Errorf("allocated = %d, want 1000", d.Allocated())
	}
	if err := buf.Release(); err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 0 {
		t.Errorf("allocated after release = %d, want 0", d.Allocated())
	}
	if err := buf.Release(); err == nil {
		t.Error("double release must error")
	}
}

func TestBufferOutOfMemory(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0] // 1.6 GB GTX 590
	if _, err := d.CreateBuffer(2_000_000_000); err == nil {
		t.Error("allocating beyond device memory must fail")
	}
}

func TestXferStats(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	d.Start(nil)
	d.EnqueueXfer(1234, nil)
	d.EnqueueXfer(4321, nil)
	p.Eng.Run()
	if d.Stats.Transfers != 2 || d.Stats.XferBytes != 5555 {
		t.Errorf("xfer stats wrong: %+v", d.Stats)
	}
}

func TestHostCompute(t *testing.T) {
	p := newTestPlatform()
	var end float64
	p.HostCompute(5000, func() { end = p.Eng.Now() })
	p.Eng.Run()
	if end != 5000 {
		t.Errorf("host compute finished at %v, want 5000", end)
	}
}

func TestPaddedSlotAccounting(t *testing.T) {
	p := newTestPlatform()
	d := p.Devs[0]
	d.Start(nil)
	d.EnqueueKernel(KernelReq{Points: 1, TSize: 1, DSize: 0}, nil)
	p.Eng.Run()
	if d.Stats.PaddedSlots != d.Model.Width() {
		t.Errorf("padded slots = %d, want %d", d.Stats.PaddedSlots, d.Model.Width())
	}
}

// Package cpuexec executes wavefront computations on the real host CPU.
// It provides the serial reference sweep and the tiled parallel executor
// described in Section 2 of the paper: the grid is partitioned into square
// cpu-tile x cpu-tile tiles, tiles on the same tile-diagonal are
// independent and run concurrently on a goroutine worker pool, and a
// barrier separates consecutive tile-diagonals. Grids may be rectangular
// (rows != cols); tiles at the edges are clipped.
//
// This is the "threads to control CPU phases" half of the paper's library;
// the simulated platforms use the same tile-diagonal schedule via package
// plan, so native runs and modeled runs share one decomposition.
package cpuexec

import (
	"fmt"
	"runtime"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// RunSerial computes every cell of g with k in row-major order, the
// optimized sequential baseline of the paper's comparisons.
func RunSerial(k kernels.Kernel, g *grid.Grid) {
	rows, cols := g.Rows(), g.Cols()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			k.Compute(g, r, c)
		}
	}
}

// RunSerialDiagRange computes the cells on diagonals [lo, hi] of g in
// anti-diagonal order. It is the reference for phase-restricted execution.
func RunSerialDiagRange(k kernels.Kernel, g *grid.Grid, lo, hi int) {
	rows, cols := g.Rows(), g.Cols()
	if lo < 0 {
		lo = 0
	}
	if hi > g.NumDiags()-1 {
		hi = g.NumDiags() - 1
	}
	for d := lo; d <= hi; d++ {
		for i := 0; i < grid.DiagLenRect(rows, cols, d); i++ {
			r, c := grid.DiagCellRect(rows, cols, d, i)
			k.Compute(g, r, c)
		}
	}
}

// Executor runs tiled parallel wavefront sweeps on a persistent
// fixed-size worker pool. An Executor is safe for sequential reuse across
// many runs; Close releases its workers, after which Run returns
// ErrClosed.
type Executor struct {
	workers int
	pl      *pool
}

// New returns an executor with the given worker count; workers <= 0
// selects GOMAXPROCS.
func New(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: workers, pl: newPool(workers)}
}

// Close stops the executor's workers and waits for them to exit. It is
// idempotent; subsequent Run calls return ErrClosed.
func (e *Executor) Close() { e.pl.close() }

// Workers returns the pool size.
func (e *Executor) Workers() int { return e.workers }

// Run computes the whole grid with square tiles of side ct.
func (e *Executor) Run(k kernels.Kernel, g *grid.Grid, ct int) error {
	return e.RunDiagRange(k, g, ct, 0, g.NumDiags()-1)
}

// RunDiagRange computes the cells of g whose diagonal index lies in
// [lo, hi], using tiles of side ct. Tiles are processed tile-diagonal by
// tile-diagonal; within a tile, cells are visited row-major and clipped to
// the diagonal range, so the executor is usable for the CPU phases of the
// three-phase strategy.
func (e *Executor) RunDiagRange(k kernels.Kernel, g *grid.Grid, ct, lo, hi int) error {
	rows, cols := g.Rows(), g.Cols()
	maxSide := rows
	if cols > maxSide {
		maxSide = cols
	}
	if ct < 1 || ct > maxSide {
		return fmt.Errorf("cpuexec: cpu-tile %d outside [1,%d]", ct, maxSide)
	}
	if e.pl.isClosed() {
		return ErrClosed
	}
	if lo < 0 {
		lo = 0
	}
	if hi > g.NumDiags()-1 {
		hi = g.NumDiags() - 1
	}
	if hi < lo {
		return nil
	}
	nTr := (rows + ct - 1) / ct
	nTc := (cols + ct - 1) / ct
	// Tile (I,J) holds cell diagonals [ (I+J)*ct, (I+J+2)*ct-2 ]; it can
	// only contain region cells when (I+J)*ct <= hi and its max diagonal
	// reaches lo.
	tLo := 0
	if lo >= 2*ct-1 {
		tLo = (lo - (2*ct - 2) + ct - 1) / ct
		if tLo < 0 {
			tLo = 0
		}
	}
	tHi := hi / ct
	if tHi > nTr+nTc-2 {
		tHi = nTr + nTc - 2
	}
	for t := tLo; t <= tHi; t++ {
		if err := e.runTileDiag(k, g, ct, nTr, nTc, t, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// runTileDiag executes all tiles with I+J == t in parallel and waits.
// A tile-diagonal is the dense special case of a frontier work set: the
// tiles are mutually independent, and runItems provides the barrier.
func (e *Executor) runTileDiag(k kernels.Kernel, g *grid.Grid, ct, nTr, nTc, t, lo, hi int) error {
	iMin := 0
	if t-(nTc-1) > 0 {
		iMin = t - (nTc - 1)
	}
	iMax := t
	if iMax > nTr-1 {
		iMax = nTr - 1
	}
	return e.runItems(iMax-iMin+1, func(idx int) {
		i := iMin + idx
		computeTile(k, g, i*ct, (t-i)*ct, ct, lo, hi)
	})
}

// runItems is the executor's work-set primitive, shared by the dense
// tile-diagonal schedule and the frontier paths: it runs fn(0..n-1)
// across the pool and blocks until all items complete (the inter-step
// barrier). A single item — the wavefront ramp — runs inline to skip
// the barrier cost.
func (e *Executor) runItems(n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if n == 1 || e.workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return nil
	}
	return e.pl.run(n, fn)
}

// computeTile evaluates the cells of the tile with top-left corner
// (r0, c0), restricted to diagonals [lo, hi].
func computeTile(k kernels.Kernel, g *grid.Grid, r0, c0, ct, lo, hi int) {
	rMax := r0 + ct
	if rMax > g.Rows() {
		rMax = g.Rows()
	}
	cMax := c0 + ct
	if cMax > g.Cols() {
		cMax = g.Cols()
	}
	for r := r0; r < rMax; r++ {
		for c := c0; c < cMax; c++ {
			if d := r + c; d < lo || d > hi {
				continue
			}
			k.Compute(g, r, c)
		}
	}
}

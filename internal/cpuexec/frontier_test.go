package cpuexec

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// frontierKernels are the catalog kernels with interesting live regions:
// the masked pair plus a dense one, so the frontier paths are checked
// against both shapes of substrate.
func frontierKernels() []kernels.Kernel {
	return []kernels.Kernel{
		kernels.NewSynthetic(3, 2),
		kernels.NewNussinov(-1),
		kernels.NewMorphRecon(-1, 11),
		kernels.NewMorphRecon(200, 5), // sparse: ~22% live
	}
}

// TestRunSerialFrontierMatchesSerial: draining any frontier serially
// equals the row-major reference, for dense and irregular frontiers.
func TestRunSerialFrontierMatchesSerial(t *testing.T) {
	for _, k := range frontierKernels() {
		want := grid.NewRect(19, 23, k.DSize())
		RunSerial(k, want)
		rows, cols := want.Rows(), want.Cols()

		dense := grid.NewRect(rows, cols, k.DSize())
		if err := RunSerialFrontier(k, dense, grid.NewDiagFrontier(rows, cols)); err != nil {
			t.Fatalf("%s dense frontier: %v", k.Name(), err)
		}
		if !dense.Equal(want) {
			t.Errorf("%s: dense frontier result differs from serial", k.Name())
		}

		irr := grid.NewRect(rows, cols, k.DSize())
		f := grid.NewIrregularFrontier(rows, cols, kernels.StencilOf(k), kernels.LiveOf(k, rows, cols))
		if err := RunSerialFrontier(k, irr, f); err != nil {
			t.Fatalf("%s irregular frontier: %v", k.Name(), err)
		}
		if !irr.Equal(want) {
			t.Errorf("%s: irregular frontier result differs from serial", k.Name())
		}
	}
}

// TestRunFrontierMatchesSerial: the pooled frontier executor agrees with
// the serial reference across worker counts.
func TestRunFrontierMatchesSerial(t *testing.T) {
	for _, k := range frontierKernels() {
		want := grid.NewRect(26, 31, k.DSize())
		RunSerial(k, want)
		rows, cols := want.Rows(), want.Cols()
		for _, w := range []int{1, 3, 6} {
			ex := New(w)
			got := grid.NewRect(rows, cols, k.DSize())
			f := grid.NewIrregularFrontier(rows, cols, kernels.StencilOf(k), kernels.LiveOf(k, rows, cols))
			if err := ex.RunFrontier(context.Background(), k, got, f); err != nil {
				t.Fatalf("%s w=%d: %v", k.Name(), w, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s w=%d: frontier result differs from serial", k.Name(), w)
			}
			ex.Close()
		}
	}
}

// TestRunIrregularMatchesSerial: the irregular entry point — cell-level
// and tiled — agrees with the serial reference for every kernel.
func TestRunIrregularMatchesSerial(t *testing.T) {
	for _, k := range frontierKernels() {
		want := grid.NewRect(29, 24, k.DSize())
		RunSerial(k, want)
		rows, cols := want.Rows(), want.Cols()
		ex := New(4)
		defer ex.Close()
		for _, ct := range []int{1, 2, 5, 8, 29} {
			got := grid.NewRect(rows, cols, k.DSize())
			if err := ex.RunIrregular(context.Background(), k, got, ct); err != nil {
				t.Fatalf("%s ct=%d: %v", k.Name(), ct, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s ct=%d: irregular result differs from serial", k.Name(), ct)
			}
		}
	}
}

// TestRunFrontierEmptyAndSingle: a fully masked region computes nothing
// and reports success; a single-cell grid computes its one cell.
func TestRunFrontierEmptyAndSingle(t *testing.T) {
	k := kernels.NewSynthetic(2, 1)
	ex := New(2)
	defer ex.Close()

	g := grid.NewRect(6, 6, k.DSize())
	empty := grid.NewIrregularFrontier(6, 6, grid.DenseStencil(), func(r, c int) bool { return false })
	if err := ex.RunFrontier(context.Background(), k, g, empty); err != nil {
		t.Fatalf("empty frontier: %v", err)
	}
	if !g.Equal(grid.NewRect(6, 6, k.DSize())) {
		t.Error("empty frontier modified the grid")
	}

	one := grid.NewRect(1, 1, k.DSize())
	if err := ex.RunFrontier(context.Background(), k, one, grid.NewIrregularFrontier(1, 1, nil, nil)); err != nil {
		t.Fatalf("1x1 frontier: %v", err)
	}
	ref := grid.NewRect(1, 1, k.DSize())
	k.Compute(ref, 0, 0)
	if !one.Equal(ref) {
		t.Error("1x1 frontier did not compute its cell")
	}
}

// TestRunFrontierDeadEnd: a stencil that can never seed (every cell
// waits on a neighbour) must surface ErrFrontierStuck, not hang or
// silently succeed — serial and pooled alike.
func TestRunFrontierDeadEnd(t *testing.T) {
	k := kernels.NewSynthetic(2, 1)
	stuck := func() grid.Frontier {
		return grid.NewIrregularFrontier(4, 4, grid.Stencil{{DR: 0, DC: -1}, {DR: 0, DC: 1}}, nil)
	}
	g := grid.NewRect(4, 4, k.DSize())
	if err := RunSerialFrontier(k, g, stuck()); !errors.Is(err, ErrFrontierStuck) {
		t.Errorf("serial: err = %v, want ErrFrontierStuck", err)
	}
	ex := New(3)
	defer ex.Close()
	if err := ex.RunFrontier(context.Background(), k, g, stuck()); !errors.Is(err, ErrFrontierStuck) {
		t.Errorf("pooled: err = %v, want ErrFrontierStuck", err)
	}
}

// cancellingFrontier wraps a frontier and cancels a context after a
// fixed number of delivered steps, exercising mid-run cancellation.
type cancellingFrontier struct {
	inner  grid.Frontier
	cancel context.CancelFunc
	after  int
	seen   int
}

func (f *cancellingFrontier) Next() ([]grid.Cell, bool) {
	if f.seen == f.after {
		f.cancel()
	}
	f.seen++
	return f.inner.Next()
}
func (f *cancellingFrontier) Cells() int { return f.inner.Cells() }
func (f *cancellingFrontier) Steps() int { return f.inner.Steps() }

// TestRunFrontierCancel: cancellation before and during a run stops the
// executor at the next step barrier with the context's error.
func TestRunFrontierCancel(t *testing.T) {
	k := kernels.NewSynthetic(2, 1)
	ex := New(3)
	defer ex.Close()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	g := grid.NewRect(8, 8, k.DSize())
	err := ex.RunFrontier(pre, k, g, grid.NewDiagFrontier(8, 8))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := &cancellingFrontier{inner: grid.NewDiagFrontier(20, 20), cancel: cancel, after: 5}
	err = ex.RunFrontier(ctx, k, grid.NewRect(20, 20, k.DSize()), f)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-frontier: err = %v, want context.Canceled", err)
	}
	if f.seen >= f.inner.Steps() {
		t.Errorf("executor drained %d steps after cancellation", f.seen)
	}

	// RunIrregular honours cancellation too.
	ictx, icancel := context.WithCancel(context.Background())
	icancel()
	if err := ex.RunIrregular(ictx, k, grid.NewRect(8, 8, k.DSize()), 2); !errors.Is(err, context.Canceled) {
		t.Errorf("RunIrregular pre-cancelled: err = %v, want context.Canceled", err)
	}
}

// TestRunFrontierClosed: frontier entry points refuse a closed executor.
func TestRunFrontierClosed(t *testing.T) {
	k := kernels.NewSynthetic(2, 1)
	ex := New(2)
	ex.Close()
	g := grid.NewRect(4, 4, k.DSize())
	if err := ex.RunFrontier(context.Background(), k, g, grid.NewDiagFrontier(4, 4)); !errors.Is(err, ErrClosed) {
		t.Errorf("RunFrontier on closed executor: %v, want ErrClosed", err)
	}
	if err := ex.RunIrregular(context.Background(), k, g, 2); !errors.Is(err, ErrClosed) {
		t.Errorf("RunIrregular on closed executor: %v, want ErrClosed", err)
	}
}

// TestFrontierSchedulerStress drives several executors through irregular
// and dense frontiers concurrently; run under -race it shakes out data
// races in the work-set scheduling (CI runs it explicitly in the race
// job).
func TestFrontierSchedulerStress(t *testing.T) {
	ks := frontierKernels()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := ks[i%len(ks)]
			want := grid.NewRect(40, 35, k.DSize())
			RunSerial(k, want)
			ex := New(1 + i%4)
			defer ex.Close()
			for rep := 0; rep < 8; rep++ {
				got := grid.NewRect(40, 35, k.DSize())
				var err error
				if rep%2 == 0 {
					err = ex.RunIrregular(context.Background(), k, got, 1+rep%7)
				} else {
					f := grid.NewIrregularFrontier(40, 35, kernels.StencilOf(k), kernels.LiveOf(k, 40, 35))
					err = ex.RunFrontier(context.Background(), k, got, f)
				}
				if err != nil {
					t.Errorf("goroutine %d rep %d: %v", i, rep, err)
					return
				}
				if !got.Equal(want) {
					t.Errorf("goroutine %d rep %d: result differs from serial", i, rep)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

package cpuexec

import (
	"errors"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// withTimeout fails the test instead of hanging forever if fn deadlocks —
// the regression mode of the run-after-close bug.
func withTimeout(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: deadlocked (run after close must return an error, not hang)", name)
	}
}

func TestRunAfterCloseReturnsError(t *testing.T) {
	k := kernels.NewSynthetic(1, 0)
	withTimeout(t, "Run after Close", func() {
		ex := New(3)
		g := grid.New(20, 0)
		if err := ex.Run(k, g, 4); err != nil {
			t.Errorf("run before close: %v", err)
		}
		ex.Close()
		if err := ex.Run(k, g, 4); !errors.Is(err, ErrClosed) {
			t.Errorf("Run after Close = %v, want ErrClosed", err)
		}
		if err := ex.RunDiagRange(k, g, 4, 0, 10); !errors.Is(err, ErrClosed) {
			t.Errorf("RunDiagRange after Close = %v, want ErrClosed", err)
		}
	})
}

func TestPoolRunAfterCloseReturnsError(t *testing.T) {
	// The pool-level guard must hold even without the executor's
	// fast-path check (e.g. a close racing an in-flight run).
	withTimeout(t, "pool.run after close", func() {
		p := newPool(2)
		p.close()
		if err := p.run(8, func(int) {}); !errors.Is(err, ErrClosed) {
			t.Errorf("pool.run after close = %v, want ErrClosed", err)
		}
	})
}

func TestCloseIsIdempotentAndWaitsForWorkers(t *testing.T) {
	withTimeout(t, "double Close", func() {
		ex := New(4)
		g := grid.New(30, 0)
		if err := ex.Run(kernels.NewSynthetic(1, 0), g, 5); err != nil {
			t.Fatal(err)
		}
		// close waits for the workers to exit, so a second close (and any
		// later run) observes a fully quiesced pool.
		ex.Close()
		ex.Close()
		if err := ex.Run(kernels.NewSynthetic(1, 0), g, 5); !errors.Is(err, ErrClosed) {
			t.Errorf("Run after double Close = %v, want ErrClosed", err)
		}
	})
}

func TestCloseRacingRunDrainsInFlightRegion(t *testing.T) {
	// Regression: a close racing an in-flight run must not strand run()
	// on <-p.done — workers drain the published region before honoring
	// closed. Hammer the interleaving; without the drain guarantee this
	// deadlocks (and the watchdog fires).
	k := kernels.NewSynthetic(1, 0)
	for i := 0; i < 200; i++ {
		withTimeout(t, "close racing run", func() {
			ex := New(4)
			g := grid.New(40, 0)
			raced := make(chan error, 1)
			go func() { raced <- ex.Run(k, g, 4) }()
			ex.Close()
			if err := <-raced; err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("racing Run = %v, want nil or ErrClosed", err)
			}
		})
		if t.Failed() {
			return
		}
	}
}

func TestSingleWorkerRunAfterClose(t *testing.T) {
	// The single-worker executor runs tiles inline; it must still refuse
	// work after Close rather than silently computing.
	k := kernels.NewSynthetic(1, 0)
	withTimeout(t, "single-worker Run after Close", func() {
		ex := New(1)
		ex.Close()
		g := grid.New(10, 0)
		if err := ex.Run(k, g, 2); !errors.Is(err, ErrClosed) {
			t.Errorf("Run after Close = %v, want ErrClosed", err)
		}
		for _, v := range g.IntA {
			if v != 0 {
				t.Fatal("closed executor must not compute cells")
			}
		}
	})
}

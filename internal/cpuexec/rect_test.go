package cpuexec

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/kernels"
)

func TestRectParallelMatchesSerial(t *testing.T) {
	// The tiled parallel executor must produce bit-identical results to
	// the serial sweep on rectangular grids, for every kernel and tile
	// size, in both orientations (tall and wide).
	for _, shape := range [][2]int{{17, 41}, {41, 17}, {1, 29}, {29, 1}, {5, 64}} {
		rows, cols := shape[0], shape[1]
		for _, k := range []kernels.Kernel{
			kernels.NewSynthetic(3, 2),
			kernels.NewNash(1),
			kernels.NewSeqCompare(),
			kernels.NewKnapsack(rows),
		} {
			want := grid.NewRect(rows, cols, k.DSize())
			RunSerial(k, want)
			for _, ct := range []int{1, 2, 3, 7, 16, 41} {
				if maxSide := max(rows, cols); ct > maxSide {
					continue
				}
				got := grid.NewRect(rows, cols, k.DSize())
				ex := New(4)
				err := ex.Run(k, got, ct)
				ex.Close()
				if err != nil {
					t.Fatalf("%dx%d %s ct=%d: %v", rows, cols, k.Name(), ct, err)
				}
				if !got.Equal(want) {
					t.Errorf("%dx%d %s ct=%d: parallel result differs from serial",
						rows, cols, k.Name(), ct)
				}
			}
		}
	}
}

func TestRectParallelMatchesSerialProperty(t *testing.T) {
	// Property over random rectangular shapes: any rows x cols, tile and
	// worker count agree with the serial reference bit for bit.
	f := func(rawRows, rawCols, rawCt, rawW uint8) bool {
		rows := int(rawRows)%40 + 1
		cols := int(rawCols)%40 + 1
		if rows == cols {
			cols = rows%40 + 1 // force a rectangular shape
		}
		maxSide := rows
		if cols > maxSide {
			maxSide = cols
		}
		ct := int(rawCt)%maxSide + 1
		w := int(rawW)%6 + 1
		k := kernels.NewSynthetic(2, 1)
		want := grid.NewRect(rows, cols, 1)
		RunSerial(k, want)
		got := grid.NewRect(rows, cols, 1)
		ex := New(w)
		defer ex.Close()
		if err := ex.Run(k, got, ct); err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRectSerialDiagRangeCoversPrefix(t *testing.T) {
	// Diagonal-range execution on a rectangular grid must agree with a
	// row-major sweep restricted to the same diagonals.
	k := kernels.NewSeqCompare()
	rows, cols := 9, 21
	a := grid.NewRect(rows, cols, 0)
	RunSerialDiagRange(k, a, 0, 14)
	b := grid.NewRect(rows, cols, 0)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+c <= 14 {
				k.Compute(b, r, c)
			}
		}
	}
	if !a.Equal(b) {
		t.Error("rect diagonal-prefix execution differs from row-major prefix")
	}
}

func TestRectThreePhaseComposition(t *testing.T) {
	// Phase-restricted runs over a rectangular grid compose into a full
	// sweep exactly as on square grids.
	k := kernels.NewSynthetic(2, 1)
	rows, cols := 14, 33
	want := grid.NewRect(rows, cols, 1)
	RunSerial(k, want)

	got := grid.NewRect(rows, cols, 1)
	ex := New(3)
	defer ex.Close()
	d := grid.NumDiagsRect(rows, cols)
	if err := ex.RunDiagRange(k, got, 4, 0, 11); err != nil {
		t.Fatal(err)
	}
	RunSerialDiagRange(k, got, 12, 30)
	if err := ex.RunDiagRange(k, got, 4, 31, d-1); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("rect three-phase composition differs from full sweep")
	}
}

package cpuexec

import (
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/kernels"
)

func TestParallelMatchesSerial(t *testing.T) {
	// The tiled parallel executor must produce bit-identical results to
	// the serial sweep for every kernel and tile size.
	for _, k := range []kernels.Kernel{
		kernels.NewSynthetic(3, 2),
		kernels.NewNash(1),
		kernels.NewSeqCompare(),
		kernels.NewKnapsack(33),
	} {
		want := grid.New(33, k.DSize())
		RunSerial(k, want)
		for _, ct := range []int{1, 2, 4, 8, 10, 33} {
			got := grid.New(33, k.DSize())
			ex := New(4)
			if err := ex.Run(k, got, ct); err != nil {
				t.Fatalf("%s ct=%d: %v", k.Name(), ct, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s ct=%d: parallel result differs from serial", k.Name(), ct)
			}
		}
	}
}

func TestParallelMatchesSerialProperty(t *testing.T) {
	// Property over random shapes: any dim, tile and worker count agree
	// with the serial reference.
	f := func(rawDim, rawCt, rawW uint8) bool {
		dim := int(rawDim)%40 + 1
		ct := int(rawCt)%dim + 1
		w := int(rawW)%6 + 1
		k := kernels.NewSynthetic(2, 1)
		want := grid.New(dim, 1)
		RunSerial(k, want)
		got := grid.New(dim, 1)
		if err := New(w).Run(k, got, ct); err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestThreePhaseComposition(t *testing.T) {
	// Running the three phases of the hybrid strategy back to back on the
	// CPU must equal one full sweep: phase boundaries cut along diagonals.
	k := kernels.NewSynthetic(2, 1)
	dim := 25
	want := grid.New(dim, 1)
	RunSerial(k, want)

	got := grid.New(dim, 1)
	ex := New(3)
	d := grid.NumDiags(dim)
	if err := ex.RunDiagRange(k, got, 4, 0, 9); err != nil {
		t.Fatal(err)
	}
	RunSerialDiagRange(k, got, 10, 30) // the "GPU" band, serial here
	if err := ex.RunDiagRange(k, got, 4, 31, d-1); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("three-phase composition differs from full sweep")
	}
}

func TestRunDiagRangeOnlyTouchesRange(t *testing.T) {
	k := kernels.NewSynthetic(1, 0)
	dim := 12
	g := grid.New(dim, 0)
	if err := New(2).RunDiagRange(k, g, 3, 5, 8); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			d := r + c
			if (d < 5 || d > 8) && g.A(r, c) != 0 {
				t.Fatalf("cell (%d,%d) outside range was written", r, c)
			}
			if d >= 5 && d <= 8 && g.A(r, c) == 0 {
				t.Fatalf("cell (%d,%d) inside range was skipped", r, c)
			}
		}
	}
}

func TestRunDiagRangeClampsBounds(t *testing.T) {
	k := kernels.NewSynthetic(1, 0)
	g := grid.New(8, 0)
	// Out-of-range lo/hi must clamp rather than fail.
	if err := New(2).RunDiagRange(k, g, 2, -5, 1000); err != nil {
		t.Fatal(err)
	}
	want := grid.New(8, 0)
	RunSerial(k, want)
	if !g.Equal(want) {
		t.Error("clamped full range differs from serial")
	}
}

func TestRunDiagRangeEmpty(t *testing.T) {
	k := kernels.NewSynthetic(1, 0)
	g := grid.New(8, 0)
	if err := New(2).RunDiagRange(k, g, 2, 6, 5); err != nil {
		t.Fatal(err)
	}
	for _, v := range g.IntA {
		if v != 0 {
			t.Fatal("empty range must compute nothing")
		}
	}
}

func TestRunRejectsBadTile(t *testing.T) {
	k := kernels.NewSynthetic(1, 0)
	g := grid.New(8, 0)
	if err := New(1).Run(k, g, 0); err == nil {
		t.Error("ct=0 must be rejected")
	}
	if err := New(1).Run(k, g, 9); err == nil {
		t.Error("ct>dim must be rejected")
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("default worker count must be positive")
	}
	if New(7).Workers() != 7 {
		t.Error("explicit worker count not honored")
	}
}

func TestSerialDiagRangeMatchesRowMajorPrefix(t *testing.T) {
	// Computing diagonals [0, hi] serially must agree with a row-major
	// sweep restricted to those diagonals.
	k := kernels.NewSeqCompare()
	dim := 16
	a := grid.New(dim, 0)
	RunSerialDiagRange(k, a, 0, 12)
	b := grid.New(dim, 0)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if r+c <= 12 {
				k.Compute(b, r, c)
			}
		}
	}
	if !a.Equal(b) {
		t.Error("diagonal-prefix execution differs from row-major prefix")
	}
}

func TestExecutorReuseAndClose(t *testing.T) {
	// One executor across many runs must stay correct (persistent pool).
	k := kernels.NewSynthetic(2, 1)
	want := grid.New(30, 1)
	RunSerial(k, want)
	ex := New(3)
	defer ex.Close()
	for i := 0; i < 10; i++ {
		g := grid.New(30, 1)
		if err := ex.Run(k, g, 5); err != nil {
			t.Fatal(err)
		}
		if !g.Equal(want) {
			t.Fatalf("run %d differs from serial", i)
		}
	}
}

func TestSingleWorkerExecutor(t *testing.T) {
	k := kernels.NewSeqCompare()
	want := grid.New(25, 0)
	RunSerial(k, want)
	ex := New(1)
	defer ex.Close()
	g := grid.New(25, 0)
	if err := ex.Run(k, g, 4); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Error("single-worker run differs from serial")
	}
}

package cpuexec

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Run/RunDiagRange when the executor's pool has
// been closed.
var ErrClosed = errors.New("cpuexec: executor is closed")

// pool is a persistent worker pool used by the executor: workers live for
// the pool's lifetime and pick tile indices off a shared atomic counter,
// so a wavefront of many small tile-diagonals does not pay a goroutine
// spawn per barrier.
type pool struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	gen     int64 // generation counter; bumped per parallel region
	work    func(i int)
	n       int64 // items in the current region
	next    int64 // shared claim counter
	pending int64 // workers still draining the current region
	done    chan struct{}
	closed  bool
	wg      sync.WaitGroup // tracks worker goroutine lifetimes
}

// newPool starts workers goroutines.
func newPool(workers int) *pool {
	p := &pool{workers: workers, done: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	var seen int64
	for {
		p.mu.Lock()
		for p.gen == seen && !p.closed {
			p.cond.Wait()
		}
		if p.gen == seen {
			// Closed with no undrained region. A region published before
			// close must still be drained so its run() call unblocks;
			// exit only once the current generation is finished.
			p.mu.Unlock()
			return
		}
		seen = p.gen
		work, n := p.work, p.n
		p.mu.Unlock()

		for {
			i := atomic.AddInt64(&p.next, 1) - 1
			if i >= n {
				break
			}
			work(int(i))
		}
		if atomic.AddInt64(&p.pending, -1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// run executes work(0..n-1) across the pool and blocks until all items
// complete. It must not be called concurrently with itself. On a closed
// pool it returns ErrClosed instead of deadlocking on workers that have
// already exited.
func (p *pool) run(n int, work func(i int)) error {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.work = work
	p.n = int64(n)
	atomic.StoreInt64(&p.next, 0)
	atomic.StoreInt64(&p.pending, int64(p.workers))
	p.gen++
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
	return nil
}

// isClosed reports whether close has been called.
func (p *pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// close terminates the workers and waits for them to exit. It is
// idempotent; run on a closed pool returns ErrClosed.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

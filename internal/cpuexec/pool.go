package cpuexec

import (
	"sync"
	"sync/atomic"
)

// pool is a persistent worker pool used by the executor: workers live for
// the pool's lifetime and pick tile indices off a shared atomic counter,
// so a wavefront of many small tile-diagonals does not pay a goroutine
// spawn per barrier.
type pool struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	gen     int64 // generation counter; bumped per parallel region
	work    func(i int)
	n       int64 // items in the current region
	next    int64 // shared claim counter
	pending int64 // workers still draining the current region
	done    chan struct{}
	closed  bool
}

// newPool starts workers goroutines.
func newPool(workers int) *pool {
	p := &pool{workers: workers, done: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	var seen int64
	for {
		p.mu.Lock()
		for p.gen == seen && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		seen = p.gen
		work, n := p.work, p.n
		p.mu.Unlock()

		for {
			i := atomic.AddInt64(&p.next, 1) - 1
			if i >= n {
				break
			}
			work(int(i))
		}
		if atomic.AddInt64(&p.pending, -1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// run executes work(0..n-1) across the pool and blocks until all items
// complete. It must not be called concurrently with itself.
func (p *pool) run(n int, work func(i int)) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	p.work = work
	p.n = int64(n)
	atomic.StoreInt64(&p.next, 0)
	atomic.StoreInt64(&p.pending, int64(p.workers))
	p.gen++
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
}

// close terminates the workers. The pool is unusable afterwards.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

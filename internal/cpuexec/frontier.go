package cpuexec

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/grid"
	"repro/internal/kernels"
)

// This file is the frontier half of the executor: where cpuexec.go walks
// the closed-form anti-diagonals of a dense rectangle, the entry points
// here drain any grid.Frontier — one ready set per step, a barrier
// between steps — so irregular live regions (Nussinov's triangle,
// morphological reconstruction on a mask) run through the same worker
// pool as the dense sweeps. The dense diagonal path remains the fast
// special case: a *grid.DiagFrontier is recognized and short-circuited
// into the closed-form enumeration, so regular workloads pay nothing for
// the generalization.

// ErrFrontierStuck is returned when a frontier exhausts before covering
// the region it promised: some live cells never became ready, which
// means the dependency stencil induced a cycle (or a self-dependency)
// over the live region. Executors detect this by comparing delivered
// cells against Frontier.Cells and fail instead of hanging or silently
// under-computing.
var ErrFrontierStuck = errors.New("cpuexec: frontier dead-ended before covering its region")

// frontierStuck wraps ErrFrontierStuck with the coverage shortfall.
func frontierStuck(delivered, want int) error {
	return fmt.Errorf("%w: delivered %d of %d cells", ErrFrontierStuck, delivered, want)
}

// ctxErr returns the context's error, if any; a nil context never
// cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// RunSerialFrontier drains f on a single goroutine, computing each ready
// set in delivery order. A dense *grid.DiagFrontier short-circuits into
// the closed-form diagonal sweep. It returns ErrFrontierStuck when f
// dead-ends before covering its region.
func RunSerialFrontier(k kernels.Kernel, g *grid.Grid, f grid.Frontier) error {
	if df, ok := f.(*grid.DiagFrontier); ok {
		lo, hi := df.DiagRange()
		RunSerialDiagRange(k, g, lo, hi)
		return nil
	}
	delivered := 0
	for {
		step, ok := f.Next()
		if !ok {
			break
		}
		for _, c := range step {
			k.Compute(g, c.R, c.C)
		}
		delivered += len(step)
	}
	if delivered != f.Cells() {
		return frontierStuck(delivered, f.Cells())
	}
	return nil
}

// frontierChunk is the minimum number of cells a pool work item receives
// when a frontier step is split across workers; steps smaller than one
// chunk run inline, since the barrier costs more than the parallelism
// recovers.
const frontierChunk = 16

// RunFrontier drains f on the executor's worker pool: each ready set is
// split into contiguous chunks computed concurrently, with a barrier
// before the next step — exactly the discipline the tile-diagonal path
// uses, applied to explicit work sets. ctx is checked between steps, so
// cancellation takes effect at the next barrier; a nil ctx never
// cancels. Returns ErrFrontierStuck when f dead-ends before covering its
// region, and ErrClosed after Close.
func (e *Executor) RunFrontier(ctx context.Context, k kernels.Kernel, g *grid.Grid, f grid.Frontier) error {
	if e.pl.isClosed() {
		return ErrClosed
	}
	delivered := 0
	for {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		step, ok := f.Next()
		if !ok {
			break
		}
		delivered += len(step)
		if len(step) <= frontierChunk || e.workers == 1 {
			for _, c := range step {
				k.Compute(g, c.R, c.C)
			}
			continue
		}
		chunk := (len(step) + e.workers - 1) / e.workers
		if chunk < frontierChunk {
			chunk = frontierChunk
		}
		n := (len(step) + chunk - 1) / chunk
		err := e.runItems(n, func(i int) {
			lo := i * chunk
			hi := lo + chunk
			if hi > len(step) {
				hi = len(step)
			}
			for _, c := range step[lo:hi] {
				k.Compute(g, c.R, c.C)
			}
		})
		if err != nil {
			return err
		}
	}
	if delivered != f.Cells() {
		return frontierStuck(delivered, f.Cells())
	}
	return nil
}

// monotone reports whether every offset of st points weakly up and left
// (DR <= 0 and DC <= 0, excluding the empty and self cases). A monotone
// stencil can never create cycles between tiles, so the tiled irregular
// path is safe; causal-but-not-monotone stencils (for example an
// up-right offset) are scheduled per cell instead.
func monotone(st grid.Stencil) bool {
	for _, o := range st {
		if o.DR > 0 || o.DC > 0 || (o.DR == 0 && o.DC == 0) {
			return false
		}
	}
	return len(st) > 0
}

// RunIrregular computes the live region of k on g by frontier
// propagation, using the stencil and mask the kernel declares (dense
// stencil and full rectangle when it declares none). For ct > 1 with a
// monotone stencil, scheduling happens per tile: tiles of side ct are
// the work items, their dependency edges are derived from the actual
// cell-level edges that cross tile boundaries, and per-tile in-degree
// counting releases tiles level by level — the irregular generalization
// of the tile-diagonal schedule. Otherwise (ct <= 1, or a stencil with
// rightward offsets) cells are scheduled individually.
//
// Dead cells are skipped, never computed; because masked kernels write
// only the grid's zero initial values in their dead region, the result
// matches a dense sweep of the full rectangle bit for bit.
func (e *Executor) RunIrregular(ctx context.Context, k kernels.Kernel, g *grid.Grid, ct int) error {
	rows, cols := g.Rows(), g.Cols()
	st := kernels.StencilOf(k)
	live := kernels.LiveOf(k, rows, cols)
	if ct <= 1 || !monotone(st) {
		return e.RunFrontier(ctx, k, g, grid.NewIrregularFrontier(rows, cols, st, live))
	}
	return e.runTileFrontier(ctx, k, g, ct, st, live)
}

// runTileFrontier is the tiled irregular scheduler: per-tile in-degree
// counting over the dependency edges that actually cross tile
// boundaries, with the pool computing the ready tiles of each level
// concurrently. Within a tile, live cells are visited row-major, which
// respects every monotone stencil.
func (e *Executor) runTileFrontier(ctx context.Context, k kernels.Kernel, g *grid.Grid, ct int, st grid.Stencil, live func(r, c int) bool) error {
	if e.pl.isClosed() {
		return ErrClosed
	}
	rows, cols := g.Rows(), g.Cols()
	nTr := (rows + ct - 1) / ct
	nTc := (cols + ct - 1) / ct
	nT := nTr * nTc
	liveTile := make([]bool, nT)
	tileOf := func(r, c int) int { return (r/ct)*nTc + c/ct }
	isLive := func(r, c int) bool { return live == nil || live(r, c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if isLive(r, c) {
				liveTile[tileOf(r, c)] = true
			}
		}
	}
	// Derive tile edges from the cell edges that cross tile boundaries,
	// deduplicated so each predecessor tile contributes one unit of
	// in-degree.
	indeg := make([]int32, nT)
	adj := make([][]int32, nT)
	seen := make(map[int64]struct{})
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !isLive(r, c) {
				continue
			}
			ti := tileOf(r, c)
			for _, o := range st {
				pr, pc := r+o.DR, c+o.DC
				if pr < 0 || pr >= rows || pc < 0 || pc >= cols || !isLive(pr, pc) {
					continue
				}
				tp := tileOf(pr, pc)
				if tp == ti {
					continue
				}
				key := int64(tp)*int64(nT) + int64(ti)
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				adj[tp] = append(adj[tp], int32(ti))
				indeg[ti]++
			}
		}
	}
	total := 0
	var ready, next []int32
	for t := 0; t < nT; t++ {
		if !liveTile[t] {
			continue
		}
		total++
		if indeg[t] == 0 {
			ready = append(ready, int32(t))
		}
	}
	done := 0
	for len(ready) > 0 {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		done += len(ready)
		err := e.runItems(len(ready), func(i int) {
			t := int(ready[i])
			computeTileMasked(k, g, (t/nTc)*ct, (t%nTc)*ct, ct, live)
		})
		if err != nil {
			return err
		}
		next = next[:0]
		for _, t := range ready {
			for _, s := range adj[t] {
				if indeg[s]--; indeg[s] == 0 {
					next = append(next, s)
				}
			}
		}
		ready, next = next, ready
	}
	if done != total {
		return fmt.Errorf("%w: completed %d of %d live tiles", ErrFrontierStuck, done, total)
	}
	return nil
}

// computeTileMasked evaluates the live cells of the tile with top-left
// corner (r0, c0) in row-major order.
func computeTileMasked(k kernels.Kernel, g *grid.Grid, r0, c0, ct int, live func(r, c int) bool) {
	rMax := r0 + ct
	if rMax > g.Rows() {
		rMax = g.Rows()
	}
	cMax := c0 + ct
	if cMax > g.Cols() {
		cMax = g.Cols()
	}
	for r := r0; r < rMax; r++ {
		for c := c0; c < cMax; c++ {
			if live != nil && !live(r, c) {
				continue
			}
			k.Compute(g, r, c)
		}
	}
}

package service

// The /v1/apps surface: workload discovery. Clients list the registered
// application catalog — names, granularity on the paper's tsize/dsize
// scales, parameter schemas and shape constraints — so a tuning or job
// request can be built without out-of-band knowledge. The listing is
// generated from the apps registry, the same source of truth the tune
// and job validators use, so it can never drift from what the daemon
// actually accepts.

import (
	"net/http"

	"repro/internal/apps"
	"repro/internal/telemetry"
)

// AppParamInfo is the wire form of one application parameter spec.
type AppParamInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Default is absent for required parameters.
	Default  *float64 `json:"default,omitempty"`
	Required bool     `json:"required,omitempty"`
	Integer  bool     `json:"integer,omitempty"`
	// Min and Max expose the accepted range when the spec bounds it, so
	// clients can see the constraint their values are validated against.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
}

// AppInfo describes one catalog application in GET /v1/apps.
type AppInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Recurrence  string `json:"recurrence,omitempty"`
	Ref         string `json:"ref,omitempty"`
	// TSize and DSize are the granularity at default parameters; absent
	// when the app has no default granularity (the synthetic trainer,
	// whose tsize/dsize are required parameters).
	TSize      *float64       `json:"tsize,omitempty"`
	DSize      *int           `json:"dsize,omitempty"`
	SquareOnly bool           `json:"square_only,omitempty"`
	Params     []AppParamInfo `json:"params,omitempty"`
}

// appInfo converts a registry entry into its wire form.
func appInfo(a apps.App) AppInfo {
	info := AppInfo{
		Name: a.Name, Description: a.Description,
		Recurrence: a.Recurrence, Ref: a.Ref,
		SquareOnly: a.SquareOnly,
	}
	if tsize, dsize, ok := a.DefaultGranularity(); ok {
		t, d := tsize, dsize
		info.TSize, info.DSize = &t, &d
	}
	for _, p := range a.Params {
		pi := AppParamInfo{
			Name: p.Name, Description: p.Description,
			Required: p.Required, Integer: p.Integer,
		}
		if !p.Required {
			d := p.Default
			pi.Default = &d
		}
		if p.Min < p.Max {
			lo, hi := p.Min, p.Max
			pi.Min, pi.Max = &lo, &hi
		}
		info.Params = append(info.Params, pi)
	}
	return info
}

// handleApps serves GET /v1/apps: the application catalog, sorted by
// name.
func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.appsReqs.Add(1)
	all := apps.All()
	infos := make([]AppInfo, 0, len(all))
	for _, a := range all {
		infos = append(infos, appInfo(a))
	}
	if span := telemetry.SpanFrom(r.Context()); span != nil {
		span.Annotate("apps", len(infos))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"apps": infos, "count": len(infos)})
}

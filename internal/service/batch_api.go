package service

// The /v1/tune/batch surface: many tune queries in one request. Dynamic
// autotuners amortize tuning cost by reusing and batching queries (cf.
// Kernel Tuning Toolkit, arXiv:1910.08498); here a client that needs
// plans for a whole sweep of shapes pays one round trip instead of N,
// repeated keys inside the batch collapse to a single cache lookup (and
// so at most one model evaluation), and distinct keys fan out across the
// sharded plan cache in parallel. Item failures are reported per item —
// one bad shape never fails the rest of the batch.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/plan"
	"repro/internal/telemetry"
	"repro/internal/tunecache"
)

// DefaultBatchLimit caps the items of one POST /v1/tune/batch request
// when Config.BatchLimit does not.
const DefaultBatchLimit = 64

// BatchTuneRequest is the body of POST /v1/tune/batch. System, when set,
// is the default for items that do not name their own.
type BatchTuneRequest struct {
	System string        `json:"system,omitempty"`
	Items  []TuneRequest `json:"items"`
}

// BatchTuneResult is one item's outcome: the tune response on success,
// or an error message scoped to that item alone.
type BatchTuneResult struct {
	*TuneResponse
	Error string `json:"error,omitempty"`
}

// BatchTuneResponse is the body of a POST /v1/tune/batch reply. Results
// aligns index-for-index with the request's items.
type BatchTuneResponse struct {
	Count   int               `json:"count"`
	Errors  int               `json:"errors"`
	Results []BatchTuneResult `json:"results"`
}

// batchItem is the resolved form of one request item before the fan-out.
type batchItem struct {
	system string
	key    string // tunecache.Key once resolved; "" for invalid items
	err    string
}

// batchLimit returns the configured per-request item bound.
func (s *Server) batchLimit() int {
	if s.cfg.BatchLimit > 0 {
		return s.cfg.BatchLimit
	}
	return DefaultBatchLimit
}

func (s *Server) handleTuneBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.checkJSONBody(w, r) {
		return
	}
	s.batchReqs.Add(1)
	var req BatchTuneRequest
	// The body bound scales with the batch limit so a full batch of
	// maximal items still decodes (each item is well under 1 KiB).
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(1+s.batchLimit())<<10))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "unexpected data after request body")
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, "items is required and must not be empty")
		return
	}
	if len(req.Items) > s.batchLimit() {
		s.writeError(w, http.StatusBadRequest,
			"%d items exceed the batch limit %d", len(req.Items), s.batchLimit())
		return
	}

	// Resolve every item first: system fallback, instance validation,
	// cache key. Invalid items keep their error and sit out the fan-out.
	items := make([]batchItem, len(req.Items))
	insts := make(map[string]tuneKeyWork, len(req.Items))
	for i, it := range req.Items {
		system := it.System
		if system == "" {
			system = req.System
		}
		items[i].system = system
		if system == "" {
			items[i].err = "system is required (per item or batch-level)"
			continue
		}
		if _, ok := s.systems[system]; !ok {
			items[i].err = fmt.Sprintf("unknown system %q", system)
			continue
		}
		inst, _, err := it.instanceFrom()
		if err != nil {
			items[i].err = fmt.Sprintf("invalid instance: %v", err)
			continue
		}
		k := tunecache.Key(system, inst)
		items[i].key = k
		if _, dup := insts[k]; !dup {
			insts[k] = tuneKeyWork{system: system, inst: inst}
		}
	}

	// Fan out: exactly one cache lookup per unique key, concurrently, so
	// distinct keys ride different cache shards in parallel. Repeated
	// keys inside the batch share one lookup (and its outcome label) —
	// the cache's singleflight would already collapse the predicts, but
	// deduping before the fan-out also avoids burning a goroutine and a
	// hit-path lock acquisition per duplicate.
	results := make(map[string]tuneKeyResult, len(insts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	reqCtx := r.Context()
	for k, work := range insts {
		wg.Add(1)
		go func(k string, work tuneKeyWork) {
			defer wg.Done()
			// Each unique key gets its own cache.lookup span — a
			// concurrent child of the request's http.request span — so
			// a slow batch's trace shows which shard/key stalled it.
			lctx, lookup := telemetry.StartSpan(reqCtx, "cache.lookup")
			if lookup != nil {
				lookup.Annotate("system", work.system).
					Annotate("shard", s.cache.ShardIndex(work.system, work.inst))
			}
			t0 := time.Now()
			p, outcome, err := s.cache.GetCtx(lctx, work.system, work.inst)
			lookup.Annotate("outcome", outcome).End()
			s.m.cacheLookupSec.Observe(time.Since(t0).Seconds())
			mu.Lock()
			results[k] = tuneKeyResult{plan: p, outcome: outcome, err: err}
			mu.Unlock()
		}(k, work)
	}
	wg.Wait()

	resp := BatchTuneResponse{Count: len(items), Results: make([]BatchTuneResult, len(items))}
	for i := range items {
		if items[i].err != "" {
			resp.Results[i] = BatchTuneResult{Error: items[i].err}
			resp.Errors++
			continue
		}
		res := results[items[i].key]
		if res.err != nil {
			resp.Results[i] = BatchTuneResult{Error: fmt.Sprintf("tuning failed: %v", res.err)}
			resp.Errors++
			continue
		}
		work := insts[items[i].key]
		tr := tuneResponseFor(items[i].system, work.inst, res.plan, res.outcome)
		resp.Results[i] = BatchTuneResult{TuneResponse: &tr}
	}
	if resp.Errors > 0 {
		// Per-item failures do not fail the batch, but they are request
		// errors for the counters' purposes.
		s.m.errors["batch"].Inc()
	}
	s.logf("tune batch: %d items, %d unique keys, %d errors",
		len(items), len(insts), resp.Errors)
	s.writeJSON(w, http.StatusOK, resp)
}

// tuneKeyWork and tuneKeyResult carry one unique key through the batch
// fan-out.
type tuneKeyWork struct {
	system string
	inst   plan.Instance
}

type tuneKeyResult struct {
	plan    tunecache.Plan
	outcome tunecache.Outcome
	err     error
}

// BatchTune is the client half of POST /v1/tune/batch: it submits req to
// the daemon at baseURL (e.g. "http://localhost:8080") and decodes the
// per-item results. client == nil selects http.DefaultClient. A non-2xx
// reply (the batch itself was rejected: too many items, malformed JSON)
// is returned as an error; per-item failures live in the result slice.
func BatchTune(ctx context.Context, client *http.Client, baseURL string, req BatchTuneRequest) (*BatchTuneResponse, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encoding batch request: %w", err)
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/tune/batch"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("service: posting batch: %w", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(io.LimitReader(hresp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("service: batch rejected (%s): %s", hresp.Status, e.Error)
		}
		return nil, fmt.Errorf("service: batch rejected: %s", hresp.Status)
	}
	var out BatchTuneResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("service: decoding batch response: %w", err)
	}
	return &out, nil
}

package service

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/hw"
)

// TunerSource resolves the trained predictor for a system.
// Implementations must be safe for concurrent use; the server calls
// Tuner lazily from the cache's miss path, so a source is only exercised
// for systems that actually receive traffic.
type TunerSource interface {
	Tuner(sys hw.System) (core.Predictor, error)
}

// ReadyReporter is the optional interface a TunerSource may implement to
// report whether a system's tuner has been resolved successfully;
// GET /v1/systems consults it for the "lazy"/"ready" field. Sources that
// wrap another TunerSource should forward Ready to keep the readiness
// signal visible.
type ReadyReporter interface {
	Ready(system string) bool
}

// tunerSlot is one system's lazily resolved predictor; done closes when
// the resolve finishes, giving tuner resolution the same singleflight
// property the plan cache gives predictions: concurrent first requests
// for a system run one search, later ones block on its result.
type tunerSlot struct {
	done  chan struct{}
	tuner core.Predictor
	err   error
}

// lazySource shares the slot bookkeeping between sources that resolve a
// tuner at most once per system.
type lazySource struct {
	mu      sync.Mutex
	slots   map[string]*tunerSlot
	resolve func(sys hw.System) (core.Predictor, error)
}

func newLazySource(resolve func(sys hw.System) (core.Predictor, error)) *lazySource {
	return &lazySource{slots: make(map[string]*tunerSlot), resolve: resolve}
}

// Tuner implements TunerSource. A failed resolve is not retried: the
// error is remembered, matching the daemon's "misconfiguration is
// permanent until restart" stance for missing tuner files. The wrapped
// error is settled into the slot once, so the first caller and every
// later one observe the identical error value.
func (l *lazySource) Tuner(sys hw.System) (core.Predictor, error) {
	l.mu.Lock()
	slot, ok := l.slots[sys.Name]
	if !ok {
		slot = &tunerSlot{done: make(chan struct{})}
		l.slots[sys.Name] = slot
		l.mu.Unlock()
		// The slot must settle even if the resolve panics (training or a
		// file load blowing up), or every later request for the system
		// would block forever on done.
		func() {
			defer close(slot.done)
			defer func() {
				if r := recover(); r != nil {
					slot.tuner, slot.err = nil, fmt.Errorf("resolving tuner for %s panicked: %v", sys.Name, r)
				}
			}()
			slot.tuner, slot.err = l.resolve(sys)
			if slot.err != nil {
				slot.err = fmt.Errorf("resolving tuner for %s: %w", sys.Name, slot.err)
			}
		}()
		return slot.tuner, slot.err
	}
	l.mu.Unlock()
	<-slot.done
	return slot.tuner, slot.err
}

// Ready reports whether the named system's tuner has been resolved
// successfully (consumed by GET /v1/systems). It never blocks, even
// while a resolve is in flight.
func (l *lazySource) Ready(name string) bool {
	l.mu.Lock()
	slot, ok := l.slots[name]
	l.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-slot.done:
		return slot.err == nil
	default:
		return false
	}
}

// TrainingSourceOptions configure NewTrainingSource.
type TrainingSourceOptions struct {
	// Space is the exhaustive search space to train on; empty selects
	// core.QuickSpace() (about a second per system on a laptop-class
	// host). Use core.DefaultSpace() for paper-scale tuners.
	Space core.Space
	// TrainOpts configure model fitting; the zero value selects
	// core.DefaultTrainOptions().
	TrainOpts core.TrainOptions
	// Kind selects the prediction backend (core.KindTree or
	// core.KindBilinear); empty selects the tree ensemble.
	Kind string
}

// NewTrainingSource returns a source that trains a predictor per system
// on first use: an exhaustive search of the options' space followed by
// the configured backend's model pipeline, exactly the "factory" path of
// wavetrain.
func NewTrainingSource(opts TrainingSourceOptions) TunerSource {
	space := opts.Space
	if len(space.Dims) == 0 && len(space.Rects) == 0 {
		space = core.QuickSpace()
	}
	return newLazySource(func(sys hw.System) (core.Predictor, error) {
		sr, err := core.Exhaustive(sys, space, core.SearchOptions{})
		if err != nil {
			return nil, fmt.Errorf("searching %s: %w", sys.Name, err)
		}
		// core.TrainPredictor applies per-field defaults to zero
		// TrainOptions.
		return core.TrainPredictor(opts.Kind, sr, opts.TrainOpts)
	})
}

// NewDirSource returns a source that loads "<dir>/<system>.json" files
// written by Save (wavetrain -save) on first use; the file's kind
// discriminator selects the backend, with v1 files loading as trees. A
// file trained for a different system than its name indicates is
// rejected.
func NewDirSource(dir string) TunerSource {
	return newLazySource(func(sys hw.System) (core.Predictor, error) {
		path := filepath.Join(dir, sys.Name+".json")
		t, err := core.LoadPredictor(path)
		if err != nil {
			return nil, err
		}
		if t.System().Name != sys.Name {
			return nil, fmt.Errorf("tuner %s was trained for %s, not %s", path, t.System().Name, sys.Name)
		}
		return t, nil
	})
}

// StaticSource serves pre-built predictors (tests, embedded
// deployments).
type StaticSource struct {
	tuners map[string]core.Predictor

	mu      sync.Mutex
	missing map[string]error
}

// NewStaticSource indexes the given predictors by system name.
func NewStaticSource(tuners ...core.Predictor) *StaticSource {
	m := &StaticSource{
		tuners:  make(map[string]core.Predictor, len(tuners)),
		missing: make(map[string]error),
	}
	for _, t := range tuners {
		m.tuners[t.System().Name] = t
	}
	return m
}

// Tuner implements TunerSource. Like lazySource, a miss surfaces the
// same error value on every call, not a fresh one per request.
func (m *StaticSource) Tuner(sys hw.System) (core.Predictor, error) {
	if t, ok := m.tuners[sys.Name]; ok {
		return t, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	err, ok := m.missing[sys.Name]
	if !ok {
		err = fmt.Errorf("no tuner for system %q", sys.Name)
		m.missing[sys.Name] = err
	}
	return nil, err
}

// Ready implements the readiness probe: static tuners are always ready.
func (m *StaticSource) Ready(name string) bool { _, ok := m.tuners[name]; return ok }

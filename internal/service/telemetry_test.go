package service

// Tests of the observability layer: the /metrics exposition (validated
// line by line), the request-ID plumbing through headers, error bodies
// and job/pipeline records, the /v1/stats telemetry block rendering
// the same registry, structured request logging in both formats, and
// slow-request span-tree dumps.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// syncBuffer is a mutex-guarded buffer: the middleware logs after the
// response is written, so the client can observe the response before
// the log line lands and the test must poll.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsScrapeValid drives every route family and then checks the
// exposition strictly: parseable, HELP/TYPE paired, histograms
// well-formed, and the series the traffic must have minted present
// with the right values.
func TestMetricsScrapeValid(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// One miss, one hit on the tune path; a batch; a bad request; a
	// health probe; a jobs listing.
	body := `{"system":"i7-2600K","dim":1900,"tsize":750,"dsize":4}`
	postTune(t, ts.URL, body)
	postTune(t, ts.URL, body)
	resp, err := http.Post(ts.URL+"/v1/tune/batch", "application/json",
		strings.NewReader(`{"system":"i7-2600K","items":[{"dim":700,"tsize":10,"dsize":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	_, bad := postTune(t, ts.URL, `{"system":"nope","dim":100,"tsize":10,"dsize":1}`)
	if bad.StatusCode != http.StatusNotFound {
		t.Fatalf("bad tune status %d, want 404", bad.StatusCode)
	}
	for _, path := range []string{"/healthz", "/v1/jobs", "/does/not/exist"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	var text string
	// The latency observation for a request lands after its response is
	// written; poll until the tune requests' durations are visible.
	waitFor(t, "tune latency observations", func() bool {
		text = scrapeMetrics(t, ts.URL)
		return strings.Contains(text, `waved_http_request_duration_seconds_count{route="tune"} 3`)
	})

	if err := telemetry.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}

	for _, want := range []string{
		// Handler-level request counters (three tune requests: two good,
		// one rejected before handling completed still counts).
		`waved_http_requests_total{route="tune"} 3`,
		`waved_http_requests_total{route="batch"} 1`,
		`waved_http_requests_total{route="healthz"} 1`,
		// The unknown path collapsed into "other" instead of minting a
		// series.
		`waved_http_responses_total{route="other",code="404"} 1`,
		// The bad tune answered 404 and counted as a tune-route error.
		`waved_http_errors_total{route="tune"} 1`,
		`waved_http_responses_total{route="tune",code="404"} 1`,
		// Cache outcomes per shard: the repeated tune is a hit, the two
		// distinct instances are misses.
		`outcome="hit"`,
		`outcome="miss"`,
		// Stage histograms fed from span durations.
		"waved_cache_lookup_duration_seconds_count",
		"waved_tuner_predict_duration_seconds_count",
		// Subsystem collectors.
		"waved_job_queue_depth 0",
		"waved_jobs_running 0",
		`waved_jobs_events_total{event="submitted"} 0`,
		"waved_pipeline_waves_resolved_total 0",
		"waved_uptime_seconds",
		// Job-manager histograms registered even before any job ran.
		"waved_job_execution_seconds_count 0",
		"waved_pipeline_wave_seconds_count 0",
		"waved_engine_measure_seconds_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, fam := range []string{
		"waved_http_requests_total", "waved_http_request_duration_seconds",
		"waved_cache_lookups_total", "waved_job_queue_wait_seconds",
	} {
		if !strings.Contains(text, "# HELP "+fam+" ") {
			t.Errorf("missing HELP for %s", fam)
		}
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("missing TYPE for %s", fam)
		}
	}
	// Scraping /metrics is itself a counted route.
	if !strings.Contains(text, `waved_http_requests_total{route="metrics"}`) {
		t.Error("metrics route not pre-registered")
	}
}

// TestMetricsAfterJobAndPipeline proves the job-path histograms and
// lifecycle collectors move when work actually runs.
func TestMetricsAfterJobAndPipeline(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	ji, resp := postJob(t, ts.URL, `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d", resp.StatusCode)
	}
	pollJob(t, ts.URL, ji.ID)

	presp, err := http.Post(ts.URL+"/v1/pipelines", "application/json",
		strings.NewReader(`{"system":"i7-2600K","waves":[{"jobs":[{"dim":600,"tsize":10,"dsize":1}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var pi PipelineInfo
	if err := json.NewDecoder(presp.Body).Decode(&pi); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusAccepted {
		t.Fatalf("pipeline submit status %d", presp.StatusCode)
	}
	waitFor(t, "pipeline to finish", func() bool {
		r, err := http.Get(ts.URL + "/v1/pipelines/" + pi.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var p PipelineInfo
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return p.State == "succeeded"
	})

	text := scrapeMetrics(t, ts.URL)
	if err := telemetry.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid after jobs: %v", err)
	}
	for _, want := range []string{
		`waved_jobs_events_total{event="submitted"} 2`,
		`waved_jobs_events_total{event="succeeded"} 2`,
		`waved_pipelines_events_total{event="submitted"} 1`,
		`waved_pipelines_events_total{event="succeeded"} 1`,
		"waved_pipeline_waves_resolved_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The histograms fed by the job path must have observations now:
	// queue wait and execution for both jobs, at least one wave, and
	// engine measurements underneath.
	for _, fam := range []string{
		"waved_job_queue_wait_seconds_count 2",
		"waved_job_execution_seconds_count 2",
		"waved_pipeline_wave_seconds_count 1",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("exposition missing %q", fam)
		}
	}
	if strings.Contains(text, "waved_engine_measure_seconds_count 0") {
		t.Error("engine measurements not observed")
	}
}

// TestRequestIDPlumbing checks the X-Request-ID contract: echoed when
// supplied, generated when absent, stamped into error bodies and into
// job and pipeline records.
func TestRequestIDPlumbing(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// Generated when absent.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(id, "req-") {
		t.Errorf("generated request ID = %q, want req- prefix", id)
	}

	// Echoed when supplied, and stamped into the 4xx error body.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/tune",
		strings.NewReader(`{"system":"nope","dim":100,"tsize":10,"dsize":1}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "req-test-1234")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "req-test-1234" {
		t.Errorf("echoed request ID = %q", got)
	}
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.RequestID != "req-test-1234" {
		t.Errorf("error body request_id = %q, want req-test-1234", eb.RequestID)
	}
	if eb.Error == "" {
		t.Error("error body lost its message")
	}

	// Stamped into the job record created by the submission.
	jreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`))
	if err != nil {
		t.Fatal(err)
	}
	jreq.Header.Set("Content-Type", "application/json")
	jreq.Header.Set("X-Request-ID", "req-job-origin")
	jresp, err := http.DefaultClient.Do(jreq)
	if err != nil {
		t.Fatal(err)
	}
	var ji JobInfo
	if err := json.NewDecoder(jresp.Body).Decode(&ji); err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if ji.RequestID != "req-job-origin" {
		t.Errorf("job record request_id = %q, want req-job-origin", ji.RequestID)
	}
	if got, _ := getJob(t, ts.URL, ji.ID); got.RequestID != "req-job-origin" {
		t.Errorf("polled job request_id = %q", got.RequestID)
	}

	// Pipeline submissions propagate their ID to wave jobs.
	preq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/pipelines",
		strings.NewReader(`{"system":"i7-2600K","waves":[{"jobs":[{"dim":600,"tsize":10,"dsize":1}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set("X-Request-ID", "req-pipe-origin")
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	var pi PipelineInfo
	if err := json.NewDecoder(presp.Body).Decode(&pi); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if pi.RequestID != "req-pipe-origin" {
		t.Errorf("pipeline record request_id = %q", pi.RequestID)
	}
	waitFor(t, "pipeline wave job", func() bool {
		r, err := http.Get(ts.URL + "/v1/pipelines/" + pi.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var p PipelineInfo
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		return len(p.Waves) == 1 && len(p.Waves[0].JobIDs) > 0
	})
	r, err := http.Get(ts.URL + "/v1/pipelines/" + pi.ID)
	if err != nil {
		t.Fatal(err)
	}
	var p PipelineInfo
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	wj, _ := getJob(t, ts.URL, p.Waves[0].JobIDs[0])
	if wj.RequestID != "req-pipe-origin" {
		t.Errorf("wave job request_id = %q, want inherited req-pipe-origin", wj.RequestID)
	}
}

// TestStatsTelemetryBlock checks the /v1/stats rendering of the shared
// registry: per-route counts agree with the legacy Requests map, and
// completed requests show up in the latency quantiles.
func TestStatsTelemetryBlock(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := `{"system":"i7-2600K","dim":1900,"tsize":750,"dsize":4}`
	postTune(t, ts.URL, body)
	postTune(t, ts.URL, body)

	var st StatsResponse
	waitFor(t, "tune observations in stats", func() bool {
		st = getStats(t, ts.URL)
		return st.Telemetry.Routes["tune"].Observed == 2
	})

	tune := st.Telemetry.Routes["tune"]
	if tune.Requests != 2 {
		t.Errorf("telemetry tune requests = %d, want 2", tune.Requests)
	}
	if tune.Requests != st.Requests["tune"] {
		t.Errorf("telemetry (%d) and legacy (%d) tune counts disagree",
			tune.Requests, st.Requests["tune"])
	}
	if tune.P50Sec <= 0 || tune.P99Sec < tune.P50Sec {
		t.Errorf("tune quantiles implausible: p50=%g p99=%g", tune.P50Sec, tune.P99Sec)
	}
	if st.Telemetry.UptimeSec <= 0 {
		t.Errorf("uptime = %g, want > 0", st.Telemetry.UptimeSec)
	}
	// The stats request reading InFlight is itself in flight.
	if st.Telemetry.InFlight < 1 {
		t.Errorf("in_flight = %d, want >= 1", st.Telemetry.InFlight)
	}
	if _, ok := st.Telemetry.Routes["other"]; !ok {
		t.Error("telemetry routes missing the catch-all")
	}
}

// TestStructuredRequestLog checks both log encodings produce one line
// per request with the request's fields.
func TestStructuredRequestLog(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format telemetry.LogFormat
	}{
		{"text", telemetry.FormatText},
		{"json", telemetry.FormatJSON},
	} {
		t.Run(tc.name, func(t *testing.T) {
			buf := &syncBuffer{}
			_, ts, _ := newTestServer(t, Config{Logger: telemetry.NewLogger(buf, tc.format)})
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			id := resp.Header.Get("X-Request-ID")

			waitFor(t, "request log line", func() bool {
				return strings.Contains(buf.String(), id)
			})
			line := ""
			for _, l := range strings.Split(buf.String(), "\n") {
				if strings.Contains(l, id) {
					line = l
					break
				}
			}
			switch tc.format {
			case telemetry.FormatText:
				for _, want := range []string{"msg=request", "route=healthz", "status=200", "request_id=" + id} {
					if !strings.Contains(line, want) {
						t.Errorf("text line missing %q: %s", want, line)
					}
				}
			case telemetry.FormatJSON:
				var rec map[string]any
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					t.Fatalf("log line is not JSON: %v: %s", err, line)
				}
				if rec["msg"] != "request" || rec["route"] != "healthz" || rec["request_id"] != id {
					t.Errorf("json line fields wrong: %s", line)
				}
				if fmt.Sprint(rec["status"]) != "200" {
					t.Errorf("json status = %v", rec["status"])
				}
			}
		})
	}
}

// TestSlowRequestSpanTree checks that requests over the threshold log
// their full span tree, child spans included.
func TestSlowRequestSpanTree(t *testing.T) {
	buf := &syncBuffer{}
	var mu sync.Mutex
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(buf, format+"\n", args...)
	}
	_, ts, _ := newTestServer(t, Config{Logf: logf, SlowRequest: time.Nanosecond})

	postTune(t, ts.URL, `{"system":"i7-2600K","dim":1900,"tsize":750,"dsize":4}`)
	waitFor(t, "slow-request dump", func() bool {
		return strings.Contains(buf.String(), "slow request")
	})
	out := buf.String()
	for _, want := range []string{"http.request", "cache.lookup", "tuner.predict"} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsMethodNotAllowed: the exposition handler only answers GET
// and HEAD.
func TestMetricsMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status %d, want 405", resp.StatusCode)
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
)

func getApps(t *testing.T, url string) (map[string]AppInfo, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/apps status %d", resp.StatusCode)
	}
	var body struct {
		Apps  []AppInfo `json:"apps"`
		Count int       `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]AppInfo, len(body.Apps))
	for _, a := range body.Apps {
		byName[a.Name] = a
	}
	return byName, body.Count
}

// TestAppsEndpoint: GET /v1/apps lists the full catalog with
// granularities and parameter schemas matching the registry.
func TestAppsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	byName, count := getApps(t, ts.URL)
	if count < 8 || count != len(byName) {
		t.Fatalf("count = %d (%d distinct), want >= 8", count, len(byName))
	}
	for _, want := range []string{"synthetic", "nash", "seqcompare", "knapsack", "swaffine", "lcs", "dtw", "nussinov"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("catalog missing %q", want)
		}
	}
	if nash := byName["nash"]; nash.TSize == nil || *nash.TSize != 750 || nash.DSize == nil || *nash.DSize != 4 {
		t.Errorf("nash granularity = %+v, want tsize 750 dsize 4", nash)
	}
	if syn := byName["synthetic"]; syn.TSize != nil || syn.DSize != nil {
		t.Errorf("synthetic must report no default granularity, got %+v", syn)
	} else {
		required := 0
		for _, p := range syn.Params {
			if p.Required {
				required++
			}
		}
		if required != 2 {
			t.Errorf("synthetic must declare tsize and dsize required, got %+v", syn.Params)
		}
	}
	if !byName["nussinov"].SquareOnly {
		t.Error("nussinov must be marked square_only")
	}

	// Method hygiene.
	resp, err := http.Post(ts.URL+"/v1/apps", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/apps status %d, want 405", resp.StatusCode)
	}
	st := getStats(t, ts.URL)
	if st.Requests["apps"] != 1 {
		t.Errorf("apps request counter = %d, want 1", st.Requests["apps"])
	}
}

// TestEveryCatalogAppTunesAndRuns is the acceptance criterion end to
// end: every registered application is tunable via POST /v1/tune and
// runnable via POST /v1/jobs, with no per-app code in the service.
func TestEveryCatalogAppTunesAndRuns(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			body := fmt.Sprintf(`{"system":"i7-2600K","dim":300,"app":%q`, a.Name)
			if _, _, ok := a.DefaultGranularity(); !ok {
				// The synthetic trainer's granularity is a required input.
				body += `,"tsize":10,"dsize":1`
			}
			body += `}`

			tr, resp := postTune(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /v1/tune status %d", resp.StatusCode)
			}
			if tr.Instance.TSize <= 0 {
				t.Errorf("tune response granularity not populated: %+v", tr.Instance)
			}

			jresp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
				bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			var ji JobInfo
			if err := json.NewDecoder(jresp.Body).Decode(&ji); err != nil {
				t.Fatal(err)
			}
			jresp.Body.Close()
			if jresp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST /v1/jobs status %d", jresp.StatusCode)
			}
			if ji.App != a.Name {
				t.Errorf("job app echo = %q, want %q", ji.App, a.Name)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			job, err := s.Jobs().Await(ctx, ji.ID)
			if err != nil {
				t.Fatal(err)
			}
			if job.State.String() != "succeeded" {
				t.Fatalf("job state = %s (err %q)", job.State, job.Err)
			}
			if job.Result == nil || job.Result.MeasuredNs <= 0 {
				t.Errorf("job result missing measurement: %+v", job.Result)
			}
		})
	}
}

// TestAppParamsFlow: params reach the granularity derivation and are
// echoed on job records.
func TestAppParamsFlow(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	tr, resp := postTune(t, ts.URL,
		`{"system":"i7-2600K","dim":700,"app":"nash","params":{"rounds":3}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if tr.Instance.TSize != 2250 {
		t.Errorf("params.rounds=3 gave tsize %g, want 2250", tr.Instance.TSize)
	}
	// Legacy top-level rounds still works on its own...
	tr, _ = postTune(t, ts.URL,
		`{"system":"i7-2600K","dim":700,"app":"nash","rounds":5}`)
	if tr.Instance.TSize != 3750 {
		t.Errorf("legacy rounds=5 gave tsize %g, want 3750", tr.Instance.TSize)
	}
	// ...but supplying both spellings of one parameter is a conflict,
	// not a silent precedence pick.
	if _, resp := postTune(t, ts.URL,
		`{"system":"i7-2600K","dim":700,"app":"nash","rounds":5,"params":{"rounds":2}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting rounds spellings status = %d, want 400", resp.StatusCode)
	}
	if _, resp := postTune(t, ts.URL,
		`{"system":"i7-2600K","dim":700,"app":"synthetic","params":{"tsize":100,"dsize":1},"tsize":5}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("conflicting tsize spellings status = %d, want 400", resp.StatusCode)
	}

	jresp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(
		`{"system":"i7-2600K","dim":300,"app":"swaffine","params":{"gap_open":12}}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var ji JobInfo
	if err := json.NewDecoder(jresp.Body).Decode(&ji); err != nil {
		t.Fatal(err)
	}
	if ji.AppParams["gap_open"] != 12 {
		t.Errorf("job record app_params = %v, want gap_open 12", ji.AppParams)
	}

	// Legacy spellings that shaped the instance are echoed too: a job
	// submitted with top-level rounds must not read back as rounds=1.
	jresp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(
		`{"system":"i7-2600K","dim":300,"app":"nash","rounds":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer jresp2.Body.Close()
	var ji2 JobInfo
	if err := json.NewDecoder(jresp2.Body).Decode(&ji2); err != nil {
		t.Fatal(err)
	}
	if ji2.AppParams["rounds"] != 2 {
		t.Errorf("legacy rounds not echoed in app_params: %v", ji2.AppParams)
	}
	if ji2.Instance.TSize != 1500 {
		t.Errorf("legacy rounds job tsize = %g, want 1500", ji2.Instance.TSize)
	}
}

// TestAppValidationFromRegistry: the unknown-app message enumerates the
// registry (so it can never drift from the catalog), schema violations
// are 400s, and shape constraints are enforced.
func TestAppValidationFromRegistry(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	readErr := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/tune", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}

	code, msg := readErr(`{"system":"i7-2600K","dim":500,"app":"raytrace"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown app status %d", code)
	}
	for _, name := range apps.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("unknown-app error %q does not enumerate %q", msg, name)
		}
	}

	cases := []struct {
		name, body string
	}{
		{"unknown param", `{"system":"i7-2600K","dim":500,"app":"nash","params":{"bogus":1}}`},
		{"non-integer rounds", `{"system":"i7-2600K","dim":500,"app":"nash","params":{"rounds":1.5}}`},
		{"out-of-range rounds", `{"system":"i7-2600K","dim":500,"app":"nash","params":{"rounds":0}}`},
		{"synthetic without granularity", `{"system":"i7-2600K","dim":500,"app":"synthetic"}`},
		{"rectangular nussinov", `{"system":"i7-2600K","rows":600,"cols":1400,"app":"nussinov"}`},
		{"params without app", `{"system":"i7-2600K","dim":500,"tsize":1.5,"dsize":2,"params":{"gap_open":12}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code, _ := readErr(tc.body); code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", code)
			}
		})
	}
}

// TestMaskedAppInstanceKeepsLiveCells guards the serving path of the
// frontier refactor: resolving a masked application through the
// registry must carry the live-cell count into the served instance, so
// two mask densities of one shape fork into distinct plan-cache keys
// instead of silently sharing a dense plan.
func TestMaskedAppInstanceKeepsLiveCells(t *testing.T) {
	dense, _, err := TuneRequest{Dim: 96, App: "morphrecon"}.instanceFrom()
	if err != nil {
		t.Fatal(err)
	}
	if dense.LiveCells == 0 {
		t.Fatal("served morphrecon instance lost its live-cell count")
	}
	sparse, _, err := TuneRequest{
		Dim: 96, App: "morphrecon", Params: map[string]float64{"threshold": 200},
	}.instanceFrom()
	if err != nil {
		t.Fatal(err)
	}
	if sparse.LiveCells >= dense.LiveCells {
		t.Errorf("threshold 200 live cells %d, want < default's %d", sparse.LiveCells, dense.LiveCells)
	}
	if dense.CacheKey() == sparse.CacheKey() {
		t.Errorf("mask densities share cache key %q", dense.CacheKey())
	}

	tri, _, err := TuneRequest{Dim: 96, App: "nussinov"}.instanceFrom()
	if err != nil {
		t.Fatal(err)
	}
	if want := 96 * 97 / 2; tri.LiveCells != want {
		t.Errorf("served nussinov LiveCells = %d, want %d", tri.LiveCells, want)
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func postPipeline(t *testing.T, url, body string) (PipelineInfo, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/pipelines", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pi PipelineInfo
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&pi); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return pi, resp
}

func getPipeline(t *testing.T, url, id string) (PipelineInfo, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/pipelines/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return PipelineInfo{}, resp.StatusCode
	}
	var pi PipelineInfo
	if err := json.NewDecoder(resp.Body).Decode(&pi); err != nil {
		t.Fatal(err)
	}
	return pi, resp.StatusCode
}

func pollPipeline(t *testing.T, url, id string) PipelineInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		pi, code := getPipeline(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("polling pipeline %s: status %d", id, code)
		}
		switch pi.State {
		case "succeeded", "failed", "canceled":
			return pi
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline %s stuck in state %s", id, pi.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func deletePipeline(t *testing.T, url, path string) (PipelineInfo, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pi PipelineInfo
	if resp.StatusCode == http.StatusOK && strings.HasPrefix(path, "/v1/pipelines/") {
		if err := json.NewDecoder(resp.Body).Decode(&pi); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return pi, resp
}

// TestPipelineLifecycleHTTP: submit answers 202 with a queued record
// and a Location header; polling reaches succeeded; every wave job is
// an ordinary record under /v1/jobs; the stats counters move.
func TestPipelineLifecycleHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := `{
		"name": "align-then-fold",
		"system": "i7-2600K",
		"waves": [
			{"name": "align", "jobs": [
				{"dim": 500, "tsize": 10, "dsize": 1},
				{"dim": 700, "tsize": 200, "dsize": 1}
			]},
			{"name": "fold", "after": ["align"], "jobs": [
				{"dim": 900, "tsize": 200, "dsize": 1}
			]}
		]
	}`
	pi, resp := postPipeline(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if pi.State != "queued" || pi.ID == "" {
		t.Errorf("submit snapshot = %+v, want queued with ID", pi)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/pipelines/"+pi.ID {
		t.Errorf("Location = %q", loc)
	}
	if len(pi.Waves) != 2 || pi.Waves[0].Name != "align" || pi.Waves[1].Name != "fold" {
		t.Fatalf("waves = %+v", pi.Waves)
	}

	done := pollPipeline(t, ts.URL, pi.ID)
	if done.State != "succeeded" || done.Error != "" {
		t.Fatalf("pipeline = %s (err %q), want succeeded", done.State, done.Error)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Error("finished pipeline missing timestamps")
	}
	widths := []int{2, 1}
	for wi, w := range done.Waves {
		if w.State != "resolved" || len(w.JobIDs) != widths[wi] {
			t.Errorf("wave %d = %+v, want resolved with %d jobs", wi, w, widths[wi])
		}
		for _, id := range w.JobIDs {
			ji, code := getJob(t, ts.URL, id)
			if code != http.StatusOK || ji.State != "succeeded" {
				t.Errorf("wave %d job %s: status %d state %q", wi, id, code, ji.State)
			}
		}
	}

	sr := getStats(t, ts.URL)
	if sr.Pipelines.Submitted != 1 || sr.Pipelines.Succeeded != 1 || sr.Pipelines.WavesResolved != 2 {
		t.Errorf("stats pipelines = %+v", sr.Pipelines)
	}
	if sr.Pipelines.Active != 0 || sr.Pipelines.MaxActive <= 0 {
		t.Errorf("stats pipelines active/max = %+v", sr.Pipelines)
	}
	if sr.Requests["pipelines"] == 0 {
		t.Errorf("requests counter = %+v", sr.Requests)
	}
	if sr.Jobs.Succeeded != 3 {
		t.Errorf("stats jobs = %+v, want the 3 wave jobs", sr.Jobs)
	}
}

// TestPipelineValidationHTTP: every malformed spec answers 400 (404 for
// an unknown pipeline-level system) without touching the queue, and the
// daemon still serves a clean pipeline afterwards.
func TestPipelineValidationHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Jobs: JobOptions{QueueDepth: 4}})
	ok := `{"dim": 500, "tsize": 10, "dsize": 1}`
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty body", `{}`, http.StatusBadRequest},
		{"no waves", `{"system":"i7-2600K","waves":[]}`, http.StatusBadRequest},
		{"unknown pipeline system", `{"system":"riscv","waves":[{"jobs":[` + ok + `]}]}`, http.StatusNotFound},
		{"unknown job system", `{"waves":[{"jobs":[{"system":"riscv","dim":500,"tsize":10,"dsize":1}]}]}`, http.StatusBadRequest},
		{"no system anywhere", `{"waves":[{"jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"empty wave", `{"system":"i7-2600K","waves":[{"jobs":[]}]}`, http.StatusBadRequest},
		{"oversized wave", `{"system":"i7-2600K","waves":[{"jobs":[` +
			ok + `,` + ok + `,` + ok + `,` + ok + `,` + ok + `]}]}`, http.StatusBadRequest},
		{"duplicate wave names", `{"system":"i7-2600K","waves":[` +
			`{"name":"w","jobs":[` + ok + `]},{"name":"w","jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"duplicate job names", `{"system":"i7-2600K","waves":[` +
			`{"jobs":[{"name":"j","dim":500,"tsize":10,"dsize":1},{"name":"j","dim":600,"tsize":10,"dsize":1}]}]}`, http.StatusBadRequest},
		{"self dependency", `{"system":"i7-2600K","waves":[{"name":"w","after":["w"],"jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"forward dependency", `{"system":"i7-2600K","waves":[` +
			`{"name":"a","after":["b"],"jobs":[` + ok + `]},{"name":"b","jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"unknown dependency", `{"system":"i7-2600K","waves":[{"after":["ghost"],"jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"bogus policy", `{"system":"i7-2600K","waves":[{"policy":"maybe","jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"retry without budget", `{"system":"i7-2600K","waves":[{"policy":"retry","jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"budget without retry", `{"system":"i7-2600K","waves":[{"retry_budget":2,"jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"negative budget", `{"system":"i7-2600K","waves":[{"policy":"retry","retry_budget":-1,"jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"bad priority", `{"system":"i7-2600K","waves":[{"jobs":[{"dim":500,"tsize":10,"dsize":1,"priority":"urgent"}]}]}`, http.StatusBadRequest},
		{"bad instance", `{"system":"i7-2600K","waves":[{"jobs":[{"dim":-5,"tsize":10,"dsize":1}]}]}`, http.StatusBadRequest},
		{"unknown field", `{"system":"i7-2600K","turbo":true,"waves":[{"jobs":[` + ok + `]}]}`, http.StatusBadRequest},
		{"trailing data", `{"system":"i7-2600K","waves":[{"jobs":[` + ok + `]}]} {"x":1}`, http.StatusBadRequest},
		{"not json", `wave hello`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, resp := postPipeline(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// None of it reached the scheduler, and the daemon is not wedged.
	sr := getStats(t, ts.URL)
	if sr.Pipelines.Submitted != 0 || sr.Jobs.Submitted != 0 {
		t.Errorf("malformed specs leaked: %+v / %+v", sr.Pipelines, sr.Jobs)
	}
	pi, resp := postPipeline(t, ts.URL, `{"system":"i7-2600K","waves":[{"jobs":[`+ok+`]}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("clean submit after rejections: status %d", resp.StatusCode)
	}
	if done := pollPipeline(t, ts.URL, pi.ID); done.State != "succeeded" {
		t.Errorf("clean pipeline = %s, want succeeded", done.State)
	}

	// Content-type hygiene: a non-JSON body is refused up front.
	resp2, err := http.Post(ts.URL+"/v1/pipelines", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain submit status = %d, want 415", resp2.StatusCode)
	}
}

// TestPipelineCancelHTTP: DELETE on a running pipeline answers 200 and
// the record converges to canceled; a second DELETE conflicts; unknown
// IDs answer 404.
func TestPipelineCancelHTTP(t *testing.T) {
	h, g := newGatedServer(t, JobOptions{Workers: 1})
	pi, resp := postPipeline(t, h.url, `{"system":"i7-2600K","waves":[`+
		`{"jobs":[{"dim":500,"tsize":10,"dsize":1}]},`+
		`{"jobs":[{"dim":600,"tsize":10,"dsize":1}]}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	for !g.entered() {
		time.Sleep(time.Millisecond)
	}
	got, resp := deletePipeline(t, h.url, "/v1/pipelines/"+pi.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}
	if !got.CancelRequested {
		t.Errorf("cancel snapshot = %+v, want cancel_requested", got)
	}
	g.release()
	done := pollPipeline(t, h.url, pi.ID)
	if done.State != "canceled" {
		t.Fatalf("pipeline = %s, want canceled", done.State)
	}
	if done.Waves[1].State != "skipped" || len(done.Waves[1].JobIDs) != 0 {
		t.Errorf("unstarted wave = %+v, want skipped", done.Waves[1])
	}
	if _, resp := deletePipeline(t, h.url, "/v1/pipelines/"+pi.ID); resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d, want 409", resp.StatusCode)
	}
	if _, resp := deletePipeline(t, h.url, "/v1/pipelines/pipe-bogus"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel status = %d, want 404", resp.StatusCode)
	}
	if _, code := getPipeline(t, h.url, "pipe-bogus"); code != http.StatusNotFound {
		t.Errorf("unknown poll status = %d, want 404", code)
	}
}

// TestPipelineOverflow429: MaxPipelines bounds active pipelines; the
// overflow answer carries a derived Retry-After.
func TestPipelineOverflow429(t *testing.T) {
	h, g := newGatedServer(t, JobOptions{Workers: 1, MaxPipelines: 1})
	body := `{"system":"i7-2600K","waves":[{"jobs":[{"dim":500,"tsize":10,"dsize":1}]}]}`
	first, resp := postPipeline(t, h.url, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	for !g.entered() {
		time.Sleep(time.Millisecond)
	}
	_, resp = postPipeline(t, h.url, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want an integer within [1, 60]", resp.Header.Get("Retry-After"))
	}
	g.release()
	pollPipeline(t, h.url, first.ID)
	// A slot is free again.
	if _, resp := postPipeline(t, h.url, body); resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-drain submit status = %d, want 202", resp.StatusCode)
	}
	if sr := getStats(t, h.url); sr.Pipelines.Rejected != 1 {
		t.Errorf("stats = %+v, want 1 rejected", sr.Pipelines)
	}
}

// TestPipelineListAndPruneHTTP: the collection lists with a state
// filter, DELETE prunes finished records, and pruned IDs answer 404.
func TestPipelineListAndPruneHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	body := `{"system":"i7-2600K","waves":[{"jobs":[{"dim":500,"tsize":10,"dsize":1}]}]}`
	var ids []string
	for i := 0; i < 2; i++ {
		pi, resp := postPipeline(t, ts.URL, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, resp.StatusCode)
		}
		ids = append(ids, pi.ID)
	}
	for _, id := range ids {
		pollPipeline(t, ts.URL, id)
	}

	list := func(query string) (int, int) {
		resp, err := http.Get(ts.URL + "/v1/pipelines" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return 0, resp.StatusCode
		}
		var body struct {
			Pipelines []PipelineInfo `json:"pipelines"`
			Count     int            `json:"count"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Count != len(body.Pipelines) {
			t.Errorf("count %d != %d listed", body.Count, len(body.Pipelines))
		}
		return body.Count, resp.StatusCode
	}
	if n, _ := list(""); n != 2 {
		t.Errorf("list all = %d, want 2", n)
	}
	if n, _ := list("?state=succeeded"); n != 2 {
		t.Errorf("list succeeded = %d, want 2", n)
	}
	if n, _ := list("?state=failed"); n != 0 {
		t.Errorf("list failed = %d, want 0", n)
	}
	if _, code := list("?state=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus state filter status = %d, want 400", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/pipelines", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var pruned struct {
		Pruned int `json:"pruned"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pruned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pruned.Pruned != 2 {
		t.Errorf("prune: status %d, pruned %d; want 200 and 2", resp.StatusCode, pruned.Pruned)
	}
	for _, id := range ids {
		if _, code := getPipeline(t, ts.URL, id); code != http.StatusNotFound {
			t.Errorf("pruned pipeline %s answers %d, want 404", id, code)
		}
	}
	if n, _ := list(""); n != 0 {
		t.Errorf("list after prune = %d, want 0", n)
	}
}

// TestPipelineMethodHygiene: unsupported methods answer 405 with an
// Allow header on both the collection and the item routes.
func TestPipelineMethodHygiene(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPatch, "/v1/pipelines", "DELETE, GET, POST"},
		{http.MethodPut, "/v1/pipelines", "DELETE, GET, POST"},
		{http.MethodPost, "/v1/pipelines/pipe-00000001", "DELETE, GET"},
		{http.MethodPatch, "/v1/pipelines/pipe-00000001", "DELETE, GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}
}

package service

// The /v1/jobs surface: the HTTP face of internal/jobs. A client POSTs
// a job (the same instance description as /v1/tune plus priority and
// refine options), receives 202 with the queued record, and polls
// GET /v1/jobs/{id} until the job finishes. DELETE cancels; GET /v1/jobs
// lists. Admission-control rejections answer 429 with Retry-After.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// JobRequest is the body of POST /v1/jobs: the tune request describing
// the instance, plus job options.
type JobRequest struct {
	TuneRequest
	// Priority is the admission class: "low", "normal" (default) or
	// "high".
	Priority string `json:"priority,omitempty"`
	// Refine opts into online refinement around the cached prediction;
	// the measured outcome feeds the training log.
	Refine bool `json:"refine,omitempty"`
}

// JobInfo is the wire form of one job record.
type JobInfo struct {
	ID       string       `json:"id"`
	State    string       `json:"state"`
	System   string       `json:"system"`
	Instance TuneInstance `json:"instance"`
	App      string       `json:"app,omitempty"`
	// AppParams echoes the application parameters the submission
	// carried (e.g. nash rounds or affine gap penalties).
	AppParams map[string]float64 `json:"app_params,omitempty"`
	Priority  string             `json:"priority"`
	Refine    bool               `json:"refine"`
	// CancelRequested is set once DELETE was accepted for a running job
	// that has not yet observed the cancellation.
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Error           string `json:"error,omitempty"`
	// RequestID is the X-Request-ID of the submission that created the
	// job, tying the record back to the request log and traces.
	RequestID string `json:"request_id,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	Result *JobResult `json:"result,omitempty"`
}

// JobResult reports what a succeeded job executed and measured.
type JobResult struct {
	Serial bool       `json:"serial"`
	Params TuneParams `json:"params"`
	// Cache reports how the plan fetch was served (hit/miss/coalesced).
	Cache string `json:"cache"`
	// PredictedSec is the cached plan's modeled runtime; MeasuredSec the
	// measured execution of the final configuration; SerialSec the
	// sequential baseline; Speedup the serial/measured ratio.
	PredictedSec float64 `json:"predicted_sec"`
	MeasuredSec  float64 `json:"measured_sec"`
	SerialSec    float64 `json:"serial_sec"`
	Speedup      float64 `json:"speedup,omitempty"`
	// Steps is the number of wavefront steps of the executed schedule
	// (0 = unknown); clients gauging progress or throughput must use it
	// rather than deriving rows+cols-1 themselves, which misstates
	// irregular executions.
	Steps int `json:"steps,omitempty"`
	// Refinement reports the online phase for refine jobs.
	Refinement *JobRefinement `json:"refinement,omitempty"`
}

// JobRefinement is the wire form of core.RefineStats.
type JobRefinement struct {
	Probes      int     `json:"probes"`
	Moves       int     `json:"moves"`
	StartSec    float64 `json:"start_sec"`
	FinalSec    float64 `json:"final_sec"`
	Improvement float64 `json:"improvement"`
}

// jobInfo converts a jobs.Job snapshot into its wire form.
func jobInfo(j jobs.Job) JobInfo {
	rows, cols := j.Inst.Shape()
	info := JobInfo{
		ID: j.ID, State: j.State.String(), System: j.System,
		Instance: TuneInstance{Rows: rows, Cols: cols, TSize: j.Inst.TSize, DSize: j.Inst.DSize},
		App:      j.App, AppParams: j.AppParams,
		Priority: j.Priority.String(), Refine: j.Spec.Refine,
		CancelRequested: j.CancelRequested, Error: j.Err,
		RequestID: j.RequestID,
		CreatedAt: j.Created,
	}
	if !j.Started.IsZero() {
		t := j.Started
		info.StartedAt = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		info.FinishedAt = &t
	}
	if r := j.Result; r != nil {
		jr := &JobResult{
			Serial: r.Serial,
			Params: TuneParams{
				CPUTile: r.Par.CPUTile, Band: r.Par.Band, GPUCount: r.Par.GPUCount(),
				GPUTile: r.Par.GPUTile, Halo: r.Par.Halo,
			},
			Cache:        r.Cache,
			PredictedSec: r.PredictedNs / 1e9,
			MeasuredSec:  r.MeasuredNs / 1e9,
			SerialSec:    r.SerialNs / 1e9,
			Steps:        r.Steps,
		}
		if r.MeasuredNs > 0 {
			jr.Speedup = r.SerialNs / r.MeasuredNs
		}
		if st := r.Refine; st != nil {
			jr.Refinement = &JobRefinement{
				Probes: st.Probes, Moves: st.Moves,
				StartSec: st.StartNs / 1e9, FinalSec: st.FinalNs / 1e9,
				Improvement: st.Improvement(),
			}
		}
		info.Result = jr
	}
	return info
}

// handleJobs serves the /v1/jobs collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.checkJSONBody(w, r) {
		return
	}
	s.jobReqs.Add(1)
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "unexpected data after request body")
		return
	}
	if req.System == "" {
		s.writeError(w, http.StatusBadRequest, "system is required")
		return
	}
	if _, ok := s.systems[req.System]; !ok {
		s.writeError(w, http.StatusNotFound, "unknown system %q", req.System)
		return
	}
	// The record echoes the fully resolved parameter values — supplied
	// params, legacy top-level spellings and schema defaults — so
	// auditing a job never shows fewer parameters than the derivation
	// used.
	inst, appParams, err := req.instanceFrom()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid instance: %v", err)
		return
	}
	pri, err := jobs.ParsePriority(req.Priority)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j, err := s.jobs.Submit(jobs.Spec{
		System: req.System, Inst: inst, App: req.App, AppParams: appParams,
		Priority: pri, Refine: req.Refine,
		RequestID: telemetry.RequestIDFrom(r.Context()),
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// The hint is derived from observed job service times and the
		// current backlog (clamped to [1s, 60s]), not a constant: a queue
		// of minute-long refine jobs and a queue of millisecond lookups
		// deserve very different backoff advice.
		retry := int(s.jobs.RetryAfter() / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.writeError(w, http.StatusTooManyRequests,
			"job queue full; retry in ~%ds", retry)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		s.writeError(w, http.StatusBadRequest, "submitting job: %v", err)
		return
	}
	// The manager already logs the admission with full detail.
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	s.writeJSON(w, http.StatusAccepted, jobInfo(j))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.jobReqs.Add(1)
	var f jobs.Filter
	if v := r.URL.Query().Get("state"); v != "" {
		st, err := jobs.ParseState(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		f.State = &st
	}
	if v := r.URL.Query().Get("system"); v != "" {
		if _, ok := s.systems[v]; !ok {
			s.writeError(w, http.StatusNotFound, "unknown system %q", v)
			return
		}
		f.System = v
	}
	list := s.jobs.List(f)
	infos := make([]JobInfo, 0, len(list))
	for _, j := range list {
		infos = append(infos, jobInfo(j))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": infos, "count": len(infos)})
}

// handleJobByID serves /v1/jobs/{id}: GET polls, DELETE cancels.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, http.StatusNotFound, "no such job")
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.jobReqs.Add(1)
		j, ok := s.jobs.Get(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "no job %q", id)
			return
		}
		s.writeJSON(w, http.StatusOK, jobInfo(j))
	case http.MethodDelete:
		s.jobReqs.Add(1)
		j, err := s.jobs.Cancel(id)
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			s.writeError(w, http.StatusNotFound, "no job %q", id)
		case errors.Is(err, jobs.ErrFinished):
			s.writeError(w, http.StatusConflict,
				"job %s already finished (%s)", id, j.State)
		case err != nil:
			s.writeError(w, http.StatusInternalServerError, "canceling: %v", err)
		default:
			s.logf("job %s cancel accepted (%s)", id, j.State)
			s.writeJSON(w, http.StatusOK, jobInfo(j))
		}
	default:
		w.Header().Set("Allow", "DELETE, GET")
		s.writeError(w, http.StatusMethodNotAllowed, "GET or DELETE required")
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/hw"
)

func postBatch(t *testing.T, url, body string) (BatchTuneResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/tune/batch", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchTuneResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return br, resp
}

// TestBatchDedupesRepeatedKeys is the batching contract: a cold batch
// with repeated shapes runs exactly one predict per unique key, and
// every item still gets its result.
func TestBatchDedupesRepeatedKeys(t *testing.T) {
	s, ts, src := newTestServer(t, Config{})
	body := `{"system":"i7-2600K","items":[
	 {"dim":700,"tsize":200,"dsize":1},
	 {"dim":1500,"tsize":200,"dsize":1},
	 {"dim":700,"tsize":200,"dsize":1},
	 {"rows":700,"cols":700,"tsize":200,"dsize":1},
	 {"dim":1500,"tsize":200,"dsize":1},
	 {"dim":700,"tsize":200,"dsize":1}]}`
	br, resp := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if br.Count != 6 || br.Errors != 0 || len(br.Results) != 6 {
		t.Fatalf("batch = count %d errors %d results %d, want 6/0/6", br.Count, br.Errors, len(br.Results))
	}
	// Two unique keys (the rows/cols spelling of 700x700 normalizes onto
	// the dim spelling): exactly two predicts, regardless of six items.
	if got := src.calls.Load(); got != 2 {
		t.Errorf("predicts = %d, want exactly 2 (one per unique key)", got)
	}
	st := s.Cache().Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Errorf("cache stats = %+v, want 2 misses, 0 hits (deduped before lookup)", st)
	}
	for i, r := range br.Results {
		if r.TuneResponse == nil || r.Error != "" {
			t.Fatalf("item %d: %+v, want a result", i, r)
		}
		if r.Params.CPUTile < 1 {
			t.Errorf("item %d: params %+v", i, r.Params)
		}
	}
	// Items 0, 2, 3 and 5 are one key; 1 and 4 the other. Duplicates
	// must share the exact same decision.
	if *br.Results[0].TuneResponse != *br.Results[2].TuneResponse ||
		*br.Results[0].TuneResponse != *br.Results[3].TuneResponse ||
		*br.Results[1].TuneResponse != *br.Results[4].TuneResponse {
		t.Error("duplicate items answered differently")
	}
	if br.Results[0].Instance.Rows != 700 || br.Results[1].Instance.Rows != 1500 {
		t.Errorf("results misaligned with items: %+v / %+v",
			br.Results[0].Instance, br.Results[1].Instance)
	}
}

// TestBatchWarmHits: a second identical batch is served entirely from
// the cache — no further predicts.
func TestBatchWarmHits(t *testing.T) {
	s, ts, src := newTestServer(t, Config{})
	body := `{"system":"i7-2600K","items":[{"dim":700,"tsize":200,"dsize":1},{"dim":1500,"tsize":10,"dsize":5}]}`
	if _, resp := postBatch(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", resp.StatusCode)
	}
	cold := src.calls.Load()
	br, resp := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK || br.Errors != 0 {
		t.Fatalf("warm batch failed: %d / %+v", resp.StatusCode, br)
	}
	if src.calls.Load() != cold {
		t.Errorf("warm batch ran %d extra predicts", src.calls.Load()-cold)
	}
	for i, r := range br.Results {
		if r.Cache != "hit" {
			t.Errorf("item %d served %q, want hit", i, r.Cache)
		}
	}
	if st := s.Cache().Stats(); st.Hits != 2 {
		t.Errorf("cache stats = %+v, want 2 hits", st)
	}
}

// TestBatchPerItemErrors: invalid items (bad shape, unknown system,
// unknown app) and predict failures answer per item; the rest of the
// batch succeeds and the response stays index-aligned.
func TestBatchPerItemErrors(t *testing.T) {
	// i3-540 is a served system with no tuner in the static source, so
	// its predict fails — the per-item shape of a model failure.
	_, ts, _ := newTestServer(t, Config{
		Systems: []hw.System{hw.I7_2600K(), hw.I3_540()},
	})
	body := `{"system":"i7-2600K","items":[
	 {"dim":700,"tsize":200,"dsize":1},
	 {"dim":0,"tsize":200,"dsize":1},
	 {"system":"no-such-box","dim":700,"tsize":200,"dsize":1},
	 {"dim":700,"app":"no-such-app"},
	 {"system":"i3-540","dim":700,"tsize":200,"dsize":1},
	 {"dim":1500,"tsize":200,"dsize":1}]}`
	br, resp := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (item failures must not fail the batch)", resp.StatusCode)
	}
	if br.Count != 6 || br.Errors != 4 {
		t.Fatalf("batch = count %d errors %d, want 6 with 4 errors", br.Count, br.Errors)
	}
	wantErr := []struct {
		idx  int
		frag string
	}{
		{1, "invalid instance"},
		{2, `unknown system "no-such-box"`},
		{3, `unknown app "no-such-app"`},
		{4, "tuning failed"},
	}
	for _, w := range wantErr {
		r := br.Results[w.idx]
		if r.TuneResponse != nil || !strings.Contains(r.Error, w.frag) {
			t.Errorf("item %d = %+v, want error containing %q", w.idx, r, w.frag)
		}
	}
	for _, i := range []int{0, 5} {
		if br.Results[i].TuneResponse == nil || br.Results[i].Error != "" {
			t.Errorf("item %d = %+v, want a clean result", i, br.Results[i])
		}
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{BatchLimit: 4})

	// No items.
	if _, resp := postBatch(t, ts.URL, `{"system":"i7-2600K","items":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty items: status %d, want 400", resp.StatusCode)
	}
	// Over the limit.
	items := make([]string, 5)
	for i := range items {
		items[i] = `{"dim":700,"tsize":200,"dsize":1}`
	}
	over := `{"system":"i7-2600K","items":[` + strings.Join(items, ",") + `]}`
	if _, resp := postBatch(t, ts.URL, over); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over limit: status %d, want 400", resp.StatusCode)
	}
	// Item without any system (no batch default either).
	br, resp := postBatch(t, ts.URL, `{"items":[{"dim":700,"tsize":200,"dsize":1}]}`)
	if resp.StatusCode != http.StatusOK || br.Errors != 1 || !strings.Contains(br.Results[0].Error, "system is required") {
		t.Errorf("missing system: %d / %+v, want per-item error", resp.StatusCode, br)
	}
	// Method and content-type hygiene.
	resp2, err := http.Get(ts.URL + "/v1/tune/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed || resp2.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET: status %d allow %q", resp2.StatusCode, resp2.Header.Get("Allow"))
	}
	resp3, err := http.Post(ts.URL+"/v1/tune/batch", "text/xml", strings.NewReader("<batch/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("xml body: status %d, want 415", resp3.StatusCode)
	}
}

// TestBatchClientHelper drives the Go client helper end to end against
// an httptest daemon, including the rejected-batch error path.
func TestBatchClientHelper(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{BatchLimit: 8})
	req := BatchTuneRequest{System: "i7-2600K"}
	for _, dim := range []int{700, 1500, 700} {
		ts2, ds := 200.0, 1
		req.Items = append(req.Items, TuneRequest{Dim: dim, TSize: &ts2, DSize: &ds})
	}
	out, err := BatchTune(context.Background(), nil, ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Count != 3 || out.Errors != 0 {
		t.Fatalf("client batch = %+v", out)
	}
	if *out.Results[0].TuneResponse != *out.Results[2].TuneResponse {
		t.Error("duplicate shapes answered differently through the client")
	}

	// A rejected batch (over the limit) surfaces as a client error.
	big := BatchTuneRequest{System: "i7-2600K"}
	for i := 0; i < 9; i++ {
		ts2, ds := 200.0, 1
		big.Items = append(big.Items, TuneRequest{Dim: 700, TSize: &ts2, DSize: &ds})
	}
	if _, err := BatchTune(context.Background(), nil, ts.URL, big); err == nil || !strings.Contains(err.Error(), "batch limit") {
		t.Errorf("over-limit batch err = %v, want rejection naming the limit", err)
	}
}

// TestBatchCounters: batch traffic shows up under its own request
// counter and feeds the shared cache counters.
func TestBatchCounters(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	postBatch(t, ts.URL, `{"system":"i7-2600K","items":[{"dim":700,"tsize":200,"dsize":1}]}`)
	st := getStats(t, ts.URL)
	if st.Requests["batch"] != 1 {
		t.Errorf("batch requests = %d, want 1", st.Requests["batch"])
	}
	if st.Cache.Misses != 1 {
		t.Errorf("cache misses = %d, want 1", st.Cache.Misses)
	}
}

// TestBatchLargeFanOut exercises the parallel fan-out across shards
// with a full default-limit batch of distinct shapes.
func TestBatchLargeFanOut(t *testing.T) {
	s, ts, src := newTestServer(t, Config{CacheShards: 8, CacheSize: 256})
	if s.Cache().Shards() != 8 {
		t.Fatalf("shards = %d, want 8", s.Cache().Shards())
	}
	var items []string
	for i := 0; i < DefaultBatchLimit; i++ {
		items = append(items, fmt.Sprintf(`{"dim":%d,"tsize":200,"dsize":1}`, 300+i))
	}
	br, resp := postBatch(t, ts.URL, `{"system":"i7-2600K","items":[`+strings.Join(items, ",")+`]}`)
	if resp.StatusCode != http.StatusOK || br.Errors != 0 {
		t.Fatalf("fan-out batch: %d / %+v", resp.StatusCode, br)
	}
	if got := src.calls.Load(); got != int64(DefaultBatchLimit) {
		t.Errorf("predicts = %d, want %d distinct", got, DefaultBatchLimit)
	}
}

package service

// The daemon's observability layer: one telemetry.Registry is the
// single source of truth behind both GET /metrics (Prometheus text
// format) and the telemetry block of GET /v1/stats. The middleware
// below wraps the whole mux — it stamps a request ID into the context,
// response header and error bodies, opens the http.request trace span
// the handlers chain children onto (cache.lookup → tuner.predict on
// the tune path), counts every response by route and status code, and
// feeds the per-route latency histograms from the span's duration.
// Subsystems that keep their own counters (cache shards, job queues,
// pipelines) surface through scrape-time collectors instead of being
// counted twice.

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/retrain"
	"repro/internal/telemetry"
)

// routeNames are the route label values of the HTTP metric families,
// pre-registered so every route appears on /metrics from the first
// scrape and the label space stays bounded no matter what paths are
// probed.
var routeNames = []string{
	"tune", "batch", "jobs", "pipelines", "apps",
	"systems", "stats", "healthz", "metrics", "other",
}

// routeOf maps a request path onto its route label. Unknown paths
// collapse into "other" so arbitrary probes cannot mint new series.
func routeOf(path string) string {
	switch {
	case path == "/v1/tune":
		return "tune"
	case path == "/v1/tune/batch":
		return "batch"
	case path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/"):
		return "jobs"
	case path == "/v1/pipelines" || strings.HasPrefix(path, "/v1/pipelines/"):
		return "pipelines"
	case path == "/v1/apps":
		return "apps"
	case path == "/v1/systems":
		return "systems"
	case path == "/v1/stats":
		return "stats"
	case path == "/healthz":
		return "healthz"
	case path == "/metrics":
		return "metrics"
	}
	return "other"
}

// serverMetrics is the server's handle block into its registry: every
// series the request paths touch is resolved once at construction, so
// handling a request never takes a registry family lock.
type serverMetrics struct {
	reg *telemetry.Registry

	// Per-route handled-request and error counters — the same handles
	// /v1/stats has always reported — plus the middleware-level views:
	// responses by route and status code, the in-flight gauge and the
	// per-route latency histograms.
	requests  map[string]*telemetry.Counter
	errors    map[string]*telemetry.Counter
	errorsVec *telemetry.CounterVec
	latency   map[string]*telemetry.Histogram
	responses *telemetry.CounterVec
	inflight  *telemetry.Gauge

	// Stage histograms of the tune hot path, fed by span durations.
	// predictSec is labeled by model_kind; the per-kind handles for the
	// known backends are pre-resolved so the hot path skips the vec's
	// label lookup.
	cacheLookupSec   *telemetry.Histogram
	predictSec       *telemetry.HistogramVec
	predictSecByKind map[string]*telemetry.Histogram

	// jobs holds the histograms the job manager feeds (queue wait,
	// execution, pipeline waves, engine measurements).
	jobs *jobs.Metrics

	// retrain holds the counters and histograms the background
	// retrainer feeds (cycle counts, per-system attempt outcomes,
	// training durations, malformed rows).
	retrain *retrain.Metrics
}

// newServerMetrics builds the registry and registers every stored
// family. Collectors for subsystem counters are added separately
// (registerCollectors) once the subsystems exist.
func newServerMetrics() *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg:      reg,
		requests: make(map[string]*telemetry.Counter, len(routeNames)),
		errors:   make(map[string]*telemetry.Counter, len(routeNames)),
		latency:  make(map[string]*telemetry.Histogram, len(routeNames)),
		errorsVec: reg.CounterVec("waved_http_errors_total",
			"Error responses written, by route.", "route"),
		responses: reg.CounterVec("waved_http_responses_total",
			"HTTP responses, by route and status code.", "route", "code"),
		inflight: reg.Gauge("waved_http_inflight_requests",
			"Requests currently being served."),
		cacheLookupSec: reg.Histogram("waved_cache_lookup_duration_seconds",
			"Plan-cache lookup latency on the tune path (resident hit through full predict).", nil),
		predictSec: reg.HistogramVec("waved_tuner_predict_duration_seconds",
			"Tuner model evaluation latency on cache misses, by prediction backend.", nil, "model_kind"),
		jobs: &jobs.Metrics{
			QueueWaitSec: reg.Histogram("waved_job_queue_wait_seconds",
				"Job admission-to-start latency (time spent queued).", nil),
			ExecSec: reg.Histogram("waved_job_execution_seconds",
				"Job execution time, start to finish.", nil),
			WaveSec: reg.Histogram("waved_pipeline_wave_seconds",
				"Pipeline wave duration, first admission to barrier resolution.", nil),
			EngineSec: reg.Histogram("waved_engine_measure_seconds",
				"Modeled engine executions inside jobs.", nil),
		},
		retrain: &retrain.Metrics{
			Cycles: reg.Counter("waved_retrain_cycles_total",
				"Retrainer passes over the system list."),
			Events: reg.CounterVec("waved_retrain_events_total",
				"Retrain attempt outcomes, by system, event (trained, promoted, rejected, error) and challenger model kind.",
				"system", "event", "model_kind"),
			TrainSec: reg.Histogram("waved_retrain_train_seconds",
				"Retrain attempt duration: log read, challenger training, shadow evaluation.", nil),
			BadRows: reg.Counter("waved_retrain_bad_rows_total",
				"Malformed observation rows consumed by retrain attempts."),
		},
	}
	m.predictSecByKind = map[string]*telemetry.Histogram{
		core.KindTree:     m.predictSec.With(core.KindTree),
		core.KindBilinear: m.predictSec.With(core.KindBilinear),
	}
	reqVec := reg.CounterVec("waved_http_requests_total",
		"Requests handled, by route (counted inside the handler, like /v1/stats).", "route")
	latVec := reg.HistogramVec("waved_http_request_duration_seconds",
		"End-to-end request latency, by route.", nil, "route")
	for _, r := range routeNames {
		m.requests[r] = reqVec.With(r)
		m.errors[r] = m.errorsVec.With(r)
		m.latency[r] = latVec.With(r)
	}
	return m
}

// predictHist returns the predict-latency histogram for a backend kind,
// using the pre-resolved handle for known kinds so the per-request path
// avoids the vec's label lookup.
func (m *serverMetrics) predictHist(kind string) *telemetry.Histogram {
	if h, ok := m.predictSecByKind[kind]; ok {
		return h
	}
	return m.predictSec.With(kind)
}

// registerCollectors surfaces the subsystem-owned counters (cache
// shards, job queue, pipelines, uptime) as scrape-time callbacks, so
// /metrics renders them from the same source of truth /v1/stats reads
// instead of maintaining parallel counts. Called once from New, after
// the cache and job manager exist.
func (s *Server) registerCollectors() {
	reg := s.m.reg
	reg.CollectFunc("waved_uptime_seconds", "Seconds since the server started.",
		telemetry.TypeGauge, nil, func(emit telemetry.Emit) {
			emit(time.Since(s.start).Seconds())
		})
	reg.CollectFunc("waved_cache_lookups_total", "Plan-cache lookups, by shard and outcome.",
		telemetry.TypeCounter, []string{"shard", "outcome"}, func(emit telemetry.Emit) {
			for i, st := range s.cache.ShardStats() {
				sh := strconv.Itoa(i)
				emit(float64(st.Hits), sh, "hit")
				emit(float64(st.Misses), sh, "miss")
				emit(float64(st.Coalesced), sh, "coalesced")
			}
		})
	reg.CollectFunc("waved_cache_evictions_total", "Plan-cache LRU evictions, by shard.",
		telemetry.TypeCounter, []string{"shard"}, func(emit telemetry.Emit) {
			for i, st := range s.cache.ShardStats() {
				emit(float64(st.Evictions), strconv.Itoa(i))
			}
		})
	reg.CollectFunc("waved_cache_predict_errors_total", "Failed predict fills, by shard.",
		telemetry.TypeCounter, []string{"shard"}, func(emit telemetry.Emit) {
			for i, st := range s.cache.ShardStats() {
				emit(float64(st.Errors), strconv.Itoa(i))
			}
		})
	reg.CollectFunc("waved_cache_entries", "Resident plans, by shard.",
		telemetry.TypeGauge, []string{"shard"}, func(emit telemetry.Emit) {
			for i, st := range s.cache.ShardStats() {
				emit(float64(st.Size), strconv.Itoa(i))
			}
		})
	reg.CollectFunc("waved_cache_invalidations_total",
		"Plans dropped by targeted invalidation (model promotions), by shard.",
		telemetry.TypeCounter, []string{"shard"}, func(emit telemetry.Emit) {
			for i, st := range s.cache.ShardStats() {
				emit(float64(st.Invalidations), strconv.Itoa(i))
			}
		})
	if s.retrainSrc != nil {
		reg.CollectFunc("waved_model_generation",
			"Serving model generation, by system and model kind (1 = the factory champion, +1 per promotion).",
			telemetry.TypeGauge, []string{"system", "model_kind"}, func(emit telemetry.Emit) {
				for _, sys := range s.cfg.Systems {
					// Kind never triggers a resolve, so scraping /metrics
					// cannot start a training run; before the first resolve
					// the backend is not yet known.
					kind := s.retrainSrc.Kind(sys.Name)
					if kind == "" {
						kind = "unknown"
					}
					emit(float64(s.retrainSrc.Generation(sys.Name)), sys.Name, kind)
				}
			})
	}
	reg.CollectFunc("waved_jobs_events_total", "Job lifecycle events, by event.",
		telemetry.TypeCounter, []string{"event"}, func(emit telemetry.Emit) {
			st := s.jobs.Stats()
			emit(float64(st.Submitted), "submitted")
			emit(float64(st.Rejected), "rejected")
			emit(float64(st.Succeeded), "succeeded")
			emit(float64(st.Failed), "failed")
			emit(float64(st.Canceled), "canceled")
			emit(float64(st.Refined), "refined")
		})
	reg.CollectFunc("waved_job_queue_depth", "Jobs admitted and waiting for a worker.",
		telemetry.TypeGauge, nil, func(emit telemetry.Emit) {
			emit(float64(s.jobs.Stats().Queued))
		})
	reg.CollectFunc("waved_jobs_running", "Jobs currently executing on workers.",
		telemetry.TypeGauge, nil, func(emit telemetry.Emit) {
			emit(float64(s.jobs.Stats().Running))
		})
	reg.CollectFunc("waved_training_rows_total", "Observations appended to the training log.",
		telemetry.TypeCounter, nil, func(emit telemetry.Emit) {
			emit(float64(s.jobs.Stats().TrainingRows))
		})
	reg.CollectFunc("waved_pipelines_events_total", "Pipeline lifecycle events, by event.",
		telemetry.TypeCounter, []string{"event"}, func(emit telemetry.Emit) {
			st := s.jobs.PipelineStats()
			emit(float64(st.Submitted), "submitted")
			emit(float64(st.Rejected), "rejected")
			emit(float64(st.Succeeded), "succeeded")
			emit(float64(st.Failed), "failed")
			emit(float64(st.Canceled), "canceled")
		})
	reg.CollectFunc("waved_pipelines_active", "Pipelines currently in a non-terminal state.",
		telemetry.TypeGauge, nil, func(emit telemetry.Emit) {
			emit(float64(s.jobs.PipelineStats().Active))
		})
	reg.CollectFunc("waved_pipeline_waves_resolved_total", "Pipeline waves that passed their barrier.",
		telemetry.TypeCounter, nil, func(emit telemetry.Emit) {
			emit(float64(s.jobs.PipelineStats().WavesResolved))
		})
	reg.CollectFunc("waved_pipeline_job_retries_total", "Failed-job resubmissions spent by retry policies.",
		telemetry.TypeCounter, nil, func(emit telemetry.Emit) {
			emit(float64(s.jobs.PipelineStats().JobRetries))
		})
}

// statusWriter wraps the ResponseWriter handed to handlers: it captures
// the status code for the response counters and carries the request's
// ID and route label, which writeError folds into error bodies and the
// error counters without changing its call sites.
type statusWriter struct {
	http.ResponseWriter
	route     string
	requestID string
	status    int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards streaming support the wrapper would otherwise hide.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTelemetry is the outermost middleware: request ID, http.request
// span, in-flight gauge, latency and response series, the structured
// request log line, and the slow-request span-tree dump.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeOf(r.URL.Path)
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = telemetry.NewRequestID()
		}
		ctx := telemetry.WithRequestID(r.Context(), id)
		ctx, span := telemetry.StartRootSpan(ctx, "http.request")
		span.Annotate("route", route).Annotate("method", r.Method).
			Annotate("path", r.URL.Path).Annotate("request_id", id)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, route: route, requestID: id}

		s.m.inflight.Add(1)
		next.ServeHTTP(sw, r.WithContext(ctx))
		s.m.inflight.Add(-1)

		dur := span.End()
		status := sw.status
		if status == 0 {
			// The handler never wrote (e.g. a 200 with an empty body
			// via implicit WriteHeader on hijack-free completion).
			status = http.StatusOK
		}
		span.Annotate("status", status)
		s.m.latency[route].Observe(dur.Seconds())
		s.m.responses.With(route, strconv.Itoa(status)).Inc()
		if lg := s.cfg.Logger; lg != nil {
			lg.Log("request", "request_id", id, "route", route,
				"method", r.Method, "path", r.URL.Path,
				"status", status, "dur", dur)
		}
		if s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest {
			s.logf("slow request %s %s %s (%.3fs >= %.3fs):\n%s",
				id, r.Method, r.URL.Path, dur.Seconds(),
				s.cfg.SlowRequest.Seconds(), span.Render())
		}
	})
}

// RouteTelemetry is one route's registry-backed counters in GET
// /v1/stats: handled requests and error responses (the handler-level
// counters), plus the count and latency quantiles of the route's
// middleware-level duration histogram.
type RouteTelemetry struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors,omitempty"`
	Observed uint64  `json:"observed"`
	P50Sec   float64 `json:"p50_sec"`
	P95Sec   float64 `json:"p95_sec"`
	P99Sec   float64 `json:"p99_sec"`
}

// TelemetrySnapshot is the /v1/stats rendering of the same registry
// GET /metrics scrapes — one source of truth, two formats.
type TelemetrySnapshot struct {
	UptimeSec float64                   `json:"uptime_sec"`
	InFlight  int64                     `json:"in_flight"`
	Routes    map[string]RouteTelemetry `json:"routes"`
}

// telemetrySnapshot renders the per-route counters and quantiles.
func (s *Server) telemetrySnapshot() TelemetrySnapshot {
	snap := TelemetrySnapshot{
		UptimeSec: time.Since(s.start).Seconds(),
		InFlight:  s.m.inflight.Value(),
		Routes:    make(map[string]RouteTelemetry, len(routeNames)),
	}
	for _, r := range routeNames {
		h := s.m.latency[r].Snapshot()
		snap.Routes[r] = RouteTelemetry{
			Requests: s.m.requests[r].Value(),
			Errors:   s.m.errors[r].Value(),
			Observed: h.Count,
			P50Sec:   h.P50Sec,
			P95Sec:   h.P95Sec,
			P99Sec:   h.P99Sec,
		}
	}
	return snap
}

package service

// The /v1/pipelines surface: wave-DAG job pipelines over HTTP. A client
// POSTs a pipeline — ordered waves of job requests, each wave with a
// failure policy — receives 202 with the queued record, and polls
// GET /v1/pipelines/{id} while the daemon runs each wave through the
// job worker pool, admitting wave N+1 only after wave N resolves.
// DELETE /v1/pipelines/{id} cancels (the running wave cooperatively,
// unstarted waves by skipping them); DELETE /v1/pipelines prunes
// finished records; GET /v1/pipelines lists. Admission-control
// rejections answer 429 with Retry-After.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// PipelineJobRequest is one job of a wave: the same body as
// POST /v1/jobs plus a pipeline-unique name. A job may omit system when
// the pipeline declares a default.
type PipelineJobRequest struct {
	JobRequest
	// Name identifies the job within the pipeline (defaults to
	// "w<wave>.j<index>"); duplicates are rejected.
	Name string `json:"name,omitempty"`
}

// PipelineWaveRequest is one wave of POST /v1/pipelines.
type PipelineWaveRequest struct {
	// Name identifies the wave (defaults to "wave-<index>").
	Name string `json:"name,omitempty"`
	// After names waves this one depends on; each must be declared
	// earlier (waves execute in declaration order).
	After []string `json:"after,omitempty"`
	// Policy is the wave's failure policy: "abort" (default),
	// "continue" or "retry".
	Policy string `json:"policy,omitempty"`
	// RetryBudget caps failed-job resubmissions for the retry policy.
	RetryBudget int `json:"retry_budget,omitempty"`
	// Jobs are the wave's parallel submissions.
	Jobs []PipelineJobRequest `json:"jobs"`
}

// PipelineRequest is the body of POST /v1/pipelines.
type PipelineRequest struct {
	// Name labels the pipeline (informational).
	Name string `json:"name,omitempty"`
	// System, when set, is the default system for jobs that omit one.
	System string `json:"system,omitempty"`
	// Waves execute sequentially in declaration order.
	Waves []PipelineWaveRequest `json:"waves"`
}

// PipelineWaveInfo is the wire form of one wave record.
type PipelineWaveInfo struct {
	Name string `json:"name"`
	// State is pending, running, resolved, failed, canceled or skipped.
	State       string `json:"state"`
	Policy      string `json:"policy"`
	RetryBudget int    `json:"retry_budget,omitempty"`
	RetriesUsed int    `json:"retries_used,omitempty"`
	// Failed counts non-succeeded attempts at resolution (only the
	// continue policy resolves with failures).
	Failed int `json:"failed,omitempty"`
	// JobIDs lists every attempt in submission order; each is an
	// ordinary job record under /v1/jobs/{id}.
	JobIDs []string `json:"job_ids"`
}

// PipelineInfo is the wire form of one pipeline record.
type PipelineInfo struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// State is the lifecycle state (queued, wave-running, wave-barrier,
	// succeeded, failed, canceled); Wave the index of the current (or
	// last admitted) wave.
	State string `json:"state"`
	Wave  int    `json:"wave"`
	// CancelRequested is set once DELETE was accepted for a pipeline
	// that has not yet observed the cancellation.
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Error           string `json:"error,omitempty"`
	// RequestID is the X-Request-ID of the submission that created the
	// pipeline; its wave jobs inherit it unless they carry their own.
	RequestID string `json:"request_id,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	Waves []PipelineWaveInfo `json:"waves"`
}

// pipelineInfo converts a jobs.Pipeline snapshot into its wire form.
func pipelineInfo(p jobs.Pipeline) PipelineInfo {
	info := PipelineInfo{
		ID: p.ID, Name: p.Name, State: p.State.String(), Wave: p.Wave,
		CancelRequested: p.CancelRequested, Error: p.Err,
		RequestID: p.RequestID,
		CreatedAt: p.Created,
		Waves:     make([]PipelineWaveInfo, len(p.Waves)),
	}
	if !p.Started.IsZero() {
		t := p.Started
		info.StartedAt = &t
	}
	if !p.Finished.IsZero() {
		t := p.Finished
		info.FinishedAt = &t
	}
	for i, w := range p.Waves {
		info.Waves[i] = PipelineWaveInfo{
			Name: w.Name, State: w.State.String(), Policy: w.Policy.String(),
			RetryBudget: w.RetryBudget, RetriesUsed: w.RetriesUsed,
			Failed: w.Failed, JobIDs: w.JobIDs,
		}
	}
	return info
}

// pipelineSpecFrom validates the request shape and builds the manager
// spec: per-job instances resolve exactly like /v1/jobs submissions
// (named apps, params, legacy spellings), with the pipeline-level
// system filling jobs that omit one.
func (s *Server) pipelineSpecFrom(req PipelineRequest) (jobs.PipelineSpec, error) {
	spec := jobs.PipelineSpec{Name: req.Name, Waves: make([]jobs.WaveSpec, len(req.Waves))}
	for wi, w := range req.Waves {
		policy, err := jobs.ParseFailurePolicy(w.Policy)
		if err != nil {
			return spec, fmt.Errorf("wave %d: %w", wi, err)
		}
		wave := jobs.WaveSpec{
			Name: w.Name, After: w.After,
			Policy: policy, RetryBudget: w.RetryBudget,
			Jobs: make([]jobs.PipelineJob, len(w.Jobs)),
		}
		for ji, j := range w.Jobs {
			if j.System == "" {
				j.System = req.System
			}
			if j.System == "" {
				return spec, fmt.Errorf("wave %d job %d: system is required (per job or pipeline-level)", wi, ji)
			}
			inst, appParams, err := j.instanceFrom()
			if err != nil {
				return spec, fmt.Errorf("wave %d job %d: invalid instance: %v", wi, ji, err)
			}
			pri, err := jobs.ParsePriority(j.Priority)
			if err != nil {
				return spec, fmt.Errorf("wave %d job %d: %w", wi, ji, err)
			}
			wave.Jobs[ji] = jobs.PipelineJob{
				Name: j.Name,
				Spec: jobs.Spec{
					System: j.System, Inst: inst, App: j.App, AppParams: appParams,
					Priority: pri, Refine: j.Refine,
				},
			}
		}
		spec.Waves[wi] = wave
	}
	return spec, nil
}

// handlePipelines serves the /v1/pipelines collection: POST submits,
// GET lists, DELETE prunes finished records.
func (s *Server) handlePipelines(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handlePipelineSubmit(w, r)
	case http.MethodGet:
		s.handlePipelineList(w, r)
	case http.MethodDelete:
		s.pipeReqs.Add(1)
		n := s.jobs.PrunePipelines()
		s.logf("pruned %d finished pipeline record(s)", n)
		s.writeJSON(w, http.StatusOK, map[string]any{"pruned": n})
	default:
		w.Header().Set("Allow", "DELETE, GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, "GET, POST or DELETE required")
	}
}

func (s *Server) handlePipelineSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.checkJSONBody(w, r) {
		return
	}
	s.pipeReqs.Add(1)
	var req PipelineRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "unexpected data after request body")
		return
	}
	if req.System != "" {
		if _, ok := s.systems[req.System]; !ok {
			s.writeError(w, http.StatusNotFound, "unknown system %q", req.System)
			return
		}
	}
	spec, err := s.pipelineSpecFrom(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The manager stamps the pipeline's request ID onto every wave job
	// that does not carry its own, so each spawned job record traces
	// back to this submission.
	spec.RequestID = telemetry.RequestIDFrom(r.Context())

	p, err := s.jobs.SubmitPipeline(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		retry := int(s.jobs.RetryAfter() / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.writeError(w, http.StatusTooManyRequests,
			"too many active pipelines; retry in ~%ds", retry)
		return
	case errors.Is(err, jobs.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case err != nil:
		// Validation rejected the spec before anything entered the
		// queue.
		s.writeError(w, http.StatusBadRequest, "invalid pipeline: %v", err)
		return
	}
	w.Header().Set("Location", "/v1/pipelines/"+p.ID)
	s.writeJSON(w, http.StatusAccepted, pipelineInfo(p))
}

func (s *Server) handlePipelineList(w http.ResponseWriter, r *http.Request) {
	s.pipeReqs.Add(1)
	var f jobs.PipelineFilter
	if v := r.URL.Query().Get("state"); v != "" {
		st, err := jobs.ParsePipelineState(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		f.State = &st
	}
	list := s.jobs.ListPipelines(f)
	infos := make([]PipelineInfo, 0, len(list))
	for _, p := range list {
		infos = append(infos, pipelineInfo(p))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"pipelines": infos, "count": len(infos)})
}

// handlePipelineByID serves /v1/pipelines/{id}: GET polls, DELETE
// cancels.
func (s *Server) handlePipelineByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/pipelines/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, http.StatusNotFound, "no such pipeline")
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.pipeReqs.Add(1)
		p, ok := s.jobs.GetPipeline(id)
		if !ok {
			s.writeError(w, http.StatusNotFound, "no pipeline %q", id)
			return
		}
		s.writeJSON(w, http.StatusOK, pipelineInfo(p))
	case http.MethodDelete:
		s.pipeReqs.Add(1)
		p, err := s.jobs.CancelPipeline(id)
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			s.writeError(w, http.StatusNotFound, "no pipeline %q", id)
		case errors.Is(err, jobs.ErrFinished):
			s.writeError(w, http.StatusConflict,
				"pipeline %s already finished (%s)", id, p.State)
		case err != nil:
			s.writeError(w, http.StatusInternalServerError, "canceling: %v", err)
		default:
			s.logf("pipeline %s cancel accepted (%s)", id, p.State)
			s.writeJSON(w, http.StatusOK, pipelineInfo(p))
		}
	default:
		w.Header().Set("Allow", "DELETE, GET")
		s.writeError(w, http.StatusMethodNotAllowed, "GET or DELETE required")
	}
}

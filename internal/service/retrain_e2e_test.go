package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/retrain"
)

// badChampionTuner trains a tuner on the tiny space with every runtime
// (and serial baseline) scaled 1000x. The ratios — and with them every
// serial/parallel decision — are untouched, but the modeled runtimes are
// three orders of magnitude off the engine's measurements, so any
// challenger trained on real observations beats it decisively. This is
// the e2e analogue of the retrain package's inverted-runtime fixture.
func badChampionTuner(t *testing.T) *core.Tuner {
	t.Helper()
	space := core.Space{
		Dims:      []int{300, 700, 1500},
		TSizes:    []float64{10, 200, 3000},
		DSizes:    []int{1, 5},
		CPUTiles:  []int{1, 8},
		BandFracs: []float64{-1, 0.5, 1.0},
		HaloFracs: []float64{-1, 0, 1.0},
		GPUTiles:  []int{1, 8},
	}
	sr, err := core.Exhaustive(hw.I7_2600K(), space, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scaled := &core.SearchResult{Sys: sr.Sys, Space: sr.Space}
	for _, ir := range sr.Instances {
		out := core.InstanceResult{Inst: ir.Inst, SerialNs: ir.SerialNs * 1000}
		for _, p := range ir.Points {
			p.RTimeNs *= 1000
			out.Points = append(out.Points, p)
		}
		scaled.Instances = append(scaled.Instances, out)
	}
	tun, err := core.Train(scaled, core.DefaultTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	return tun
}

// TestRetrainPromotionEndToEnd is the full loop over HTTP: a daemon
// boots with a deliberately miscalibrated champion and a tiny retrain
// interval, refine jobs flow observations into the training log, the
// background retrainer shadow-trains a challenger off the log, the
// guardrail passes, and /v1/stats reports the promoted generation 2
// with the system's cache entries invalidated.
func TestRetrainPromotionEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		Tuners: NewStaticSource(badChampionTuner(t)),
		Jobs:   JobOptions{Workers: 2, RefineBudget: 4, TrainingLogDir: dir},
		Retrain: RetrainOptions{
			Interval:        50 * time.Millisecond,
			MinObservations: 6,
			Holdout:         0.5,
			// The holdout repairs guarantee at least one held sample, so
			// MinSamples 1 makes the first attempt decisive; guardrail
			// strictness has its own deterministic unit battery.
			Guardrail: retrain.GuardrailOptions{MinSamples: 1},
		},
		Logf: t.Logf,
	})
	defer s.Shutdown(context.Background())
	if s.Retrainer() == nil {
		t.Fatal("retrainer not constructed despite training-log dir")
	}

	// Generation 1 (the factory champion) is reported before anything
	// was observed.
	if st := getStats(t, ts.URL); st.Retrain == nil || st.Retrain.Systems["i7-2600K"].Generation != 1 {
		t.Fatalf("initial retrain stats = %+v, want generation 1", st.Retrain)
	}

	// Refine jobs are the observation source: each successful refinement
	// appends its measured configuration to the training log and pokes
	// the retrainer awake.
	dims := []int{1200, 1500, 1900, 2300}
	for round := 0; round < 2; round++ {
		for _, dim := range dims {
			body := fmt.Sprintf(`{"system":"i7-2600K","dim":%d,"tsize":3000,"dsize":1,"refine":true}`, dim)
			ji, resp := postJob(t, ts.URL, body)
			if resp.StatusCode != 202 {
				t.Fatalf("submit status %d", resp.StatusCode)
			}
			if done := pollJob(t, ts.URL, ji.ID); done.State != "succeeded" {
				t.Fatalf("job %s finished %q, want succeeded", ji.ID, done.State)
			} else if done.Result != nil && done.Result.Serial {
				t.Fatalf("dim %d chose the serial baseline; no observation logged", dim)
			}
		}
	}

	// The promotion lands asynchronously once MinObservations accumulate.
	// Keep observations flowing while waiting: a retrain attempt that
	// lands between submissions consumes its rows, so fresh refine jobs
	// refill the log until an attempt promotes.
	deadline := time.Now().Add(60 * time.Second)
	var last retrain.SystemStatus
	for i := 0; ; i++ {
		st := getStats(t, ts.URL)
		if st.Retrain != nil {
			last = st.Retrain.Systems["i7-2600K"]
			if last.Generation >= 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("promotion never landed; last status %+v", last)
		}
		body := fmt.Sprintf(`{"system":"i7-2600K","dim":%d,"tsize":3000,"dsize":1,"refine":true}`,
			dims[i%len(dims)])
		ji, _ := postJob(t, ts.URL, body)
		pollJob(t, ts.URL, ji.ID)
		time.Sleep(20 * time.Millisecond)
	}
	if last.Promotions < 1 || last.Retrains < 1 {
		t.Fatalf("promoted status inconsistent: %+v", last)
	}
	if last.LastVerdict != "promote" || last.Verdict == nil || !last.Verdict.Promote {
		t.Fatalf("promoted without a promote verdict: %+v", last)
	}
	if last.LastPromotionUnix == 0 || last.LastGenerationID == "" {
		t.Fatalf("promotion provenance missing: %+v", last)
	}

	// The jobs warmed plan-cache entries for the champion; the promotion
	// must have dropped them so the challenger serves from here on.
	st := getStats(t, ts.URL)
	if st.Cache.Invalidations == 0 {
		t.Fatalf("promotion invalidated nothing: %+v", st.Cache)
	}

	// Serving continues against the promoted model (any cache entries
	// present now were filled by the challenger after the invalidation).
	tr, resp := postTune(t, ts.URL, `{"system":"i7-2600K","dim":1900,"tsize":3000,"dsize":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("post-promotion tune status %d", resp.StatusCode)
	}
	if tr.RTimeSec <= 0 {
		t.Fatalf("post-promotion tune returned no runtime: %+v", tr)
	}
}

// Package service exposes the autotuner as a long-running HTTP daemon:
// "tuning as a service". A client POSTs an application instance (system,
// shape, granularity) to /v1/tune and receives the tuned parameters with
// their modeled runtimes; the paper's "train once, predict per instance"
// deployment thereby becomes a request/response protocol. Predictions
// are served through a tunecache.Cache, so repeated and concurrent
// requests for one workload cost a single tuner evaluation, and tuners
// themselves are loaded (or trained) lazily per system on first use.
// Beyond one-shot predictions, the daemon runs whole tuned wavefront
// jobs asynchronously through internal/jobs (POST /v1/jobs), with
// optional online refinement feeding a persisted training log, and
// chains jobs into wave-DAG pipelines (POST /v1/pipelines): ordered
// waves of jobs with sequential barriers and per-wave failure policies.
//
// Named applications resolve through the internal/apps registry, so the
// daemon has no per-app code: registering a workload (builtin.go or
// wavefront.RegisterApp) makes it tunable, runnable and discoverable
// here with no service change.
//
// Endpoints:
//
//	POST   /v1/tune            predict tuned Params for an instance (cache-backed)
//	POST   /v1/tune/batch      predict many instances in one request (deduped, parallel)
//	POST   /v1/jobs            submit an asynchronous tuned-execution job
//	GET    /v1/jobs            list job records (filterable by state/system)
//	GET    /v1/jobs/{id}       poll one job record
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	POST   /v1/pipelines       submit a wave-DAG pipeline of jobs (sequential wave barriers)
//	GET    /v1/pipelines       list pipeline records (filterable by state)
//	GET    /v1/pipelines/{id}  poll one pipeline record
//	DELETE /v1/pipelines/{id}  cancel a pipeline (running wave cooperatively, later waves skipped)
//	DELETE /v1/pipelines       prune finished pipeline records
//	GET    /v1/apps            list the application catalog (names, granularity, params)
//	GET    /v1/systems         list the served systems and tuner states
//	GET    /v1/stats           cache, job, pipeline and request counters, uptime, latency quantiles
//	GET    /metrics            the same counters in Prometheus text format
//	GET    /healthz            liveness probe
//
// Every response carries an X-Request-ID header (generated, or echoed
// from the request); error bodies repeat it, and slow requests (see
// Config.SlowRequest) log their full trace-span tree under it.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/jobs"
	"repro/internal/plan"
	"repro/internal/retrain"
	"repro/internal/telemetry"
	"repro/internal/tunecache"
)

// Config configures a tuning server. The zero value serves every Table 4
// system with lazily trained quick-space tuners and a default-sized
// cache.
type Config struct {
	// Systems are the platforms served; empty selects hw.Systems().
	Systems []hw.System
	// Tuners resolves the tuner for a system on first use; nil selects
	// NewTrainingSource over the quick search space.
	Tuners TunerSource
	// CacheSize bounds the plan cache (<= 0 selects the tunecache
	// default).
	CacheSize int
	// CacheShards splits the plan cache into this many independently
	// locked shards so concurrent lookups on different keys never
	// contend (<= 0 selects the tunecache default, GOMAXPROCS; the
	// count is clamped so small caches keep exact LRU semantics).
	CacheShards int
	// BatchLimit caps the items of one POST /v1/tune/batch request
	// (<= 0 selects DefaultBatchLimit).
	BatchLimit int
	// CachePath, when set, warms the cache from this file at startup (if
	// it exists) and writes it back on Shutdown.
	CachePath string
	// Jobs configures the asynchronous job subsystem; the zero value
	// selects the jobs package defaults.
	Jobs JobOptions
	// Retrain configures the background champion/challenger retrainer;
	// it runs only when Jobs.TrainingLogDir is set (the retrainer feeds
	// on the observation logs written there) and Retrain.Off is false.
	Retrain RetrainOptions
	// Logf receives request-path log lines; nil disables logging.
	// Ignored when Logger is set.
	Logf func(format string, args ...any)
	// Logger, when set, receives one structured line per request from
	// the telemetry middleware, and the daemon's printf-style log lines
	// through its Logf bridge (taking precedence over Logf).
	Logger *telemetry.Logger
	// SlowRequest, when positive, logs the full trace-span tree of any
	// request whose end-to-end latency reaches it.
	SlowRequest time.Duration
}

// JobOptions is the service-level slice of jobs.Config: the bounds of
// the worker pool and queue, the refinement budget, and where refined
// jobs' measured observations are persisted for retraining.
type JobOptions struct {
	// Workers bounds the worker pool (<= 0 selects the jobs default).
	Workers int
	// QueueDepth bounds the queued-job count (<= 0 selects the jobs
	// default); overflowing submissions are rejected with 429.
	QueueDepth int
	// RefineBudget caps probe measurements per refine job (<= 0 selects
	// the online-tuner default).
	RefineBudget int
	// TrainingLogDir, when set, appends refined jobs' measured
	// observations as per-system search-CSV files (wavetrain -from).
	TrainingLogDir string
	// MaxRecords bounds retained finished job records (<= 0 selects the
	// jobs default); the same bound retains finished pipeline records.
	MaxRecords int
	// MaxPipelines bounds concurrently active pipelines; overflowing
	// submissions are rejected with 429 (<= 0 selects the jobs
	// default).
	MaxPipelines int
	// SlowJob, when positive, logs the full trace-span tree of any job
	// whose execution reaches it (and of any pipeline slower than it) —
	// the worker-pool analogue of Config.SlowRequest.
	SlowJob time.Duration
}

// RetrainOptions is the service-level slice of retrain.Config: the loop
// thresholds and the guardrail of the background champion/challenger
// retrainer. The retrainer watches the observation logs refined jobs
// append under Jobs.TrainingLogDir, shadow-trains challengers, and
// atomically promotes winners into the serving tuner source (see
// internal/retrain).
type RetrainOptions struct {
	// Off disables the retrainer even when a training-log directory is
	// configured.
	Off bool
	// Interval is the loop's polling period (<= 0 selects the retrain
	// default); observations landing from refine jobs wake it early.
	Interval time.Duration
	// MinObservations is the unconsumed-row count that triggers a
	// retrain (<= 0 selects the retrain default).
	MinObservations int
	// MaxAge triggers a retrain once the oldest unconsumed row has
	// waited this long, even below MinObservations (<= 0 selects the
	// retrain default).
	MaxAge time.Duration
	// Holdout is the observation fraction held out for the
	// champion/challenger comparison (<= 0 selects the retrain default).
	Holdout float64
	// Guardrail parameterizes the promotion gate; the zero value selects
	// the retrain defaults.
	Guardrail retrain.GuardrailOptions
	// TrainOpts are the challenger's training options; the zero value
	// selects the retrain default (core defaults with Stride 1).
	TrainOpts core.TrainOptions
	// Kind selects the challenger's prediction backend (core.KindTree or
	// core.KindBilinear); empty matches the serving champion's kind.
	Kind string
}

// Server is the tuning daemon: an http.Handler plus the plan cache and
// lazily resolved per-system tuners behind it.
type Server struct {
	cfg      Config
	systems  map[string]hw.System
	tuners   TunerSource
	cache    *tunecache.Cache
	jobs     *jobs.Manager
	trainLog *core.ObservationLog
	mux      *http.ServeMux
	handler  http.Handler
	start    time.Time

	// retrainSrc wraps cfg.Tuners with champion/challenger promotion and
	// retrainer runs the background loop feeding it; both are nil when
	// retraining is off (no training-log directory, or Retrain.Off).
	retrainSrc *retrain.Source
	retrainer  *retrain.Retrainer

	httpMu   sync.Mutex
	httpSrv  *http.Server
	shutDown bool

	// m is the telemetry registry plus every pre-resolved series handle;
	// the per-route counters below alias m.requests so the historical
	// handler-level increment sites keep working verbatim.
	m          *serverMetrics
	tuneReqs   *telemetry.Counter
	batchReqs  *telemetry.Counter
	jobReqs    *telemetry.Counter
	pipeReqs   *telemetry.Counter
	appsReqs   *telemetry.Counter
	statsReqs  *telemetry.Counter
	sysReqs    *telemetry.Counter
	healthReqs *telemetry.Counter
}

// New builds a server from cfg.
func New(cfg Config) (*Server, error) {
	if len(cfg.Systems) == 0 {
		cfg.Systems = hw.Systems()
	}
	if cfg.Tuners == nil {
		cfg.Tuners = NewTrainingSource(TrainingSourceOptions{})
	}
	s := &Server{
		cfg:     cfg,
		systems: make(map[string]hw.System, len(cfg.Systems)),
		tuners:  cfg.Tuners,
		start:   time.Now(),
		m:       newServerMetrics(),
	}
	s.tuneReqs = s.m.requests["tune"]
	s.batchReqs = s.m.requests["batch"]
	s.jobReqs = s.m.requests["jobs"]
	s.pipeReqs = s.m.requests["pipelines"]
	s.appsReqs = s.m.requests["apps"]
	s.statsReqs = s.m.requests["stats"]
	s.sysReqs = s.m.requests["systems"]
	s.healthReqs = s.m.requests["healthz"]
	for _, sys := range cfg.Systems {
		if sys.Name == "" {
			return nil, fmt.Errorf("service: system with empty name")
		}
		if _, dup := s.systems[sys.Name]; dup {
			return nil, fmt.Errorf("service: duplicate system %q", sys.Name)
		}
		s.systems[sys.Name] = sys
	}
	retrainOn := cfg.Jobs.TrainingLogDir != "" && !cfg.Retrain.Off
	if retrainOn {
		// Wrap the configured source before anything captures s.tuners:
		// promotions swap tuners inside the wrapper, so the cache's miss
		// path and the job manager pick up new champions with no further
		// plumbing.
		s.retrainSrc = retrain.NewSource(cfg.Tuners)
		s.tuners = s.retrainSrc
	}
	s.cache = tunecache.NewShardedCtx(cfg.CacheSize, cfg.CacheShards, s.predict)
	if cfg.CachePath != "" {
		if n, err := s.cache.LoadFile(cfg.CachePath); err == nil {
			s.logf("warmed cache with %d plans from %s", n, cfg.CachePath)
		} else if !errors.Is(err, os.ErrNotExist) {
			// The cache file is an optimization, not a dependency: a
			// corrupt or stale-format file must not keep the daemon from
			// starting. Serve cold and overwrite it on shutdown.
			s.logf("ignoring unreadable cache file %s: %v", cfg.CachePath, err)
		}
	}
	if cfg.Jobs.TrainingLogDir != "" {
		var err error
		if s.trainLog, err = core.NewObservationLog(cfg.Jobs.TrainingLogDir); err != nil {
			return nil, err
		}
	}
	var onObservation func(system string)
	if retrainOn {
		r, err := retrain.New(retrain.Config{
			Systems:         cfg.Systems,
			LogDir:          cfg.Jobs.TrainingLogDir,
			Interval:        cfg.Retrain.Interval,
			MinObservations: cfg.Retrain.MinObservations,
			MaxAge:          cfg.Retrain.MaxAge,
			Holdout:         cfg.Retrain.Holdout,
			Guardrail:       cfg.Retrain.Guardrail,
			TrainOpts:       cfg.Retrain.TrainOpts,
			ChallengerKind:  cfg.Retrain.Kind,
			Champion:        s.retrainSrc.Tuner,
			Promote:         s.retrainSrc.Promote,
			Generation:      s.retrainSrc.Generation,
			Kind:            s.retrainSrc.Kind,
			Invalidate:      s.cache.InvalidateSystem,
			Logf:            s.logf,
			Metrics:         s.m.retrain,
		})
		if err != nil {
			s.trainLog.Close()
			return nil, err
		}
		s.retrainer = r
		onObservation = r.Notify
	}
	var err error
	s.jobs, err = jobs.New(jobs.Config{
		Systems: cfg.Systems,
		Plans:   s.cache.Get,
		Tuners: func(name string) (core.Predictor, error) {
			sys, ok := s.systems[name]
			if !ok {
				return nil, fmt.Errorf("service: unknown system %q", name)
			}
			return s.tuners.Tuner(sys)
		},
		Workers:       cfg.Jobs.Workers,
		QueueDepth:    cfg.Jobs.QueueDepth,
		RefineBudget:  cfg.Jobs.RefineBudget,
		TrainingLog:   s.trainLog,
		OnObservation: onObservation,
		MaxRecords:    cfg.Jobs.MaxRecords,
		MaxPipelines:  cfg.Jobs.MaxPipelines,
		Logf:          s.logf,
		Metrics:       s.m.jobs,
		SlowJob:       cfg.Jobs.SlowJob,
	})
	if err != nil {
		if s.trainLog != nil {
			s.trainLog.Close()
		}
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/tune", s.handleTune)
	s.mux.HandleFunc("/v1/tune/batch", s.handleTuneBatch)
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/pipelines", s.handlePipelines)
	s.mux.HandleFunc("/v1/pipelines/", s.handlePipelineByID)
	s.mux.HandleFunc("/v1/apps", s.handleApps)
	s.mux.HandleFunc("/v1/systems", s.handleSystems)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.Handle("/metrics", s.m.reg.Handler())
	s.registerCollectors()
	s.handler = s.withTelemetry(s.mux)
	if s.retrainer != nil {
		s.retrainer.Start()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Logf(format, args...)
		return
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Cache returns the plan cache (counters, persistence).
func (s *Server) Cache() *tunecache.Cache { return s.cache }

// Jobs returns the asynchronous job manager behind /v1/jobs.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Retrainer returns the background champion/challenger retrainer, or
// nil when retraining is off (no training-log directory, or
// Config.Retrain.Off).
func (s *Server) Retrainer() *retrain.Retrainer { return s.retrainer }

// Telemetry returns the metrics registry behind GET /metrics and the
// telemetry block of GET /v1/stats.
func (s *Server) Telemetry() *telemetry.Registry { return s.m.reg }

// Handler returns the HTTP handler tree — the routing mux wrapped in
// the telemetry middleware — for mounting under httptest or a
// caller-owned http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// predict is the cache's miss path: resolve the system's tuner (loading
// or training it on first use) and evaluate it once. ctx carries the
// leading caller's trace span on the HTTP tune path (GetCtx), so the
// evaluation shows up under that request's cache.lookup span; the
// histogram times only the model evaluation, keeping one-time lazy
// tuner training out of the predict latency series.
func (s *Server) predict(ctx context.Context, system string, inst plan.Instance) (tunecache.Plan, error) {
	sys, ok := s.systems[system]
	if !ok {
		return tunecache.Plan{}, fmt.Errorf("service: unknown system %q", system)
	}
	t, err := s.tuners.Tuner(sys)
	if err != nil {
		return tunecache.Plan{}, fmt.Errorf("service: tuner for %s: %w", system, err)
	}
	_, span := telemetry.StartSpan(ctx, "tuner.predict")
	span.Annotate("system", system)
	// Timed directly: the span is nil when the lookup came in without a
	// trace root (the job manager's plan fetches), and the histogram
	// must observe real durations either way.
	t0 := time.Now()
	pred, rtime, serial, err := t.PredictTimed(inst)
	span.End()
	s.m.predictHist(t.Kind()).Observe(time.Since(t0).Seconds())
	if err != nil {
		return tunecache.Plan{}, err
	}
	return tunecache.Plan{Serial: pred.Serial, Par: pred.Par, RTimeNs: rtime, SerialNs: serial}, nil
}

// TuneRequest is the body of POST /v1/tune. The instance shape is either
// square (dim) or rectangular (rows and cols). Granularity comes either
// from explicit tsize/dsize or from a named application registered in
// the apps catalog (GET /v1/apps lists it), with app parameters in the
// params object (e.g. {"app":"nash","params":{"rounds":2}}); explicit
// tsize/dsize values win over app-derived ones. The top-level rounds
// field is the legacy spelling of params.rounds and is kept for
// compatibility.
type TuneRequest struct {
	System string `json:"system"`
	Dim    int    `json:"dim,omitempty"`
	Rows   int    `json:"rows,omitempty"`
	Cols   int    `json:"cols,omitempty"`

	App    string             `json:"app,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
	Rounds int                `json:"rounds,omitempty"`
	TSize  *float64           `json:"tsize,omitempty"`
	DSize  *int               `json:"dsize,omitempty"`
}

// TuneParams is the tuned parameter setting in the response, decoded
// into the paper's five Table 2 parameters.
type TuneParams struct {
	CPUTile  int `json:"cpu_tile"`
	Band     int `json:"band"`
	GPUCount int `json:"gpu_count"`
	GPUTile  int `json:"gpu_tile"`
	Halo     int `json:"halo"`
}

// TuneInstance echoes the normalized instance the prediction is for.
type TuneInstance struct {
	Rows  int     `json:"rows"`
	Cols  int     `json:"cols"`
	TSize float64 `json:"tsize"`
	DSize int     `json:"dsize"`
}

// TuneResponse is the body of a successful POST /v1/tune.
type TuneResponse struct {
	System   string       `json:"system"`
	Instance TuneInstance `json:"instance"`
	// Serial is true when the parallelism gate chose the sequential
	// baseline; Params then carries the fallback CPU tiling.
	Serial bool       `json:"serial"`
	Params TuneParams `json:"params"`
	// RTimeSec is the modeled runtime of the decision; SerialSec the
	// modeled sequential baseline; Speedup their ratio.
	RTimeSec  float64 `json:"rtime_sec"`
	SerialSec float64 `json:"serial_sec"`
	Speedup   float64 `json:"speedup"`
	// Cache reports how the request was served: "hit", "miss" or
	// "coalesced".
	Cache string `json:"cache"`
}

// errorResponse is the body of every non-2xx reply. RequestID echoes
// the X-Request-ID header so a failure pasted into a bug report can be
// matched against the request log and traces.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	resp := errorResponse{Error: fmt.Sprintf(format, args...)}
	// The middleware's wrapper carries the route and request ID; a
	// handler invoked bare (unit tests) counts under "other".
	route := "other"
	if sw, ok := w.(*statusWriter); ok {
		route, resp.RequestID = sw.route, sw.requestID
	}
	s.m.errors[route].Inc()
	s.writeJSON(w, code, resp)
}

// checkJSONBody enforces content-type hygiene on endpoints that decode
// a JSON body: an absent Content-Type is tolerated, and so is curl's
// bare `-d` default (application/x-www-form-urlencoded) since the
// daemon never parses forms and every documented example posts JSON
// that way; anything else must parse as application/json. It writes the
// 415 itself and reports whether the caller may proceed.
func (s *Server) checkJSONBody(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err == nil && (mt == "application/json" || mt == "application/x-www-form-urlencoded") {
		return true
	}
	s.writeError(w, http.StatusUnsupportedMediaType,
		"Content-Type %q not supported; use application/json", ct)
	return false
}

// maxServedSide caps the accepted instance side length. The paper's
// largest instance is dim 3100; the cap leaves three orders of magnitude
// of headroom while keeping per-request work bounded against abusive
// shapes.
const maxServedSide = 1 << 20

// appValues builds the effective application parameter values of a
// request: the params object plus the legacy top-level spellings
// (rounds; tsize/dsize for apps that declare them, i.e. the synthetic
// trainer) mapped onto declared parameters. This keeps the historical
// {"app":"nash","rounds":2} and {"app":"synthetic","tsize":...,
// "dsize":...} working unchanged, and is also what job records echo as
// app_params. Supplying one declared parameter through both spellings
// is rejected — two values for one knob has no defensible winner, and
// silently picking either would make the served instance contradict
// half the request.
func (r TuneRequest) appValues(app apps.App) (apps.Values, error) {
	v := apps.Values{}
	for name, x := range r.Params {
		v[name] = x
	}
	addLegacy := func(field, name string, x float64) error {
		if _, declared := app.Param(name); !declared {
			return nil
		}
		if _, dup := v[name]; dup {
			return fmt.Errorf("app %q: parameter %q given both in params and as top-level %s",
				app.Name, name, field)
		}
		v[name] = x
		return nil
	}
	if r.Rounds > 0 {
		if err := addLegacy("rounds", "rounds", float64(r.Rounds)); err != nil {
			return nil, err
		}
	}
	if r.TSize != nil {
		if err := addLegacy("tsize", "tsize", *r.TSize); err != nil {
			return nil, err
		}
	}
	if r.DSize != nil {
		if err := addLegacy("dsize", "dsize", float64(*r.DSize)); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// instanceFrom validates a request and builds the plan.Instance, along
// with the fully resolved application parameter values (supplied
// params, legacy spellings, schema defaults) that job records echo —
// nil for app-less requests. Named applications resolve through the
// apps registry — granularity, parameter schema and shape constraints
// all come from the catalog, so registering a workload makes it
// servable with no change here.
func (r TuneRequest) instanceFrom() (plan.Instance, apps.Values, error) {
	inst := plan.Instance{Dim: r.Dim, Rows: r.Rows, Cols: r.Cols}
	rows, cols := inst.Shape()
	if rows < 1 || cols < 1 {
		return inst, nil, fmt.Errorf("shape %dx%d invalid", rows, cols)
	}
	if inst.MaxSide() > maxServedSide {
		return inst, nil, fmt.Errorf("side %d exceeds the service limit %d", inst.MaxSide(), maxServedSide)
	}
	var resolved apps.Values
	if r.App == "" {
		if len(r.Params) > 0 {
			// A params object can only be interpreted against an app's
			// schema; swallowing it silently would let a request that
			// meant to name an app tune something else.
			return inst, nil, fmt.Errorf("params requires an app")
		}
		if r.TSize == nil || r.DSize == nil {
			return inst, nil, fmt.Errorf("either app or both tsize and dsize are required")
		}
	} else {
		app, ok := apps.Lookup(r.App)
		if !ok {
			return inst, nil, apps.UnknownAppError(r.App)
		}
		v, err := r.appValues(app)
		if err != nil {
			return inst, nil, err
		}
		ai, rv, err := app.InstanceFor(rows, cols, v)
		if err != nil {
			return inst, nil, err
		}
		// LiveCells rides along: masked workloads must fork their plan
		// cache key and cost model from the dense spelling of the shape.
		inst.TSize, inst.DSize, inst.LiveCells = ai.TSize, ai.DSize, ai.LiveCells
		resolved = rv
	}
	// Explicit top-level granularity overrides the app-derived values
	// last (for apps that declare tsize/dsize the legacy spelling was
	// already folded into the resolution above, so the echo and the
	// instance cannot disagree).
	if r.TSize != nil {
		inst.TSize = *r.TSize
	}
	if r.DSize != nil {
		inst.DSize = *r.DSize
	}
	if err := inst.Validate(); err != nil {
		return inst, nil, err
	}
	return inst.Normalize(), resolved, nil
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !s.checkJSONBody(w, r) {
		return
	}
	s.tuneReqs.Add(1)
	var req TuneRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		s.writeError(w, http.StatusBadRequest, "unexpected data after request body")
		return
	}
	if req.System == "" {
		s.writeError(w, http.StatusBadRequest, "system is required")
		return
	}
	if _, ok := s.systems[req.System]; !ok {
		s.writeError(w, http.StatusNotFound, "unknown system %q", req.System)
		return
	}
	inst, _, err := req.instanceFrom()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid instance: %v", err)
		return
	}

	lctx, lookup := telemetry.StartSpan(r.Context(), "cache.lookup")
	if lookup != nil {
		lookup.Annotate("system", req.System).
			Annotate("shard", s.cache.ShardIndex(req.System, inst))
	}
	t0 := time.Now()
	p, outcome, err := s.cache.GetCtx(lctx, req.System, inst)
	lookup.Annotate("outcome", outcome).End()
	s.m.cacheLookupSec.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "tuning failed: %v", err)
		return
	}
	resp := tuneResponseFor(req.System, inst, p, outcome)
	s.logf("tune %s %s -> %s (%s)", req.System, inst, p.Par, outcome)
	s.writeJSON(w, http.StatusOK, resp)
}

// tuneResponseFor builds the wire form of one served plan (shared by
// /v1/tune and the per-item results of /v1/tune/batch).
func tuneResponseFor(system string, inst plan.Instance, p tunecache.Plan, outcome tunecache.Outcome) TuneResponse {
	rows, cols := inst.Shape()
	resp := TuneResponse{
		System:   system,
		Instance: TuneInstance{Rows: rows, Cols: cols, TSize: inst.TSize, DSize: inst.DSize},
		Serial:   p.Serial,
		Params: TuneParams{
			CPUTile: p.Par.CPUTile, Band: p.Par.Band, GPUCount: p.Par.GPUCount(),
			GPUTile: p.Par.GPUTile, Halo: p.Par.Halo,
		},
		RTimeSec:  p.RTimeNs / 1e9,
		SerialSec: p.SerialNs / 1e9,
		Cache:     outcome.String(),
	}
	if p.RTimeNs > 0 {
		resp.Speedup = p.SerialNs / p.RTimeNs
	}
	return resp
}

// SystemInfo describes one served system in GET /v1/systems.
type SystemInfo struct {
	Name    string   `json:"name"`
	Cores   int      `json:"cores"`
	GPUs    []string `json:"gpus"`
	MaxGPUs int      `json:"max_gpus"`
	// Tuner is "ready" once the system's tuner has been loaded or
	// trained, else "lazy".
	Tuner string `json:"tuner"`
}

func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.sysReqs.Add(1)
	infos := make([]SystemInfo, 0, len(s.cfg.Systems))
	for _, sys := range s.cfg.Systems {
		info := SystemInfo{
			Name: sys.Name, Cores: sys.CPU.Cores, MaxGPUs: sys.MaxGPUs(),
			GPUs: make([]string, 0, len(sys.GPUs)), Tuner: "lazy",
		}
		for _, g := range sys.GPUs {
			info.GPUs = append(info.GPUs, g.Name)
		}
		if ready, ok := s.tuners.(ReadyReporter); ok && ready.Ready(sys.Name) {
			info.Tuner = "ready"
		}
		infos = append(infos, info)
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"systems": infos})
}

// StatsResponse is the body of GET /v1/stats. Cache is the aggregate
// counter blob; CacheBySystem breaks the same counters down per served
// system, so a multi-platform daemon shows where its traffic lands.
type StatsResponse struct {
	UptimeSec     float64                    `json:"uptime_sec"`
	Cache         tunecache.Stats            `json:"cache"`
	CacheBySystem map[string]tunecache.Stats `json:"cache_by_system"`
	Jobs          jobs.Stats                 `json:"jobs"`
	Pipelines     jobs.PipelineStats         `json:"pipelines"`
	Requests      map[string]uint64          `json:"requests"`
	// Retrain is the background retrainer's snapshot — model generation,
	// last verdict and promotion counters per system; absent when
	// retraining is off.
	Retrain *retrain.Stats `json:"retrain,omitempty"`
	// Telemetry renders the same registry GET /metrics scrapes:
	// per-route request/error counts and latency quantiles.
	Telemetry TelemetrySnapshot `json:"telemetry"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.statsReqs.Add(1)
	var retrainStats *retrain.Stats
	if s.retrainer != nil {
		rs := s.retrainer.Stats()
		retrainStats = &rs
	}
	s.writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSec:     time.Since(s.start).Seconds(),
		Cache:         s.cache.Stats(),
		CacheBySystem: s.cache.SystemStats(),
		Jobs:          s.jobs.Stats(),
		Pipelines:     s.jobs.PipelineStats(),
		Requests: map[string]uint64{
			"tune":      s.tuneReqs.Value(),
			"batch":     s.batchReqs.Value(),
			"jobs":      s.jobReqs.Value(),
			"pipelines": s.pipeReqs.Value(),
			"apps":      s.appsReqs.Value(),
			"systems":   s.sysReqs.Value(),
			"stats":     s.statsReqs.Value(),
			"healthz":   s.healthReqs.Value(),
			"errors":    s.m.errorsVec.Total(),
		},
		Retrain:   retrainStats,
		Telemetry: s.telemetrySnapshot(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.healthReqs.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ListenAndServe binds addr and serves until Shutdown. It returns nil
// after a clean shutdown (http.ErrServerClosed is swallowed).
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return s.Serve(l)
}

// Serve serves on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.handler}
	s.httpMu.Lock()
	if s.shutDown {
		// Shutdown already ran (e.g. a signal raced ahead of the serve
		// goroutine); don't start a server nothing will ever stop.
		s.httpMu.Unlock()
		l.Close()
		return nil
	}
	s.httpSrv = srv
	s.httpMu.Unlock()
	s.logf("serving on %s", l.Addr())
	if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown gracefully stops an active Serve/ListenAndServe (in-flight
// requests drain until ctx expires), drains the job subsystem (running
// and queued jobs complete, or are canceled once ctx expires; the
// training log is write-through, so every appended observation is
// already persisted), and, when Config.CachePath is set, persists the
// plan cache so the next start is warm.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.httpMu.Lock()
	srv := s.httpSrv
	s.shutDown = true
	s.httpMu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	if jerr := s.jobs.Shutdown(ctx); jerr != nil {
		s.logf("job drain cut short: %v", jerr)
		err = errors.Join(err, jerr)
	}
	if s.retrainer != nil {
		// After the job drain (no more observations will land) and before
		// the training log closes: an in-progress retrain pass reads the
		// log files the appenders still hold open.
		s.retrainer.Stop()
	}
	if s.trainLog != nil {
		// After the job drain: closing flushes the final rows and
		// releases the per-system appenders. A straggler worker that
		// outlives a cut-short drain can still append afterwards — the
		// log falls back to one-shot write-through, so nothing is lost.
		if cerr := s.trainLog.Close(); cerr != nil {
			s.logf("closing training log: %v", cerr)
			err = errors.Join(err, cerr)
		}
	}
	if s.cfg.CachePath != "" {
		if serr := s.cache.SaveFile(s.cfg.CachePath); serr != nil {
			s.logf("failed to save plan cache to %s: %v", s.cfg.CachePath, serr)
			err = errors.Join(err, serr)
		} else {
			s.logf("saved %d cached plans to %s", s.cache.Len(), s.cfg.CachePath)
		}
	}
	return err
}

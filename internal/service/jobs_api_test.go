package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
)

func postJob(t *testing.T, url, body string) (JobInfo, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ji JobInfo
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ji); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return ji, resp
}

func getJob(t *testing.T, url, id string) (JobInfo, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return JobInfo{}, resp.StatusCode
	}
	var ji JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&ji); err != nil {
		t.Fatal(err)
	}
	return ji, resp.StatusCode
}

func pollJob(t *testing.T, url, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ji, code := getJob(t, url, id)
		if code != http.StatusOK {
			t.Fatalf("polling %s: status %d", id, code)
		}
		switch ji.State {
		case "succeeded", "failed", "canceled":
			return ji
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, ji.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func deleteJob(t *testing.T, url, id string) (JobInfo, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ji JobInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ji); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return ji, resp
}

// TestJobLifecycleHTTP is the acceptance path: cold submit answers 202
// with a queued record and a Location header; polling reaches succeeded
// with tuned params, a measured runtime and the cache outcome; a repeat
// job is served from the cache.
func TestJobLifecycleHTTP(t *testing.T) {
	_, ts, src := newTestServer(t, Config{})
	body := `{"system":"i7-2600K","dim":1500,"tsize":750,"dsize":4}`

	ji, resp := postJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if ji.State != "queued" {
		t.Errorf("submit state = %q, want queued", ji.State)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+ji.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, ji.ID)
	}
	if ji.Instance.Rows != 1500 || ji.Instance.Cols != 1500 {
		t.Errorf("instance echo = %+v", ji.Instance)
	}
	if ji.Priority != "normal" {
		t.Errorf("default priority = %q, want normal", ji.Priority)
	}

	done := pollJob(t, ts.URL, ji.ID)
	if done.State != "succeeded" {
		t.Fatalf("job = %+v, want succeeded", done)
	}
	r := done.Result
	if r == nil {
		t.Fatal("succeeded job has no result")
	}
	if r.Cache != "miss" {
		t.Errorf("cold job cache = %q, want miss", r.Cache)
	}
	if r.MeasuredSec <= 0 || r.SerialSec <= 0 {
		t.Errorf("runtimes not reported: %+v", r)
	}
	if !r.Serial && r.Params.CPUTile < 1 {
		t.Errorf("invalid params: %+v", r.Params)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Errorf("lifecycle timestamps missing: %+v", done)
	}
	if got := src.calls.Load(); got != 1 {
		t.Fatalf("cold job resolved the tuner %d times, want 1", got)
	}

	// A second job for the same instance rides the plan cache.
	ji2, _ := postJob(t, ts.URL, body)
	if done2 := pollJob(t, ts.URL, ji2.ID); done2.Result == nil || done2.Result.Cache != "hit" {
		t.Errorf("repeat job cache = %+v, want hit", done2.Result)
	}
	if got := src.calls.Load(); got != 1 {
		t.Errorf("repeat job re-resolved the tuner (%d calls)", got)
	}

	// Stats merge: job counters and the per-system cache breakdown.
	st := getStats(t, ts.URL)
	if st.Jobs.Submitted != 2 || st.Jobs.Succeeded != 2 {
		t.Errorf("job stats = %+v", st.Jobs)
	}
	sys := st.CacheBySystem["i7-2600K"]
	if sys.Misses != 1 || sys.Hits != 1 {
		t.Errorf("cache_by_system = %+v, want 1 miss 1 hit", sys)
	}
}

func TestJobRefinedReportsStats(t *testing.T) {
	const budget = 5
	dir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		Jobs: JobOptions{RefineBudget: budget, TrainingLogDir: dir},
	})
	defer s.Shutdown(context.Background())

	ji, resp := postJob(t, ts.URL, `{"system":"i7-2600K","dim":1900,"tsize":3000,"dsize":1,"refine":true,"priority":"high"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if !ji.Refine || ji.Priority != "high" {
		t.Errorf("echo = %+v", ji)
	}
	done := pollJob(t, ts.URL, ji.ID)
	if done.State != "succeeded" {
		t.Fatalf("refine job = %+v", done)
	}
	ref := done.Result.Refinement
	if ref == nil {
		t.Fatal("refined job missing refinement stats")
	}
	if ref.Probes < 1 || ref.Probes > budget {
		t.Errorf("probes = %d, want within budget %d", ref.Probes, budget)
	}
	if ref.FinalSec > ref.StartSec {
		t.Errorf("refinement regressed: %+v", ref)
	}
	if ref.Improvement < 1 {
		t.Errorf("improvement = %v, want >= 1", ref.Improvement)
	}
}

// gatedSource blocks tuner resolution until released, so tests can hold
// a job in the running state deterministically.
type gatedSource struct {
	inner TunerSource
	gate  chan struct{}
	once  sync.Once
	mu    sync.Mutex
	calls int
}

func (g *gatedSource) Tuner(sys hw.System) (core.Predictor, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	<-g.gate
	return g.inner.Tuner(sys)
}

func (g *gatedSource) entered() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls > 0
}

func (g *gatedSource) release() { g.once.Do(func() { close(g.gate) }) }

func newGatedServer(t *testing.T, jobOpts JobOptions) (*httptest2, *gatedSource) {
	t.Helper()
	g := &gatedSource{inner: NewStaticSource(tinyTuner(t)), gate: make(chan struct{})}
	s, ts, _ := newTestServer(t, Config{Tuners: g, Jobs: jobOpts})
	t.Cleanup(g.release)
	return &httptest2{s: s, url: ts.URL}, g
}

// httptest2 bundles the server and its base URL for the gated tests.
type httptest2 struct {
	s   *Server
	url string
}

func TestJobCancelQueued(t *testing.T) {
	h, g := newGatedServer(t, JobOptions{Workers: 1, QueueDepth: 4})

	// The first job occupies the single worker inside the gated resolve.
	run, _ := postJob(t, h.url, `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`)
	for !g.entered() {
		time.Sleep(time.Millisecond)
	}
	queued, _ := postJob(t, h.url, `{"system":"i7-2600K","dim":600,"tsize":10,"dsize":1}`)

	ji, resp := deleteJob(t, h.url, queued.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	if ji.State != "canceled" {
		t.Errorf("canceled job state = %q, want canceled", ji.State)
	}
	// Canceling again conflicts.
	if _, resp := deleteJob(t, h.url, queued.ID); resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d, want 409", resp.StatusCode)
	}
	if _, resp := deleteJob(t, h.url, "job-bogus"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown cancel status = %d, want 404", resp.StatusCode)
	}

	g.release()
	if done := pollJob(t, h.url, run.ID); done.State != "succeeded" {
		t.Errorf("blocked job finished %q, want succeeded", done.State)
	}
}

func TestJobQueueOverflow429(t *testing.T) {
	h, g := newGatedServer(t, JobOptions{Workers: 1, QueueDepth: 1})

	postJob(t, h.url, `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`)
	for !g.entered() {
		time.Sleep(time.Millisecond)
	}
	postJob(t, h.url, `{"system":"i7-2600K","dim":600,"tsize":10,"dsize":1}`)

	_, resp := postJob(t, h.url, `{"system":"i7-2600K","dim":700,"tsize":10,"dsize":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	// The hint is derived (service time x backlog, clamped to [1, 60]),
	// not hardcoded; with no finished job yet it sits at the minimum.
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %d, want within [1, 60]", ra)
	}
	g.release()
}

// TestRetryAfterTracksServiceTime: once jobs have finished, the 429
// hint reflects the observed service time instead of a constant — a
// manager whose jobs run long must advise a longer backoff than the
// 1-second floor, while staying inside the clamp.
func TestRetryAfterTracksServiceTime(t *testing.T) {
	h, g := newGatedServer(t, JobOptions{Workers: 1, QueueDepth: 1})

	// Run one job whose gated resolve holds the worker for a while, so
	// the recorded service time is measurably large.
	ji, _ := postJob(t, h.url, `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`)
	for !g.entered() {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	g.release()
	if done := pollJob(t, h.url, ji.ID); done.State != "succeeded" {
		t.Fatalf("job finished %q, want succeeded", done.State)
	}
	st := h.s.Jobs().Stats()
	if st.AvgServiceSec <= 0 {
		t.Fatalf("avg service time not tracked: %+v", st)
	}
	if hint := h.s.Jobs().RetryAfter(); hint < time.Second || hint > time.Minute {
		t.Errorf("derived hint %v outside clamp", hint)
	}
}

// TestJobShutdownDrainsAndPersistsLog: shutdown lets running/queued
// jobs finish and the refined observations are on disk afterwards.
func TestJobShutdownDrainsAndPersistsLog(t *testing.T) {
	dir := t.TempDir()
	s, ts, _ := newTestServer(t, Config{
		Jobs: JobOptions{Workers: 2, RefineBudget: 4, TrainingLogDir: dir},
	})

	ji, resp := postJob(t, ts.URL, `{"system":"i7-2600K","dim":1900,"tsize":3000,"dsize":1,"refine":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	j, ok := s.Jobs().Get(ji.ID)
	if !ok || j.State.String() != "succeeded" {
		t.Fatalf("after drain, job = %+v", j)
	}
	// Refined parallel outcomes must be persisted for retraining.
	if j.Result != nil && !j.Result.Serial {
		f, err := os.Open(filepath.Join(dir, "i7-2600K.csv"))
		if err != nil {
			t.Fatalf("training log missing after shutdown: %v", err)
		}
		defer f.Close()
		sr, err := core.ReadCSV(f)
		if err != nil {
			t.Fatalf("training log unreadable: %v", err)
		}
		if len(sr.Instances) == 0 || len(sr.Instances[0].Points) == 0 {
			t.Error("training log empty")
		}
	}
}

func TestJobListFilters(t *testing.T) {
	h, g := newGatedServer(t, JobOptions{Workers: 1, QueueDepth: 8})
	defer g.release()

	postJob(t, h.url, `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`)
	for !g.entered() {
		time.Sleep(time.Millisecond)
	}
	postJob(t, h.url, `{"system":"i7-2600K","dim":600,"tsize":10,"dsize":1}`)

	var list struct {
		Jobs  []JobInfo `json:"jobs"`
		Count int       `json:"count"`
	}
	get := func(q string) {
		t.Helper()
		resp, err := http.Get(h.url + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q status %d", q, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
	}
	get("")
	if list.Count != 2 {
		t.Errorf("list all = %d, want 2", list.Count)
	}
	get("?state=queued")
	if list.Count != 1 || list.Jobs[0].Instance.Rows != 600 {
		t.Errorf("queued list = %+v", list)
	}
	get("?state=running&system=i7-2600K")
	if list.Count != 1 || list.Jobs[0].Instance.Rows != 500 {
		t.Errorf("running list = %+v", list)
	}

	// Invalid filters.
	resp, err := http.Get(h.url + "/v1/jobs?state=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus state filter status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(h.url + "/v1/jobs?system=riscv")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown system filter status = %d, want 404", resp.StatusCode)
	}
}

func TestJobValidationHTTP(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"missing system", `{"dim":500,"tsize":10,"dsize":1}`, http.StatusBadRequest},
		{"unknown system", `{"system":"riscv","dim":500,"tsize":10,"dsize":1}`, http.StatusNotFound},
		{"bad priority", `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1,"priority":"urgent"}`, http.StatusBadRequest},
		{"missing granularity", `{"system":"i7-2600K","dim":500}`, http.StatusBadRequest},
		{"unknown field", `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1,"turbo":true}`, http.StatusBadRequest},
		{"named app ok", `{"system":"i7-2600K","dim":700,"app":"nash","rounds":2,"priority":"low"}`, http.StatusAccepted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := postJob(t, ts.URL, tc.body)
			if resp.StatusCode != tc.code {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
}

// TestMethodAndContentTypeHygiene: wrong methods answer 405 with Allow;
// JSON endpoints reject non-JSON bodies with 415.
func TestMethodAndContentTypeHygiene(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	methodCases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/v1/tune", "POST"},
		{http.MethodDelete, "/v1/tune", "POST"},
		{http.MethodDelete, "/v1/jobs", "GET, POST"},
		{http.MethodPut, "/v1/jobs", "GET, POST"},
		{http.MethodPost, "/v1/jobs/job-00000001", "DELETE, GET"},
		{http.MethodPost, "/v1/systems", "GET"},
		{http.MethodPost, "/v1/stats", "GET"},
	}
	for _, tc := range methodCases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
	}

	body := `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":1}`
	for _, path := range []string{"/v1/tune", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("POST %s with text/plain status = %d, want 415", path, resp.StatusCode)
		}
		// curl's bare -d default must keep working (every documented
		// example posts JSON that way).
		resp, err = http.Post(ts.URL+path, "application/x-www-form-urlencoded", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnsupportedMediaType {
			t.Errorf("POST %s with curl's default content type was rejected", path)
		}
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
)

// testTuner trains one shared tiny-space tuner per test binary run.
var (
	tunerOnce sync.Once
	testTun   *core.Tuner
	tunerErr  error
)

func tinyTuner(t *testing.T) *core.Tuner {
	t.Helper()
	tunerOnce.Do(func() {
		space := core.Space{
			Dims:      []int{300, 700, 1500},
			TSizes:    []float64{10, 200, 3000},
			DSizes:    []int{1, 5},
			CPUTiles:  []int{1, 8},
			BandFracs: []float64{-1, 0.5, 1.0},
			HaloFracs: []float64{-1, 0, 1.0},
			GPUTiles:  []int{1, 8},
		}
		sr, err := core.Exhaustive(hw.I7_2600K(), space, core.SearchOptions{})
		if err != nil {
			tunerErr = err
			return
		}
		testTun, tunerErr = core.Train(sr, core.DefaultTrainOptions())
	})
	if tunerErr != nil {
		t.Fatal(tunerErr)
	}
	return testTun
}

// countingSource counts tuner resolutions. The server resolves the tuner
// exactly once per cache miss (inside the singleflight), so the count
// equals the number of underlying predict evaluations.
type countingSource struct {
	inner TunerSource
	calls atomic.Int64
}

func (c *countingSource) Tuner(sys hw.System) (core.Predictor, error) {
	c.calls.Add(1)
	return c.inner.Tuner(sys)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *countingSource) {
	t.Helper()
	src := &countingSource{inner: NewStaticSource(tinyTuner(t))}
	if cfg.Tuners == nil {
		cfg.Tuners = src
	}
	if len(cfg.Systems) == 0 {
		cfg.Systems = []hw.System{hw.I7_2600K()}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, src
}

func postTune(t *testing.T, url string, body string) (TuneResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/tune", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TuneResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return tr, resp
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats status %d", resp.StatusCode)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestTuneColdHitAndStats is the acceptance path: a cold request
// triggers exactly one predict, a repeat is a cache hit, and /v1/stats
// counters prove both.
func TestTuneColdHitAndStats(t *testing.T) {
	_, ts, src := newTestServer(t, Config{})
	body := `{"system":"i7-2600K","dim":1900,"tsize":750,"dsize":4}`

	tr, resp := postTune(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", resp.StatusCode)
	}
	if tr.Cache != "miss" {
		t.Errorf("cold request cache = %q, want miss", tr.Cache)
	}
	if tr.Instance.Rows != 1900 || tr.Instance.Cols != 1900 {
		t.Errorf("instance echo wrong: %+v", tr.Instance)
	}
	if !tr.Serial && tr.Params.CPUTile < 1 {
		t.Errorf("invalid params: %+v", tr.Params)
	}
	if tr.RTimeSec <= 0 || tr.SerialSec <= 0 {
		t.Errorf("runtimes not reported: %+v", tr)
	}
	if got := src.calls.Load(); got != 1 {
		t.Fatalf("cold request resolved the tuner %d times, want exactly 1", got)
	}
	st := getStats(t, ts.URL)
	if st.Cache.Misses != 1 || st.Cache.Hits != 0 {
		t.Fatalf("stats after cold = %+v, want 1 miss 0 hits", st.Cache)
	}

	tr2, _ := postTune(t, ts.URL, body)
	if tr2.Cache != "hit" {
		t.Errorf("repeat cache = %q, want hit", tr2.Cache)
	}
	if tr2.Params != tr.Params || tr2.Serial != tr.Serial {
		t.Errorf("hit returned different decision: %+v vs %+v", tr2, tr)
	}
	if got := src.calls.Load(); got != 1 {
		t.Errorf("repeat request re-resolved the tuner (%d calls)", got)
	}
	st = getStats(t, ts.URL)
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Errorf("stats after repeat = %+v, want 1 miss 1 hit", st.Cache)
	}
	if st.Requests["tune"] != 2 {
		t.Errorf("tune request counter = %d, want 2", st.Requests["tune"])
	}
}

// TestConcurrentIdenticalRequestsDedupe: N concurrent identical requests
// must produce exactly one underlying tuner evaluation.
func TestConcurrentIdenticalRequestsDedupe(t *testing.T) {
	_, ts, src := newTestServer(t, Config{})
	const n = 24
	body := `{"system":"i7-2600K","rows":600,"cols":1400,"app":"seqcompare"}`

	var wg sync.WaitGroup
	var decisions sync.Map
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, resp := postTune(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			decisions.Store(i, tr.Params)
		}(i)
	}
	wg.Wait()

	if got := src.calls.Load(); got != 1 {
		t.Errorf("concurrent requests made %d tuner calls, want exactly 1", got)
	}
	st := getStats(t, ts.URL)
	if st.Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1 (hits %d, coalesced %d)",
			st.Cache.Misses, st.Cache.Hits, st.Cache.Coalesced)
	}
	if st.Cache.Lookups() != n {
		t.Errorf("lookups = %d, want %d", st.Cache.Lookups(), n)
	}
	var first any
	decisions.Range(func(_, v any) bool {
		if first == nil {
			first = v
		} else if v != first {
			t.Errorf("divergent decisions: %+v vs %+v", v, first)
		}
		return true
	})
}

func TestValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"trailing garbage", `{"system":"i7-2600K","dim":700,"tsize":10,"dsize":1} {"x":1}`, http.StatusBadRequest},
		{"unknown field", `{"system":"i7-2600K","dim":10,"tsize":1,"dsize":1,"bogus":1}`, http.StatusBadRequest},
		{"missing system", `{"dim":500,"tsize":10,"dsize":1}`, http.StatusBadRequest},
		{"unknown system", `{"system":"riscv","dim":500,"tsize":10,"dsize":1}`, http.StatusNotFound},
		{"missing granularity", `{"system":"i7-2600K","dim":500}`, http.StatusBadRequest},
		{"unknown app", `{"system":"i7-2600K","dim":500,"app":"raytrace"}`, http.StatusBadRequest},
		{"zero shape", `{"system":"i7-2600K","tsize":10,"dsize":1}`, http.StatusBadRequest},
		{"negative knapsack dim", `{"system":"i7-2600K","dim":-5,"app":"knapsack"}`, http.StatusBadRequest},
		{"huge knapsack dim", `{"system":"i7-2600K","dim":100000000000,"app":"knapsack"}`, http.StatusBadRequest},
		{"huge rect", `{"system":"i7-2600K","rows":600,"cols":2000000,"tsize":10,"dsize":1}`, http.StatusBadRequest},
		{"negative dsize", `{"system":"i7-2600K","dim":500,"tsize":10,"dsize":-1}`, http.StatusBadRequest},
		{"inconsistent shape", `{"system":"i7-2600K","dim":500,"rows":600,"cols":700,"tsize":10,"dsize":1}`, http.StatusBadRequest},
		{"nash app ok", `{"system":"i7-2600K","dim":700,"app":"nash","rounds":2}`, http.StatusOK},
		{"explicit override ok", `{"system":"i7-2600K","dim":700,"app":"nash","tsize":9000,"dsize":1}`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, resp := postTune(t, ts.URL, tc.body)
			if resp.StatusCode != tc.code {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}

	// Method checks.
	resp, err := http.Get(ts.URL + "/v1/tune")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tune status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats status = %d, want 405", resp.StatusCode)
	}
}

func TestSystemsAndHealth(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Systems []SystemInfo `json:"systems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Systems) != 1 || body.Systems[0].Name != "i7-2600K" {
		t.Fatalf("systems = %+v", body.Systems)
	}
	if body.Systems[0].MaxGPUs != 2 || len(body.Systems[0].GPUs) != 2 {
		t.Errorf("GPU description wrong: %+v", body.Systems[0])
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hresp.StatusCode)
	}
	b, _ := io.ReadAll(hresp.Body)
	if string(b) != "ok\n" {
		t.Errorf("/healthz body %q", b)
	}
}

// TestCachePersistsAcrossRestarts: a server with CachePath saves its
// plans on Shutdown, and a fresh server over the same path serves the
// first request as a hit.
func TestCachePersistsAcrossRestarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	body := `{"system":"i7-2600K","dim":1500,"tsize":3000,"dsize":1}`

	s1, ts1, _ := newTestServer(t, Config{CachePath: path})
	if tr, _ := postTune(t, ts1.URL, body); tr.Cache != "miss" {
		t.Fatalf("first-generation request = %q, want miss", tr.Cache)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, ts2, src2 := newTestServer(t, Config{CachePath: path})
	tr, _ := postTune(t, ts2.URL, body)
	if tr.Cache != "hit" {
		t.Errorf("post-restart request = %q, want hit", tr.Cache)
	}
	if src2.calls.Load() != 0 {
		t.Errorf("warm start still resolved the tuner %d times", src2.calls.Load())
	}
}

func TestLazyTrainingSource(t *testing.T) {
	// The real default path: no tuner files, training on first use.
	space := core.Space{
		Dims:      []int{300, 700},
		TSizes:    []float64{10, 3000},
		DSizes:    []int{1},
		CPUTiles:  []int{1, 8},
		BandFracs: []float64{-1, 1.0},
		HaloFracs: []float64{-1},
		GPUTiles:  []int{1},
	}
	s, err := New(Config{
		Systems: []hw.System{hw.I3_540()},
		Tuners:  NewTrainingSource(TrainingSourceOptions{Space: space}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr, resp := postTune(t, ts.URL, `{"system":"i3-540","dim":700,"tsize":3000,"dsize":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if tr.Cache != "miss" {
		t.Errorf("cache = %q, want miss", tr.Cache)
	}
}

func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	tun := tinyTuner(t)
	if err := tun.Save(filepath.Join(dir, tun.Sys.Name+".json")); err != nil {
		t.Fatal(err)
	}
	src := NewDirSource(dir)
	got, err := src.Tuner(tun.Sys)
	if err != nil {
		t.Fatal(err)
	}
	if got.System().Name != tun.Sys.Name {
		t.Errorf("loaded tuner for %s, want %s", got.System().Name, tun.Sys.Name)
	}
	// Missing file: error, remembered.
	if _, err := src.Tuner(hw.I3_540()); err == nil {
		t.Error("missing tuner file must fail")
	}
	if r, ok := src.(interface{ Ready(string) bool }); ok {
		if !r.Ready(tun.Sys.Name) {
			t.Error("loaded system must be ready")
		}
		if r.Ready("i3-540") {
			t.Error("failed system must not be ready")
		}
	} else {
		t.Error("DirSource must expose Ready")
	}
}

// TestServeShutdownLifecycle exercises the real-socket path used by
// waved: Serve on an OS-assigned port, answer a request, shut down
// gracefully, and observe Serve return nil.
func TestServeShutdownLifecycle(t *testing.T) {
	s, err := New(Config{Systems: []hw.System{hw.I7_2600K()}, Tuners: NewStaticSource(tinyTuner(t))})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	resp, err := http.Get("http://" + l.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
}

// TestShutdownBeforeServe: a signal racing ahead of the serve goroutine
// must not leave an unstoppable server behind — Serve called after
// Shutdown returns immediately.
func TestShutdownBeforeServe(t *testing.T) {
	s, err := New(Config{Systems: []hw.System{hw.I7_2600K()}, Tuners: NewStaticSource(tinyTuner(t))})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after Shutdown = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve after Shutdown never returned")
	}
}

// TestCorruptCacheFileToleratedAtStartup: the cache file is an
// optimization; a truncated one must not keep the daemon from starting.
func TestCorruptCacheFileToleratedAtStartup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"entr`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Systems:   []hw.System{hw.I7_2600K()},
		Tuners:    NewStaticSource(tinyTuner(t)),
		CachePath: path,
	})
	if err != nil {
		t.Fatalf("corrupt cache file must not fail startup: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, resp := postTune(t, ts.URL, `{"system":"i7-2600K","dim":700,"tsize":10,"dsize":1}`); resp.StatusCode != http.StatusOK {
		t.Errorf("cold-start request status %d", resp.StatusCode)
	}
	// Shutdown must repair the file via the atomic rewrite: a fresh
	// server over the same path starts warm.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2, ts2, _ := newTestServer(t, Config{CachePath: path})
	defer s2.Shutdown(context.Background())
	if tr, _ := postTune(t, ts2.URL, `{"system":"i7-2600K","dim":700,"tsize":10,"dsize":1}`); tr.Cache != "hit" {
		t.Errorf("post-repair request = %q, want hit", tr.Cache)
	}
}

// TestPanickingResolveSettlesTheSlot: a tuner resolve that panics must
// settle the slot with an error instead of hanging every later request
// for the system.
func TestPanickingResolveSettlesTheSlot(t *testing.T) {
	src := newLazySource(func(sys hw.System) (core.Predictor, error) {
		panic("training exploded")
	})
	for i := 0; i < 2; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := src.Tuner(hw.I3_540())
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("attempt %d: err = %v, want panicked error", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("attempt %d: Tuner hung", i)
		}
	}
	if src.Ready(hw.I3_540().Name) {
		t.Error("panicked slot must not report ready")
	}
}

func TestDuplicateSystemRejected(t *testing.T) {
	_, err := New(Config{Systems: []hw.System{hw.I3_540(), hw.I3_540()}})
	if err == nil {
		t.Fatal("duplicate systems must be rejected")
	}
}

// TestFailedResolveSurfacesOneError pins the error-caching contract: a
// failed resolve settles its wrapped error into the slot once, so the
// first caller and every later one observe the identical error value
// (and the resolve itself runs exactly once).
func TestFailedResolveSurfacesOneError(t *testing.T) {
	cause := errors.New("no such tuner file")
	var calls atomic.Int64
	src := newLazySource(func(sys hw.System) (core.Predictor, error) {
		calls.Add(1)
		return nil, cause
	})
	_, err1 := src.Tuner(hw.I3_540())
	_, err2 := src.Tuner(hw.I3_540())
	if err1 == nil {
		t.Fatal("failed resolve must error")
	}
	if err1 != err2 {
		t.Errorf("errors differ across calls: %v vs %v", err1, err2)
	}
	if !errors.Is(err1, cause) {
		t.Errorf("wrapped error %v does not unwrap to the cause", err1)
	}
	if !strings.Contains(err1.Error(), "resolving tuner for i3-540") {
		t.Errorf("error %q does not name the system", err1)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("resolve ran %d times, want 1", got)
	}
	if src.Ready(hw.I3_540().Name) {
		t.Error("failed slot must not report ready")
	}
}

// TestStaticSourceMissErrorIsStable gives StaticSource the same
// identical-error guarantee on misses.
func TestStaticSourceMissErrorIsStable(t *testing.T) {
	src := NewStaticSource(tinyTuner(t))
	_, err1 := src.Tuner(hw.I3_540())
	_, err2 := src.Tuner(hw.I3_540())
	if err1 == nil || err1 != err2 {
		t.Fatalf("miss errors must be the identical value: %v vs %v", err1, err2)
	}
	if tun, err := src.Tuner(hw.I7_2600K()); err != nil || tun == nil {
		t.Fatalf("hit failed: %v", err)
	}
}

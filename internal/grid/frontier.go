package grid

import "fmt"

// This file generalizes the execution substrate from dense anti-diagonal
// enumeration to explicit wavefront frontiers. A Frontier is an iterator
// over "ready sets": batches of cells that are mutually independent and
// whose dependencies have all been delivered by earlier steps. Executors
// compute one step at a time with a barrier between steps, so any
// dependency-respecting kernel produces identical results through any
// frontier covering the same cells.
//
// Two families are provided:
//
//   - DiagFrontier: the dense special case. Steps are the closed-form
//     anti-diagonals (NumDiagsRect/DiagLenRect/DiagCellRect), so it costs
//     nothing to construct and its step count is known a priori. This is
//     the frontier every regular wavefront workload uses.
//   - IrregularFrontier: the general case, in the spirit of the irregular
//     wavefront propagation patterns of Teodoro et al. The live region is
//     an arbitrary subset of the rectangle (a mask), dependencies are a
//     declared Stencil, and readiness is tracked with per-cell in-degree
//     counting: the constructor seeds a ready queue with the cells that
//     have no live predecessors, and completing a step decrements the
//     in-degrees of its successors, releasing the next ready set.
//
// A frontier over a masked region can dead-end: if the stencil induces a
// dependency cycle (or a self-dependency), some live cells never become
// ready. Frontiers report their intended coverage via Cells so executors
// can detect this and fail instead of silently under-computing (or
// hanging).

// Cell identifies one grid cell by row and column.
type Cell struct{ R, C int }

// Offset is one relative dependency of a stencil: cell (r, c) depends on
// cell (r+DR, c+DC). Wavefront dependencies point at already-computed
// cells, so useful offsets have DR < 0, or DR == 0 and DC < 0.
type Offset struct{ DR, DC int }

// Stencil is the dependency shape of a kernel: the set of relative
// offsets a cell reads. Executors use it to schedule irregular frontiers;
// the dense diagonal path only relies on the weaker guarantee that every
// dependency lies on an earlier anti-diagonal.
type Stencil []Offset

// DenseStencil returns the classic wavefront dependency cone — west,
// north and northwest — which every paper kernel and the executors'
// barrier discipline are proven against.
func DenseStencil() Stencil {
	return Stencil{{0, -1}, {-1, 0}, {-1, -1}}
}

// Causal reports whether every offset points strictly backwards in
// row-major order (DR < 0, or DR == 0 and DC < 0). A causal stencil can
// never dead-end on a full rectangle; non-causal stencils may induce
// cycles, which frontier construction surfaces as a stuck frontier.
func (s Stencil) Causal() bool {
	for _, o := range s {
		if o.DR > 0 || (o.DR == 0 && o.DC >= 0) {
			return false
		}
	}
	return len(s) > 0
}

// Frontier iterates over the ready cell sets of a wavefront computation.
// Cells within one step are mutually independent; a step's dependencies
// are all contained in earlier steps. Implementations are single-use and
// not safe for concurrent use; the slice returned by Next is only valid
// until the following Next call.
type Frontier interface {
	// Next returns the next ready set; ok is false once the frontier is
	// exhausted (the returned slice is then empty).
	Next() (step []Cell, ok bool)
	// Cells returns the total number of cells the frontier intends to
	// deliver. Executors compare it against the delivered count to
	// detect frontiers that dead-end before covering their region.
	Cells() int
	// Steps returns the total number of steps when it is known in closed
	// form (the dense diagonal case), and -1 otherwise.
	Steps() int
}

// DiagFrontier is the dense frontier: steps are the anti-diagonals of a
// contiguous range, enumerated in closed form. It is the fast special
// case of Frontier that the classic NumDiags/DiagLen/DiagCell helpers
// describe.
type DiagFrontier struct {
	rows, cols int
	lo, hi     int
	d          int
	buf        []Cell
}

// NewDiagFrontier returns the frontier covering every cell of a
// rows x cols grid in anti-diagonal order.
func NewDiagFrontier(rows, cols int) *DiagFrontier {
	return NewDiagRangeFrontier(rows, cols, 0, NumDiagsRect(rows, cols)-1)
}

// NewDiagRangeFrontier returns the dense frontier over anti-diagonals
// [lo, hi] of a rows x cols grid; the range is clamped to the grid.
func NewDiagRangeFrontier(rows, cols, lo, hi int) *DiagFrontier {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("grid: frontier shape must be positive, got %dx%d", rows, cols))
	}
	if lo < 0 {
		lo = 0
	}
	if hi > NumDiagsRect(rows, cols)-1 {
		hi = NumDiagsRect(rows, cols) - 1
	}
	return &DiagFrontier{rows: rows, cols: cols, lo: lo, hi: hi, d: lo}
}

// DiagRange returns the inclusive anti-diagonal range the frontier
// covers. Consumers with closed-form fast paths (the analytic cost
// model, the GPU band planner) use it to bypass step-by-step iteration.
func (f *DiagFrontier) DiagRange() (lo, hi int) { return f.lo, f.hi }

// Next implements Frontier: one anti-diagonal per step.
func (f *DiagFrontier) Next() ([]Cell, bool) {
	if f.d > f.hi {
		return nil, false
	}
	n := DiagLenRect(f.rows, f.cols, f.d)
	if cap(f.buf) < n {
		f.buf = make([]Cell, n)
	}
	step := f.buf[:n]
	for i := 0; i < n; i++ {
		r, c := DiagCellRect(f.rows, f.cols, f.d, i)
		step[i] = Cell{R: r, C: c}
	}
	f.d++
	return step, true
}

// Cells implements Frontier.
func (f *DiagFrontier) Cells() int {
	return CellsInDiagRangeRect(f.rows, f.cols, f.lo, f.hi)
}

// Steps implements Frontier: the closed-form diagonal count.
func (f *DiagFrontier) Steps() int {
	if f.hi < f.lo {
		return 0
	}
	return f.hi - f.lo + 1
}

// IrregularFrontier propagates over an arbitrary live region with
// per-cell in-degree counting: a work queue seeded from the cells with
// no live predecessors, released level by level as dependencies
// complete. This is the general substrate behind masked workloads
// (Nussinov's triangle, morphological reconstruction on a mask).
type IrregularFrontier struct {
	rows, cols int
	stencil    Stencil
	live       []bool
	indeg      []int32
	ready      []Cell
	next       []Cell
	total      int
	started    bool
}

// NewIrregularFrontier builds the frontier over the cells of a
// rows x cols grid for which live returns true (a nil live keeps the
// whole rectangle), depending on each other through the given stencil.
// Construction is O(cells x |stencil|); on a full rectangle with the
// dense stencil the resulting steps are exactly the anti-diagonals, so
// the irregular path is a strict generalization of the dense one.
func NewIrregularFrontier(rows, cols int, st Stencil, live func(r, c int) bool) *IrregularFrontier {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("grid: frontier shape must be positive, got %dx%d", rows, cols))
	}
	if len(st) == 0 {
		st = DenseStencil()
	}
	f := &IrregularFrontier{
		rows: rows, cols: cols, stencil: st,
		live:  make([]bool, rows*cols),
		indeg: make([]int32, rows*cols),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if live == nil || live(r, c) {
				f.live[r*cols+c] = true
				f.total++
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if !f.live[i] {
				continue
			}
			for _, o := range st {
				pr, pc := r+o.DR, c+o.DC
				if pr >= 0 && pr < rows && pc >= 0 && pc < cols && f.live[pr*cols+pc] {
					f.indeg[i]++
				}
			}
			if f.indeg[i] == 0 {
				f.ready = append(f.ready, Cell{R: r, C: c})
			}
		}
	}
	return f
}

// Next implements Frontier: it returns the current ready level and
// releases the cells whose last dependency it contains. Levels are
// deterministic: cells enter a level in row-major order of their final
// releasing dependency scan.
func (f *IrregularFrontier) Next() ([]Cell, bool) {
	if f.started {
		// Completing the previous step releases its successors: a
		// dependency (r+DR, c+DC) -> (r, c) reversed is (r-DR, c-DC).
		f.next = f.next[:0]
		for _, cell := range f.ready {
			for _, o := range f.stencil {
				sr, sc := cell.R-o.DR, cell.C-o.DC
				if sr < 0 || sr >= f.rows || sc < 0 || sc >= f.cols {
					continue
				}
				j := sr*f.cols + sc
				if !f.live[j] {
					continue
				}
				if f.indeg[j]--; f.indeg[j] == 0 {
					f.next = append(f.next, Cell{R: sr, C: sc})
				}
			}
		}
		f.ready, f.next = f.next, f.ready
	}
	f.started = true
	if len(f.ready) == 0 {
		return nil, false
	}
	return f.ready, true
}

// Cells implements Frontier: the size of the live region.
func (f *IrregularFrontier) Cells() int { return f.total }

// Steps implements Frontier: level counts of irregular regions have no
// closed form, so it returns -1; use CountFrontier to measure one.
func (f *IrregularFrontier) Steps() int { return -1 }

// CountFrontier drains f and returns the number of steps and cells it
// delivered. It is the way to obtain the true wavefront step count of an
// irregular region — progress accounting must use it (or the executor's
// delivered counts) rather than NumDiags, which only equals the step
// count for dense rectangles. The frontier is consumed.
func CountFrontier(f Frontier) (steps, cells int) {
	for {
		step, ok := f.Next()
		if !ok {
			return steps, cells
		}
		steps++
		cells += len(step)
	}
}

// LiveCellsRect counts the cells of a rows x cols grid for which live
// returns true (the whole rectangle when live is nil).
func LiveCellsRect(rows, cols int, live func(r, c int) bool) int {
	if live == nil {
		return rows * cols
	}
	n := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if live(r, c) {
				n++
			}
		}
	}
	return n
}

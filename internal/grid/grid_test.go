package grid

import (
	"testing"
	"testing/quick"
)

func TestDiagLenSmall(t *testing.T) {
	// 4x6 is the paper's Figure 1 example; we use square grids, so check
	// the 4x4 profile explicitly: 1,2,3,4,3,2,1.
	want := []int{1, 2, 3, 4, 3, 2, 1}
	for d, w := range want {
		if got := DiagLen(4, d); got != w {
			t.Errorf("DiagLen(4,%d) = %d, want %d", d, got, w)
		}
	}
	if DiagLen(4, -1) != 0 || DiagLen(4, 7) != 0 {
		t.Error("out-of-range diagonals must have length 0")
	}
}

func TestNumDiags(t *testing.T) {
	for _, tc := range []struct{ dim, want int }{{1, 1}, {2, 3}, {4, 7}, {500, 999}} {
		if got := NumDiags(tc.dim); got != tc.want {
			t.Errorf("NumDiags(%d) = %d, want %d", tc.dim, got, tc.want)
		}
	}
}

func TestDiagLensSumToCells(t *testing.T) {
	// Property: the diagonal lengths of a dim x dim grid sum to dim².
	f := func(raw uint8) bool {
		dim := int(raw)%100 + 1
		sum := 0
		for d := 0; d < NumDiags(dim); d++ {
			sum += DiagLen(dim, d)
		}
		return sum == dim*dim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiagCellRoundTrip(t *testing.T) {
	// Property: every cell of diagonal d maps back to diagonal d and lies
	// in bounds.
	f := func(rawDim, rawD uint8) bool {
		dim := int(rawDim)%60 + 1
		d := int(rawD) % NumDiags(dim)
		g := New(dim, 0)
		for i := 0; i < DiagLen(dim, d); i++ {
			r, c := DiagCell(dim, d, i)
			if !g.InBounds(r, c) || DiagOf(r, c) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiagCellsDistinct(t *testing.T) {
	// Every cell must appear on exactly one diagonal at exactly one index.
	dim := 23
	seen := make(map[int]bool)
	for d := 0; d < NumDiags(dim); d++ {
		for i := 0; i < DiagLen(dim, d); i++ {
			r, c := DiagCell(dim, d, i)
			idx := r*dim + c
			if seen[idx] {
				t.Fatalf("cell (%d,%d) visited twice", r, c)
			}
			seen[idx] = true
		}
	}
	if len(seen) != dim*dim {
		t.Fatalf("visited %d cells, want %d", len(seen), dim*dim)
	}
}

func TestCellsUpToDiag(t *testing.T) {
	// Cross-check the closed form against direct summation.
	for _, dim := range []int{1, 2, 3, 7, 19, 64} {
		sum := 0
		for d := 0; d < NumDiags(dim); d++ {
			sum += DiagLen(dim, d)
			if got := CellsUpToDiag(dim, d); got != sum {
				t.Fatalf("CellsUpToDiag(%d,%d) = %d, want %d", dim, d, got, sum)
			}
		}
		if CellsUpToDiag(dim, -1) != 0 {
			t.Fatalf("CellsUpToDiag(%d,-1) != 0", dim)
		}
		if CellsUpToDiag(dim, NumDiags(dim)+5) != dim*dim {
			t.Fatalf("CellsUpToDiag past end must be dim²")
		}
	}
}

func TestCellsInDiagRange(t *testing.T) {
	dim := 10
	if got := CellsInDiagRange(dim, 0, NumDiags(dim)-1); got != 100 {
		t.Errorf("full range = %d, want 100", got)
	}
	if got := CellsInDiagRange(dim, 5, 4); got != 0 {
		t.Errorf("empty range = %d, want 0", got)
	}
	if got := CellsInDiagRange(dim, 9, 9); got != DiagLen(dim, 9) {
		t.Errorf("main diagonal = %d, want %d", got, DiagLen(dim, 9))
	}
}

func TestElemBytes(t *testing.T) {
	// The paper: dsize=5 means 8 + 5*8 = 48 bytes; dsize=1 means 16 bytes.
	if got := ElemBytes(5); got != 48 {
		t.Errorf("ElemBytes(5) = %d, want 48", got)
	}
	if got := ElemBytes(1); got != 16 {
		t.Errorf("ElemBytes(1) = %d, want 16", got)
	}
	if got := ElemBytes(0); got != 8 {
		t.Errorf("ElemBytes(0) = %d, want 8", got)
	}
}

func TestGridAccessors(t *testing.T) {
	g := New(5, 3)
	g.SetA(2, 3, 42)
	g.SetB(2, 3, -7)
	g.SetFloat(2, 3, 1, 3.5)
	if g.A(2, 3) != 42 || g.B(2, 3) != -7 || g.Float(2, 3, 1) != 3.5 {
		t.Error("accessor round trip failed")
	}
	if g.A(3, 2) != 0 {
		t.Error("unrelated cell modified")
	}
	if g.Dim() != 5 || g.DSize() != 3 || g.Cells() != 25 || g.ElemBytes() != 32 {
		t.Error("shape accessors wrong")
	}
}

func TestDiagViewOffsets(t *testing.T) {
	dim := 8
	v := NewDiagView(dim, 3, 10)
	// Offsets must be contiguous and total must equal the range cell count.
	want := CellsInDiagRange(dim, 3, 10)
	if v.Total() != want {
		t.Fatalf("Total = %d, want %d", v.Total(), want)
	}
	seen := make(map[int]bool)
	for d := 3; d <= 10; d++ {
		for i := 0; i < DiagLen(dim, d); i++ {
			off := v.Offset(d, i)
			if off < 0 || off >= v.Total() {
				t.Fatalf("offset %d out of range", off)
			}
			if seen[off] {
				t.Fatalf("offset %d reused", off)
			}
			seen[off] = true
		}
	}
	if len(seen) != want {
		t.Fatalf("covered %d offsets, want %d", len(seen), want)
	}
	if v.Bytes(1) != want*16 {
		t.Errorf("Bytes(1) = %d, want %d", v.Bytes(1), want*16)
	}
}

func TestDiagViewPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid range")
		}
	}()
	NewDiagView(4, 5, 2)
}

func TestCloneEqual(t *testing.T) {
	g := New(6, 2)
	g.SetA(1, 1, 9)
	g.SetFloat(5, 5, 1, 2.25)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.SetA(0, 0, 1)
	if g.Equal(c) {
		t.Fatal("mutating clone must not affect original equality")
	}
	if g.Equal(New(6, 1)) || g.Equal(New(7, 2)) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct{ dim, dsize int }{{0, 1}, {-3, 0}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", tc.dim, tc.dsize)
				}
			}()
			New(tc.dim, tc.dsize)
		}()
	}
}

package grid

import "testing"

// TestDiagFrontierMatchesClosedForm checks the dense frontier against the
// closed-form diagonal helpers it specializes.
func TestDiagFrontierMatchesClosedForm(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {4, 6}, {6, 4}, {7, 7}, {1, 9}, {9, 1}} {
		rows, cols := shape[0], shape[1]
		f := NewDiagFrontier(rows, cols)
		if f.Steps() != NumDiagsRect(rows, cols) {
			t.Errorf("%dx%d: Steps = %d, want %d", rows, cols, f.Steps(), NumDiagsRect(rows, cols))
		}
		if f.Cells() != rows*cols {
			t.Errorf("%dx%d: Cells = %d, want %d", rows, cols, f.Cells(), rows*cols)
		}
		d := 0
		for {
			step, ok := f.Next()
			if !ok {
				break
			}
			if len(step) != DiagLenRect(rows, cols, d) {
				t.Fatalf("%dx%d diag %d: len %d, want %d", rows, cols, d, len(step), DiagLenRect(rows, cols, d))
			}
			for i, c := range step {
				wr, wc := DiagCellRect(rows, cols, d, i)
				if c.R != wr || c.C != wc {
					t.Fatalf("%dx%d diag %d cell %d: got (%d,%d), want (%d,%d)", rows, cols, d, i, c.R, c.C, wr, wc)
				}
			}
			d++
		}
		if d != NumDiagsRect(rows, cols) {
			t.Errorf("%dx%d: delivered %d steps, want %d", rows, cols, d, NumDiagsRect(rows, cols))
		}
	}
}

// TestDiagRangeFrontierClamps checks range clamping and the DiagRange
// fast-path accessor.
func TestDiagRangeFrontierClamps(t *testing.T) {
	f := NewDiagRangeFrontier(4, 6, -3, 99)
	if lo, hi := f.DiagRange(); lo != 0 || hi != 8 {
		t.Errorf("DiagRange = [%d,%d], want [0,8]", lo, hi)
	}
	steps, cells := CountFrontier(f)
	if steps != 9 || cells != 24 {
		t.Errorf("full range: steps=%d cells=%d, want 9, 24", steps, cells)
	}
	empty := NewDiagRangeFrontier(4, 6, 5, 3)
	if s, c := CountFrontier(empty); s != 0 || c != 0 {
		t.Errorf("empty range delivered steps=%d cells=%d", s, c)
	}
	if empty.Steps() != 0 || empty.Cells() != 0 {
		t.Errorf("empty range Steps=%d Cells=%d", empty.Steps(), empty.Cells())
	}
}

// TestIrregularDenseEquivalence: on a full rectangle with the dense
// stencil, the irregular frontier's levels are exactly the anti-diagonals.
func TestIrregularDenseEquivalence(t *testing.T) {
	rows, cols := 5, 8
	f := NewIrregularFrontier(rows, cols, DenseStencil(), nil)
	if f.Cells() != rows*cols {
		t.Fatalf("Cells = %d, want %d", f.Cells(), rows*cols)
	}
	d := 0
	for {
		step, ok := f.Next()
		if !ok {
			break
		}
		if len(step) != DiagLenRect(rows, cols, d) {
			t.Fatalf("level %d has %d cells, want %d", d, len(step), DiagLenRect(rows, cols, d))
		}
		for _, c := range step {
			if c.R+c.C != d {
				t.Fatalf("level %d contains off-diagonal cell (%d,%d)", d, c.R, c.C)
			}
		}
		d++
	}
	if d != NumDiagsRect(rows, cols) {
		t.Errorf("levels = %d, want %d", d, NumDiagsRect(rows, cols))
	}
}

// TestIrregularMaskedTriangle: a triangular live region (the Nussinov
// shape) has exactly min-side levels and covers only the live cells.
func TestIrregularMaskedTriangle(t *testing.T) {
	n := 9
	live := func(r, c int) bool { return r+c >= n-1 }
	f := NewIrregularFrontier(n, n, DenseStencil(), live)
	want := n * (n + 1) / 2
	if f.Cells() != want {
		t.Fatalf("Cells = %d, want %d", f.Cells(), want)
	}
	steps, cells := CountFrontier(f)
	if cells != want {
		t.Errorf("delivered %d cells, want %d", cells, want)
	}
	// The triangle's boundary diagonal is entirely dependency-free, so
	// the levels are diagonals n-1 .. 2n-2: n of them.
	if steps != n {
		t.Errorf("steps = %d, want %d", steps, n)
	}
}

// TestIrregularEmptyAndSingle covers the degenerate regions: a fully
// masked grid delivers nothing; a single-cell grid delivers one step.
func TestIrregularEmptyAndSingle(t *testing.T) {
	f := NewIrregularFrontier(6, 6, DenseStencil(), func(r, c int) bool { return false })
	if f.Cells() != 0 {
		t.Errorf("masked-out Cells = %d", f.Cells())
	}
	if step, ok := f.Next(); ok || len(step) != 0 {
		t.Errorf("masked-out frontier delivered a step: %v", step)
	}

	one := NewIrregularFrontier(1, 1, DenseStencil(), nil)
	steps, cells := CountFrontier(one)
	if steps != 1 || cells != 1 {
		t.Errorf("1x1: steps=%d cells=%d, want 1, 1", steps, cells)
	}
}

// TestIrregularDeadEnd: a self-dependency leaves every live cell at
// in-degree >= 1, so the frontier exhausts without delivering its region
// — the condition executors must turn into an error.
func TestIrregularDeadEnd(t *testing.T) {
	f := NewIrregularFrontier(3, 3, Stencil{{0, 0}}, nil)
	steps, cells := CountFrontier(f)
	if cells == f.Cells() {
		t.Fatal("cyclic stencil should not cover the region")
	}
	if steps != 0 || cells != 0 {
		t.Errorf("self-dependent frontier delivered steps=%d cells=%d", steps, cells)
	}

	// Mutual west/east dependencies: every cell waits on a neighbour, so
	// no seed exists and nothing is ever released.
	cyc := NewIrregularFrontier(1, 4, Stencil{{0, -1}, {0, 1}}, nil)
	_, cells = CountFrontier(cyc)
	if cells >= cyc.Cells() {
		t.Errorf("cyclic stencil covered %d of %d cells", cells, cyc.Cells())
	}
}

// TestStencilCausal pins the causality predicate.
func TestStencilCausal(t *testing.T) {
	if !DenseStencil().Causal() {
		t.Error("dense stencil must be causal")
	}
	for _, s := range []Stencil{
		{},
		{{0, 0}},
		{{0, 1}},
		{{1, 0}},
		{{0, -1}, {1, 1}},
	} {
		if s.Causal() {
			t.Errorf("stencil %v wrongly reported causal", s)
		}
	}
	if !(Stencil{{-1, 2}, {0, -3}}).Causal() {
		t.Error("long causal offsets must be causal")
	}
}

// TestLiveCellsRect pins the counting helper.
func TestLiveCellsRect(t *testing.T) {
	if n := LiveCellsRect(4, 5, nil); n != 20 {
		t.Errorf("nil live = %d, want 20", n)
	}
	if n := LiveCellsRect(4, 5, func(r, c int) bool { return (r+c)%2 == 0 }); n != 10 {
		t.Errorf("checkerboard = %d, want 10", n)
	}
}

// Package grid provides the data substrate for 2D wavefront computations:
// a square array of cells, each holding two integer variables and a
// configurable number of floats (the paper's dsize), together with
// anti-diagonal indexing helpers that every other layer builds on.
//
// A wavefront sweeps a dim x dim array from (0,0) towards (dim-1,dim-1) in
// anti-diagonal bands: diagonal d contains all cells (r,c) with r+c == d.
// Cell (r,c) may depend on its west (r,c-1), north (r-1,c) and northwest
// (r-1,c-1) neighbours, all of which lie on diagonals d-1 and d-2, so the
// diagonals form a linear dependence chain while cells within one diagonal
// are independent — the data parallelism the paper exploits on GPUs.
package grid

import "fmt"

// Grid is a square wavefront array with structure-of-arrays storage:
// two int64 variables and DSize float64 values per cell, matching the
// paper's synthetic element of "two int variables and a varying number of
// floats". Storage is row-major; diagonal-major views are provided for
// GPU-style access.
type Grid struct {
	dim   int
	dsize int
	// IntA and IntB are the two integer variables of each cell.
	IntA []int64
	IntB []int64
	// Floats holds dsize consecutive float64 values per cell.
	Floats []float64
}

// New allocates a dim x dim grid whose cells carry dsize floats each.
// It panics if dim <= 0 or dsize < 0, as these are programming errors.
func New(dim, dsize int) *Grid {
	if dim <= 0 {
		panic(fmt.Sprintf("grid: dim must be positive, got %d", dim))
	}
	if dsize < 0 {
		panic(fmt.Sprintf("grid: dsize must be non-negative, got %d", dsize))
	}
	n := dim * dim
	g := &Grid{
		dim:   dim,
		dsize: dsize,
		IntA:  make([]int64, n),
		IntB:  make([]int64, n),
	}
	if dsize > 0 {
		g.Floats = make([]float64, n*dsize)
	}
	return g
}

// Dim returns the side length of the grid.
func (g *Grid) Dim() int { return g.dim }

// DSize returns the number of floats per cell.
func (g *Grid) DSize() int { return g.dsize }

// Cells returns the total number of cells, dim*dim.
func (g *Grid) Cells() int { return g.dim * g.dim }

// Index returns the row-major index of cell (r, c).
func (g *Grid) Index(r, c int) int { return r*g.dim + c }

// InBounds reports whether (r, c) lies inside the grid.
func (g *Grid) InBounds(r, c int) bool {
	return r >= 0 && r < g.dim && c >= 0 && c < g.dim
}

// Float returns the k-th float of cell (r, c).
func (g *Grid) Float(r, c, k int) float64 {
	return g.Floats[g.Index(r, c)*g.dsize+k]
}

// SetFloat sets the k-th float of cell (r, c).
func (g *Grid) SetFloat(r, c, k int, v float64) {
	g.Floats[g.Index(r, c)*g.dsize+k] = v
}

// A returns integer variable A of cell (r, c).
func (g *Grid) A(r, c int) int64 { return g.IntA[g.Index(r, c)] }

// B returns integer variable B of cell (r, c).
func (g *Grid) B(r, c int) int64 { return g.IntB[g.Index(r, c)] }

// SetA sets integer variable A of cell (r, c).
func (g *Grid) SetA(r, c int, v int64) { g.IntA[g.Index(r, c)] = v }

// SetB sets integer variable B of cell (r, c).
func (g *Grid) SetB(r, c int, v int64) { g.IntB[g.Index(r, c)] = v }

// ElemBytes returns the modeled size in bytes of one cell: 8 bytes for the
// two int variables plus 8 bytes per float, so dsize=5 gives the paper's
// 48-byte element and dsize=1 its 16-byte element.
func ElemBytes(dsize int) int { return 8 + 8*dsize }

// ElemBytes returns the modeled per-cell size of this grid.
func (g *Grid) ElemBytes() int { return ElemBytes(g.dsize) }

// NumDiags returns the number of anti-diagonals of a dim x dim grid.
func NumDiags(dim int) int { return 2*dim - 1 }

// DiagLen returns the number of cells on anti-diagonal d of a dim x dim
// grid. Lengths rise 1,2,...,dim at d = dim-1 and fall back to 1, the
// triangular parallelism profile of the paper's Figure 1(b).
func DiagLen(dim, d int) int {
	if d < 0 || d >= NumDiags(dim) {
		return 0
	}
	if d < dim {
		return d + 1
	}
	return 2*dim - 1 - d
}

// DiagStartRow returns the row of the first cell (smallest row index) on
// anti-diagonal d. Cells on diagonal d are (r, d-r) for
// r in [DiagStartRow, DiagStartRow+DiagLen).
func DiagStartRow(dim, d int) int {
	if d < dim {
		return 0
	}
	return d - dim + 1
}

// DiagCell returns the i-th cell (r, c) of anti-diagonal d, ordered by
// increasing row.
func DiagCell(dim, d, i int) (r, c int) {
	r = DiagStartRow(dim, d) + i
	return r, d - r
}

// DiagOf returns the anti-diagonal index of cell (r, c).
func DiagOf(r, c int) int { return r + c }

// CellsUpToDiag returns the number of cells on diagonals [0, d], i.e. the
// size of the leading region computed before diagonal d+1 starts.
func CellsUpToDiag(dim, d int) int {
	if d < 0 {
		return 0
	}
	last := NumDiags(dim) - 1
	if d >= last {
		return dim * dim
	}
	if d < dim {
		// Leading triangle: 1 + 2 + ... + (d+1).
		n := d + 1
		return n * (n + 1) / 2
	}
	// Total minus the trailing triangle strictly after d.
	m := last - d // number of diagonals after d
	return dim*dim - m*(m+1)/2
}

// CellsInDiagRange returns the number of cells on diagonals [lo, hi].
func CellsInDiagRange(dim, lo, hi int) int {
	if hi < lo {
		return 0
	}
	return CellsUpToDiag(dim, hi) - CellsUpToDiag(dim, lo-1)
}

// DiagView is a diagonal-major addressing scheme for a contiguous range of
// anti-diagonals, as used when staging a band of diagonals in GPU memory.
// Diagonals are laid out back to back, each ordered by increasing row.
type DiagView struct {
	Dim     int
	Lo, Hi  int   // inclusive diagonal range
	offsets []int // offsets[i] = cells before diagonal Lo+i
	total   int
}

// NewDiagView builds the diagonal-major layout for diagonals [lo, hi] of a
// dim-sized grid. It panics on an invalid range: layout construction with
// impossible bounds indicates a planner bug, not a runtime condition.
func NewDiagView(dim, lo, hi int) *DiagView {
	if lo < 0 || hi >= NumDiags(dim) || hi < lo {
		panic(fmt.Sprintf("grid: invalid diagonal range [%d,%d] for dim %d", lo, hi, dim))
	}
	v := &DiagView{Dim: dim, Lo: lo, Hi: hi}
	v.offsets = make([]int, hi-lo+2)
	sum := 0
	for d := lo; d <= hi; d++ {
		v.offsets[d-lo] = sum
		sum += DiagLen(dim, d)
	}
	v.offsets[hi-lo+1] = sum
	v.total = sum
	return v
}

// Total returns the number of cells covered by the view.
func (v *DiagView) Total() int { return v.total }

// Offset returns the linear offset of the i-th cell of diagonal d within
// the view's packed layout.
func (v *DiagView) Offset(d, i int) int {
	return v.offsets[d-v.Lo] + i
}

// DiagOffset returns the linear offset at which diagonal d starts.
func (v *DiagView) DiagOffset(d int) int { return v.offsets[d-v.Lo] }

// Bytes returns the modeled byte size of the packed view for elements of
// the given dsize.
func (v *DiagView) Bytes(dsize int) int { return v.total * ElemBytes(dsize) }

// Clone returns a deep copy of the grid, used to compare executor outputs
// against the serial reference.
func (g *Grid) Clone() *Grid {
	c := &Grid{
		dim:   g.dim,
		dsize: g.dsize,
		IntA:  append([]int64(nil), g.IntA...),
		IntB:  append([]int64(nil), g.IntB...),
	}
	if g.Floats != nil {
		c.Floats = append([]float64(nil), g.Floats...)
	}
	return c
}

// Equal reports whether two grids have identical shape and contents.
func (g *Grid) Equal(o *Grid) bool {
	if g.dim != o.dim || g.dsize != o.dsize {
		return false
	}
	for i := range g.IntA {
		if g.IntA[i] != o.IntA[i] || g.IntB[i] != o.IntB[i] {
			return false
		}
	}
	for i := range g.Floats {
		if g.Floats[i] != o.Floats[i] {
			return false
		}
	}
	return true
}

// Package grid provides the data substrate for 2D wavefront computations:
// a rectangular array of cells, each holding two integer variables and a
// configurable number of floats (the paper's dsize), together with
// anti-diagonal indexing helpers that every other layer builds on.
//
// A wavefront sweeps a rows x cols array from (0,0) towards
// (rows-1,cols-1) in anti-diagonal bands: diagonal d contains all cells
// (r,c) with r+c == d. Cell (r,c) may depend on its west (r,c-1), north
// (r-1,c) and northwest (r-1,c-1) neighbours, all of which lie on
// diagonals d-1 and d-2, so the diagonals form a linear dependence chain
// while cells within one diagonal are independent — the data parallelism
// the paper exploits on GPUs.
//
// The paper's experiments use square dim x dim arrays, and the square API
// (New, NumDiags, DiagLen, ...) remains the convenient spelling for them.
// Rectangular grids — e.g. aligning two sequences of unequal length — use
// NewRect and the *Rect helpers; a rows x cols grid has rows+cols-1
// anti-diagonals whose lengths rise 1,2,...,min(rows,cols), plateau, and
// fall back to 1 (a clipped version of the square triangular profile).
package grid

import "fmt"

// Grid is a rectangular wavefront array with structure-of-arrays storage:
// two int64 variables and DSize float64 values per cell, matching the
// paper's synthetic element of "two int variables and a varying number of
// floats". Storage is row-major; diagonal-major views are provided for
// GPU-style access.
type Grid struct {
	rows  int
	cols  int
	dsize int
	// IntA and IntB are the two integer variables of each cell.
	IntA []int64
	IntB []int64
	// Floats holds dsize consecutive float64 values per cell.
	Floats []float64
}

// New allocates a square dim x dim grid whose cells carry dsize floats
// each. It panics if dim <= 0 or dsize < 0, as these are programming
// errors.
func New(dim, dsize int) *Grid { return NewRect(dim, dim, dsize) }

// NewRect allocates a rows x cols grid whose cells carry dsize floats
// each. It panics if rows <= 0, cols <= 0 or dsize < 0, as these are
// programming errors.
func NewRect(rows, cols, dsize int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: shape must be positive, got %dx%d", rows, cols))
	}
	if dsize < 0 {
		panic(fmt.Sprintf("grid: dsize must be non-negative, got %d", dsize))
	}
	n := rows * cols
	g := &Grid{
		rows:  rows,
		cols:  cols,
		dsize: dsize,
		IntA:  make([]int64, n),
		IntB:  make([]int64, n),
	}
	if dsize > 0 {
		g.Floats = make([]float64, n*dsize)
	}
	return g
}

// Dim returns the side length of a square grid (its row count). It is the
// square-grid shorthand; rectangular callers use Rows and Cols.
func (g *Grid) Dim() int { return g.rows }

// Rows returns the number of rows of the grid.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of columns of the grid.
func (g *Grid) Cols() int { return g.cols }

// Square reports whether the grid has equal side lengths.
func (g *Grid) Square() bool { return g.rows == g.cols }

// DSize returns the number of floats per cell.
func (g *Grid) DSize() int { return g.dsize }

// Cells returns the total number of cells, rows*cols.
func (g *Grid) Cells() int { return g.rows * g.cols }

// NumDiags returns the number of anti-diagonals of the grid.
func (g *Grid) NumDiags() int { return NumDiagsRect(g.rows, g.cols) }

// Index returns the row-major index of cell (r, c).
func (g *Grid) Index(r, c int) int { return r*g.cols + c }

// InBounds reports whether (r, c) lies inside the grid.
func (g *Grid) InBounds(r, c int) bool {
	return r >= 0 && r < g.rows && c >= 0 && c < g.cols
}

// Float returns the k-th float of cell (r, c).
func (g *Grid) Float(r, c, k int) float64 {
	return g.Floats[g.Index(r, c)*g.dsize+k]
}

// SetFloat sets the k-th float of cell (r, c).
func (g *Grid) SetFloat(r, c, k int, v float64) {
	g.Floats[g.Index(r, c)*g.dsize+k] = v
}

// A returns integer variable A of cell (r, c).
func (g *Grid) A(r, c int) int64 { return g.IntA[g.Index(r, c)] }

// B returns integer variable B of cell (r, c).
func (g *Grid) B(r, c int) int64 { return g.IntB[g.Index(r, c)] }

// SetA sets integer variable A of cell (r, c).
func (g *Grid) SetA(r, c int, v int64) { g.IntA[g.Index(r, c)] = v }

// SetB sets integer variable B of cell (r, c).
func (g *Grid) SetB(r, c int, v int64) { g.IntB[g.Index(r, c)] = v }

// ElemBytes returns the modeled size in bytes of one cell: 8 bytes for the
// two int variables plus 8 bytes per float, so dsize=5 gives the paper's
// 48-byte element and dsize=1 its 16-byte element.
func ElemBytes(dsize int) int { return 8 + 8*dsize }

// ElemBytes returns the modeled per-cell size of this grid.
func (g *Grid) ElemBytes() int { return ElemBytes(g.dsize) }

// NumDiags returns the number of anti-diagonals of a dim x dim grid.
func NumDiags(dim int) int { return NumDiagsRect(dim, dim) }

// NumDiagsRect returns the number of anti-diagonals of a rows x cols grid,
// rows+cols-1.
func NumDiagsRect(rows, cols int) int { return rows + cols - 1 }

// DiagLen returns the number of cells on anti-diagonal d of a dim x dim
// grid. Lengths rise 1,2,...,dim at d = dim-1 and fall back to 1, the
// triangular parallelism profile of the paper's Figure 1(b).
func DiagLen(dim, d int) int { return DiagLenRect(dim, dim, d) }

// DiagLenRect returns the number of cells on anti-diagonal d of a
// rows x cols grid: the diagonal is clipped to the rectangle, so lengths
// rise 1,2,...,min(rows,cols), stay there across the plateau, and fall
// back to 1 (the trapezoidal parallelism profile of a rectangular
// wavefront).
func DiagLenRect(rows, cols, d int) int {
	if d < 0 || d > rows+cols-2 {
		return 0
	}
	lo := d - cols + 1
	if lo < 0 {
		lo = 0
	}
	hi := d
	if hi > rows-1 {
		hi = rows - 1
	}
	return hi - lo + 1
}

// DiagStartRow returns the row of the first cell (smallest row index) on
// anti-diagonal d of a dim x dim grid. Cells on diagonal d are (r, d-r)
// for r in [DiagStartRow, DiagStartRow+DiagLen).
func DiagStartRow(dim, d int) int { return DiagStartRowRect(dim, dim, d) }

// DiagStartRowRect returns the row of the first cell on anti-diagonal d of
// a rows x cols grid.
func DiagStartRowRect(rows, cols, d int) int {
	if d < cols {
		return 0
	}
	return d - cols + 1
}

// DiagCell returns the i-th cell (r, c) of anti-diagonal d of a dim x dim
// grid, ordered by increasing row.
func DiagCell(dim, d, i int) (r, c int) { return DiagCellRect(dim, dim, d, i) }

// DiagCellRect returns the i-th cell (r, c) of anti-diagonal d of a
// rows x cols grid, ordered by increasing row.
func DiagCellRect(rows, cols, d, i int) (r, c int) {
	r = DiagStartRowRect(rows, cols, d) + i
	return r, d - r
}

// DiagOf returns the anti-diagonal index of cell (r, c).
func DiagOf(r, c int) int { return r + c }

// CellsUpToDiag returns the number of cells of a dim x dim grid on
// diagonals [0, d], i.e. the size of the leading region computed before
// diagonal d+1 starts.
func CellsUpToDiag(dim, d int) int { return CellsUpToDiagRect(dim, dim, d) }

// CellsUpToDiagRect returns the number of cells of a rows x cols grid on
// diagonals [0, d], in closed form: a leading triangle while lengths rise,
// a linear plateau of width min(rows,cols), and the total minus the
// trailing triangle once lengths fall.
func CellsUpToDiagRect(rows, cols, d int) int {
	if d < 0 {
		return 0
	}
	last := NumDiagsRect(rows, cols) - 1
	if d >= last {
		return rows * cols
	}
	m := rows
	if cols < m {
		m = cols
	}
	if d < m {
		// Leading triangle: 1 + 2 + ... + (d+1).
		n := d + 1
		return n * (n + 1) / 2
	}
	if t := last - d; t < m {
		// Total minus the trailing triangle strictly after d.
		return rows*cols - t*(t+1)/2
	}
	// Plateau: full leading triangle plus (d-m+1) diagonals of length m.
	return m*(m+1)/2 + (d-m+1)*m
}

// CellsInDiagRange returns the number of cells of a dim x dim grid on
// diagonals [lo, hi].
func CellsInDiagRange(dim, lo, hi int) int {
	return CellsInDiagRangeRect(dim, dim, lo, hi)
}

// CellsInDiagRangeRect returns the number of cells of a rows x cols grid
// on diagonals [lo, hi].
func CellsInDiagRangeRect(rows, cols, lo, hi int) int {
	if hi < lo {
		return 0
	}
	return CellsUpToDiagRect(rows, cols, hi) - CellsUpToDiagRect(rows, cols, lo-1)
}

// DiagView is a diagonal-major addressing scheme for a contiguous range of
// anti-diagonals, as used when staging a band of diagonals in GPU memory.
// Diagonals are laid out back to back, each ordered by increasing row.
type DiagView struct {
	Rows, Cols int
	Lo, Hi     int   // inclusive diagonal range
	offsets    []int // offsets[i] = cells before diagonal Lo+i
	total      int
}

// NewDiagView builds the diagonal-major layout for diagonals [lo, hi] of a
// square dim-sized grid. It panics on an invalid range: layout
// construction with impossible bounds indicates a planner bug, not a
// runtime condition.
func NewDiagView(dim, lo, hi int) *DiagView { return NewDiagViewRect(dim, dim, lo, hi) }

// NewDiagViewRect builds the diagonal-major layout for diagonals [lo, hi]
// of a rows x cols grid. It panics on an invalid range.
func NewDiagViewRect(rows, cols, lo, hi int) *DiagView {
	if lo < 0 || hi >= NumDiagsRect(rows, cols) || hi < lo {
		panic(fmt.Sprintf("grid: invalid diagonal range [%d,%d] for shape %dx%d",
			lo, hi, rows, cols))
	}
	v := &DiagView{Rows: rows, Cols: cols, Lo: lo, Hi: hi}
	v.offsets = make([]int, hi-lo+2)
	sum := 0
	for d := lo; d <= hi; d++ {
		v.offsets[d-lo] = sum
		sum += DiagLenRect(rows, cols, d)
	}
	v.offsets[hi-lo+1] = sum
	v.total = sum
	return v
}

// Total returns the number of cells covered by the view.
func (v *DiagView) Total() int { return v.total }

// Offset returns the linear offset of the i-th cell of diagonal d within
// the view's packed layout.
func (v *DiagView) Offset(d, i int) int {
	return v.offsets[d-v.Lo] + i
}

// DiagOffset returns the linear offset at which diagonal d starts.
func (v *DiagView) DiagOffset(d int) int { return v.offsets[d-v.Lo] }

// Bytes returns the modeled byte size of the packed view for elements of
// the given dsize.
func (v *DiagView) Bytes(dsize int) int { return v.total * ElemBytes(dsize) }

// Clone returns a deep copy of the grid, used to compare executor outputs
// against the serial reference.
func (g *Grid) Clone() *Grid {
	c := &Grid{
		rows:  g.rows,
		cols:  g.cols,
		dsize: g.dsize,
		IntA:  append([]int64(nil), g.IntA...),
		IntB:  append([]int64(nil), g.IntB...),
	}
	if g.Floats != nil {
		c.Floats = append([]float64(nil), g.Floats...)
	}
	return c
}

// Equal reports whether two grids have identical shape and contents.
func (g *Grid) Equal(o *Grid) bool {
	if g.rows != o.rows || g.cols != o.cols || g.dsize != o.dsize {
		return false
	}
	for i := range g.IntA {
		if g.IntA[i] != o.IntA[i] || g.IntB[i] != o.IntB[i] {
			return false
		}
	}
	for i := range g.Floats {
		if g.Floats[i] != o.Floats[i] {
			return false
		}
	}
	return true
}

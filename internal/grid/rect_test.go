package grid

import (
	"testing"
	"testing/quick"
)

func TestDiagLenRectFigure1(t *testing.T) {
	// The paper's Figure 1 example is a 4x6 grid: lengths rise to
	// min(rows,cols)=4, plateau, and fall back to 1.
	want := []int{1, 2, 3, 4, 4, 4, 3, 2, 1}
	if got := NumDiagsRect(4, 6); got != len(want) {
		t.Fatalf("NumDiagsRect(4,6) = %d, want %d", got, len(want))
	}
	for d, w := range want {
		if got := DiagLenRect(4, 6, d); got != w {
			t.Errorf("DiagLenRect(4,6,%d) = %d, want %d", d, got, w)
		}
	}
	if DiagLenRect(4, 6, -1) != 0 || DiagLenRect(4, 6, 9) != 0 {
		t.Error("out-of-range diagonals must have length 0")
	}
}

func TestRectDiagLensSumToCells(t *testing.T) {
	// Property: the diagonal lengths of a rows x cols grid sum to
	// rows*cols, in both orientations.
	f := func(rawR, rawC uint8) bool {
		rows := int(rawR)%70 + 1
		cols := int(rawC)%70 + 1
		sum := 0
		for d := 0; d < NumDiagsRect(rows, cols); d++ {
			sum += DiagLenRect(rows, cols, d)
		}
		return sum == rows*cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellsUpToDiagRectClosedForm(t *testing.T) {
	// Cross-check the closed form against direct summation for tall,
	// wide and degenerate shapes.
	for _, shape := range [][2]int{{1, 1}, {1, 9}, {9, 1}, {3, 8}, {8, 3}, {7, 7}, {19, 64}, {64, 19}} {
		rows, cols := shape[0], shape[1]
		sum := 0
		for d := 0; d < NumDiagsRect(rows, cols); d++ {
			sum += DiagLenRect(rows, cols, d)
			if got := CellsUpToDiagRect(rows, cols, d); got != sum {
				t.Fatalf("CellsUpToDiagRect(%d,%d,%d) = %d, want %d", rows, cols, d, got, sum)
			}
		}
		if CellsUpToDiagRect(rows, cols, -1) != 0 {
			t.Fatalf("CellsUpToDiagRect(%d,%d,-1) != 0", rows, cols)
		}
		if CellsUpToDiagRect(rows, cols, NumDiagsRect(rows, cols)+3) != rows*cols {
			t.Fatalf("CellsUpToDiagRect past end must be rows*cols")
		}
	}
}

func TestRectDiagCellRoundTrip(t *testing.T) {
	// Property: every cell of diagonal d maps back to diagonal d and lies
	// in bounds.
	f := func(rawR, rawC, rawD uint8) bool {
		rows := int(rawR)%40 + 1
		cols := int(rawC)%40 + 1
		d := int(rawD) % NumDiagsRect(rows, cols)
		g := NewRect(rows, cols, 0)
		for i := 0; i < DiagLenRect(rows, cols, d); i++ {
			r, c := DiagCellRect(rows, cols, d, i)
			if !g.InBounds(r, c) || DiagOf(r, c) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectDiagCellsDistinct(t *testing.T) {
	// Every cell of a rectangular grid appears on exactly one diagonal at
	// exactly one index.
	rows, cols := 13, 29
	seen := make(map[int]bool)
	for d := 0; d < NumDiagsRect(rows, cols); d++ {
		for i := 0; i < DiagLenRect(rows, cols, d); i++ {
			r, c := DiagCellRect(rows, cols, d, i)
			idx := r*cols + c
			if seen[idx] {
				t.Fatalf("cell (%d,%d) visited twice", r, c)
			}
			seen[idx] = true
		}
	}
	if len(seen) != rows*cols {
		t.Fatalf("visited %d cells, want %d", len(seen), rows*cols)
	}
}

func TestNewRectAccessors(t *testing.T) {
	g := NewRect(3, 7, 2)
	if g.Rows() != 3 || g.Cols() != 7 || g.Cells() != 21 || g.Square() {
		t.Error("rect shape accessors wrong")
	}
	if g.NumDiags() != 9 {
		t.Errorf("NumDiags = %d, want 9", g.NumDiags())
	}
	g.SetA(2, 6, 5)
	g.SetFloat(0, 6, 1, 1.5)
	if g.A(2, 6) != 5 || g.Float(0, 6, 1) != 1.5 {
		t.Error("rect accessor round trip failed")
	}
	if g.InBounds(3, 0) || g.InBounds(0, 7) || !g.InBounds(2, 6) {
		t.Error("InBounds wrong on rect grid")
	}
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("rect clone not equal")
	}
	if g.Equal(NewRect(7, 3, 2)) {
		t.Error("transposed shapes must not be equal")
	}
}

func TestSquareHelpersDelegateToRect(t *testing.T) {
	// The square spellings are exactly the rows == cols case.
	for dim := 1; dim <= 12; dim++ {
		if NumDiags(dim) != NumDiagsRect(dim, dim) {
			t.Fatalf("NumDiags(%d) mismatch", dim)
		}
		for d := -1; d <= NumDiags(dim); d++ {
			if DiagLen(dim, d) != DiagLenRect(dim, dim, d) {
				t.Fatalf("DiagLen(%d,%d) mismatch", dim, d)
			}
			if CellsUpToDiag(dim, d) != CellsUpToDiagRect(dim, dim, d) {
				t.Fatalf("CellsUpToDiag(%d,%d) mismatch", dim, d)
			}
		}
	}
}

func TestRectDiagViewOffsets(t *testing.T) {
	rows, cols := 6, 11
	v := NewDiagViewRect(rows, cols, 4, 12)
	want := CellsInDiagRangeRect(rows, cols, 4, 12)
	if v.Total() != want {
		t.Fatalf("Total = %d, want %d", v.Total(), want)
	}
	seen := make(map[int]bool)
	for d := 4; d <= 12; d++ {
		for i := 0; i < DiagLenRect(rows, cols, d); i++ {
			off := v.Offset(d, i)
			if off < 0 || off >= v.Total() || seen[off] {
				t.Fatalf("bad or reused offset %d", off)
			}
			seen[off] = true
		}
	}
	if len(seen) != want {
		t.Fatalf("covered %d offsets, want %d", len(seen), want)
	}
}

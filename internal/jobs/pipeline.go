package jobs

// Wave-DAG job pipelines: real workloads chain wavefront sweeps — align
// a query against N references, then fold the best hits — so the
// manager groups job specs into ordered waves. Jobs within a wave run
// in parallel through the ordinary worker pool; wave N+1 is admitted
// only after wave N resolves at a sequential barrier, under a per-wave
// failure policy (abort / continue / retry-budget). The pipeline
// lifecycle is an explicit, exhaustively tested state machine
// (PipelineTransition): queued → wave-running ⇄ wave-barrier →
// succeeded/failed/canceled.

import (
	"errors"
	"fmt"
	"time"
)

// FailurePolicy decides how a wave resolves when some of its jobs do
// not succeed.
type FailurePolicy int

const (
	// PolicyAbort (the default) fails the wave — and the pipeline — on
	// the first non-succeeded job; later waves are skipped.
	PolicyAbort FailurePolicy = iota
	// PolicyContinue resolves the wave regardless of job outcomes; the
	// failure count is recorded and the next wave is admitted.
	PolicyContinue
	// PolicyRetry resubmits failed jobs until the wave's retry budget is
	// exhausted, then aborts like PolicyAbort.
	PolicyRetry
	numFailurePolicies
)

// String implements fmt.Stringer.
func (p FailurePolicy) String() string {
	switch p {
	case PolicyAbort:
		return "abort"
	case PolicyContinue:
		return "continue"
	case PolicyRetry:
		return "retry"
	}
	return "policy(?)"
}

// ParseFailurePolicy inverts String; the empty string selects
// PolicyAbort.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "", "abort":
		return PolicyAbort, nil
	case "continue":
		return PolicyContinue, nil
	case "retry":
		return PolicyRetry, nil
	}
	return PolicyAbort, errors.New("jobs: unknown failure policy " + s + " (want abort, continue or retry)")
}

// PipelineJob is one job of a wave: an ordinary Spec plus a name that
// is unique across the pipeline.
type PipelineJob struct {
	// Name identifies the job within the pipeline; empty defaults to
	// "w<wave>.j<index>". Duplicates are rejected.
	Name string
	// Spec is the job submission, exactly as for Submit.
	Spec Spec
}

// WaveSpec is one wave of a pipeline: jobs that run in parallel between
// two sequential barriers.
type WaveSpec struct {
	// Name identifies the wave; empty defaults to "wave-<index>".
	// Duplicates are rejected.
	Name string
	// After names waves this one depends on. Waves execute in
	// declaration order, so every dependency must resolve strictly
	// earlier: a reference to the wave itself, a later wave or an
	// unknown name is a cycle (or an impossible ordering) and is
	// rejected at validation.
	After []string
	// Policy decides how the wave resolves when jobs fail; the zero
	// value is PolicyAbort.
	Policy FailurePolicy
	// RetryBudget caps resubmissions of failed jobs for PolicyRetry
	// (total across the wave, not per job). It must be zero for the
	// other policies and positive for PolicyRetry.
	RetryBudget int
	// Jobs are the wave's parallel submissions (at least one; at most
	// the manager's queue depth, so a single wave can always fit the
	// queue).
	Jobs []PipelineJob
}

// PipelineSpec describes a submitted pipeline: ordered waves of job
// specs.
type PipelineSpec struct {
	// Name labels the pipeline (informational; shows up in logs and
	// snapshots).
	Name string
	// Waves execute sequentially in declaration order.
	Waves []WaveSpec
	// RequestID carries the HTTP request ID that submitted the
	// pipeline; it is stamped onto every wave job spec that does not
	// already carry its own, so each executed job links back to the
	// originating request. Informational; may be empty.
	RequestID string
}

// MaxPipelineWaves bounds the waves of one pipeline; a longer chain is
// almost certainly a generation bug, and each wave costs a barrier.
const MaxPipelineWaves = 64

// PipelineState is a pipeline's lifecycle state.
type PipelineState int

const (
	// PipeQueued: admitted, no wave started yet.
	PipeQueued PipelineState = iota
	// PipeWaveRunning: the current wave's jobs are queued or running.
	PipeWaveRunning
	// PipeWaveBarrier: the current wave resolved; the next wave (or
	// completion) is pending.
	PipeWaveBarrier
	// PipeSucceeded: every wave resolved.
	PipeSucceeded
	// PipeFailed: a wave failed under its policy.
	PipeFailed
	// PipeCanceled: canceled before completion (explicitly, or by an
	// aborted shutdown drain).
	PipeCanceled
	numPipelineStates
)

// String implements fmt.Stringer.
func (s PipelineState) String() string {
	switch s {
	case PipeQueued:
		return "queued"
	case PipeWaveRunning:
		return "wave-running"
	case PipeWaveBarrier:
		return "wave-barrier"
	case PipeSucceeded:
		return "succeeded"
	case PipeFailed:
		return "failed"
	case PipeCanceled:
		return "canceled"
	}
	return "state(?)"
}

// Finished reports whether the state is terminal.
func (s PipelineState) Finished() bool {
	return s == PipeSucceeded || s == PipeFailed || s == PipeCanceled
}

// ParsePipelineState inverts PipelineState.String (for list filters).
func ParsePipelineState(s string) (PipelineState, error) {
	for st := PipeQueued; st < numPipelineStates; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, errors.New("jobs: unknown pipeline state " + s)
}

// PipelineEvent drives the pipeline state machine.
type PipelineEvent int

const (
	// PipeEvAdmit admits the next wave (from queued or a barrier).
	PipeEvAdmit PipelineEvent = iota
	// PipeEvWaveResolved reports the running wave resolved under its
	// policy.
	PipeEvWaveResolved
	// PipeEvWaveFailed reports the running wave failed under its policy.
	PipeEvWaveFailed
	// PipeEvFinish completes the pipeline once the last barrier has no
	// wave left to admit.
	PipeEvFinish
	// PipeEvCancel cancels the pipeline from any non-terminal state.
	PipeEvCancel
	numPipelineEvents
)

// String implements fmt.Stringer.
func (e PipelineEvent) String() string {
	switch e {
	case PipeEvAdmit:
		return "admit"
	case PipeEvWaveResolved:
		return "wave-resolved"
	case PipeEvWaveFailed:
		return "wave-failed"
	case PipeEvFinish:
		return "finish"
	case PipeEvCancel:
		return "cancel"
	}
	return "event(?)"
}

// PipelineTransition is the pipeline lifecycle state machine as a pure
// function: it returns the state after applying e in s and whether the
// transition is legal. Illegal transitions leave the state unchanged.
// Terminal states accept no event — terminal is terminal.
//
//	queued       --admit-->         wave-running
//	wave-running --wave-resolved--> wave-barrier
//	wave-running --wave-failed-->   failed
//	wave-barrier --admit-->         wave-running
//	wave-barrier --finish-->        succeeded
//	(any non-terminal) --cancel-->  canceled
func PipelineTransition(s PipelineState, e PipelineEvent) (PipelineState, bool) {
	switch e {
	case PipeEvAdmit:
		if s == PipeQueued || s == PipeWaveBarrier {
			return PipeWaveRunning, true
		}
	case PipeEvWaveResolved:
		if s == PipeWaveRunning {
			return PipeWaveBarrier, true
		}
	case PipeEvWaveFailed:
		if s == PipeWaveRunning {
			return PipeFailed, true
		}
	case PipeEvFinish:
		if s == PipeWaveBarrier {
			return PipeSucceeded, true
		}
	case PipeEvCancel:
		if !s.Finished() {
			return PipeCanceled, true
		}
	}
	return s, false
}

// WaveState is one wave's lifecycle within a pipeline snapshot.
type WaveState int

const (
	// WavePending: not yet admitted.
	WavePending WaveState = iota
	// WaveRunning: admitted; jobs queued or running.
	WaveRunning
	// WaveResolved: every job accounted for and the policy satisfied.
	WaveResolved
	// WaveFailed: the policy declared the wave failed.
	WaveFailed
	// WaveCanceled: the pipeline was canceled while this wave ran.
	WaveCanceled
	// WaveSkipped: the pipeline ended before this wave was admitted.
	WaveSkipped
)

// String implements fmt.Stringer.
func (s WaveState) String() string {
	switch s {
	case WavePending:
		return "pending"
	case WaveRunning:
		return "running"
	case WaveResolved:
		return "resolved"
	case WaveFailed:
		return "failed"
	case WaveCanceled:
		return "canceled"
	case WaveSkipped:
		return "skipped"
	}
	return "wave(?)"
}

// PipelineWave is the immutable snapshot of one wave's record.
type PipelineWave struct {
	// Name is the (defaulted) wave name from the spec.
	Name string
	// State is the wave's lifecycle state.
	State WaveState
	// Policy and RetryBudget echo the spec; RetriesUsed counts
	// resubmissions actually spent.
	Policy      FailurePolicy
	RetryBudget int
	RetriesUsed int
	// JobIDs lists every attempt submitted for this wave in submission
	// order (original jobs first, then retry rounds); each ID is an
	// ordinary job record retrievable via Get.
	JobIDs []string
	// Failed counts the attempts that ended non-succeeded when the wave
	// resolved (only PolicyContinue resolves with Failed > 0).
	Failed int
}

// Pipeline is an immutable snapshot of one pipeline record.
type Pipeline struct {
	ID string
	// Name echoes the spec's label.
	Name string
	// State is the lifecycle state; Wave the index of the current (or
	// last admitted) wave.
	State PipelineState
	Wave  int
	// CancelRequested is set once CancelPipeline was called; the
	// pipeline stays in its current state until the driver observes the
	// cancellation.
	CancelRequested bool
	// Err holds the failure message for PipeFailed pipelines.
	Err string
	// Created, Started and Finished stamp the lifecycle transitions
	// (zero until reached); Started is the admission of the first wave.
	Created, Started, Finished time.Time
	// Waves are the per-wave records, one per spec wave.
	Waves []PipelineWave
	// RequestID echoes the spec's originating HTTP request ID (may be
	// empty).
	RequestID string
}

// PipelineFilter selects pipelines in ListPipelines.
type PipelineFilter struct {
	// State, when non-nil, keeps only pipelines in that state.
	State *PipelineState
}

// PipelineStats is a snapshot of the manager's pipeline counters,
// merged into the daemon's GET /v1/stats.
type PipelineStats struct {
	// Submitted counts admitted pipelines; Rejected counts
	// admission-control rejections (too many active pipelines).
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	// Succeeded/Failed/Canceled count terminal outcomes.
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// WavesResolved counts waves that passed their barrier; JobRetries
	// counts failed-job resubmissions spent by retry policies.
	WavesResolved uint64 `json:"waves_resolved"`
	JobRetries    uint64 `json:"job_retries"`
	// Active is the instantaneous non-terminal pipeline count;
	// MaxActive the configured admission bound.
	Active    int `json:"active"`
	MaxActive int `json:"max_active"`
}

// validatePipeline checks spec against the manager's configuration and
// returns a normalized deep copy: wave and job names defaulted, every
// instance validated and normalized, app-parameter maps detached from
// the caller. Every defect answers an error (the HTTP layer maps them
// to 400) — a malformed spec must never reach the queue.
func (m *Manager) validatePipeline(spec PipelineSpec) (PipelineSpec, error) {
	if len(spec.Waves) == 0 {
		return spec, fmt.Errorf("jobs: pipeline needs at least one wave")
	}
	if len(spec.Waves) > MaxPipelineWaves {
		return spec, fmt.Errorf("jobs: pipeline has %d waves; the limit is %d", len(spec.Waves), MaxPipelineWaves)
	}
	norm := PipelineSpec{Name: spec.Name, RequestID: spec.RequestID, Waves: make([]WaveSpec, len(spec.Waves))}
	waveIdx := make(map[string]int, len(spec.Waves))
	jobNames := make(map[string]string, 8)
	for wi, w := range spec.Waves {
		nw := w
		if nw.Name == "" {
			nw.Name = fmt.Sprintf("wave-%d", wi)
		}
		if prev, dup := waveIdx[nw.Name]; dup {
			return spec, fmt.Errorf("jobs: duplicate wave name %q (waves %d and %d)", nw.Name, prev, wi)
		}
		waveIdx[nw.Name] = wi
		if nw.Policy < 0 || nw.Policy >= numFailurePolicies {
			return spec, fmt.Errorf("jobs: wave %q: invalid failure policy %d", nw.Name, nw.Policy)
		}
		switch {
		case nw.RetryBudget < 0:
			return spec, fmt.Errorf("jobs: wave %q: negative retry budget", nw.Name)
		case nw.Policy == PolicyRetry && nw.RetryBudget == 0:
			return spec, fmt.Errorf("jobs: wave %q: retry policy needs a positive retry budget", nw.Name)
		case nw.Policy != PolicyRetry && nw.RetryBudget != 0:
			return spec, fmt.Errorf("jobs: wave %q: retry budget requires the retry policy", nw.Name)
		}
		// Waves run in declaration order, so a dependency satisfied by
		// that order must name a strictly earlier wave: a self, forward
		// or unknown reference can never resolve first — a cycle.
		nw.After = append([]string(nil), w.After...)
		for _, dep := range nw.After {
			di, known := waveIdx[dep]
			if !known || di >= wi {
				return spec, fmt.Errorf("jobs: wave %q: dependency %q does not name an earlier wave (cycle or unknown wave)", nw.Name, dep)
			}
		}
		if len(nw.Jobs) == 0 {
			return spec, fmt.Errorf("jobs: wave %q has no jobs", nw.Name)
		}
		if len(nw.Jobs) > m.cfg.QueueDepth {
			return spec, fmt.Errorf("jobs: wave %q has %d jobs; the queue depth is %d, so the wave can never be admitted whole",
				nw.Name, len(nw.Jobs), m.cfg.QueueDepth)
		}
		nw.Jobs = append([]PipelineJob(nil), w.Jobs...)
		for ji := range nw.Jobs {
			pj := &nw.Jobs[ji]
			if pj.Name == "" {
				pj.Name = fmt.Sprintf("w%d.j%d", wi, ji)
			}
			if prev, dup := jobNames[pj.Name]; dup {
				return spec, fmt.Errorf("jobs: duplicate job name %q (waves %q and %q)", pj.Name, prev, nw.Name)
			}
			jobNames[pj.Name] = nw.Name
			if _, ok := m.systems[pj.Spec.System]; !ok {
				return spec, fmt.Errorf("jobs: job %q: unknown system %q", pj.Name, pj.Spec.System)
			}
			if err := pj.Spec.Inst.Validate(); err != nil {
				return spec, fmt.Errorf("jobs: job %q: %w", pj.Name, err)
			}
			pj.Spec.Inst = pj.Spec.Inst.Normalize()
			if pj.Spec.Priority < 0 || pj.Spec.Priority >= numPriorities {
				return spec, fmt.Errorf("jobs: job %q: invalid priority %d", pj.Name, pj.Spec.Priority)
			}
			if pj.Spec.Refine && m.cfg.Tuners == nil {
				return spec, fmt.Errorf("jobs: job %q: refinement not configured (no tuner source)", pj.Name)
			}
			pj.Spec.AppParams = copyParams(pj.Spec.AppParams)
			if pj.Spec.RequestID == "" {
				pj.Spec.RequestID = spec.RequestID
			}
		}
		norm.Waves[wi] = nw
	}
	return norm, nil
}

package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/tunecache"
)

// fixedPlan is a fast PlanFunc: a canned CPU-only decision, so job
// execution costs one cheap engine estimate.
func fixedPlan(system string, inst plan.Instance) (tunecache.Plan, tunecache.Outcome, error) {
	return tunecache.Plan{
		Par:     plan.Params{CPUTile: 8, Band: -1, GPUTile: 1, Halo: -1},
		RTimeNs: 1000, SerialNs: 2000,
	}, tunecache.Miss, nil
}

// gatedPlan blocks every plan fetch until the gate channel is closed,
// and records the order instances were picked up in.
type gatedPlan struct {
	gate chan struct{}
	mu   sync.Mutex
	seen []plan.Instance
}

func newGatedPlan() *gatedPlan { return &gatedPlan{gate: make(chan struct{})} }

func (g *gatedPlan) fetch(system string, inst plan.Instance) (tunecache.Plan, tunecache.Outcome, error) {
	g.mu.Lock()
	g.seen = append(g.seen, inst)
	g.mu.Unlock()
	<-g.gate
	return fixedPlan(system, inst)
}

func (g *gatedPlan) order() []plan.Instance {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]plan.Instance(nil), g.seen...)
}

func testInst(dim int) plan.Instance {
	return plan.Instance{Dim: dim, TSize: 100, DSize: 1}
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Plans == nil {
		cfg.Plans = fixedPlan
	}
	if len(cfg.Systems) == 0 {
		cfg.Systems = []hw.System{hw.I7_2600K()}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func await(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j, err := m.Await(ctx, id)
	if err != nil {
		t.Fatalf("awaiting %s: %v", id, err)
	}
	return j
}

func TestJobLifecycle(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(300)})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Errorf("submit snapshot state = %v, want queued", j.State)
	}
	if j.ID == "" || j.Created.IsZero() {
		t.Errorf("snapshot incomplete: %+v", j)
	}

	done := await(t, m, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state = %v (err %q), want succeeded", done.State, done.Err)
	}
	r := done.Result
	if r == nil {
		t.Fatal("succeeded job has no result")
	}
	if r.Cache != "miss" || r.MeasuredNs <= 0 || r.PredictedNs != 1000 || r.SerialNs != 2000 {
		t.Errorf("result = %+v", r)
	}
	if r.Refine != nil {
		t.Error("non-refine job reported refinement stats")
	}
	if done.Started.Before(done.Created) || done.Finished.Before(done.Started) {
		t.Errorf("timestamps out of order: %+v", done)
	}

	st := m.Stats()
	if st.Submitted != 1 || st.Succeeded != 1 || st.Queued != 0 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Config{})
	cases := []Spec{
		{System: "riscv", Inst: testInst(100)},                  // unknown system
		{System: "i7-2600K"},                                    // invalid instance
		{System: "i7-2600K", Inst: testInst(100), Priority: 99}, // invalid priority
		{System: "i7-2600K", Inst: testInst(100), Refine: true}, // no tuner source
		{System: "i7-2600K", Inst: testInst(100), Priority: -1}, // invalid priority
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d: Submit(%+v) accepted", i, spec)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, QueueDepth: 8, Plans: g.fetch})

	// Occupy the single worker so later submissions queue up.
	blocker, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker is inside the gated fetch.
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	low, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(200), Priority: PriorityLow})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(300)})
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(400), Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	close(g.gate)
	for _, id := range []string{blocker.ID, low.ID, norm.ID, high.ID} {
		await(t, m, id)
	}
	order := g.order()
	if len(order) != 4 {
		t.Fatalf("fetched %d plans, want 4", len(order))
	}
	want := []int{100, 400, 300, 200} // blocker, then high > normal > low
	for i, in := range order {
		if in.Dim != want[i] {
			t.Fatalf("execution order = %v, want dims %v", order, want)
		}
	}
}

func TestQueueOverflow(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, QueueDepth: 1, Plans: g.fetch})
	defer close(g.gate)

	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)}); err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	// The worker is busy; depth 1 admits exactly one queued job.
	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(200)}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(300)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.Rejected != 1 || st.Queued != 1 {
		t.Errorf("stats = %+v, want 1 rejected 1 queued", st)
	}
}

func TestCancelQueued(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, QueueDepth: 4, Plans: g.fetch})
	defer close(g.gate)

	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)}); err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(200)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled || !got.CancelRequested || got.Finished.IsZero() {
		t.Errorf("canceled snapshot = %+v", got)
	}
	// Double cancel: already finished.
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel err = %v, want ErrFinished", err)
	}
	if _, err := m.Cancel("job-bogus"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown cancel err = %v, want ErrNotFound", err)
	}
	if st := m.Stats(); st.Canceled != 1 || st.Queued != 0 {
		t.Errorf("stats = %+v, want 1 canceled 0 queued", st)
	}
	// The canceled job must never execute.
	if len(g.order()) != 1 {
		t.Errorf("canceled job was executed: %v", g.order())
	}
}

func TestCancelRunning(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, Plans: g.fetch})

	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)})
	if err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	got, err := m.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The worker is still blocked in the plan fetch: the snapshot
	// reports a running job with the cancellation pending.
	if got.State != StateRunning || !got.CancelRequested {
		t.Errorf("snapshot after cancel = %+v", got)
	}
	close(g.gate)
	done := await(t, m, j.ID)
	if done.State != StateCanceled {
		t.Errorf("final state = %v, want canceled", done.State)
	}
	if done.Result != nil {
		t.Error("canceled job still produced a result")
	}
}

func TestListFilters(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, QueueDepth: 8, Plans: g.fetch,
		Systems: []hw.System{hw.I7_2600K(), hw.I3_540()}})

	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)}); err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(Spec{System: "i3-540", Inst: testInst(200)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(300)}); err != nil {
		t.Fatal(err)
	}

	if all := m.List(Filter{}); len(all) != 3 {
		t.Errorf("List(all) = %d jobs, want 3", len(all))
	}
	queued := StateQueued
	if l := m.List(Filter{State: &queued}); len(l) != 2 {
		t.Errorf("List(queued) = %d jobs, want 2", len(l))
	}
	if l := m.List(Filter{System: "i3-540"}); len(l) != 1 || l[0].Inst.Dim != 200 {
		t.Errorf("List(i3-540) = %+v", l)
	}
	running := StateRunning
	if l := m.List(Filter{State: &running}); len(l) != 1 || l[0].Inst.Dim != 100 {
		t.Errorf("List(running) = %+v", l)
	}
	// Submission order.
	all := m.List(Filter{})
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("List out of submission order: %v >= %v", all[i-1].ID, all[i].ID)
		}
	}
	close(g.gate)
}

func TestShutdownDrainsQueue(t *testing.T) {
	m := newManager(t, Config{Workers: 2, QueueDepth: 32})
	var ids []string
	for i := 0; i < 10; i++ {
		j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		j, ok := m.Get(id)
		if !ok || j.State != StateSucceeded {
			t.Errorf("after drain, job %s = %+v", id, j)
		}
	}
	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(50)}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown err = %v, want ErrClosed", err)
	}
}

func TestShutdownAbortCancelsQueued(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, QueueDepth: 4, Plans: g.fetch})

	running, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)})
	if err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(200)})
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	go func() { shutdownDone <- m.Shutdown(ctx) }()

	// Once the drain deadline expires the queued job is canceled; the
	// blocked running one gets its context canceled and finishes
	// canceled as soon as the fetch returns.
	qj := await(t, m, queued.ID)
	if qj.State != StateCanceled {
		t.Errorf("queued job after abort = %v, want canceled", qj.State)
	}
	close(g.gate)
	if err := <-shutdownDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("aborted Shutdown err = %v, want deadline exceeded", err)
	}
	rj, _ := m.Get(running.ID)
	if rj.State != StateCanceled {
		t.Errorf("running job after abort = %v, want canceled", rj.State)
	}
}

// TestShutdownAbortNotHostageToStuckWorker: a worker blocked inside a
// non-cancelable plan fetch must not keep an aborted Shutdown waiting
// beyond the grace period.
func TestShutdownAbortNotHostageToStuckWorker(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, Plans: g.fetch})
	// Released only when the test returns (before cleanup's Shutdown),
	// so the worker is stuck for the whole aborted shutdown.
	defer close(g.gate)

	if _, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)}); err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > abortGrace+3*time.Second {
		t.Errorf("aborted Shutdown took %v, want bounded by the grace period", elapsed)
	}
}

func TestFailedPlanFetch(t *testing.T) {
	boom := errors.New("no tuner")
	m := newManager(t, Config{Plans: func(string, plan.Instance) (tunecache.Plan, tunecache.Outcome, error) {
		return tunecache.Plan{}, tunecache.Miss, boom
	}})
	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100)})
	if err != nil {
		t.Fatal(err)
	}
	done := await(t, m, j.ID)
	if done.State != StateFailed || done.Err == "" {
		t.Errorf("job = %+v, want failed with message", done)
	}
	if st := m.Stats(); st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRecordPruning(t *testing.T) {
	m := newManager(t, Config{Workers: 1, QueueDepth: 32, MaxRecords: 3})
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		// Records may be pruned once later jobs finish; await tolerates
		// only live ones.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := m.Await(ctx, id); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
		cancel()
	}
	// Wait for all to finish, then the oldest finished must be pruned.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := m.Stats(); st.Succeeded == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if got := len(m.List(Filter{})); got != 3 {
		t.Errorf("retained records = %d, want 3", got)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest finished record was not pruned")
	}
	if _, ok := m.Get(ids[5]); !ok {
		t.Error("newest record must be retained")
	}
}

// refineManager builds a manager over a real trained tuner and cache,
// exercising the full refine feedback path.
func refineManager(t *testing.T, logDir string, budget int) (*Manager, *core.Tuner) {
	t.Helper()
	tun := refineTuner(t)
	cache := tunecache.New(16, func(system string, in plan.Instance) (tunecache.Plan, error) {
		pred, rtime, serial, err := tun.PredictTimed(in)
		if err != nil {
			return tunecache.Plan{}, err
		}
		return tunecache.Plan{Serial: pred.Serial, Par: pred.Par, RTimeNs: rtime, SerialNs: serial}, nil
	})
	var obs *core.ObservationLog
	if logDir != "" {
		var err error
		if obs, err = core.NewObservationLog(logDir); err != nil {
			t.Fatal(err)
		}
	}
	m := newManager(t, Config{
		Workers:      2,
		Plans:        cache.Get,
		Tuners:       func(string) (core.Predictor, error) { return tun, nil },
		RefineBudget: budget,
		TrainingLog:  obs,
	})
	return m, tun
}

var (
	refineTunerOnce sync.Once
	refineTun       *core.Tuner
	refineTunErr    error
)

// refineTuner trains one small-space tuner per test binary.
func refineTuner(t *testing.T) *core.Tuner {
	t.Helper()
	refineTunerOnce.Do(func() {
		space := core.Space{
			Dims:      []int{300, 900, 1900},
			TSizes:    []float64{10, 500, 4000},
			DSizes:    []int{1, 5},
			CPUTiles:  []int{1, 8},
			BandFracs: []float64{-1, 0.5, 1.0},
			HaloFracs: []float64{-1, 0, 1.0},
			GPUTiles:  []int{1, 8},
		}
		sr, err := core.Exhaustive(hw.I7_2600K(), space, core.SearchOptions{})
		if err != nil {
			refineTunErr = err
			return
		}
		refineTun, refineTunErr = core.Train(sr, core.DefaultTrainOptions())
	})
	if refineTunErr != nil {
		t.Fatal(refineTunErr)
	}
	return refineTun
}

func TestRefineJobFeedsTrainingLog(t *testing.T) {
	dir := t.TempDir()
	const budget = 6
	m, _ := refineManager(t, dir, budget)

	inst := plan.Instance{Dim: 1900, TSize: 4000, DSize: 1}
	j, err := m.Submit(Spec{System: "i7-2600K", Inst: inst, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	done := await(t, m, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("refine job = %v (err %q)", done.State, done.Err)
	}
	r := done.Result
	if r == nil || r.Refine == nil {
		t.Fatalf("refine job missing refinement stats: %+v", r)
	}
	if r.Refine.Probes < 1 || r.Refine.Probes > budget {
		t.Errorf("probes = %d, want within budget %d", r.Refine.Probes, budget)
	}
	if r.MeasuredNs != r.Refine.FinalNs {
		t.Errorf("measured %v != refined final %v", r.MeasuredNs, r.Refine.FinalNs)
	}
	if r.Refine.FinalNs > r.Refine.StartNs {
		t.Errorf("refinement regressed: %v -> %v", r.Refine.StartNs, r.Refine.FinalNs)
	}

	st := m.Stats()
	if st.Refined != 1 {
		t.Errorf("stats = %+v, want 1 refined", st)
	}
	if !done.Result.Serial {
		if st.TrainingRows != 1 {
			t.Fatalf("training rows = %d, want 1", st.TrainingRows)
		}
		f, err := os.Open(fmt.Sprintf("%s/i7-2600K.csv", dir))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sr, err := core.ReadCSV(f)
		if err != nil {
			t.Fatalf("training log unreadable by wavetrain: %v", err)
		}
		p := sr.Instances[0].Points[0]
		if p.Par != r.Par || p.RTimeNs != r.MeasuredNs {
			t.Errorf("logged observation %+v != result %+v", p, r)
		}
	}
}

// TestAppParamsNotAliased pins the immutability contract of Job
// snapshots: a caller mutating the map it submitted, or the map a
// snapshot returned, must not rewrite the stored record.
func TestAppParamsNotAliased(t *testing.T) {
	m := newManager(t, Config{})
	defer m.Shutdown(context.Background())
	params := map[string]float64{"rounds": 2}
	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(64), App: "nash", AppParams: params})
	if err != nil {
		t.Fatal(err)
	}
	params["rounds"] = 99       // caller reuses its map after Submit
	j.AppParams["rounds"] = 1e9 // caller scribbles on a snapshot
	got, ok := m.Get(j.ID)
	if !ok {
		t.Fatal("job disappeared")
	}
	if got.AppParams["rounds"] != 2 {
		t.Errorf("stored app params mutated through an aliased map: %v", got.AppParams)
	}
}

// TestRetryAfterHint pins the derived 429 backoff: it scales with the
// observed service time and the backlog, clamps to [1s, 60s], and
// rounds up to whole seconds (the header carries integers).
func TestRetryAfterHint(t *testing.T) {
	sec := float64(time.Second)
	cases := []struct {
		name    string
		avgNs   float64
		queued  int
		workers int
		want    time.Duration
	}{
		{"no observation yet", 0, 10, 4, time.Second},
		{"no workers", 5 * sec, 10, 0, time.Second},
		{"fast jobs clamp to the floor", 0.01 * sec, 2, 4, time.Second},
		// 10s avg, 4 workers, empty queue: 10/4 = 2.5s, rounded up.
		{"service time alone", 10 * sec, 0, 4, 3 * time.Second},
		// Same service time, 8 queued over 4 workers: 2.5 * (1+2) = 7.5s.
		{"backlog scales the hint", 10 * sec, 8, 4, 8 * time.Second},
		{"slow jobs clamp to the ceiling", 600 * sec, 64, 2, time.Minute},
	}
	for _, tc := range cases {
		if got := RetryAfterHint(tc.avgNs, tc.queued, tc.workers); got != tc.want {
			t.Errorf("%s: RetryAfterHint(%v, %d, %d) = %v, want %v",
				tc.name, time.Duration(tc.avgNs), tc.queued, tc.workers, got, tc.want)
		}
	}
}

// TestServiceTimeObserved: finishing jobs feed the moving average that
// RetryAfter derives from; jobs canceled while still queued do not.
func TestServiceTimeObserved(t *testing.T) {
	m := newManager(t, Config{Workers: 1})
	defer m.Shutdown(context.Background())
	if m.Stats().AvgServiceSec != 0 {
		t.Fatal("avg service time non-zero before any job ran")
	}
	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(64)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Await(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}
	if m.Stats().AvgServiceSec <= 0 {
		t.Error("finished job did not feed the service-time average")
	}
	if hint := m.RetryAfter(); hint < time.Second || hint > time.Minute {
		t.Errorf("RetryAfter() = %v, want within [1s, 60s]", hint)
	}
}

package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/tunecache"
)

// pipeJob builds one wave job over the stock test system.
func pipeJob(dim int) PipelineJob {
	return PipelineJob{Spec: Spec{System: "i7-2600K", Inst: testInst(dim)}}
}

// wave builds a default-policy wave.
func wave(jobs ...PipelineJob) WaveSpec { return WaveSpec{Jobs: jobs} }

func awaitPipe(t *testing.T, m *Manager, id string) Pipeline {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	p, err := m.AwaitPipeline(ctx, id)
	if err != nil {
		t.Fatalf("awaiting pipeline %s: %v", id, err)
	}
	return p
}

// failingPlan injects deterministic job failures: an instance whose Dim
// carries failure charges fails its plan fetch until the charges run
// out (-1 charges fail forever). Everything else succeeds like
// fixedPlan.
type failingPlan struct {
	mu      sync.Mutex
	charges map[int]int
}

func newFailingPlan(charges map[int]int) *failingPlan {
	if charges == nil {
		charges = map[int]int{}
	}
	return &failingPlan{charges: charges}
}

func (f *failingPlan) fetch(system string, inst plan.Instance) (tunecache.Plan, tunecache.Outcome, error) {
	f.mu.Lock()
	n := f.charges[inst.Dim]
	if n > 0 {
		f.charges[inst.Dim] = n - 1
	}
	f.mu.Unlock()
	if n != 0 {
		return tunecache.Plan{}, tunecache.Miss, fmt.Errorf("injected failure for dim %d", inst.Dim)
	}
	return fixedPlan(system, inst)
}

func TestPipelineLifecycle(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	snap, err := m.SubmitPipeline(PipelineSpec{
		Name: "align-then-fold",
		Waves: []WaveSpec{
			{Name: "align", Jobs: []PipelineJob{pipeJob(100), pipeJob(200)}},
			{Name: "fold", After: []string{"align"}, Jobs: []PipelineJob{pipeJob(300)}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != PipeQueued || snap.ID == "" || snap.Created.IsZero() {
		t.Errorf("submit snapshot = %+v, want a queued record", snap)
	}
	if len(snap.Waves) != 2 || snap.Waves[0].Name != "align" || snap.Waves[1].Name != "fold" {
		t.Errorf("submit snapshot waves = %+v", snap.Waves)
	}

	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeSucceeded || done.Err != "" {
		t.Fatalf("pipeline = %v (err %q), want succeeded", done.State, done.Err)
	}
	if done.Started.Before(done.Created) || done.Finished.Before(done.Started) {
		t.Errorf("timestamps out of order: %+v", done)
	}
	widths := []int{2, 1}
	for wi, w := range done.Waves {
		if w.State != WaveResolved || w.Failed != 0 || w.RetriesUsed != 0 {
			t.Errorf("wave %d = %+v, want resolved clean", wi, w)
		}
		if len(w.JobIDs) != widths[wi] {
			t.Errorf("wave %d ran %d jobs, want %d", wi, len(w.JobIDs), widths[wi])
		}
		for _, id := range w.JobIDs {
			j, ok := m.Get(id)
			if !ok || j.State != StateSucceeded {
				t.Errorf("wave %d job %s = %+v, want succeeded", wi, id, j)
			}
		}
	}

	// The barrier invariant, observed through the jobs' own monotonic
	// timestamps: no fold job started before every align job finished.
	var alignDone time.Time
	for _, id := range done.Waves[0].JobIDs {
		if j, _ := m.Get(id); j.Finished.After(alignDone) {
			alignDone = j.Finished
		}
	}
	for _, id := range done.Waves[1].JobIDs {
		if j, _ := m.Get(id); j.Started.Before(alignDone) {
			t.Errorf("fold job %s started %v before align resolved %v", id, j.Started, alignDone)
		}
	}

	ps := m.PipelineStats()
	if ps.Submitted != 1 || ps.Succeeded != 1 || ps.WavesResolved != 2 || ps.Active != 0 {
		t.Errorf("pipeline stats = %+v", ps)
	}
	if st := m.Stats(); st.Succeeded != 3 {
		t.Errorf("job stats = %+v, want 3 succeeded wave jobs", st)
	}
}

// TestPipelineAbortSkipsLaterWaves: the default policy fails the
// pipeline on the first bad wave and never admits the rest.
func TestPipelineAbortSkipsLaterWaves(t *testing.T) {
	f := newFailingPlan(map[int]int{200: -1})
	m := newManager(t, Config{Workers: 2, Plans: f.fetch})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		wave(pipeJob(100), pipeJob(200)),
		wave(pipeJob(300)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeFailed {
		t.Fatalf("pipeline = %v (err %q), want failed", done.State, done.Err)
	}
	if !strings.Contains(done.Err, "wave 0") {
		t.Errorf("failure message %q does not blame wave 0", done.Err)
	}
	if done.Waves[0].State != WaveFailed || done.Waves[0].Failed != 1 {
		t.Errorf("wave 0 = %+v, want failed with 1 bad job", done.Waves[0])
	}
	if done.Waves[1].State != WaveSkipped || len(done.Waves[1].JobIDs) != 0 {
		t.Errorf("wave 1 = %+v, want skipped with no jobs", done.Waves[1])
	}
	if ps := m.PipelineStats(); ps.Failed != 1 || ps.WavesResolved != 0 {
		t.Errorf("pipeline stats = %+v", ps)
	}
}

// TestPipelineContinuePolicy: a continue wave resolves even when every
// one of its jobs fails, and the next wave still runs.
func TestPipelineContinuePolicy(t *testing.T) {
	f := newFailingPlan(map[int]int{100: -1, 200: -1})
	m := newManager(t, Config{Workers: 2, Plans: f.fetch})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		{Policy: PolicyContinue, Jobs: []PipelineJob{pipeJob(100), pipeJob(200)}},
		wave(pipeJob(300)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeSucceeded {
		t.Fatalf("pipeline = %v (err %q), want succeeded", done.State, done.Err)
	}
	if w := done.Waves[0]; w.State != WaveResolved || w.Failed != 2 {
		t.Errorf("continue wave = %+v, want resolved with 2 failures on record", w)
	}
	if w := done.Waves[1]; w.State != WaveResolved || w.Failed != 0 {
		t.Errorf("wave 1 = %+v", w)
	}
	if ps := m.PipelineStats(); ps.Succeeded != 1 || ps.WavesResolved != 2 {
		t.Errorf("pipeline stats = %+v", ps)
	}
}

// TestPipelineRetryExhaustion: a job that never succeeds burns the
// whole budget — initial attempt plus RetryBudget resubmissions — and
// then fails the wave like abort.
func TestPipelineRetryExhaustion(t *testing.T) {
	f := newFailingPlan(map[int]int{100: -1})
	m := newManager(t, Config{Workers: 2, Plans: f.fetch})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		{Policy: PolicyRetry, RetryBudget: 2, Jobs: []PipelineJob{pipeJob(100)}},
		wave(pipeJob(300)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeFailed {
		t.Fatalf("pipeline = %v (err %q), want failed", done.State, done.Err)
	}
	if !strings.Contains(done.Err, "retry budget exhausted") {
		t.Errorf("failure message %q does not report exhaustion", done.Err)
	}
	w := done.Waves[0]
	if w.State != WaveFailed || w.RetriesUsed != 2 {
		t.Errorf("wave 0 = %+v, want failed after 2 retries", w)
	}
	if len(w.JobIDs) != 3 { // the original attempt plus both retries
		t.Errorf("wave 0 ran %d attempts (%v), want 3", len(w.JobIDs), w.JobIDs)
	}
	if done.Waves[1].State != WaveSkipped {
		t.Errorf("wave 1 = %+v, want skipped", done.Waves[1])
	}
	if ps := m.PipelineStats(); ps.JobRetries != 2 || ps.Failed != 1 {
		t.Errorf("pipeline stats = %+v", ps)
	}
}

// TestPipelineRetrySucceeds: a transient failure is healed by one
// resubmission; the healthy job of the same wave is not re-run.
func TestPipelineRetrySucceeds(t *testing.T) {
	f := newFailingPlan(map[int]int{100: 1}) // fail once, then succeed
	m := newManager(t, Config{Workers: 2, Plans: f.fetch})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		{Policy: PolicyRetry, RetryBudget: 3, Jobs: []PipelineJob{pipeJob(100), pipeJob(200)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeSucceeded {
		t.Fatalf("pipeline = %v (err %q), want succeeded", done.State, done.Err)
	}
	w := done.Waves[0]
	if w.State != WaveResolved || w.RetriesUsed != 1 || w.Failed != 0 {
		t.Errorf("wave = %+v, want resolved after exactly 1 retry", w)
	}
	if len(w.JobIDs) != 3 { // two originals plus the one resubmission
		t.Errorf("wave ran %d attempts (%v), want 3", len(w.JobIDs), w.JobIDs)
	}
	if ps := m.PipelineStats(); ps.JobRetries != 1 || ps.Succeeded != 1 {
		t.Errorf("pipeline stats = %+v", ps)
	}
}

// TestPipelineCancelRunningWave: cancellation reaches the running
// wave's jobs cooperatively and skips everything after it.
func TestPipelineCancelRunningWave(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 2, Plans: g.fetch})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		wave(pipeJob(100)),
		wave(pipeJob(300)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the wave-0 job is inside the gated fetch.
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	got, err := m.CancelPipeline(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CancelRequested || got.State != PipeWaveRunning {
		t.Errorf("snapshot after cancel = %+v", got)
	}
	close(g.gate)
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeCanceled {
		t.Fatalf("pipeline = %v, want canceled", done.State)
	}
	if done.Waves[0].State != WaveCanceled {
		t.Errorf("wave 0 = %+v, want canceled", done.Waves[0])
	}
	if done.Waves[1].State != WaveSkipped || len(done.Waves[1].JobIDs) != 0 {
		t.Errorf("wave 1 = %+v, want skipped untouched", done.Waves[1])
	}
	for _, id := range done.Waves[0].JobIDs {
		if j, _ := m.Get(id); j.State != StateCanceled {
			t.Errorf("wave job %s = %v, want canceled", id, j.State)
		}
	}
	// Cancel of a finished pipeline: ErrFinished, state untouched.
	if _, err := m.CancelPipeline(snap.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel err = %v, want ErrFinished", err)
	}
	if _, err := m.CancelPipeline("pipe-bogus"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown cancel err = %v, want ErrNotFound", err)
	}
	if ps := m.PipelineStats(); ps.Canceled != 1 || ps.Active != 0 {
		t.Errorf("pipeline stats = %+v", ps)
	}
}

// TestPipelineCancelAtWaveBoundary: the cancel lands while the driver
// sits between waves, blocked waiting for queue space to admit the next
// one. No job of that wave may ever be submitted.
func TestPipelineCancelAtWaveBoundary(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, QueueDepth: 1, Plans: g.fetch})

	// Occupy the only worker, then fill the queue's single slot, so the
	// pipeline driver must wait for space.
	filler, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(900)})
	if err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	queued, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(901)})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(100))}})
	if err != nil {
		t.Fatal(err)
	}
	// The driver admitted wave 0 (state wave-running) but cannot place
	// its job; give it a moment to reach the space wait, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, ok := m.GetPipeline(snap.ID)
		if ok && p.State == PipeWaveRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pipeline never reached wave-running")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.CancelPipeline(snap.ID); err != nil {
		t.Fatal(err)
	}
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeCanceled {
		t.Fatalf("pipeline = %v, want canceled", done.State)
	}
	if n := len(done.Waves[0].JobIDs); n != 0 {
		t.Errorf("canceled-at-boundary wave submitted %d job(s), want 0", n)
	}
	// The queue is not wedged: the unrelated jobs still drain.
	close(g.gate)
	for _, id := range []string{filler.ID, queued.ID} {
		if j := await(t, m, id); j.State != StateSucceeded {
			t.Errorf("job %s = %v after pipeline cancel, want succeeded", id, j.State)
		}
	}
}

// TestPipelineShutdownDrains: a graceful shutdown owes an admitted
// pipeline all of its remaining waves, exactly like queued jobs.
func TestPipelineShutdownDrains(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		wave(pipeJob(100), pipeJob(200)),
		wave(pipeJob(300)),
		wave(pipeJob(400)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	done, ok := m.GetPipeline(snap.ID)
	if !ok || done.State != PipeSucceeded {
		t.Fatalf("pipeline after drain = %+v, want succeeded", done)
	}
	for wi, w := range done.Waves {
		if w.State != WaveResolved {
			t.Errorf("wave %d = %+v after drain, want resolved", wi, w)
		}
	}
	if _, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(500))}}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown err = %v, want ErrClosed", err)
	}
}

// TestPipelineShutdownAbort: an expired drain deadline cancels the
// half-complete pipeline — the gated wave finishes canceled and the
// unstarted wave is skipped, never submitted.
func TestPipelineShutdownAbort(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, Plans: g.fetch})
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		wave(pipeJob(100)),
		wave(pipeJob(300)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for len(g.order()) == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- m.Shutdown(ctx) }()
	// The abort cancels the running wave job's context; the worker is
	// still stuck in the fetch until the gate opens.
	time.Sleep(50 * time.Millisecond)
	close(g.gate)
	if err := <-shutdownDone; !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("aborted Shutdown err = %v, want deadline exceeded", err)
	}
	done := awaitPipe(t, m, snap.ID)
	if done.State != PipeCanceled {
		t.Fatalf("pipeline after abort = %v, want canceled", done.State)
	}
	if done.Waves[1].State != WaveSkipped || len(done.Waves[1].JobIDs) != 0 {
		t.Errorf("unstarted wave after abort = %+v, want skipped", done.Waves[1])
	}
}

// TestPipelineAdmissionControl: MaxPipelines bounds concurrently active
// pipelines; overflow answers ErrQueueFull and counts as rejected.
func TestPipelineAdmissionControl(t *testing.T) {
	g := newGatedPlan()
	m := newManager(t, Config{Workers: 1, MaxPipelines: 2, Plans: g.fetch})
	var ids []string
	for i := 0; i < 2; i++ {
		snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(100 + i))}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	if _, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(300))}}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third pipeline err = %v, want ErrQueueFull", err)
	}
	if ps := m.PipelineStats(); ps.Rejected != 1 || ps.Active != 2 || ps.MaxActive != 2 {
		t.Errorf("pipeline stats = %+v", ps)
	}
	close(g.gate)
	for _, id := range ids {
		awaitPipe(t, m, id)
	}
	// Slots free up once pipelines finish.
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(400))}})
	if err != nil {
		t.Fatalf("submit after drain err = %v", err)
	}
	awaitPipe(t, m, snap.ID)
}

// TestPipelinePruning: PrunePipelines drops exactly the finished
// records; job records of the waves survive under their own bound.
func TestPipelinePruning(t *testing.T) {
	m := newManager(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(100 + i))}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	var jobID string
	for _, id := range ids {
		p := awaitPipe(t, m, id)
		jobID = p.Waves[0].JobIDs[0]
	}
	if n := m.PrunePipelines(); n != 3 {
		t.Errorf("pruned %d records, want 3", n)
	}
	for _, id := range ids {
		if _, ok := m.GetPipeline(id); ok {
			t.Errorf("pipeline %s survived pruning", id)
		}
	}
	if n := m.PrunePipelines(); n != 0 {
		t.Errorf("second prune removed %d records, want 0", n)
	}
	if _, ok := m.Get(jobID); !ok {
		t.Error("wave job record vanished with its pipeline; job retention is separate")
	}
	if l := m.ListPipelines(PipelineFilter{}); len(l) != 0 {
		t.Errorf("ListPipelines after prune = %d records", len(l))
	}
}

// TestPipelineListFilter: ListPipelines reports submission order and
// honors the state filter.
func TestPipelineListFilter(t *testing.T) {
	f := newFailingPlan(map[int]int{200: -1})
	m := newManager(t, Config{Workers: 2, Plans: f.fetch})
	good, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(100))}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(200))}})
	if err != nil {
		t.Fatal(err)
	}
	awaitPipe(t, m, good.ID)
	awaitPipe(t, m, bad.ID)

	all := m.ListPipelines(PipelineFilter{})
	if len(all) != 2 || all[0].ID != good.ID || all[1].ID != bad.ID {
		t.Errorf("ListPipelines = %+v, want submission order", all)
	}
	failed := PipeFailed
	if l := m.ListPipelines(PipelineFilter{State: &failed}); len(l) != 1 || l[0].ID != bad.ID {
		t.Errorf("ListPipelines(failed) = %+v", l)
	}
}

// randPipeline is one generated pipeline plus the failure knowledge the
// invariant checks need.
type randPipeline struct {
	spec       PipelineSpec
	cancel     bool
	mustFail   bool // some wave cannot resolve under its policy
	cancelWait time.Duration
}

// genPipeline draws a random pipeline: 1-4 waves of 1-3 jobs, random
// policies, with injected always-failing and fail-once jobs. Dims are
// unique per job (nextDim) so the failingPlan can target them.
func genPipeline(rng *rand.Rand, charges map[int]int, nextDim *int) randPipeline {
	var rp randPipeline
	nWaves := 1 + rng.Intn(4)
	var prevName string
	for wi := 0; wi < nWaves; wi++ {
		w := WaveSpec{Name: fmt.Sprintf("w%d", wi)}
		switch rng.Intn(3) {
		case 1:
			w.Policy = PolicyContinue
		case 2:
			w.Policy = PolicyRetry
			w.RetryBudget = 1 + rng.Intn(3)
		}
		if wi > 0 && rng.Intn(2) == 0 {
			w.After = []string{prevName}
		}
		prevName = w.Name
		waveAlwaysFail := 0
		for ji := 0; ji < 1+rng.Intn(3); ji++ {
			*nextDim += 7
			dim := *nextDim
			switch rng.Intn(8) {
			case 0: // always fails
				charges[dim] = -1
				waveAlwaysFail++
			case 1: // fails once, healed by a retry
				charges[dim] = 1
			}
			j := pipeJob(dim)
			if rng.Intn(3) == 0 {
				j.Spec.Priority = Priority(rng.Intn(int(numPriorities)))
			}
			w.Jobs = append(w.Jobs, j)
		}
		// A wave with an always-failing job resolves only under
		// continue; abort fails outright and retry burns its budget.
		if waveAlwaysFail > 0 && w.Policy != PolicyContinue {
			rp.mustFail = true
		}
		// Fail-once jobs sink non-retry waves too (except continue).
		if w.Policy == PolicyAbort {
			for _, j := range w.Jobs {
				if charges[j.Spec.Inst.Dim] == 1 {
					rp.mustFail = true
				}
			}
		}
		rp.spec.Waves = append(rp.spec.Waves, w)
	}
	if rng.Intn(5) == 0 {
		rp.cancel = true
		rp.cancelWait = time.Duration(rng.Intn(4)) * time.Millisecond
	}
	return rp
}

// checkPipelineInvariants asserts the structural invariants every
// finished pipeline must satisfy, whatever the injected failures and
// cancel timing did.
func checkPipelineInvariants(t *testing.T, m *Manager, p Pipeline, rp randPipeline, seenJobs map[string]string) {
	t.Helper()
	if !p.State.Finished() {
		t.Errorf("%s: awaited pipeline not terminal: %v", p.ID, p.State)
		return
	}
	// Terminal is terminal: the record never moves again.
	if again, ok := m.GetPipeline(p.ID); !ok || again.State != p.State {
		t.Errorf("%s: terminal state drifted %v -> %v", p.ID, p.State, again.State)
	}
	if _, err := m.CancelPipeline(p.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("%s: cancel of terminal pipeline err = %v, want ErrFinished", p.ID, err)
	}
	// A pipeline that cannot succeed must not report success; cancels
	// may preempt the failure.
	if rp.mustFail && p.State == PipeSucceeded {
		t.Errorf("%s: succeeded despite an unresolvable wave", p.ID)
	}
	if !rp.cancel && p.State == PipeCanceled {
		t.Errorf("%s: canceled without a cancel request", p.ID)
	}

	// Wave states must form a legal ladder: resolved prefix, then at
	// most one failed/canceled wave, then only skipped.
	sawTerminalWave := false
	for wi, w := range p.Waves {
		switch w.State {
		case WaveResolved:
			if sawTerminalWave {
				t.Errorf("%s: wave %d resolved after the pipeline ended", p.ID, wi)
			}
		case WaveFailed, WaveCanceled:
			if sawTerminalWave {
				t.Errorf("%s: two terminal waves (second at %d)", p.ID, wi)
			}
			sawTerminalWave = true
		case WaveSkipped:
			if !sawTerminalWave && p.State == PipeSucceeded {
				t.Errorf("%s: succeeded with wave %d skipped", p.ID, wi)
			}
			sawTerminalWave = true
			if len(w.JobIDs) != 0 {
				t.Errorf("%s: skipped wave %d submitted jobs %v", p.ID, wi, w.JobIDs)
			}
		default:
			t.Errorf("%s: wave %d left non-terminal: %v", p.ID, wi, w.State)
		}
		if w.State == WaveFailed && p.State != PipeFailed && p.State != PipeCanceled {
			t.Errorf("%s: wave %d failed but pipeline %v", p.ID, wi, p.State)
		}

		// Every attempt accounted for exactly once, globally: a job ID
		// appears in exactly one wave of one pipeline.
		width := len(rp.spec.Waves[wi].Jobs)
		if w.State == WaveResolved || w.State == WaveFailed {
			want := width + w.RetriesUsed
			if w.State == WaveFailed && rp.spec.Waves[wi].Policy == PolicyAbort {
				want = width
			}
			if len(w.JobIDs) != want {
				t.Errorf("%s: wave %d has %d attempts, want %d (width %d + retries %d)",
					p.ID, wi, len(w.JobIDs), want, width, w.RetriesUsed)
			}
		}
		for _, id := range w.JobIDs {
			if owner, dup := seenJobs[id]; dup {
				t.Errorf("job %s claimed by both %s and %s/wave-%d", id, owner, p.ID, wi)
			}
			seenJobs[id] = fmt.Sprintf("%s/wave-%d", p.ID, wi)
			if j, ok := m.Get(id); ok && !j.State.Finished() {
				t.Errorf("%s: wave %d job %s not terminal: %v", p.ID, wi, id, j.State)
			}
		}
	}

	// The barrier invariant via monotonic job timestamps: no job of
	// wave k+1 starts before every attempt of wave k finished.
	for wi := 1; wi < len(p.Waves); wi++ {
		var prevDone time.Time
		complete := true
		for _, id := range p.Waves[wi-1].JobIDs {
			j, ok := m.Get(id)
			if !ok || j.Finished.IsZero() {
				complete = false
				break
			}
			if j.Finished.After(prevDone) {
				prevDone = j.Finished
			}
		}
		if !complete {
			continue
		}
		for _, id := range p.Waves[wi].JobIDs {
			j, ok := m.Get(id)
			if !ok || j.Started.IsZero() {
				continue
			}
			if j.Started.Before(prevDone) {
				t.Errorf("%s: wave %d job %s started %v before wave %d resolved at %v",
					p.ID, wi, id, j.Started, wi-1, prevDone)
			}
		}
	}
}

// TestPipelineRandomized drives >= 200 generated pipelines — random
// shapes, policies, injected failures and cancel timing — through one
// manager and asserts the invariants on every outcome.
func TestPipelineRandomized(t *testing.T) {
	const total = 200
	rng := rand.New(rand.NewSource(7))
	charges := map[int]int{}
	nextDim := 64
	pipes := make([]randPipeline, total)
	for i := range pipes {
		pipes[i] = genPipeline(rng, charges, &nextDim)
	}
	f := newFailingPlan(charges)
	m := newManager(t, Config{
		Workers: 4, QueueDepth: 64, MaxPipelines: total,
		MaxRecords: 100000, Plans: f.fetch,
	})

	const submitters = 8
	var wg sync.WaitGroup
	results := make([]Pipeline, total)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < total; i += submitters {
				snap, err := m.SubmitPipeline(pipes[i].spec)
				if err != nil {
					t.Errorf("pipeline %d rejected: %v", i, err)
					continue
				}
				if pipes[i].cancel {
					go func(id string, wait time.Duration) {
						time.Sleep(wait)
						m.CancelPipeline(id)
					}(snap.ID, pipes[i].cancelWait)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				p, err := m.AwaitPipeline(ctx, snap.ID)
				cancel()
				if err != nil {
					t.Errorf("awaiting pipeline %d (%s): %v", i, snap.ID, err)
					continue
				}
				results[i] = p
			}
		}(s)
	}
	wg.Wait()

	seenJobs := make(map[string]string)
	for i, p := range results {
		if p.ID == "" {
			continue // submit or await already failed the test
		}
		checkPipelineInvariants(t, m, p, pipes[i], seenJobs)
	}

	ps := m.PipelineStats()
	if ps.Submitted != total {
		t.Errorf("submitted = %d, want %d", ps.Submitted, total)
	}
	if got := ps.Succeeded + ps.Failed + ps.Canceled; got != ps.Submitted {
		t.Errorf("terminal outcomes %d != submitted %d (%+v)", got, ps.Submitted, ps)
	}
	if ps.Active != 0 {
		t.Errorf("active = %d after every pipeline finished", ps.Active)
	}
	t.Logf("randomized outcomes: %d succeeded, %d failed, %d canceled, %d waves, %d retries",
		ps.Succeeded, ps.Failed, ps.Canceled, ps.WavesResolved, ps.JobRetries)
}

// Package jobs is the asynchronous job execution subsystem behind the
// tuning daemon: where the /v1/tune endpoint answers "what plan should I
// use?", a job actually runs a tuned wavefront workload end-to-end as a
// service. A submitted job is admitted into a bounded priority queue,
// picked up by a bounded worker pool, resolved to a tuned plan through
// the plan cache, and executed against the modeled system (the engine's
// stand-in for timing a real run). Jobs that opt into refinement
// additionally run the paper's future-work runtime tuning
// (core.OnlineTuner) around the cached prediction and feed the measured
// outcome back into a persisted training log that wavetrain can fold
// into retraining — closing the predict → execute → measure → retrain
// loop.
//
// The manager tracks the full lifecycle (queued → running →
// succeeded/failed/canceled) with per-job records retrievable by ID,
// supports cooperative cancellation of queued and running jobs, rejects
// submissions beyond the queue bound (admission control), and drains
// gracefully on shutdown.
//
// Beyond independent jobs, the manager runs wave-DAG pipelines
// (SubmitPipeline): job specs grouped into ordered waves, where jobs
// within a wave run in parallel through the same worker pool and wave
// N+1 is admitted only after wave N resolves at a sequential barrier,
// under a per-wave failure policy (abort / continue / retry-budget).
// The pipeline lifecycle is the explicit state machine of
// PipelineTransition, with per-wave and per-job records.
package jobs

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/telemetry"
	"repro/internal/tunecache"
)

// Errors returned by Submit and Cancel. The HTTP layer maps them to
// status codes (429, 503, 404, 409).
var (
	// ErrQueueFull rejects a submission when the queue bound is reached
	// (admission control; retry after a moment).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions after Shutdown began.
	ErrClosed = errors.New("jobs: manager shut down")
	// ErrNotFound reports an unknown (or pruned) job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished reports a cancellation of an already finished job.
	ErrFinished = errors.New("jobs: job already finished")
)

// Priority is a job's admission class. Workers always pick the highest
// non-empty class, FIFO within a class.
type Priority int

const (
	// PriorityNormal is the default class (the zero value).
	PriorityNormal Priority = iota
	// PriorityLow is for backfill work (bulk re-tuning sweeps).
	PriorityLow
	// PriorityHigh jumps the queue (interactive callers).
	PriorityHigh
	numPriorities
)

// popOrder is the order workers scan the priority classes.
var popOrder = [...]Priority{PriorityHigh, PriorityNormal, PriorityLow}

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return "priority(?)"
}

// ParsePriority inverts String; the empty string selects PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	case "high":
		return PriorityHigh, nil
	}
	return PriorityNormal, errors.New("jobs: unknown priority " + s + " (want low, normal or high)")
}

// State is a job's lifecycle state.
type State int

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: a worker is executing the job.
	StateRunning
	// StateSucceeded: finished with a Result.
	StateSucceeded
	// StateFailed: finished with an error.
	StateFailed
	// StateCanceled: canceled before or during execution.
	StateCanceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return "state(?)"
}

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// ParseState inverts State.String (for list filters).
func ParseState(s string) (State, error) {
	for st := StateQueued; st <= StateCanceled; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, errors.New("jobs: unknown state " + s)
}

// Spec describes a submitted job.
type Spec struct {
	// System names the modeled platform to run on.
	System string
	// Inst is the wavefront instance to execute.
	Inst plan.Instance
	// App echoes the named catalog application the instance was derived
	// from (informational; granularity already lives in Inst). Refined
	// jobs stamp it into the training log's app column.
	App string
	// AppParams echoes the application parameters the submission carried
	// (informational, like App).
	AppParams map[string]float64
	// Priority is the admission class; the zero value is PriorityNormal.
	Priority Priority
	// Refine opts the job into online refinement around the cached
	// prediction, with the measured outcome appended to the training log.
	Refine bool
	// RequestID carries the HTTP request ID that created the job, so a
	// slow job in the records (or a training-log anomaly) is traceable
	// back to its originating request. Informational; empty for jobs
	// submitted outside the HTTP layer.
	RequestID string
}

// Result is what a succeeded job produced.
type Result struct {
	// Serial is true when the executed decision was the sequential
	// baseline; Par then carries the fallback CPU tiling.
	Serial bool
	// Par is the executed parameter setting (the cached prediction, or
	// the refined configuration for refine jobs).
	Par plan.Params
	// Cache reports how the plan fetch was served (hit/miss/coalesced).
	Cache string
	// PredictedNs is the cached plan's modeled runtime.
	PredictedNs float64
	// MeasuredNs is the measured runtime of the executed configuration
	// on the modeled system.
	MeasuredNs float64
	// SerialNs is the modeled sequential baseline, for speedup reporting.
	SerialNs float64
	// Steps is the number of barrier-separated wavefront steps of the
	// executed schedule (engine.MeasureStepsNs): the diagonal count for
	// a hybrid run, 1 for the barrier-free serial sweep. Progress
	// reporting must use it instead of recomputing NumDiags from the
	// shape, which misstates irregular executions. Zero means unknown.
	Steps int
	// Refine carries the online-refinement statistics for refine jobs
	// (nil otherwise).
	Refine *core.RefineStats
}

// Job is an immutable snapshot of one job record.
type Job struct {
	ID string
	Spec
	State State
	// CancelRequested is set once Cancel was called; a running job stays
	// StateRunning until the worker observes the cancellation.
	CancelRequested bool
	// Err holds the failure message for StateFailed jobs.
	Err string
	// Created, Started and Finished stamp the lifecycle transitions
	// (zero until reached).
	Created, Started, Finished time.Time
	// Result is set once the job succeeded.
	Result *Result
}

// Filter selects jobs in List.
type Filter struct {
	// State, when non-nil, keeps only jobs in that lifecycle state.
	State *State
	// System, when non-empty, keeps only jobs for that system.
	System string
}

// Stats is a snapshot of the manager's counters, merged into the
// daemon's GET /v1/stats.
type Stats struct {
	// Submitted counts admitted jobs; Rejected counts queue-full
	// rejections (429s).
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	// Succeeded/Failed/Canceled count terminal outcomes.
	Succeeded uint64 `json:"succeeded"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Refined counts succeeded jobs that ran online refinement;
	// TrainingRows counts observations appended to the training log.
	Refined      uint64 `json:"refined"`
	TrainingRows uint64 `json:"training_rows"`
	// Queued and Running describe the instantaneous load; Workers and
	// QueueDepth the configured bounds.
	Queued     int `json:"queued"`
	Running    int `json:"running"`
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// AvgServiceSec is the moving average of observed job service times
	// (start to finish) — the signal behind the 429 Retry-After hint.
	// Zero until the first job finishes.
	AvgServiceSec float64 `json:"avg_service_sec"`
}

// PlanFunc resolves the tuned plan for an instance, reporting how the
// lookup was served. The daemon passes tunecache.(*Cache).Get, so
// concurrent jobs for one workload share a single tuner evaluation.
type PlanFunc func(system string, inst plan.Instance) (tunecache.Plan, tunecache.Outcome, error)

// TunerFunc resolves the trained base predictor for a system; refine
// jobs wrap it in a core.OnlineTuner.
type TunerFunc func(system string) (core.Predictor, error)

// Config configures a Manager.
type Config struct {
	// Systems are the platforms jobs may target; empty selects
	// hw.Systems().
	Systems []hw.System
	// Plans resolves tuned plans (required).
	Plans PlanFunc
	// Tuners resolves base tuners for refine jobs; when nil, refine
	// submissions are rejected at admission.
	Tuners TunerFunc
	// Workers bounds the worker pool (<= 0 selects DefaultWorkers).
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs
	// (<= 0 selects DefaultQueueDepth).
	QueueDepth int
	// RefineBudget caps probe measurements per refine job (<= 0 selects
	// the core.OnlineTuner default).
	RefineBudget int
	// TrainingLog, when set, receives (instance, params, measured ns)
	// observations from refined jobs.
	TrainingLog *core.ObservationLog
	// OnObservation, when set, is called after each successful
	// training-log append with the observed system — the retrainer's
	// wake-up hook.
	OnObservation func(system string)
	// MaxRecords bounds retained finished job records; the oldest
	// finished records are pruned beyond it (<= 0 selects
	// DefaultMaxRecords). The same bound retains finished pipeline
	// records.
	MaxRecords int
	// MaxPipelines bounds concurrently active (non-terminal) pipelines;
	// submissions beyond it are rejected with ErrQueueFull (<= 0
	// selects DefaultMaxPipelines).
	MaxPipelines int
	// Logf receives job lifecycle log lines; nil disables logging.
	Logf func(format string, args ...any)
	// Metrics, when set, receives latency observations from the
	// manager's hot paths (queue wait, execution, pipeline waves). Nil
	// disables instrumentation at zero cost.
	Metrics *Metrics
	// SlowJob, when positive, logs the full span tree of any job whose
	// execution (start to finish) exceeds it — the worker-pool analogue
	// of the HTTP layer's slow-request threshold.
	SlowJob time.Duration
}

// Metrics is the manager's telemetry hook block: histograms owned by
// the daemon's registry that the manager feeds at event time. Any field
// may be nil; all durations are observed in seconds.
type Metrics struct {
	// QueueWaitSec observes admission-to-start latency (how long jobs
	// sat queued) — the congestion signal behind Retry-After.
	QueueWaitSec *telemetry.Histogram
	// ExecSec observes start-to-finish execution time per job.
	ExecSec *telemetry.Histogram
	// WaveSec observes pipeline wave durations: from the wave's first
	// admission attempt (including any wait for queue space) to the
	// resolution of its barrier, retry rounds included.
	WaveSec *telemetry.Histogram
	// EngineSec observes individual engine measurements (the modeled
	// wavefront executions inside a job, including refine probes'
	// final step accounting).
	EngineSec *telemetry.Histogram
}

// observe is the nil-safe recording helper for optional histograms.
func observe(h *telemetry.Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Defaults for the Config bounds.
const (
	DefaultWorkers      = 4
	DefaultQueueDepth   = 64
	DefaultMaxRecords   = 1024
	DefaultMaxPipelines = 16
)

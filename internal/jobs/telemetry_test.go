package jobs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestJobMetricsObserved: every executed job must feed the queue-wait
// and execution histograms exactly once, and pipeline waves the wave
// histogram — the contract /metrics renders from.
func TestJobMetricsObserved(t *testing.T) {
	reg := telemetry.NewRegistry()
	met := &Metrics{
		QueueWaitSec: reg.Histogram("wait_seconds", "x", nil),
		ExecSec:      reg.Histogram("exec_seconds", "x", nil),
		WaveSec:      reg.Histogram("wave_seconds", "x", nil),
	}
	m := newManager(t, Config{Workers: 2, Metrics: met})

	const jobs = 5
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(500 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		await(t, m, id)
	}
	if got := met.QueueWaitSec.Count(); got != jobs {
		t.Errorf("queue-wait observations = %d, want %d", got, jobs)
	}
	if got := met.ExecSec.Count(); got != jobs {
		t.Errorf("exec observations = %d, want %d", got, jobs)
	}

	p, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{
		{Jobs: []PipelineJob{{Spec: Spec{System: "i7-2600K", Inst: testInst(600)}}}},
		{Jobs: []PipelineJob{{Spec: Spec{System: "i7-2600K", Inst: testInst(601)}}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := m.AwaitPipeline(ctx, p.ID); err != nil {
		t.Fatal(err)
	}
	if got := met.WaveSec.Count(); got != 2 {
		t.Errorf("wave observations = %d, want 2", got)
	}
}

// TestRequestIDStampedThroughRecords: a request ID on a submission must
// survive into the job snapshot, and a pipeline's ID must propagate to
// its wave jobs' records.
func TestRequestIDStampedThroughRecords(t *testing.T) {
	m := newManager(t, Config{Workers: 1})

	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(500), RequestID: "req-direct"})
	if err != nil {
		t.Fatal(err)
	}
	if got := await(t, m, j.ID).RequestID; got != "req-direct" {
		t.Errorf("job RequestID = %q, want req-direct", got)
	}

	p, err := m.SubmitPipeline(PipelineSpec{
		Name:      "trace-me",
		RequestID: "req-pipe",
		Waves: []WaveSpec{{Jobs: []PipelineJob{
			{Spec: Spec{System: "i7-2600K", Inst: testInst(600)}},
			{Spec: Spec{System: "i7-2600K", Inst: testInst(601), RequestID: "req-own"}},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.RequestID != "req-pipe" {
		t.Errorf("pipeline snapshot RequestID = %q, want req-pipe", p.RequestID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := m.AwaitPipeline(ctx, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	wave := final.Waves[0]
	if len(wave.JobIDs) != 2 {
		t.Fatalf("wave has %d job IDs, want 2", len(wave.JobIDs))
	}
	wantIDs := map[int]string{0: "req-pipe", 1: "req-own"}
	for i, id := range wave.JobIDs {
		job, ok := m.Get(id)
		if !ok {
			t.Fatalf("wave job %s not found", id)
		}
		if job.RequestID != wantIDs[i] {
			t.Errorf("wave job %d RequestID = %q, want %q", i, job.RequestID, wantIDs[i])
		}
	}
}

// TestSlowJobLogsSpanTree: with a zero-distance threshold every job is
// slow, and the logged tree must contain the execution span chain.
func TestSlowJobLogsSpanTree(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	m := newManager(t, Config{
		Workers: 1,
		SlowJob: time.Nanosecond,
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	j, err := m.Submit(Spec{System: "i7-2600K", Inst: testInst(500), RequestID: "req-slow"})
	if err != nil {
		t.Fatal(err)
	}
	await(t, m, j.ID)

	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"slow", "job.execute", "plan.fetch", "engine.measure", "request_id=req-slow"} {
		if !strings.Contains(joined, want) {
			t.Errorf("slow-job log missing %q:\n%s", want, joined)
		}
	}
}

package jobs

import "testing"

// legalPipelineTransitions is the complete transition relation, written
// out by hand so the exhaustive test below compares the implementation
// against an independent spelling rather than against itself.
var legalPipelineTransitions = map[PipelineState]map[PipelineEvent]PipelineState{
	PipeQueued: {
		PipeEvAdmit:  PipeWaveRunning,
		PipeEvCancel: PipeCanceled,
	},
	PipeWaveRunning: {
		PipeEvWaveResolved: PipeWaveBarrier,
		PipeEvWaveFailed:   PipeFailed,
		PipeEvCancel:       PipeCanceled,
	},
	PipeWaveBarrier: {
		PipeEvAdmit:  PipeWaveRunning,
		PipeEvFinish: PipeSucceeded,
		PipeEvCancel: PipeCanceled,
	},
	PipeSucceeded: {},
	PipeFailed:    {},
	PipeCanceled:  {},
}

// TestPipelineTransitionTable drives PipelineTransition through every
// (state, event) pair: legal pairs must land exactly where the relation
// says, illegal pairs must report false and leave the state unchanged.
func TestPipelineTransitionTable(t *testing.T) {
	if len(legalPipelineTransitions) != int(numPipelineStates) {
		t.Fatalf("transition relation covers %d states, machine has %d",
			len(legalPipelineTransitions), numPipelineStates)
	}
	for s := PipeQueued; s < numPipelineStates; s++ {
		for e := PipelineEvent(0); e < numPipelineEvents; e++ {
			next, ok := PipelineTransition(s, e)
			want, legal := legalPipelineTransitions[s][e]
			if ok != legal {
				t.Errorf("(%v, %v): legal = %v, want %v", s, e, ok, legal)
				continue
			}
			if legal && next != want {
				t.Errorf("(%v, %v) -> %v, want %v", s, e, next, want)
			}
			if !legal && next != s {
				t.Errorf("(%v, %v) illegal transition mutated state: %v", s, e, next)
			}
		}
	}
}

// TestPipelineTerminalStatesAreTerminal: no event whatsoever moves a
// finished pipeline, and Finished agrees with the transition relation
// (a state is terminal exactly when it has no outgoing edges).
func TestPipelineTerminalStatesAreTerminal(t *testing.T) {
	for s := PipeQueued; s < numPipelineStates; s++ {
		outgoing := len(legalPipelineTransitions[s])
		if s.Finished() != (outgoing == 0) {
			t.Errorf("%v: Finished() = %v but %d outgoing transitions", s, s.Finished(), outgoing)
		}
		if !s.Finished() {
			continue
		}
		for e := PipelineEvent(0); e < numPipelineEvents; e++ {
			if next, ok := PipelineTransition(s, e); ok || next != s {
				t.Errorf("terminal %v accepted %v -> %v", s, e, next)
			}
		}
	}
}

// TestPipelineStatesReachable walks the relation from PipeQueued: every
// state must be reachable, or the machine carries dead weight.
func TestPipelineStatesReachable(t *testing.T) {
	seen := map[PipelineState]bool{PipeQueued: true}
	frontier := []PipelineState{PipeQueued}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, next := range legalPipelineTransitions[s] {
			if !seen[next] {
				seen[next] = true
				frontier = append(frontier, next)
			}
		}
	}
	for s := PipeQueued; s < numPipelineStates; s++ {
		if !seen[s] {
			t.Errorf("state %v unreachable from %v", s, PipeQueued)
		}
	}
}

func TestPipelineStateStrings(t *testing.T) {
	for s := PipeQueued; s < numPipelineStates; s++ {
		str := s.String()
		if str == "" || str == "state(?)" {
			t.Errorf("state %d has no name", int(s))
			continue
		}
		got, err := ParsePipelineState(str)
		if err != nil || got != s {
			t.Errorf("ParsePipelineState(%q) = %v, %v; want %v", str, got, err, s)
		}
	}
	if _, err := ParsePipelineState("bogus"); err == nil {
		t.Error("ParsePipelineState accepted a bogus state")
	}
	if s := PipelineState(99).String(); s != "state(?)" {
		t.Errorf("out-of-range state String() = %q", s)
	}
}

func TestPipelineEventStrings(t *testing.T) {
	seen := map[string]PipelineEvent{}
	for e := PipelineEvent(0); e < numPipelineEvents; e++ {
		str := e.String()
		if str == "" || str == "event(?)" {
			t.Errorf("event %d has no name", int(e))
		}
		if prev, dup := seen[str]; dup {
			t.Errorf("events %v and %v share the name %q", prev, e, str)
		}
		seen[str] = e
	}
	if s := PipelineEvent(99).String(); s != "event(?)" {
		t.Errorf("out-of-range event String() = %q", s)
	}
}

func TestWaveStateStrings(t *testing.T) {
	seen := map[string]WaveState{}
	for s := WavePending; s <= WaveSkipped; s++ {
		str := s.String()
		if str == "" || str == "wave(?)" {
			t.Errorf("wave state %d has no name", int(s))
		}
		if prev, dup := seen[str]; dup {
			t.Errorf("wave states %v and %v share the name %q", prev, s, str)
		}
		seen[str] = s
	}
}

func TestFailurePolicyStrings(t *testing.T) {
	for p := PolicyAbort; p < numFailurePolicies; p++ {
		str := p.String()
		got, err := ParseFailurePolicy(str)
		if err != nil || got != p {
			t.Errorf("ParseFailurePolicy(%q) = %v, %v; want %v", str, got, err, p)
		}
	}
	// The empty string is the wire default and selects abort.
	if got, err := ParseFailurePolicy(""); err != nil || got != PolicyAbort {
		t.Errorf("ParseFailurePolicy(\"\") = %v, %v; want abort", got, err)
	}
	if _, err := ParseFailurePolicy("bogus"); err == nil {
		t.Error("ParseFailurePolicy accepted a bogus policy")
	}
}

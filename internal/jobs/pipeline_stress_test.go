package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelineStress hammers one small manager — tight MaxPipelines and
// queue depth so admission control fires constantly — with concurrent
// submitters, cancelers and pruners. Run under -race this is the wave
// barrier's torture test: the invariant checked at the end is purely
// accounting (every admitted pipeline reaches exactly one terminal
// outcome and the counters balance), because interleavings are
// arbitrary.
func TestPipelineStress(t *testing.T) {
	f := newFailingPlan(map[int]int{13: -1, 26: 1})
	m := newManager(t, Config{
		Workers: 2, QueueDepth: 4, MaxPipelines: 4,
		MaxRecords: 100000, Plans: f.fetch,
	})

	const (
		submitters   = 8
		perSubmitter = 25
		total        = submitters * perSubmitter
	)
	var (
		accepted, rejected atomic.Uint64
		ids                sync.Map // pipeline ID -> struct{}
		submitWG, auxWG    sync.WaitGroup
		stop               = make(chan struct{})
	)

	specFor := func(rng *rand.Rand, i int) PipelineSpec {
		var spec PipelineSpec
		for wi := 0; wi < 1+rng.Intn(2); wi++ {
			w := WaveSpec{Jobs: []PipelineJob{pipeJob(13 * (1 + rng.Intn(2)))}}
			if rng.Intn(2) == 0 {
				// A second job on a dim that never fails, named so wave
				// validation sees no duplicates.
				w.Jobs = append(w.Jobs, PipelineJob{
					Name: fmt.Sprintf("s%d.w%d.ok", i, wi),
					Spec: Spec{System: "i7-2600K", Inst: testInst(100)},
				})
			}
			if rng.Intn(3) == 0 {
				w.Policy = PolicyContinue
			}
			spec.Waves = append(spec.Waves, w)
		}
		return spec
	}

	for s := 0; s < submitters; s++ {
		submitWG.Add(1)
		go func(s int) {
			defer submitWG.Done()
			rng := rand.New(rand.NewSource(int64(s)))
			for i := 0; i < perSubmitter; i++ {
				snap, err := m.SubmitPipeline(specFor(rng, s*perSubmitter+i))
				switch {
				case errors.Is(err, ErrQueueFull):
					// Admission control under pressure: the expected 429
					// path. Back off a hair and try the next one.
					rejected.Add(1)
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
				case err != nil:
					t.Errorf("submitter %d: unexpected error %v", s, err)
				default:
					accepted.Add(1)
					ids.Store(snap.ID, struct{}{})
				}
			}
		}(s)
	}
	for c := 0; c < 2; c++ {
		auxWG.Add(1)
		go func(c int) {
			defer auxWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids.Range(func(k, _ any) bool {
					if rng.Intn(4) == 0 {
						// ErrFinished/ErrNotFound are fine: the pipeline
						// beat us to a terminal state or was pruned.
						m.CancelPipeline(k.(string))
					}
					return rng.Intn(8) != 0
				})
				time.Sleep(200 * time.Microsecond)
			}
		}(c)
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.PrunePipelines()
				time.Sleep(300 * time.Microsecond)
			}
		}
	}()

	submitDone := make(chan struct{})
	go func() { submitWG.Wait(); close(submitDone) }()
	select {
	case <-submitDone:
	case <-time.After(60 * time.Second):
		t.Fatal("submitters wedged")
	}

	// Every accepted pipeline must reach a terminal state. ErrNotFound
	// means a pruner removed it — pruning only ever drops finished
	// records, so that too proves termination.
	ids.Range(func(k, _ any) bool {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		p, err := m.AwaitPipeline(ctx, k.(string))
		cancel()
		switch {
		case err == nil && !p.State.Finished():
			t.Errorf("awaited pipeline %s not terminal: %v", k, p.State)
		case err != nil && !errors.Is(err, ErrNotFound):
			t.Errorf("awaiting pipeline %s: %v", k, err)
		}
		return true
	})
	close(stop)
	auxWG.Wait()

	if got := accepted.Load() + rejected.Load(); got != total {
		t.Errorf("accounted %d submissions, want %d", got, total)
	}
	ps := m.PipelineStats()
	if ps.Submitted != accepted.Load() {
		t.Errorf("stats.Submitted = %d, accepted %d", ps.Submitted, accepted.Load())
	}
	if ps.Rejected != rejected.Load() {
		t.Errorf("stats.Rejected = %d, observed %d", ps.Rejected, rejected.Load())
	}
	if got := ps.Succeeded + ps.Failed + ps.Canceled; got != ps.Submitted {
		t.Errorf("terminal outcomes %d != submitted %d (%+v)", got, ps.Submitted, ps)
	}
	if ps.Active != 0 {
		t.Errorf("active = %d after the drain", ps.Active)
	}
	if rejected.Load() == 0 {
		t.Log("note: admission control never fired this run; bounds may be too loose")
	}
	t.Logf("stress: %d accepted, %d rejected (429), %d succeeded, %d failed, %d canceled",
		accepted.Load(), rejected.Load(), ps.Succeeded, ps.Failed, ps.Canceled)

	// The manager itself is still healthy: a fresh pipeline runs clean.
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(100))}})
	if err != nil {
		t.Fatalf("submit after stress: %v", err)
	}
	if p := awaitPipe(t, m, snap.ID); p.State != PipeSucceeded {
		t.Errorf("post-stress pipeline = %v (err %q), want succeeded", p.State, p.Err)
	}
}

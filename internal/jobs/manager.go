package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/plan"
	"repro/internal/telemetry"
)

// record is one job's mutable state. All fields except the immutable
// id/spec/ctx/cancel are guarded by the manager's mutex; done closes
// exactly when the record reaches a terminal state.
type record struct {
	id     string
	spec   Spec
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	state           State
	cancelRequested bool
	err             string
	created         time.Time
	started         time.Time
	finished        time.Time
	result          *Result
}

// copyParams returns an independent copy of an app-parameter map, so
// records and snapshots never alias caller-owned (or caller-visible)
// maps.
func copyParams(m map[string]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	cp := make(map[string]float64, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// snapshot copies the record into an immutable Job. Caller holds the
// manager's mutex.
func (r *record) snapshot() Job {
	j := Job{
		ID: r.id, Spec: r.spec, State: r.state,
		CancelRequested: r.cancelRequested, Err: r.err,
		Created: r.created, Started: r.started, Finished: r.finished,
	}
	j.AppParams = copyParams(r.spec.AppParams)
	if r.result != nil {
		res := *r.result
		if r.result.Refine != nil {
			st := *r.result.Refine
			res.Refine = &st
		}
		j.Result = &res
	}
	return j
}

// Manager owns the queue, the worker pool, the job records and the
// pipeline records.
type Manager struct {
	cfg     Config
	systems map[string]hw.System

	mu   sync.Mutex
	cond *sync.Cond
	// spaceCond signals queue slots opening up (a worker popped a job, a
	// queued job was canceled, or the manager aborted); pipeline drivers
	// wait on it to admit a wave into a momentarily full queue. It is a
	// separate condition from cond because the two waiter populations
	// have opposite predicates — waking a driver with a worker's Signal
	// (or vice versa) could strand the intended waiter.
	spaceCond *sync.Cond
	queues    [numPriorities][]*record
	records   map[string]*record
	// finished holds terminal records in completion order for pruning.
	finished []*record
	seq      int
	queuedN  int
	running  int
	started  bool
	closed   bool
	abort    bool
	stats    Stats
	// avgServiceNs is an exponential moving average of observed job
	// service times (start to finish), feeding the Retry-After hint on
	// admission-control rejections. Zero until the first job finishes.
	avgServiceNs float64

	// Pipeline state: records by ID, terminal records in completion
	// order for pruning, and the live count that keeps workers alive
	// through a graceful drain (a pipeline between waves has an empty
	// queue but more work coming).
	pipes        map[string]*pipelineRecord
	pipeFinished []*pipelineRecord
	pipeSeq      int
	activePipes  int
	pstats       PipelineStats

	wg sync.WaitGroup
	// pwg tracks pipeline driver goroutines; Shutdown waits for both.
	pwg sync.WaitGroup
}

// New validates cfg and returns the manager; the worker pool starts
// lazily on the first submission.
func New(cfg Config) (*Manager, error) {
	if cfg.Plans == nil {
		return nil, fmt.Errorf("jobs: Config.Plans is required")
	}
	if len(cfg.Systems) == 0 {
		cfg.Systems = hw.Systems()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = DefaultMaxRecords
	}
	if cfg.MaxPipelines <= 0 {
		cfg.MaxPipelines = DefaultMaxPipelines
	}
	m := &Manager{
		cfg:     cfg,
		systems: make(map[string]hw.System, len(cfg.Systems)),
		records: make(map[string]*record),
		pipes:   make(map[string]*pipelineRecord),
	}
	for _, sys := range cfg.Systems {
		if sys.Name == "" {
			return nil, fmt.Errorf("jobs: system with empty name")
		}
		if _, dup := m.systems[sys.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate system %q", sys.Name)
		}
		m.systems[sys.Name] = sys
	}
	m.cond = sync.NewCond(&m.mu)
	m.spaceCond = sync.NewCond(&m.mu)
	return m, nil
}

// startLocked spawns the worker pool on the first submission, so a
// manager that never receives a job (e.g. a server constructed only to
// mount its handler) costs no goroutines. Caller holds m.mu.
func (m *Manager) startLocked() {
	if m.started {
		return
	}
	m.started = true
	m.wg.Add(m.cfg.Workers)
	for i := 0; i < m.cfg.Workers; i++ {
		go m.worker()
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Submit validates spec and admits it into the queue. The returned
// snapshot is taken before any worker can pick the job up, so its state
// is always StateQueued. ErrQueueFull reports admission-control
// rejection; ErrClosed a manager already shutting down.
func (m *Manager) Submit(spec Spec) (Job, error) {
	if _, ok := m.systems[spec.System]; !ok {
		return Job{}, fmt.Errorf("jobs: unknown system %q", spec.System)
	}
	if err := spec.Inst.Validate(); err != nil {
		return Job{}, err
	}
	spec.Inst = spec.Inst.Normalize()
	// Detach from the caller's map: the spec outlives Submit inside the
	// record, and a caller mutating its map afterwards must not rewrite
	// the stored (documented-immutable) job.
	spec.AppParams = copyParams(spec.AppParams)
	if spec.Priority < 0 || spec.Priority >= numPriorities {
		return Job{}, fmt.Errorf("jobs: invalid priority %d", spec.Priority)
	}
	if spec.Refine && m.cfg.Tuners == nil {
		return Job{}, fmt.Errorf("jobs: refinement not configured (no tuner source)")
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	if m.queuedN >= m.cfg.QueueDepth {
		m.stats.Rejected++
		m.mu.Unlock()
		return Job{}, ErrQueueFull
	}
	m.startLocked()
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	rec := &record{
		id: fmt.Sprintf("job-%08d", m.seq), spec: spec,
		ctx: ctx, cancel: cancel, done: make(chan struct{}),
		state: StateQueued, created: time.Now(),
	}
	m.records[rec.id] = rec
	m.queues[spec.Priority] = append(m.queues[spec.Priority], rec)
	m.queuedN++
	m.stats.Submitted++
	snap := rec.snapshot()
	m.cond.Signal()
	m.mu.Unlock()
	// Logf runs outside the critical section: it may be arbitrarily slow
	// (or call back into the manager) without stalling the pool.
	m.logf("job %s queued: %s %s priority=%s refine=%t",
		rec.id, spec.System, spec.Inst, spec.Priority, spec.Refine)
	return snap, nil
}

// Get returns a snapshot of the job with the given ID.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.records[id]
	if !ok {
		return Job{}, false
	}
	return rec.snapshot(), true
}

// Await blocks until the job reaches a terminal state (or ctx is done)
// and returns its final snapshot.
func (m *Manager) Await(ctx context.Context, id string) (Job, error) {
	m.mu.Lock()
	rec, ok := m.records[id]
	m.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	select {
	case <-rec.done:
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return rec.snapshot(), nil
}

// List returns snapshots of the retained jobs matching f, in submission
// order.
func (m *Manager) List(f Filter) []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.records))
	for _, rec := range m.records {
		if f.State != nil && rec.state != *f.State {
			continue
		}
		if f.System != "" && rec.spec.System != f.System {
			continue
		}
		out = append(out, rec.snapshot())
	}
	// IDs are zero-padded sequence numbers, so lexicographic order is
	// submission order.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel cancels a job: a queued job is removed from the queue and
// finishes canceled immediately; a running job has its context canceled
// and finishes once the worker observes it (the returned snapshot then
// still reports StateRunning with CancelRequested set). Canceling an
// already finished job returns its snapshot with ErrFinished.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	rec, ok := m.records[id]
	if !ok {
		m.mu.Unlock()
		return Job{}, ErrNotFound
	}
	if rec.state.Finished() {
		snap := rec.snapshot()
		m.mu.Unlock()
		return snap, ErrFinished
	}
	msg := m.cancelRecordLocked(rec)
	snap := rec.snapshot()
	m.mu.Unlock()
	m.logf("job %s %s", rec.id, msg)
	return snap, nil
}

// cancelRecordLocked cancels a non-terminal job record: a queued job is
// removed from the queue and finishes canceled immediately (freeing its
// queue slot); a running job has its context canceled and finishes once
// the worker observes it. Caller holds m.mu and has checked the record
// is not finished.
func (m *Manager) cancelRecordLocked(rec *record) string {
	switch rec.state {
	case StateQueued:
		q := m.queues[rec.spec.Priority]
		for i, r := range q {
			if r == rec {
				m.queues[rec.spec.Priority] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		m.queuedN--
		m.spaceCond.Broadcast()
		rec.cancelRequested = true
		m.finishLocked(rec, StateCanceled, nil, "")
		return "canceled while queued"
	case StateRunning:
		rec.cancelRequested = true
		rec.cancel()
		return "cancellation requested"
	}
	return ""
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Queued = m.queuedN
	s.Running = m.running
	s.Workers = m.cfg.Workers
	s.QueueDepth = m.cfg.QueueDepth
	s.AvgServiceSec = m.avgServiceNs / 1e9
	return s
}

// Retry-After clamp range: never tell a client to come back in less
// than a second (sub-second hints round to zero in the integer header)
// or more than a minute (a longer hint is a guess, not a schedule).
const (
	minRetryAfter = time.Second
	maxRetryAfter = time.Minute
)

// RetryAfterHint derives the Retry-After value for a queue-full
// rejection from the observed average service time and the current
// backlog. A queue slot opens when the next running job completes —
// with every worker busy that is avgService/workers on average — and a
// backlog of queued jobs competing for readmission pushes the realistic
// horizon out proportionally, so the hint scales with queued/workers.
// The result is clamped to [1s, 60s] and rounded up to a whole second
// (the header carries integer seconds). With no observation yet
// (avgServiceNs <= 0) the hint is the minimum: an empty history means
// the queue filled before anything finished, and there is nothing
// better to say than "shortly".
func RetryAfterHint(avgServiceNs float64, queued, workers int) time.Duration {
	if avgServiceNs <= 0 || workers <= 0 {
		return minRetryAfter
	}
	est := time.Duration(avgServiceNs / float64(workers) * (1 + float64(queued)/float64(workers)))
	switch {
	case est < minRetryAfter:
		return minRetryAfter
	case est > maxRetryAfter:
		return maxRetryAfter
	}
	// Round up so the client never retries marginally too early.
	return (est + time.Second - 1).Truncate(time.Second)
}

// RetryAfter returns the current admission-control backoff hint (what
// the HTTP layer sends as Retry-After with a 429).
func (m *Manager) RetryAfter() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return RetryAfterHint(m.avgServiceNs, m.queuedN, m.cfg.Workers)
}

// finishLocked transitions a record into a terminal state (closing its
// done channel exactly once), updates the outcome counters and prunes
// old finished records beyond the retention bound. Caller holds m.mu.
func (m *Manager) finishLocked(rec *record, state State, res *Result, errMsg string) {
	rec.state = state
	rec.result = res
	rec.err = errMsg
	if state != StateCanceled {
		// A cancel request that lost the race to completion is moot; the
		// flag only means "cancellation still pending" while running.
		rec.cancelRequested = false
	}
	rec.finished = time.Now()
	if !rec.started.IsZero() {
		// Fold the observed service time into the moving average (jobs
		// canceled while still queued never started and carry no signal).
		dur := float64(rec.finished.Sub(rec.started))
		if m.avgServiceNs == 0 {
			m.avgServiceNs = dur
		} else {
			const alpha = 0.2
			m.avgServiceNs += alpha * (dur - m.avgServiceNs)
		}
	}
	rec.cancel() // release the context's resources
	close(rec.done)
	switch state {
	case StateSucceeded:
		m.stats.Succeeded++
		if rec.spec.Refine {
			m.stats.Refined++
		}
	case StateFailed:
		m.stats.Failed++
	case StateCanceled:
		m.stats.Canceled++
	}
	m.finished = append(m.finished, rec)
	for len(m.finished) > m.cfg.MaxRecords {
		old := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.records, old.id)
	}
}

// abortGrace bounds how long an aborted Shutdown waits for workers to
// observe their canceled contexts. Cancellation is cooperative: a
// worker stuck inside a non-cancelable stage (e.g. a lazy tuner
// training run inside the plan fetch) cannot react until that call
// returns, and Shutdown must not be held hostage by it.
const abortGrace = 2 * time.Second

// Shutdown stops admission and drains: workers finish their running
// jobs and keep working the queue until it is empty, and active
// pipelines keep admitting their remaining waves until they complete
// (the worker pool stays up for them). If ctx expires first, remaining
// queued jobs are canceled, running jobs' contexts are canceled (they
// finish canceled at their next cancellation point), active pipelines
// are canceled (their unstarted waves are skipped), and ctx's error is
// returned once the workers and drivers exit or an abortGrace period
// passes — a worker blocked in a non-cancelable call then finishes (and
// records its job's outcome) in the background.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.pwg.Wait()
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	m.mu.Lock()
	m.abort = true
	for pri := range m.queues {
		for _, rec := range m.queues[pri] {
			m.queuedN--
			rec.cancelRequested = true
			m.finishLocked(rec, StateCanceled, nil, "")
		}
		m.queues[pri] = nil
	}
	for _, rec := range m.records {
		if rec.state == StateRunning {
			rec.cancelRequested = true
			rec.cancel()
		}
	}
	// Pipelines observe the abort at their next barrier (or wave
	// submission); their running wave's jobs were just canceled above.
	for _, p := range m.pipes {
		if !p.state.Finished() {
			p.cancelRequested = true
		}
	}
	m.cond.Broadcast()
	m.spaceCond.Broadcast()
	m.mu.Unlock()
	select {
	case <-done:
	case <-time.After(abortGrace):
	}
	return ctx.Err()
}

// worker is the pool loop: pop the next job, run it, repeat until the
// manager shuts down and the queue is drained (or aborted).
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		rec := m.next()
		if rec == nil {
			return
		}
		m.run(rec)
	}
}

// next blocks until a job is available and marks it running. It returns
// nil when the manager is closed and the queue is empty, or immediately
// on abort.
func (m *Manager) next() *record {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.abort {
			return nil
		}
		for _, pri := range popOrder {
			if q := m.queues[pri]; len(q) > 0 {
				rec := q[0]
				m.queues[pri] = q[1:]
				m.queuedN--
				m.spaceCond.Broadcast()
				rec.state = StateRunning
				rec.started = time.Now()
				m.running++
				if m.cfg.Metrics != nil {
					observe(m.cfg.Metrics.QueueWaitSec, rec.started.Sub(rec.created))
				}
				return rec
			}
		}
		// A graceful drain must outlive pipelines between waves: their
		// queue is momentarily empty, but the driver is about to admit
		// the next wave, so workers only retire once no pipeline is
		// active (pipeline completion broadcasts cond).
		if m.closed && m.activePipes == 0 {
			return nil
		}
		m.cond.Wait()
	}
}

// run executes one job and records its outcome. When slow-job logging
// is on, the execution is wrapped in a job.execute span whose children
// (plan fetch, engine measure, refinement) are opened inside execute
// and jobs exceeding the SlowJob threshold log the whole tree; with it
// off the spans are no-ops, keeping the throughput path allocation-free.
func (m *Manager) run(rec *record) {
	startSpan := telemetry.StartSpan
	if m.cfg.SlowJob > 0 {
		startSpan = telemetry.StartRootSpan
	}
	ctx, span := startSpan(rec.ctx, "job.execute")
	if span != nil {
		span.Annotate("job_id", rec.id).
			Annotate("system", rec.spec.System).
			Annotate("priority", rec.spec.Priority)
		if rec.spec.RequestID != "" {
			span.Annotate("request_id", rec.spec.RequestID)
		}
	}
	t0 := time.Now()
	res, err := m.execute(ctx, rec)
	span.End()
	execDur := time.Since(t0)

	var msg string
	m.mu.Lock()
	m.running--
	if m.cfg.Metrics != nil {
		observe(m.cfg.Metrics.ExecSec, execDur)
	}
	switch {
	case err == nil:
		// A completed execution wins over a cancellation that raced in
		// after the work (and its side effects, e.g. the training-log
		// append) already happened: cancel is best-effort.
		m.finishLocked(rec, StateSucceeded, res, "")
		msg = fmt.Sprintf("job %s succeeded: %s measured %.3gs (%s)",
			rec.id, res.Par, res.MeasuredNs/1e9, res.Cache)
	case rec.ctx.Err() != nil:
		// The context is only ever canceled by Cancel or an aborted
		// drain, so an error with a done context means the execution was
		// cut short deliberately. Keep any unrelated failure visible in
		// the log — it may be persistent and matter beyond this job.
		m.finishLocked(rec, StateCanceled, nil, "")
		if errors.Is(err, context.Canceled) {
			msg = fmt.Sprintf("job %s canceled while running", rec.id)
		} else {
			msg = fmt.Sprintf("job %s canceled while running (execution also returned: %v)", rec.id, err)
		}
	default:
		m.finishLocked(rec, StateFailed, nil, err.Error())
		msg = fmt.Sprintf("job %s failed: %v", rec.id, err)
	}
	m.mu.Unlock()
	m.logf("%s", msg)
	if m.cfg.SlowJob > 0 && execDur >= m.cfg.SlowJob {
		m.logf("job %s slow (%.3fs >= %.3fs):\n%s",
			rec.id, execDur.Seconds(), m.cfg.SlowJob.Seconds(), span.Render())
	}
}

// measure runs one modeled engine execution, feeding its duration to
// the EngineSec histogram (when configured) alongside the engine.measure
// span MeasureStepsNsCtx attaches to ctx.
func (m *Manager) measure(ctx context.Context, sys hw.System, inst plan.Instance, serial bool, par plan.Params) (float64, int, error) {
	t0 := time.Now()
	ns, steps, err := engine.MeasureStepsNsCtx(ctx, sys, inst, serial, par)
	if m.cfg.Metrics != nil {
		observe(m.cfg.Metrics.EngineSec, time.Since(t0))
	}
	return ns, steps, err
}

// execute runs the job body: fetch the tuned plan, optionally refine it
// online, and measure the execution on the modeled system. The record's
// context is checked between stages (and, during refinement, between
// probes) for cooperative cancellation; ctx additionally carries the
// job.execute span the stages below attach to.
func (m *Manager) execute(ctx context.Context, rec *record) (*Result, error) {
	spec := rec.spec
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	_, fetchSpan := telemetry.StartSpan(ctx, "plan.fetch")
	p, outcome, err := m.cfg.Plans(spec.System, spec.Inst)
	fetchSpan.Annotate("outcome", outcome).End()
	if err != nil {
		return nil, fmt.Errorf("fetching plan: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{
		Serial: p.Serial, Par: p.Par, Cache: outcome.String(),
		PredictedNs: p.RTimeNs, SerialNs: p.SerialNs,
	}
	sys := m.systems[spec.System]

	if !spec.Refine {
		ns, steps, err := m.measure(ctx, sys, spec.Inst, p.Serial, p.Par)
		if err != nil {
			return nil, fmt.Errorf("executing: %w", err)
		}
		res.MeasuredNs = ns
		res.Steps = steps
		return res, nil
	}

	tuner, err := m.cfg.Tuners(spec.System)
	if err != nil {
		return nil, fmt.Errorf("resolving tuner: %w", err)
	}
	online := &core.OnlineTuner{Base: tuner, Budget: m.cfg.RefineBudget}
	// Refine the cached decision itself (no second offline predict), so
	// the reported Cache/PredictedNs always describe the configuration
	// the refinement actually started from.
	refineCtx, refineSpan := telemetry.StartSpan(ctx, "job.refine")
	pred, st, err := online.RefineDecisionContext(refineCtx, spec.Inst,
		core.Prediction{Serial: p.Serial, Par: p.Par}, p.SerialNs)
	refineSpan.End()
	if err != nil {
		return nil, fmt.Errorf("refining: %w", err)
	}
	refineSpan.Annotate("probes", st.Probes)
	res.Serial, res.Par = pred.Serial, pred.Par
	res.MeasuredNs = st.FinalNs
	res.Refine = &st
	// Step accounting for the refined configuration; the measured time
	// stays the refinement's own, only the schedule's step count is
	// taken (a failure leaves Steps 0 = unknown rather than failing a
	// job that already measured successfully).
	if _, steps, serr := m.measure(ctx, sys, spec.Inst, pred.Serial, pred.Par); serr == nil {
		res.Steps = steps
	}

	// Feedback: persist the measured configuration for retraining.
	// Serial outcomes are skipped — the baseline is not a search point,
	// so logging it would mislabel the training row.
	if m.cfg.TrainingLog != nil && !pred.Serial {
		obs := core.Observation{Inst: spec.Inst, Par: pred.Par, RTimeNs: st.FinalNs, App: spec.App}
		if lerr := m.cfg.TrainingLog.Append(spec.System, obs); lerr != nil {
			m.logf("job %s: training-log append failed: %v", rec.id, lerr)
		} else {
			m.mu.Lock()
			m.stats.TrainingRows++
			m.mu.Unlock()
			if m.cfg.OnObservation != nil {
				m.cfg.OnObservation(spec.System)
			}
		}
	}
	return res, nil
}

package jobs

import (
	"context"
	"strings"
	"testing"
)

// TestPipelineValidation is the table of every rejection reason:
// malformed specs must answer an error naming the defect — never panic,
// never reach the queue.
func TestPipelineValidation(t *testing.T) {
	m := newManager(t, Config{QueueDepth: 4})
	ok := pipeJob(100)

	wide := WaveSpec{} // wider than the queue depth
	for i := 0; i < 5; i++ {
		wide.Jobs = append(wide.Jobs, pipeJob(100+i))
	}
	var long []WaveSpec // more waves than MaxPipelineWaves
	for i := 0; i <= MaxPipelineWaves; i++ {
		long = append(long, wave(pipeJob(100)))
	}

	cases := []struct {
		name string
		spec PipelineSpec
		want string
	}{
		{"no waves", PipelineSpec{}, "at least one wave"},
		{"too many waves", PipelineSpec{Waves: long}, "the limit is"},
		{"empty wave", PipelineSpec{Waves: []WaveSpec{{Name: "w"}}}, "has no jobs"},
		{"oversized wave", PipelineSpec{Waves: []WaveSpec{wide}}, "queue depth"},
		{"duplicate wave names", PipelineSpec{Waves: []WaveSpec{
			{Name: "w", Jobs: []PipelineJob{ok}},
			{Name: "w", Jobs: []PipelineJob{pipeJob(200)}},
		}}, "duplicate wave name"},
		{"self dependency", PipelineSpec{Waves: []WaveSpec{
			{Name: "w", After: []string{"w"}, Jobs: []PipelineJob{ok}},
		}}, "cycle or unknown"},
		{"forward dependency", PipelineSpec{Waves: []WaveSpec{
			{Name: "a", After: []string{"b"}, Jobs: []PipelineJob{ok}},
			{Name: "b", Jobs: []PipelineJob{pipeJob(200)}},
		}}, "cycle or unknown"},
		{"unknown dependency", PipelineSpec{Waves: []WaveSpec{
			{Name: "a", Jobs: []PipelineJob{ok}},
			{Name: "b", After: []string{"ghost"}, Jobs: []PipelineJob{pipeJob(200)}},
		}}, "cycle or unknown"},
		{"duplicate job names", PipelineSpec{Waves: []WaveSpec{
			{Jobs: []PipelineJob{{Name: "j", Spec: ok.Spec}}},
			{Jobs: []PipelineJob{{Name: "j", Spec: pipeJob(200).Spec}}},
		}}, "duplicate job name"},
		{"invalid policy", PipelineSpec{Waves: []WaveSpec{
			{Policy: FailurePolicy(9), Jobs: []PipelineJob{ok}},
		}}, "invalid failure policy"},
		{"negative retry budget", PipelineSpec{Waves: []WaveSpec{
			{Policy: PolicyRetry, RetryBudget: -1, Jobs: []PipelineJob{ok}},
		}}, "negative retry budget"},
		{"retry without budget", PipelineSpec{Waves: []WaveSpec{
			{Policy: PolicyRetry, Jobs: []PipelineJob{ok}},
		}}, "positive retry budget"},
		{"budget without retry", PipelineSpec{Waves: []WaveSpec{
			{Policy: PolicyContinue, RetryBudget: 2, Jobs: []PipelineJob{ok}},
		}}, "requires the retry policy"},
		{"unknown system", PipelineSpec{Waves: []WaveSpec{
			wave(PipelineJob{Spec: Spec{System: "riscv", Inst: testInst(100)}}),
		}}, "unknown system"},
		{"invalid instance", PipelineSpec{Waves: []WaveSpec{
			wave(PipelineJob{Spec: Spec{System: "i7-2600K"}}),
		}}, ""},
		{"invalid priority", PipelineSpec{Waves: []WaveSpec{
			wave(PipelineJob{Spec: Spec{System: "i7-2600K", Inst: testInst(100), Priority: 99}}),
		}}, "invalid priority"},
		{"refine without tuner source", PipelineSpec{Waves: []WaveSpec{
			wave(PipelineJob{Spec: Spec{System: "i7-2600K", Inst: testInst(100), Refine: true}}),
		}}, "refinement not configured"},
	}
	for _, tc := range cases {
		_, err := m.SubmitPipeline(tc.spec)
		if err == nil {
			t.Errorf("%s: spec accepted", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Nothing above may have touched the queue or the counters, and the
	// manager must still work.
	if ps := m.PipelineStats(); ps.Submitted != 0 || ps.Active != 0 {
		t.Errorf("rejected specs leaked into the stats: %+v", ps)
	}
	if st := m.Stats(); st.Submitted != 0 {
		t.Errorf("rejected specs leaked jobs into the queue: %+v", st)
	}
	snap, err := m.SubmitPipeline(PipelineSpec{Waves: []WaveSpec{wave(pipeJob(100))}})
	if err != nil {
		t.Fatalf("well-formed spec after rejections: %v", err)
	}
	if p := awaitPipe(t, m, snap.ID); p.State != PipeSucceeded {
		t.Errorf("pipeline after rejections = %v, want succeeded", p.State)
	}
}

// fuzzSpecFromBytes deterministically decodes arbitrary fuzz input into
// a PipelineSpec, deliberately covering the malformed corners: bogus
// names, dependencies, policies, budgets, systems, dims and priorities.
func fuzzSpecFromBytes(data []byte) PipelineSpec {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	// Mostly-valid choices with deliberate malformed corners, so both
	// acceptance and every rejection branch stay reachable.
	waveNames := []string{"", "a", "b", "c", "d", "e", "f", "a"} // trailing duplicate
	jobNames := []string{"", "", "", "j1", "j2", "j3", "j4", "j1"}
	systems := []string{"i7-2600K", "i7-2600K", "i7-2600K", "i7-2600K",
		"i7-2600K", "i7-2600K", "riscv", ""}
	deps := []string{"wave-0", "a", "ghost", "z"}
	// (policy, budget) pairs: legal combinations dominate, every
	// illegal pairing represented.
	policies := []FailurePolicy{PolicyAbort, PolicyAbort, PolicyContinue,
		PolicyRetry, PolicyRetry, PolicyAbort, PolicyRetry, FailurePolicy(9)}
	budgets := []int{0, 0, 0, 1, 2, 3 /* abort w/ budget */, 0 /* retry w/o */, 0}

	var spec PipelineSpec
	nWaves := int(next() % 5) // 0 waves is a valid malformation
	for wi := 0; wi < nWaves; wi++ {
		pick := next() % 8
		w := WaveSpec{
			Name:        waveNames[next()%8],
			Policy:      policies[pick],
			RetryBudget: budgets[pick],
		}
		// Every malformation gate fires on a non-zero residue, so inputs
		// shorter than the spec they describe decode to valid defaults
		// instead of tripping every corner at once.
		if next()%4 == 1 {
			w.After = append(w.After, deps[next()%4])
		}
		nJobs := 1 + int(next()%3)
		if next()%8 == 7 {
			nJobs = 0 // empty wave corner
		}
		for ji := 0; ji < nJobs; ji++ {
			dim := 64 + int(next())*4
			if next()%8 == 7 {
				dim = int(next()) - 128 // zero/negative dim corner
			}
			pri := Priority(next() % 3)
			if next()%8 == 7 {
				pri = Priority(int(next()) - 128) // invalid priority corner
			}
			w.Jobs = append(w.Jobs, PipelineJob{
				Name: jobNames[next()%8],
				Spec: Spec{
					System:   systems[next()%8],
					Inst:     testInst(dim),
					Priority: pri,
					Refine:   next()%8 == 7,
				},
			})
		}
		spec.Waves = append(spec.Waves, w)
	}
	return spec
}

// FuzzPipelineValidate throws arbitrary byte-derived specs at
// validation: it must never panic, and whatever it accepts must come
// back fully normalized (non-empty unique names, clean policy/budget
// pairs, earlier-wave dependencies only).
func FuzzPipelineValidate(f *testing.F) {
	m, err := New(Config{QueueDepth: 8, Plans: fixedPlan})
	if err != nil {
		f.Fatal(err)
	}
	// Validation only — nothing is submitted, so a plain Shutdown
	// drains instantly.
	f.Cleanup(func() { m.Shutdown(context.Background()) })

	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 2, 0, 1, 1, 0, 30, 1, 0})
	f.Add([]byte{2, 1, 0, 0, 0, 1, 1, 0, 30, 1, 0, 2, 0, 0, 1, 0, 2, 2, 1, 40, 2, 0})
	f.Add([]byte{3, 3, 4, 4, 3, 2, 1, 1, 255, 0, 16, 3, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := fuzzSpecFromBytes(data)
		norm, err := m.validatePipeline(spec)
		if err != nil {
			return // rejected is always a legal outcome for garbage
		}
		// Accepted: the normalized spec must satisfy the invariants the
		// scheduler depends on.
		if len(norm.Waves) == 0 || len(norm.Waves) > MaxPipelineWaves {
			t.Fatalf("accepted %d waves", len(norm.Waves))
		}
		waveIdx := map[string]int{}
		jobSeen := map[string]bool{}
		for wi, w := range norm.Waves {
			if w.Name == "" {
				t.Fatalf("wave %d: empty normalized name", wi)
			}
			if _, dup := waveIdx[w.Name]; dup {
				t.Fatalf("wave %d: duplicate name %q survived", wi, w.Name)
			}
			waveIdx[w.Name] = wi
			for _, dep := range w.After {
				di, known := waveIdx[dep]
				if !known || di >= wi {
					t.Fatalf("wave %d: dependency %q not strictly earlier", wi, dep)
				}
			}
			if w.Policy < 0 || w.Policy >= numFailurePolicies {
				t.Fatalf("wave %d: policy %d survived", wi, w.Policy)
			}
			if (w.Policy == PolicyRetry) != (w.RetryBudget > 0) {
				t.Fatalf("wave %d: policy %v with budget %d survived", wi, w.Policy, w.RetryBudget)
			}
			if len(w.Jobs) == 0 || len(w.Jobs) > m.cfg.QueueDepth {
				t.Fatalf("wave %d: %d jobs survived", wi, len(w.Jobs))
			}
			for ji, j := range w.Jobs {
				if j.Name == "" {
					t.Fatalf("wave %d job %d: empty normalized name", wi, ji)
				}
				if jobSeen[j.Name] {
					t.Fatalf("wave %d job %d: duplicate name %q survived", wi, ji, j.Name)
				}
				jobSeen[j.Name] = true
				if err := j.Spec.Inst.Validate(); err != nil {
					t.Fatalf("wave %d job %d: invalid instance survived: %v", wi, ji, err)
				}
				if j.Spec.Priority < 0 || j.Spec.Priority >= numPriorities {
					t.Fatalf("wave %d job %d: priority %d survived", wi, ji, j.Spec.Priority)
				}
				if j.Spec.Refine {
					t.Fatalf("wave %d job %d: refine survived with no tuner source", wi, ji)
				}
			}
		}
		// Normalization must not alias the caller's spec: scribbling on
		// the input after validation must not reach the copy.
		if len(spec.Waves) > 0 && len(spec.Waves[0].Jobs) > 0 {
			before := norm.Waves[0].Jobs[0].Name
			spec.Waves[0].Jobs[0].Name = "scribbled"
			if norm.Waves[0].Jobs[0].Name != before {
				t.Fatal("normalized spec aliases the caller's jobs slice")
			}
		}
	})
}

// TestFuzzSeedsSmoke pins the decoder itself: the seed corpus must
// exercise both accepted and rejected shapes, so the fuzz target keeps
// meaning something if the decoder drifts.
func TestFuzzSeedsSmoke(t *testing.T) {
	m := newManager(t, Config{QueueDepth: 8})
	accepted, rejected := 0, 0
	for i := 0; i < 256; i++ {
		data := []byte{byte(i), byte(i * 7), byte(i * 13), byte(i * 29), byte(i * 31),
			byte(i * 37), byte(i * 41), byte(i * 43), byte(i * 47), byte(i * 53)}
		if _, err := m.validatePipeline(fuzzSpecFromBytes(data)); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Errorf("decoder lost its reach: %d accepted, %d rejected of 256", accepted, rejected)
	}
}

package jobs

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// pipelineRecord is one pipeline's mutable state. All fields except the
// immutable id/spec are guarded by the manager's mutex; done closes
// exactly when the record reaches a terminal state.
type pipelineRecord struct {
	id   string
	spec PipelineSpec
	done chan struct{}

	state           PipelineState
	waveIdx         int
	cancelRequested bool
	err             string
	created         time.Time
	started         time.Time
	finished        time.Time
	waves           []*waveRecord
}

// waveRecord tracks one wave's attempts. Guarded by the manager's
// mutex.
type waveRecord struct {
	state       WaveState
	retriesUsed int
	failed      int
	// jobIDs lists every attempt in submission order; jobs holds the
	// matching records of the current round, so cancellation can reach
	// them without a map lookup.
	jobIDs []string
	jobs   []*record
}

// applyLocked drives the record through the state machine; an illegal
// transition is a scheduler bug, not an input error, so it panics.
// Caller holds the manager's mutex.
func (p *pipelineRecord) applyLocked(e PipelineEvent) {
	next, ok := PipelineTransition(p.state, e)
	if !ok {
		panic(fmt.Sprintf("jobs: illegal pipeline transition %v --%v-->", p.state, e))
	}
	p.state = next
}

// snapshot copies the record into an immutable Pipeline. Caller holds
// the manager's mutex.
func (p *pipelineRecord) snapshot() Pipeline {
	snap := Pipeline{
		ID: p.id, Name: p.spec.Name, State: p.state, Wave: p.waveIdx,
		CancelRequested: p.cancelRequested, Err: p.err,
		Created: p.created, Started: p.started, Finished: p.finished,
		Waves:     make([]PipelineWave, len(p.waves)),
		RequestID: p.spec.RequestID,
	}
	for i, w := range p.waves {
		ws := p.spec.Waves[i]
		snap.Waves[i] = PipelineWave{
			Name: ws.Name, State: w.state,
			Policy: ws.Policy, RetryBudget: ws.RetryBudget,
			RetriesUsed: w.retriesUsed, Failed: w.failed,
			JobIDs: append([]string(nil), w.jobIDs...),
		}
	}
	return snap
}

// SubmitPipeline validates spec and admits it. The returned snapshot is
// taken before the driver can admit the first wave, so its state is
// always PipeQueued. ErrQueueFull reports too many active pipelines;
// ErrClosed a manager already shutting down; any other error a
// malformed spec that never entered the system.
func (m *Manager) SubmitPipeline(spec PipelineSpec) (Pipeline, error) {
	norm, err := m.validatePipeline(spec)
	if err != nil {
		return Pipeline{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Pipeline{}, ErrClosed
	}
	if m.activePipes >= m.cfg.MaxPipelines {
		m.pstats.Rejected++
		m.mu.Unlock()
		return Pipeline{}, ErrQueueFull
	}
	m.startLocked()
	m.pipeSeq++
	p := &pipelineRecord{
		id: fmt.Sprintf("pipe-%08d", m.pipeSeq), spec: norm,
		done: make(chan struct{}), state: PipeQueued, created: time.Now(),
		waves: make([]*waveRecord, len(norm.Waves)),
	}
	for i := range p.waves {
		p.waves[i] = &waveRecord{state: WavePending}
	}
	m.pipes[p.id] = p
	m.activePipes++
	m.pstats.Submitted++
	snap := p.snapshot()
	m.pwg.Add(1)
	go m.runPipeline(p)
	m.mu.Unlock()
	m.logf("pipeline %s queued: %q, %d wave(s)", p.id, norm.Name, len(norm.Waves))
	return snap, nil
}

// GetPipeline returns a snapshot of the pipeline with the given ID.
func (m *Manager) GetPipeline(id string) (Pipeline, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pipes[id]
	if !ok {
		return Pipeline{}, false
	}
	return p.snapshot(), true
}

// AwaitPipeline blocks until the pipeline reaches a terminal state (or
// ctx is done) and returns its final snapshot.
func (m *Manager) AwaitPipeline(ctx context.Context, id string) (Pipeline, error) {
	m.mu.Lock()
	p, ok := m.pipes[id]
	m.mu.Unlock()
	if !ok {
		return Pipeline{}, ErrNotFound
	}
	select {
	case <-p.done:
	case <-ctx.Done():
		return Pipeline{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return p.snapshot(), nil
}

// ListPipelines returns snapshots of the retained pipelines matching f,
// in submission order.
func (m *Manager) ListPipelines(f PipelineFilter) []Pipeline {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Pipeline, 0, len(m.pipes))
	for _, p := range m.pipes {
		if f.State != nil && p.state != *f.State {
			continue
		}
		out = append(out, p.snapshot())
	}
	// IDs are zero-padded sequence numbers, so lexicographic order is
	// submission order.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CancelPipeline cancels a pipeline: the running wave's unfinished jobs
// are canceled cooperatively, unstarted waves are skipped, and the
// pipeline finishes PipeCanceled once the driver observes the request
// (the returned snapshot may still report a non-terminal state with
// CancelRequested set). Canceling an already finished pipeline returns
// its snapshot with ErrFinished.
func (m *Manager) CancelPipeline(id string) (Pipeline, error) {
	m.mu.Lock()
	p, ok := m.pipes[id]
	if !ok {
		m.mu.Unlock()
		return Pipeline{}, ErrNotFound
	}
	if p.state.Finished() {
		snap := p.snapshot()
		m.mu.Unlock()
		return snap, ErrFinished
	}
	p.cancelRequested = true
	if p.state == PipeWaveRunning {
		for _, rec := range p.waves[p.waveIdx].jobs {
			if !rec.state.Finished() {
				m.cancelRecordLocked(rec)
			}
		}
	}
	// Wake a driver waiting for queue space; it re-checks the request.
	m.spaceCond.Broadcast()
	snap := p.snapshot()
	m.mu.Unlock()
	m.logf("pipeline %s cancellation requested (%s)", p.id, snap.State)
	return snap, nil
}

// PrunePipelines drops every finished pipeline record and returns how
// many were removed. The wave jobs' own records remain subject to the
// ordinary job retention bound.
func (m *Manager) PrunePipelines() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.pipeFinished)
	for _, p := range m.pipeFinished {
		delete(m.pipes, p.id)
	}
	m.pipeFinished = m.pipeFinished[:0]
	return n
}

// PipelineStats returns a snapshot of the pipeline counters.
func (m *Manager) PipelineStats() PipelineStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.pstats
	s.Active = m.activePipes
	s.MaxActive = m.cfg.MaxPipelines
	return s
}

// finishPipelineLocked transitions a pipeline into a terminal state via
// e (closing its done channel exactly once), marks unstarted waves
// skipped, updates the counters and prunes old finished records beyond
// the retention bound. Caller holds m.mu.
func (m *Manager) finishPipelineLocked(p *pipelineRecord, e PipelineEvent, errMsg string) {
	p.applyLocked(e)
	p.err = errMsg
	p.finished = time.Now()
	for _, w := range p.waves {
		if w.state == WavePending {
			w.state = WaveSkipped
		}
	}
	close(p.done)
	switch p.state {
	case PipeSucceeded:
		m.pstats.Succeeded++
	case PipeFailed:
		m.pstats.Failed++
	case PipeCanceled:
		m.pstats.Canceled++
	}
	m.activePipes--
	m.pipeFinished = append(m.pipeFinished, p)
	for len(m.pipeFinished) > m.cfg.MaxRecords {
		old := m.pipeFinished[0]
		m.pipeFinished = m.pipeFinished[1:]
		delete(m.pipes, old.id)
	}
	if m.closed && m.activePipes == 0 {
		// The last drain obstacle is gone; idle workers may retire.
		m.cond.Broadcast()
	}
}

// runPipeline is the driver goroutine: admit each wave in order, wait
// at its barrier, apply the failure policy, and record the terminal
// outcome. Cancellation is observed at every barrier and before every
// wave admission.
func (m *Manager) runPipeline(p *pipelineRecord) {
	defer m.pwg.Done()
	// The pipeline's span tree: one pipeline.run root with a
	// pipeline.wave child per barrier interval. Wave durations (queue-
	// space wait + execution + barrier) feed the WaveSec histogram; a
	// pipeline outliving the SlowJob threshold logs the whole tree. The
	// tree only materializes when SlowJob is set — nothing else reads
	// it, so with slow-job logging off the spans stay nil no-ops.
	startSpan := telemetry.StartSpan
	if m.cfg.SlowJob > 0 {
		startSpan = telemetry.StartRootSpan
	}
	spanCtx, pipeSpan := startSpan(context.Background(), "pipeline.run")
	if pipeSpan != nil {
		pipeSpan.Annotate("pipeline_id", p.id).Annotate("name", p.spec.Name)
		if p.spec.RequestID != "" {
			pipeSpan.Annotate("request_id", p.spec.RequestID)
		}
	}
	t0 := time.Now()
	defer func() {
		pipeSpan.End()
		if dur := time.Since(t0); m.cfg.SlowJob > 0 && dur >= m.cfg.SlowJob {
			m.logf("pipeline %s slow (%.3fs >= %.3fs):\n%s",
				p.id, dur.Seconds(), m.cfg.SlowJob.Seconds(), pipeSpan.Render())
		}
	}()
	for wi := range p.spec.Waves {
		m.mu.Lock()
		if p.cancelRequested || m.abort {
			m.finishPipelineLocked(p, PipeEvCancel, "")
			m.mu.Unlock()
			m.logf("pipeline %s canceled before wave %d", p.id, wi)
			return
		}
		p.waveIdx = wi
		p.applyLocked(PipeEvAdmit)
		if wi == 0 {
			p.started = time.Now()
		}
		p.waves[wi].state = WaveRunning
		m.mu.Unlock()
		m.logf("pipeline %s wave %d/%d (%s): %d job(s)",
			p.id, wi+1, len(p.spec.Waves), p.spec.Waves[wi].Name, len(p.spec.Waves[wi].Jobs))

		_, waveSpan := telemetry.StartSpan(spanCtx, "pipeline.wave")
		waveSpan.Annotate("wave", p.spec.Waves[wi].Name).
			Annotate("jobs", len(p.spec.Waves[wi].Jobs))
		wt := time.Now()
		ok, errMsg := m.runWave(p, wi)
		waveSpan.End()
		if m.cfg.Metrics != nil {
			observe(m.cfg.Metrics.WaveSec, time.Since(wt))
		}

		m.mu.Lock()
		if p.cancelRequested || m.abort {
			p.waves[wi].state = WaveCanceled
			m.finishPipelineLocked(p, PipeEvCancel, "")
			m.mu.Unlock()
			m.logf("pipeline %s canceled during wave %d", p.id, wi)
			return
		}
		if !ok {
			p.waves[wi].state = WaveFailed
			m.finishPipelineLocked(p, PipeEvWaveFailed,
				fmt.Sprintf("wave %d (%s): %s", wi, p.spec.Waves[wi].Name, errMsg))
			m.mu.Unlock()
			m.logf("pipeline %s failed at wave %d: %s", p.id, wi, errMsg)
			return
		}
		p.waves[wi].state = WaveResolved
		p.applyLocked(PipeEvWaveResolved)
		m.pstats.WavesResolved++
		m.mu.Unlock()
	}
	m.mu.Lock()
	if p.cancelRequested || m.abort {
		// The cancel landed exactly on the last barrier: honor it —
		// terminal means what the caller was told.
		m.finishPipelineLocked(p, PipeEvCancel, "")
		m.mu.Unlock()
		m.logf("pipeline %s canceled at the final barrier", p.id)
		return
	}
	m.finishPipelineLocked(p, PipeEvFinish, "")
	m.mu.Unlock()
	m.logf("pipeline %s succeeded", p.id)
}

// runWave submits one wave's jobs, waits for all of them at the
// barrier, and applies the failure policy (retry rounds included). It
// reports whether the wave resolved; on false, errMsg explains the
// failure. A pipeline cancellation or manager abort surfaces as
// (false, "") — the caller checks the flags itself.
func (m *Manager) runWave(p *pipelineRecord, wi int) (bool, string) {
	wave := p.spec.Waves[wi]
	wr := p.waves[wi]
	round := wave.Jobs
	for {
		recs, err := m.submitWaveRound(p, wr, round)
		if err != nil {
			return false, err.Error()
		}
		// The barrier: every attempt of this round must reach a terminal
		// state. Jobs canceled or aborted away still close done, so the
		// wait cannot wedge.
		for _, rec := range recs {
			<-rec.done
		}

		m.mu.Lock()
		canceled := p.cancelRequested || m.abort
		var failedJobs []PipelineJob
		var firstErr string
		for i, rec := range recs {
			if rec.state != StateSucceeded {
				failedJobs = append(failedJobs, round[i])
				if firstErr == "" {
					firstErr = fmt.Sprintf("job %q (%s) %s", round[i].Name, rec.id, rec.state)
					if rec.err != "" {
						firstErr += ": " + rec.err
					}
				}
			}
		}
		wr.failed = len(failedJobs)
		m.mu.Unlock()

		switch {
		case canceled:
			return false, ""
		case len(failedJobs) == 0:
			return true, ""
		}
		switch wave.Policy {
		case PolicyContinue:
			// The wave resolves with its failures on record.
			return true, ""
		case PolicyRetry:
			m.mu.Lock()
			budgetLeft := wave.RetryBudget - wr.retriesUsed
			retrying := budgetLeft >= len(failedJobs)
			if retrying {
				wr.retriesUsed += len(failedJobs)
				m.pstats.JobRetries += uint64(len(failedJobs))
			}
			m.mu.Unlock()
			if !retrying {
				return false, fmt.Sprintf("retry budget exhausted (%d/%d used, %d job(s) still failing; first: %s)",
					wr.retriesUsed, wave.RetryBudget, len(failedJobs), firstErr)
			}
			m.logf("pipeline %s wave %d: retrying %d failed job(s)", p.id, wi, len(failedJobs))
			round = failedJobs
		default: // PolicyAbort
			return false, fmt.Sprintf("%d of %d job(s) did not succeed (first: %s)",
				len(failedJobs), len(recs), firstErr)
		}
	}
}

// submitWaveRound admits one round of wave jobs into the ordinary
// queue, waiting for queue space as needed (a wave never exceeds the
// queue depth by validation, but concurrent pipelines and direct
// submissions share the slots). Unlike Submit it runs during a graceful
// drain — a closed manager still owes its admitted pipelines their
// remaining waves — but not past an abort. The returned records align
// index-for-index with round.
func (m *Manager) submitWaveRound(p *pipelineRecord, wr *waveRecord, round []PipelineJob) ([]*record, error) {
	recs := make([]*record, 0, len(round))
	m.mu.Lock()
	// Fresh round, fresh cancellation targets: completed attempts of
	// earlier rounds no longer need cancel reach.
	wr.jobs = wr.jobs[:0]
	for _, pj := range round {
		for m.queuedN >= m.cfg.QueueDepth {
			if m.abort || p.cancelRequested {
				m.mu.Unlock()
				return nil, ErrClosed
			}
			m.spaceCond.Wait()
		}
		if m.abort {
			m.mu.Unlock()
			return nil, ErrClosed
		}
		if p.cancelRequested {
			// Stop admitting; already submitted attempts of this round
			// were canceled by CancelPipeline (or will finish on their
			// own) and the caller re-checks the flag after the barrier.
			m.mu.Unlock()
			return recs, nil
		}
		m.seq++
		ctx, cancel := context.WithCancel(context.Background())
		rec := &record{
			id: fmt.Sprintf("job-%08d", m.seq), spec: pj.Spec,
			ctx: ctx, cancel: cancel, done: make(chan struct{}),
			state: StateQueued, created: time.Now(),
		}
		m.records[rec.id] = rec
		m.queues[pj.Spec.Priority] = append(m.queues[pj.Spec.Priority], rec)
		m.queuedN++
		m.stats.Submitted++
		wr.jobIDs = append(wr.jobIDs, rec.id)
		wr.jobs = append(wr.jobs, rec)
		recs = append(recs, rec)
		m.cond.Signal()
	}
	m.mu.Unlock()
	return recs, nil
}

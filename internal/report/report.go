// Package report renders experiment data as aligned ASCII tables, ASCII
// heatmaps and violins, and CSV — the textual equivalents of the paper's
// figures that cmd/waverepro and the benchmark harness print.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range width {
		_ = i
		b.WriteString(strings.Repeat("-", w+2))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// heatRamp maps normalized [0,1] values to a density ramp.
var heatRamp = []byte(" .:-=+*#%@")

// RenderHeatmap draws a heatmap as ASCII art with row/column labels and a
// numeric legend; missing cells print as '?' and negative sentinel values
// (the paper's band=-1 / halo=-1) as '<'.
func RenderHeatmap(h *stats.Heatmap, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	// Scale over non-sentinel values.
	lo, hi := 0.0, 0.0
	first := true
	for _, r := range h.RowLabels {
		for _, c := range h.ColLabels {
			v, ok := h.Get(r, c)
			if !ok || v < 0 {
				continue
			}
			if first {
				lo, hi = v, v
				first = false
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	// Rows print top-down from the largest label, like the paper's dim
	// axis.
	rows := append([]int(nil), h.RowLabels...)
	sort.Sort(sort.Reverse(sort.IntSlice(rows)))
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d |", r)
		for _, c := range h.ColLabels {
			v, ok := h.Get(r, c)
			switch {
			case !ok:
				b.WriteString("  ?")
			case v < 0:
				b.WriteString("  <")
			default:
				idx := 0
				if span > 0 {
					idx = int((v - lo) / span * float64(len(heatRamp)-1))
				}
				fmt.Fprintf(&b, "  %c", heatRamp[idx])
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("       +")
	for range h.ColLabels {
		b.WriteString("---")
	}
	b.WriteString("\n        ")
	for _, c := range h.ColLabels {
		lbl := fmt.Sprintf("%d", c)
		if len(lbl) > 2 {
			lbl = lbl[:2]
		}
		fmt.Fprintf(&b, "%3s", lbl)
	}
	fmt.Fprintf(&b, "\n  legend: '<' = -1 (not used), ' '..'@' = %.3g..%.3g\n", lo, hi)
	return b.String()
}

// RenderViolin draws a sideways violin: quartile markers over a density
// profile, as a textual stand-in for the paper's Figure 8.
func RenderViolin(v stats.Violin, title string, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d)\n", title, v.N)
	if v.N == 0 {
		return b.String()
	}
	maxD := 0.0
	for _, d := range v.Density {
		if d > maxD {
			maxD = d
		}
	}
	for i, d := range v.Density {
		bar := 0
		if maxD > 0 {
			bar = int(d / maxD * float64(width))
		}
		marker := " "
		x := v.Grid[i]
		step := (v.MaxV - v.Min) / float64(len(v.Grid)-1)
		switch {
		case within(x, v.Med, step/2):
			marker = "o" // the paper's white median dot
		case within(x, v.Q1, step/2), within(x, v.Q3, step/2):
			marker = "+"
		}
		fmt.Fprintf(&b, "%10.3g %s %s\n", x, marker, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&b, "  min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g sd=%.3g\n",
		v.Min, v.Q1, v.Med, v.Q3, v.MaxV, v.SD)
	return b.String()
}

func within(x, target, tol float64) bool {
	d := x - target
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Bar renders a labeled horizontal bar chart line set, used for the
// speedup comparisons of Figures 6 and 10.
func Bar(labels []string, values []float64, unit string, width int) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	maxL := 0
	for _, l := range labels {
		if len(l) > maxL {
			maxL = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if maxV > 0 {
			n = int(values[i] / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %8.2f%s %s\n", maxL, l, values[i], unit, strings.Repeat("#", n))
	}
	return b.String()
}

// Progress converts delivered wavefront steps into a display percentage
// in [0, 100]. The step total must come from the executed schedule
// (engine.Result.FrontierSteps, or grid.CountFrontier for irregular
// frontiers) — NOT from NumDiags recomputed off the grid shape, which
// overstates the denominator for irregular live regions (progress stalls
// below 100%) and understates it for multi-sweep schedules (progress
// exceeds 100%). Out-of-range inputs are clamped so display code never
// shows a negative or >100% figure; an unknown total (total <= 0, the
// irregular case before the frontier is drained) reports -1, which
// renderers should show as indeterminate.
func Progress(done, total int) float64 {
	if total <= 0 {
		return -1
	}
	if done <= 0 {
		return 0
	}
	if done >= total {
		return 100
	}
	return 100 * float64(done) / float64(total)
}

// ProgressString renders Progress for humans: "n/a" while the step
// total is unknown, a percentage otherwise.
func ProgressString(done, total int) string {
	p := Progress(done, total)
	if p < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", p)
}

// WaveLine is one wave of a pipeline for RenderPipeline: its name,
// lifecycle state, succeeded/total job counts and retries consumed.
type WaveLine struct {
	Name    string
	State   string
	Done    int
	Total   int
	Retries int
}

// RenderPipeline renders a pipeline's waves as a ladder, one rung per
// wave in execution order — a one-glance answer to "how far did it
// get":
//
//	pipe-00000001
//	  align    resolved  3/3
//	  fold     running   1/2  (retries 1)
//	  publish  pending   0/1
func RenderPipeline(name string, waves []WaveLine) string {
	maxN, maxS := 0, 0
	for _, w := range waves {
		if len(w.Name) > maxN {
			maxN = len(w.Name)
		}
		if len(w.State) > maxS {
			maxS = len(w.State)
		}
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('\n')
	for _, w := range waves {
		fmt.Fprintf(&b, "  %-*s %-*s %d/%d", maxN, w.Name, maxS, w.State, w.Done, w.Total)
		if w.Retries > 0 {
			fmt.Fprintf(&b, "  (retries %d)", w.Retries)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

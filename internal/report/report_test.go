package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("system", "speedup")
	tb.Add("i3-540", 19.75)
	tb.Add("i7-2600K", 8.2)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.Contains(lines[0], "system") || !strings.Contains(lines[0], "speedup") {
		t.Error("header missing")
	}
	if !strings.Contains(s, "19.8") { // %.3g formatting
		t.Errorf("float formatting wrong:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.Add("plain", "with,comma")
	tb.Add(`q"uote`, "x")
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"q""uote"`) {
		t.Errorf("quote not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header wrong: %s", csv)
	}
}

func TestRenderHeatmap(t *testing.T) {
	h := stats.NewHeatmap([]int{500, 1900}, []int{10, 1000})
	_ = h.Set(500, 10, -1)     // sentinel: GPU unused
	_ = h.Set(500, 1000, 100)  //
	_ = h.Set(1900, 10, 500)   //
	_ = h.Set(1900, 1000, 900) // hottest
	s := RenderHeatmap(h, "band heatmap")
	if !strings.Contains(s, "band heatmap") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "<") {
		t.Error("sentinel cell must render '<'")
	}
	if !strings.Contains(s, "legend") {
		t.Error("missing legend")
	}
	// The largest row label must print before the smallest (top-down dim).
	if strings.Index(s, "1900") > strings.Index(s, "500 ") {
		t.Error("rows must print largest-first")
	}
}

func TestRenderHeatmapMissingCell(t *testing.T) {
	h := stats.NewHeatmap([]int{1}, []int{1, 2})
	_ = h.Set(1, 1, 5)
	if !strings.Contains(RenderHeatmap(h, "x"), "?") {
		t.Error("unset cell must render '?'")
	}
}

func TestRenderViolin(t *testing.T) {
	xs := []float64{1, 1, 1.2, 1.4, 2, 3, 10}
	v := stats.NewViolin(xs, 16)
	s := RenderViolin(v, "dim=700 tsize=100", 30)
	if !strings.Contains(s, "n=7") {
		t.Error("missing sample count")
	}
	if !strings.Contains(s, "med=") || !strings.Contains(s, "#") {
		t.Errorf("violin body missing:\n%s", s)
	}
	// Empty violin must not panic.
	if out := RenderViolin(stats.Violin{}, "empty", 20); !strings.Contains(out, "n=0") {
		t.Error("empty violin header wrong")
	}
}

func TestBar(t *testing.T) {
	s := Bar([]string{"serial", "best"}, []float64{1, 20}, "x", 20)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 bars, got %d", len(lines))
	}
	if strings.Count(lines[1], "#") != 20 {
		t.Errorf("max bar must be full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") >= strings.Count(lines[1], "#") {
		t.Error("bars must scale with value")
	}
}

func TestProgressClamps(t *testing.T) {
	cases := []struct {
		done, total int
		want        float64
	}{
		{0, 10, 0},
		{5, 10, 50},
		{10, 10, 100},
		{15, 10, 100}, // more steps delivered than predicted: clamp, never >100%
		{-3, 10, 0},
		{5, 0, -1}, // unknown total: indeterminate, not a bogus percentage
		{5, -1, -1},
	}
	for _, c := range cases {
		if got := Progress(c.done, c.total); got != c.want {
			t.Errorf("Progress(%d, %d) = %g, want %g", c.done, c.total, got, c.want)
		}
	}
	if s := ProgressString(3, 0); s != "n/a" {
		t.Errorf("ProgressString unknown total = %q", s)
	}
	if s := ProgressString(1, 3); s != "33.3%" {
		t.Errorf("ProgressString(1,3) = %q", s)
	}
}

package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeStructureAndRender(t *testing.T) {
	ctx, root := StartRootSpan(context.Background(), "http.request")
	root.Annotate("route", "tune").Annotate("request_id", "req-abc")

	cctx, child := StartSpan(ctx, "cache.lookup")
	child.Annotate("outcome", "miss")
	_, grand := StartSpan(cctx, "tuner.predict")
	grand.End()
	child.End()
	root.End()

	out := root.Render()
	lines := strings.Split(out, "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered tree has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "http.request ") || !strings.Contains(lines[0], "route=tune") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  cache.lookup ") || !strings.Contains(lines[1], "outcome=miss") {
		t.Fatalf("child line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    tuner.predict ") {
		t.Fatalf("grandchild line = %q", lines[2])
	}
	if strings.Contains(out, "(open)") {
		t.Fatalf("all spans ended but tree shows open: %s", out)
	}
}

// TestStartSpanWithoutRootIsNoOp pins the gating contract: on a path
// where nobody opened a root span (nothing will ever render the trace),
// StartSpan must return the context unchanged and a nil span whose
// methods are all safe no-ops.
func TestStartSpanWithoutRootIsNoOp(t *testing.T) {
	base := context.Background()
	ctx, s := StartSpan(base, "cache.lookup")
	if s != nil {
		t.Fatalf("StartSpan without a root returned %v, want nil", s)
	}
	if ctx != base {
		t.Fatal("StartSpan without a root should return the context unchanged")
	}
	// Every method must tolerate the nil receiver.
	if s.Annotate("k", "v").Annotate("k2", 2) != nil {
		t.Fatal("nil Annotate should return nil")
	}
	if s.End() != 0 || s.Duration() != 0 {
		t.Fatal("nil span durations should be 0")
	}
	if s.Name() != "" || s.Render() != "" {
		t.Fatal("nil span should render empty")
	}

	// Under a root the same call materializes a real child.
	rctx, root := StartRootSpan(base, "http.request")
	_, c := StartSpan(rctx, "cache.lookup")
	if c == nil {
		t.Fatal("StartSpan under a root returned nil")
	}
	c.End()
	root.End()
	if !strings.Contains(root.Render(), "cache.lookup") {
		t.Fatalf("child missing from tree:\n%s", root.Render())
	}
}

func TestSpanFromContext(t *testing.T) {
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context should carry no span")
	}
	ctx, s := StartRootSpan(context.Background(), "x")
	if SpanFrom(ctx) != s {
		t.Fatal("SpanFrom should return the started span")
	}
}

func TestSpanEndIdempotentAndDuration(t *testing.T) {
	_, s := StartRootSpan(context.Background(), "x")
	time.Sleep(time.Millisecond)
	d1 := s.End()
	d2 := s.End()
	if d1 != d2 {
		t.Fatalf("End not idempotent: %v vs %v", d1, d2)
	}
	if d1 < time.Millisecond {
		t.Fatalf("duration %v shorter than the sleep", d1)
	}
	if s.Duration() != d1 {
		t.Fatalf("Duration() = %v, want %v", s.Duration(), d1)
	}
}

func TestOpenSpanRenders(t *testing.T) {
	_, s := StartRootSpan(context.Background(), "x")
	if !strings.Contains(s.Render(), "(open)") {
		t.Fatal("un-ended span should render as open")
	}
}

// TestSpanConcurrentChildren models a fan-out handler: many goroutines
// opening children of one parent. Run under -race in CI.
func TestSpanConcurrentChildren(t *testing.T) {
	ctx, root := StartRootSpan(context.Background(), "batch")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, c := StartSpan(ctx, "item")
			c.Annotate("k", "v")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := strings.Count(root.Render(), "item "); got != 32 {
		t.Fatalf("rendered %d children, want 32", got)
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	id := NewRequestID()
	if !strings.HasPrefix(id, "req-") || len(id) < 10 {
		t.Fatalf("odd request id %q", id)
	}
	if id == NewRequestID() {
		t.Fatal("request ids should be unique")
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("RequestIDFrom = %q, want %q", got, id)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Fatal("empty context should carry no request id")
	}
}

package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLoggerTextFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText)
	l.Log("request done", "route", "tune", "status", 200, "dur", "1.5ms", "note", "two words")
	line := strings.TrimSpace(b.String())
	for _, want := range []string{
		"ts=", "level=info", `msg="request done"`,
		"route=tune", "status=200", "dur=1.5ms", `note="two words"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("text line missing %q: %s", want, line)
		}
	}
}

func TestLoggerJSONFormat(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatJSON)
	l.Log("request done", "route", "tune", "status", 200, "p50_sec", 0.25)
	var obj map[string]any
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("JSON line does not parse: %v: %s", err, b.String())
	}
	if obj["level"] != "info" || obj["msg"] != "request done" || obj["route"] != "tune" {
		t.Fatalf("unexpected fields: %v", obj)
	}
	if v, ok := obj["status"].(float64); !ok || v != 200 {
		t.Fatalf("status should stay numeric, got %T %v", obj["status"], obj["status"])
	}
}

func TestLoggerWithFields(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatJSON).With("request_id", "req-1")
	l.Log("a")
	l.Error("b")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatal(err)
		}
		if obj["request_id"] != "req-1" {
			t.Fatalf("line %d missing bound field: %s", i, line)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["level"] != "error" {
		t.Fatalf("Error() level = %v", last["level"])
	}
}

func TestLoggerLogfBridge(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, FormatText)
	var logf func(string, ...any) = l.Logf
	logf("job %s done in %d ms", "j1", 42)
	if !strings.Contains(b.String(), `msg="job j1 done in 42 ms"`) {
		t.Fatalf("Logf output: %s", b.String())
	}
}

func TestParseLogFormat(t *testing.T) {
	for in, want := range map[string]LogFormat{
		"": FormatText, "text": FormatText, "kv": FormatText,
		"json": FormatJSON, "JSON": FormatJSON,
	} {
		got, err := ParseLogFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseLogFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogFormat("xml"); err == nil {
		t.Error("ParseLogFormat should reject unknown formats")
	}
}

// TestLoggerConcurrentLinesDoNotTear writes from many goroutines and
// checks every emitted line is independently well-formed JSON.
func TestLoggerConcurrentLinesDoNotTear(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	l := NewLogger(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	}), FormatJSON)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Log("m", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// buildTestRegistry populates one of every family kind.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("waved_test_total", "plain counter").Add(3)
	r.Gauge("waved_test_inflight", "plain gauge").Set(2)
	v := r.CounterVec("waved_test_routes_total", "per-route counter", "route")
	v.With("tune").Add(5)
	v.With("batch").Inc()
	h := r.Histogram("waved_test_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(7)
	hv := r.HistogramVec("waved_test_route_seconds", "per-route latency", []float64{0.01, 0.1}, "route")
	hv.With("tune").Observe(0.005)
	r.CollectFunc("waved_test_shard_hits_total", "per-shard hits", TypeCounter,
		[]string{"shard"}, func(emit Emit) {
			emit(10, "0")
			emit(20, "1")
		})
	return r
}

func TestExpositionValidates(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("exposition failed strict validation: %v\n%s", err, b.String())
	}
}

func TestExpositionContent(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP waved_test_total plain counter",
		"# TYPE waved_test_total counter",
		"waved_test_total 3",
		"# TYPE waved_test_inflight gauge",
		"waved_test_inflight 2",
		`waved_test_routes_total{route="batch"} 1`,
		`waved_test_routes_total{route="tune"} 5`,
		"# TYPE waved_test_seconds histogram",
		`waved_test_seconds_bucket{le="0.001"} 1`,
		`waved_test_seconds_bucket{le="0.01"} 1`,
		`waved_test_seconds_bucket{le="0.1"} 2`,
		`waved_test_seconds_bucket{le="+Inf"} 3`,
		"waved_test_seconds_count 3",
		`waved_test_route_seconds_bucket{route="tune",le="+Inf"} 1`,
		`waved_test_shard_hits_total{shard="0"} 10`,
		`waved_test_shard_hits_total{shard="1"} 20`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q", want)
		}
	}
	// Deterministic: a second render must be byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("exposition output is not deterministic")
	}
}

func TestExpositionHELPTYPEPairsAndNoDuplicates(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	seenSeries := map[string]bool{}
	var lastHelp string
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.Fields(line)[2]
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			if name != lastHelp {
				t.Fatalf("TYPE %s not immediately after its HELP (last HELP %s)", name, lastHelp)
			}
		default:
			key := strings.SplitN(line, " ", 2)[0] // name{labels}
			if seenSeries[key] {
				t.Fatalf("duplicate series %q", key)
			}
			seenSeries[key] = true
		}
	}
}

func TestValidatorCatchesBrokenExpositions(t *testing.T) {
	cases := map[string]string{
		"sample without HELP/TYPE": "waved_x_total 1\n",
		"TYPE without HELP":        "# TYPE waved_x_total counter\nwaved_x_total 1\n",
		"duplicate series": "# HELP waved_x_total h\n# TYPE waved_x_total counter\n" +
			"waved_x_total 1\nwaved_x_total 2\n",
		"non-monotonic buckets": "# HELP waved_h_seconds h\n# TYPE waved_h_seconds histogram\n" +
			`waved_h_seconds_bucket{le="0.1"} 5` + "\n" +
			`waved_h_seconds_bucket{le="1"} 3` + "\n" +
			`waved_h_seconds_bucket{le="+Inf"} 5` + "\n" +
			"waved_h_seconds_sum 1\nwaved_h_seconds_count 5\n",
		"missing +Inf bucket": "# HELP waved_h_seconds h\n# TYPE waved_h_seconds histogram\n" +
			`waved_h_seconds_bucket{le="0.1"} 5` + "\n" +
			"waved_h_seconds_sum 1\nwaved_h_seconds_count 5\n",
		"count disagrees with +Inf": "# HELP waved_h_seconds h\n# TYPE waved_h_seconds histogram\n" +
			`waved_h_seconds_bucket{le="+Inf"} 5` + "\n" +
			"waved_h_seconds_sum 1\nwaved_h_seconds_count 4\n",
		"bad metric name": "# HELP 0bad h\n# TYPE 0bad counter\n0bad 1\n",
		"empty":           "",
	}
	for name, in := range cases {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted broken exposition", name)
		}
	}
}

func TestExpositionHandler(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if err := ValidateExposition(resp.Body); err != nil {
		t.Fatalf("handler output invalid: %v", err)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("waved_esc_total", "x", "k").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `waved_esc_total{k="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label line missing; got:\n%s", b.String())
	}
	if err := ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("escaped exposition invalid: %v", err)
	}
}

// Package telemetry is the daemon's dependency-free observability
// core: an atomic metrics registry (counters, gauges, fixed-bucket
// latency histograms with quantile summaries), a Prometheus
// text-format exposition writer, lightweight trace spans threaded
// through request contexts, and a structured key=value / JSON line
// logger. Everything is safe for concurrent use and designed so the
// hot-path cost of an instrument is one or two atomic operations —
// cheap enough to leave on under production traffic.
//
// The registry is the single source of truth: both the machine surface
// (GET /metrics) and the human surface (/v1/stats snapshots) render
// from the same Counter/Gauge/Histogram handles, so the two can never
// drift. Subsystems that already keep their own counters (the plan
// cache's per-shard stats, the job manager's queue accounting) plug in
// at scrape time via CollectFunc callbacks instead of double-counting.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType names the exposition type of a metric family.
type MetricType string

// Exposition types understood by the Prometheus text format.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefBuckets is the default latency histogram layout in seconds. It
// spans 1µs (a sharded plan-cache hit is a few hundred ns) to 60s
// (a full exhaustive sweep job), roughly 2.5×/4× per step like the
// conventional Prometheus defaults but extended three decades lower.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// A Registry holds named metric families and renders them in
// Prometheus text format. Families are registered once (typically at
// server construction) and the returned handles are then updated
// lock-free; registration of a duplicate or invalid name panics, as
// that is a programming error, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one named metric with all its label permutations.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string

	mu     sync.Mutex
	series map[string]metric // label-values key → handle

	// collect, when non-nil, makes this a callback family: samples are
	// produced at scrape time instead of being stored.
	collect func(emit Emit)

	buckets []float64 // histogram families only
}

// metric is any stored series handle.
type metric interface{}

// Emit reports one sample from a CollectFunc callback. The number of
// label values must match the family's label names.
type Emit func(value float64, labelValues ...string)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and stores a new family, panicking on duplicates.
func (r *Registry) register(f *family) {
	if !metricNameRE.MatchString(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelNameRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", f.name))
	}
	if f.series == nil {
		f.series = make(map[string]metric)
	}
	r.families[f.name] = f
}

// Counter registers and returns an unlabelled monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	f := &family{name: name, help: help, typ: TypeCounter}
	f.series = map[string]metric{"": c}
	r.register(f)
	return c
}

// CounterVec registers a counter family partitioned by labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: TypeCounter, labels: labels}
	r.register(f)
	return &CounterVec{fam: f}
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	f := &family{name: name, help: help, typ: TypeGauge}
	f.series = map[string]metric{"": g}
	r.register(f)
	return g
}

// Histogram registers a fixed-bucket histogram. A nil buckets slice
// selects DefBuckets; bounds must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	f := &family{name: name, help: help, typ: TypeHistogram, buckets: h.bounds}
	f.series = map[string]metric{"": h}
	r.register(f)
	return h
}

// HistogramVec registers a histogram family partitioned by labels.
// All series share one bucket layout (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	validateBuckets(buckets)
	f := &family{name: name, help: help, typ: TypeHistogram, labels: labels, buckets: buckets}
	r.register(f)
	return &HistogramVec{fam: f}
}

// CollectFunc registers a callback family: fn runs at every scrape and
// emits current values, letting subsystems with their own internal
// counters (cache shards, job queues) surface without double-counting.
// Only TypeCounter and TypeGauge callbacks are supported.
func (r *Registry) CollectFunc(name, help string, typ MetricType, labels []string, fn func(emit Emit)) {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("telemetry: CollectFunc %q: unsupported type %q", name, typ))
	}
	r.register(&family{name: name, help: help, typ: typ, labels: labels, collect: fn})
}

// A Counter is a monotonically increasing value. The zero value is
// ready to use, but only counters obtained from a Registry are scraped.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed cumulative-on-scrape
// buckets. Observe is two atomic adds plus a CAS loop for the sum; no
// locks are taken, so it is safe on the hottest paths.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
}

func validateBuckets(bounds []float64) {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %d", i))
		}
	}
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	validateBuckets(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the +Inf bucket is the
	// fallthrough when v exceeds every bound.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket containing the target rank. Values
// landing in the +Inf bucket are reported as the largest finite bound,
// a deliberate under-estimate. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum >= rank && c > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - prev) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time summary used by /v1/stats.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	SumSec float64 `json:"sum_sec"`
	P50Sec float64 `json:"p50_sec"`
	P95Sec float64 `json:"p95_sec"`
	P99Sec float64 `json:"p99_sec"`
}

// Snapshot summarises the histogram with its standard quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		SumSec: h.Sum(),
		P50Sec: h.Quantile(0.50),
		P95Sec: h.Quantile(0.95),
		P99Sec: h.Quantile(0.99),
	}
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}

// labelKey joins label values with an unprintable separator so the
// tuple can key a map without ambiguity.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

func splitLabelKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x1f")
}

// with finds or creates the series for the given label values.
func (f *family) with(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %q expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
	}
	return m
}

// A CounterVec is a counter family partitioned by label values. With
// interns series, so hot paths should resolve their handle once and
// keep it rather than calling With per operation.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label values, creating it on
// first use. The same values always return the same handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.with(labelValues, func() metric { return &Counter{} }).(*Counter)
}

// Total sums the counter across all label permutations.
func (v *CounterVec) Total() uint64 {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	var total uint64
	for _, m := range v.fam.series {
		total += m.(*Counter).Value()
	}
	return total
}

// A HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	fam *family
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.with(labelValues, func() metric { return newHistogram(v.fam.buckets) }).(*Histogram)
}

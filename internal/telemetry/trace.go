package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// A Span is one timed region of work in a request's trace tree. Roots
// are created with StartRootSpan where a trace is wanted (the HTTP
// middleware always, the job manager only when slow-job logging is
// on); StartSpan then grows the tree from the context, or no-ops where
// no root was opened. Spans are annotated with key=value attributes
// and closed with End; a finished root renders its whole subtree for
// slow-request logging. All methods are safe for concurrent use (so
// fan-out handlers may open children of one parent from many
// goroutines) and safe on a nil receiver, which is the no-op span
// StartSpan hands out on untraced paths.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []spanAttr
	children []*Span
}

// spanAttr keeps the annotation value unrendered: traces are rendered
// rarely (slow requests only), so the fmt cost is paid at Render time
// rather than on every hot-path Annotate.
type spanAttr struct {
	key string
	val any
}

type spanCtxKey struct{}

type requestIDCtxKey struct{}

// StartRootSpan opens a span unconditionally — the root of a new trace
// (or a child, when ctx already carries a span) — and returns a
// context carrying it. Call it where a trace tree is wanted; cheap
// hot paths below it use StartSpan, which only materializes spans
// under such a root.
func StartRootSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	if parent := SpanFrom(ctx); parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan opens a span named name as a child of the span in ctx.
// When ctx carries no span — nobody opened a root, so nobody will ever
// render this trace — it returns ctx unchanged and a nil (no-op) span,
// keeping untraced hot paths allocation-free. Span names are
// dot-scoped, subsystem first: "http.request", "cache.lookup",
// "tuner.predict", "job.execute", "engine.measure", "pipeline.wave".
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if SpanFrom(ctx) == nil {
		return ctx, nil
	}
	return StartRootSpan(ctx, name)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// End closes the span and returns its duration. Repeated calls keep
// the first duration; a nil span returns 0 (so callers that feed a
// histogram from a maybe-nil span must time the work themselves).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	return s.dur
}

// Duration returns the recorded duration (time so far if still open),
// or 0 on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Name returns the span's name, or "" on a nil span.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Annotate attaches a key=value attribute shown in the rendered tree.
// The value is stored as-is and formatted only if the tree is rendered,
// so callers should hand over immutable values. Annotating a nil span
// is a no-op.
func (s *Span) Annotate(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key: key, val: value})
	s.mu.Unlock()
	return s
}

// Render returns the span tree as an indented multi-line string, one
// span per line: name, duration, then attributes. A nil span renders
// as "".
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	dur := s.dur
	open := !s.ended
	if open {
		dur = time.Since(s.start)
	}
	attrs := make([]spanAttr, len(s.attrs))
	copy(attrs, s.attrs)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()

	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", s.name, dur.Round(time.Microsecond))
	if open {
		b.WriteString(" (open)")
	}
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%v", a.key, a.val)
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.render(b, depth+1)
	}
}

// NewRequestID returns a fresh opaque request identifier, 8 random
// bytes hex-encoded with a "req-" prefix.
func NewRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a time-derived ID rather than crashing the serving path.
		return fmt.Sprintf("req-t%x", time.Now().UnixNano())
	}
	return "req-" + hex.EncodeToString(buf[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition strictly parses a Prometheus text-format scrape
// and returns the first format violation found: unknown line shapes,
// metrics without a preceding # HELP / # TYPE pair, invalid metric or
// label names, duplicate series, histograms whose cumulative buckets
// decrease or whose _count disagrees with the +Inf bucket. It is the
// shared checker behind the exposition unit tests and the CI scrape
// step, so "the daemon serves parseable metrics" is one function call.
func ValidateExposition(r io.Reader) error {
	v := &expoValidator{
		types: make(map[string]MetricType),
		seen:  make(map[string]bool),
		hist:  make(map[string]*histCheck),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		if err := v.line(sc.Text()); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("empty exposition")
	}
	return v.finish()
}

type expoValidator struct {
	types   map[string]MetricType
	seen    map[string]bool // fully-labelled series already emitted
	hist    map[string]*histCheck
	curFam  string // family of the open HELP/TYPE block
	sawHelp bool
	sawType bool
}

// histCheck accumulates one histogram series' bucket lines.
type histCheck struct {
	bounds   []float64
	cumul    []uint64
	count    uint64
	hasCount bool
	hasSum   bool
}

var (
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$`)
	labelRE  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

func (v *expoValidator) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return fmt.Errorf("blank line in exposition")
	}
	if strings.HasPrefix(line, "# HELP ") {
		parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
		name := parts[0]
		if !metricNameRE.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		v.curFam, v.sawHelp, v.sawType = name, true, false
		return nil
	}
	if strings.HasPrefix(line, "# TYPE ") {
		fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
		if len(fields) != 2 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[0], MetricType(fields[1])
		if name != v.curFam || !v.sawHelp {
			return fmt.Errorf("TYPE %s without preceding HELP", name)
		}
		if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram {
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		v.types[name] = typ
		v.sawType = true
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return fmt.Errorf("unexpected comment %q", line)
	}

	m := sampleRE.FindStringSubmatch(line)
	if m == nil {
		return fmt.Errorf("unparseable sample line %q", line)
	}
	name, labels, valStr := m[1], m[2], m[3]
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("bad value %q: %v", valStr, err)
	}

	fam := name
	typ, ok := v.types[fam]
	if !ok {
		// Histogram series lines use the family name plus a suffix.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && v.types[base] == TypeHistogram {
				fam, typ, ok = base, TypeHistogram, true
				break
			}
		}
	}
	if !ok {
		return fmt.Errorf("sample %s without HELP/TYPE", name)
	}
	if !v.sawType || fam != v.curFam {
		return fmt.Errorf("sample %s outside its HELP/TYPE block", name)
	}

	labelPairs, err := parseLabels(labels)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	series := name + canonicalLabels(labelPairs, "")
	if v.seen[series] {
		return fmt.Errorf("duplicate series %s", series)
	}
	v.seen[series] = true

	if typ != TypeHistogram {
		if typ == TypeCounter && val < 0 {
			return fmt.Errorf("counter %s has negative value %v", series, val)
		}
		return nil
	}
	return v.histogramSample(fam, name, labelPairs, val)
}

// histogramSample folds one _bucket/_sum/_count line into its series'
// running monotonicity check.
func (v *expoValidator) histogramSample(fam, name string, labels [][2]string, val float64) error {
	key := fam + canonicalLabels(labels, "le")
	hc := v.hist[key]
	if hc == nil {
		hc = &histCheck{}
		v.hist[key] = hc
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le := ""
		for _, kv := range labels {
			if kv[0] == "le" {
				le = kv[1]
			}
		}
		if le == "" {
			return fmt.Errorf("%s missing le label", name)
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", name, err)
			}
			bound = b
		}
		if n := len(hc.bounds); n > 0 && bound <= hc.bounds[n-1] {
			return fmt.Errorf("%s: le=%q out of order", key, le)
		}
		cum := uint64(val)
		if n := len(hc.cumul); n > 0 && cum < hc.cumul[n-1] {
			return fmt.Errorf("%s: cumulative bucket counts decreased at le=%q", key, le)
		}
		hc.bounds = append(hc.bounds, bound)
		hc.cumul = append(hc.cumul, cum)
	case strings.HasSuffix(name, "_sum"):
		hc.hasSum = true
	case strings.HasSuffix(name, "_count"):
		hc.hasCount = true
		hc.count = uint64(val)
	default:
		return fmt.Errorf("bare sample %s for histogram family %s", name, fam)
	}
	return nil
}

func (v *expoValidator) finish() error {
	keys := make([]string, 0, len(v.hist))
	for k := range v.hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		hc := v.hist[k]
		if len(hc.bounds) == 0 {
			return fmt.Errorf("histogram %s has no buckets", k)
		}
		if !math.IsInf(hc.bounds[len(hc.bounds)-1], 1) {
			return fmt.Errorf("histogram %s missing +Inf bucket", k)
		}
		if !hc.hasSum || !hc.hasCount {
			return fmt.Errorf("histogram %s missing _sum or _count", k)
		}
		if inf := hc.cumul[len(hc.cumul)-1]; hc.count != inf {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", k, hc.count, inf)
		}
	}
	return nil
}

// parseLabels splits a {k="v",...} block into ordered pairs.
func parseLabels(s string) ([][2]string, error) {
	if s == "" {
		return nil, nil
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	if body == "" {
		return nil, nil
	}
	var pairs [][2]string
	for _, part := range splitLabelPairs(body) {
		m := labelRE.FindStringSubmatch(part)
		if m == nil {
			return nil, fmt.Errorf("malformed label %q", part)
		}
		pairs = append(pairs, [2]string{m[1], m[2]})
	}
	return pairs, nil
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(body string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	return parts
}

// canonicalLabels renders sorted labels (minus one excluded name) so
// series identity ignores label order and, for histograms, the le.
func canonicalLabels(pairs [][2]string, exclude string) string {
	kept := make([]string, 0, len(pairs))
	for _, kv := range pairs {
		if kv[0] == exclude && exclude != "" {
			continue
		}
		kept = append(kept, kv[0]+"="+kv[1])
	}
	sort.Strings(kept)
	return "{" + strings.Join(kept, ",") + "}"
}

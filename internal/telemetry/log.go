package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LogFormat selects the line encoding of a Logger.
type LogFormat int

// Supported log line encodings.
const (
	// FormatText emits logfmt-style key=value lines.
	FormatText LogFormat = iota
	// FormatJSON emits one JSON object per line.
	FormatJSON
)

// ParseLogFormat maps a -log-format flag value ("text", "kv", "json")
// to a LogFormat.
func ParseLogFormat(s string) (LogFormat, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "text", "kv", "logfmt":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	default:
		return FormatText, fmt.Errorf("unknown log format %q (want text or json)", s)
	}
}

// A Logger writes structured log lines — timestamp, level, message,
// then alternating key/value fields — as either key=value text or JSON
// objects. It is safe for concurrent use; With derives child loggers
// sharing the same writer and mutex so interleaved lines never tear.
type Logger struct {
	format LogFormat
	fields []logField // bound by With, emitted on every line

	mu  *sync.Mutex
	w   io.Writer
	now func() time.Time
}

type logField struct {
	key string
	val any
}

// NewLogger returns a Logger writing to w in the given format.
func NewLogger(w io.Writer, format LogFormat) *Logger {
	return &Logger{format: format, mu: &sync.Mutex{}, w: w, now: time.Now}
}

// With returns a child logger whose lines always carry the given
// alternating key/value pairs.
func (l *Logger) With(kv ...any) *Logger {
	child := &Logger{format: l.format, mu: l.mu, w: l.w, now: l.now}
	child.fields = append(append([]logField{}, l.fields...), pairFields(kv)...)
	return child
}

// Log writes one info-level line.
func (l *Logger) Log(msg string, kv ...any) { l.emit("info", msg, kv) }

// Error writes one error-level line.
func (l *Logger) Error(msg string, kv ...any) { l.emit("error", msg, kv) }

// Logf writes one info-level line with a printf-formatted message and
// no extra fields. It satisfies the `func(format string, args ...any)`
// Logf hooks used across the daemon's packages, so a structured Logger
// can slot in wherever an unstructured printf logger was expected.
func (l *Logger) Logf(format string, args ...any) {
	l.emit("info", fmt.Sprintf(format, args...), nil)
}

func pairFields(kv []any) []logField {
	fields := make([]logField, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		fields = append(fields, logField{key: fmt.Sprint(kv[i]), val: kv[i+1]})
	}
	if len(kv)%2 == 1 {
		fields = append(fields, logField{key: "EXTRA", val: kv[len(kv)-1]})
	}
	return fields
}

func (l *Logger) emit(level, msg string, kv []any) {
	fields := append(append([]logField{}, l.fields...), pairFields(kv)...)
	ts := l.now().UTC().Format(time.RFC3339Nano)

	var line []byte
	switch l.format {
	case FormatJSON:
		obj := make(map[string]any, len(fields)+3)
		obj["ts"] = ts
		obj["level"] = level
		obj["msg"] = msg
		for _, f := range fields {
			obj[f.key] = jsonValue(f.val)
		}
		var err error
		line, err = json.Marshal(obj)
		if err != nil {
			line = []byte(fmt.Sprintf(`{"ts":%q,"level":"error","msg":"telemetry: log marshal: %v"}`, ts, err))
		}
		line = append(line, '\n')
	default:
		var b strings.Builder
		b.WriteString("ts=")
		b.WriteString(ts)
		b.WriteString(" level=")
		b.WriteString(level)
		b.WriteString(" msg=")
		b.WriteString(quoteIfNeeded(msg))
		for _, f := range fields {
			b.WriteByte(' ')
			b.WriteString(f.key)
			b.WriteByte('=')
			b.WriteString(quoteIfNeeded(fmt.Sprint(f.val)))
		}
		b.WriteByte('\n')
		line = []byte(b.String())
	}

	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

// jsonValue keeps primitive field types as-is and stringifies the
// rest, so numbers stay numbers in JSON output.
func jsonValue(v any) any {
	switch x := v.(type) {
	case time.Duration:
		return x.String()
	case nil, bool, string,
		int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, json.Number:
		return v
	default:
		if _, err := json.Marshal(v); err == nil {
			return v
		}
		return fmt.Sprint(v)
	}
}

// quoteIfNeeded quotes a text-format value containing whitespace,
// quotes, or control characters (multi-line span trees, messages).
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if strings.IndexFunc(s, func(r rune) bool {
		return r <= ' ' || r == '"' || r == '='
	}) < 0 {
		return s
	}
	return strconv.Quote(s)
}

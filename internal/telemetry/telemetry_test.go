package telemetry

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestCounterVecIdentityAndTotal(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("routes_total", "per route", "route")
	a := v.With("tune")
	b := v.With("tune")
	if a != b {
		t.Fatal("With must intern: same labels should return the same handle")
	}
	a.Add(3)
	v.With("batch").Add(2)
	if got := v.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("arity_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	v.With("only-one")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.Counter("dup_total", "x")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	r.Counter("bad-name", "x")
}

func TestHistogramCountsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	// Bucket occupancy: (≤0.1)=1, (0.1,1]=2, (1,10]=1, +Inf=1.
	wantCounts := []uint64{1, 2, 1, 1}
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramBoundaryValueIsInclusive(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" bucket is inclusive
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("observation on the bound landed in bucket %v, want bucket 0", h.counts)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Uniform 1..100 scaled into (0,10]: values k/10 for k=1..100.
	for k := 1; k <= 100; k++ {
		h.Observe(float64(k) / 10)
	}
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0.50, 5.0, 0.6},
		{0.95, 9.5, 0.6},
		{0.99, 9.9, 0.6},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestHistogramQuantileEmptyAndOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h.Observe(100) // +Inf bucket only
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("overflow Quantile = %v, want largest finite bound 2", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	snap := h.Snapshot()
	if snap.Count != 3 {
		t.Fatalf("snapshot count = %d, want 3", snap.Count)
	}
	if math.Abs(snap.SumSec-5.0) > 1e-9 {
		t.Fatalf("snapshot sum = %v, want 5", snap.SumSec)
	}
	if snap.P50Sec <= 0 || snap.P99Sec < snap.P50Sec {
		t.Fatalf("snapshot quantiles out of order: %+v", snap)
	}
}

func TestInvalidBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing buckets")
		}
	}()
	newHistogram([]float64{1, 1})
}

// TestRegistryConcurrentStress hammers every metric kind from many
// goroutines; run under -race this is the registry's thread-safety
// proof, and the final counts double as a lost-update check.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "x")
	g := r.Gauge("stress_gauge", "x")
	h := r.Histogram("stress_seconds", "x", nil)
	v := r.CounterVec("stress_routes_total", "x", "route")
	hv := r.HistogramVec("stress_lat_seconds", "x", nil, "route")
	routes := []string{"a", "b", "c", "d"}

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%1000) * 1e-6)
				route := routes[(w+i)%len(routes)]
				v.With(route).Inc()
				hv.With(route).Observe(1e-4)
			}
		}(w)
	}
	wg.Wait()

	const want = workers * perWorker
	if got := c.Value(); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
	if got := v.Total(); got != want {
		t.Fatalf("vec total = %d, want %d", got, want)
	}
	var hvTotal uint64
	for _, route := range routes {
		hvTotal += hv.With(route).Count()
	}
	if hvTotal != want {
		t.Fatalf("histogram vec count = %d, want %d", hvTotal, want)
	}
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by
// its # HELP and # TYPE lines, histogram series expanded into
// cumulative _bucket{le=...} plus _sum and _count. Output is fully
// deterministic given the same metric state, which the format tests
// rely on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition, suitable for
// mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}

// sample is one rendered series within a family.
type sample struct {
	labelValues []string
	value       float64
	hist        *Histogram
}

// write renders one family.
func (f *family) write(w *bufio.Writer) error {
	// A labelled family with no series yet still advertises its
	// HELP/TYPE pair so dashboards can discover it before traffic.
	samples := f.samples()
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range samples {
		if f.typ == TypeHistogram {
			writeHistogram(w, f.name, f.labels, s.labelValues, s.hist)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelValues, "", 0), formatValue(s.value))
	}
	return nil
}

// samples collects the family's current series, sorted by label values
// for deterministic output. Callback families run their collector.
func (f *family) samples() []sample {
	var out []sample
	if f.collect != nil {
		f.collect(func(value float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("telemetry: collector for %q emitted %d label values, want %d",
					f.name, len(labelValues), len(f.labels)))
			}
			out = append(out, sample{labelValues: labelValues, value: value})
		})
	} else {
		f.mu.Lock()
		for key, m := range f.series {
			s := sample{labelValues: splitLabelKey(key)}
			switch v := m.(type) {
			case *Counter:
				s.value = float64(v.Value())
			case *Gauge:
				s.value = float64(v.Value())
			case *Histogram:
				s.hist = v
			}
			out = append(out, s)
		}
		f.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labelValues) < labelKey(out[j].labelValues)
	})
	return out
}

// writeHistogram expands one histogram series into its cumulative
// bucket lines plus _sum and _count.
func writeHistogram(w *bufio.Writer, name string, labels, values []string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			labelString(labels, values, "le", bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		labelString(labels, values, "le", infBound), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, values, "", 0), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values, "", 0), cum)
}

// infBound marks the +Inf bucket for labelString.
const infBound = -1

// labelString renders {k="v",...}, optionally appending an le bucket
// label (bound >= 0, or infBound for +Inf). Returns "" when there are
// no labels at all.
func labelString(labels, values []string, le string, bound float64) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		if bound == infBound {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatValue(bound))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
